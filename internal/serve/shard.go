package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"rescue/internal/fault"
)

// shardParams is the wire shape of a shard job: the flow both sides run,
// the content identity of the campaign to intercept, and the fault-index
// window to compute. The worker re-executes the flow until it reaches the
// campaign whose derived CampaignKey equals Key — a worker whose inputs
// diverged (different binary, different flow params) simply never claims
// the target and the job fails instead of returning wrong results.
type shardParams struct {
	Flow Spec              `json:"flow"`
	Key  fault.CampaignKey `json:"key"`
	Lo   int               `json:"lo"`
	Hi   int               `json:"hi"`
}

// ShardSpec builds the job spec a coordinator submits to compute one shard
// of a campaign: fault indices [lo, hi) of the campaign identified by key
// inside flow. It is the one place the shard wire format lives.
func ShardSpec(flow Spec, key fault.CampaignKey, lo, hi int) (Spec, error) {
	params, err := json.Marshal(shardParams{Flow: flow, Key: key, Lo: lo, Hi: hi})
	if err != nil {
		return Spec{}, err
	}
	return Spec{Kind: "shard", Params: params}, nil
}

// shardRunner executes shard jobs against the given kind registry: run the
// inner flow under a shard target and return the sealed window as JSON.
// The inner flow's own report is discarded — the shard's output IS the
// ShardResult.
func shardRunner(kinds map[string]Runner) Runner {
	return func(ctx context.Context, rc RunContext, params json.RawMessage) ([]byte, error) {
		var p shardParams
		if err := decode(params, &p); err != nil {
			return nil, err
		}
		if p.Flow.Kind == "shard" {
			return nil, fmt.Errorf("bad params: shard flows do not nest")
		}
		inner, ok := kinds[p.Flow.Kind]
		if !ok {
			return nil, fmt.Errorf("bad params: unknown flow kind %q", p.Flow.Kind)
		}
		if p.Lo < 0 || p.Hi <= p.Lo || p.Hi > p.Key.NFaults {
			return nil, fmt.Errorf("bad params: shard window [%d,%d) invalid for %d faults", p.Lo, p.Hi, p.Key.NFaults)
		}
		sctx, res := fault.WithShardTarget(ctx, p.Key, p.Lo, p.Hi)
		_, err := inner(sctx, rc, p.Flow.Params)
		switch {
		case errors.Is(err, fault.ErrShardDone):
			if verr := res.Verify(); verr != nil {
				return nil, verr
			}
			return json.Marshal(res)
		case err == nil:
			// The flow ran to completion without any campaign matching the
			// key: coordinator and worker disagree about the flow's inputs.
			return nil, fmt.Errorf("shard: flow %q never reached the target campaign (key %+v)", p.Flow.Kind, p.Key)
		default:
			return nil, err
		}
	}
}
