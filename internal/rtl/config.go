package rtl

import "fmt"

// Config parameterizes the generated pipeline netlists. Widths are small
// relative to a real 64-bit core (the paper's claims concern structure, not
// datapath width), but every structural element — CAM wakeup, select trees,
// compaction muxes, map tables, LSQ search trees, bypass networks — is
// present at full logic detail.
type Config struct {
	Ways       int // superscalar width (frontend ways == backend ways)
	OpW        int // opcode bits
	ArchW      int // architectural register specifier bits
	TagW       int // physical tag bits
	DataW      int // datapath payload bits
	AddrW      int // LSQ address bits
	IQEntries  int // issue-queue entries (split into two halves in Rescue)
	LSQEntries int // load/store queue entries (two halves)
	TempSlots  int // Rescue inter-segment compaction buffer entries
}

// Default returns the full-size model: a 4-way pipeline with the paper's
// two-half 16-entry issue queue model. (The performance simulator uses the
// paper's Table 1 sizes; the netlist uses reduced entry counts so ATPG
// stays tractable while keeping identical structure.)
func Default() Config {
	return Config{
		Ways:       4,
		OpW:        4,
		ArchW:      4,
		TagW:       5,
		DataW:      8,
		AddrW:      8,
		IQEntries:  16,
		LSQEntries: 8,
		TempSlots:  4,
	}
}

// Small returns a reduced configuration for unit tests.
func Small() Config {
	return Config{
		Ways:       2,
		OpW:        3,
		ArchW:      3,
		TagW:       4,
		DataW:      4,
		AddrW:      4,
		IQEntries:  8,
		LSQEntries: 4,
		TempSlots:  2,
	}
}

// Validate checks configuration invariants.
func (c Config) Validate() error {
	if c.Ways < 2 || c.Ways%2 != 0 {
		return fmt.Errorf("rtl: Ways must be even and >= 2, got %d", c.Ways)
	}
	if c.IQEntries%2 != 0 || c.LSQEntries%2 != 0 {
		return fmt.Errorf("rtl: queue entry counts must be even")
	}
	if c.TempSlots < 1 || c.TempSlots > c.IQEntries/2 {
		return fmt.Errorf("rtl: TempSlots must be in [1, IQEntries/2]")
	}
	for _, w := range []int{c.OpW, c.ArchW, c.TagW, c.DataW, c.AddrW} {
		if w < 1 || w > 16 {
			return fmt.Errorf("rtl: field widths must be in [1,16]")
		}
	}
	return nil
}

// feGroup returns the frontend fault-equivalence group of way w (ways are
// paired: 0,1 -> group 0; 2,3 -> group 1; and so on).
func (c Config) feGroup(w int) int { return w / 2 }

// NumFEGroups returns the number of frontend groups.
func (c Config) NumFEGroups() int { return c.Ways / 2 }
