// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus the ablations DESIGN.md calls out and
// micro-benchmarks of the hot substrates. Reduced configurations and
// instruction counts keep `go test -bench=.` tractable; the cmd/ binaries
// run the full-scale versions.
package rescue_test

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"rescue"
	"rescue/internal/area"
	"rescue/internal/atpg"
	"rescue/internal/core"
	"rescue/internal/fault"
	"rescue/internal/netlist"
	"rescue/internal/rtl"
	"rescue/internal/scan"
	"rescue/internal/uarch"
	"rescue/internal/workload"
	"rescue/internal/yield"
)

// ---------------------------------------------------------------- Table 2

// BenchmarkTable2Areas regenerates the component relative-area table.
func BenchmarkTable2Areas(b *testing.B) {
	var base, resc rescue.AreaModel
	for i := 0; i < b.N; i++ {
		base = rescue.BaselineArea()
		resc = rescue.RescueArea()
	}
	b.ReportMetric(base.Total, "baseline-mm2")
	b.ReportMetric(resc.Total, "rescue-mm2")
	b.ReportMetric(resc.Frac(area.IntBE)*100, "intBE-%")
	b.ReportMetric(resc.Frac(area.FPBE)*100, "fpBE-%")
	b.ReportMetric(resc.Frac(area.Chipkill)*100, "chipkill-%")
	if b.N == 1 {
		b.Logf("Table 2: baseline %.1f mm², Rescue %.1f mm² (paper: ~96 / ~106.7)", base.Total, resc.Total)
		for g := area.Group(0); g < area.NumGroups; g++ {
			b.Logf("  %-12s %5.1f%%", g, resc.Frac(g)*100)
		}
	}
}

// ---------------------------------------------------------------- Table 3

// table3 caches the expensive ATPG runs across benchmark iterations.
var table3 map[rescue.Variant]rescue.ScanSummary

func table3Rows(b *testing.B) map[rescue.Variant]rescue.ScanSummary {
	b.Helper()
	if table3 != nil {
		return table3
	}
	table3 = map[rescue.Variant]rescue.ScanSummary{}
	for _, v := range []rescue.Variant{rescue.Baseline, rescue.RescueDesign} {
		sys, err := rescue.Build(rescue.SmallConfig(), v)
		if err != nil {
			b.Fatal(err)
		}
		tp := sys.GenerateTests(rescue.DefaultGenConfig())
		table3[v] = sys.Summary(tp)
	}
	return table3
}

// BenchmarkTable3ScanChain regenerates the scan-chain data rows (reduced
// config; same shape as the paper: Rescue has more cells/faults and a
// modest test-time increase at similar coverage).
func BenchmarkTable3ScanChain(b *testing.B) {
	var rows map[rescue.Variant]rescue.ScanSummary
	for i := 0; i < b.N; i++ {
		table3 = nil // regenerate each iteration so timing is honest
		rows = table3Rows(b)
	}
	base, resc := rows[rescue.Baseline], rows[rescue.RescueDesign]
	b.ReportMetric(float64(base.Faults), "base-faults")
	b.ReportMetric(float64(resc.Faults), "rescue-faults")
	b.ReportMetric(float64(base.Cycles), "base-cycles")
	b.ReportMetric(float64(resc.Cycles), "rescue-cycles")
	b.ReportMetric((float64(resc.Cycles)/float64(base.Cycles)-1)*100, "cycle-increase-%")
	b.Logf("Table 3 (reduced): base %d faults/%d cells/%d vec/%d cyc; rescue %d/%d/%d/%d",
		base.Faults, base.ScanCells, base.Vectors, base.Cycles,
		resc.Faults, resc.ScanCells, resc.Vectors, resc.Cycles)
}

// ------------------------------------------------- Section 6.1 isolation

// BenchmarkFaultIsolation6000 runs the per-stage fault-isolation campaign
// (100 faults per stage at bench scale; cmd/rescue-isolate runs 1000).
func BenchmarkFaultIsolation6000(b *testing.B) {
	sys, err := rescue.Build(rescue.SmallConfig(), rescue.RescueDesign)
	if err != nil {
		b.Fatal(err)
	}
	tp := sys.GenerateTests(rescue.DefaultGenConfig())
	b.ResetTimer()
	var rep rescue.IsolationReport
	for i := 0; i < b.N; i++ {
		rep = sys.IsolateCampaign(tp, 100, rescue.Stages(), int64(i)+1, 0)
	}
	total := rep.Isolated + rep.Wrong + rep.Ambiguous
	b.ReportMetric(float64(rep.Isolated), "isolated")
	b.ReportMetric(float64(rep.Wrong+rep.Ambiguous), "failures")
	b.Logf("isolation: %d/%d correct (paper: 6000/6000)", rep.Isolated, total)
	if rep.Wrong+rep.Ambiguous > 0 {
		b.Fatalf("isolation failures: %+v", rep)
	}
}

// ---------------------------------------------------------------- Figure 8

// BenchmarkFigure8IPC regenerates the IPC-degradation series on a
// benchmark subset (cmd/rescue-sim runs all 23 at 1M instructions).
func BenchmarkFigure8IPC(b *testing.B) {
	names := []string{"gzip", "bzip2", "swim", "mcf", "equake", "twolf"}
	var rows []rescue.IPCRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = rescue.IPCStudy(names, 10_000, 60_000)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sum float64
	for _, r := range rows {
		sum += r.DegradationPct
		b.Logf("%-8s base %.3f rescue %.3f (%.1f%%)", r.Benchmark, r.Baseline, r.Rescue, r.DegradationPct)
	}
	b.ReportMetric(sum/float64(len(rows)), "mean-degradation-%")
}

// ---------------------------------------------------------------- Figure 9

// BenchmarkFigure9YAT regenerates the YAT comparison on a 2-benchmark
// subset (cmd/rescue-yat runs all 23).
func BenchmarkFigure9YAT(b *testing.B) {
	names := []string{"gzip", "swim"}
	var rows []rescue.YATRow
	for i := 0; i < b.N; i++ {
		models := map[int]*rescue.PerfModel{}
		for _, node := range rescue.Nodes() {
			pm, err := rescue.BuildPerfModel(node, names, 2_000, 20_000)
			if err != nil {
				b.Fatal(err)
			}
			models[node.NodeNM] = pm
		}
		var err error
		rows, err = rescue.YATStudy(rescue.Node(90), models)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Growth == 0.3 {
			b.Logf("%dnm 30%%: none %.3f cs %.3f rescue %.3f (+%.1f%% over CS)",
				r.NodeNM, r.RelNone, r.RelCS, r.RelRescue, r.RescueOverCSPct)
			if r.NodeNM == 32 {
				b.ReportMetric(r.RescueOverCSPct, "rescue-over-cs-32nm-%")
			}
			if r.NodeNM == 18 {
				b.ReportMetric(r.RescueOverCSPct, "rescue-over-cs-18nm-%")
			}
		}
	}
}

// ------------------------------------------------------------- Ablations

// BenchmarkAblationReplayPolicy compares the paper's replay-the-smaller-
// half policy against replay-all and an oracle combiner.
func BenchmarkAblationReplayPolicy(b *testing.B) {
	prof, _ := workload.ByName("crafty")
	for _, pol := range []uarch.ReplayPolicy{uarch.ReplaySmallerHalf, uarch.ReplayAll, uarch.OracleCombine} {
		b.Run(pol.String(), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				p := uarch.RescueParams()
				p.ReplayPolicy = pol
				s, err := uarch.New(p, prof)
				if err != nil {
					b.Fatal(err)
				}
				ipc = s.Run(10_000, 60_000).IPC()
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

// BenchmarkAblationCompactionBuffer sweeps the inter-segment buffer depth.
func BenchmarkAblationCompactionBuffer(b *testing.B) {
	prof, _ := workload.ByName("bzip2")
	for _, slots := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("slots-%d", slots), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				p := uarch.RescueParams()
				p.CompBufSlots = slots
				s, err := uarch.New(p, prof)
				if err != nil {
					b.Fatal(err)
				}
				ipc = s.Run(10_000, 60_000).IPC()
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

// BenchmarkAblationRenameSplit isolates the cost of the two extra shift
// stages on the misprediction path (Section 4.1/4.2) by comparing Rescue
// with and without the +2 frontend depth.
func BenchmarkAblationRenameSplit(b *testing.B) {
	prof, _ := workload.ByName("twolf") // branchy
	for _, extra := range []int{0, 2} {
		b.Run(fmt.Sprintf("extra-depth-%d", extra), func(b *testing.B) {
			var ipc float64
			for i := 0; i < b.N; i++ {
				p := uarch.RescueParams()
				p.FrontendDepth = uarch.DefaultParams().FrontendDepth + extra
				s, err := uarch.New(p, prof)
				if err != nil {
					b.Fatal(err)
				}
				ipc = s.Run(10_000, 60_000).IPC()
			}
			b.ReportMetric(ipc, "ipc")
		})
	}
}

// BenchmarkAblationGranularity compares map-out granularities at 18nm:
// chip-kill (no redundancy), core sparing, and Rescue's half-pipeline
// map-out — Figure 9's three bars as a single metric.
func BenchmarkAblationGranularity(b *testing.B) {
	flat := map[yield.CoreConfig]float64{}
	for _, c := range yield.Configs() {
		flat[c] = 0.95
	}
	flat[yield.CoreConfig{}] = 1.0
	base := yield.CoreModel{Area: area.BaselineWithScan(), Full: 1.0}
	resc := yield.CoreModel{Area: area.Rescue(), Full: 1.0, IPC: flat}
	var r yield.ChipResult
	for i := 0; i < b.N; i++ {
		r = yield.Chip(rescue.Node(18), rescue.Node(90), 0.3, base, resc)
	}
	b.ReportMetric(r.NoRedundancy/r.Ideal, "rel-none")
	b.ReportMetric(r.CoreSparing/r.Ideal, "rel-cs")
	b.ReportMetric(r.Rescue/r.Ideal, "rel-rescue")
}

// BenchmarkAblationClustering sweeps the negative-binomial alpha: heavier
// clustering (small alpha) helps every scheme; the paper uses ITRS's 2.
func BenchmarkAblationClustering(b *testing.B) {
	flat := map[yield.CoreConfig]float64{}
	for _, c := range yield.Configs() {
		flat[c] = 0.95
	}
	flat[yield.CoreConfig{}] = 1.0
	base := yield.CoreModel{Area: area.BaselineWithScan(), Full: 1.0}
	resc := yield.CoreModel{Area: area.Rescue(), Full: 1.0, IPC: flat}
	for _, alpha := range []float64{0.5, 1, 2, 4, 10} {
		b.Run(fmt.Sprintf("alpha-%g", alpha), func(b *testing.B) {
			var r yield.ChipResult
			for i := 0; i < b.N; i++ {
				r = yield.ChipAlpha(rescue.Node(18), rescue.Node(90), 0.3, base, resc, alpha)
			}
			b.ReportMetric(r.CoreSparing/r.Ideal, "rel-cs")
			b.ReportMetric(r.Rescue/r.Ideal, "rel-rescue")
		})
	}
}

// BenchmarkAblationSelfHeal evaluates the related-work integration the
// paper suggests: wrapping the predictor tables in self-healing arrays
// (Bower et al.) removes ~a third of the chipkill area. The metric pair
// shows Rescue YAT with and without the extension at 18nm.
func BenchmarkAblationSelfHeal(b *testing.B) {
	flat := map[yield.CoreConfig]float64{}
	for _, c := range yield.Configs() {
		flat[c] = 0.95
	}
	flat[yield.CoreConfig{}] = 1.0
	base := yield.CoreModel{Area: area.BaselineWithScan(), Full: 1.0}
	plain := yield.CoreModel{Area: area.Rescue(), Full: 1.0, IPC: flat}
	healed := yield.CoreModel{Area: area.RescueSelfHeal(0.35), Full: 1.0, IPC: flat}
	var rPlain, rHealed yield.ChipResult
	for i := 0; i < b.N; i++ {
		rPlain = yield.Chip(rescue.Node(18), rescue.Node(90), 0.3, base, plain)
		rHealed = yield.Chip(rescue.Node(18), rescue.Node(90), 0.3, base, healed)
	}
	b.ReportMetric(rPlain.Rescue/rPlain.Ideal, "rel-rescue")
	b.ReportMetric(rHealed.Rescue/rHealed.Ideal, "rel-rescue-selfheal")
	// and the IPC side: a damaged-but-healed BTB costs little
	prof, _ := workload.ByName("gzip")
	p := uarch.RescueParams()
	p.BTBFaultFrac = 0.1
	s, err := uarch.New(p, prof)
	if err != nil {
		b.Fatal(err)
	}
	ipc := s.Run(5_000, 30_000).IPC()
	b.ReportMetric(ipc, "ipc-damaged-btb")
}

// -------------------------------------------------------- micro-benchmarks

// BenchmarkFaultSimulation measures event-driven per-fault simulation cost
// on the Rescue netlist.
func BenchmarkFaultSimulation(b *testing.B) {
	d, err := rtl.Build(rtl.Small(), rtl.RescueDesign)
	if err != nil {
		b.Fatal(err)
	}
	c, _ := scan.Insert(d.N, 1)
	u := fault.NewUniverse(d.N)
	g := atpg.Generate(c, u, atpg.DefaultGenConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := u.Collapsed[i%len(u.Collapsed)]
		g.Sim.Run(f, 1)
	}
}

// campaignFixture caches the expensive ATPG setup shared by the campaign
// benchmarks.
var campaignFixture struct {
	sim     *fault.Sim
	fullSim *fault.Sim // same chain + patterns, cone clipping disabled
	u       *fault.Universe
}

func campaignSetup(b *testing.B) (*fault.Sim, *fault.Universe) {
	b.Helper()
	if campaignFixture.sim == nil {
		d, err := rtl.Build(rtl.Small(), rtl.RescueDesign)
		if err != nil {
			b.Fatal(err)
		}
		c, _ := scan.Insert(d.N, 1)
		u := fault.NewUniverse(d.N)
		g := atpg.Generate(c, u, atpg.DefaultGenConfig())
		campaignFixture.sim = g.Sim
		campaignFixture.fullSim = fault.NewSimCone(c, g.Sim.Patterns, 0)
		campaignFixture.u = u
	}
	return campaignFixture.sim, campaignFixture.u
}

// BenchmarkFaultCampaign compares one full detection sweep over the
// collapsed fault universe (the Table 3 coverage workload): the serial
// Sim path vs the campaign engine at 1, 2, and NumCPU workers. Results
// are bit-identical in every mode; only the wall time moves.
func BenchmarkFaultCampaign(b *testing.B) {
	sim, u := campaignSetup(b)
	faults := u.Collapsed

	// The same sweep through the forced full-netlist walk (cone threshold
	// 0) — the reference engine and the denominator of the clipping
	// speedup that scripts/bench-sim.sh gates on.
	b.Run("full-serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, f := range faults {
				campaignFixture.fullSim.Run(f, 1)
			}
		}
		b.ReportMetric(float64(len(faults)), "faults/op")
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, f := range faults {
				sim.Run(f, 1)
			}
		}
		b.ReportMetric(float64(len(faults)), "faults/op")
	})
	workerCounts := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		workerCounts = append(workerCounts, n)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			b.ReportAllocs()
			camp := fault.NewCampaign(sim, fault.CampaignConfig{Workers: w, Drop: true})
			var st fault.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = camp.Run(context.Background(), faults)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(faults)), "faults/op")
			b.ReportMetric(float64(st.Dropped), "dropped-word-sims")
		})
	}

	// Progress-hook overhead: the same sweep with and without a
	// ProgressFunc installed. The hook is one atomic add plus an indirect
	// call per fault; the delta between these two should stay under 2%.
	for _, hooked := range []bool{false, true} {
		name := "progress-off"
		if hooked {
			name = "progress-on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			cfg := fault.CampaignConfig{Workers: 2, Drop: true}
			var last int64
			if hooked {
				cfg.Progress = func(done, total int64) { atomic.StoreInt64(&last, done) }
			}
			camp := fault.NewCampaign(sim, cfg)
			for i := 0; i < b.N; i++ {
				if _, _, err := camp.Run(context.Background(), faults); err != nil {
					b.Fatal(err)
				}
			}
			if hooked && atomic.LoadInt64(&last) != int64(len(faults)) {
				b.Fatalf("final progress %d, want %d", atomic.LoadInt64(&last), len(faults))
			}
			b.ReportMetric(float64(len(faults)), "faults/op")
		})
	}
}

// BenchmarkPodem measures deterministic test generation per fault.
func BenchmarkPodem(b *testing.B) {
	d, err := rtl.Build(rtl.Small(), rtl.RescueDesign)
	if err != nil {
		b.Fatal(err)
	}
	u := fault.NewUniverse(d.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := u.Collapsed[i%len(u.Collapsed)]
		atpg.Podem(d.N, f, 100)
	}
}

// BenchmarkUarchCycles measures simulated instructions per second.
func BenchmarkUarchCycles(b *testing.B) {
	prof, _ := workload.ByName("gzip")
	s, err := uarch.New(uarch.RescueParams(), prof)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	st := s.Run(0, int64(b.N))
	_ = st
}

// BenchmarkNetlistEval measures 64-lane full-netlist evaluation.
func BenchmarkNetlistEval(b *testing.B) {
	d, err := rtl.Build(rtl.Small(), rtl.RescueDesign)
	if err != nil {
		b.Fatal(err)
	}
	st := d.N.NewState()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.EvalComb(netlist.NoFault)
	}
}

// BenchmarkICIAudit measures the cone analysis of the Rescue netlist.
func BenchmarkICIAudit(b *testing.B) {
	sys, err := core.Build(rtl.Small(), rtl.RescueDesign)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Design.N.FanInComps()
	}
}
