package fault

import (
	"math/bits"
	"sort"
	"sync"

	"rescue/internal/netlist"
	"rescue/internal/scan"
)

// FailBit records one failing observation: pattern word w, lane l within
// the word, observation point index obs (netlist.ObsPoints order: FF scan
// bits first, then primary outputs).
type FailBit struct {
	Word, Lane, Obs int
}

// Result is the outcome of simulating one fault against a pattern set.
//
// Ordering contract (pinned by TestResultOrdering and relied on by the
// differential harness for plain slice equality): Fails is word-major —
// all bits of pattern word w precede those of word w+1 — and within a
// word sorted by (Obs, Lane) ascending, with no duplicates. FailObs lists
// each failing observation point once, ordered by the word of its first
// failure, then by observation index within that word. Every independent
// implementation of this contract (Sim, Campaign at any worker count,
// Oracle, the cone-clipped and forced full-walk engines) produces
// byte-identical Results for maxFail = 0.
type Result struct {
	Detected bool
	// Fails lists failing bits, at most the maxFail cap passed to Run
	// (0 = unlimited). Isolation needs every distinct failing obs point,
	// detection needs only one. When the cap truncates a word, the bits
	// kept are a deterministic subset of that word's canonical order.
	Fails []FailBit
	// FailObs is the deduplicated set of failing observation points.
	// When the cap truncated Fails, FailObs may still list points whose
	// individual bits were dropped (capped callers only use Detected).
	FailObs []int
}

// DefaultConeThreshold is the fan-out-cone size (in gates) above which a
// net's cone is not stored and faults seeded on it fall back to the
// full-netlist event walk. Cones beyond ~1k gates approach the whole
// circuit anyway, so clipping buys nothing there and the threshold bounds
// cone memory at O(threshold) per net worst case.
const DefaultConeThreshold = 1024

// simCore is the read-only half of a fault simulator: the netlist, scan
// chain, pattern set, precomputed good-machine images, and static
// structure. Once the pattern set stops growing, a simCore is safe to
// share across any number of concurrent workers — everything mutable
// lives in simScratch, and the scratch pool below hands one to each.
//
// The gate structure is stored structure-of-arrays (kind/out/pin arrays
// indexed by GateID, flattened pin and reader lists in CSR form) so the
// event loop streams through dense int arrays instead of chasing
// netlist.Gate records.
type simCore struct {
	C        *scan.Chain
	N        *netlist.Netlist
	Patterns []*scan.Pattern

	goodResp [][]uint64 // [word][obs]
	goodNets [][]uint64 // [word][net] post-EvalComb values (pre-capture)
	masks    []uint64   // [word] cached Pattern.LaneMask()

	// static structure (structure-of-arrays)
	level    []int32 // per-gate combinational level
	maxLevel int32
	kind     []netlist.GateKind // per-gate kind
	gateOut  []netlist.NetID    // per-gate output net
	pinOff   []int32            // per-gate offset into pins (len gates+1)
	pins     []netlist.NetID    // flattened gate input nets
	rdrOff   []int32            // per-net offset into rdrs (len nets+1)
	rdrs     []netlist.GateID   // flattened per-net reading gates

	// Observation points per net, as intrusive chains: a net can be the D
	// input of several FFs and a primary output at the same time, and every
	// such point must report a failing bit. obsHead[net] is the first obs
	// index reading the net (-1 = unobserved); obsNext[obs] links to the
	// next obs index sharing the same net.
	obsHead []int32
	obsNext []int32
	numObs  int

	// Fan-out cones, CSR per net: coneGates[coneOff[net]:coneOff[net+1]]
	// is the transitive fan-out gate set of the net, sorted by (level,
	// gate id) so a single forward sweep evaluates it in topological
	// order. coneObs is the reachable observation-point set (points on
	// the net itself or on any cone gate's output). coneFull marks nets
	// whose cone exceeded the threshold: no cone is stored and faults
	// there take the full-netlist walk. coneDownObs reports whether any
	// observation point is reachable beyond the seed net itself — when
	// false, propagation cannot record anything and is skipped entirely.
	coneThreshold int
	coneOff       []int32
	coneGates     []netlist.GateID
	coneObsOff    []int32
	coneObs       []int32
	coneFull      []bool
	coneDownObs   []bool

	// Excitation index: per net (and per observation point), one bit per
	// pattern word saying whether any masked lane carries a 0 (has0) or a
	// 1 (has1). A stuck-at-1 fault is excitable in word w only if its
	// seed net has a 0 lane there, and symmetrically for stuck-at-0 — so
	// the cone walk skips a whole (fault, word) simulation with one bit
	// test, never touching the word's 32KB good-machine image. Rows are
	// net-major (net*exStride + w/64) so one fault's sweep over words
	// stays inside a single cache line per 512 words.
	// exPinFlip0/1 sharpen the filter for input-pin faults: bit w is set
	// iff forcing that pin to the stuck value changes the gate's output in
	// word w (computed from the good image at AddPattern time). Absorbed
	// words — pin excitable but the gate swallows the change, e.g. an AND
	// with another input at 0 — are skipped without even the seed
	// evaluation, making the skip exact for every fault type.
	exStride   int
	exNetHas0  []uint64
	exNetHas1  []uint64
	exObsHas0  []uint64
	exObsHas1  []uint64
	exPinFlip0 []uint64
	exPinFlip1 []uint64

	// Net-major transposed good image for the clipped path: the value of
	// net n in pattern word w is goodT[n*gtStride+w] (and the response of
	// obs point o is goodRespT[o*gtStride+w]). A clipped fault touches the
	// same ~cone-size set of nets in every word, so iterating words walks
	// short contiguous per-net rows instead of re-faulting a cold 32KB
	// word-major image per word. The full walk keeps the word-major
	// goodNets layout — it scans every net of one word sequentially, which
	// is exactly what word-major is good at.
	gtStride  int
	goodT     []uint64
	goodRespT []uint64

	// Scratch pool shared by every Campaign over this core: scratches are
	// grow-only arenas, so reusing them across runs eliminates per-run
	// allocation churn. Concurrent campaigns simply grow the pool.
	scrMu   sync.Mutex
	scrPool []*simScratch
}

// epochResetLimit bounds the epoch counters well below int32 overflow
// (with headroom for one full fault's worth of increments past the check
// in beginFault). Crossing it re-initializes the marker slab, so epochs
// can never alias stale state no matter how long a scratch lives.
const epochResetLimit = int32(1) << 30

// simScratch is the mutable per-worker half: faulty-value overlays, event
// queues, and dedup markers. The three int32 marker arrays live in one
// grow-only slab allocation and are epoch-cleared — bumping a counter
// invalidates every entry at once — so a scratch is allocated once and
// then serves every (fault, word) simulation of every campaign with zero
// further garbage.
type simScratch struct {
	scratch []uint64           // per-net faulty values (valid when epoch matches)
	slab    []int32            // backing arena for the three marker arrays below
	epoch   []int32            // per-net overlay validity marker (vs curEp)
	schedEp []int32            // per-gate scheduled marker (vs curEp)
	obsEp   []int32            // per-obs FailObs dedup marker (vs runEp)
	curEp   int32              // current (fault, word) epoch
	runEp   int32              // current fault epoch
	buckets [][]netlist.GateID // full-walk event queue bucketed by level
	tiles   []tileState        // campaign word-tiling state, reused per chunk

	// Chunked result arenas for detection mode (maxFail == 1): each
	// detected fault's one-element Fails and small FailObs slice is carved
	// from a shared chunk instead of its own heap allocation, turning tens
	// of thousands of mallocs per sweep into a handful. Segments are
	// handed out capacity-limited (three-index slices), so a caller
	// appending to a returned Result reallocates instead of clobbering a
	// neighboring fault's bits.
	failPool []FailBit
	obsPool  []int

	// counters for campaign Stats
	words  int64 // (fault, word) pairs event-simulated
	events int64 // gate evaluations performed
}

// Sim is a fault simulator bound to a netlist, a scan chain, and a growable
// pattern set. Good-machine responses and full good-machine net images are
// precomputed per pattern word; each fault is then simulated event-driven
// inside its precomputed fan-out cone — only gates the fault effect
// actually reaches are re-evaluated, good-machine values are read (never
// recomputed) outside the propagation region, and a fault whose site is
// not excited by a word costs O(1) for that word.
//
// A Sim is a simCore plus one private simScratch, so its methods are the
// serial path; Campaign fans the same core out across workers.
type Sim struct {
	simCore
	scr simScratch
}

// NewSim builds a simulator with the default cone threshold and
// precomputes good-machine behavior for the given patterns (which may be
// nil; use AddPattern to grow the set).
func NewSim(c *scan.Chain, patterns []*scan.Pattern) *Sim {
	return NewSimCone(c, patterns, DefaultConeThreshold)
}

// NewSimCone is NewSim with an explicit fan-out-cone threshold.
// threshold <= 0 disables cone clipping entirely: every fault takes the
// full-netlist event walk (the reference path the differential harness
// pins the clipped path against).
func NewSimCone(c *scan.Chain, patterns []*scan.Pattern, threshold int) *Sim {
	n := c.N
	s := &Sim{simCore: simCore{C: c, N: n}}
	// levels + SoA gate arrays
	nGates := n.NumGates()
	s.level = make([]int32, nGates)
	s.kind = make([]netlist.GateKind, nGates)
	s.gateOut = make([]netlist.NetID, nGates)
	s.pinOff = make([]int32, nGates+1)
	for gi := range n.Gates {
		s.kind[gi] = n.Gates[gi].Kind
		s.gateOut[gi] = n.Gates[gi].Out
		s.pinOff[gi+1] = s.pinOff[gi] + int32(len(n.Gates[gi].In))
	}
	s.pins = make([]netlist.NetID, s.pinOff[nGates])
	for gi := range n.Gates {
		copy(s.pins[s.pinOff[gi]:s.pinOff[gi+1]], n.Gates[gi].In)
	}
	for _, gi := range n.TopoOrder() {
		var lv int32
		for _, in := range s.pins[s.pinOff[gi]:s.pinOff[gi+1]] {
			if d := n.DriverGate(in); d >= 0 {
				if s.level[d]+1 > lv {
					lv = s.level[d] + 1
				}
			}
		}
		s.level[gi] = lv
		if lv > s.maxLevel {
			s.maxLevel = lv
		}
	}
	// per-net readers, CSR
	nNets := n.NumNets()
	s.rdrOff = make([]int32, nNets+1)
	for _, in := range s.pins {
		s.rdrOff[in+1]++
	}
	for i := 0; i < nNets; i++ {
		s.rdrOff[i+1] += s.rdrOff[i]
	}
	s.rdrs = make([]netlist.GateID, len(s.pins))
	fill := make([]int32, nNets)
	for gi := range n.Gates {
		for _, in := range s.pins[s.pinOff[gi]:s.pinOff[gi+1]] {
			s.rdrs[s.rdrOff[in]+fill[in]] = netlist.GateID(gi)
			fill[in]++
		}
	}
	// observation chains per net
	s.numObs = n.NumFFs() + len(n.Outputs)
	s.obsHead = make([]int32, nNets)
	for i := range s.obsHead {
		s.obsHead[i] = -1
	}
	s.obsNext = make([]int32, s.numObs)
	addObs := func(net netlist.NetID, oi int32) {
		s.obsNext[oi] = s.obsHead[net]
		s.obsHead[net] = oi
	}
	// Insert in reverse so each chain reads out in ascending obs order.
	for oi := len(n.Outputs) - 1; oi >= 0; oi-- {
		addObs(n.Outputs[oi], int32(n.NumFFs()+oi))
	}
	for fi := n.NumFFs() - 1; fi >= 0; fi-- {
		addObs(n.FFs[fi].D, int32(fi))
	}
	s.buildCones(threshold)
	s.scr.init(&s.simCore)
	for _, p := range patterns {
		s.AddPattern(p)
	}
	return s
}

// init sizes a scratch for the core's netlist.
func (scr *simScratch) init(c *simCore) {
	n := c.N
	scr.scratch = make([]uint64, n.NumNets())
	// One arena allocation backs all three epoch-cleared marker arrays.
	nNets, nGates := n.NumNets(), n.NumGates()
	scr.slab = make([]int32, nNets+nGates+c.numObs)
	scr.epoch = scr.slab[:nNets:nNets]
	scr.schedEp = scr.slab[nNets : nNets+nGates : nNets+nGates]
	scr.obsEp = scr.slab[nNets+nGates:]
	scr.buckets = make([][]netlist.GateID, c.maxLevel+1)
	scr.resetEpochs()
}

// resetEpochs re-initializes every epoch marker and rewinds the counters.
// Called at scratch birth and again whenever a counter approaches the
// int32 ceiling, so marker comparisons can never alias across epochs.
func (scr *simScratch) resetEpochs() {
	for i := range scr.slab {
		scr.slab[i] = -1
	}
	scr.curEp = 0
	scr.runEp = 0
}

// acquireScratch hands out one initialized scratch per requested worker,
// reusing pooled ones first. Scratches persist for the life of the core,
// so steady-state campaigns allocate nothing here.
func (c *simCore) acquireScratch(n int) []*simScratch {
	c.scrMu.Lock()
	defer c.scrMu.Unlock()
	out := make([]*simScratch, n)
	for i := 0; i < n; i++ {
		if k := len(c.scrPool); k > 0 {
			out[i] = c.scrPool[k-1]
			c.scrPool = c.scrPool[:k-1]
		} else {
			scr := &simScratch{}
			scr.init(c)
			out[i] = scr
		}
	}
	return out
}

// releaseScratch returns scratches to the pool for the next run.
func (c *simCore) releaseScratch(scrs []*simScratch) {
	c.scrMu.Lock()
	defer c.scrMu.Unlock()
	c.scrPool = append(c.scrPool, scrs...)
}

// AddPattern appends a pattern word and precomputes its good-machine image.
// Used by the ATPG generator, which grows the pattern set incrementally.
// Not safe to call while a Campaign over this simulator is running.
func (s *simCore) AddPattern(p *scan.Pattern) {
	st := s.N.NewState()
	s.C.Load(st, p)
	st.EvalComb(netlist.NoFault)
	nets := make([]uint64, len(st.Vals))
	copy(nets, st.Vals)
	s.goodNets = append(s.goodNets, nets)
	resp := make([]uint64, s.N.NumFFs()+len(s.N.Outputs))
	for fi := 0; fi < s.N.NumFFs(); fi++ {
		resp[fi] = st.Get(s.N.FFs[fi].D)
	}
	for oi, out := range s.N.Outputs {
		resp[s.N.NumFFs()+oi] = st.Get(out)
	}
	s.goodResp = append(s.goodResp, resp)
	w := len(s.Patterns)
	s.Patterns = append(s.Patterns, p)
	s.masks = append(s.masks, p.LaneMask())

	// Maintain the net-major transposed image for the new word.
	if w >= s.gtStride {
		s.growGoodT(2*s.gtStride + 64)
	}
	gst := s.gtStride
	for net, v := range nets {
		s.goodT[net*gst+w] = v
	}
	for oi, v := range resp {
		s.goodRespT[oi*gst+w] = v
	}

	// Maintain the excitation index for the new word.
	blk, bit := w>>6, uint(w&63)
	if blk >= s.exStride {
		s.growExcite(blk + 1)
	}
	m := s.masks[w]
	for net, v := range nets {
		if v&m != 0 {
			s.exNetHas1[net*s.exStride+blk] |= 1 << bit
		}
		if ^v&m != 0 {
			s.exNetHas0[net*s.exStride+blk] |= 1 << bit
		}
	}
	for oi, v := range resp {
		if v&m != 0 {
			s.exObsHas1[oi*s.exStride+blk] |= 1 << bit
		}
		if ^v&m != 0 {
			s.exObsHas0[oi*s.exStride+blk] |= 1 << bit
		}
	}
	var pbuf [8]uint64
	var pspill []uint64
	for gi := 0; gi < s.N.NumGates(); gi++ {
		lo, hi := s.pinOff[gi], s.pinOff[gi+1]
		ins := pbuf[:0]
		if int(hi-lo) > len(pbuf) {
			pspill = append(pspill[:0], make([]uint64, hi-lo)...)
			ins = pspill[:0]
		}
		for _, in := range s.pins[lo:hi] {
			ins = append(ins, nets[in])
		}
		gv := nets[s.gateOut[gi]]
		k := s.kind[gi]
		for j := range ins {
			sv := ins[j]
			ins[j] = 0
			if (evalGate(k, ins)^gv)&m != 0 {
				s.exPinFlip0[(int(lo)+j)*s.exStride+blk] |= 1 << bit
			}
			ins[j] = ^uint64(0)
			if (evalGate(k, ins)^gv)&m != 0 {
				s.exPinFlip1[(int(lo)+j)*s.exStride+blk] |= 1 << bit
			}
			ins[j] = sv
		}
	}
}

// growExcite widens the excitation-index rows to stride blocks of 64
// pattern words, preserving existing bits. Called every 64 AddPatterns.
func (s *simCore) growExcite(stride int) {
	grow := func(old []uint64, rows int) []uint64 {
		nw := make([]uint64, rows*stride)
		for r := 0; r < rows; r++ {
			copy(nw[r*stride:], old[r*s.exStride:(r+1)*s.exStride])
		}
		return nw
	}
	nNets := s.N.NumNets()
	s.exNetHas0 = grow(s.exNetHas0, nNets)
	s.exNetHas1 = grow(s.exNetHas1, nNets)
	s.exObsHas0 = grow(s.exObsHas0, s.numObs)
	s.exObsHas1 = grow(s.exObsHas1, s.numObs)
	s.exPinFlip0 = grow(s.exPinFlip0, len(s.pins))
	s.exPinFlip1 = grow(s.exPinFlip1, len(s.pins))
	s.exStride = stride
}

// growGoodT widens the transposed good-image rows to stride words,
// preserving existing values. Stride grows geometrically, so the
// amortized cost over incremental AddPattern calls stays linear.
func (s *simCore) growGoodT(stride int) {
	grow := func(old []uint64, rows int) []uint64 {
		nw := make([]uint64, rows*stride)
		for r := 0; r < rows; r++ {
			copy(nw[r*stride:], old[r*s.gtStride:(r+1)*s.gtStride])
		}
		return nw
	}
	s.goodT = grow(s.goodT, s.N.NumNets())
	s.goodRespT = grow(s.goodRespT, s.numObs)
	s.gtStride = stride
}

// GoodResponse returns the good-machine response words of pattern word w.
func (s *simCore) GoodResponse(w int) []uint64 { return s.goodResp[w] }

// Run simulates fault f against every pattern. If maxFail > 0, simulation
// stops after collecting that many failing bits (fast detection mode);
// isolation uses maxFail = 0 to gather every failing observation point.
func (s *Sim) Run(f netlist.Fault, maxFail int) Result {
	return s.simCore.run(&s.scr, f, maxFail, 0, len(s.Patterns))
}

// RunWord simulates fault f against pattern word w only — the ATPG
// fault-dropping inner loop.
func (s *Sim) RunWord(f netlist.Fault, w, maxFail int) Result {
	return s.simCore.run(&s.scr, f, maxFail, w, w+1)
}

// schedule enqueues a gate for (re)evaluation in the current full-walk
// event pass.
func (c *simCore) schedule(scr *simScratch, g netlist.GateID) {
	if scr.schedEp[g] == scr.curEp {
		return
	}
	scr.schedEp[g] = scr.curEp
	lv := c.level[g]
	scr.buckets[lv] = append(scr.buckets[lv], g)
}

func (c *simCore) run(scr *simScratch, f netlist.Fault, maxFail, wLo, wHi int) Result {
	var res Result
	c.beginFault(scr)
	c.simWords(scr, f, &res, maxFail, wLo, wHi)
	return res
}

// beginFault opens a fresh fault epoch (FailObs dedup scope) and applies
// the overflow guard that keeps epoch counters away from int32 wraparound.
func (c *simCore) beginFault(scr *simScratch) {
	if scr.curEp >= epochResetLimit || scr.runEp >= epochResetLimit {
		scr.resetEpochs()
	}
	scr.runEp++
}

// simWords simulates fault f over pattern words [wLo, wHi), appending to
// res, and reports whether the failing-bit cap was reached (after which
// the caller must not feed it further words for this fault). beginFault
// must have opened the fault's epoch; the campaign tiler calls simWords
// several times per fault with consecutive word windows, which is
// result-identical to one full-range call because a capped fault stops at
// its first failing word and an uncapped one accumulates independently
// per word.
func (c *simCore) simWords(scr *simScratch, f netlist.Fault, res *Result, maxFail, wLo, wHi int) bool {
	var stuckWord uint64
	if f.StuckAt1 {
		stuckWord = ^uint64(0)
	}

	// Resolve the seed site once per call: the net the stuck value first
	// appears on, and whether its stored cone clips this fault's walk.
	var seedNet netlist.NetID
	if f.Gate >= 0 {
		seedNet = c.gateOut[f.Gate]
	} else {
		seedNet = c.N.FFs[f.FF].Q
	}
	clipped := c.coneThreshold > 0 && !c.coneFull[seedNet]

	// Excitation rows for the clipped path: a word whose bit is clear in
	// every relevant row cannot differ from the good machine anywhere, so
	// the whole (fault, word) simulation is skipped in O(1). For a gate
	// fault the relevant net is the one the stuck value lands on (the
	// output net, or the forced input pin's net — if every masked lane of
	// that net already carries the stuck value, the faulty machine is the
	// good machine). An FF fault additionally captures the stuck value in
	// its own scan cell, so its own response row is OR-ed in.
	var exRow, exOwnRow []uint64
	if clipped {
		if f.Gate >= 0 && f.Pin >= 0 {
			pi := int(c.pinOff[f.Gate]) + f.Pin
			if f.StuckAt1 {
				exRow = c.exPinFlip1[pi*c.exStride : (pi+1)*c.exStride]
			} else {
				exRow = c.exPinFlip0[pi*c.exStride : (pi+1)*c.exStride]
			}
		} else if f.StuckAt1 {
			exRow = c.exNetHas0[int(seedNet)*c.exStride : (int(seedNet)+1)*c.exStride]
		} else {
			exRow = c.exNetHas1[int(seedNet)*c.exStride : (int(seedNet)+1)*c.exStride]
		}
		if f.Gate < 0 {
			if f.StuckAt1 {
				exOwnRow = c.exObsHas0[int(f.FF)*c.exStride : (int(f.FF)+1)*c.exStride]
			} else {
				exOwnRow = c.exObsHas1[int(f.FF)*c.exStride : (int(f.FF)+1)*c.exStride]
			}
		}
	}

	if exRow == nil {
		for w := wLo; w < wHi; w++ {
			scr.words++
			scr.curEp++
			failsStart := len(res.Fails)
			obsStart := len(res.FailObs)

			if clipped {
				c.coneWalkWord(scr, f, res, stuckWord, seedNet, maxFail, w)
			} else {
				c.fullWalkWord(scr, f, res, stuckWord, maxFail, w)
			}

			finalizeWord(res, failsStart, obsStart)
			if maxFail > 0 && len(res.Fails) >= maxFail {
				res.Fails = res.Fails[:maxFail]
				return true
			}
		}
		return false
	}

	// Excitable-word iteration: walk the set bits of the excitation rows
	// instead of testing every word, so a run of dead words costs one
	// popcount-style skip. Word accounting matches the plain loop exactly —
	// skipped words count as entered, words past a capping word do not.
	for base := wLo &^ 63; base < wHi; base += 64 {
		live := exRow[base>>6]
		if exOwnRow != nil {
			live |= exOwnRow[base>>6]
		}
		from, to := 0, 64
		if base < wLo {
			from = wLo - base
		}
		if base+64 > wHi {
			to = wHi - base
		}
		live = live >> uint(from) << uint(from)
		if to < 64 {
			live &= 1<<uint(to) - 1
		}
		prev := from
		for live != 0 {
			b := bits.TrailingZeros64(live)
			live &= live - 1
			scr.words += int64(b - prev + 1)
			prev = b + 1
			scr.curEp++
			failsStart := len(res.Fails)
			obsStart := len(res.FailObs)

			c.coneWalkWord(scr, f, res, stuckWord, seedNet, maxFail, base+b)

			finalizeWord(res, failsStart, obsStart)
			if maxFail > 0 && len(res.Fails) >= maxFail {
				res.Fails = res.Fails[:maxFail]
				return true
			}
		}
		scr.words += int64(to - prev)
	}
	return false
}

// coneWalkWord simulates one (fault, word) pair inside the seed net's
// precomputed fan-out cone: an O(1) excitation check first, then a
// topological sweep over only the cone's gates, reading good-machine
// values for everything outside the propagation region.
func (c *simCore) coneWalkWord(scr *simScratch, f netlist.Fault, res *Result,
	stuckWord uint64, seedNet netlist.NetID, maxFail, w int) {

	mask := c.masks[w]
	st := c.gtStride
	capped := false

	// The faulty FF's own scan cell captures the stuck value regardless of
	// excitation (same as the full walk's seeding step).
	if f.Gate < 0 {
		if diff := (stuckWord ^ c.goodRespT[int(f.FF)*st+w]) & mask; diff != 0 {
			c.recordFails(scr, res, int32(f.FF), diff, w, maxFail)
			capped = maxFail > 0 && len(res.Fails) >= maxFail
		}
	}

	// Seed value on the seed net.
	var v uint64
	if f.Gate >= 0 {
		if f.Pin >= 0 {
			v = c.evalGateForcedT(scr, w, f.Gate, int32(f.Pin), stuckWord)
		} else {
			v = stuckWord
		}
		// The seed gate's evaluation counts as an event either way, to
		// keep Stats.Events comparable with the full walk's seeding.
		scr.events++
	} else {
		v = stuckWord
	}
	if (v^c.goodT[int(seedNet)*st+w])&mask == 0 {
		return // not excited: nothing beyond the fault site can differ
	}
	scr.scratch[seedNet] = v
	scr.epoch[seedNet] = scr.curEp
	if c.obsHead[seedNet] >= 0 && c.observeNetT(scr, res, f, seedNet, v, mask, maxFail, w) {
		capped = true
	}
	if capped {
		return
	}
	if !c.coneDownObs[seedNet] {
		return // no observation point reachable beyond the seed net
	}

	// Schedule the seed net's readers, then sweep the level-sorted cone.
	// schedEp marks membership in this word's frontier; pending counts
	// marked-but-unvisited gates so the sweep exits as soon as the effect
	// dies, without touching the rest of the cone.
	pending := 0
	for j := c.rdrOff[seedNet]; j < c.rdrOff[seedNet+1]; j++ {
		g := c.rdrs[j]
		if scr.schedEp[g] != scr.curEp {
			scr.schedEp[g] = scr.curEp
			pending++
		}
	}
	cone := c.coneGates[c.coneOff[seedNet]:c.coneOff[seedNet+1]]
	for idx := 0; idx < len(cone) && pending > 0; idx++ {
		gi := cone[idx]
		if scr.schedEp[gi] != scr.curEp {
			continue
		}
		pending--
		scr.events++
		v := c.evalGateAtT(scr, w, gi)
		out := c.gateOut[gi]
		if (v^c.goodT[int(out)*st+w])&mask == 0 {
			continue // effect died here
		}
		scr.scratch[out] = v
		scr.epoch[out] = scr.curEp
		if c.obsHead[out] >= 0 && c.observeNetT(scr, res, f, out, v, mask, maxFail, w) {
			return
		}
		for j := c.rdrOff[out]; j < c.rdrOff[out+1]; j++ {
			g := c.rdrs[j]
			if scr.schedEp[g] != scr.curEp {
				scr.schedEp[g] = scr.curEp
				pending++
			}
		}
	}
}

// fullWalkWord simulates one (fault, word) pair with the full-netlist
// level-ordered event walk — the reference path, used when cones are
// disabled (threshold <= 0) or the seed net's cone overflowed the
// threshold. Differential property P7 pins the cone walk against it.
func (c *simCore) fullWalkWord(scr *simScratch, f netlist.Fault, res *Result,
	stuckWord uint64, maxFail, w int) {

	mask := c.masks[w]
	good := c.goodNets[w]
	for i := range scr.buckets {
		scr.buckets[i] = scr.buckets[i][:0]
	}

	// seed events at the fault site
	capped := false
	switch {
	case f.Gate >= 0:
		c.schedule(scr, f.Gate)
	case f.FF >= 0:
		q := c.N.FFs[f.FF].Q
		// the faulty FF's own scan cell captures the stuck value
		if diff := (stuckWord ^ c.goodResp[w][f.FF]) & mask; diff != 0 {
			c.recordFails(scr, res, int32(f.FF), diff, w, maxFail)
			capped = maxFail > 0 && len(res.Fails) >= maxFail
		}
		if (stuckWord^good[q])&mask != 0 {
			scr.scratch[q] = stuckWord
			scr.epoch[q] = scr.curEp
			for j := c.rdrOff[q]; j < c.rdrOff[q+1]; j++ {
				c.schedule(scr, c.rdrs[j])
			}
			// q itself may be observed directly — as another FF's D net
			// or as a primary output — with no gate in between.
			if c.observeNet(scr, res, f, q, stuckWord, mask, maxFail, w) {
				capped = true
			}
		}
	}

	// event-driven propagation in level order
	for lv := int32(0); lv <= c.maxLevel && !capped; lv++ {
		for bi := 0; bi < len(scr.buckets[lv]); bi++ {
			gi := scr.buckets[lv][bi]
			var v uint64
			scr.events++
			if f.Gate == gi && f.Pin >= 0 {
				v = c.evalGateForced(scr, good, gi, int32(f.Pin), stuckWord)
			} else {
				v = c.evalGateAt(scr, good, gi)
			}
			if f.Gate == gi && f.Pin < 0 {
				v = stuckWord
			}
			out := c.gateOut[gi]
			if (v^good[out])&mask == 0 {
				continue // effect died here
			}
			scr.scratch[out] = v
			scr.epoch[out] = scr.curEp
			if c.obsHead[out] >= 0 && c.observeNet(scr, res, f, out, v, mask, maxFail, w) {
				capped = true
				break
			}
			for j := c.rdrOff[out]; j < c.rdrOff[out+1]; j++ {
				c.schedule(scr, c.rdrs[j])
			}
		}
	}
}

// recordFails appends the failing lanes of one observation point. In
// detection mode (maxFail == 1) only one bit is ever kept, so exactly one
// is appended — the lowest failing lane of the first failing point, a
// deterministic subset of the word's canonical order as the Result
// contract requires — while FailObs still collects every failing point
// the capping word discovered.
func (c *simCore) recordFails(scr *simScratch, res *Result, oi int32, diff uint64, w, maxFail int) {
	res.Detected = true
	if scr.obsEp[oi] != scr.runEp {
		scr.obsEp[oi] = scr.runEp
		if maxFail == 1 && res.FailObs == nil {
			res.FailObs = scr.obsSlot()
		}
		res.FailObs = append(res.FailObs, int(oi))
	}
	if maxFail == 1 {
		if len(res.Fails) == 0 {
			if res.Fails == nil {
				res.Fails = scr.failSlot()
			}
			res.Fails = append(res.Fails, FailBit{Word: w, Lane: bits.TrailingZeros64(diff), Obs: int(oi)})
		}
		return
	}
	for diff != 0 {
		lane := bits.TrailingZeros64(diff)
		res.Fails = append(res.Fails, FailBit{Word: w, Lane: lane, Obs: int(oi)})
		diff &^= 1 << uint(lane)
	}
}

// failSlot carves a len-0/cap-1 FailBit segment from the scratch's chunk
// arena. An append into it lands in the chunk; a second append (never done
// in detection mode) would reallocate, leaving neighbors intact.
func (scr *simScratch) failSlot() []FailBit {
	if len(scr.failPool) == cap(scr.failPool) {
		scr.failPool = make([]FailBit, 0, 4096)
	}
	n := len(scr.failPool)
	scr.failPool = scr.failPool[: n+1 : cap(scr.failPool)]
	return scr.failPool[n : n : n+1]
}

// obsSlot carves a len-0/cap-2 FailObs segment (a capping word rarely
// discovers more than two failing points; overflow reallocates normally).
func (scr *simScratch) obsSlot() []int {
	if cap(scr.obsPool)-len(scr.obsPool) < 2 {
		scr.obsPool = make([]int, 0, 8192)
	}
	n := len(scr.obsPool)
	scr.obsPool = scr.obsPool[: n+2 : cap(scr.obsPool)]
	return scr.obsPool[n : n : n+2]
}

// observeNet records failing bits at every observation point sampling
// net — a net can be the D input of several FFs and a primary output
// simultaneously. Reports whether the failing-bit cap has been reached
// (propagation may then stop early).
func (c *simCore) observeNet(scr *simScratch, res *Result, f netlist.Fault,
	net netlist.NetID, faulty, mask uint64, maxFail, w int) bool {

	goodResp := c.goodResp[w]
	for oi := c.obsHead[net]; oi >= 0; oi = c.obsNext[oi] {
		if f.Gate < 0 && oi == int32(f.FF) {
			// The faulty FF's own scan cell shifts out the stuck value no
			// matter what its D net carries (the capture is overridden by
			// the defect), so a fault effect looping back to its own D is
			// not a discrepancy there. The own bit is recorded at seeding.
			continue
		}
		if diff := (faulty ^ goodResp[oi]) & mask; diff != 0 {
			c.recordFails(scr, res, oi, diff, w, maxFail)
		}
	}
	return maxFail > 0 && len(res.Fails) >= maxFail
}

// observeNetT is observeNet reading the transposed (obs-major) response
// image — the clipped path's variant.
func (c *simCore) observeNetT(scr *simScratch, res *Result, f netlist.Fault,
	net netlist.NetID, faulty, mask uint64, maxFail, w int) bool {

	st := c.gtStride
	for oi := c.obsHead[net]; oi >= 0; oi = c.obsNext[oi] {
		if f.Gate < 0 && oi == int32(f.FF) {
			continue // own scan cell: recorded at seeding, see observeNet
		}
		if diff := (faulty ^ c.goodRespT[int(oi)*st+w]) & mask; diff != 0 {
			c.recordFails(scr, res, oi, diff, w, maxFail)
		}
	}
	return maxFail > 0 && len(res.Fails) >= maxFail
}

// netValT reads one net's current value for word w: the faulty overlay if
// the net is inside the propagation region, the transposed good image
// otherwise. Small enough to inline into the evaluators below.
func (c *simCore) netValT(scr *simScratch, st, w int, in netlist.NetID) uint64 {
	if scr.epoch[in] == scr.curEp {
		return scr.scratch[in]
	}
	return c.goodT[int(in)*st+w]
}

// evalGateAtT / evalGateForcedT are the clipped path's gate evaluators,
// reading good-machine inputs from the transposed (net-major) image.
// The common arities (1-, 2-input, 3-input mux) are dispatched without
// building an input slice; anything else falls through to evalGate.
func (c *simCore) evalGateAtT(scr *simScratch, w int, gi netlist.GateID) uint64 {
	st := c.gtStride
	lo := c.pinOff[gi]
	k := c.kind[gi]
	switch c.pinOff[gi+1] - lo {
	case 1:
		a := c.netValT(scr, st, w, c.pins[lo])
		switch k {
		case netlist.And, netlist.Or, netlist.Xor, netlist.Buf:
			return a
		case netlist.Nand, netlist.Nor, netlist.Xnor, netlist.Not:
			return ^a
		}
	case 2:
		a := c.netValT(scr, st, w, c.pins[lo])
		b := c.netValT(scr, st, w, c.pins[lo+1])
		switch k {
		case netlist.And:
			return a & b
		case netlist.Or:
			return a | b
		case netlist.Nand:
			return ^(a & b)
		case netlist.Nor:
			return ^(a | b)
		case netlist.Xor:
			return a ^ b
		case netlist.Xnor:
			return ^(a ^ b)
		}
	case 3:
		if k == netlist.Mux2 {
			sel := c.netValT(scr, st, w, c.pins[lo])
			a := c.netValT(scr, st, w, c.pins[lo+1])
			b := c.netValT(scr, st, w, c.pins[lo+2])
			return (a &^ sel) | (b & sel)
		}
	}
	var buf [8]uint64
	ins := buf[:0]
	for _, in := range c.pins[lo:c.pinOff[gi+1]] {
		ins = append(ins, c.netValT(scr, st, w, in))
	}
	return evalGate(k, ins)
}

func (c *simCore) evalGateForcedT(scr *simScratch, w int, gi netlist.GateID,
	pin int32, stuckWord uint64) uint64 {

	st := c.gtStride
	lo := c.pinOff[gi]
	k := c.kind[gi]
	if c.pinOff[gi+1]-lo == 2 {
		a := stuckWord
		b := stuckWord
		if pin == 0 {
			b = c.netValT(scr, st, w, c.pins[lo+1])
		} else {
			a = c.netValT(scr, st, w, c.pins[lo])
		}
		switch k {
		case netlist.And:
			return a & b
		case netlist.Or:
			return a | b
		case netlist.Nand:
			return ^(a & b)
		case netlist.Nor:
			return ^(a | b)
		case netlist.Xor:
			return a ^ b
		case netlist.Xnor:
			return ^(a ^ b)
		}
	}
	var buf [8]uint64
	ins := buf[:0]
	for _, in := range c.pins[lo:c.pinOff[gi+1]] {
		ins = append(ins, c.netValT(scr, st, w, in))
	}
	ins[pin] = stuckWord
	return evalGate(k, ins)
}

// evalGateAt evaluates one gate against the current overlay: inputs inside
// the propagation region read the faulty scratch value, everything else
// reads the precomputed good-machine image.
func (c *simCore) evalGateAt(scr *simScratch, good []uint64, gi netlist.GateID) uint64 {
	var buf [8]uint64
	ins := buf[:0]
	for _, in := range c.pins[c.pinOff[gi]:c.pinOff[gi+1]] {
		if scr.epoch[in] == scr.curEp {
			ins = append(ins, scr.scratch[in])
		} else {
			ins = append(ins, good[in])
		}
	}
	return evalGate(c.kind[gi], ins)
}

// evalGateForced is evalGateAt with one input pin forced to the stuck
// value — the seed evaluation of an input-pin fault.
func (c *simCore) evalGateForced(scr *simScratch, good []uint64, gi netlist.GateID,
	pin int32, stuckWord uint64) uint64 {

	var buf [8]uint64
	ins := buf[:0]
	for _, in := range c.pins[c.pinOff[gi]:c.pinOff[gi+1]] {
		if scr.epoch[in] == scr.curEp {
			ins = append(ins, scr.scratch[in])
		} else {
			ins = append(ins, good[in])
		}
	}
	ins[pin] = stuckWord
	return evalGate(c.kind[gi], ins)
}

// finalizeWord normalizes the bits one pattern word appended to res into
// the documented canonical order: Fails sorted by (obs, lane) with
// duplicates removed (a self-looped faulty FF can record its own scan bit
// twice), FailObs sorted ascending. Event discovery order is deterministic
// but not the contract — the cone and full walks may visit gates in
// different orders and still finalize to identical Results.
func finalizeWord(res *Result, failsStart, obsStart int) {
	seg := res.Fails[failsStart:]
	if len(seg) > 1 {
		sort.Slice(seg, func(i, j int) bool {
			if seg[i].Obs != seg[j].Obs {
				return seg[i].Obs < seg[j].Obs
			}
			return seg[i].Lane < seg[j].Lane
		})
		keep := 1
		for i := 1; i < len(seg); i++ {
			if seg[i] != seg[keep-1] {
				seg[keep] = seg[i]
				keep++
			}
		}
		res.Fails = res.Fails[:failsStart+keep]
	}
	if obsSeg := res.FailObs[obsStart:]; len(obsSeg) > 1 {
		sort.Ints(obsSeg)
	}
}

// DetectAll runs detection-only simulation for a list of faults and
// returns a bitmap of which were detected by the pattern set.
func (s *Sim) DetectAll(faults []netlist.Fault) []bool {
	out := make([]bool, len(faults))
	for i, f := range faults {
		out[i] = s.Run(f, 1).Detected
	}
	return out
}

// Coverage reports the fraction of the given faults detected.
func (s *Sim) Coverage(faults []netlist.Fault) float64 {
	if len(faults) == 0 {
		return 1
	}
	det := s.DetectAll(faults)
	n := 0
	for _, d := range det {
		if d {
			n++
		}
	}
	return float64(n) / float64(len(faults))
}

// evalGate mirrors netlist's gate semantics (duplicated to keep the hot
// loop free of cross-package calls; netlist's own tests pin the truth
// tables, and TestSimMatchesFullEval pins this copy against them).
func evalGate(k netlist.GateKind, ins []uint64) uint64 {
	switch k {
	case netlist.And:
		v := ^uint64(0)
		for _, x := range ins {
			v &= x
		}
		return v
	case netlist.Or:
		v := uint64(0)
		for _, x := range ins {
			v |= x
		}
		return v
	case netlist.Nand:
		v := ^uint64(0)
		for _, x := range ins {
			v &= x
		}
		return ^v
	case netlist.Nor:
		v := uint64(0)
		for _, x := range ins {
			v |= x
		}
		return ^v
	case netlist.Xor:
		v := uint64(0)
		for _, x := range ins {
			v ^= x
		}
		return v
	case netlist.Xnor:
		v := uint64(0)
		for _, x := range ins {
			v ^= x
		}
		return ^v
	case netlist.Not:
		return ^ins[0]
	case netlist.Buf:
		return ins[0]
	case netlist.Mux2:
		sel, a, b := ins[0], ins[1], ins[2]
		return (a &^ sel) | (b & sel)
	case netlist.Const0:
		return 0
	case netlist.Const1:
		return ^uint64(0)
	}
	panic("fault: unknown gate kind")
}
