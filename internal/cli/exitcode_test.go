package cli_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// buildCmds compiles the CLI binaries once into a shared temp dir. Flag
// validation runs before any heavy work in every command, so the error
// paths exercised here return in milliseconds.
func buildCmds(t *testing.T, names ...string) map[string]string {
	t.Helper()
	dir := t.TempDir()
	bins := make(map[string]string, len(names))
	for _, name := range names {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Dir = "../.." // module root
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}
	return bins
}

// TestExitCodes pins the documented exit-code contract across every CLI:
// 0 = success, 1 = runtime failure, 2 = usage error. Usage errors must
// also say "usage error" on stderr so scripts can distinguish them.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCmds(t, "rescue-sim", "rescue-atpg", "rescue-dict", "rescue-isolate", "rescue-diffcheck")

	staleCk := filepath.Join(t.TempDir(), "stale.ck")
	if err := os.WriteFile(staleCk, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cases := []exitCase{
		{"sim negative workers", "rescue-sim", []string{"-workers=-1"}, 2, "usage error"},
		{"atpg negative workers", "rescue-atpg", []string{"-workers=-1"}, 2, "usage error"},
		{"dict negative workers", "rescue-dict", []string{"build", "-workers=-1", "-o", "x.csv"}, 2, "usage error"},
		{"dict missing subcommand", "rescue-dict", []string{"-workers=-1"}, 2, "usage"},
		{"isolate negative workers", "rescue-isolate", []string{"-workers=-1"}, 2, "usage error"},
		{"diffcheck negative workers", "rescue-diffcheck", []string{"-workers=1,-1"}, 2, "usage error"},
		{"atpg resume without checkpoint", "rescue-atpg", []string{"-resume"}, 2, "usage error"},
		{"dict resume without checkpoint", "rescue-dict", []string{"build", "-resume", "-o", "x.csv"}, 2, "usage error"},
		{"isolate resume without checkpoint", "rescue-isolate", []string{"-resume"}, 2, "usage error"},
		{"atpg negative chaos budget", "rescue-atpg", []string{"-chaos-cancel-after=-5"}, 2, "usage error"},
		{"atpg stale checkpoint without resume", "rescue-atpg", []string{"-checkpoint", staleCk}, 1, "already exists"},
		{"diffcheck malformed seed range", "rescue-diffcheck", []string{"-seeds", "bad"}, 2, "usage error"},
		{"diffcheck inverted seed range", "rescue-diffcheck", []string{"-seeds", "5:2"}, 2, "usage error"},
		{"diffcheck non-numeric workers", "rescue-diffcheck", []string{"-workers", "x"}, 2, "usage error"},
		{"diffcheck stray positional args", "rescue-diffcheck", []string{"-seeds", "0:2", "extra"}, 2, "usage error"},
		{"diffcheck unknown flag", "rescue-diffcheck", []string{"-no-such-flag"}, 2, ""},
		{"diffcheck small passing range", "rescue-diffcheck", []string{"-seeds", "0:2", "-workers", "1,2"}, 0, ""},
		{"atpg negative timeout", "rescue-atpg", []string{"-timeout=-1s"}, 2, "usage error"},
		{"dict negative timeout", "rescue-dict", []string{"build", "-timeout=-1s", "-o", "x.csv"}, 2, "usage error"},
		{"isolate negative timeout", "rescue-isolate", []string{"-timeout=-1s"}, 2, "usage error"},
	}
	runCases(t, bins, cases)
}

// TestServeExitCodes pins the daemon's flag validation: rescued must fail
// fast with a usage error before binding a socket.
func TestServeExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCmds(t, "rescued", "rescue-loadgen")

	cases := []exitCase{
		{"rescued negative workers", "rescued", []string{"-workers=-1"}, 2, "usage error"},
		{"rescued zero queue", "rescued", []string{"-queue=0"}, 2, "usage error"},
		{"rescued zero slots", "rescued", []string{"-slots=0"}, 2, "usage error"},
		{"rescued zero drain timeout", "rescued", []string{"-drain-timeout=0s"}, 2, "usage error"},
		{"rescued unknown flag", "rescued", []string{"-no-such-flag"}, 2, ""},
		{"rescued zero tenant weight", "rescued", []string{"-tenant-weights=a=0"}, 2, "usage error"},
		{"rescued malformed tenant weights", "rescued", []string{"-tenant-weights=a"}, 2, "usage error"},
		{"rescued bad tenant name in weights", "rescued", []string{"-tenant-weights=bad name=2"}, 2, "usage error"},
		{"rescued negative tenant queue cap", "rescued", []string{"-tenant-queue-cap=-1"}, 2, "usage error"},
		{"rescued negative per-tenant inflight", "rescued", []string{"-max-inflight-per-tenant=-1"}, 2, "usage error"},
		{"rescued tiny event log cap", "rescued", []string{"-event-log-cap=2"}, 2, "usage error"},
		{"loadgen bad class", "rescue-loadgen", []string{"-class=urgent", "-dry-run"}, 2, "usage error"},
		{"loadgen negative slow readers", "rescue-loadgen", []string{"-slow-readers=-1", "-dry-run"}, 2, "usage error"},
		{"loadgen unknown scenario", "rescue-loadgen", []string{"-scenario=chaos"}, 2, "usage error"},
		{"loadgen scenario without base", "rescue-loadgen", []string{"-scenario=noisy-neighbor"}, 2, "usage error"},
	}
	runCases(t, bins, cases)
}

// TestRescuedTenant429 pins the per-tenant admission contract over a real
// rescued process: with -tenant-queue-cap 1, a tenant that already has a
// job running and one queued gets a 429 with an honest Retry-After on its
// next submission — while a different tenant is still admitted.
func TestRescuedTenant429(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCmds(t, "rescued")

	cmd := exec.Command(bins["rescued"], "-addr", "127.0.0.1:0", "-quiet",
		"-slots", "1", "-queue", "64", "-tenant-queue-cap", "1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	sc := bufio.NewScanner(stdout)
	addr := ""
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatalf("rescued never printed its listen address (scan err: %v)", sc.Err())
	}
	base := "http://" + addr

	submit := func(tenant string) *http.Response {
		req, _ := http.NewRequest(http.MethodPost, base+"/jobs",
			strings.NewReader(`{"kind":"table3","params":{"small":true}}`))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("X-Rescue-Client", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	readID := func(resp *http.Response) string {
		t.Helper()
		var sn struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil || sn.ID == "" {
			t.Fatalf("submit decode: %v (status %d)", err, resp.StatusCode)
		}
		resp.Body.Close()
		return sn.ID
	}

	resp := submit("alpha")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first alpha submit: %d, want 202", resp.StatusCode)
	}
	id := readID(resp)

	// Wait for the first job to occupy the slot, so the tenant's queue
	// cap is measured against queued work only.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var sn struct {
			State string `json:"state"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if sn.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running (state %s)", sn.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	resp = submit("alpha")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second alpha submit: %d, want 202 (fills the tenant queue)", resp.StatusCode)
	}
	readID(resp)

	resp = submit("alpha")
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third alpha submit: %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("429 Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}

	// The cap is per tenant: a different tenant still gets in.
	resp = submit("beta")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("beta submit: %d, want 202 (caps are per tenant)", resp.StatusCode)
	}
	readID(resp)
}

// TestDeadlineExitCodes pins the -timeout contract added with the fab
// flow: every long-running CLI validates the flag (negative = usage
// error) and exits 124 when the deadline fires. A 1ns deadline is
// already expired by the first context check, so these paths return as
// soon as each command reaches its flow entry point.
func TestDeadlineExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCmds(t, "rescue-sim", "rescue-yat", "rescue-trace", "rescue-verilog", "rescue-fab")
	tmp := t.TempDir()

	cases := []exitCase{
		{"sim negative timeout", "rescue-sim", []string{"-timeout=-1s"}, 2, "usage error"},
		{"yat negative workers", "rescue-yat", []string{"-workers=-1"}, 2, "usage error"},
		{"fab negative workers", "rescue-fab", []string{"-workers=-1"}, 2, "usage error"},
		{"fab resume without checkpoint", "rescue-fab", []string{"-resume"}, 2, "usage error"},
		{"fab zero dies", "rescue-fab", []string{"-dies=0"}, 2, "usage error"},
		{"fab bad node", "rescue-fab", []string{"-node=45"}, 2, "usage error"},
		{"sim deadline", "rescue-sim",
			[]string{"-timeout=1ns", "-bench", "gzip", "-warmup", "100", "-commit", "100"}, 124, "deadline"},
		{"yat deadline", "rescue-yat",
			[]string{"-timeout=1ns", "-bench", "gzip", "-warmup", "10", "-commit", "10"}, 124, "deadline"},
		{"trace record deadline", "rescue-trace",
			[]string{"record", "-timeout=1ns", "-n", "1000", "-o", filepath.Join(tmp, "t.rsct")}, 124, "deadline"},
		{"verilog deadline", "rescue-verilog",
			[]string{"-small", "-timeout=1ns", "-o", filepath.Join(tmp, "t.v")}, 124, "deadline"},
		{"fab deadline", "rescue-fab",
			[]string{"-small", "-timeout=1ns", "-dies", "2"}, 124, "deadline"},
	}
	runCases(t, bins, cases)
}

// TestShardExitCodes pins rescue-shard's flag validation (exit 2 before
// any pool or flow work) and the deadline path (exit 124). The degraded
// path — exit 3 after local fallbacks — needs a real campaign against a
// dead pool and is exercised by scripts/shard-smoke.sh.
func TestShardExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCmds(t, "rescue-shard")

	cases := []exitCase{
		{"shard no kind", "rescue-shard", []string{"-spawn=2"}, 2, "usage error"},
		{"shard bad kind", "rescue-shard", []string{"-kind", "nope", "-spawn=2"}, 2, "usage error"},
		{"shard nested kind", "rescue-shard", []string{"-kind", "shard", "-spawn=2"}, 2, "usage error"},
		{"shard bad params", "rescue-shard", []string{"-kind", "fab", "-spawn=2", "-params", "{nope"}, 2, "usage error"},
		{"shard no pool", "rescue-shard", []string{"-kind", "fab"}, 2, "usage error"},
		{"shard both pools", "rescue-shard", []string{"-kind", "fab", "-spawn=2", "-workers", "http://x"}, 2, "usage error"},
		{"shard empty worker list", "rescue-shard", []string{"-kind", "fab", "-workers", ","}, 2, "usage error"},
		{"shard negative spawn", "rescue-shard", []string{"-kind", "fab", "-spawn=-1"}, 2, "usage error"},
		{"shard chaos without spawn", "rescue-shard", []string{"-kind", "fab", "-workers", "http://x", "-chaos-kill-workers=1"}, 2, "usage error"},
		{"shard chaos kills more than spawned", "rescue-shard", []string{"-kind", "fab", "-spawn=2", "-chaos-kill-workers=3"}, 2, "usage error"},
		{"shard negative job workers", "rescue-shard", []string{"-kind", "fab", "-spawn=2", "-job-workers=-1"}, 2, "usage error"},
		{"shard resume without checkpoint", "rescue-shard", []string{"-kind", "fab", "-spawn=2", "-resume"}, 2, "usage error"},
		{"shard negative timeout", "rescue-shard", []string{"-kind", "fab", "-spawn=2", "-timeout=-1s"}, 2, "usage error"},
		{"shard worker negative job workers", "rescue-shard", []string{"-worker", "-job-workers=-1"}, 2, "usage error"},
		{"shard unknown flag", "rescue-shard", []string{"-no-such-flag"}, 2, ""},
		{"shard deadline", "rescue-shard",
			[]string{"-kind", "table3", "-params", `{"small":true}`, "-workers", "http://127.0.0.1:1",
				"-retry-budget", "1", "-timeout", "1ns", "-quiet"}, 124, "deadline"},
	}
	runCases(t, bins, cases)
}

// TestSweepExitCodes pins rescue-sweep's flag and spec validation (exit 2
// before any grid work) and the deadline path (exit 124). The degraded
// path — exit 3 after remote fallbacks — and the kill/-resume byte-identity
// contract are exercised by scripts/sweep-smoke.sh.
func TestSweepExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCmds(t, "rescue-sweep")

	cases := []exitCase{
		{"sweep negative workers", "rescue-sweep", []string{"-workers=-1"}, 2, "usage error"},
		{"sweep negative timeout", "rescue-sweep", []string{"-timeout=-1s"}, 2, "usage error"},
		{"sweep negative concurrency", "rescue-sweep", []string{"-concurrency=-1"}, 2, "usage error"},
		{"sweep resume without checkpoint", "rescue-sweep", []string{"-resume"}, 2, "usage error"},
		{"sweep negative chaos budget", "rescue-sweep", []string{"-chaos-cancel-after=-5"}, 2, "usage error"},
		{"sweep bad preset", "rescue-sweep", []string{"-preset", "nope"}, 2, "usage error"},
		{"sweep bad axis key", "rescue-sweep", []string{"-axis", "nope=1"}, 2, "usage error"},
		{"sweep malformed axis", "rescue-sweep", []string{"-axis", "chipkill-scale"}, 2, ""},
		{"sweep bad axis value", "rescue-sweep", []string{"-axis", "rob-size=big"}, 2, "usage error"},
		{"sweep bad node", "rescue-sweep", []string{"-node", "45"}, 2, "usage error"},
		{"sweep non-numeric node", "rescue-sweep", []string{"-node", "x"}, 2, "usage error"},
		{"sweep negative dies", "rescue-sweep", []string{"-dies=-1"}, 2, "usage error"},
		{"sweep selfheal out of range", "rescue-sweep", []string{"-selfheal", "0.95"}, 2, "usage error"},
		{"sweep empty dispatch list", "rescue-sweep", []string{"-dispatch", ","}, 2, "usage error"},
		{"sweep unknown flag", "rescue-sweep", []string{"-no-such-flag"}, 2, ""},
		{"sweep deadline", "rescue-sweep",
			[]string{"-small", "-timeout=1ns", "-dies", "2", "-warmup", "100", "-commit", "500", "-quiet"}, 124, "deadline"},
	}
	runCases(t, bins, cases)
}

// TestRescuedDeleteTerminal pins the cancel contract over a real rescued
// process: DELETE on a live job cancels it (200); DELETE on the now
// terminal job is refused with 409 — never a 404, never a silent second
// cancel.
func TestRescuedDeleteTerminal(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCmds(t, "rescued")

	cmd := exec.Command(bins["rescued"], "-addr", "127.0.0.1:0", "-quiet")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	sc := bufio.NewScanner(stdout)
	addr := ""
	for sc.Scan() {
		if a, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			addr = a
			break
		}
	}
	if addr == "" {
		t.Fatalf("rescued never printed its listen address (scan err: %v)", sc.Err())
	}
	base := "http://" + addr

	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"kind":"table3","params":{"small":true}}`))
	if err != nil {
		t.Fatal(err)
	}
	var sn struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil || sn.ID == "" {
		t.Fatalf("submit: %v (status %d)", err, resp.StatusCode)
	}
	resp.Body.Close()

	// First DELETE cancels (200). The job then lands in a terminal state,
	// after which DELETE must answer 409; poll to absorb the transition.
	del := func() int {
		req, _ := http.NewRequest(http.MethodDelete, base+"/jobs/"+sn.ID, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := del(); code != http.StatusOK {
		t.Fatalf("first DELETE: %d, want 200", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code := del()
		if code == http.StatusConflict {
			break
		}
		if code != http.StatusOK {
			t.Fatalf("repeat DELETE: %d, want 200 (still settling) or 409 (terminal)", code)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never reached a terminal state after cancel")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

type exitCase struct {
	name     string
	bin      string
	args     []string
	wantExit int
	wantErr  string // substring required on stderr ("" = don't care)
}

func runCases(t *testing.T, bins map[string]string, cases []exitCase) {
	t.Helper()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(bins[tc.bin], tc.args...)
			var stderr strings.Builder
			cmd.Stderr = &stderr
			err := cmd.Run()
			exit := 0
			if ee, ok := err.(*exec.ExitError); ok {
				exit = ee.ExitCode()
			} else if err != nil {
				t.Fatalf("running %s: %v", tc.bin, err)
			}
			if exit != tc.wantExit {
				t.Fatalf("%s %v: exit %d, want %d\nstderr: %s", tc.bin, tc.args, exit, tc.wantExit, stderr.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("%s %v: stderr missing %q:\n%s", tc.bin, tc.args, tc.wantErr, stderr.String())
			}
		})
	}
}
