#!/usr/bin/env bash
# End-to-end smoke test for rescue-sweep design-space exploration:
#
#   1. build rescue-sweep
#   2. determinism: the same tiny grid run twice (sequential, then
#      concurrent) must produce byte-identical frontier NDJSON
#   3. kill-and-resume: the same grid chaos-killed mid-campaign must exit
#      130 and leave a journal; rerunning with -resume must complete and
#      produce NDJSON byte-identical to the uninterrupted runs
#   4. flag validation: bad grids are usage errors (exit 2) before any work
#
# Usage: scripts/sweep-smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() { rm -rf "$tmp"; }
trap cleanup EXIT

echo "== build"
go build -o "$tmp/rescue-sweep" ./cmd/rescue-sweep

grid=(-small -preset paper -axis chipkill-scale=1,0.8 -dies 200 -warmup 200 -commit 1000 -quiet)

echo "== determinism: same grid at concurrency 1 and 4"
"$tmp/rescue-sweep" "${grid[@]}" -concurrency 1 -ndjson "$tmp/seq.ndjson" >"$tmp/seq.txt"
"$tmp/rescue-sweep" "${grid[@]}" -concurrency 4 -ndjson "$tmp/par.ndjson" >"$tmp/par.txt"
cmp "$tmp/seq.ndjson" "$tmp/par.ndjson"
cmp "$tmp/seq.txt" "$tmp/par.txt"
points=$(wc -l <"$tmp/seq.ndjson")
if [ "$points" -ne 2 ]; then
    echo "FAIL: frontier has $points points, want 2" >&2
    cat "$tmp/seq.ndjson" >&2
    exit 1
fi
echo "   $points points, byte-identical across concurrency"

echo "== kill-and-resume: chaos cancel mid-campaign, then -resume"
rc=0
"$tmp/rescue-sweep" "${grid[@]}" -checkpoint "$tmp/ck" -chaos-cancel-after 400 \
    -ndjson "$tmp/killed.ndjson" >/dev/null 2>"$tmp/killed.err" || rc=$?
if [ "$rc" -ne 130 ]; then
    echo "FAIL: chaos-killed sweep exited $rc, want 130" >&2
    cat "$tmp/killed.err" >&2
    exit 1
fi
if [ ! -f "$tmp/ck/campaigns.ck" ]; then
    echo "FAIL: no campaign journal left behind after the kill" >&2
    ls -la "$tmp/ck" >&2 || true
    exit 1
fi
grep -q 'rerun with -resume' "$tmp/killed.err" || {
    echo "FAIL: interrupted sweep printed no resume hint" >&2
    cat "$tmp/killed.err" >&2
    exit 1
}
"$tmp/rescue-sweep" "${grid[@]}" -checkpoint "$tmp/ck" -resume \
    -ndjson "$tmp/resumed.ndjson" >/dev/null 2>"$tmp/resumed.err"
cmp "$tmp/seq.ndjson" "$tmp/resumed.ndjson"
if [ -f "$tmp/ck/frontier.journal" ] || [ -f "$tmp/ck/campaigns.ck" ]; then
    echo "FAIL: journals left behind after a clean resumed completion" >&2
    exit 1
fi
echo "   resume byte-identical, journals consumed"

echo "== flag validation: bad grids fail fast with exit 2"
for args in "-preset nope" "-axis bogus=1" "-node 45" "-resume"; do
    rc=0
    # shellcheck disable=SC2086
    "$tmp/rescue-sweep" $args >/dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 2 ]; then
        echo "FAIL: rescue-sweep $args exited $rc, want 2" >&2
        exit 1
    fi
done
echo "   usage errors exit 2"

echo "PASS: sweep smoke (determinism + kill/resume byte-identical)"
