#!/usr/bin/env bash
# Golden equivalence check for the parallel fault-simulation campaign
# engine: regenerate the small-config Table 3, isolation, and Monte Carlo
# fab-fleet reports at two different worker counts and diff them against
# the committed golden files.
# Any drift — numeric or ordering — fails the build. Timings are suppressed
# (-timing=false) so the outputs are byte-stable.
#
# A second pass checks interrupt-resume equivalence: each run is "killed"
# at roughly 50% of its campaign work by the deterministic chaos budget
# (-chaos-cancel-after, a stand-in for Ctrl-C that CI can time exactly),
# must exit 130 with a flushed checkpoint journal, and the -resume rerun —
# at a *different* worker count — must reproduce the goldens byte for byte.
#
# Usage: scripts/check-golden.sh [worker counts...]   (default: 1 4)
set -euo pipefail
cd "$(dirname "$0")/.."

workers=("$@")
if [ ${#workers[@]} -eq 0 ]; then
    workers=(1 4)
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/rescue-atpg" ./cmd/rescue-atpg
go build -o "$tmp/rescue-isolate" ./cmd/rescue-isolate
go build -o "$tmp/rescue-fab" ./cmd/rescue-fab

fail=0
for w in "${workers[@]}"; do
    echo "== table3 (small), workers=$w"
    "$tmp/rescue-atpg" -small -timing=false -workers "$w" > "$tmp/table3_small.txt"
    if ! diff -u results/table3_small.txt "$tmp/table3_small.txt"; then
        echo "FAIL: table3_small.txt drifted at workers=$w" >&2
        fail=1
    fi

    echo "== isolation (small), workers=$w"
    "$tmp/rescue-isolate" -small -per-stage 200 -multi -timing=false -workers "$w" > "$tmp/isolation_small.txt"
    if ! diff -u results/isolation_small.txt "$tmp/isolation_small.txt"; then
        echo "FAIL: isolation_small.txt drifted at workers=$w" >&2
        fail=1
    fi

    echo "== fab fleet (small), workers=$w"
    "$tmp/rescue-fab" -small -dies 2000 -timing=false -workers "$w" > "$tmp/fab_small.txt"
    if ! diff -u results/fab_small.txt "$tmp/fab_small.txt"; then
        echo "FAIL: fab_small.txt drifted at workers=$w" >&2
        fail=1
    fi
done

# ~50% of each command's total campaign fault-sims on the small config
# (rescue-atpg ≈ 134k across both variants; rescue-isolate ≈ 89k;
# rescue-fab spends ≈ 86.7k sims in ATPG before its 1536-fault fleet
# campaign, so 87.5k lands halfway through the fleet).
atpg_kill=67000
iso_kill=45000
fab_kill=87500

for pair in "1 4" "4 1"; do
    read -r kw rw <<< "$pair"

    echo "== table3 interrupt-resume: kill at workers=$kw, resume at workers=$rw"
    rm -f "$tmp/ck.atpg"
    rc=0
    "$tmp/rescue-atpg" -small -timing=false -workers "$kw" \
        -checkpoint "$tmp/ck.atpg" -chaos-cancel-after "$atpg_kill" \
        > /dev/null 2> "$tmp/atpg.err" || rc=$?
    if [ "$rc" -ne 130 ]; then
        echo "FAIL: chaos-interrupted rescue-atpg exited $rc, want 130" >&2
        cat "$tmp/atpg.err" >&2
        fail=1
    elif [ ! -s "$tmp/ck.atpg" ]; then
        echo "FAIL: interrupted rescue-atpg left no checkpoint journal" >&2
        fail=1
    else
        "$tmp/rescue-atpg" -small -timing=false -workers "$rw" \
            -checkpoint "$tmp/ck.atpg" -resume > "$tmp/table3_resumed.txt"
        if ! diff -u results/table3_small.txt "$tmp/table3_resumed.txt"; then
            echo "FAIL: resumed table3_small.txt drifted (kill=$kw resume=$rw)" >&2
            fail=1
        fi
    fi

    echo "== isolation interrupt-resume: kill at workers=$kw, resume at workers=$rw"
    rm -f "$tmp/ck.iso"
    rc=0
    "$tmp/rescue-isolate" -small -per-stage 200 -multi -timing=false -workers "$kw" \
        -checkpoint "$tmp/ck.iso" -chaos-cancel-after "$iso_kill" \
        > /dev/null 2> "$tmp/iso.err" || rc=$?
    if [ "$rc" -ne 130 ]; then
        echo "FAIL: chaos-interrupted rescue-isolate exited $rc, want 130" >&2
        cat "$tmp/iso.err" >&2
        fail=1
    elif [ ! -s "$tmp/ck.iso" ]; then
        echo "FAIL: interrupted rescue-isolate left no checkpoint journal" >&2
        fail=1
    else
        "$tmp/rescue-isolate" -small -per-stage 200 -multi -timing=false -workers "$rw" \
            -checkpoint "$tmp/ck.iso" -resume > "$tmp/isolation_resumed.txt"
        if ! diff -u results/isolation_small.txt "$tmp/isolation_resumed.txt"; then
            echo "FAIL: resumed isolation_small.txt drifted (kill=$kw resume=$rw)" >&2
            fail=1
        fi
    fi

    echo "== fab interrupt-resume: kill at workers=$kw, resume at workers=$rw"
    rm -f "$tmp/ck.fab"
    rc=0
    "$tmp/rescue-fab" -small -dies 2000 -timing=false -workers "$kw" \
        -checkpoint "$tmp/ck.fab" -chaos-cancel-after "$fab_kill" \
        > /dev/null 2> "$tmp/fab.err" || rc=$?
    if [ "$rc" -ne 130 ]; then
        echo "FAIL: chaos-interrupted rescue-fab exited $rc, want 130" >&2
        cat "$tmp/fab.err" >&2
        fail=1
    elif [ ! -s "$tmp/ck.fab" ]; then
        echo "FAIL: interrupted rescue-fab left no checkpoint journal" >&2
        fail=1
    else
        "$tmp/rescue-fab" -small -dies 2000 -timing=false -workers "$rw" \
            -checkpoint "$tmp/ck.fab" -resume > "$tmp/fab_resumed.txt"
        if ! diff -u results/fab_small.txt "$tmp/fab_resumed.txt"; then
            echo "FAIL: resumed fab_small.txt drifted (kill=$kw resume=$rw)" >&2
            fail=1
        fi
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "golden check FAILED" >&2
    exit 1
fi
echo "golden check OK: outputs identical to committed results at workers: ${workers[*]}, interrupt-resume included"
