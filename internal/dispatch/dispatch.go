// Package dispatch fans campaign shards out to a pool of rescued workers
// over HTTP and survives the pool misbehaving: dead workers are detected
// by connection failure, health polling, and event-stream heartbeat
// timeouts; their shards are reassigned to survivors under a retry budget
// with exponential backoff and seeded jitter; and when the pool is
// exhausted the shard is handed back to the campaign's local worker pool —
// the coordinator degrades to a single-node run rather than failing.
//
// Correctness under all of this rests on content addressing, not on
// bookkeeping: every shard job carries the campaign's CampaignKey, every
// worker re-derives that key from its own execution of the flow, and every
// result is digest-sealed and verified before merging (internal/fault's
// shard machinery). Retried or duplicated shards therefore merge
// byte-identically, and a late result from an abandoned worker is simply
// never read — its job is cancelled best-effort and its output discarded.
//
// The pool plugs into a campaign as a fault.ShardPlan via Plan(); the
// chaos knobs (ChaosConfig) kill a seeded random subset of workers after a
// configurable number of completed shards, which is how CI proves the
// failure story end to end.
package dispatch

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rescue/internal/fault"
	"rescue/internal/serve"
)

// Config parameterizes a Pool.
type Config struct {
	// Workers is the pool: one rescued base URL each (http://host:port).
	// Required, at least one.
	Workers []string
	// Flow is the job spec every worker re-executes to reach the target
	// campaign — the coordinator's own kind and params. Required for
	// shard dispatch (Plan/Exec); a pool used only through ExecJob may
	// leave it empty.
	Flow serve.Spec
	// Shards is how many pieces each eligible campaign splits into.
	// 0 = len(Workers).
	Shards int
	// MinFaults gates dispatch: smaller campaigns run locally. 0 = 64.
	MinFaults int
	// RetryBudget is how many times one shard may be re-dispatched after
	// its first attempt fails. 0 = 2*len(Workers).
	RetryBudget int
	// BackoffBase/BackoffCap bound the exponential retry backoff.
	// 0 = 100ms / 2s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Heartbeat is the longest silence tolerated on a shard job's event
	// stream before the worker is declared hung, the job cancelled, and
	// the shard reassigned. 0 = 30s.
	Heartbeat time.Duration
	// HealthEvery is the /healthz polling period that revives recovered
	// workers and retires unreachable ones. 0 = 500ms.
	HealthEvery time.Duration
	// SubmitTimeout bounds one POST /jobs round trip. 0 = 10s.
	SubmitTimeout time.Duration
	// Seed drives retry jitter and the chaos victim choice. Same seed,
	// same decisions.
	Seed int64
	// Tenant, when set, tags every shard job the coordinator submits
	// (X-Rescue-Client), so worker-side per-tenant metrics attribute
	// shard load to the originating campaign's tenant and workers
	// schedule it under that tenant's weight. Shard bodies are NOT
	// rewritten — the artifact/checkpoint identity is tenant-blind.
	Tenant string
	// Logf, when set, receives one line per dispatch event.
	Logf func(format string, args ...any)
	// Chaos, when armed, kills workers mid-campaign (see ChaosConfig).
	Chaos ChaosConfig
}

// ChaosConfig is the coordinator-side fault injector: after AfterShards
// shards have completed remotely, Kill is invoked for KillWorkers distinct
// workers chosen by the pool's seeded RNG. The campaign must still merge
// byte-identically — that is the contract CI pins.
type ChaosConfig struct {
	// KillWorkers is how many workers to kill. 0 disarms chaos.
	KillWorkers int
	// AfterShards is how many remote shard completions to wait for before
	// killing. 0 = kill after the first completion.
	AfterShards int
	// Kill terminates worker i (an index into Config.Workers). Required
	// when KillWorkers > 0; typically SIGKILLs a spawned child process.
	Kill func(worker int) error
}

func (c *Config) setDefaults() error {
	if len(c.Workers) == 0 {
		return fmt.Errorf("dispatch: need at least one worker URL")
	}
	if c.Flow.Kind == "shard" {
		return fmt.Errorf("dispatch: shard flows do not nest")
	}
	if c.Shards == 0 {
		c.Shards = len(c.Workers)
	}
	if c.MinFaults == 0 {
		c.MinFaults = 64
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 2 * len(c.Workers)
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 2 * time.Second
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = 30 * time.Second
	}
	if c.HealthEvery == 0 {
		c.HealthEvery = 500 * time.Millisecond
	}
	if c.SubmitTimeout == 0 {
		c.SubmitTimeout = 10 * time.Second
	}
	if c.Chaos.KillWorkers > 0 && c.Chaos.Kill == nil {
		return fmt.Errorf("dispatch: chaos armed without a kill function")
	}
	return nil
}

// Stats is the pool's observability record.
type Stats struct {
	// Completed counts shards computed remotely and merged.
	Completed int64
	// Retries counts re-dispatch attempts after a failed one.
	Retries int64
	// Fallbacks counts shards handed back to local execution.
	Fallbacks int64
	// Killed counts workers the chaos injector terminated.
	Killed int64
}

// worker is one pool member. down is advisory: the health loop and
// per-dispatch failures flip it, /healthz success revives it.
type worker struct {
	url  string
	down atomic.Bool
}

// Pool dispatches shards to rescued workers. Create with NewPool, attach
// to campaigns via Plan, and Close when the flow is done.
type Pool struct {
	cfg     Config
	client  *http.Client
	workers []*worker

	rngMu sync.Mutex
	rng   *rand.Rand

	next atomic.Int64 // round-robin cursor

	completed atomic.Int64
	retries   atomic.Int64
	fallbacks atomic.Int64
	killed    atomic.Int64
	chaosOnce sync.Once

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewPool validates cfg and starts the health loop.
func NewPool(cfg Config) (*Pool, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	p := &Pool{
		cfg:    cfg,
		client: &http.Client{},
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		stop:   make(chan struct{}),
	}
	for _, u := range cfg.Workers {
		p.workers = append(p.workers, &worker{url: strings.TrimSuffix(u, "/")})
	}
	p.wg.Add(1)
	go p.healthLoop()
	return p, nil
}

// Close stops the health loop. In-flight Exec calls are unaffected.
func (p *Pool) Close() {
	close(p.stop)
	p.wg.Wait()
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Completed: p.completed.Load(),
		Retries:   p.retries.Load(),
		Fallbacks: p.fallbacks.Load(),
		Killed:    p.killed.Load(),
	}
}

// Plan adapts the pool to a campaign: attach the returned plan with
// fault.WithShardPlan and every eligible campaign under that context
// dispatches through this pool.
func (p *Pool) Plan() *fault.ShardPlan {
	return &fault.ShardPlan{
		Exec:      p.Exec,
		Shards:    p.cfg.Shards,
		MinFaults: p.cfg.MinFaults,
		OnFallback: func(key fault.CampaignKey, lo, hi int, err error) {
			p.fallbacks.Add(1)
			p.logf("shard [%d,%d): local fallback: %v", lo, hi, err)
		},
	}
}

// Exec computes one shard remotely, retrying across the pool under the
// budget. The returned error means the pool gave up; the campaign then
// simulates the range locally.
func (p *Pool) Exec(ctx context.Context, key fault.CampaignKey, lo, hi int) (*fault.ShardResult, error) {
	if p.cfg.Flow.Kind == "" {
		return nil, fmt.Errorf("dispatch: pool has no flow spec; shard dispatch needs Config.Flow")
	}
	spec, err := serve.ShardSpec(p.cfg.Flow, key, lo, hi)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}

	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
		w := p.pick()
		if w == nil {
			return nil, fmt.Errorf("dispatch: no live workers for shard [%d,%d) (last error: %v)", lo, hi, lastErr)
		}
		res, err := p.runShard(ctx, w, body, key, lo, hi)
		if err == nil {
			n := p.completed.Add(1)
			p.maybeChaos(n)
			return res, nil
		}
		lastErr = err
		busy, retryAfter := asBusy(err)
		if !busy {
			// Anything else — connection refused, mid-stream EOF, heartbeat
			// timeout, job failure — is treated as worker trouble: mark it
			// down (the health loop revives it if /healthz answers) and move
			// the shard to a survivor.
			w.down.Store(true)
			p.logf("worker %s suspected down after shard [%d,%d): %v", w.url, lo, hi, err)
		}
		if attempt >= p.cfg.RetryBudget {
			return nil, fmt.Errorf("dispatch: shard [%d,%d) exhausted its retry budget (%d attempts): %w",
				lo, hi, attempt+1, err)
		}
		p.retries.Add(1)
		wait := p.backoff(attempt, retryAfter)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
}

// ExecJob submits an arbitrary job spec to the pool and returns its raw
// result bytes, under the same worker selection, retry budget, backoff,
// and hung-worker detection as shard dispatch. It is how the sweep
// coordinator fans grid points out: each point becomes a single-point
// sweep job on some worker, and the caller verifies the returned frontier
// line by content digest before merging. The returned error means the
// pool gave up; the sweep then runs the point locally.
func (p *Pool) ExecJob(ctx context.Context, spec serve.Spec) ([]byte, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, context.Cause(ctx)
		}
		w := p.pick()
		if w == nil {
			return nil, fmt.Errorf("dispatch: no live workers for %s job (last error: %v)", spec.Kind, lastErr)
		}
		out, err := p.runJobRaw(ctx, w, body)
		if err == nil {
			n := p.completed.Add(1)
			p.maybeChaos(n)
			return out, nil
		}
		lastErr = err
		busy, retryAfter := asBusy(err)
		if !busy {
			w.down.Store(true)
			p.logf("worker %s suspected down after %s job: %v", w.url, spec.Kind, err)
		}
		if attempt >= p.cfg.RetryBudget {
			return nil, fmt.Errorf("dispatch: %s job exhausted its retry budget (%d attempts): %w",
				spec.Kind, attempt+1, err)
		}
		p.retries.Add(1)
		wait := p.backoff(attempt, retryAfter)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		}
	}
}

// runJobRaw drives one generic job attempt on one worker: submit, watch
// the event stream under the heartbeat watchdog, fetch the raw result.
func (p *Pool) runJobRaw(ctx context.Context, w *worker, body []byte) ([]byte, error) {
	id, err := p.submit(ctx, w, body)
	if err != nil {
		return nil, err
	}
	state, err := p.watch(ctx, w, id)
	if err != nil {
		p.cancelJob(w, id)
		return nil, err
	}
	if state != "succeeded" {
		return nil, fmt.Errorf("worker %s: job %s ended %s", w.url, id, state)
	}
	return p.fetchRaw(ctx, w, id)
}

// fetchRaw reads a finished job's result bytes verbatim.
func (p *Pool) fetchRaw(ctx context.Context, w *worker, id string) ([]byte, error) {
	rctx, cancel := context.WithTimeout(ctx, p.cfg.SubmitTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, w.url+"/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("result from %s: %w", w.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result from %s: HTTP %d", w.url, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

// pick returns the next live worker round-robin, or nil when every worker
// is down.
func (p *Pool) pick() *worker {
	n := len(p.workers)
	start := int(p.next.Add(1))
	for i := 0; i < n; i++ {
		w := p.workers[(start+i)%n]
		if !w.down.Load() {
			return w
		}
	}
	return nil
}

// backoff is exponential from the base, capped, plus seeded jitter in
// [0, wait/2] so synchronized retries spread out. A server-provided
// Retry-After raises the floor.
func (p *Pool) backoff(attempt int, retryAfter time.Duration) time.Duration {
	wait := p.cfg.BackoffBase << attempt
	if wait > p.cfg.BackoffCap || wait <= 0 {
		wait = p.cfg.BackoffCap
	}
	if retryAfter > wait {
		wait = retryAfter
	}
	p.rngMu.Lock()
	jitter := time.Duration(p.rng.Int63n(int64(wait)/2 + 1))
	p.rngMu.Unlock()
	return wait + jitter
}

// errBusy marks a 429: the worker is healthy but saturated, so the retry
// neither marks it down nor skips it — it just waits.
type errBusy struct {
	retryAfter time.Duration
}

func (e errBusy) Error() string {
	return fmt.Sprintf("worker queue full (retry after %s)", e.retryAfter)
}

func asBusy(err error) (bool, time.Duration) {
	var b errBusy
	if ok := errAs(err, &b); ok {
		return true, b.retryAfter
	}
	return false, 0
}

// errAs is errors.As without the reflective any-target form.
func errAs(err error, target *errBusy) bool {
	for err != nil {
		if b, ok := err.(errBusy); ok {
			*target = b
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// runShard drives one shard attempt on one worker: submit, watch the event
// stream under the heartbeat watchdog, fetch and decode the result.
func (p *Pool) runShard(ctx context.Context, w *worker, body []byte, key fault.CampaignKey, lo, hi int) (*fault.ShardResult, error) {
	id, err := p.submit(ctx, w, body)
	if err != nil {
		return nil, err
	}
	state, err := p.watch(ctx, w, id)
	if err != nil {
		// The worker may still be computing (hung, or just slower than the
		// heartbeat): cancel the job best-effort so a late completion burns
		// no further cycles, and never fetch its result — the reassigned
		// twin's digest-verified result is the only one merged.
		p.cancelJob(w, id)
		return nil, err
	}
	if state != "succeeded" {
		return nil, fmt.Errorf("worker %s: shard job %s ended %s", w.url, id, state)
	}
	return p.fetchResult(ctx, w, id, key, lo, hi)
}

func (p *Pool) submit(ctx context.Context, w *worker, body []byte) (string, error) {
	sctx, cancel := context.WithTimeout(ctx, p.cfg.SubmitTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodPost, w.url+"/jobs", strings.NewReader(string(body)))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	if p.cfg.Tenant != "" {
		req.Header.Set("X-Rescue-Client", p.cfg.Tenant)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return "", fmt.Errorf("submit to %s: %w", w.url, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusAccepted:
		var sn struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil || sn.ID == "" {
			return "", fmt.Errorf("submit to %s: bad response: %v", w.url, err)
		}
		return sn.ID, nil
	case http.StatusTooManyRequests:
		after := time.Duration(0)
		if secs, err := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); err == nil && secs > 0 {
			after = time.Duration(secs) * time.Second
		}
		io.Copy(io.Discard, resp.Body)
		return "", errBusy{retryAfter: after}
	default:
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("submit to %s: HTTP %d: %s", w.url, resp.StatusCode, strings.TrimSpace(string(b)))
	}
}

// watch follows the job's NDJSON event stream until its done event and
// returns the terminal state. Every streamed line is a heartbeat; silence
// beyond the configured window cancels the stream and fails the attempt —
// the hung-worker detector.
func (p *Pool) watch(ctx context.Context, w *worker, id string) (string, error) {
	wctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	req, err := http.NewRequestWithContext(wctx, http.MethodGet, w.url+"/jobs/"+id+"/events", nil)
	if err != nil {
		return "", err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return "", fmt.Errorf("events from %s: %w", w.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("events from %s: HTTP %d", w.url, resp.StatusCode)
	}

	errHeartbeat := fmt.Errorf("worker %s: no event in %s on job %s (hung?)", w.url, p.cfg.Heartbeat, id)
	beat := make(chan struct{}, 1)
	watchdogDone := make(chan struct{})
	defer close(watchdogDone)
	go func() {
		t := time.NewTimer(p.cfg.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-watchdogDone:
				return
			case <-beat:
				if !t.Stop() {
					<-t.C
				}
				t.Reset(p.cfg.Heartbeat)
			case <-t.C:
				cancel(errHeartbeat)
				return
			}
		}
	}()

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	state := ""
	for sc.Scan() {
		select {
		case beat <- struct{}{}:
		default:
		}
		var ev struct {
			Type  string `json:"type"`
			State string `json:"state"`
		}
		if json.Unmarshal(sc.Bytes(), &ev) == nil && ev.Type == "done" {
			state = ev.State
		}
	}
	if err := sc.Err(); err != nil {
		if cause := context.Cause(wctx); cause != nil && cause != context.Canceled {
			return "", cause
		}
		return "", fmt.Errorf("events from %s: %w", w.url, err)
	}
	if state == "" {
		return "", fmt.Errorf("worker %s: event stream for %s ended without a done event", w.url, id)
	}
	return state, nil
}

func (p *Pool) fetchResult(ctx context.Context, w *worker, id string, key fault.CampaignKey, lo, hi int) (*fault.ShardResult, error) {
	rctx, cancel := context.WithTimeout(ctx, p.cfg.SubmitTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, w.url+"/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("result from %s: %w", w.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result from %s: HTTP %d", w.url, resp.StatusCode)
	}
	var res fault.ShardResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return nil, fmt.Errorf("result from %s: %v", w.url, err)
	}
	// The campaign re-verifies before merging; verifying here too lets the
	// retry loop (not the fallback path) recover from a corrupt transfer.
	if res.Key != key || res.Lo != lo || res.Hi != hi {
		return nil, fmt.Errorf("result from %s: wrong shard (got key %+v [%d,%d))", w.url, res.Key, res.Lo, res.Hi)
	}
	if err := res.Verify(); err != nil {
		return nil, fmt.Errorf("result from %s: %w", w.url, err)
	}
	return &res, nil
}

// cancelJob best-effort DELETEs an abandoned job so a hung-but-alive
// worker stops burning cores on a shard nobody will read. A 409 means the
// job finished in the race window — fine either way; its result stays
// unread.
func (p *Pool) cancelJob(w *worker, id string) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, w.url+"/jobs/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := p.client.Do(req); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// healthLoop polls every worker's /healthz: a 200 revives a suspected
// worker, anything else retires it until it answers again.
func (p *Pool) healthLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			for _, w := range p.workers {
				up := p.healthy(w)
				was := w.down.Load()
				w.down.Store(!up)
				if was && up {
					p.logf("worker %s back up", w.url)
				}
			}
		}
	}
}

func (p *Pool) healthy(w *worker) bool {
	ctx, cancel := context.WithTimeout(context.Background(), p.cfg.HealthEvery)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// maybeChaos fires the chaos injector once the completed-shard count
// crosses the configured threshold: kill KillWorkers distinct workers,
// chosen by the pool's seeded RNG.
func (p *Pool) maybeChaos(completed int64) {
	c := p.cfg.Chaos
	if c.KillWorkers <= 0 {
		return
	}
	after := int64(c.AfterShards)
	if after < 1 {
		after = 1
	}
	if completed < after {
		return
	}
	p.chaosOnce.Do(func() {
		n := len(p.workers)
		k := c.KillWorkers
		if k > n {
			k = n
		}
		p.rngMu.Lock()
		victims := p.rng.Perm(n)[:k]
		p.rngMu.Unlock()
		for _, v := range victims {
			p.logf("chaos: killing worker %d (%s)", v, p.workers[v].url)
			if err := c.Kill(v); err != nil {
				p.logf("chaos: kill worker %d: %v", v, err)
				continue
			}
			p.killed.Add(1)
		}
	})
}

func (p *Pool) logf(format string, args ...any) {
	if p.cfg.Logf != nil {
		p.cfg.Logf(format, args...)
	}
}
