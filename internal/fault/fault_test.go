package fault

import (
	"math/rand"
	"testing"

	"rescue/internal/netlist"
	"rescue/internal/scan"
)

func buildPipe() *netlist.Netlist {
	n := netlist.New("fig2b")
	a := n.Input("a")
	b := n.Input("b")
	n.Component("LCM")
	m := n.Nand(a, b)
	srs := n.AddFF(m, "SRS")
	n.Component("LCX")
	x := n.Xor(srs, a)
	n.Component("LCY")
	y := n.Or(srs, b)
	n.Component("SRT")
	sx := n.AddFF(x, "SRT.x")
	sy := n.AddFF(y, "SRT.y")
	n.Component("LCN")
	o := n.And(sx, sy)
	n.Output(o, "out")
	return n
}

func randomPatterns(c *scan.Chain, words int, seed int64) []*scan.Pattern {
	r := rand.New(rand.NewSource(seed))
	var out []*scan.Pattern
	for w := 0; w < words; w++ {
		p := c.NewPattern(64)
		for i := range p.FFVals {
			p.FFVals[i] = r.Uint64()
		}
		for i := range p.PIVals {
			p.PIVals[i] = r.Uint64()
		}
		out = append(out, p)
	}
	return out
}

func TestCollapsing(t *testing.T) {
	n := netlist.New("c")
	a := n.Input("a")
	b := n.Input("b")
	o := n.And(a, b)
	n.AddFF(o, "q")
	n.Output(o, "o")
	u := NewUniverse(n)
	// AND gate: 6 faults -> out sa0 (+= in0 sa0, in1 sa0), out sa1, in0 sa1,
	// in1 sa1 => 4 classes; FF: 2 classes
	if u.CountAll() != 8 {
		t.Fatalf("all = %d, want 8", u.CountAll())
	}
	if u.CountCollapsed() != 6 {
		t.Fatalf("collapsed = %d, want 6", u.CountCollapsed())
	}
	// in0 sa0 must share a class with out sa0
	var outSA0, in0SA0 int = -1, -1
	for i, f := range u.All {
		if f.Gate == 0 && f.Pin == -1 && !f.StuckAt1 {
			outSA0 = u.ClassOf(i)
		}
		if f.Gate == 0 && f.Pin == 0 && !f.StuckAt1 {
			in0SA0 = u.ClassOf(i)
		}
	}
	if outSA0 != in0SA0 || outSA0 < 0 {
		t.Fatalf("AND in0-sa0 class %d != out-sa0 class %d", in0SA0, outSA0)
	}
}

func TestCollapsingInverter(t *testing.T) {
	n := netlist.New("inv")
	a := n.Input("a")
	o := n.Not(a)
	n.AddFF(o, "q")
	n.Output(o, "o")
	u := NewUniverse(n)
	// NOT: 4 faults -> 2 classes (in sa0 == out sa1, in sa1 == out sa0); FF 2
	if u.CountCollapsed() != 4 {
		t.Fatalf("collapsed = %d, want 4", u.CountCollapsed())
	}
}

// TestSimMatchesFullEval cross-checks the cone-restricted fault simulator
// against brute-force full-netlist evaluation for every fault site.
func TestSimMatchesFullEval(t *testing.T) {
	n := buildPipe()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	c, _ := scan.Insert(n, 1)
	pats := randomPatterns(c, 3, 42)
	sim := NewSim(c, pats)
	u := NewUniverse(n)

	for _, f := range u.All {
		fast := sim.Run(f, 0)
		// brute force
		slowDetected := false
		slowObs := map[int]bool{}
		for _, p := range pats {
			good := c.ApplyTest(p, netlist.NoFault)
			bad := c.ApplyTest(p, f)
			for oi := range good {
				if (good[oi]^bad[oi])&p.LaneMask() != 0 {
					slowDetected = true
					slowObs[oi] = true
				}
			}
		}
		if fast.Detected != slowDetected {
			t.Fatalf("fault %v: fast detected=%v slow=%v", f, fast.Detected, slowDetected)
		}
		fastObs := map[int]bool{}
		for _, o := range fast.FailObs {
			fastObs[o] = true
		}
		if len(fastObs) != len(slowObs) {
			t.Fatalf("fault %v: fast obs %v slow obs %v", f, fastObs, slowObs)
		}
		for o := range slowObs {
			if !fastObs[o] {
				t.Fatalf("fault %v: missing failing obs %d", f, o)
			}
		}
	}
}

func TestIsolationToComponent(t *testing.T) {
	n := buildPipe()
	c, _ := scan.Insert(n, 1)
	pats := randomPatterns(c, 4, 7)
	sim := NewSim(c, pats)
	bitComp := c.BitComp()
	u := NewUniverse(n)
	for _, f := range u.Collapsed {
		if f.Gate < 0 {
			continue // FF faults are chipkill in the paper's accounting
		}
		res := sim.Run(f, 0)
		if !res.Detected {
			continue
		}
		fc := n.FaultSiteComp(f)
		for _, oi := range res.FailObs {
			comps := bitComp[oi]
			found := false
			for _, cc := range comps {
				if cc == fc {
					found = true
				}
			}
			if !found {
				t.Errorf("fault %v in %s observed at obs %d whose cone is %v",
					f, n.CompName(fc), oi, comps)
			}
		}
	}
}

func TestMaxFailCap(t *testing.T) {
	n := buildPipe()
	c, _ := scan.Insert(n, 1)
	pats := randomPatterns(c, 4, 9)
	sim := NewSim(c, pats)
	f := netlist.Fault{Gate: 0, FF: -1, Pin: -1, StuckAt1: true}
	res := sim.Run(f, 1)
	if res.Detected && len(res.Fails) != 1 {
		t.Fatalf("maxFail=1 returned %d fails", len(res.Fails))
	}
}

func TestCoverageOnObservableCircuit(t *testing.T) {
	n := buildPipe()
	c, _ := scan.Insert(n, 1)
	pats := randomPatterns(c, 8, 11)
	sim := NewSim(c, pats)
	u := NewUniverse(n)
	cov := sim.Coverage(u.Collapsed)
	if cov < 0.95 {
		t.Fatalf("coverage = %.2f on a tiny fully-observable circuit", cov)
	}
}
