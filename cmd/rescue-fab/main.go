// Command rescue-fab closes the defect-tolerance loop empirically: it
// manufactures a Monte Carlo fleet of Rescue dies with clustered random
// defects, scan-tests and diagnoses each one with the real isolation
// machinery, programs the fault map, ships survivors degraded, and
// reports fleet yield and yield-adjusted throughput with confidence
// intervals beside the analytic Figure 9 model.
//
// The run is resilient: SIGINT/SIGTERM finish in-flight campaign chunks,
// flush the -checkpoint journal, and exit 130; -timeout bounds the run by
// a deadline (exit 124); rerunning with -resume rehydrates the journal
// and converges bit-identically at any -workers.
//
// Usage:
//
//	rescue-fab [-dies N] [-node 90|65|32|18] [-stagnate 90|65]
//	           [-growth 0.30] [-seed N] [-workers N] [-small]
//	           [-bench list] [-warmup N] [-commit N]
//	           [-selfheal-share F] [-timing=false] [-timeout D] [-progress]
//	           [-checkpoint path [-resume]] [-chaos-cancel-after N]
package main

import (
	"flag"
	"os"

	"rescue/internal/cli"
	"rescue/internal/flows"
)

func main() {
	dies := flag.Int("dies", 10_000, "dies to manufacture")
	nodeNM := flag.Int("node", 18, "technology node in nm (90, 65, 32, 18)")
	stagnate := flag.Int("stagnate", 90, "node (nm) at which PWP stops improving")
	growth := flag.Float64("growth", 0.30, "core growth rate per technology halving")
	seed := flag.Int64("seed", 2026, "fleet sampling seed")
	small := flag.Bool("small", false, "use the reduced configuration (2-way)")
	benches := flag.String("bench", "gzip", "comma-separated benchmarks for the IPC model (empty = all 23)")
	warmup := flag.Int64("warmup", 2_000, "warmup instructions per IPC simulation")
	commit := flag.Int64("commit", 10_000, "measured instructions per IPC simulation")
	healShare := flag.Float64("selfheal-share", 0, "fraction of the chipkill bucket covered by self-healing arrays")
	timing := flag.Bool("timing", true, "print wall-clock timings (disable for golden diffs)")
	ff := cli.AddFlowFlags(flag.CommandLine)
	flag.Parse()
	ff.Validate()
	if *dies < 1 {
		cli.Usagef("-dies must be >= 1, got %d", *dies)
	}
	if _, ok := flows.ValidNode(*nodeNM); !ok {
		cli.Usagef("-node must be one of 90, 65, 32, 18, got %d", *nodeNM)
	}
	if *growth < 0 {
		cli.Usagef("-growth must be >= 0, got %v", *growth)
	}
	ck := ff.OpenCheckpoint()

	ctx, stop := ff.Context()
	defer stop()

	res, err := flows.Fab(ctx, os.Stdout, flows.FabOpts{
		Dies:          *dies,
		NodeNM:        *nodeNM,
		StagnateNM:    *stagnate,
		Growth:        *growth,
		GrowthSet:     true,
		Seed:          *seed,
		Workers:       ff.Workers,
		Small:         *small,
		Bench:         *benches,
		BenchSet:      true,
		Warmup:        *warmup,
		Commit:        *commit,
		SelfHealShare: *healShare,
		Timing:        *timing,
	}, flows.Env{Ck: ck})
	if err != nil {
		cli.ExitFlow(err, res.Stats, ck)
	}
}
