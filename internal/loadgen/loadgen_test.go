package loadgen

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func testConfig(seed int64) Config {
	return Config{
		Seed:      seed,
		Clients:   10,
		Duration:  20 * time.Second,
		RPS:       50,
		Skew:      1.0,
		HitRatio:  0.8,
		BurstFrac: 0.3,
		Profiles:  SmallMix(),
	}
}

// TestScheduleDeterministic is the acceptance pin: the same seed builds an
// identical request schedule — clients, kinds, arrival times, bodies —
// and a different seed does not.
func TestScheduleDeterministic(t *testing.T) {
	a, err := Build(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(testConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Requests) == 0 {
		t.Fatal("empty schedule")
	}
	if a.Digest() != b.Digest() {
		t.Fatalf("same seed, different digests: %s vs %s", a.Digest(), b.Digest())
	}
	// Digest covers the full request list: same length, same fields.
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("request counts differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		ra, rb := a.Requests[i], b.Requests[i]
		if ra.At != rb.At || ra.Client != rb.Client || ra.Kind != rb.Kind ||
			ra.Warm != rb.Warm || !bytes.Equal(ra.Body, rb.Body) {
			t.Fatalf("request %d differs: %+v vs %+v", i, ra, rb)
		}
	}

	c, err := Build(testConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == c.Digest() {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestScheduleShape checks the statistical contract: time-ordered arrivals
// inside the horizon, a Zipf-skewed population, warm share near the hit
// ratio, every kind present, and request volume near RPS × duration.
func TestScheduleShape(t *testing.T) {
	cfg := testConfig(7)
	sch, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}

	perClient := make([]int, cfg.Clients)
	perKind := map[string]int{}
	warm, seedable := 0, 0
	seedableKinds := map[string]bool{}
	for _, p := range cfg.Profiles {
		if p.SeedKey != "" {
			seedableKinds[p.Kind] = true
		}
	}
	last := time.Duration(-1)
	for _, r := range sch.Requests {
		if r.At < last {
			t.Fatalf("arrivals out of order at seq %d: %v < %v", r.Seq, r.At, last)
		}
		last = r.At
		if r.At >= cfg.Duration {
			t.Fatalf("request %d scheduled past the horizon: %v", r.Seq, r.At)
		}
		perClient[r.Client]++
		perKind[r.Kind]++
		if seedableKinds[r.Kind] {
			seedable++
			if r.Warm {
				warm++
			}
		} else if !r.Warm {
			t.Fatalf("warm-only kind %s produced a cold request", r.Kind)
		}
	}

	// Volume ≈ RPS × duration; bursts add on top, so allow a wide band.
	n := len(sch.Requests)
	expect := cfg.RPS * cfg.Duration.Seconds()
	if float64(n) < 0.5*expect || float64(n) > 3*expect {
		t.Fatalf("%d requests for expected ~%.0f", n, expect)
	}
	// Zipf skew: the heaviest client far outweighs the lightest.
	if perClient[0] < 2*perClient[cfg.Clients-1] {
		t.Fatalf("no rate skew: client0=%d clientN=%d", perClient[0], perClient[cfg.Clients-1])
	}
	// Every profile kind appears.
	for _, p := range cfg.Profiles {
		if perKind[p.Kind] == 0 {
			t.Fatalf("kind %s never scheduled (mix %v)", p.Kind, perKind)
		}
	}
	// Warm share of seedable traffic tracks the configured hit ratio.
	ratio := float64(warm) / float64(seedable)
	if ratio < cfg.HitRatio-0.1 || ratio > cfg.HitRatio+0.1 {
		t.Fatalf("warm ratio %.2f for configured %.2f (%d/%d)", ratio, cfg.HitRatio, warm, seedable)
	}
}

// TestScheduleBodies: warm requests carry exactly the canonical body; cold
// requests perturb only the seed key, each with a distinct large seed.
func TestScheduleBodies(t *testing.T) {
	cfg := testConfig(11)
	sch, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seedKey := map[string]string{}
	for _, p := range cfg.Profiles {
		seedKey[p.Kind] = p.SeedKey
	}
	seen := map[int64]bool{}
	cold := 0
	for _, r := range sch.Requests {
		if r.Warm {
			if !bytes.Equal(r.Body, sch.Canonical[r.Kind]) {
				t.Fatalf("warm request %d body differs from canonical:\n%s\n%s",
					r.Seq, r.Body, sch.Canonical[r.Kind])
			}
			continue
		}
		cold++
		var spec struct {
			Kind   string                     `json:"kind"`
			Params map[string]json.RawMessage `json:"params"`
		}
		if err := json.Unmarshal(r.Body, &spec); err != nil {
			t.Fatalf("cold body %d: %v", r.Seq, err)
		}
		var seed int64
		if err := json.Unmarshal(spec.Params[seedKey[r.Kind]], &seed); err != nil {
			t.Fatalf("cold body %d has no %s: %s", r.Seq, seedKey[r.Kind], r.Body)
		}
		if seed < 1<<32 {
			t.Fatalf("cold seed %d too small (may alias a canonical seed)", seed)
		}
		if seen[seed] {
			t.Fatalf("cold seed %d reused; cold requests must be distinct artifacts", seed)
		}
		seen[seed] = true
	}
	if cold == 0 {
		t.Fatal("schedule has no cold requests at hit ratio 0.8")
	}
}

// TestBuildValidation: broken configs are rejected up front.
func TestBuildValidation(t *testing.T) {
	bad := []Config{
		{Clients: 0, Duration: time.Second, RPS: 1, Profiles: SmallMix()},
		{Clients: 1, Duration: 0, RPS: 1, Profiles: SmallMix()},
		{Clients: 1, Duration: time.Second, RPS: 0, Profiles: SmallMix()},
		{Clients: 1, Duration: time.Second, RPS: 1},
		{Clients: 1, Duration: time.Second, RPS: 1, HitRatio: 1.5, Profiles: SmallMix()},
		{Clients: 1, Duration: time.Second, RPS: 1, Skew: -1, Profiles: SmallMix()},
		{Clients: 1, Duration: time.Second, RPS: 1,
			Profiles: []Profile{{Kind: "x", Weight: 0}}},
	}
	for i, cfg := range bad {
		if _, err := Build(cfg); err == nil {
			t.Errorf("config %d accepted, want error: %+v", i, cfg)
		}
	}
}

// TestScheduleSeeds pins the arrival-seed export added for backoff
// jitter: Seeds is one derived seed per client, deterministic across
// builds, and explicitly excluded from the schedule digest — exposing the
// seeds must not invalidate existing recorded digests.
func TestScheduleSeeds(t *testing.T) {
	a, err := Build(testConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(testConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Seeds) != len(a.Clients) {
		t.Fatalf("%d seeds for %d clients", len(a.Seeds), len(a.Clients))
	}
	for i := range a.Seeds {
		if a.Seeds[i] != b.Seeds[i] {
			t.Fatalf("seed %d differs across identical builds: %d vs %d", i, a.Seeds[i], b.Seeds[i])
		}
	}
	before := a.Digest()
	a.Seeds = nil
	if after := a.Digest(); after != before {
		t.Fatalf("digest depends on Seeds: %s vs %s", before, after)
	}
}

// TestJitterSeedDerivation: every request gets its own deterministic
// jitter seed from its client's arrival seed, and hand-built schedules
// without Seeds still work.
func TestJitterSeedDerivation(t *testing.T) {
	sch, err := Build(testConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Requests) < 2 {
		t.Fatal("schedule too small")
	}
	r0, r1 := sch.Requests[0], sch.Requests[1]
	if sch.jitterSeed(r0) != sch.Seeds[r0.Client]+int64(r0.Seq) {
		t.Fatal("jitter seed not derived from the client's arrival seed")
	}
	if sch.jitterSeed(r0) == sch.jitterSeed(r1) {
		t.Fatalf("requests %d and %d share a jitter seed", r0.Seq, r1.Seq)
	}
	bare := &Schedule{}
	if got := bare.jitterSeed(Request{Seq: 5, Client: 3}); got != 5 {
		t.Fatalf("seedless schedule jitter seed = %d, want the sequence number 5", got)
	}
}
