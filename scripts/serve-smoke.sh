#!/usr/bin/env bash
# End-to-end smoke test for the rescued batch daemon over real HTTP:
#
#   1. build rescued and start it on an ephemeral port
#   2. submit the small Table 3 ATPG campaign as a job
#   3. stream its NDJSON event feed to completion (must include progress)
#   4. diff the job result against the committed golden — byte for byte,
#      the daemon must reproduce exactly what the rescue-atpg CLI prints
#   5. resubmit the identical spec; it must be served from the artifact
#      cache (hit counter moves on /metrics) and stay byte-identical
#   6. scrape /metrics and assert the job and cache counters are nonzero
#   7. SIGTERM the daemon; it must drain and exit 0
#
# Usage: scripts/serve-smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build"
go build -o "$tmp/rescued" ./cmd/rescued

echo "== start rescued on an ephemeral port"
"$tmp/rescued" -addr 127.0.0.1:0 -checkpoint-dir "$tmp/ck" >"$tmp/rescued.out" 2>"$tmp/rescued.err" &
daemon_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^listening on //p' "$tmp/rescued.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
if [ -z "$addr" ]; then
    echo "FAIL: rescued never reported its listen address" >&2
    cat "$tmp/rescued.err" >&2
    exit 1
fi
base="http://$addr"
curl -fsS "$base/healthz" >/dev/null

submit() {
    curl -fsS -X POST -H 'Content-Type: application/json' \
        -d '{"kind":"table3","params":{"small":true,"workers":2}}' \
        "$base/jobs" | grep -o '"id": *"[^"]*"' | head -1 | sed 's/.*"id": *"\([^"]*\)".*/\1/'
}

echo "== submit small table3 (cold) and stream events"
job=$(submit)
[ -n "$job" ] || { echo "FAIL: no job id in submit response" >&2; exit 1; }
curl -fsS --no-buffer "$base/jobs/$job/events" >"$tmp/events.ndjson"
grep -q '"type":"progress"' "$tmp/events.ndjson" || {
    echo "FAIL: event stream carried no progress events" >&2
    cat "$tmp/events.ndjson" >&2
    exit 1
}
grep -q '"type":"done"' "$tmp/events.ndjson" || {
    echo "FAIL: event stream never reached done" >&2
    exit 1
}

echo "== diff cold result against the golden"
curl -fsS "$base/jobs/$job/result" >"$tmp/cold.txt"
diff -u results/table3_small.txt "$tmp/cold.txt"

echo "== resubmit: must be a cache hit and still byte-identical"
job2=$(submit)
curl -fsS --no-buffer "$base/jobs/$job2/events" >/dev/null
curl -fsS "$base/jobs/$job2/result" >"$tmp/warm.txt"
diff -u results/table3_small.txt "$tmp/warm.txt"

echo "== scrape /metrics"
curl -fsS "$base/metrics" >"$tmp/metrics.txt"
metric() {
    awk -v name="$1" '$1 == name { print $2 }' "$tmp/metrics.txt"
}
for m in jobs_succeeded_total artifact_cache_hits_total artifact_cache_misses_total; do
    v=$(metric "$m")
    if [ -z "$v" ] || [ "$v" -lt 1 ]; then
        echo "FAIL: /metrics $m = '${v:-missing}', want >= 1" >&2
        cat "$tmp/metrics.txt" >&2
        exit 1
    fi
    echo "   $m = $v"
done
if [ "$(metric jobs_succeeded_total)" -ne 2 ]; then
    echo "FAIL: expected exactly 2 succeeded jobs" >&2
    exit 1
fi

echo "== SIGTERM: daemon must drain and exit 0"
kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=""
if [ "$rc" -ne 0 ]; then
    echo "FAIL: rescued exited $rc on SIGTERM, want 0" >&2
    cat "$tmp/rescued.err" >&2
    exit 1
fi
grep -q 'drained; exiting' "$tmp/rescued.out" || {
    echo "FAIL: no drain confirmation on stdout" >&2
    exit 1
}

echo "PASS: serve smoke (cold + warm byte-identical, metrics live, clean drain)"
