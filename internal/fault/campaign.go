package fault

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rescue/internal/netlist"
)

// Stats counts what a campaign (or one of its runs) actually did — the
// observability record the CLIs print.
type Stats struct {
	Faults   int64 // fault simulations performed
	Detected int64 // faults the pattern set detected
	Dropped  int64 // (fault, word) sims skipped after the failing-bit cap hit
	Words    int64 // (fault, word) pairs event-simulated
	Events   int64 // gate evaluations performed
	Wall     time.Duration
	Workers  int
}

// Add accumulates another run's stats (wall times sum; workers keep the max).
func (s *Stats) Add(o Stats) {
	s.Faults += o.Faults
	s.Detected += o.Detected
	s.Dropped += o.Dropped
	s.Words += o.Words
	s.Events += o.Events
	s.Wall += o.Wall
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
}

// CampaignConfig tunes a fault-simulation campaign.
type CampaignConfig struct {
	// Workers is the concurrency degree; <= 0 means runtime.NumCPU().
	Workers int
	// MaxFail caps failing bits collected per fault (0 = unlimited —
	// required by isolation/dictionary flows that need full FailObs sets).
	MaxFail int
	// Drop enables fault dropping: once a fault is detected by some word,
	// later pattern words are skipped for it (coverage-only mode; forces an
	// effective MaxFail of at least 1). Must stay off when callers need
	// every failing observation point.
	Drop bool
	// Chunk is the dispatch batch size; <= 0 picks one from the fault count.
	Chunk int
}

// Campaign shards a fault list across workers that share one read-only
// simCore (good-machine images, levels, readers, obs map) while each owns
// a private simScratch, so no synchronization touches the hot loop.
// Results are always ordered by fault index and bit-identical to the
// serial path regardless of worker count.
//
// A Campaign reuses its per-worker scratch state across runs, so create it
// once and call Run/RunWords repeatedly; calls must not overlap, and the
// underlying Sim's pattern set must not grow during a run.
type Campaign struct {
	cfg  CampaignConfig
	core *simCore
	scr  []*simScratch
}

// NewCampaign prepares a campaign over s's netlist and pattern set.
func NewCampaign(s *Sim, cfg CampaignConfig) *Campaign {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.Drop && cfg.MaxFail <= 0 {
		cfg.MaxFail = 1
	}
	return &Campaign{cfg: cfg, core: &s.simCore}
}

// Workers reports the configured concurrency degree.
func (c *Campaign) Workers() int { return c.cfg.Workers }

// Run simulates every fault against the full pattern set.
func (c *Campaign) Run(faults []netlist.Fault) ([]Result, Stats) {
	return c.run(faults, 0, len(c.core.Patterns))
}

// RunWords simulates every fault against pattern words [wLo, wHi) only —
// the campaign form of the ATPG per-word fault-dropping loop.
func (c *Campaign) RunWords(faults []netlist.Fault, wLo, wHi int) ([]Result, Stats) {
	return c.run(faults, wLo, wHi)
}

func (c *Campaign) run(faults []netlist.Fault, wLo, wHi int) ([]Result, Stats) {
	start := time.Now()
	out := make([]Result, len(faults))
	workers := c.cfg.Workers
	if workers > len(faults) {
		workers = len(faults)
	}
	if workers < 1 {
		workers = 1
	}
	for len(c.scr) < workers {
		scr := &simScratch{}
		scr.init(c.core)
		c.scr = append(c.scr, scr)
	}
	q := newChunkQueue(len(faults), workers, c.cfg.Chunk)
	nWords := int64(wHi - wLo)
	perWorker := make([]Stats, workers)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scr := c.scr[w]
			st := &perWorker[w]
			words0, events0 := scr.words, scr.events
			for {
				lo, hi, ok := q.next(w)
				if !ok {
					break
				}
				for i := lo; i < hi; i++ {
					before := scr.words
					out[i] = c.core.run(scr, faults[i], c.cfg.MaxFail, wLo, wHi)
					st.Faults++
					if out[i].Detected {
						st.Detected++
					}
					if c.cfg.MaxFail > 0 {
						st.Dropped += nWords - (scr.words - before)
					}
				}
			}
			st.Words = scr.words - words0
			st.Events = scr.events - events0
		}(w)
	}
	wg.Wait()

	var st Stats
	for i := range perWorker {
		st.Faults += perWorker[i].Faults
		st.Detected += perWorker[i].Detected
		st.Dropped += perWorker[i].Dropped
		st.Words += perWorker[i].Words
		st.Events += perWorker[i].Events
	}
	st.Wall = time.Since(start)
	st.Workers = workers
	return out, st
}

// chunkQueue is a work-stealing dispatch queue over fault indices [0, n):
// the range is pre-split into one contiguous segment per worker, each
// consumed front-to-back in fixed-size chunks via an atomic cursor. A
// worker that drains its own segment steals chunks from the segment with
// the most work remaining, so one fault with a huge propagation region
// (or a skewed segment) cannot stall the rest of the pool.
type chunkQueue struct {
	segs  []chunkSeg
	chunk int64
}

type chunkSeg struct {
	pos atomic.Int64 // next unclaimed index
	end int64        // one past the last index (immutable)
	_   [6]int64     // keep cursors on separate cache lines
}

func newChunkQueue(n, workers, chunk int) *chunkQueue {
	if chunk <= 0 {
		// Small chunks keep stealing effective; larger ones amortize the
		// atomic op. ~16 chunks per worker balances both.
		chunk = n / (workers * 16)
		if chunk < 1 {
			chunk = 1
		}
		if chunk > 256 {
			chunk = 256
		}
	}
	q := &chunkQueue{segs: make([]chunkSeg, workers), chunk: int64(chunk)}
	per := n / workers
	rem := n % workers
	lo := 0
	for i := range q.segs {
		hi := lo + per
		if i < rem {
			hi++
		}
		q.segs[i].pos.Store(int64(lo))
		q.segs[i].end = int64(hi)
		lo = hi
	}
	return q
}

// take claims the next chunk of segment i, if any.
func (q *chunkQueue) take(i int) (lo, hi int, ok bool) {
	s := &q.segs[i]
	for {
		p := s.pos.Load()
		if p >= s.end {
			return 0, 0, false
		}
		h := p + q.chunk
		if h > s.end {
			h = s.end
		}
		if s.pos.CompareAndSwap(p, h) {
			return int(p), int(h), true
		}
	}
}

// next returns worker self's next chunk: its own segment first, then a
// steal from the fullest remaining segment.
func (q *chunkQueue) next(self int) (lo, hi int, ok bool) {
	if lo, hi, ok = q.take(self); ok {
		return lo, hi, true
	}
	for {
		best, bestRem := -1, int64(0)
		for i := range q.segs {
			if rem := q.segs[i].end - q.segs[i].pos.Load(); rem > bestRem {
				best, bestRem = i, rem
			}
		}
		if best < 0 {
			return 0, 0, false
		}
		if lo, hi, ok = q.take(best); ok {
			return lo, hi, true
		}
	}
}
