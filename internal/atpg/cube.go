package atpg

import "rescue/internal/scan"

// Apply packs the cube into lane `lane` of pattern p, which must still be
// zero in that lane (bits are ORed in, the way pattern words are built
// up). FF assignments land in FFVals by flop index, PI assignments in
// PIVals by input index — the same order the cube was derived in. X
// positions take a bit from xfill, called once per don't-care in FF-then-
// PI order so callers with a seeded RNG stay deterministic; a nil xfill
// zero-fills, which is always safe: a true PODEM test detects its target
// under any don't-care fill.
func (cb Cube) Apply(p *scan.Pattern, lane uint, xfill func() uint64) {
	bit := func(v V3) uint64 {
		switch v {
		case One:
			return 1
		case Zero:
			return 0
		default:
			if xfill == nil {
				return 0
			}
			return xfill() & 1
		}
	}
	for fi, v := range cb.FF {
		p.FFVals[fi] |= bit(v) << lane
	}
	for pi, v := range cb.PI {
		p.PIVals[pi] |= bit(v) << lane
	}
}
