package fab

import (
	"sort"

	"rescue/internal/ici"
	"rescue/internal/netlist"
)

// Diagnose maps the union of failing observation points of a scan test to
// the implicated super-component set, with the conservative fallback the
// manufacturing flow requires: a failing bit the ICI audit flagged as
// violating — or one implicating no super-component at all — makes the
// whole diagnosis ambiguous. An ambiguous die is treated as chipkill
// rather than risk programming a wrong fault map and shipping a core that
// still computes with a defect in the datapath.
//
// Under a clean audit the union of each fault's failing bits equals the
// simultaneous multi-fault response: every observation cone is fed by a
// single super-component, so a fault in one component cannot mask or
// excite observation points of another (the ICI corollary of Section 3.1).
func Diagnose(audit *ici.AuditResult, failObs []int) (supers []string, ambiguous bool) {
	set := map[string]bool{}
	for _, oi := range failObs {
		if oi < 0 || oi >= len(audit.BitSuper) ||
			audit.BitSuper[oi] == "" || audit.ViolatingObs(oi) {
			return nil, true
		}
		set[audit.BitSuper[oi]] = true
	}
	supers = make([]string, 0, len(set))
	for s := range set {
		supers = append(supers, s)
	}
	sort.Strings(supers)
	return supers, false
}

// ChainFail reports whether any fault in the set sits on a scan cell
// itself (an FF fault): the chain flush test catches these before any
// pattern is applied, and scan cells are chipkill by construction — a die
// whose chain does not shift is discarded without diagnosis.
func ChainFail(faults []netlist.Fault) bool {
	for _, f := range faults {
		if f.Gate < 0 {
			return true
		}
	}
	return false
}
