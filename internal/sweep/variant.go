// Package sweep implements the design-space exploration subsystem: it
// evaluates a grid of parameterized Rescue variants end to end — netlist
// build, ATPG, fault dictionary, fab fleet, yield-adjusted throughput —
// and reports the yield/YAT/area/test-time frontier.
//
// A Variant bundles every knob the rest of the codebase hard-codes to the
// paper's Table 1 machine: the RTL configuration and scan-chain split, the
// performance-simulator shape (queue sizes, pipeline depth, replay
// policy, compaction-buffer depth), and the area model's chipkill share.
// Variants serialize canonically and digest stably, so the artifact store
// shares netlists, test programs, dictionaries, and perf models between
// any two sweep points whose relevant knobs coincide.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"rescue/internal/area"
	"rescue/internal/rtl"
	"rescue/internal/uarch"
)

// PerfConfig is the performance-simulator shape of a variant: the Table 1
// knobs that define the *baseline* machine. The Rescue machine is derived
// (see RescueParams), exactly as the paper derives its Rescue pipeline
// from the conventional one.
type PerfConfig struct {
	Ways          int    `json:"ways"`
	IssueWidth    int    `json:"issueWidth"`
	CommitWidth   int    `json:"commitWidth"`
	IntIQSize     int    `json:"intIQSize"`
	FPIQSize      int    `json:"fpIQSize"`
	LSQSize       int    `json:"lsqSize"`
	ROBSize       int    `json:"robSize"`
	FrontendDepth int    `json:"frontendDepth"`
	CompBufSlots  int    `json:"compBufSlots"`
	SquashWindow  int    `json:"squashWindow"` // Rescue squash window (baseline always uses 1)
	ReplayPolicy  string `json:"replayPolicy"` // "smaller-half", "all", or "oracle"
}

// replayPolicy parses the serialized policy name.
func replayPolicy(s string) (uarch.ReplayPolicy, error) {
	switch s {
	case "smaller-half":
		return uarch.ReplaySmallerHalf, nil
	case "all":
		return uarch.ReplayAll, nil
	case "oracle":
		return uarch.OracleCombine, nil
	}
	return 0, fmt.Errorf("sweep: unknown replay policy %q (want smaller-half, all, or oracle)", s)
}

// BaselineParams derives the conventional-superscalar simulator
// parameters. For the paper preset this reproduces uarch.DefaultParams()
// exactly (pinned by TestPaperPresetParams).
func (pc PerfConfig) BaselineParams() uarch.Params {
	return uarch.Params{
		Ways:            pc.Ways,
		IssueWidth:      pc.IssueWidth,
		CommitWidth:     pc.CommitWidth,
		IntIQSize:       pc.IntIQSize,
		FPIQSize:        pc.FPIQSize,
		LSQSize:         pc.LSQSize,
		ROBSize:         pc.ROBSize,
		FrontendDepth:   pc.FrontendDepth,
		CompBufSlots:    pc.CompBufSlots,
		SquashWindow:    1,
		MemLatencyScale: 1,
	}
}

// RescueParams derives the Rescue machine from the baseline shape: the
// transformations add two frontend stages (shift networks) and the
// configured squash window and replay policy. For the paper preset this
// reproduces uarch.RescueParams() exactly.
func (pc PerfConfig) RescueParams() (uarch.Params, error) {
	rp, err := replayPolicy(pc.ReplayPolicy)
	if err != nil {
		return uarch.Params{}, err
	}
	p := pc.BaselineParams()
	p.Rescue = true
	p.FrontendDepth += 2
	p.SquashWindow = pc.SquashWindow
	p.ReplayPolicy = rp
	return p, nil
}

// Variant is one point's machine description: everything that determines
// the netlist, the test program, the performance model, and the area
// model. The self-heal spare share is deliberately NOT part of the
// variant — it is a fab-level axis that reuses every artifact (see
// Spec.SelfHeal).
type Variant struct {
	Netlist       rtl.Config `json:"netlist"`
	ScanChains    int        `json:"scanChains"`
	Perf          PerfConfig `json:"perf"`
	ChipkillScale float64    `json:"chipkillScale"`
}

// Validate checks the variant end to end: RTL config, scan split, both
// derived simulator parameter sets, and the area knob.
func (v Variant) Validate() error {
	if err := v.Netlist.Validate(); err != nil {
		return err
	}
	if v.ScanChains < 1 || v.ScanChains > 64 {
		return fmt.Errorf("sweep: scanChains = %d out of range [1,64]", v.ScanChains)
	}
	if v.ChipkillScale <= 0 || v.ChipkillScale > 10 {
		return fmt.Errorf("sweep: chipkillScale = %g out of range (0,10]", v.ChipkillScale)
	}
	if err := v.Perf.BaselineParams().Validate(); err != nil {
		return fmt.Errorf("sweep: baseline params: %w", err)
	}
	resc, err := v.Perf.RescueParams()
	if err != nil {
		return err
	}
	if err := resc.Validate(); err != nil {
		return fmt.Errorf("sweep: rescue params: %w", err)
	}
	return nil
}

// AreaModel composes the variant's Rescue area model with a fab-level
// self-heal spare share. ChipkillScale 1 and share 0 reproduce
// area.Rescue() bit-exactly; share > 0 with scale 1 reproduces
// area.RescueSelfHeal(share).
func (v Variant) AreaModel(selfHealShare float64) area.Model {
	m := area.RescueChipkillScaled(v.ChipkillScale)
	if selfHealShare > 0 {
		m = area.SelfHealFrom(m, selfHealShare)
	}
	return m
}

// canonDigest digests a canonical JSON serialization: kind-prefixed
// sha256, 12 hex chars — enough to never collide within one sweep grid.
func canonDigest(kind string, v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic("sweep: digest marshal: " + err.Error()) // all key types marshal
	}
	sum := sha256.Sum256(append([]byte(kind+"\x00"), b...))
	return hex.EncodeToString(sum[:6])
}

type netlistKey struct {
	Netlist    rtl.Config `json:"netlist"`
	ScanChains int        `json:"scanChains"`
	Variant    string     `json:"variant"`
}

// NetlistKey is the canonical digest of everything that determines the
// built system and its test program: the RTL configuration, the
// scan-chain split, and the design variant (always Rescue here, but kept
// in the key so the namespace can never collide with a baseline build).
// Two sweep points with equal NetlistKeys share netlist, ATPG, and
// dictionary artifacts.
func (v Variant) NetlistKey() string {
	return canonDigest("net", netlistKey{v.Netlist, v.ScanChains, rtl.RescueDesign.String()})
}

// PerfKey is the canonical digest of the simulator shape — the part of
// the variant the perf model depends on. RTL-only variants (different
// scan split, say) share perf models.
func (v Variant) PerfKey() string {
	return canonDigest("perf", v.Perf)
}

// Digest is the canonical digest of the whole variant.
func (v Variant) Digest() string {
	return canonDigest("variant", v)
}

// paperPerf is the Table 1 machine as a PerfConfig.
func paperPerf() PerfConfig {
	return PerfConfig{
		Ways:          4,
		IssueWidth:    4,
		CommitWidth:   4,
		IntIQSize:     36,
		FPIQSize:      36,
		LSQSize:       32,
		ROBSize:       128,
		FrontendDepth: 15,
		CompBufSlots:  4,
		SquashWindow:  2,
		ReplayPolicy:  "smaller-half",
	}
}

// presets is the named-variant registry. Each entry is a function so
// callers always get a fresh value.
var presets = map[string]func() Variant{
	// The paper's machine: Table 1 pipeline, single scan chain,
	// measured chipkill share. The sweep's fixed point — its yield and
	// YAT reproduce the goldens exactly.
	"paper": func() Variant {
		return Variant{Netlist: rtl.Default(), ScanChains: 1, Perf: paperPerf(), ChipkillScale: 1}
	},
	// Deeper pipeline: more frontend stages (faster clock, worse
	// misprediction cost) and a wider Rescue squash window.
	"deep-pipe": func() Variant {
		v := Variant{Netlist: rtl.Default(), ScanChains: 1, Perf: paperPerf(), ChipkillScale: 1}
		v.Perf.FrontendDepth = 22
		v.Perf.SquashWindow = 3
		return v
	},
	// Shallower pipeline: the misprediction-tolerant end of the axis.
	"shallow-pipe": func() Variant {
		v := Variant{Netlist: rtl.Default(), ScanChains: 1, Perf: paperPerf(), ChipkillScale: 1}
		v.Perf.FrontendDepth = 8
		return v
	},
	// Bitmap-style wakeup: cheap broadcast lets the windows grow —
	// bigger queues, ROB, and compaction buffer, paid for with a larger
	// chipkill share (wider wakeup control).
	"wide-wakeup": func() Variant {
		v := Variant{Netlist: rtl.Default(), ScanChains: 1, Perf: paperPerf(), ChipkillScale: 1.15}
		v.Perf.IntIQSize = 48
		v.Perf.FPIQSize = 48
		v.Perf.LSQSize = 40
		v.Perf.ROBSize = 160
		v.Perf.CompBufSlots = 6
		return v
	},
	// CAM-style wakeup: expensive match ports keep the windows small —
	// smaller queues and compaction buffer, a leaner chipkill complex.
	"lean-wakeup": func() Variant {
		v := Variant{Netlist: rtl.Default(), ScanChains: 1, Perf: paperPerf(), ChipkillScale: 0.9}
		v.Perf.IntIQSize = 24
		v.Perf.FPIQSize = 24
		v.Perf.LSQSize = 24
		v.Perf.ROBSize = 96
		v.Perf.CompBufSlots = 2
		return v
	},
}

// Presets returns the registered preset names, sorted.
func Presets() []string {
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Preset returns a fresh copy of a named preset variant.
func Preset(name string) (Variant, bool) {
	f, ok := presets[name]
	if !ok {
		return Variant{}, false
	}
	return f(), true
}
