package obs

import (
	"context"
	"time"
)

type tracerKey struct{}

// WithTracer attaches a metrics registry to ctx as the span sink: every
// Span opened under this context records its duration into the registry's
// "span_<name>_seconds" histogram (and bumps "span_<name>_total").
func WithTracer(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, r)
}

// TracerFrom returns the registry attached by WithTracer, or nil.
func TracerFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(tracerKey{}).(*Registry)
	return r
}

// Span opens a named timing span and returns its closer. Without a tracer
// on the context the call is free (nil check + no allocation on close), so
// flow code can instrument campaign sections unconditionally:
//
//	defer obs.Span(ctx, "atpg_random")()
func Span(ctx context.Context, name string) func() {
	r := TracerFrom(ctx)
	if r == nil {
		return func() {}
	}
	start := time.Now()
	return func() {
		r.Counter("span_" + name + "_total").Inc()
		r.Histogram("span_" + name + "_seconds").Observe(time.Since(start).Seconds())
	}
}
