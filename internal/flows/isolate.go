package flows

import (
	"context"
	"fmt"
	"io"
	"time"

	"rescue/internal/atpg"
	"rescue/internal/core"
	"rescue/internal/fault"
	"rescue/internal/rtl"
)

// IsolationOpts parameterizes the Section 6.1 isolation campaign — the
// rescue-isolate command surface.
type IsolationOpts struct {
	Small    bool
	PerStage int   // 0 means the paper's 1000
	Seed     int64 // 0 means the default seed 2005
	Multi    bool
	Workers  int
	Timing   bool
}

func (o *IsolationOpts) setDefaults() {
	if o.PerStage == 0 {
		o.PerStage = 1000
	}
	if o.Seed == 0 {
		o.Seed = 2005
	}
}

// IsolationResult carries the campaign stats (partial on interrupt), the
// report, and the count of non-isolated faults (nonzero = the paper's
// claim failed; rescue-isolate exits 1 on it).
type IsolationResult struct {
	Stats  fault.Stats
	Report core.IsolationReport
	Bad    int
}

// Isolation runs the fault-isolation campaign and writes the report to w —
// the exact text rescue-isolate prints, which is what
// results/isolation_small.txt pins.
func Isolation(ctx context.Context, w io.Writer, o IsolationOpts, env Env) (IsolationResult, error) {
	o.setDefaults()
	var res IsolationResult

	start := time.Now()
	s, err := env.System(o.Small, rtl.RescueDesign)
	if err != nil {
		return res, fmt.Errorf("build: %w", err)
	}
	if !s.Audit.OK() {
		return res, fmt.Errorf("ICI audit failed: %d violations", len(s.Audit.Violations))
	}
	fmt.Fprintf(w, "built %s: %d gates, %d scan cells; ICI audit clean\n",
		s.Design.N.Name, s.Design.N.NumGates(), s.Design.N.NumFFs())

	gen := atpg.DefaultGenConfig()
	gen.Workers = o.Workers
	tp, err := env.TestProgram(ctx, s, o.Small, rtl.RescueDesign, gen)
	if err != nil {
		res.Stats = tp.Gen.Stats
		return res, err
	}
	if o.Timing {
		fmt.Fprintf(w, "ATPG: %d vectors, %.2f%% coverage (%s)\n",
			tp.Gen.Vectors, tp.Gen.Coverage*100, time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Fprintf(w, "ATPG: %d vectors, %.2f%% coverage\n", tp.Gen.Vectors, tp.Gen.Coverage*100)
	}

	rep, err := s.IsolateCampaignFlow(ctx, tp, o.PerStage, core.Stages(), o.Seed, o.Workers, env.Ck)
	res.Report = rep
	if err != nil {
		res.Stats = rep.Stats
		return res, err
	}
	res.Stats = rep.Stats
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s %9s %9s %7s %10s\n", "stage", "sampled", "isolated", "wrong", "ambiguous")
	for _, st := range core.Stages() {
		r := rep.PerStage[st]
		fmt.Fprintf(w, "%-10s %9d %9d %7d %10d\n", st, r.Sampled, r.Isolated, r.Wrong, r.Ambiguous)
	}
	total := rep.Isolated + rep.Wrong + rep.Ambiguous
	fmt.Fprintln(w)
	fmt.Fprintf(w, "TOTAL: %d faults simulated, %d isolated correctly, %d wrong, %d ambiguous\n",
		total, rep.Isolated, rep.Wrong, rep.Ambiguous)
	fmt.Fprintf(w, "(paper: 6000/6000 isolated; %d undetectable faults were resampled)\n", rep.Undetected)
	if o.Timing {
		fmt.Fprintf(w, "campaign: %d faults, %d word-sims, %d gate events, %d workers, %s\n",
			rep.Stats.Faults, rep.Stats.Words, rep.Stats.Events, rep.Stats.Workers,
			rep.Stats.Wall.Round(time.Millisecond))
	}

	if o.Multi {
		ok, trials, err := s.MultiFaultIsolationFlow(ctx, tp, 200, 3, o.Seed, o.Workers, env.Ck)
		if err != nil {
			return res, err
		}
		fmt.Fprintf(w, "multi-fault corollary: %d/%d trials — all simultaneous faults in\n", ok, trials)
		fmt.Fprintln(w, "distinct super-components isolated by one pattern set")
	}
	res.Bad = rep.Wrong + rep.Ambiguous
	return res, nil
}
