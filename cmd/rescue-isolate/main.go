// Command rescue-isolate reproduces the paper's Section 6.1 fault-
// isolation campaign: N random detectable faults per pipeline stage
// (fetch, decode, rename, issue, execute, memory) are injected into the
// Rescue netlist one at a time; each fault's failing scan bits are mapped
// through the single-lookup isolation table; the implicated super-component
// is checked against the ground-truth fault site. The paper's result: all
// 6000 faults isolate correctly.
//
// The run is resilient: SIGINT/SIGTERM finish in-flight chunks, flush the
// -checkpoint journal (if one was given), print the partial campaign
// stats, and exit 130; rerunning with -resume rehydrates the journaled
// work and converges bit-identically to an uninterrupted run. A -timeout
// deadline exits 124 the same way.
//
// Usage:
//
//	rescue-isolate [-small] [-per-stage N] [-seed N] [-multi] [-workers N]
//	               [-timing=false] [-timeout D] [-progress]
//	               [-checkpoint path [-resume]] [-chaos-cancel-after N]
package main

import (
	"flag"
	"os"

	"rescue/internal/cli"
	"rescue/internal/flows"
)

func main() {
	small := flag.Bool("small", false, "use the reduced configuration (2-way)")
	perStage := flag.Int("per-stage", 1000, "faults to sample per stage (paper: 1000)")
	seed := flag.Int64("seed", 2005, "sampling seed")
	multi := flag.Bool("multi", false, "also run the multi-fault isolation corollary")
	timing := flag.Bool("timing", true, "print wall-clock timings (disable for golden diffs)")
	ff := cli.AddFlowFlags(flag.CommandLine)
	flag.Parse()
	ff.Validate()
	ck := ff.OpenCheckpoint()

	ctx, stop := ff.Context()
	defer stop()

	res, err := flows.Isolation(ctx, os.Stdout, flows.IsolationOpts{
		Small:    *small,
		PerStage: *perStage,
		Seed:     *seed,
		Multi:    *multi,
		Workers:  ff.Workers,
		Timing:   *timing,
	}, flows.Env{Ck: ck})
	if err != nil {
		cli.ExitFlow(err, res.Stats, ck)
	}
	if res.Bad > 0 {
		os.Exit(cli.ExitRuntime)
	}
}
