package fault

import (
	"reflect"
	"testing"

	"rescue/internal/netlist"
	"rescue/internal/scan"
)

// TestOracleMatchesSim cross-checks the event-driven simulator against the
// brute-force oracle for every uncollapsed fault of the Figure-2b pipeline,
// requiring full Result equality — Detected, Fails, and FailObs as plain
// slices, relying on the documented canonical ordering.
func TestOracleMatchesSim(t *testing.T) {
	n := buildPipe()
	c, _ := scan.Insert(n, 1)
	pats := randomPatterns(c, 3, 42)
	// a short word exercises the lane-mask path
	short := c.NewPattern(7)
	short.FFVals[0] = ^uint64(0)
	pats = append(pats, short)

	sim := NewSim(c, pats)
	oracle := NewOracle(c, pats)
	u := NewUniverse(n)
	for _, f := range u.All {
		fast := sim.Run(f, 0)
		slow := oracle.Run(f, 0)
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("fault %v:\n  sim    %+v\n  oracle %+v", f, fast, slow)
		}
	}
}

// TestOracleMatchesSimCapped checks that capped detection agrees on the
// Detected flag (the only field capped callers consume).
func TestOracleMatchesSimCapped(t *testing.T) {
	n := buildPipe()
	c, _ := scan.Insert(n, 1)
	pats := randomPatterns(c, 3, 17)
	sim := NewSim(c, pats)
	oracle := NewOracle(c, pats)
	u := NewUniverse(n)
	for _, f := range u.Collapsed {
		fast := sim.Run(f, 1)
		slow := oracle.Run(f, 1)
		if fast.Detected != slow.Detected {
			t.Fatalf("fault %v: sim detected=%v oracle=%v", f, fast.Detected, slow.Detected)
		}
		if fast.Detected && len(fast.Fails) != 1 {
			t.Fatalf("fault %v: cap=1 returned %d fails", f, len(fast.Fails))
		}
	}
}

// TestFFFaultDirectObservation pins the fix for the FF-fault blind spot:
// a faulty FF whose Q net feeds another FF's D input (or a primary output)
// with no gate in between must report those observation points too, not
// just its own scan bit.
func TestFFFaultDirectObservation(t *testing.T) {
	n := netlist.New("ffdirect")
	a := n.Input("a")
	q0 := n.AddFF(a, "q0")
	n.AddFF(q0, "q1")     // q0 -> q1.D directly
	n.Output(q0, "po_q0") // q0 is also a primary output
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	c, _ := scan.Insert(n, 1)
	p := c.NewPattern(64) // q0 loaded all-zero
	sim := NewSim(c, []*scan.Pattern{p})
	f := netlist.Fault{Gate: -1, FF: 0, Pin: -1, StuckAt1: true}
	res := sim.Run(f, 0)
	// obs 0 = q0's own scan bit, obs 1 = q1 (captures q0), obs 2 = the PO
	if want := []int{0, 1, 2}; !reflect.DeepEqual(res.FailObs, want) {
		t.Fatalf("FailObs = %v, want %v", res.FailObs, want)
	}
	if !reflect.DeepEqual(res, NewOracle(c, []*scan.Pattern{p}).Run(f, 0)) {
		t.Fatalf("sim and oracle disagree on direct FF observation")
	}
}

// TestFFFaultFeedbackLoop pins the fix for the own-bit over-report: when a
// faulty FF's effect propagates through logic back to its own D net, the
// scan cell still shifts out the stuck value (capture is overridden by the
// defect), so the D-net discrepancy must NOT be reported at the FF's own
// observation point on top of the seeded stuck-vs-good diff.
func TestFFFaultFeedbackLoop(t *testing.T) {
	n := netlist.New("ffloop")
	ff, q := n.DeclFF("q")
	n.BindFFD(ff, n.Not(q)) // q toggles every cycle
	n.Output(q, "po")
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	c, _ := scan.Insert(n, 1)
	p := c.NewPattern(64)
	p.FFVals[0] = 0xffffffff00000000 // half the lanes load 1, half 0
	sim := NewSim(c, []*scan.Pattern{p})
	oracle := NewOracle(c, []*scan.Pattern{p})
	for _, sa1 := range []bool{false, true} {
		f := netlist.Fault{Gate: -1, FF: 0, Pin: -1, StuckAt1: sa1}
		fast, slow := sim.Run(f, 0), oracle.Run(f, 0)
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("sa1=%v:\n  sim    %+v\n  oracle %+v", sa1, fast, slow)
		}
		// good scan-out = ~loaded; stuck value differs on exactly half the
		// lanes at the scan cell, and the PO (sampled pre-capture) shows
		// the stuck value against the loaded one on the other half.
		if len(fast.FailObs) != 2 {
			t.Fatalf("sa1=%v: FailObs = %v, want both obs points", sa1, fast.FailObs)
		}
		if len(fast.Fails) != 64 {
			t.Fatalf("sa1=%v: %d failing bits, want 64 (32 per obs point)", sa1, len(fast.Fails))
		}
	}
}

// TestSharedDNetObservation pins the fix for the multi-observer blind
// spot: one gate output captured by two FFs must fail at both scan bits.
func TestSharedDNetObservation(t *testing.T) {
	n := netlist.New("sharedD")
	a := n.Input("a")
	b := n.Input("b")
	x := n.And(a, b)
	n.AddFF(x, "q0")
	n.AddFF(x, "q1") // same D net as q0
	n.Output(x, "po")
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	c, _ := scan.Insert(n, 1)
	p := c.NewPattern(64)
	p.PIVals[0] = ^uint64(0)
	p.PIVals[1] = ^uint64(0) // good AND output = all ones
	sim := NewSim(c, []*scan.Pattern{p})
	f := netlist.Fault{Gate: 0, FF: -1, Pin: -1, StuckAt1: false}
	res := sim.Run(f, 0)
	if want := []int{0, 1, 2}; !reflect.DeepEqual(res.FailObs, want) {
		t.Fatalf("FailObs = %v, want %v", res.FailObs, want)
	}
	if !reflect.DeepEqual(res, NewOracle(c, []*scan.Pattern{p}).Run(f, 0)) {
		t.Fatalf("sim and oracle disagree on shared D net")
	}
}
