package fault

import (
	"reflect"
	"testing"

	"rescue/internal/rtl"
	"rescue/internal/scan"
)

// rescueSim builds the RescueDesign small config with a seeded random
// pattern set — a real netlist with skewed propagation regions.
func rescueSim(t testing.TB, words int, seed int64) (*Sim, *Universe) {
	t.Helper()
	d, err := rtl.Build(rtl.Small(), rtl.RescueDesign)
	if err != nil {
		t.Fatal(err)
	}
	c, err := scan.Insert(d.N, 1)
	if err != nil {
		t.Fatal(err)
	}
	return NewSim(c, randomPatterns(c, words, seed)), NewUniverse(d.N)
}

// TestCampaignDeterminism asserts that the campaign engine produces
// bit-identical Result slices (Fails ordering included) at any worker
// count, and that they match the serial Sim path exactly — for both
// isolation mode (full FailObs) and coverage mode (fault dropping).
func TestCampaignDeterminism(t *testing.T) {
	sim, u := rescueSim(t, 4, 2026)
	faults := u.Collapsed
	if testing.Short() {
		faults = faults[:len(faults)/8]
	}

	for _, mode := range []struct {
		name string
		cfg  CampaignConfig
		// serial maxFail equivalent of the campaign mode
		maxFail int
	}{
		{"isolation", CampaignConfig{MaxFail: 0}, 0},
		{"coverage-drop", CampaignConfig{Drop: true}, 1},
	} {
		t.Run(mode.name, func(t *testing.T) {
			ref := make([]Result, len(faults))
			for i, f := range faults {
				ref[i] = sim.Run(f, mode.maxFail)
			}
			for _, workers := range []int{1, 2, 8} {
				cfg := mode.cfg
				cfg.Workers = workers
				camp := NewCampaign(sim, cfg)
				got, st := camp.Run(faults)
				if len(got) != len(ref) {
					t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(ref))
				}
				for i := range got {
					if !reflect.DeepEqual(got[i], ref[i]) {
						t.Fatalf("workers=%d fault %d (%v): campaign %+v != serial %+v",
							workers, i, faults[i], got[i], ref[i])
					}
				}
				if st.Faults != int64(len(faults)) {
					t.Fatalf("workers=%d: stats.Faults=%d, want %d", workers, st.Faults, len(faults))
				}
			}
		})
	}
}

// TestCampaignDropSkipsWords checks the ERASER-style redundancy trim: in
// drop mode a detected fault must not be simulated against later words,
// and the skipped work must be visible in Stats.Dropped.
func TestCampaignDropSkipsWords(t *testing.T) {
	sim, u := rescueSim(t, 6, 7)
	camp := NewCampaign(sim, CampaignConfig{Workers: 2, Drop: true})
	results, st := camp.Run(u.Collapsed)
	nWords := int64(len(sim.Patterns))
	if st.Words+st.Dropped != int64(len(u.Collapsed))*nWords {
		t.Fatalf("words(%d) + dropped(%d) != faults(%d) × words(%d)",
			st.Words, st.Dropped, len(u.Collapsed), nWords)
	}
	if st.Dropped == 0 {
		t.Fatal("no words dropped despite detected faults and Drop mode")
	}
	detected := int64(0)
	for _, r := range results {
		if r.Detected {
			detected++
		}
	}
	if st.Detected != detected {
		t.Fatalf("stats.Detected=%d, results say %d", st.Detected, detected)
	}
	if st.Events == 0 {
		t.Fatal("stats.Events not counted")
	}
}

// TestCampaignRunWords pins the word-restricted campaign (the ATPG
// dropWord path) against serial RunWord.
func TestCampaignRunWords(t *testing.T) {
	sim, u := rescueSim(t, 5, 99)
	camp := NewCampaign(sim, CampaignConfig{Workers: 4, MaxFail: 1})
	for w := 0; w < len(sim.Patterns); w++ {
		got, _ := camp.RunWords(u.Collapsed, w, w+1)
		for i, f := range u.Collapsed {
			want := sim.RunWord(f, w, 1)
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("word %d fault %d: campaign %+v != serial %+v", w, i, got[i], want)
			}
		}
	}
}

// TestCampaignReuse verifies per-worker scratch reuse across runs: a
// second Run over the same campaign must match a fresh serial pass.
func TestCampaignReuse(t *testing.T) {
	sim, u := rescueSim(t, 3, 5)
	camp := NewCampaign(sim, CampaignConfig{Workers: 3})
	first, _ := camp.Run(u.Collapsed)
	second, _ := camp.Run(u.Collapsed)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("campaign results changed across reuse of the same campaign")
	}
}

// TestCampaignEmptyAndTiny covers degenerate shards: no faults, and fewer
// faults than workers.
func TestCampaignEmptyAndTiny(t *testing.T) {
	sim, u := rescueSim(t, 2, 3)
	camp := NewCampaign(sim, CampaignConfig{Workers: 8})
	res, st := camp.Run(nil)
	if len(res) != 0 || st.Faults != 0 {
		t.Fatalf("empty run: %d results, %d faults", len(res), st.Faults)
	}
	res, _ = camp.Run(u.Collapsed[:3])
	for i, f := range u.Collapsed[:3] {
		want := sim.Run(f, 0)
		if !reflect.DeepEqual(res[i], want) {
			t.Fatalf("tiny run fault %d: %+v != %+v", i, res[i], want)
		}
	}
}

// TestChunkQueueCoversAll checks that the work-stealing queue hands out
// every index exactly once, own-segment-first, steals included.
func TestChunkQueueCoversAll(t *testing.T) {
	for _, tc := range []struct{ n, workers, chunk int }{
		{100, 4, 7}, {5, 8, 1}, {1, 1, 0}, {1000, 3, 0}, {64, 2, 64},
	} {
		q := newChunkQueue(tc.n, tc.workers, tc.chunk)
		seen := make([]int, tc.n)
		for w := 0; w < tc.workers; w++ {
			for {
				lo, hi, ok := q.next(w)
				if !ok {
					break
				}
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			}
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d workers=%d chunk=%d: index %d handed out %d times",
					tc.n, tc.workers, tc.chunk, i, c)
			}
		}
	}
}

// TestDictionaryWorkersDeterminism: the parallel dictionary must be
// identical at every worker count.
func TestDictionaryWorkersDeterminism(t *testing.T) {
	sim, u := rescueSim(t, 4, 11)
	ref := BuildDictionary(sim, u)
	for _, w := range []int{1, 2, 8} {
		d, st := BuildDictionaryWorkers(sim, u, w)
		if !reflect.DeepEqual(d.Syndromes, ref.Syndromes) {
			t.Fatalf("workers=%d: dictionary differs from reference", w)
		}
		if st.Dropped != 0 {
			t.Fatalf("workers=%d: dictionary build dropped %d word-sims (needs full syndromes)", w, st.Dropped)
		}
	}
}
