// Package uarch is a cycle-level out-of-order superscalar performance
// simulator in the SimpleScalar mold, with the five Rescue modifications of
// Section 5:
//
//  1. separate int/fp issue queues and active list;
//  2. +2 cycles of branch-misprediction penalty (front/back shift stages);
//  3. cycle-split inter-segment issue-queue compaction with a fixed-size
//     compaction buffer between the halves;
//  4. issue-queue entries held an extra cycle, and an extra cycle of
//     issued instructions squashed on L1 misses (the shift stage between
//     issue and register read);
//  5. the per-half independent-selection / replay-the-smaller-half issue
//     policy.
//
// It also models the degraded configurations that yield-adjusted
// throughput needs: disabled frontend groups, backend groups, and queue
// halves (Section 4's half-pipeline map-out).
package uarch

import "fmt"

// ReplayPolicy selects how Rescue resolves over-selection (an ablation
// knob; the paper replays the half that selected fewer instructions).
type ReplayPolicy int

// Replay policies.
const (
	// ReplaySmallerHalf is the paper's policy: replay every instruction
	// from the half that selected fewer.
	ReplaySmallerHalf ReplayPolicy = iota
	// ReplayAll replays both halves (strawman).
	ReplayAll
	// OracleCombine magically merges the two halves' selections up to the
	// issue limit (no replay — an upper bound that real ICI hardware
	// cannot implement because it requires intra-cycle communication).
	OracleCombine
)

func (r ReplayPolicy) String() string {
	switch r {
	case ReplaySmallerHalf:
		return "smaller-half"
	case ReplayAll:
		return "all"
	default:
		return "oracle"
	}
}

// Degraded describes which redundant components are fault-mapped out.
// Counts are in fault-equivalence groups (a frontend group is two ways; a
// backend group is two ways with their FUs and a memory port).
type Degraded struct {
	FEGroupsDisabled  int
	IntGroupsDisabled int
	FPGroupsDisabled  int
	IntIQHalvesDown   int
	FPIQHalvesDown    int
	LSQHalvesDown     int
}

// DegradedError is the typed validation failure for impossible degraded
// shapes: a field asking for more disabled groups or halves than the
// design has (every redundant resource comes in exactly two), or a
// negative count. Callers match it with errors.As to learn which knob
// was out of range.
type DegradedError struct {
	Field string // the Degraded field name
	Value int    // the rejected value
}

func (e *DegradedError) Error() string {
	return fmt.Sprintf("uarch: %s = %d out of range [0,2] (each redundant resource has exactly two members)", e.Field, e.Value)
}

// Validate rejects impossible degraded shapes. Counts of 2 are legal —
// they describe a dead-but-representable configuration (Dead reports it,
// MapOut refuses to ship it) — but 3+ halves of a two-half queue, or a
// negative count, cannot describe any die and used to be silently clamped
// or to panic deep in the simulator.
func (d Degraded) Validate() error {
	fields := []struct {
		name string
		v    int
	}{
		{"FEGroupsDisabled", d.FEGroupsDisabled},
		{"IntGroupsDisabled", d.IntGroupsDisabled},
		{"FPGroupsDisabled", d.FPGroupsDisabled},
		{"IntIQHalvesDown", d.IntIQHalvesDown},
		{"FPIQHalvesDown", d.FPIQHalvesDown},
		{"LSQHalvesDown", d.LSQHalvesDown},
	}
	for _, f := range fields {
		if f.v < 0 || f.v > 2 {
			return &DegradedError{Field: f.name, Value: f.v}
		}
	}
	return nil
}

// Dead reports whether the configuration cannot execute at all.
func (d Degraded) Dead() bool {
	return d.FEGroupsDisabled >= 2 || d.IntGroupsDisabled >= 2 ||
		d.FPGroupsDisabled >= 2 || d.IntIQHalvesDown >= 2 ||
		d.FPIQHalvesDown >= 2 || d.LSQHalvesDown >= 2
}

func (d Degraded) String() string {
	return fmt.Sprintf("fe-%d int-%d fp-%d iqi-%d iqf-%d lsq-%d",
		d.FEGroupsDisabled, d.IntGroupsDisabled, d.FPGroupsDisabled,
		d.IntIQHalvesDown, d.FPIQHalvesDown, d.LSQHalvesDown)
}

// Params configures a simulation.
type Params struct {
	Ways        int // frontend/backend ways (4)
	IssueWidth  int // per-queue issue bandwidth at full strength
	CommitWidth int

	IntIQSize int // Table 1: 36
	FPIQSize  int // Table 1: 36
	LSQSize   int // 32
	ROBSize   int // active list: 128

	// FrontendDepth is fetch-to-dispatch latency; a mispredicted branch
	// costs resolution + this refill (Table 1: 15-cycle penalty).
	FrontendDepth int

	Rescue       bool
	CompBufSlots int // Rescue inter-segment compaction buffer (4)
	ReplayPolicy ReplayPolicy

	// SquashWindow: cycles of issued instructions squashed on an L1 miss
	// (1 baseline; Rescue adds one for the issue->regread shift stage).
	SquashWindow int

	// Technology scaling (Section 5): each halving step adds 2 cycles of
	// misprediction penalty and multiplies memory latency by 1.5.
	MemLatencyScale float64
	ExtraMispred    int

	// Self-healing BTB extension (related-work integration): fraction of
	// BTB entries defective, tolerated by detect-and-avoid with the given
	// spares. Zero = pristine BTB (the paper's chipkill assumption).
	BTBFaultFrac float64
	BTBSpares    int

	Degr Degraded
}

// DefaultParams returns the Table 1 baseline machine.
func DefaultParams() Params {
	return Params{
		Ways:            4,
		IssueWidth:      4,
		CommitWidth:     4,
		IntIQSize:       36,
		FPIQSize:        36,
		LSQSize:         32,
		ROBSize:         128,
		FrontendDepth:   15,
		CompBufSlots:    4,
		SquashWindow:    1,
		MemLatencyScale: 1,
	}
}

// RescueParams returns the Rescue machine: same resources, plus the five
// Section 5 modifications.
func RescueParams() Params {
	p := DefaultParams()
	p.Rescue = true
	p.FrontendDepth += 2 // front and back shift stages on the redirect path
	p.SquashWindow = 2
	return p
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Ways < 2 || p.Ways%2 != 0 {
		return fmt.Errorf("uarch: Ways must be even >= 2")
	}
	if p.IntIQSize%2 != 0 || p.FPIQSize%2 != 0 || p.LSQSize%2 != 0 {
		return fmt.Errorf("uarch: queue sizes must be even (two halves)")
	}
	if p.Rescue && (p.CompBufSlots < 1 || p.CompBufSlots > p.IntIQSize/2) {
		return fmt.Errorf("uarch: CompBufSlots out of range")
	}
	if err := p.Degr.Validate(); err != nil {
		return err
	}
	if !p.Rescue && (p.Degr != Degraded{}) {
		return fmt.Errorf("uarch: degraded operation requires the Rescue design")
	}
	return nil
}

// feWidth returns the usable frontend width.
func (p Params) feWidth() int {
	w := p.Ways - 2*p.Degr.FEGroupsDisabled
	if w < 0 {
		w = 0
	}
	return w
}

// intWays / fpWays return usable backend ways per type.
func (p Params) intWays() int { return p.Ways - 2*p.Degr.IntGroupsDisabled }
func (p Params) fpWays() int  { return p.Ways - 2*p.Degr.FPGroupsDisabled }
