package obs

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total")
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters only go up
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if r.Counter("jobs_total") != c {
		t.Fatal("Counter must return the same instance for the same name")
	}

	g := r.Gauge("queue_depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	h := r.Histogram("latency_seconds")
	for _, v := range []float64{3, 1, 2} {
		h.Observe(v)
	}
	count, sum, min, max := h.Snapshot()
	if count != 3 || sum != 6 || min != 1 || max != 3 {
		t.Fatalf("histogram = (%d, %g, %g, %g), want (3, 6, 1, 3)", count, sum, min, max)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Inc()
	r.Gauge("b_depth").Set(4)
	r.Histogram("c_seconds").Observe(0.5)
	r.RegisterFunc("d_ratio", func() float64 { return 0.25 })

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_total counter\na_total 1\n",
		"# TYPE b_depth gauge\nb_depth 4\n",
		"c_seconds_count 1\n",
		"c_seconds_sum 0.5\n",
		"d_ratio 0.25\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: a_total before b_depth before c_seconds before d_ratio.
	if strings.Index(out, "a_total") > strings.Index(out, "b_depth") ||
		strings.Index(out, "b_depth") > strings.Index(out, "c_seconds") {
		t.Errorf("WriteText output not sorted:\n%s", out)
	}
}

func TestSanitizeName(t *testing.T) {
	if got := SanitizeName("span.atpg-random seconds"); got != "span_atpg_random_seconds" {
		t.Fatalf("SanitizeName = %q", got)
	}
}

func TestSpanNoTracerIsNoop(t *testing.T) {
	done := Span(context.Background(), "anything")
	done() // must not panic
}

func TestSpanRecordsIntoTracer(t *testing.T) {
	r := NewRegistry()
	ctx := WithTracer(context.Background(), r)
	done := Span(ctx, "atpg_random")
	time.Sleep(time.Millisecond)
	done()
	if got := r.Counter("span_atpg_random_total").Value(); got != 1 {
		t.Fatalf("span counter = %d, want 1", got)
	}
	count, sum, _, _ := r.Histogram("span_atpg_random_seconds").Snapshot()
	if count != 1 || sum <= 0 {
		t.Fatalf("span histogram = (%d, %g), want one positive sample", count, sum)
	}
}

func TestHandlerServesMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total").Add(9)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "hits_total 9") {
		t.Fatalf("metrics body missing counter:\n%s", buf[:n])
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
}
