package netlist

import "fmt"

// FunctionallyEquivalent drives a and b in lockstep with seeded random
// stimuli for the given number of 64-lane cycles and reports the first
// divergence, or nil if the two netlists are indistinguishable: same
// primary-output words and same FF next-state words every cycle, starting
// from identical random initial FF states. It requires the interfaces to
// line up index-by-index (input i of a corresponds to input i of b, FF i
// to FF i, output i to output i) — the contract ParseVerilog and the ICI
// equivalence transforms both preserve.
//
// This is random simulation, not formal equivalence checking: agreement is
// evidence, not proof. With 64 lanes × cycles random vectors it is more
// than strong enough to catch the structural mistakes a generator, parser,
// or transform can realistically make.
func FunctionallyEquivalent(a, b *Netlist, cycles int, seed uint64) error {
	if len(a.Inputs) != len(b.Inputs) {
		return fmt.Errorf("equiv: %d vs %d primary inputs", len(a.Inputs), len(b.Inputs))
	}
	if a.NumFFs() != b.NumFFs() {
		return fmt.Errorf("equiv: %d vs %d flip-flops", a.NumFFs(), b.NumFFs())
	}
	if len(a.Outputs) != len(b.Outputs) {
		return fmt.Errorf("equiv: %d vs %d primary outputs", len(a.Outputs), len(b.Outputs))
	}
	if err := a.Validate(); err != nil {
		return fmt.Errorf("equiv: netlist a: %w", err)
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("equiv: netlist b: %w", err)
	}
	sa, sb := a.NewState(), b.NewState()
	r := randRNG{s: seed ^ 0xe7037ed1a0b428db}
	for i := 0; i < a.NumFFs(); i++ {
		v := r.next()
		sa.Set(a.FFs[i].Q, v)
		sb.Set(b.FFs[i].Q, v)
	}
	for cyc := 0; cyc < cycles; cyc++ {
		for i := range a.Inputs {
			v := r.next()
			sa.Set(a.Inputs[i], v)
			sb.Set(b.Inputs[i], v)
		}
		sa.EvalComb(NoFault)
		sb.EvalComb(NoFault)
		for i := range a.Outputs {
			if va, vb := sa.Get(a.Outputs[i]), sb.Get(b.Outputs[i]); va != vb {
				return fmt.Errorf("equiv: cycle %d output %d: %016x vs %016x", cyc, i, va, vb)
			}
		}
		for i := 0; i < a.NumFFs(); i++ {
			if va, vb := sa.Get(a.FFs[i].D), sb.Get(b.FFs[i].D); va != vb {
				return fmt.Errorf("equiv: cycle %d FF %d next-state: %016x vs %016x", cyc, i, va, vb)
			}
		}
		sa.CaptureFFs(NoFault)
		sb.CaptureFFs(NoFault)
	}
	return nil
}
