package sweep

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// PointResult is one evaluated grid cell. Every numeric field derives
// deterministically from the point's content, so a result computed
// locally, resumed from a journal, or fetched from a shard worker
// serializes to identical bytes.
type PointResult struct {
	Index         int               `json:"index"`
	Digest        string            `json:"digest"`
	Preset        string            `json:"preset"`
	Overrides     map[string]string `json:"overrides,omitempty"`
	NodeNM        int               `json:"node"`
	StagnateNM    int               `json:"stagnate"`
	SelfHealShare float64           `json:"selfheal"`

	Canceled bool   `json:"canceled,omitempty"`
	Error    string `json:"error,omitempty"`

	// Test cost: the variant's scan-test program.
	Gates      int     `json:"gates"`
	ScanCells  int     `json:"scanCells"`
	Vectors    int     `json:"vectors"`
	TestCycles int     `json:"testCycles"`
	Coverage   float64 `json:"coverage"`

	// Silicon: node-scaled core area (mm²) and cores per chip.
	CoreArea float64 `json:"coreArea"`
	Cores    int     `json:"cores"`

	// Yield and throughput: empirical fleet numbers with 95% CIs, plus
	// the analytic EQ 2/3 values.
	EmpYield   float64 `json:"yield"`
	EmpYieldCI float64 `json:"yieldCI"`
	AnaYield   float64 `json:"anaYield"`
	EmpYAT     float64 `json:"yat"`
	EmpYATCI   float64 `json:"yatCI"`
	AnaYAT     float64 `json:"anaYat"`

	// Pareto marks membership in the frontier's non-dominated set.
	Pareto bool `json:"pareto,omitempty"`
}

// Frontier is a sweep's full result: every point in grid order with the
// Pareto set marked.
type Frontier struct {
	Points []PointResult
}

// markPareto recomputes the non-dominated set over the successful points:
// maximize yield and YAT, minimize core area and test cycles. A point is
// dominated when another is at least as good on all four and strictly
// better on one.
func (f *Frontier) markPareto() {
	dominates := func(a, b PointResult) bool {
		if a.EmpYield < b.EmpYield || a.EmpYAT < b.EmpYAT ||
			a.CoreArea > b.CoreArea || a.TestCycles > b.TestCycles {
			return false
		}
		return a.EmpYield > b.EmpYield || a.EmpYAT > b.EmpYAT ||
			a.CoreArea < b.CoreArea || a.TestCycles < b.TestCycles
	}
	for i := range f.Points {
		p := &f.Points[i]
		if p.Canceled || p.Error != "" {
			p.Pareto = false
			continue
		}
		p.Pareto = true
		for j := range f.Points {
			q := f.Points[j]
			if i == j || q.Canceled || q.Error != "" {
				continue
			}
			if dominates(q, *p) {
				p.Pareto = false
				break
			}
		}
	}
}

// ParetoSet returns the frontier points, in grid order.
func (f *Frontier) ParetoSet() []PointResult {
	var out []PointResult
	for _, p := range f.Points {
		if p.Pareto {
			out = append(out, p)
		}
	}
	return out
}

// WriteNDJSON emits one JSON line per point in grid order — the sweep's
// canonical machine-readable output. Byte-identical for identical specs.
func (f *Frontier) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, p := range f.Points {
		b, err := json.Marshal(p)
		if err != nil {
			return err
		}
		bw.Write(b)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ParseNDJSON reads a frontier back from its NDJSON serialization.
func ParseNDJSON(r io.Reader) (*Frontier, error) {
	var f Frontier
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var p PointResult
		if err := json.Unmarshal(line, &p); err != nil {
			return nil, fmt.Errorf("sweep: frontier line %d: %v", len(f.Points)+1, err)
		}
		f.Points = append(f.Points, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &f, nil
}

// describe renders a point's grid coordinates compactly.
func describe(p PointResult) string {
	s := p.Preset
	if len(p.Overrides) > 0 {
		keys := make([]string, 0, len(p.Overrides))
		for k := range p.Overrides {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var kv []string
		for _, k := range keys {
			kv = append(kv, k+"="+p.Overrides[k])
		}
		s += "{" + strings.Join(kv, ",") + "}"
	}
	return s
}

// WriteTable renders the human-readable frontier report.
func (f *Frontier) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "%-3s %-34s %4s %4s %5s %9s %7s %8s %9s %8s %2s\n",
		"idx", "variant", "node", "stag", "heal", "area", "cycles", "yield", "±CI", "YAT", "P")
	for _, p := range f.Points {
		switch {
		case p.Canceled:
			fmt.Fprintf(w, "%-3d %-34s %4d %4d %5.2f %s\n",
				p.Index, describe(p), p.NodeNM, p.StagnateNM, p.SelfHealShare, "canceled")
		case p.Error != "":
			fmt.Fprintf(w, "%-3d %-34s %4d %4d %5.2f error: %s\n",
				p.Index, describe(p), p.NodeNM, p.StagnateNM, p.SelfHealShare, p.Error)
		default:
			mark := ""
			if p.Pareto {
				mark = "*"
			}
			fmt.Fprintf(w, "%-3d %-34s %4d %4d %5.2f %9.3f %7d %7.2f%% %8.2f%% %8.4f %2s\n",
				p.Index, describe(p), p.NodeNM, p.StagnateNM, p.SelfHealShare,
				p.CoreArea, p.TestCycles, p.EmpYield*100, p.EmpYieldCI*100, p.EmpYAT, mark)
		}
	}
	if ps := f.ParetoSet(); len(ps) > 0 {
		var idx []string
		for _, p := range ps {
			idx = append(idx, fmt.Sprintf("%d", p.Index))
		}
		fmt.Fprintf(w, "pareto front (max yield, max YAT, min area, min test cycles): %s\n",
			strings.Join(idx, " "))
	}
}
