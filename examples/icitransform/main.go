// ICI transformations on the paper's own figures.
//
// Reconstructs the component graphs of Figures 3 and 4, shows the ICI
// violations, applies cycle splitting, logic privatization, and dependence
// rotation, and prints the resulting super-components and scan-bit
// isolation tables — the whole Section 3 on the terminal.
//
//	go run ./examples/icitransform
package main

import (
	"fmt"
	"log"
	"strings"

	"rescue/internal/ici"
)

func main() {
	figure3()
	figure4()
}

func report(g *ici.Graph, title string) {
	fmt.Printf("%s\n", title)
	if v := g.Violations(); len(v) > 0 {
		var parts []string
		for _, viol := range v {
			parts = append(parts, fmt.Sprintf("%s->%s", g.Name(viol.From), g.Name(viol.To)))
		}
		fmt.Printf("  intra-cycle edges: %s\n", strings.Join(parts, ", "))
	} else {
		fmt.Println("  intra-cycle edges: none")
	}
	var supers []string
	for _, grp := range g.SuperComponents() {
		var names []string
		for _, n := range grp {
			names = append(names, g.Name(n))
		}
		supers = append(supers, "{"+strings.Join(names, ",")+"}")
	}
	fmt.Printf("  super-components:  %s\n", strings.Join(supers, " "))
	fmt.Println("  isolation table:")
	for node, sups := range g.IsolationTable() {
		if len(sups) == 0 {
			continue
		}
		var names []string
		for _, grp := range sups {
			var ns []string
			for _, n := range grp {
				ns = append(ns, g.Name(n))
			}
			names = append(names, "{"+strings.Join(ns, ",")+"}")
		}
		status := "OK"
		if len(sups) > 1 {
			status = "NOT ISOLABLE"
		}
		fmt.Printf("    %-12s <- %-30s %s\n", g.Name(node), strings.Join(names, " + "), status)
	}
	fmt.Println()
}

// figure3 builds Figure 3a (LCY and LCZ both read LCX) and fixes it two
// ways: cycle splitting (3b) and logic privatization (3c).
func figure3() {
	build := func() (*ici.Graph, map[string]ici.NodeID) {
		g := ici.NewGraph()
		ids := map[string]ici.NodeID{}
		add := func(n string, k ici.NodeKind) ici.NodeID { id := g.Add(n, k); ids[n] = id; return id }
		in := add("in", ici.Source)
		lcw := add("LCW", ici.Logic)
		lcx := add("LCX", ici.Logic)
		lcy := add("LCY", ici.Logic)
		lcz := add("LCZ", ici.Logic)
		ly := add("Ly", ici.Latch)
		lz := add("Lz", ici.Latch)
		g.Connect(in, lcw)
		g.Connect(in, lcx)
		g.Connect(lcx, lcy)
		g.Connect(lcx, lcz)
		g.Connect(lcw, lcz)
		g.Connect(lcy, ly)
		g.Connect(lcz, lz)
		return g, ids
	}

	g, _ := build()
	report(g, "Figure 3a: shared LCX breaks ICI")

	g, _ = build()
	for _, v := range g.Violations() {
		if _, err := g.CycleSplit(v.From, v.To); err != nil {
			log.Fatal(err)
		}
	}
	report(g, "Figure 3b: cycle splitting (latency cost, perfect isolation)")

	g, ids := build()
	if _, err := g.Privatize(ids["LCX"], [][]ici.NodeID{{ids["LCY"]}, {ids["LCZ"]}}); err != nil {
		log.Fatal(err)
	}
	report(g, "Figure 3c: logic privatization (area cost, super-component isolation)")
}

// figure4 builds the single-stage loop of Figure 4a and applies dependence
// rotation then privatization (4b, 4c) — the transformation Rescue uses on
// the issue-wakeup loop where cycle splitting would break back-to-back
// issue.
func figure4() {
	g := ici.NewGraph()
	lca := g.Add("LCA", ici.Logic)
	lcb := g.Add("LCB", ici.Logic)
	lcc := g.Add("LCC", ici.Logic)
	l := g.Add("L", ici.Latch)
	g.Connect(lca, lcc)
	g.Connect(lcb, lcc)
	g.Connect(lcc, l)
	g.Connect(l, lca)
	g.Connect(l, lcb)
	report(g, "Figure 4a: single-stage loop (issue-wakeup shape)")

	if _, err := g.RotateDependence(l); err != nil {
		log.Fatal(err)
	}
	report(g, "Figure 4b: dependence rotation (latch moved, loop latency unchanged)")

	if _, err := g.Privatize(lcc, [][]ici.NodeID{{lca}, {lcb}}); err != nil {
		log.Fatal(err)
	}
	report(g, "Figure 4c: + privatization of LCC (two isolable super-components)")
}
