#!/usr/bin/env bash
# Fault-simulation speedup gate: run the Table 3 coverage sweep (18,866
# collapsed faults × 50 pattern words) through the cone-clipped engine and
# through the forced full-netlist walk (cone threshold 0 — the pre-PR
# algorithm on the rewritten SoA substrate), and enforce that the total
# speedup over the pre-PR engine stays at or above the floor.
#
# Total speedup = engine factor × clip ratio, where
#   engine factor = pre-PR serial ns / reference full-walk ns — frozen
#     below, both sides measured back-to-back on one machine, so the
#     ratio (how much the SoA/arena rewrite sped up the full walk itself)
#     transfers across machines;
#   clip ratio = full-serial ns / serial ns — re-measured in-build here,
#     so the gate tracks the clipped path against its own reference on
#     whatever machine runs it.
#
# Emits BENCH_sim.json with the trajectory (pre-PR baselines, measured
# numbers, both factors).
#
# Usage: scripts/bench-sim.sh [min total speedup]   (default: 5)
set -euo pipefail
cd "$(dirname "$0")/.."

min_speedup=${1:-5}

# Frozen baselines, measured back-to-back on 2026-08-08 (Xeon @2.10GHz):
# the pre-PR engine's serial sweep, and this PR's full-walk engine on the
# identical workload.
pre_pr_serial_ns=25914187
pre_pr_workers1_ns=29419475
pre_pr_serial_allocs=118576
ref_full_serial_ns=12891162

echo "== bench (best of 3)"
out=$(go test -run '^$' -bench 'BenchmarkFaultCampaign/(full-serial|serial|workers-1)$' -benchtime=10x -count=3 .)
echo "$out"

full=$(echo "$out" | awk '$1 ~ /full-serial/ {if (!m || $3 < m) m = $3} END {print m}')
serial=$(echo "$out" | awk '$1 ~ /Campaign\/serial/ {if (!m || $3 < m) m = $3} END {print m}')
w1=$(echo "$out" | awk '$1 ~ /workers-1/ {if (!m || $3 < m) m = $3} END {print m}')
allocs=$(echo "$out" | awk '$1 ~ /Campaign\/serial/ {for (i = 1; i < NF; i++) if ($(i+1) == "allocs/op") {print $i; exit}}')
for v in "$full" "$serial" "$w1"; do
    [ -n "$v" ] || { echo "FAIL: could not parse benchmark output" >&2; exit 1; }
done

read -r engine clip total <<<"$(awk -v pre="$pre_pr_serial_ns" -v ref="$ref_full_serial_ns" \
    -v f="$full" -v s="$serial" \
    'BEGIN { e = pre / ref; c = f / s; printf "%.3f %.3f %.3f", e, c, e * c }')"

printf '{"bench":"fault_campaign_small","faults":18866,\n "pre_pr":{"serial_ns":%d,"workers1_ns":%d,"serial_allocs":%d},\n "reference_full_serial_ns":%d,\n "measured":{"full_serial_ns":%d,"serial_ns":%d,"workers1_ns":%d,"serial_allocs":%s},\n "engine_factor":%s,"clip_ratio":%s,"total_speedup":%s,"min_speedup":%s}\n' \
    "$pre_pr_serial_ns" "$pre_pr_workers1_ns" "$pre_pr_serial_allocs" \
    "$ref_full_serial_ns" "$full" "$serial" "$w1" "${allocs:-0}" \
    "$engine" "$clip" "$total" "$min_speedup" >BENCH_sim.json
cat BENCH_sim.json

awk -v t="$total" -v m="$min_speedup" 'BEGIN { exit !(t + 0 >= m + 0) }' || {
    echo "FAIL: total speedup ${total}x < required ${min_speedup}x (engine ${engine}x × clip ${clip}x)" >&2
    exit 1
}
echo "PASS: fault sweep ${total}x faster than pre-PR engine (engine ${engine}x × clip ${clip}x >= ${min_speedup}x)"
