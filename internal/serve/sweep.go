package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"

	"rescue/internal/flows"
	"rescue/internal/sweep"
)

// jobCtxKey carries the running *Job into runners that integrate with the
// job surface beyond the plain Runner contract — the sweep runner uses it
// to emit per-point output events and to register its per-point
// cancellation control.
type jobCtxKey struct{}

func withJob(ctx context.Context, j *Job) context.Context {
	return context.WithValue(ctx, jobCtxKey{}, j)
}

func jobFromContext(ctx context.Context) *Job {
	j, _ := ctx.Value(jobCtxKey{}).(*Job)
	return j
}

// runSweep executes a design-space sweep job. Params are a sweep.Spec;
// the result is the frontier NDJSON (one line per grid point, Pareto set
// marked) — machine-consumable, byte-identical for identical specs, and
// exactly what a dispatch coordinator merges when points are fanned out.
//
// Each point's start/finish lands on the event stream as an output event,
// and DELETE /jobs/{id}/points/{digest} cancels a single point while the
// rest of the grid keeps running.
//
// When checkpointing is configured the sweep keeps its journals in a
// directory named by the job's spec digest, so a drained sweep resumed by
// an identical resubmission skips every completed point and resumes
// interrupted campaigns at chunk granularity.
func runSweep(ctx context.Context, rc RunContext, params json.RawMessage) ([]byte, error) {
	var spec sweep.Spec
	if err := decode(params, &spec); err != nil {
		return nil, err
	}
	o := sweep.Options{
		Env:     flows.Env{Store: rc.Env.Store},
		Workers: pick(spec.Workers, rc.Workers),
	}
	j := jobFromContext(ctx)
	if j != nil {
		ctl := sweep.NewControl()
		j.setPointControl(ctl)
		o.Control = ctl
		o.OnPoint = func(ev sweep.PointEvent) {
			j.append(Event{Type: "output", Msg: ev.Msg})
		}
	}
	if rc.CheckpointDir != "" && j != nil {
		dir := filepath.Join(rc.CheckpointDir, specDigest(j.Spec)+".sweep")
		if _, err := os.Stat(dir); err == nil {
			o.Resume = true
			j.append(Event{Type: "output", Msg: "resuming from sweep journal"})
		}
		o.CheckpointDir = dir
	}
	fr, err := sweep.Run(ctx, spec, o)
	if err != nil {
		return nil, err
	}
	if o.CheckpointDir != "" {
		os.Remove(o.CheckpointDir) // empty after a clean completion
	}
	var buf bytes.Buffer
	if err := fr.WriteNDJSON(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
