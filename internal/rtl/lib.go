// Package rtl generates gate-level netlists for the processor the Rescue
// paper models in verilog (Section 4 / Section 5): every pipeline stage of
// a multi-way out-of-order superscalar, in two variants — the conventional
// baseline, and Rescue, the ICI-transformed design with two-half issue
// queue and LSQ, cycle-split rename, routing shifter stages, privatized
// select/broadcast/replay logic, and a fault-map register.
//
// The generators are structural: they instantiate real logic (comparators,
// adders, priority selects, mux trees, CAM match lines) so that ATPG and
// fault simulation have realistic work to do, and they tag every gate with
// the ICI component it belongs to so the ici package can audit isolation
// and build the scan-bit lookup table.
package rtl

import (
	"fmt"

	"rescue/internal/netlist"
)

// Bus is a multi-bit signal, least-significant bit first.
type Bus []netlist.NetID

// b is a tiny builder wrapper adding bus-level operations to a netlist.
type b struct {
	n *netlist.Netlist
}

func (bb b) inputBus(name string, w int) Bus {
	out := make(Bus, w)
	for i := range out {
		out[i] = bb.n.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	return out
}

func (bb b) regBus(d Bus, name string) Bus {
	out := make(Bus, len(d))
	for i := range d {
		out[i] = bb.n.AddFF(d[i], fmt.Sprintf("%s[%d]", name, i))
	}
	return out
}

func (bb b) outputBus(v Bus, name string) {
	for i := range v {
		bb.n.Output(v[i], fmt.Sprintf("%s[%d]", name, i))
	}
}

// constBus returns a bus tied to the binary encoding of v.
func (bb b) constBus(v, w int) Bus {
	out := make(Bus, w)
	for i := 0; i < w; i++ {
		out[i] = bb.n.Const(v&(1<<uint(i)) != 0)
	}
	return out
}

// eq builds an equality comparator over two equal-width buses.
func (bb b) eq(a, c Bus) netlist.NetID {
	if len(a) != len(c) {
		panic("rtl: eq width mismatch")
	}
	bits := make([]netlist.NetID, len(a))
	for i := range a {
		bits[i] = bb.n.Xnor(a[i], c[i])
	}
	return bb.reduceAnd(bits)
}

func (bb b) reduceAnd(xs []netlist.NetID) netlist.NetID {
	return bb.reduce(xs, netlist.And)
}

func (bb b) reduceOr(xs []netlist.NetID) netlist.NetID {
	return bb.reduce(xs, netlist.Or)
}

// reduce builds a balanced tree of 2-input gates.
func (bb b) reduce(xs []netlist.NetID, k netlist.GateKind) netlist.NetID {
	switch len(xs) {
	case 0:
		panic("rtl: reduce of empty list")
	case 1:
		return xs[0]
	}
	var next []netlist.NetID
	for i := 0; i < len(xs); i += 2 {
		if i+1 < len(xs) {
			next = append(next, bb.n.AddGate(k, xs[i], xs[i+1]))
		} else {
			next = append(next, xs[i])
		}
	}
	return bb.reduce(next, k)
}

// muxBus selects b when sel=1, a when sel=0, bitwise.
func (bb b) muxBus(sel netlist.NetID, a, c Bus) Bus {
	if len(a) != len(c) {
		panic("rtl: muxBus width mismatch")
	}
	out := make(Bus, len(a))
	for i := range a {
		out[i] = bb.n.Mux(sel, a[i], c[i])
	}
	return out
}

// muxTree selects inputs[sel] using an encoded select bus (LSB-first).
// len(inputs) must be a power of two covered by len(sel) bits; missing
// entries replicate the last input.
func (bb b) muxTree(sel Bus, inputs []Bus) Bus {
	if len(inputs) == 0 {
		panic("rtl: muxTree with no inputs")
	}
	cur := make([]Bus, len(inputs))
	copy(cur, inputs)
	for level := 0; level < len(sel); level++ {
		var next []Bus
		for i := 0; i < len(cur); i += 2 {
			if i+1 < len(cur) {
				next = append(next, bb.muxBus(sel[level], cur[i], cur[i+1]))
			} else {
				next = append(next, cur[i])
			}
		}
		cur = next
		if len(cur) == 1 {
			break
		}
	}
	return cur[0]
}

// adder builds a ripple-carry adder; returns sum and carry-out.
func (bb b) adder(a, c Bus, cin netlist.NetID) (Bus, netlist.NetID) {
	if len(a) != len(c) {
		panic("rtl: adder width mismatch")
	}
	sum := make(Bus, len(a))
	carry := cin
	for i := range a {
		axc := bb.n.Xor(a[i], c[i])
		sum[i] = bb.n.Xor(axc, carry)
		carry = bb.n.Or(bb.n.And(a[i], c[i]), bb.n.And(axc, carry))
	}
	return sum, carry
}

// inc builds an incrementer (a + en).
func (bb b) inc(a Bus, en netlist.NetID) Bus {
	sum := make(Bus, len(a))
	carry := en
	for i := range a {
		sum[i] = bb.n.Xor(a[i], carry)
		carry = bb.n.And(a[i], carry)
	}
	return sum
}

// priorityGrant builds a fixed-priority arbiter: grant[i] = req[i] AND no
// earlier request. Returns the one-hot grants and the "any" signal.
func (bb b) priorityGrant(reqs []netlist.NetID) ([]netlist.NetID, netlist.NetID) {
	grants := make([]netlist.NetID, len(reqs))
	var blocked netlist.NetID = netlist.InvalidNet
	for i, r := range reqs {
		if i == 0 {
			grants[i] = bb.n.Buf(r)
			blocked = r
		} else {
			grants[i] = bb.n.And(r, bb.n.Not(blocked))
			blocked = bb.n.Or(blocked, r)
		}
	}
	return grants, blocked
}

// popcountLE builds "number of set bits <= k" as a thermometer circuit:
// returns signals atLeast[j] = (popcount >= j) for j = 1..len(xs).
func (bb b) atLeast(xs []netlist.NetID) []netlist.NetID {
	// dynamic programming: row[j] after processing i inputs = popcount >= j
	row := make([]netlist.NetID, len(xs)+1)
	zero := bb.n.Const(false)
	one := bb.n.Const(true)
	row[0] = one
	for j := 1; j <= len(xs); j++ {
		row[j] = zero
	}
	for _, x := range xs {
		next := make([]netlist.NetID, len(row))
		next[0] = one
		for j := 1; j < len(row); j++ {
			// >=j after adding x: (>=j already) OR (x AND >=j-1)
			next[j] = bb.n.Or(row[j], bb.n.And(x, row[j-1]))
		}
		row = next
	}
	return row[1:]
}

// onehotMux selects among inputs with one-hot select lines: OR of
// (sel[i] AND inputs[i]).
func (bb b) onehotMux(sels []netlist.NetID, inputs []Bus) Bus {
	if len(sels) != len(inputs) {
		panic("rtl: onehotMux arity mismatch")
	}
	w := len(inputs[0])
	out := make(Bus, w)
	for bit := 0; bit < w; bit++ {
		terms := make([]netlist.NetID, len(sels))
		for i := range sels {
			terms[i] = bb.n.And(sels[i], inputs[i][bit])
		}
		out[bit] = bb.reduceOr(terms)
	}
	return out
}

// decode2 builds a full decoder over an encoded bus: out[v] = (sel == v).
func (bb b) decode(sel Bus) []netlist.NetID {
	nOut := 1 << uint(len(sel))
	inv := make([]netlist.NetID, len(sel))
	for i := range sel {
		inv[i] = bb.n.Not(sel[i])
	}
	out := make([]netlist.NetID, nOut)
	for v := 0; v < nOut; v++ {
		terms := make([]netlist.NetID, len(sel))
		for i := range sel {
			if v&(1<<uint(i)) != 0 {
				terms[i] = sel[i]
			} else {
				terms[i] = inv[i]
			}
		}
		out[v] = bb.reduceAnd(terms)
	}
	return out
}

// andBus gates every bit of a bus with en.
func (bb b) andBus(en netlist.NetID, v Bus) Bus {
	out := make(Bus, len(v))
	for i := range v {
		out[i] = bb.n.And(en, v[i])
	}
	return out
}
