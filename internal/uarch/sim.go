package uarch

import (
	"fmt"
	"math"

	"rescue/internal/bpred"
	"rescue/internal/cache"
	"rescue/internal/isa"
	"rescue/internal/workload"
)

const never = math.MaxInt64 / 4

// robState tracks an instruction's progress.
type robState uint8

const (
	inQueue robState = iota // dispatched, waiting in an issue queue
	issued                  // selected, executing
	done                    // result produced, awaiting commit
)

type robEntry struct {
	inst  isa.Inst
	seq   int64
	state robState

	// producer links with sequence guards: a ROB slot may be recycled, so
	// a link is live only while the slot still holds the same seq
	src1Rob, src2Rob int
	src1Seq, src2Seq int64
	resultReady      int64 // cycle the result is available to consumers
	issueCycle       int64
	doneCycle        int64
	dataPend         bool // store issued before its data producer; commit re-checks

	lsqIdx  int // index in LSQ order, -1 if not a memory op
	fp      bool
	present bool
}

// halfQueue is one issue-queue half: rob indices, oldest first.
type halfQueue struct {
	entries []int
	cap     int
}

// iq models one issue queue (int or fp). Baseline: a single logical list
// (half boundary ignored except capacity). Rescue: two halves plus the
// compaction buffer between them.
type iq struct {
	old, new halfQueue
	buf      []int
	bufCap   int
	rescue   bool
	reqPrev  bool // old half had space at end of last cycle (cycle-split)
	deadHalf [2]bool
}

func (q *iq) size() int { return len(q.old.entries) + len(q.new.entries) + len(q.buf) }

func (q *iq) hasSpace() bool {
	if q.rescue {
		if q.deadHalf[1] {
			// new half dead: insert directly into the old half (the paper's
			// bypass of the new half)
			return !q.deadHalf[0] && len(q.old.entries) < q.old.cap
		}
		return len(q.new.entries) < q.new.cap
	}
	return q.size() < q.old.cap+q.new.cap
}

func (q *iq) insert(rob int) {
	if q.rescue {
		if q.deadHalf[1] {
			q.old.entries = append(q.old.entries, rob)
			return
		}
		q.new.entries = append(q.new.entries, rob)
		return
	}
	// baseline compacting queue: single age-ordered list, stored in old
	// then new for capacity bookkeeping
	if len(q.old.entries) < q.old.cap {
		q.old.entries = append(q.old.entries, rob)
	} else {
		q.new.entries = append(q.new.entries, rob)
	}
}

// Stats accumulates simulation results.
type Stats struct {
	Cycles       int64
	Committed    int64
	Fetched      int64
	Mispredicts  int64
	Replays      int64 // Rescue over-selection replays (instructions)
	ReplayEvents int64
	MissSquashes int64 // instructions squashed by L1-miss shadow
	L1DMisses    int64
	L2Misses     int64
	BranchCount  int64
	BTBRedirects int64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// Sim is one simulation instance.
type Sim struct {
	P     Params
	occ   Occupancy
	pred  *bpred.Predictor
	mem   *cache.Hierarchy
	gen   Source
	stats Stats

	rob                        []robEntry
	robHead, robTail, robCount int
	seq                        int64

	intQ, fpQ *iq

	// last in-flight writer of each architectural register (ROB index) or
	// -1; cleared when the instruction commits.
	producer [isa.NumRegs]int

	// frontend delay line: fetched instructions waiting to dispatch
	fline []flineEntry

	// LSQ: rob indices of in-flight memory ops, oldest first
	lsq    []int
	lsqCap int

	fetchPC        uint64
	fetchStallTill int64
	// mispredicted-branch redirect state: fetch halts from the moment a
	// mispredicted branch is fetched (no wrong-path modeling, the standard
	// trace-driven approximation) until it resolves in execute.
	mispredInFlight bool
	waitBranch      int // ROB index of the unresolved mispredicted branch, -1
	now             int64

	// issue log for L1-miss shadow squashes: issuedAt[cycle % W]
	issueLog  [][]int
	replayAlt int // alternation for the ReplayAll ablation

	// pending L1-miss discoveries: loads whose consumers were woken
	// speculatively at hit latency; at fix time the shadow is squashed and
	// the true latency installed
	missFix []missEvent
}

type missEvent struct {
	rob       int
	seq       int64
	fixCycle  int64
	trueReady int64
}

type flineEntry struct {
	inst    isa.Inst
	readyAt int64
	mispred bool
}

// Source produces the dynamic instruction stream a simulation consumes.
// workload.Gen implements it; trace.Reader replays recorded streams.
type Source interface {
	Next() isa.Inst
}

// New builds a simulator for one benchmark profile.
func New(p Params, prof workload.Profile) (*Sim, error) {
	return NewFromSource(p, workload.New(prof))
}

// NewFromSource builds a simulator over an arbitrary instruction source.
func NewFromSource(p Params, src Source) (*Sim, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Degr.Dead() {
		return nil, fmt.Errorf("uarch: configuration is dead: %v", p.Degr)
	}
	hc := cache.DefaultHierarchy()
	hc.MemLatency = int(float64(hc.MemLatency) * p.MemLatencyScale)
	s := &Sim{
		P:          p,
		pred:       bpred.New(bpred.Default()),
		mem:        cache.NewHierarchy(hc),
		gen:        src,
		rob:        make([]robEntry, p.ROBSize),
		lsqCap:     p.LSQSize - p.LSQSize/2*p.Degr.LSQHalvesDown,
		fetchPC:    0x1000,
		waitBranch: -1,
	}
	if p.BTBFaultFrac > 0 {
		if err := s.pred.EnableSelfHeal(p.BTBFaultFrac, p.BTBSpares, 1); err != nil {
			return nil, err
		}
	}
	mkq := func(size, halvesDown int) *iq {
		q := &iq{rescue: p.Rescue, bufCap: p.CompBufSlots}
		half := size / 2
		if p.Rescue {
			q.old.cap = half
			q.new.cap = half - p.CompBufSlots
			if halvesDown > 0 {
				// one half disabled: paper allows either half to die; we
				// model the new half as the dead one (old compacts from
				// rename directly). Capacity = one half.
				q.deadHalf[1] = true
			}
		} else {
			// baseline: one age-ordered compacting list
			q.old.cap = size
			q.new.cap = 0
		}
		return q
	}
	s.intQ = mkq(p.IntIQSize, p.Degr.IntIQHalvesDown)
	s.fpQ = mkq(p.FPIQSize, p.Degr.FPIQHalvesDown)
	for i := range s.producer {
		s.producer[i] = -1
	}
	w := p.SquashWindow + 2
	s.issueLog = make([][]int, w)
	for i := range s.issueLog {
		s.issueLog[i] = []int{}
	}
	return s, nil
}

// Run simulates until `commit` instructions have committed (after `warmup`
// committed instructions of stats-free warmup) and returns the statistics.
func (s *Sim) Run(warmup, commit int64) Stats {
	target := warmup
	warm := true
	for {
		s.cycle()
		if warm && s.stats.Committed >= target {
			// reset stats, keep microarchitectural state
			c := s.stats.Committed
			s.stats = Stats{}
			_ = c
			warm = false
			target = commit
		}
		if !warm && s.stats.Committed >= target {
			return s.stats
		}
		if s.now > never/2 {
			panic("uarch: simulation wedged")
		}
	}
}

// cycle advances one clock: commit, complete, issue, queue maintenance,
// dispatch, fetch (reverse pipeline order so each stage sees last-cycle
// state of its upstream).
func (s *Sim) cycle() {
	s.now++
	s.stats.Cycles++
	s.occ.sample(s.intQ.size(), s.fpQ.size(), len(s.lsq), s.robCount)
	s.commit()
	s.complete()
	s.issue()
	s.queueMaint()
	s.dispatch()
	s.fetch()
}

// ---- commit ----

func (s *Sim) commit() {
	for n := 0; n < s.P.CommitWidth; n++ {
		if s.robCount == 0 {
			return
		}
		e := &s.rob[s.robHead]
		if e.state != done || e.doneCycle > s.now {
			return
		}
		if e.dataPend && !s.srcReady(e.src2Rob, e.src2Seq) {
			return // store data not yet produced
		}
		// release LSQ slot
		if e.inst.Class.IsMem() {
			if len(s.lsq) > 0 && s.lsq[0] == s.robHead {
				s.lsq = s.lsq[1:]
			} else {
				// remove wherever it is (squash reordering)
				for i, r := range s.lsq {
					if r == s.robHead {
						s.lsq = append(s.lsq[:i], s.lsq[i+1:]...)
						break
					}
				}
			}
		}
		if d := e.inst.Dest; d != isa.RegNone && s.producer[d] == s.robHead {
			s.producer[d] = -1
		}
		e.present = false
		s.robHead = (s.robHead + 1) % len(s.rob)
		s.robCount--
		s.stats.Committed++
	}
}

// ---- complete (writeback) ----

func (s *Sim) complete() {
	// resolution of the stalled mispredicted branch
	if s.waitBranch >= 0 {
		e := &s.rob[s.waitBranch]
		if e.present && e.state != inQueue && e.doneCycle <= s.now {
			// redirect: fetch resumes (refill then costs FrontendDepth)
			s.fetchStallTill = s.now
			s.waitBranch = -1
			s.mispredInFlight = false
		}
	}
	// mark issued instructions whose execution finished
	// (scan ROB: sizes are small enough that this beats event queues for
	// clarity; the hot loop is bounded by ROBSize)
	idx := s.robHead
	for n := 0; n < s.robCount; n++ {
		e := &s.rob[idx]
		if e.present && e.state == issued && e.doneCycle <= s.now {
			e.state = done
		}
		idx = (idx + 1) % len(s.rob)
	}
}

// ---- issue ----

// fuBudget tracks per-class functional-unit slots for one cycle.
type fuBudget struct {
	alu, muldiv, mem, fpadd, fpmul int
}

func (s *Sim) fullBudget() fuBudget {
	intGroups := s.P.intWays() / 2
	fpGroups := s.P.fpWays() / 2
	return fuBudget{
		alu:    s.P.intWays(),
		muldiv: intGroups,
		mem:    intGroups, // one memory port per int backend group
		fpadd:  fpGroups,
		fpmul:  fpGroups,
	}
}

func (b *fuBudget) take(c isa.Class) bool {
	switch c {
	case isa.IntALU, isa.Branch, isa.NOP:
		if b.alu > 0 {
			b.alu--
			return true
		}
	case isa.IntMul, isa.IntDiv:
		if b.muldiv > 0 {
			b.muldiv--
			return true
		}
	case isa.Load, isa.Store:
		if b.mem > 0 {
			b.mem--
			return true
		}
	case isa.FPAdd:
		if b.fpadd > 0 {
			b.fpadd--
			return true
		}
	case isa.FPMul, isa.FPDiv:
		if b.fpmul > 0 {
			b.fpmul--
			return true
		}
	}
	return false
}

// srcReady reports whether a guarded producer link has produced its value.
func (s *Sim) srcReady(p int, seq int64) bool {
	if p < 0 {
		return true
	}
	pe := &s.rob[p]
	if !pe.present || pe.seq != seq {
		return true // producer committed: value lives in the register file
	}
	return pe.resultReady <= s.now
}

// ready reports whether entry rob may be selected this cycle. Stores issue
// on address readiness alone (src1); their data (src2) is only needed by
// commit time, as in a real split store pipeline.
func (s *Sim) ready(rob int) bool {
	e := &s.rob[rob]
	if !s.srcReady(e.src1Rob, e.src1Seq) {
		return false
	}
	if e.inst.Class != isa.Store && !s.srcReady(e.src2Rob, e.src2Seq) {
		return false
	}
	if e.inst.Class == isa.Load {
		return s.loadMayIssue(rob)
	}
	return true
}

// loadMayIssue enforces memory disambiguation: every older store must have
// its address computed; a matching older store forwards.
func (s *Sim) loadMayIssue(rob int) bool {
	e := &s.rob[rob]
	for _, r := range s.lsq {
		if r == rob {
			break
		}
		se := &s.rob[r]
		if !se.present || se.inst.Class != isa.Store {
			continue
		}
		if se.seq >= e.seq {
			continue
		}
		if se.state == inQueue {
			return false // address unknown
		}
	}
	return true
}

// loadForwards reports whether an older store to the same address is still
// in flight (store-to-load forwarding, no cache access).
func (s *Sim) loadForwards(rob int) bool {
	e := &s.rob[rob]
	for _, r := range s.lsq {
		if r == rob {
			break
		}
		se := &s.rob[r]
		if se.present && se.inst.Class == isa.Store && se.seq < e.seq &&
			se.inst.Addr/8 == e.inst.Addr/8 {
			return true
		}
	}
	return false
}

// selectHalf picks ready instructions from one half, oldest first, up to
// width and the FU budget. Returns the selected rob indices.
func (s *Sim) selectHalf(h *halfQueue, width int, budget *fuBudget) []int {
	var sel []int
	for _, rob := range h.entries {
		if len(sel) >= width {
			break
		}
		e := &s.rob[rob]
		if e.state != inQueue || !s.ready(rob) {
			continue
		}
		if !budget.take(e.inst.Class) {
			continue
		}
		sel = append(sel, rob)
	}
	return sel
}

func (s *Sim) issue() {
	// rotate the issue log: clear this cycle's slot (stale from len cycles
	// ago) before issueOne appends to it
	s.issueLog[int(s.now)%len(s.issueLog)] = s.issueLog[int(s.now)%len(s.issueLog)][:0]
	// process L1-miss discoveries due this cycle, before selection
	if len(s.missFix) > 0 {
		kept := s.missFix[:0]
		for _, ev := range s.missFix {
			e := &s.rob[ev.rob]
			if !e.present || e.seq != ev.seq {
				continue // load squashed/committed meanwhile
			}
			if ev.fixCycle > s.now {
				kept = append(kept, ev)
				continue
			}
			e.resultReady = ev.trueReady
			e.doneCycle = ev.trueReady
			s.squashShadow(ev.rob)
		}
		s.missFix = kept
	}
	s.issueQueue(s.intQ, s.P.intWays())
	s.issueQueue(s.fpQ, s.P.fpWays())
}

func (s *Sim) issueQueue(q *iq, ways int) {
	if ways <= 0 {
		return
	}
	width := s.P.IssueWidth
	if ways < width {
		width = ways
	}
	var toIssue []int
	if !s.P.Rescue {
		// baseline: global age-ordered selection across the whole queue
		budget := s.fullBudget()
		toIssue = s.selectHalf(&q.old, width, &budget)
	} else {
		// Rescue: each half selects independently under full constraints
		b0, b1 := s.fullBudget(), s.fullBudget()
		var sel0, sel1 []int
		if !q.deadHalf[0] {
			sel0 = s.selectHalf(&q.old, width, &b0)
		}
		if !q.deadHalf[1] {
			sel1 = s.selectHalf(&q.new, width, &b1)
		}
		over := len(sel0)+len(sel1) > width
		if !over {
			// combined FU check: re-run a shared budget over the union in
			// age order; overflow there also triggers replay
			budget := s.fullBudget()
			for _, rob := range append(append([]int{}, sel0...), sel1...) {
				if !budget.take(s.rob[rob].inst.Class) {
					over = true
					break
				}
			}
		}
		switch {
		case !over:
			toIssue = append(sel0, sel1...)
		case s.P.ReplayPolicy == OracleCombine:
			budget := s.fullBudget()
			merged := mergeByAge(s, sel0, sel1)
			for _, rob := range merged {
				if len(toIssue) >= width {
					break
				}
				if budget.take(s.rob[rob].inst.Class) {
					toIssue = append(toIssue, rob)
				}
			}
			s.stats.ReplayEvents++
		case s.P.ReplayPolicy == ReplayAll:
			s.stats.ReplayEvents++
			s.stats.Replays += int64(len(sel0) + len(sel1))
			// livelock breaker: next cycle only one half selects; model by
			// issuing nothing now and alternating a forced single half
			if s.replayAlt%2 == 0 {
				toIssue = sel0
				s.stats.Replays -= int64(len(sel0))
			} else {
				toIssue = sel1
				s.stats.Replays -= int64(len(sel1))
			}
			s.replayAlt++
		default: // ReplaySmallerHalf (the paper's policy)
			s.stats.ReplayEvents++
			if len(sel0) >= len(sel1) {
				toIssue = sel0
				s.stats.Replays += int64(len(sel1))
			} else {
				toIssue = sel1
				s.stats.Replays += int64(len(sel0))
			}
		}
	}
	for _, rob := range toIssue {
		s.issueOne(rob)
	}
}

func mergeByAge(s *Sim, a, b []int) []int {
	out := append(append([]int{}, a...), b...)
	// insertion sort by seq (tiny slices)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && s.rob[out[j]].seq < s.rob[out[j-1]].seq; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (s *Sim) issueOne(rob int) {
	e := &s.rob[rob]
	e.state = issued
	e.issueCycle = s.now
	lat := e.inst.Class.Latency()
	missDone := int64(-1)
	switch e.inst.Class {
	case isa.Load:
		if s.loadForwards(rob) {
			lat += 1 // store-to-load forward
			e.resultReady = s.now + int64(lat)
		} else {
			l, l1hit := s.mem.LoadLatency(e.inst.Addr)
			specReady := s.now + int64(lat+s.mem.L1D.Latency())
			if l1hit {
				e.resultReady = specReady
			} else {
				// load-hit speculation: consumers wake at hit timing; the
				// miss is discovered after the squash window, dependents
				// issued in the shadow are squashed, and the true latency
				// installed (Section 5 item 4: Rescue's extra shift stage
				// squashes one extra cycle)
				s.stats.L1DMisses++
				e.resultReady = specReady
				missDone = s.now + int64(lat+l)
				s.missFix = append(s.missFix, missEvent{
					rob:       rob,
					seq:       e.seq,
					fixCycle:  specReady + int64(s.P.SquashWindow),
					trueReady: missDone,
				})
			}
		}
	case isa.Store:
		// address generation; data only needed at commit — the store's
		// doneCycle stretches to cover the data producer below
		e.resultReady = s.now + int64(lat)
		if !s.srcReady(e.src2Rob, e.src2Seq) {
			pe := &s.rob[e.src2Rob]
			if pe.resultReady < never && pe.resultReady > e.resultReady {
				e.resultReady = pe.resultReady
			} else if pe.resultReady >= never {
				// data producer not even issued: retire the store's done
				// check to commit time via a conservative re-check there
				e.resultReady = s.now + int64(lat)
				e.dataPend = true
			}
		}
	case isa.Branch:
		e.resultReady = s.now + int64(lat)
	default:
		e.resultReady = s.now + int64(lat)
	}
	e.doneCycle = e.resultReady
	if missDone >= 0 {
		e.doneCycle = missDone // a missing load retires at its true latency
	}
	s.issueLog[int(s.now)%len(s.issueLog)] = append(s.issueLog[int(s.now)%len(s.issueLog)], rob)
}

// squashShadow implements the L1-miss shadow: instructions issued in the
// last SquashWindow cycles that (transitively) consumed the missing load's
// speculatively-broadcast result return to their queues (the Rescue design
// holds entries an extra cycle and squashes an extra cycle — Section 5
// item 4).
func (s *Sim) squashShadow(loadRob int) {
	squashed := map[int]bool{loadRob: true}
	depends := func(e *robEntry) bool {
		if e.src1Rob >= 0 && squashed[e.src1Rob] && s.rob[e.src1Rob].present && s.rob[e.src1Rob].seq == e.src1Seq {
			return true
		}
		if e.src2Rob >= 0 && squashed[e.src2Rob] && s.rob[e.src2Rob].present && s.rob[e.src2Rob].seq == e.src2Seq {
			return true
		}
		return false
	}
	for back := s.P.SquashWindow; back >= 0; back-- {
		c := s.now - int64(back)
		if c < 0 {
			continue
		}
		lst := s.issueLog[int(c)%len(s.issueLog)]
		for _, rob := range lst {
			e := &s.rob[rob]
			if !e.present || e.state != issued || e.issueCycle != c || rob == loadRob {
				continue
			}
			if e.inst.Class.IsMem() || e.inst.Class == isa.Branch {
				continue // memory ops and branches are not replayed
			}
			if !depends(e) {
				continue
			}
			squashed[rob] = true
			e.state = inQueue
			e.resultReady = never
			s.stats.MissSquashes++
		}
	}
}

// ---- queue maintenance (Rescue segmented compaction) ----

func (s *Sim) queueMaint() {
	s.cleanQueue(s.intQ)
	s.cleanQueue(s.fpQ)
	if s.P.Rescue {
		s.compact(s.intQ)
		s.compact(s.fpQ)
	}
}

// cleanQueue removes issued entries whose hold window has elapsed.
func (s *Sim) cleanQueue(q *iq) {
	hold := int64(s.P.SquashWindow)
	rm := func(h *halfQueue) {
		out := h.entries[:0]
		for _, rob := range h.entries {
			e := &s.rob[rob]
			if e.present && e.state != inQueue && s.now-e.issueCycle >= hold {
				continue // entry leaves the queue
			}
			if !e.present {
				continue
			}
			out = append(out, rob)
		}
		h.entries = out
	}
	rm(&q.old)
	rm(&q.new)
	outb := q.buf[:0]
	for _, rob := range q.buf {
		if s.rob[rob].present {
			outb = append(outb, rob)
		}
	}
	q.buf = outb
}

// compact performs the cycle-split inter-segment movement: buffer contents
// drop into the old half; then, if the old half had space last cycle (the
// latched request), the new half's oldest entries move into the buffer.
func (s *Sim) compact(q *iq) {
	if q.deadHalf[1] || q.deadHalf[0] {
		return // single-half operation: no inter-segment traffic
	}
	// buffer -> old
	for len(q.buf) > 0 && len(q.old.entries) < q.old.cap {
		q.old.entries = append(q.old.entries, q.buf[0])
		q.buf = q.buf[1:]
	}
	// new -> buffer (only if old requested last cycle; the request is a
	// latched, cycle-old view — the ICI cycle split)
	if q.reqPrev {
		for len(q.buf) < q.bufCap && len(q.new.entries) > 0 {
			// only move entries that are still waiting (issued ones must
			// stay put for their hold window)
			rob := q.new.entries[0]
			if s.rob[rob].state != inQueue {
				break
			}
			q.buf = append(q.buf, rob)
			q.new.entries = q.new.entries[1:]
		}
	}
	q.reqPrev = len(q.old.entries) < q.old.cap
}

// ---- dispatch ----

func (s *Sim) dispatch() {
	width := s.P.feWidth()
	for n := 0; n < width; n++ {
		if len(s.fline) == 0 {
			return
		}
		f := s.fline[0]
		if f.readyAt > s.now {
			return
		}
		if s.robCount >= len(s.rob) {
			s.occ.DispatchStallROB++
			return
		}
		inst := f.inst
		fp := inst.Class.IsFP()
		var q *iq
		switch {
		case inst.Class.IsMem():
			q = s.intQ // memory ops issue from the int queue (AGU)
			if len(s.lsq) >= s.lsqCap {
				s.occ.DispatchStallLSQ++
				return
			}
		case fp:
			q = s.fpQ
		default:
			q = s.intQ
		}
		if !q.hasSpace() {
			s.occ.DispatchStallIQ++
			return
		}
		// allocate ROB
		rob := s.robTail
		s.robTail = (s.robTail + 1) % len(s.rob)
		s.robCount++
		s.seq++
		e := &s.rob[rob]
		*e = robEntry{inst: inst, seq: s.seq, state: inQueue,
			resultReady: never, lsqIdx: -1, fp: fp, present: true,
			src1Rob: -1, src2Rob: -1}
		if inst.Src1 != isa.RegNone {
			if p := s.producer[inst.Src1]; p >= 0 && s.rob[p].present {
				e.src1Rob, e.src1Seq = p, s.rob[p].seq
			}
		}
		if inst.Src2 != isa.RegNone {
			if p := s.producer[inst.Src2]; p >= 0 && s.rob[p].present {
				e.src2Rob, e.src2Seq = p, s.rob[p].seq
			}
		}
		if inst.Dest != isa.RegNone {
			s.producer[inst.Dest] = rob
		}
		if inst.Class.IsMem() {
			s.lsq = append(s.lsq, rob)
			e.lsqIdx = len(s.lsq) - 1
		}
		if f.mispred {
			s.waitBranch = rob
		}
		q.insert(rob)
		s.fline = s.fline[1:]
	}
}

// ---- fetch ----

func (s *Sim) fetch() {
	if s.mispredInFlight || s.now < s.fetchStallTill {
		return
	}
	if len(s.fline) > s.P.FrontendDepth*s.P.Ways {
		return // frontend back-pressure
	}
	width := s.P.feWidth()
	// i-cache access for this fetch group
	ilat := s.mem.FetchLatency(s.fetchPC)
	extra := int64(0)
	if ilat > 2 {
		// fetch stalls for the miss duration
		s.fetchStallTill = s.now + int64(ilat)
		extra = int64(ilat)
	}
	for n := 0; n < width; n++ {
		inst := s.gen.Next()
		inst.PC = s.fetchPC
		s.stats.Fetched++
		fe := flineEntry{inst: inst, readyAt: s.now + int64(s.P.FrontendDepth) + extra}
		btbRedirect := false
		if inst.Class == isa.Branch {
			s.stats.BranchCount++
			predTaken := s.pred.PredictDirection(inst.PC)
			tgt, btbHit := s.pred.PredictTarget(inst.PC)
			// train at fetch: updates are in program order (no wrong path
			// is modeled), keeping the global history exact and predictor
			// accuracy independent of pipeline depth — the standard
			// trace-driven approximation
			s.pred.Update(inst.PC, inst.Taken, inst.Target)
			if predTaken != inst.Taken {
				// direction mispredict: full penalty, resolved at execute
				fe.mispred = true
				s.stats.Mispredicts++
			} else if inst.Taken && (!btbHit || tgt != inst.Target) {
				// correct direction, wrong/missing target: the target is
				// recomputed in decode — a short frontend redirect bubble
				btbRedirect = true
				s.stats.BTBRedirects++
			}
		}
		s.fline = append(s.fline, fe)
		s.fetchPC = inst.NextPC()
		if fe.mispred {
			s.mispredInFlight = true // fetch halts until resolution
			return
		}
		if btbRedirect {
			s.fetchStallTill = s.now + 3
			return
		}
		if inst.Class == isa.Branch && inst.Taken {
			return // fetch stops at a taken branch
		}
	}
}
