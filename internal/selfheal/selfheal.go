// Package selfheal implements self-healing array structures in the style
// of Bower et al. (DSN 2004), which the Rescue paper's related-work section
// proposes as a complement: RAM-like microarchitectural arrays (BTB, active
// list, predictor tables) that detect and avoid defective entries at run
// time instead of killing the core. Rescue leaves these structures in its
// chipkill bucket; combining the two shrinks chipkill and raises
// yield-adjusted throughput further (see BenchmarkAblationSelfHeal).
//
// The model is deliberately simple and matches the cited mechanism: each
// entry carries a defect flag (set by a background check-on-write/read
// mechanism); accesses to defective entries behave as misses/invalid and
// allocation skips them, so a faulty array degrades in capacity rather
// than correctness.
package selfheal

import (
	"fmt"
	"math/rand"
)

// Array is a self-healing indexed structure: a fault map over entries plus
// optional spare entries that transparently replace the first faulty ones.
type Array struct {
	n      int
	faulty []bool
	spares int
	remap  map[int]int // faulty index -> spare index (0..spares-1)
	nextSp int

	// Stats
	Accesses, Avoided, Remapped int64
}

// New creates an array of n entries with the given number of spares.
func New(n, spares int) (*Array, error) {
	if n <= 0 {
		return nil, fmt.Errorf("selfheal: need at least one entry")
	}
	if spares < 0 {
		return nil, fmt.Errorf("selfheal: negative spares")
	}
	return &Array{n: n, faulty: make([]bool, n), spares: spares, remap: map[int]int{}}, nil
}

// Size returns the nominal entry count.
func (a *Array) Size() int { return a.n }

// MarkFaulty records a defective entry (as the run-time checker would).
// If a spare is available it is assigned; otherwise the entry is avoided.
func (a *Array) MarkFaulty(i int) error {
	if i < 0 || i >= a.n {
		return fmt.Errorf("selfheal: index %d out of range", i)
	}
	if a.faulty[i] {
		return nil
	}
	a.faulty[i] = true
	if a.nextSp < a.spares {
		a.remap[i] = a.nextSp
		a.nextSp++
	}
	return nil
}

// InjectRandom marks a fraction of entries faulty, deterministically.
func (a *Array) InjectRandom(frac float64, seed int64) {
	r := rand.New(rand.NewSource(seed))
	for i := 0; i < a.n; i++ {
		if r.Float64() < frac {
			_ = a.MarkFaulty(i)
		}
	}
}

// Usable reports whether entry i can hold data: fault-free, or remapped to
// a spare. Callers treat unusable entries as invalid/miss and skip them on
// allocation — the detect-and-avoid discipline.
func (a *Array) Usable(i int) bool {
	a.Accesses++
	if !a.faulty[i] {
		return true
	}
	if _, ok := a.remap[i]; ok {
		a.Remapped++
		return true
	}
	a.Avoided++
	return false
}

// EffectiveCapacity returns the number of usable entries.
func (a *Array) EffectiveCapacity() int {
	c := 0
	for i := 0; i < a.n; i++ {
		if !a.faulty[i] {
			c++
			continue
		}
		if _, ok := a.remap[i]; ok {
			c++
		}
	}
	return c
}

// FaultyCount returns the number of marked entries.
func (a *Array) FaultyCount() int {
	c := 0
	for _, f := range a.faulty {
		if f {
			c++
		}
	}
	return c
}

// Alive reports whether the array retains any usable capacity at all.
func (a *Array) Alive() bool { return a.EffectiveCapacity() > 0 }
