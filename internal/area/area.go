// Package area implements the paper's area model (Section 5, Table 2): the
// relative silicon areas of the fault-equivalence groups, the chipkill
// accounting (scan cells, branch prediction, TLBs, fetch-PC logic, routing
// control), the Rescue overheads (table copies, shift stages, +5% per
// redundant component), and the technology/core-growth scaling used by the
// Figure 9 yield analysis.
package area

import "math"

// Group names the fault-equivalence groups of one core. Redundant groups
// come in pairs (the paper's halves); Chipkill is everything whose single
// fault kills the core.
type Group int

// Fault-equivalence groups.
const (
	Frontend Group = iota // one of two frontend groups (2 ways each)
	IntIQ                 // one of two int issue-queue halves
	FPIQ                  // one of two fp issue-queue halves
	LSQ                   // one of two LSQ halves
	IntBE                 // one of two int backend groups
	FPBE                  // one of two fp backend groups
	Chipkill
	NumGroups
)

var groupNames = [...]string{"frontend", "int-iq", "fp-iq", "lsq", "int-backend", "fp-backend", "chipkill"}

func (g Group) String() string { return groupNames[g] }

// Model holds per-core areas in mm² at the reference (90nm) node.
type Model struct {
	// PairArea[g] is the combined area of BOTH members of a redundant pair
	// (halved for a single group); Chipkill uses the full value.
	PairArea [NumGroups]float64
	Total    float64
}

// Baseline raw component areas (mm² at 90nm, pre-scan), estimated from the
// HotSpot Alpha-derived floorplan the paper uses, scaled so the baseline
// core with scan lands at Table 2's ~96mm² (the core fills most of the
// 140mm² chip at 90nm; the remainder is the repair-covered L2). Figure 9
// depends on the ratios and on the total relative to the 140mm²
// calibration area.
const (
	rawFrontend = 12.55 // decode + rename logic + map tables + free list
	rawIntIQ    = 3.66
	rawFPIQ     = 2.62
	rawLSQ      = 7.59
	rawIntBE    = 16.22 // 2 groups: ALUs, mul/div, mem ports, int RF copies
	rawFPBE     = 22.50
	rawChipkill = 30.87 // bpred, BTB, TLBs, fetch PC, control/routing
	// fraction of the rename-table area within the frontend, and of the fp
	// register file within the fp backend (the structures that get
	// two-copies-with-half-ports treatment, +50% total area)
	tableFracOfFE = 0.35
	fpRFFracOfBE  = 0.30
	// scan-cell chipkill fractions measured on the verilog model (Section
	// 5): 25% of queue area, 12% of everything else
	scanFracQueue = 0.25
	scanFracLogic = 0.12
	// shift-stage area overheads: +6% frontend, +2% per backend
	shiftFE = 0.06
	shiftBE = 0.02
	// +5% on every redundant component for transformation overheads
	redundantOverhead = 0.05
)

// BaselineWithScan returns the baseline core (conventional superscalar,
// scan inserted, no Rescue transformations). The whole core is one
// fault-equivalence group — any fault kills it — so only Total matters for
// the yield model; the breakdown is kept for Table 2.
func BaselineWithScan() Model {
	var m Model
	m.PairArea[Frontend] = rawFrontend
	m.PairArea[IntIQ] = rawIntIQ
	m.PairArea[FPIQ] = rawFPIQ
	m.PairArea[LSQ] = rawLSQ
	m.PairArea[IntBE] = rawIntBE
	m.PairArea[FPBE] = rawFPBE
	m.PairArea[Chipkill] = rawChipkill
	for g := Group(0); g < NumGroups; g++ {
		m.Total += m.PairArea[g]
	}
	// scan cells add area but are part of each block (all chipkill anyway)
	m.Total *= 1 + scanFracLogic*0.35 // modest whole-core scan overhead
	return m
}

// Rescue returns the Rescue core model: transformation overheads applied,
// scan-cell area charged to chipkill.
func Rescue() Model {
	m, _ := rescueModel()
	return m
}

// RescueScanFrac returns the fraction of the Rescue chipkill bucket that
// is scan cells — the area moved out of the redundant blocks by the
// measured scan fractions over the final chipkill area. The fab engine
// uses it to split chipkill-bucket defects into scan-cell hits (caught by
// the chain flush test) and chipkill-logic hits (isolated by patterns).
func RescueScanFrac() float64 {
	m, scanArea := rescueModel()
	return scanArea / m.PairArea[Chipkill]
}

// rescueModel builds the Rescue area model and reports the scan-cell area
// folded into the chipkill bucket.
func rescueModel() (Model, float64) {
	var m Model
	fe := rawFrontend * (1 + shiftFE + 0.5*tableFracOfFE) // shifters + table copies
	iqi := rawIntIQ
	iqf := rawFPIQ
	lsq := rawLSQ
	ibe := rawIntBE * (1 + shiftBE)
	fbe := rawFPBE * (1 + shiftBE + 0.5*fpRFFracOfBE)
	ck := rawChipkill

	// +5% overhead on all redundant components
	fe *= 1 + redundantOverhead
	iqi *= 1 + redundantOverhead
	iqf *= 1 + redundantOverhead
	lsq *= 1 + redundantOverhead
	ibe *= 1 + redundantOverhead
	fbe *= 1 + redundantOverhead

	// scan cells are chipkill: move the measured fractions out of each
	// block into the chipkill bucket
	moveQ := scanFracQueue * (iqi + iqf + lsq)
	moveL := scanFracLogic * (fe + ibe + fbe)
	ck += moveQ + moveL
	iqi *= 1 - scanFracQueue
	iqf *= 1 - scanFracQueue
	lsq *= 1 - scanFracQueue
	fe *= 1 - scanFracLogic
	ibe *= 1 - scanFracLogic
	fbe *= 1 - scanFracLogic

	m.PairArea[Frontend] = fe
	m.PairArea[IntIQ] = iqi
	m.PairArea[FPIQ] = iqf
	m.PairArea[LSQ] = lsq
	m.PairArea[IntBE] = ibe
	m.PairArea[FPBE] = fbe
	m.PairArea[Chipkill] = ck
	for g := Group(0); g < NumGroups; g++ {
		m.Total += m.PairArea[g]
	}
	return m, moveQ + moveL
}

// RescueChipkillScaled returns the Rescue model with the chipkill bucket
// scaled by f — the design-space knob for what-if questions about the
// chipkill share (a smaller predictor/BTB/TLB complex, or extra
// uncovered control logic). f = 1 returns exactly Rescue(); the redundant
// pairs are untouched, only the bucket and the total move.
func RescueChipkillScaled(f float64) Model {
	m := Rescue()
	delta := m.PairArea[Chipkill] * (f - 1)
	m.PairArea[Chipkill] += delta
	m.Total += delta
	return m
}

// RescueSelfHeal extends the Rescue model with the self-healing-array
// integration the paper's related work proposes (Bower et al.): the
// predictor tables and active list — btbShare of the chipkill bucket —
// gain detect-and-avoid entry fault tolerance (+5% overhead on that area)
// and stop being chipkill. The returned model's chipkill group shrinks;
// the healed area is dropped from the fault-sensitive total because entry
// faults there cost capacity, not correctness.
func RescueSelfHeal(btbShare float64) Model {
	return SelfHealFrom(Rescue(), btbShare)
}

// SelfHealFrom applies the self-healing-array transform to an arbitrary
// Rescue-shaped model — the composition point for design-space variants
// whose chipkill bucket already differs from the paper's (see
// RescueChipkillScaled). SelfHealFrom(Rescue(), s) == RescueSelfHeal(s).
func SelfHealFrom(m Model, btbShare float64) Model {
	healed := m.PairArea[Chipkill] * btbShare
	m.PairArea[Chipkill] -= healed
	// the healed structures still occupy silicon (plus spares overhead)
	// but their faults no longer kill the core; Total tracks the
	// fault-sensitive area used by the yield model
	m.Total -= healed
	m.Total += healed * redundantOverhead // residual checker logic stays fatal
	m.PairArea[Chipkill] += healed * redundantOverhead
	return m
}

// Frac returns a group's pair-area fraction of the core.
func (m Model) Frac(g Group) float64 { return m.PairArea[g] / m.Total }

// SingleArea returns the area of ONE member of a redundant pair (half the
// pair area). For Chipkill it returns the full area.
func (m Model) SingleArea(g Group) float64 {
	if g == Chipkill {
		return m.PairArea[g]
	}
	return m.PairArea[g] / 2
}

// Scaling describes a technology node relative to the 90nm reference.
type Scaling struct {
	NodeNM int
	// Halvings is the number of device-area halvings since 90nm:
	// 2*log2(90/node).
	Halvings float64
}

// Node builds the scaling descriptor for a feature size in nm.
func Node(nm int) Scaling {
	return Scaling{NodeNM: nm, Halvings: 2 * math.Log2(90/float64(nm))}
}

// Nodes returns the four plotted nodes of Figure 9.
func Nodes() []Scaling {
	return []Scaling{Node(90), Node(65), Node(32), Node(18)}
}

// CoreArea returns a core's area in mm² at this node under core growth g
// per halving: area shrinks 2x per halving, grows (1+g) per halving.
func (s Scaling) CoreArea(refArea, growth float64) float64 {
	return refArea * math.Pow(0.5, s.Halvings) * math.Pow(1+growth, s.Halvings)
}

// Cores returns the number of cores fabricated per chip: the total core
// budget is fixed (the ITRS 140mm² at the reference node holds one core),
// so cores = 2^h / (1+g)^h, rounded, minimum 1. This reproduces the
// paper's table under Figure 9: 11/7/5/4 cores at 18nm for 20/30/40/50%
// growth, and two cores at 65nm.
func (s Scaling) Cores(growth float64) int {
	n := math.Pow(2, s.Halvings) / math.Pow(1+growth, s.Halvings)
	c := int(math.Round(n))
	if c < 1 {
		c = 1
	}
	return c
}

// GrowthRates returns the four plotted growth rates.
func GrowthRates() []float64 { return []float64{0.20, 0.30, 0.40, 0.50} }
