// Package isa defines the micro-operation ISA consumed by the cycle-level
// performance simulator (internal/uarch). It is a RISC-flavored abstract
// instruction set: what matters for the paper's experiments is operation
// class, latency, register dependences, and memory/branch behavior — not
// encoding.
package isa

import "fmt"

// Class groups operations by the pipeline resources they use.
type Class uint8

// Operation classes.
const (
	IntALU Class = iota
	IntMul
	IntDiv
	FPAdd
	FPMul
	FPDiv
	Load
	Store
	Branch
	NOP
)

var classNames = [...]string{"IntALU", "IntMul", "IntDiv", "FPAdd", "FPMul", "FPDiv", "Load", "Store", "Branch", "NOP"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// IsFP reports whether the class executes in the floating-point backend.
func (c Class) IsFP() bool { return c == FPAdd || c == FPMul || c == FPDiv }

// IsMem reports whether the class occupies a load/store queue entry.
func (c Class) IsMem() bool { return c == Load || c == Store }

// Reg is an architectural register specifier. The integer file is
// registers [0, NumIntRegs); the FP file is [NumIntRegs, NumIntRegs+
// NumFPRegs). RegNone marks an unused operand.
type Reg int16

// Register file shape.
const (
	NumIntRegs     = 32
	NumFPRegs      = 32
	NumRegs        = NumIntRegs + NumFPRegs
	RegNone    Reg = -1
)

// Inst is one dynamic instruction in a trace.
type Inst struct {
	PC    uint64
	Class Class
	Dest  Reg // RegNone if the instruction writes no register
	Src1  Reg
	Src2  Reg

	// Memory operations.
	Addr uint64 // effective address (Load/Store)

	// Branches.
	Taken  bool   // actual direction
	Target uint64 // actual next PC when taken
}

// NextPC returns the architecturally-correct next PC.
func (i Inst) NextPC() uint64 {
	if i.Class == Branch && i.Taken {
		return i.Target
	}
	return i.PC + 8
}

// Latency returns the execution latency (cycles in a functional unit) of a
// class, matching common SimpleScalar-era configurations.
func (c Class) Latency() int {
	switch c {
	case IntALU, NOP, Branch:
		return 1
	case IntMul:
		return 3
	case IntDiv:
		return 20
	case FPAdd:
		return 2
	case FPMul:
		return 4
	case FPDiv:
		return 12
	case Load, Store:
		return 1 // address generation; cache access modeled separately
	}
	return 1
}
