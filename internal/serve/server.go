// Package serve is the rescued batch daemon: the repo's long-running flows
// (ATPG/Table 3, fault-dictionary builds, isolation campaigns, YAT and IPC
// studies, Monte Carlo fab fleets) exposed as HTTP jobs over a bounded
// queue, with live NDJSON event streams, per-job cancellation, and a
// graceful drain that checkpoints running campaigns so an identical
// resubmission resumes them bit-identically.
//
// Every job renders through the same internal/flows runners the CLIs use,
// against a shared content-addressed artifact store — so a warm job's
// report is byte-identical to a cold one, and both are byte-identical to
// the corresponding command's output (what results/*.txt pin).
package serve

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rescue/internal/fault"
	"rescue/internal/flows"
	"rescue/internal/obs"
	"rescue/internal/sched"
)

// Cancellation causes, distinguishable via context.Cause so the runner can
// map them to job states.
var (
	// ErrCanceled is the cause when a client DELETEs a job.
	ErrCanceled = errors.New("job canceled by client")
	// ErrDraining is the cause when the server is shutting down; running
	// campaigns flush their checkpoint journals before the job finishes.
	ErrDraining = errors.New("server draining")
)

// Config parameterizes a Server.
type Config struct {
	// QueueCap bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected with 429. 0 = 64.
	QueueCap int
	// Slots is the number of jobs running concurrently. 0 = 1: flows
	// parallelize internally, so one slot already saturates the cores.
	Slots int
	// Workers is the per-job default campaign concurrency (0 = all cores);
	// job params may override it.
	Workers int
	// CheckpointDir, when set, gives every checkpointable job a campaign
	// journal named by its spec digest: a drained job's journal is resumed
	// by the next identical submission. "" disables checkpointing.
	CheckpointDir string
	// Reg receives the server's metrics. nil = a private registry.
	Reg *obs.Registry
	// Kinds maps kind names to runners. nil = Kinds() (the built-in set).
	Kinds map[string]Runner
	// Logf, when set, receives one line per job transition.
	Logf func(format string, args ...any)

	// TenantWeights gives per-tenant DRR weights for slot assignment;
	// unlisted tenants weigh 1. nil = every tenant equal.
	TenantWeights map[string]int
	// TenantQueueCap bounds one tenant's queued jobs. 0 = QueueCap (a
	// lone tenant keeps the full queue, so single-tenant behavior is
	// unchanged).
	TenantQueueCap int
	// MaxInflightPerTenant bounds one tenant's running jobs. 0 = no
	// per-tenant limit.
	MaxInflightPerTenant int
	// DisableFairness reverts admission to the single global FIFO of
	// earlier releases: no per-tenant caps, weights, in-flight limits,
	// or classes. Kept for A/B fairness measurement; the zero value
	// (fairness on) is the default.
	DisableFairness bool
	// EventLogCap bounds each job's retained event log; older events are
	// evicted and streamed consumers that lagged past them get a
	// {"type":"dropped","count":N} marker. 0 = 4096, ample for every
	// built-in flow's percent-throttled progress; negative = unbounded.
	EventLogCap int
}

// DefaultEventLogCap is the per-job event-log bound when EventLogCap is 0.
const DefaultEventLogCap = 4096

// maxStreamLag bounds how far one NDJSON consumer may fall behind the
// live log before the stream skips ahead with a dropped marker instead
// of replaying the full backlog to a reader that cannot keep up.
const maxStreamLag = 1024

// Server owns the queue, the scheduler, and the artifact store.
type Server struct {
	cfg   Config
	kinds map[string]Runner
	store *flows.Store
	reg   *obs.Registry

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // insertion order, for listing
	nextID   int
	draining bool

	sched *sched.Scheduler
	wg    sync.WaitGroup // scheduler slots
	jobWG sync.WaitGroup // running jobs

	tenantMu sync.Mutex
	tenants  map[string]*tenantMetrics

	mQueued      *obs.Counter
	mRejected    *obs.Counter
	mSucceeded   *obs.Counter
	mFailed      *obs.Counter
	mCanceled    *obs.Counter
	mInterrupted *obs.Counter
	gQueueDepth  *obs.Gauge
	gRunning     *obs.Gauge
	hJobSeconds  *obs.Histogram
}

// tenantMetrics is one tenant's lazily-created slice of the registry:
// counters for admissions and sheds, a queue-wait histogram (quantiles
// land in /metrics automatically), and gauge funcs reading the
// scheduler's live per-tenant state.
type tenantMetrics struct {
	admitted *obs.Counter
	shed     *obs.Counter
	wait     *obs.Histogram
}

// tenantMetrics returns (creating on first use) the metric handles for
// a tenant. Metric names embed the sanitized tenant name:
// tenant_<name>_admitted_total, _shed_total, _queue_depth, _running,
// _wait_seconds.
func (s *Server) tenantMetrics(tenant string) *tenantMetrics {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if tm, ok := s.tenants[tenant]; ok {
		return tm
	}
	p := "tenant_" + obs.SanitizeName(tenant) + "_"
	tm := &tenantMetrics{
		admitted: s.reg.Counter(p + "admitted_total"),
		shed:     s.reg.Counter(p + "shed_total"),
		wait:     s.reg.Histogram(p + "wait_seconds"),
	}
	name := tenant
	s.reg.RegisterFunc(p+"queue_depth", func() float64 {
		sn, _ := s.sched.Tenant(name)
		return float64(sn.Queued)
	})
	s.reg.RegisterFunc(p+"running", func() float64 {
		sn, _ := s.sched.Tenant(name)
		return float64(sn.Inflight)
	})
	s.reg.RegisterFunc(p+"weight", func() float64 {
		sn, _ := s.sched.Tenant(name)
		return float64(sn.Weight)
	})
	s.tenants[tenant] = tm
	return tm
}

// New builds a Server and starts its scheduler slots.
func New(cfg Config) *Server {
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 64
	}
	if cfg.Slots == 0 {
		cfg.Slots = 1
	}
	if cfg.Reg == nil {
		cfg.Reg = obs.NewRegistry()
	}
	kinds := cfg.Kinds
	if kinds == nil {
		kinds = Kinds()
	}
	if cfg.EventLogCap == 0 {
		cfg.EventLogCap = DefaultEventLogCap
	}
	s := &Server{
		cfg:     cfg,
		kinds:   kinds,
		store:   flows.NewStore(),
		reg:     cfg.Reg,
		jobs:    map[string]*Job{},
		tenants: map[string]*tenantMetrics{},

		mQueued:      cfg.Reg.Counter("jobs_queued_total"),
		mRejected:    cfg.Reg.Counter("jobs_rejected_total"),
		mSucceeded:   cfg.Reg.Counter("jobs_succeeded_total"),
		mFailed:      cfg.Reg.Counter("jobs_failed_total"),
		mCanceled:    cfg.Reg.Counter("jobs_canceled_total"),
		mInterrupted: cfg.Reg.Counter("jobs_interrupted_total"),
		gQueueDepth:  cfg.Reg.Gauge("queue_depth"),
		gRunning:     cfg.Reg.Gauge("jobs_running"),
		hJobSeconds:  cfg.Reg.Histogram("job_seconds"),
	}
	s.sched = sched.New(sched.Config{
		Slots:       cfg.Slots,
		GlobalCap:   cfg.QueueCap,
		TenantCap:   cfg.TenantQueueCap,
		MaxInflight: cfg.MaxInflightPerTenant,
		Weights:     cfg.TenantWeights,
		Disable:     cfg.DisableFairness,
		JobSeconds: func() float64 {
			count, sum, _, _ := s.hJobSeconds.Snapshot()
			if count == 0 {
				return 0 // scheduler falls back to its 1s prior
			}
			return sum / float64(count)
		},
		OnDequeue: func(tenant string, _ sched.Class, wait time.Duration) {
			s.tenantMetrics(tenant).wait.Observe(wait.Seconds())
		},
	})
	cfg.Reg.RegisterFunc("queue_cap", func() float64 { return float64(s.cfg.QueueCap) })
	cfg.Reg.RegisterFunc("scheduler_slots", func() float64 { return float64(s.cfg.Slots) })
	cfg.Reg.RegisterFunc("artifact_cache_hits_total", func() float64 { return float64(s.store.Hits()) })
	cfg.Reg.RegisterFunc("artifact_cache_misses_total", func() float64 { return float64(s.store.Misses()) })
	cfg.Reg.RegisterFunc("artifact_cache_builds_total", func() float64 { return float64(s.store.Builds()) })
	cfg.Reg.RegisterFunc("artifact_cache_entries", func() float64 { return float64(s.store.Len()) })
	for i := 0; i < cfg.Slots; i++ {
		s.wg.Add(1)
		go s.slot()
	}
	return s
}

// Store exposes the artifact store (tests assert its hit/build counters).
func (s *Server) Store() *flows.Store { return s.store }

// Registry exposes the metrics registry backing /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// TenantName validates and normalizes a tenant identity: "" maps to
// "default"; otherwise up to 64 chars of [A-Za-z0-9._-].
func TenantName(raw string) (string, error) {
	if raw == "" {
		return "default", nil
	}
	if len(raw) > 64 {
		return "", fmt.Errorf("%w: tenant name longer than 64 chars", ErrBadSpec)
	}
	for _, c := range raw {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return "", fmt.Errorf("%w: tenant name %q (want [A-Za-z0-9._-])", ErrBadSpec, raw)
		}
	}
	return raw, nil
}

// Submit validates a spec and offers it to the fair scheduler. On
// rejection it returns a *sched.ShedError (per-tenant 429 with an
// honest Retry-After), ErrDraining after Drain began, or ErrBadSpec /
// ErrUnknownKind for malformed specs.
func (s *Server) Submit(spec Spec) (*Job, error) {
	if _, ok := s.kinds[spec.Kind]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, spec.Kind)
	}
	tenant, err := TenantName(spec.Tenant)
	if err != nil {
		return nil, err
	}
	class, err := sched.ParseClass(spec.Class)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if spec.DeadlineMS < 0 {
		return nil, fmt.Errorf("%w: negative deadlineMS %d", ErrBadSpec, spec.DeadlineMS)
	}
	deadline := time.Duration(spec.DeadlineMS) * time.Millisecond

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.nextID++
	j := newJob(fmt.Sprintf("j%06d", s.nextID), spec, tenant, s.cfg.EventLogCap)
	if err := s.sched.Enqueue(tenant, class, deadline, j); err != nil {
		s.nextID--
		s.mu.Unlock()
		if errors.Is(err, sched.ErrClosed) {
			return nil, ErrDraining
		}
		s.mRejected.Inc()
		s.tenantMetrics(tenant).shed.Inc()
		return nil, err
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
	s.mQueued.Inc()
	s.tenantMetrics(tenant).admitted.Inc()
	s.gQueueDepth.Add(1)
	s.logf("job %s queued kind=%s tenant=%s class=%s", j.ID, spec.Kind, tenant, class)
	return j, nil
}

// Submission errors, mapped to HTTP statuses by the handler.
var (
	ErrUnknownKind = errors.New("unknown job kind")
	ErrBadSpec     = errors.New("bad job spec")
)

// RetryAfter estimates how many seconds a 429'd tenant should wait
// before resubmitting: its backlog over its fair share of slots at the
// observed mean job duration, clamped to [1s, 60s].
func (s *Server) RetryAfter(tenant string) int {
	return s.sched.RetryAfter(tenant)
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List snapshots every job in submission order.
func (s *Server) List() []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Snapshot, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].snapshot())
	}
	return out
}

// Cancel cancels a queued or running job. Queued jobs flip to canceled
// immediately (the slot skips them); running jobs get their context
// canceled with ErrCanceled and finish when the flow unwinds.
func (s *Server) Cancel(id string) (*Job, bool) {
	j, ok := s.Job(id)
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel(ErrCanceled)
		return j, true
	}
	if j.setState(StateCanceled, ErrCanceled.Error()) {
		s.mCanceled.Inc()
		s.logf("job %s canceled while queued", j.ID)
	}
	return j, true
}

// Drain stops accepting submissions, cancels running jobs with the drain
// cause — their campaigns finish in-flight chunks and flush checkpoint
// journals — lets queued jobs fail over to interrupted, and waits for the
// scheduler to go quiet. It is the SIGTERM path; rescued exits 0 after it
// returns.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()

	// Closing the scheduler stops the slots and hands back every
	// undelivered job; marking them interrupted here keeps the depth
	// gauge honest without racing the cancel sweep below (setState is
	// idempotent — the first terminal state wins).
	for _, p := range s.sched.Close() {
		j := p.(*Job)
		s.gQueueDepth.Add(-1)
		if j.setState(StateInterrupted, ErrDraining.Error()) {
			s.mInterrupted.Inc()
		}
	}

	for _, j := range jobs {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel(ErrDraining)
		} else if j.setState(StateInterrupted, ErrDraining.Error()) {
			s.mInterrupted.Inc()
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// slot is one scheduler worker: it owns at most one running job at a
// time, pulled from the fair scheduler in DRR order. The release
// callback frees the job's tenant in-flight slot whether the job ran or
// was skipped (canceled while queued).
func (s *Server) slot() {
	defer s.wg.Done()
	for {
		p, release, ok := s.sched.Next()
		if !ok {
			return
		}
		j := p.(*Job)
		s.gQueueDepth.Add(-1)
		s.runJob(j)
		release()
	}
}

// runJob drives one job through the runner.
func (s *Server) runJob(j *Job) {
	runner := s.kinds[j.Spec.Kind]

	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	j.mu.Lock()
	if j.state.Done() { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.cancel = cancel
	j.mu.Unlock()

	if !j.setState(StateRunning, "") {
		return
	}
	s.jobWG.Add(1)
	defer s.jobWG.Done()
	s.gRunning.Add(1)
	defer s.gRunning.Add(-1)
	s.logf("job %s running", j.ID)
	start := time.Now()

	// Throttled progress events: at most one per percent of a campaign's
	// work (plus its completion), so streams stay light even for
	// million-fault campaigns. A flow runs many campaigns back to back;
	// completion resets the threshold for the next one.
	var lastPct int64 = -1
	ctx = fault.WithProgress(ctx, func(done, total int64) {
		pct := int64(0)
		if total > 0 {
			pct = 100 * done / total
		}
		j.mu.Lock()
		if pct > lastPct || done == total {
			lastPct = pct
			if done == total {
				lastPct = -1
			}
			j.appendLocked(Event{Type: "progress", Done: done, Total: total})
		}
		j.mu.Unlock()
	})
	ctx = obs.WithTracer(ctx, s.reg)

	ck, ckPath, err := s.openCheckpoint(j)
	if err != nil {
		j.setState(StateFailed, err.Error())
		s.mFailed.Inc()
		return
	}
	j.setCkPath(ckPath)

	ctx = withJob(ctx, j)
	out, runErr := runner(ctx, RunContext{
		Env:           flows.Env{Store: s.store, Ck: ck},
		Workers:       s.cfg.Workers,
		CheckpointDir: s.cfg.CheckpointDir,
	}, j.Spec.Params)
	j.finishOutput(out)
	s.hJobSeconds.Observe(time.Since(start).Seconds())

	switch {
	case runErr == nil:
		if ckPath != "" {
			os.Remove(ckPath)
		}
		if j.setState(StateSucceeded, "") {
			s.mSucceeded.Inc()
		}
	case errors.Is(runErr, ErrCanceled):
		if j.setState(StateCanceled, ErrCanceled.Error()) {
			s.mCanceled.Inc()
		}
	case errors.Is(runErr, ErrDraining):
		if j.setState(StateInterrupted, ErrDraining.Error()) {
			s.mInterrupted.Inc()
		}
	default:
		if j.setState(StateFailed, runErr.Error()) {
			s.mFailed.Inc()
		}
	}
	sn := j.snapshot()
	s.logf("job %s %s (%s)", j.ID, sn.State, time.Since(start).Round(time.Millisecond))
}

// openCheckpoint opens the job's content-addressed campaign journal when
// checkpointing is configured and the kind runs campaigns. A journal left
// behind by a drained twin is resumed; a fresh path starts a new journal.
func (s *Server) openCheckpoint(j *Job) (*fault.Checkpoint, string, error) {
	if s.cfg.CheckpointDir == "" {
		return nil, "", nil
	}
	path := filepath.Join(s.cfg.CheckpointDir, specDigest(j.Spec)+".ck")
	_, statErr := os.Stat(path)
	resume := statErr == nil
	ck, err := fault.OpenCheckpoint(path, resume)
	if err != nil {
		return nil, "", fmt.Errorf("checkpoint: %w", err)
	}
	// The journal path already encodes the job's full identity (the spec
	// digest), so section matching can go by content: a warm-cache run
	// journals only the campaigns it actually simulated, and a cold resume
	// must find them regardless of position.
	ck.ContentAddressed()
	if resume {
		j.append(Event{Type: "output", Msg: "resuming from checkpoint journal"})
	}
	return ck, path, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// hashBytes is the digest primitive shared with the job identity.
func hashBytes(b []byte) []byte {
	sum := sha256.Sum256(b)
	return sum[:8]
}
