package fab

import "math"

// rng is the splitmix64 stream the netlist generator uses: platform-stable
// and cheap, so die sampling is a pure function of (seed, die index) on
// every architecture — the property checkpoint/resume and worker-count
// determinism rest on.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// mix64 is the splitmix finalizer, used to decorrelate per-die streams.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// dieRNG derives die i's private stream. The extra mix64 scatters the
// starting states across the whole period, so consecutive dies do not
// share overlapping subsequences.
func dieRNG(seed int64, die int) *rng {
	return &rng{s: mix64(uint64(seed) ^ mix64(uint64(die)+0x6a09e667f3bcc909))}
}

// float64 returns a uniform draw in [0, 1).
func (r *rng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// intn returns a uniform draw in [0, n). The modulo bias is below 1e-18
// for the pool sizes involved — irrelevant next to Monte Carlo noise.
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// exp returns an Exp(mean 1) draw.
func (r *rng) exp() float64 { return -math.Log(1 - r.float64()) }

// gamma draws Gamma(shape alpha, mean 1) for integral alpha — the ITRS
// clustering mixture (alpha = 2) — as a normalized sum of exponentials.
func (r *rng) gamma(alpha float64) float64 {
	k := int(alpha)
	if k < 1 || float64(k) != alpha {
		panic("fab: gamma sampling supports integral alpha only")
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += r.exp()
	}
	return sum / alpha
}

// poisson draws Poisson(lam) by Knuth's product-of-uniforms, chunked so
// the running product cannot underflow for large means.
func (r *rng) poisson(lam float64) int {
	k := 0
	for lam > 30 {
		k += r.poissonSmall(30)
		lam -= 30
	}
	return k + r.poissonSmall(lam)
}

func (r *rng) poissonSmall(lam float64) int {
	if lam <= 0 {
		return 0
	}
	l := math.Exp(-lam)
	k := 0
	p := 1.0
	for {
		p *= r.float64()
		if p <= l {
			return k
		}
		k++
	}
}
