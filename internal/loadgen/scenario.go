package loadgen

import (
	"context"
	"fmt"
	"time"
)

// NoisyNeighborConfig parameterizes the canned multi-tenant overload
// scenario: a polite victim tenant submitting warm interactive work at a
// modest rate, and an aggressor tenant flooding the daemon with cold
// campaign jobs at many times that rate. The gate asks the only question
// that matters for fair scheduling: does the victim's warm p99 under
// contention stay within Bound× its solo baseline?
type NoisyNeighborConfig struct {
	// Seed drives both populations. The victim's population is built from
	// Seed alone, so its schedule is byte-identical between the solo
	// baseline leg and the contended legs — the comparison is apples to
	// apples by construction.
	Seed int64
	// Duration is each leg's schedule horizon. 0 = 8s.
	Duration time.Duration
	// Victim and Aggressor name the two tenants. Defaults "victim" and
	// "aggressor".
	Victim, Aggressor string
	// VictimClients/AggressorClients size the populations. 0 = 2 and 4.
	VictimClients, AggressorClients int
	// VictimRPS is the victim's aggregate arrival rate. 0 = 2.
	VictimRPS float64
	// AggressorMult scales the aggressor's rate off the victim's:
	// aggressor RPS = VictimRPS * AggressorMult. 0 = 15.
	AggressorMult float64
	// Bound is the allowed fair-mode degradation multiple of the victim's
	// warm p99 over its solo baseline. 0 = 3.
	Bound float64
	// FloorMS guards tiny solo baselines from measurement noise: the fair
	// budget is max(Bound*solo, FloorMS). A warm victim job's solo p99 is
	// single-digit milliseconds, so the binding budget is usually this
	// floor — it must sit above the CPU-sharing noise of one aggressor
	// campaign running beside the victim (tens of ms) and below the
	// queue-wait a FIFO daemon imposes (hundreds of ms to seconds).
	// 0 = 250.
	FloorMS float64
	// VictimProfiles is the victim's kind mix. Default: warm small table3
	// only — pure artifact-cache serving.
	VictimProfiles []Profile
	// AggressorProfiles is the aggressor's kind mix. Default: cold small
	// isolation campaigns heavy enough (~0.5s) that the aggressor's
	// arrival rate outruns its drain rate — the backlog is what exposes
	// the difference between fair scheduling and FIFO.
	AggressorProfiles []Profile
}

func (c *NoisyNeighborConfig) setDefaults() {
	if c.Duration == 0 {
		c.Duration = 8 * time.Second
	}
	if c.Victim == "" {
		c.Victim = "victim"
	}
	if c.Aggressor == "" {
		c.Aggressor = "aggressor"
	}
	if c.VictimClients == 0 {
		c.VictimClients = 2
	}
	if c.AggressorClients == 0 {
		c.AggressorClients = 4
	}
	if c.VictimRPS == 0 {
		c.VictimRPS = 2
	}
	if c.AggressorMult == 0 {
		c.AggressorMult = 15
	}
	if c.Bound == 0 {
		c.Bound = 3
	}
	if c.FloorMS == 0 {
		c.FloorMS = 250
	}
	if len(c.VictimProfiles) == 0 {
		c.VictimProfiles = []Profile{
			{Kind: "table3", Weight: 1, Params: map[string]any{"small": true}},
		}
	}
	if len(c.AggressorProfiles) == 0 {
		c.AggressorProfiles = []Profile{
			{Kind: "isolation", Weight: 1, SeedKey: "seed",
				Params: map[string]any{"small": true, "perStage": 300}},
		}
	}
}

// BuildNoisyNeighbor compiles the scenario's two schedules: the victim
// alone (the baseline leg) and victim+aggressor merged (the contended
// legs). The victim population is derived from the same seed in both, so
// its arrival times and bodies are identical across legs.
func BuildNoisyNeighbor(cfg NoisyNeighborConfig) (solo, combined *Schedule, err error) {
	cfg.setDefaults()
	victimCfg := Config{
		Seed:     cfg.Seed,
		Clients:  cfg.VictimClients,
		Duration: cfg.Duration,
		RPS:      cfg.VictimRPS,
		HitRatio: 1,
		Profiles: cfg.VictimProfiles,
		Tenant:   cfg.Victim,
	}
	solo, err = Build(victimCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("loadgen: victim schedule: %w", err)
	}
	victim2, err := Build(victimCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("loadgen: victim schedule: %w", err)
	}
	aggressor, err := Build(Config{
		Seed:     cfg.Seed + 1,
		Clients:  cfg.AggressorClients,
		Duration: cfg.Duration,
		RPS:      cfg.VictimRPS * cfg.AggressorMult,
		HitRatio: 0,
		Profiles: cfg.AggressorProfiles,
		Tenant:   cfg.Aggressor,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("loadgen: aggressor schedule: %w", err)
	}
	return solo, Merge(victim2, aggressor), nil
}

// RunNoisyNeighbor executes the scenario and grades it:
//
//  1. solo leg — the victim alone against opts.BaseURL (fair daemon),
//     establishing its uncontended warm p99;
//  2. fair leg — victim + aggressor against the same daemon; the victim's
//     warm p99 must stay within max(Bound*solo, FloorMS);
//  3. unfair leg (when unfairBase != "") — the same combined workload
//     against a daemon running -fair=false, which must violate that
//     budget (or starve the victim outright). A gate that also passes
//     without fair scheduling is measuring nothing; this leg proves the
//     mechanism, not just the number.
//
// The returned report is the fair leg's, with Fairness filled in.
// Violations make the report's Fairness.Violations non-empty; the caller
// decides the exit code.
func RunNoisyNeighbor(ctx context.Context, cfg NoisyNeighborConfig, opts Options, unfairBase string) (*Report, error) {
	cfg.setDefaults()
	solo, combined, err := BuildNoisyNeighbor(cfg)
	if err != nil {
		return nil, err
	}
	reportCfg := Config{Seed: cfg.Seed, Duration: cfg.Duration}

	soloOpts := opts
	soloOpts.Prewarm = true
	logf(opts, "noisy-neighbor: solo leg (%d victim requests)", len(solo.Requests))
	soloStats, err := Run(ctx, solo, soloOpts)
	if err != nil {
		return nil, fmt.Errorf("loadgen: solo leg: %w", err)
	}
	soloReport := BuildReport(reportCfg, solo, soloStats)
	soloVictim, ok := soloReport.PerTenant[cfg.Victim]
	if !ok || soloVictim.Warm.Count == 0 {
		return nil, fmt.Errorf("loadgen: solo leg produced no successful warm victim requests")
	}

	logf(opts, "noisy-neighbor: fair leg (%d requests, aggressor %.0f rps)",
		len(combined.Requests), cfg.VictimRPS*cfg.AggressorMult)
	fairStats, err := Run(ctx, combined, opts)
	if err != nil {
		return nil, fmt.Errorf("loadgen: fair leg: %w", err)
	}
	report := BuildReport(reportCfg, combined, fairStats)

	fr := &FairnessResult{
		Checked:   true,
		Victim:    cfg.Victim,
		Aggressor: cfg.Aggressor,
		Bound:     cfg.Bound,
		FloorMS:   cfg.FloorMS,
		SoloP99MS: soloVictim.Warm.P99MS,
	}
	budget := cfg.Bound * fr.SoloP99MS
	if budget < cfg.FloorMS {
		budget = cfg.FloorMS
	}
	fairVictim := report.PerTenant[cfg.Victim]
	fr.FairP99MS = fairVictim.Warm.P99MS
	switch {
	case fairVictim.Warm.Count == 0:
		fr.Violations = append(fr.Violations,
			"no victim warm request succeeded under fair scheduling")
	case fr.FairP99MS > budget:
		fr.Violations = append(fr.Violations, fmt.Sprintf(
			"victim warm p99 %.2fms under contention exceeds budget %.2fms (%.1fx solo %.2fms, floor %.1fms)",
			fr.FairP99MS, budget, cfg.Bound, fr.SoloP99MS, cfg.FloorMS))
	}

	if unfairBase != "" {
		unfairOpts := opts
		unfairOpts.BaseURL = unfairBase
		unfairOpts.Prewarm = true
		logf(opts, "noisy-neighbor: unfair leg against %s", unfairBase)
		unfairStats, err := Run(ctx, combined, unfairOpts)
		if err != nil {
			return nil, fmt.Errorf("loadgen: unfair leg: %w", err)
		}
		unfairReport := BuildReport(reportCfg, combined, unfairStats)
		unfairVictim := unfairReport.PerTenant[cfg.Victim]
		fr.UnfairP99MS = unfairVictim.Warm.P99MS
		fr.UnfairStarved = unfairVictim.Warm.Count == 0
		if !fr.UnfairStarved && fr.UnfairP99MS <= budget {
			fr.Violations = append(fr.Violations, fmt.Sprintf(
				"unfair mode kept victim warm p99 at %.2fms (within budget %.2fms) — the scenario is not contended enough to prove fair scheduling matters",
				fr.UnfairP99MS, budget))
		}
	}

	report.Fairness = fr
	return report, nil
}
