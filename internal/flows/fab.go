package flows

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"rescue/internal/area"
	"rescue/internal/atpg"
	"rescue/internal/fab"
	"rescue/internal/fault"
	"rescue/internal/rtl"
)

// FabOpts parameterizes the Monte Carlo die-lifecycle fleet — the
// rescue-fab command surface. NodeNM must be one of area.Nodes()
// (validated by ValidNode); zero values take the command's defaults.
type FabOpts struct {
	Dies          int // 0 = 10000
	NodeNM        int // 0 = 18
	StagnateNM    int // 0 = 90
	Growth        float64
	GrowthSet     bool  // distinguishes an explicit 0 growth from the default 0.30
	Seed          int64 // 0 = 2026
	Workers       int
	Small         bool
	Bench         string // comma-separated; "" = all 23 — note rescue-fab defaults to "gzip"
	BenchSet      bool
	Warmup        int64 // 0 = 2000
	Commit        int64 // 0 = 10000
	SelfHealShare float64
	Timing        bool
}

func (o *FabOpts) setDefaults() {
	if o.Dies == 0 {
		o.Dies = 10_000
	}
	if o.NodeNM == 0 {
		o.NodeNM = 18
	}
	if o.StagnateNM == 0 {
		o.StagnateNM = 90
	}
	if !o.GrowthSet && o.Growth == 0 {
		o.Growth = 0.30
	}
	if o.Seed == 0 {
		o.Seed = 2026
	}
	if !o.BenchSet && o.Bench == "" {
		o.Bench = "gzip"
	}
	if o.Warmup == 0 {
		o.Warmup = 2_000
	}
	if o.Commit == 0 {
		o.Commit = 10_000
	}
}

// ValidNode resolves a -node value against the supported technology nodes.
func ValidNode(nm int) (area.Scaling, bool) {
	for _, n := range area.Nodes() {
		if n.NodeNM == nm {
			return n, true
		}
	}
	return area.Scaling{}, false
}

// FabResult carries the fleet report and the campaign stats behind it
// (partial on interrupt).
type FabResult struct {
	Stats  fault.Stats
	Report *fab.FleetReport
}

// Fab runs the die-lifecycle fleet and writes the report to w — the exact
// text rescue-fab prints, which is what results/fab_small.txt pins.
func Fab(ctx context.Context, w io.Writer, o FabOpts, env Env) (FabResult, error) {
	o.setDefaults()
	var res FabResult

	node, ok := ValidNode(o.NodeNM)
	if !ok {
		return res, fmt.Errorf("fab: unsupported node %dnm", o.NodeNM)
	}
	if o.Dies < 1 {
		return res, fmt.Errorf("fab: need at least one die, got %d", o.Dies)
	}
	if o.Growth < 0 {
		return res, fmt.Errorf("fab: negative growth rate %v", o.Growth)
	}

	start := time.Now()
	s, err := env.System(o.Small, rtl.RescueDesign)
	if err != nil {
		return res, fmt.Errorf("build: %w", err)
	}
	if !s.Audit.OK() {
		return res, fmt.Errorf("ICI audit failed: %d violations", len(s.Audit.Violations))
	}
	fmt.Fprintf(w, "built %s: %d gates, %d scan cells; ICI audit clean\n",
		s.Design.N.Name, s.Design.N.NumGates(), s.Design.N.NumFFs())

	gen := atpg.DefaultGenConfig()
	gen.Workers = o.Workers
	tp, err := env.TestProgram(ctx, s, o.Small, rtl.RescueDesign, gen)
	if err != nil {
		res.Stats = tp.Gen.Stats
		return res, err
	}
	fmt.Fprintf(w, "ATPG: %d vectors, %.2f%% coverage\n", tp.Gen.Vectors, tp.Gen.Coverage*100)

	var names []string
	if o.Bench != "" {
		names = strings.Split(o.Bench, ",")
	}
	pm, err := env.PerfModel(ctx, o.NodeNM, names, o.Warmup, o.Commit, o.Workers)
	if err != nil {
		return res, err
	}
	rescArea := area.Rescue()
	if o.SelfHealShare > 0 {
		rescArea = area.RescueSelfHeal(o.SelfHealShare)
	}
	base, resc := fab.ModelsFromPerf(pm, area.BaselineWithScan(), rescArea)
	if o.Timing {
		fmt.Fprintf(w, "degraded-IPC model: %d configurations x %d benchmarks (%s)\n",
			len(resc.IPC), len(pm.Baseline), time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Fprintf(w, "degraded-IPC model: %d configurations x %d benchmarks\n",
			len(resc.IPC), len(pm.Baseline))
	}

	eng, err := fab.New(s, tp, base, resc, fab.Config{
		Dies: o.Dies, Node: node, Stagnate: area.Node(o.StagnateNM),
		Growth: o.Growth, Seed: o.Seed, Workers: o.Workers,
		SelfHealShare: o.SelfHealShare,
	})
	if err != nil {
		return res, err
	}
	rep, err := eng.Run(ctx, env.Ck)
	res.Report = rep
	res.Stats = rep.Stats
	if err != nil {
		return res, err
	}
	fmt.Fprintln(w)
	rep.WriteText(w, o.Timing)
	return res, nil
}
