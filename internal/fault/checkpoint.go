// Checkpoint journals for campaign-shaped workloads.
//
// A Checkpoint records completed work along a *deterministic flow* — a
// sequence of campaign runs whose fault lists, pattern words, and configs
// are fully determined by the flow's inputs (seed, design, flags). Each
// campaign run binds one journal *section* (identified by digests of its
// fault list, pattern words, and config); each completed chunk appends a
// fault-index range plus its serialized results and a digest.
//
// On resume the flow is simply re-executed: campaign runs whose sections
// are journaled rehydrate instantly instead of simulating, the first
// incomplete section resumes at chunk granularity, and everything after
// runs fresh. Because results depend only on (fault, pattern words) — not
// on worker count or scheduling — a resumed run is bit-identical to an
// uninterrupted one at any worker count.
//
// The journal is crash-safe: every flush writes the whole normalized
// journal to a temp file in the same directory, fsyncs, then renames over
// the target, so the on-disk file is always a consistent snapshot.
package fault

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"rescue/internal/netlist"
)

// CampaignKey pins a journal section to one specific campaign run. Two runs
// with equal keys are guaranteed to produce identical results, so a
// section recorded by one can be rehydrated by the other. Any mismatch
// (different seed, design, pattern set, worker-independent config) is
// detected and refused instead of silently resuming the wrong work.
//
// The key is also the unit of distribution: a shard job names the campaign
// it computes a window of by CampaignKey, and the coordinator accepts a
// shard result only when the worker derived the same key from its own
// re-execution of the flow — content addressing doubling as an end-to-end
// integrity check (see shard.go).
type CampaignKey struct {
	NFaults        int    `json:"nFaults"`
	FaultsDigest   string `json:"faultsDigest"`
	WLo            int    `json:"wLo"`
	WHi            int    `json:"wHi"`
	PatternsDigest string `json:"patternsDigest"`
	MaxFail        int    `json:"maxFail"`
	Drop           bool   `json:"drop"`
}

// campaignIdentity digests the inputs that determine a run's results.
func campaignIdentity(core *simCore, faults []netlist.Fault, wLo, wHi int, cfg CampaignConfig) CampaignKey {
	fh := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		fh.Write(buf[:])
	}
	for _, f := range faults {
		writeInt(int64(f.Gate))
		writeInt(int64(f.FF))
		writeInt(int64(f.Pin))
		if f.StuckAt1 {
			writeInt(1)
		} else {
			writeInt(0)
		}
	}
	faultsDigest := fmt.Sprintf("%016x", fh.Sum64())

	ph := fnv.New64a()
	writeIntP := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		ph.Write(buf[:])
	}
	for w := wLo; w < wHi && w < len(core.Patterns); w++ {
		p := core.Patterns[w]
		writeIntP(int64(p.Lanes))
		for _, v := range p.FFVals {
			writeIntP(int64(v))
		}
		for _, v := range p.PIVals {
			writeIntP(int64(v))
		}
	}
	return CampaignKey{
		NFaults:        len(faults),
		FaultsDigest:   faultsDigest,
		WLo:            wLo,
		WHi:            wHi,
		PatternsDigest: fmt.Sprintf("%016x", ph.Sum64()),
		MaxFail:        cfg.MaxFail,
		Drop:           cfg.Drop,
	}
}

// ckRange is one journaled span of completed fault indices [Lo, Hi) with
// their results.
type ckRange struct {
	Lo, Hi  int
	Results []Result
}

// ckSection is the journal of one campaign run.
type ckSection struct {
	mu     sync.Mutex
	id     CampaignKey
	ranges []ckRange
}

// restore rehydrates journaled results into out and returns the done
// bitmap (nil when nothing was journaled) plus the rehydrated count.
func (s *ckSection) restore(out []Result) ([]bool, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.ranges) == 0 {
		return nil, 0
	}
	done := make([]bool, len(out))
	var n int64
	for _, r := range s.ranges {
		for i := r.Lo; i < r.Hi && i < len(out); i++ {
			if !done[i] {
				out[i] = r.Results[i-r.Lo]
				done[i] = true
				n++
			}
		}
	}
	return done, n
}

// record journals the freshly simulated sub-ranges of chunk [lo, hi):
// indices already rehydrated (done) are skipped so ranges never overlap.
func (s *ckSection) record(lo, hi int, out []Result, done []bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := lo
	for i < hi {
		for i < hi && done != nil && done[i] {
			i++
		}
		j := i
		for j < hi && (done == nil || !done[j]) {
			j++
		}
		if j > i {
			s.ranges = append(s.ranges, ckRange{Lo: i, Hi: j, Results: append([]Result(nil), out[i:j]...)})
		}
		i = j
	}
}

// normalize sorts ranges by Lo and merges adjacent spans so flushed
// journals stay compact across many resume cycles.
func (s *ckSection) normalize() []ckRange {
	s.mu.Lock()
	defer s.mu.Unlock()
	sort.Slice(s.ranges, func(i, j int) bool { return s.ranges[i].Lo < s.ranges[j].Lo })
	var merged []ckRange
	for _, r := range s.ranges {
		if n := len(merged); n > 0 && merged[n-1].Hi == r.Lo {
			merged[n-1].Hi = r.Hi
			merged[n-1].Results = append(merged[n-1].Results, r.Results...)
		} else {
			merged = append(merged, r)
		}
	}
	s.ranges = merged
	// Return a copy of the headers with shared result slices: Flush
	// serializes outside the section lock.
	return append([]ckRange(nil), merged...)
}

// Checkpoint is a crash-safe journal for a deterministic sequence of
// campaign runs. It is safe for use by the campaign workers (record) and
// the flusher concurrently; the section cursor itself advances only
// between runs.
type Checkpoint struct {
	mu       sync.Mutex
	path     string
	sections []*ckSection
	cursor   int
	flexible bool
}

// Path returns the journal's on-disk location.
func (ck *Checkpoint) Path() string { return ck.path }

// ContentAddressed switches the journal from strict positional section
// matching to matching by content identity. Strict mode (the CLI default)
// refuses a resume whose next campaign differs from the journaled one —
// the right guard when the journal path is user-chosen and could belong to
// a run with different flags. Content-addressed mode is for callers that
// already bind the journal path to the run's full identity (rescued names
// journals by the job-spec digest): there a divergent section order is not
// user error but a cache effect — a run whose early campaigns were served
// from a warm artifact store journals only its later ones, and the cold
// re-run must still find them.
func (ck *Checkpoint) ContentAddressed() { ck.flexible = true }

// NewCheckpoint starts a fresh journal at path. Nothing is written until
// the first Flush.
func NewCheckpoint(path string) *Checkpoint {
	return &Checkpoint{path: path}
}

// OpenCheckpoint opens a journal for a CLI run: with resume, any existing
// journal at path is loaded (a missing file starts fresh); without resume,
// an existing file is refused so a stale journal from a different run can
// never be silently clobbered or misapplied.
func OpenCheckpoint(path string, resume bool) (*Checkpoint, error) {
	if !resume {
		if _, err := os.Stat(path); err == nil {
			return nil, fmt.Errorf("fault: checkpoint %s already exists; pass -resume to continue it or remove the file", path)
		}
		return NewCheckpoint(path), nil
	}
	return LoadCheckpoint(path)
}

// LoadCheckpoint reads a journal written by Flush. A missing file yields
// an empty (fresh) checkpoint; a corrupt file is an error.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	ck := NewCheckpoint(path)
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return ck, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := ck.read(f); err != nil {
		return nil, fmt.Errorf("fault: checkpoint %s: %w", path, err)
	}
	return ck, nil
}

// ckLine is the union of the journal's line shapes (header, section,
// range), distinguished by which fields are present.
type ckLine struct {
	V       *int            `json:"v,omitempty"`
	Kind    string          `json:"kind,omitempty"`
	Section *int            `json:"section,omitempty"`
	ID      *CampaignKey    `json:"id,omitempty"`
	Lo      int             `json:"lo"`
	Hi      int             `json:"hi"`
	Digest  string          `json:"digest,omitempty"`
	Results json.RawMessage `json:"results,omitempty"`
}

const ckKind = "rescue-campaign-checkpoint"

func (ck *Checkpoint) read(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	lineNo := 0
	sawHeader := false
	var cur *ckSection
	for sc.Scan() {
		lineNo++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ln ckLine
		if err := json.Unmarshal(raw, &ln); err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if !sawHeader && ln.V == nil {
			return fmt.Errorf("line %d: missing journal header", lineNo)
		}
		switch {
		case ln.V != nil:
			if *ln.V != 1 || ln.Kind != ckKind {
				return fmt.Errorf("line %d: not a %s v1 journal", lineNo, ckKind)
			}
			sawHeader = true
		case ln.ID != nil:
			if ln.Section == nil || *ln.Section != len(ck.sections) {
				return fmt.Errorf("line %d: section out of order", lineNo)
			}
			cur = &ckSection{id: *ln.ID}
			ck.sections = append(ck.sections, cur)
		case ln.Results != nil:
			if cur == nil {
				return fmt.Errorf("line %d: range before any section", lineNo)
			}
			if got := resultsDigest(ln.Results); got != ln.Digest {
				return fmt.Errorf("line %d: results digest mismatch (journal corrupt?)", lineNo)
			}
			var results []Result
			if err := json.Unmarshal(ln.Results, &results); err != nil {
				return fmt.Errorf("line %d: %v", lineNo, err)
			}
			if ln.Lo < 0 || ln.Hi < ln.Lo || ln.Hi-ln.Lo != len(results) || ln.Hi > cur.id.NFaults {
				return fmt.Errorf("line %d: range [%d,%d) inconsistent with %d results (section has %d faults)",
					lineNo, ln.Lo, ln.Hi, len(results), cur.id.NFaults)
			}
			cur.ranges = append(cur.ranges, ckRange{Lo: ln.Lo, Hi: ln.Hi, Results: results})
		default:
			return fmt.Errorf("line %d: unrecognized journal line", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(ck.sections) == 0 {
		return fmt.Errorf("empty or headerless journal")
	}
	return nil
}

// section binds the next campaign run of the flow to its journal section.
// A loaded section must match the run's identity exactly; divergence means
// the flow was re-run with different inputs and resuming would be wrong.
func (ck *Checkpoint) section(id CampaignKey) (*ckSection, error) {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.cursor < len(ck.sections) {
		s := ck.sections[ck.cursor]
		if s.id == id {
			ck.cursor++
			return s, nil
		}
		if !ck.flexible {
			return nil, fmt.Errorf("fault: checkpoint %s section %d was journaled by a different run "+
				"(journal %+v, this run %+v) — same seed, design, and flags are required to resume",
				ck.path, ck.cursor, s.id, id)
		}
		// Content-addressed: claim the matching journaled section wherever
		// it is, preserving the relative order of the ones skipped over.
		for i := ck.cursor + 1; i < len(ck.sections); i++ {
			if ck.sections[i].id == id {
				match := ck.sections[i]
				copy(ck.sections[ck.cursor+1:i+1], ck.sections[ck.cursor:i])
				ck.sections[ck.cursor] = match
				ck.cursor++
				return match, nil
			}
		}
		// Not journaled at all: a fresh section, inserted at the cursor.
		fresh := &ckSection{id: id}
		ck.sections = append(ck.sections, nil)
		copy(ck.sections[ck.cursor+1:], ck.sections[ck.cursor:])
		ck.sections[ck.cursor] = fresh
		ck.cursor++
		return fresh, nil
	}
	s := &ckSection{id: id}
	ck.sections = append(ck.sections, s)
	ck.cursor++
	return s, nil
}

func resultsDigest(raw []byte) string {
	h := fnv.New64a()
	h.Write(raw)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Flush atomically persists the whole journal: write to a temp file in the
// same directory, fsync, rename over the target. Safe to call while a
// campaign is recording; the snapshot is internally consistent.
func (ck *Checkpoint) Flush() error {
	ck.mu.Lock()
	defer ck.mu.Unlock()
	if ck.path == "" {
		return nil
	}
	dir := filepath.Dir(ck.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(ck.path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	bw := bufio.NewWriterSize(tmp, 1<<20)
	enc := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		bw.Write(b)
		return bw.WriteByte('\n')
	}
	v := 1
	if err := enc(ckLine{V: &v, Kind: ckKind}); err != nil {
		tmp.Close()
		return err
	}
	for si, s := range ck.sections {
		sec := si
		id := s.id
		if err := enc(ckLine{Section: &sec, ID: &id}); err != nil {
			tmp.Close()
			return err
		}
		for _, r := range s.normalize() {
			raw, err := json.Marshal(r.Results)
			if err != nil {
				tmp.Close()
				return err
			}
			if err := enc(ckLine{Lo: r.Lo, Hi: r.Hi, Digest: resultsDigest(raw), Results: raw}); err != nil {
				tmp.Close()
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), ck.path)
}
