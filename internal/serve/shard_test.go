package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"rescue/internal/fault"
	"rescue/internal/rtl"
	"rescue/internal/scan"
	"rescue/internal/serve"
)

// miniRunner is a campaign-bearing job kind for shard tests: fast, and
// byte-deterministic across executions — every call derives the identical
// sim, faults, and therefore CampaignKey, the property real workers get
// from loading the same design.
func miniRunner(ctx context.Context, rc serve.RunContext, _ json.RawMessage) ([]byte, error) {
	d, err := rtl.Build(rtl.Small(), rtl.RescueDesign)
	if err != nil {
		return nil, err
	}
	c, err := scan.Insert(d.N, 1)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(61))
	var pats []*scan.Pattern
	for w := 0; w < 2; w++ {
		p := c.NewPattern(64)
		for i := range p.FFVals {
			p.FFVals[i] = r.Uint64()
		}
		for i := range p.PIVals {
			p.PIVals[i] = r.Uint64()
		}
		pats = append(pats, p)
	}
	sim := fault.NewSim(c, pats)
	faults := fault.NewUniverse(d.N).Collapsed[:200]
	camp := fault.NewCampaign(sim, fault.CampaignConfig{Workers: 2})
	res, st, err := camp.RunCheckpoint(ctx, rc.Env.Ck, faults)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	for i, r := range res {
		fmt.Fprintf(&buf, "%4d %v %d\n", i, r.Detected, len(r.Fails))
	}
	fmt.Fprintf(&buf, "faults=%d\n", st.Faults)
	return buf.Bytes(), nil
}

func shardTestKinds() map[string]serve.Runner {
	kinds := testKinds(make(chan struct{}))
	kinds["mini"] = miniRunner
	return kinds
}

// captureKey runs the mini flow under a shard plan whose Exec always
// declines, recording the campaign key and window a coordinator would
// dispatch — the only supported way to learn a key outside the fault
// package, exactly as rescue-shard does.
func captureKey(t *testing.T) (fault.CampaignKey, int, int) {
	t.Helper()
	var key fault.CampaignKey
	var lo, hi int
	plan := &fault.ShardPlan{
		Shards:    1,
		MinFaults: 1,
		Exec: func(ctx context.Context, k fault.CampaignKey, l, h int) (*fault.ShardResult, error) {
			key, lo, hi = k, l, h
			return nil, fmt.Errorf("capture only")
		},
	}
	ctx := fault.WithShardPlan(context.Background(), plan)
	if _, err := miniRunner(ctx, serve.RunContext{Workers: 2}, nil); err != nil {
		t.Fatalf("capture run: %v", err)
	}
	if key.NFaults != 200 {
		t.Fatalf("captured key %+v, want NFaults=200", key)
	}
	return key, lo, hi
}

// TestServeShardKind: a shard job computes one fault window of an inner
// flow and returns a digest-sealed ShardResult; malformed shard specs fail
// loudly instead of returning something mergeable.
func TestServeShardKind(t *testing.T) {
	key, lo, hi := captureKey(t)
	s := newTestServer(t, serve.Config{Kinds: shardTestKinds(), Workers: 2})

	spec, err := serve.ShardSpec(serve.Spec{Kind: "mini"}, key, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(spec)
	sn, resp := s.submit(t, string(body))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit shard job: %d", resp.StatusCode)
	}
	s.waitState(t, sn.ID, serve.StateSucceeded, time.Minute)
	code, out := s.get(t, "/jobs/"+sn.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("shard result: %d %s", code, out)
	}
	var res fault.ShardResult
	if err := json.Unmarshal(out, &res); err != nil {
		t.Fatalf("shard result is not a ShardResult: %v\n%s", err, out)
	}
	if res.Key != key || res.Lo != lo || res.Hi != hi {
		t.Fatalf("shard result window %+v [%d,%d), want %+v [%d,%d)", res.Key, res.Lo, res.Hi, key, lo, hi)
	}
	if err := res.Verify(); err != nil {
		t.Fatalf("shard result fails verification: %v", err)
	}
	if len(res.Results) != hi-lo {
		t.Fatalf("shard carries %d results, want %d", len(res.Results), hi-lo)
	}

	// Malformed shard jobs fail; none of them may produce a result.
	keyJSON, _ := json.Marshal(key)
	bad := []struct {
		name, params, wantErr string
	}{
		{"nested shard", fmt.Sprintf(`{"flow":{"kind":"shard"},"key":%s,"lo":0,"hi":10}`, keyJSON), "nest"},
		{"unknown inner kind", fmt.Sprintf(`{"flow":{"kind":"nope"},"key":%s,"lo":0,"hi":10}`, keyJSON), "unknown"},
		{"inverted window", fmt.Sprintf(`{"flow":{"kind":"mini"},"key":%s,"lo":10,"hi":5}`, keyJSON), "window"},
		{"window past the campaign", fmt.Sprintf(`{"flow":{"kind":"mini"},"key":%s,"lo":0,"hi":5000}`, keyJSON), "window"},
		{"flow without the campaign", fmt.Sprintf(`{"flow":{"kind":"system"},"key":%s,"lo":0,"hi":10}`, keyJSON), "never reached"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			sn, resp := s.submit(t, fmt.Sprintf(`{"kind":"shard","params":%s}`, tc.params))
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit: %d", resp.StatusCode)
			}
			deadline := time.Now().Add(time.Minute)
			var got serve.Snapshot
			for {
				code, b := s.get(t, "/jobs/"+sn.ID)
				if code != http.StatusOK {
					t.Fatalf("GET job: %d", code)
				}
				if err := json.Unmarshal(b, &got); err != nil {
					t.Fatal(err)
				}
				if got.State.Done() || time.Now().After(deadline) {
					break
				}
				time.Sleep(10 * time.Millisecond)
			}
			if got.State != serve.StateFailed {
				t.Fatalf("job state %s, want failed", got.State)
			}
			if !strings.Contains(got.Error, tc.wantErr) {
				t.Fatalf("error %q does not mention %q", got.Error, tc.wantErr)
			}
		})
	}
}

// TestServeDeleteTerminal: cancelling a job that already reached a
// terminal state is a 409 conflict — the job exists, its outcome is
// settled — never a 404 and never a silent 200.
func TestServeDeleteTerminal(t *testing.T) {
	s := newTestServer(t, serve.Config{Kinds: shardTestKinds()})
	sn, _ := s.submit(t, `{"kind":"system"}`)
	s.waitState(t, sn.ID, serve.StateSucceeded, time.Minute)

	req, _ := http.NewRequest(http.MethodDelete, s.ts.URL+"/jobs/"+sn.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE on terminal job: %d, want 409", resp.StatusCode)
	}
	var msg struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&msg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg.Error, "succeeded") {
		t.Fatalf("conflict body %q does not name the terminal state", msg.Error)
	}
	// The job is still there, untouched.
	code, b := s.get(t, "/jobs/"+sn.ID)
	if code != http.StatusOK {
		t.Fatalf("GET after refused delete: %d", code)
	}
	var after serve.Snapshot
	if err := json.Unmarshal(b, &after); err != nil {
		t.Fatal(err)
	}
	if after.State != serve.StateSucceeded {
		t.Fatalf("state mutated to %s by refused delete", after.State)
	}
}

// TestServeJournalEndpoint: a job that flushed a checkpoint journal
// exports it over GET /jobs/{id}/journal; jobs without one 404.
func TestServeJournalEndpoint(t *testing.T) {
	kinds := shardTestKinds()
	// ckfail journals one campaign, flushes, then fails — the deterministic
	// stand-in for a crashed job whose journal a coordinator wants to salvage.
	kinds["ckfail"] = func(ctx context.Context, rc serve.RunContext, raw json.RawMessage) ([]byte, error) {
		if _, err := miniRunner(ctx, rc, raw); err != nil {
			return nil, err
		}
		if rc.Env.Ck != nil {
			if err := rc.Env.Ck.Flush(); err != nil {
				return nil, err
			}
		}
		return nil, fmt.Errorf("synthetic failure after flush")
	}

	s := newTestServer(t, serve.Config{Kinds: kinds, CheckpointDir: t.TempDir(), Workers: 2})
	sn, _ := s.submit(t, `{"kind":"ckfail"}`)
	s.waitState(t, sn.ID, serve.StateFailed, time.Minute)

	code, b := s.get(t, "/jobs/"+sn.ID+"/journal")
	if code != http.StatusOK {
		t.Fatalf("journal fetch: %d %s", code, b)
	}
	if len(b) == 0 || !strings.Contains(string(b), "nFaults") {
		t.Fatalf("journal carries no campaign sections:\n%s", b)
	}

	// A successful campaign job consumes its journal: 404 afterwards.
	ok, _ := s.submit(t, `{"kind":"mini"}`)
	s.waitState(t, ok.ID, serve.StateSucceeded, time.Minute)
	if code, _ := s.get(t, "/jobs/"+ok.ID+"/journal"); code != http.StatusNotFound {
		t.Fatalf("journal of succeeded job: %d, want 404", code)
	}

	// With checkpointing off the route answers 404, not 500.
	s2 := newTestServer(t, serve.Config{Kinds: shardTestKinds()})
	sn2, _ := s2.submit(t, `{"kind":"system"}`)
	s2.waitState(t, sn2.ID, serve.StateSucceeded, time.Minute)
	if code, _ := s2.get(t, "/jobs/"+sn2.ID+"/journal"); code != http.StatusNotFound {
		t.Fatalf("journal with checkpointing off: %d, want 404", code)
	}
}
