// Package bpred implements the branch prediction substrate of Table 1: an
// 8KB hybrid predictor (bimodal + gshare with a chooser), a 1KB 4-way BTB,
// and a return-address stack. Faults in these structures are chipkill in
// the paper's model; as the extension the paper's related work suggests,
// the BTB can optionally be wrapped in a self-healing array (Bower et al.)
// so defective entries degrade capacity instead of killing the core.
package bpred

import "rescue/internal/selfheal"

// Config sizes the predictor.
type Config struct {
	BimodalEntries int // 2-bit counters
	GshareEntries  int // 2-bit counters
	ChooserEntries int // 2-bit chooser counters
	HistoryBits    int
	BTBSets        int
	BTBWays        int
	RASEntries     int
}

// Default returns the paper's 8KB hybrid predictor with a 1KB 4-way BTB.
// 8KB of 2-bit counters across three tables ~ 10K+10K+12K counters; we use
// power-of-two sizes: 8K bimodal + 16K gshare + 8K chooser = 8KB total.
func Default() Config {
	return Config{
		BimodalEntries: 8192,
		GshareEntries:  16384,
		ChooserEntries: 8192,
		HistoryBits:    14,
		BTBSets:        64, // 64 sets * 4 ways * ~4B entry = 1KB
		BTBWays:        4,
		RASEntries:     16,
	}
}

// Predictor is a hybrid direction predictor plus BTB and RAS.
type Predictor struct {
	cfg     Config
	bimodal []uint8
	gshare  []uint8
	chooser []uint8 // 0..1 -> bimodal, 2..3 -> gshare
	history uint64

	btbTag [][]uint64
	btbTgt [][]uint64
	btbLRU [][]uint8
	// btbHeal, when non-nil, guards BTB entries: unusable entries always
	// miss and are never allocated (self-healing array extension).
	btbHeal *selfheal.Array

	ras    []uint64
	rasTop int

	// Stats
	Lookups, Hits int64
}

// New builds a predictor.
func New(cfg Config) *Predictor {
	p := &Predictor{
		cfg:     cfg,
		bimodal: make([]uint8, cfg.BimodalEntries),
		gshare:  make([]uint8, cfg.GshareEntries),
		chooser: make([]uint8, cfg.ChooserEntries),
		ras:     make([]uint64, cfg.RASEntries),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1 // weakly not-taken
	}
	for i := range p.gshare {
		p.gshare[i] = 1
	}
	for i := range p.chooser {
		p.chooser[i] = 2 // weakly prefer gshare
	}
	p.btbTag = make([][]uint64, cfg.BTBSets)
	p.btbTgt = make([][]uint64, cfg.BTBSets)
	p.btbLRU = make([][]uint8, cfg.BTBSets)
	for s := range p.btbTag {
		p.btbTag[s] = make([]uint64, cfg.BTBWays)
		p.btbTgt[s] = make([]uint64, cfg.BTBWays)
		p.btbLRU[s] = make([]uint8, cfg.BTBWays)
	}
	return p
}

func (p *Predictor) bimodalIdx(pc uint64) int {
	return int((pc >> 3) % uint64(len(p.bimodal)))
}

func (p *Predictor) gshareIdx(pc uint64) int {
	h := p.history & ((1 << uint(p.cfg.HistoryBits)) - 1)
	return int(((pc >> 3) ^ h) % uint64(len(p.gshare)))
}

func (p *Predictor) chooserIdx(pc uint64) int {
	return int((pc >> 3) % uint64(len(p.chooser)))
}

// PredictDirection returns the predicted taken/not-taken for a branch.
func (p *Predictor) PredictDirection(pc uint64) bool {
	p.Lookups++
	if p.chooser[p.chooserIdx(pc)] >= 2 {
		return p.gshare[p.gshareIdx(pc)] >= 2
	}
	return p.bimodal[p.bimodalIdx(pc)] >= 2
}

// EnableSelfHeal wraps the BTB in a self-healing array with the given
// fraction of defective entries and spare entries (deterministic per seed).
func (p *Predictor) EnableSelfHeal(faultFrac float64, spares int, seed int64) error {
	a, err := selfheal.New(p.cfg.BTBSets*p.cfg.BTBWays, spares)
	if err != nil {
		return err
	}
	a.InjectRandom(faultFrac, seed)
	p.btbHeal = a
	return nil
}

// btbUsable reports whether a BTB entry may be read or allocated.
func (p *Predictor) btbUsable(set, way int) bool {
	if p.btbHeal == nil {
		return true
	}
	return p.btbHeal.Usable(set*p.cfg.BTBWays + way)
}

// PredictTarget consults the BTB; ok reports a hit.
func (p *Predictor) PredictTarget(pc uint64) (target uint64, ok bool) {
	set := int((pc >> 3) % uint64(p.cfg.BTBSets))
	for w := 0; w < p.cfg.BTBWays; w++ {
		if !p.btbUsable(set, w) {
			continue
		}
		if p.btbTag[set][w] == pc && p.btbTgt[set][w] != 0 {
			p.btbLRU[set][w] = 0
			for o := 0; o < p.cfg.BTBWays; o++ {
				if o != w && p.btbLRU[set][o] < 255 {
					p.btbLRU[set][o]++
				}
			}
			return p.btbTgt[set][w], true
		}
	}
	return 0, false
}

// Update trains the tables with the branch outcome.
func (p *Predictor) Update(pc uint64, taken bool, target uint64) {
	bi, gi, ci := p.bimodalIdx(pc), p.gshareIdx(pc), p.chooserIdx(pc)
	bPred := p.bimodal[bi] >= 2
	gPred := p.gshare[gi] >= 2
	// chooser: move toward the component that was right
	if bPred != gPred {
		if gPred == taken {
			if p.chooser[ci] < 3 {
				p.chooser[ci]++
			}
		} else {
			if p.chooser[ci] > 0 {
				p.chooser[ci]--
			}
		}
	}
	sat := func(c *uint8, up bool) {
		if up && *c < 3 {
			*c++
		}
		if !up && *c > 0 {
			*c--
		}
	}
	sat(&p.bimodal[bi], taken)
	sat(&p.gshare[gi], taken)
	p.history = p.history<<1 | b2u(taken)
	if (bPred == taken && p.chooser[ci] < 2) || (gPred == taken && p.chooser[ci] >= 2) {
		p.Hits++
	}
	if taken {
		set := int((pc >> 3) % uint64(p.cfg.BTBSets))
		// hit update or LRU replace
		victim, worst, hit := -1, uint8(0), false
		for w := 0; w < p.cfg.BTBWays; w++ {
			if !p.btbUsable(set, w) {
				continue // never allocate into a defective entry
			}
			if p.btbTag[set][w] == pc && p.btbTgt[set][w] != 0 {
				victim, hit = w, true
				break
			}
			if victim < 0 || p.btbLRU[set][w] >= worst {
				worst = p.btbLRU[set][w]
				victim = w
			}
		}
		_ = hit
		if victim < 0 {
			return // whole set defective: degrade, don't allocate
		}
		p.btbTag[set][victim] = pc
		p.btbTgt[set][victim] = target
		p.btbLRU[set][victim] = 0
		for w := 0; w < p.cfg.BTBWays; w++ {
			if w != victim && p.btbLRU[set][w] < 255 {
				p.btbLRU[set][w]++ // age the rest so insertions spread
			}
		}
	}
}

// Push records a call on the return-address stack.
func (p *Predictor) Push(retAddr uint64) {
	p.ras[p.rasTop%len(p.ras)] = retAddr
	p.rasTop++
}

// Pop predicts a return target.
func (p *Predictor) Pop() (uint64, bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)], true
}

func b2u(v bool) uint64 {
	if v {
		return 1
	}
	return 0
}
