package ici

import "fmt"

// This file implements the three ICI transformations of Section 3.2. All
// three turn intra-cycle communication into inter-cycle communication (or
// remove the sharing that caused it); they operate on component graphs and
// return the IDs of any nodes they create.

// CycleSplit inserts a pipeline latch on the logic->logic edge from->to,
// turning the intra-cycle dependence into an inter-cycle one (Section
// 3.2.1, Figure 3a->3b). The cost — one extra cycle of latency on that
// path — is the performance model's concern, not the graph's.
func (g *Graph) CycleSplit(from, to NodeID) (NodeID, error) {
	if g.Nodes[from].Kind != Logic || g.Nodes[to].Kind != Logic {
		return 0, fmt.Errorf("ici: CycleSplit needs a logic->logic edge, got %v->%v",
			g.Nodes[from].Kind, g.Nodes[to].Kind)
	}
	if !g.hasEdge(from, to) {
		return 0, fmt.Errorf("ici: no edge %s->%s", g.Name(from), g.Name(to))
	}
	latch := g.Add(fmt.Sprintf("L(%s->%s)", g.Name(from), g.Name(to)), Latch)
	g.Disconnect(from, to)
	g.Connect(from, latch)
	g.Connect(latch, to)
	return latch, nil
}

func (g *Graph) hasEdge(from, to NodeID) bool {
	for _, s := range g.out[from] {
		if s == to {
			return true
		}
	}
	return false
}

// Privatize replicates logic node n so that each consumer in groups[i]
// reads its own copy (Section 3.2.2, Figure 3c). groups partitions n's
// logic consumers; len(groups) == number of copies after the call (full
// privatization passes one singleton group per consumer, partial
// privatization passes fewer, larger groups). Copy 0 reuses n itself. Each
// copy inherits all of n's inputs. Returns the newly created copies.
func (g *Graph) Privatize(n NodeID, groups [][]NodeID) ([]NodeID, error) {
	if g.Nodes[n].Kind != Logic {
		return nil, fmt.Errorf("ici: Privatize target must be logic, got %v", g.Nodes[n].Kind)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("ici: Privatize needs at least one consumer group")
	}
	// validate that groups cover exactly n's consumers
	consumers := map[NodeID]bool{}
	for _, s := range g.out[n] {
		consumers[s] = true
	}
	covered := map[NodeID]bool{}
	for _, grp := range groups {
		for _, c := range grp {
			if !consumers[c] {
				return nil, fmt.Errorf("ici: %s is not a consumer of %s", g.Name(c), g.Name(n))
			}
			if covered[c] {
				return nil, fmt.Errorf("ici: consumer %s appears in two groups", g.Name(c))
			}
			covered[c] = true
		}
	}
	if len(covered) != len(consumers) {
		return nil, fmt.Errorf("ici: groups cover %d of %d consumers", len(covered), len(consumers))
	}
	ins := append([]NodeID(nil), g.in[n]...)
	var copies []NodeID
	for gi, grp := range groups {
		var copyNode NodeID
		if gi == 0 {
			copyNode = n
			// detach consumers not in group 0
			for _, s := range append([]NodeID(nil), g.out[n]...) {
				inGrp := false
				for _, c := range grp {
					if c == s {
						inGrp = true
					}
				}
				if !inGrp {
					g.Disconnect(n, s)
				}
			}
			continue
		}
		copyNode = g.Add(fmt.Sprintf("%s'%d", g.Name(n), gi), Logic)
		for _, p := range ins {
			g.Connect(p, copyNode)
		}
		for _, c := range grp {
			g.Connect(copyNode, c)
		}
		copies = append(copies, copyNode)
	}
	return copies, nil
}

// RotateDependence moves the pipeline latch of a single-stage loop across
// node n (Section 3.2.3, Figure 4a->4b). Before: preds(n) -> n -> latch ->
// consumers. After: each pred of n gets its own latch slice in front of n,
// and n drives the latch's old consumers directly. The rotation only moves
// logic relative to the latch — total loop latency is unchanged. Returns
// the new per-predecessor latches.
func (g *Graph) RotateDependence(latch NodeID) ([]NodeID, error) {
	if g.Nodes[latch].Kind != Latch {
		return nil, fmt.Errorf("ici: RotateDependence target must be a latch")
	}
	if len(g.in[latch]) != 1 {
		return nil, fmt.Errorf("ici: latch %s must have exactly one driver, has %d",
			g.Name(latch), len(g.in[latch]))
	}
	n := g.in[latch][0]
	if g.Nodes[n].Kind != Logic {
		return nil, fmt.Errorf("ici: latch driver must be logic")
	}
	consumers := append([]NodeID(nil), g.out[latch]...)
	preds := append([]NodeID(nil), g.in[n]...)

	// n now drives the latch's old consumers directly (intra-cycle)
	g.Disconnect(n, latch)
	for _, c := range consumers {
		g.Disconnect(latch, c)
		g.Connect(n, c)
	}
	// each predecessor's signal now crosses a latch before reaching n
	var newLatches []NodeID
	for i, p := range preds {
		g.Disconnect(p, n)
		var l NodeID
		if i == 0 {
			l = latch // reuse the original latch node for the first slice
		} else {
			l = g.Add(fmt.Sprintf("L(%s->%s)", g.Name(p), g.Name(n)), Latch)
			newLatches = append(newLatches, l)
		}
		g.Connect(p, l)
		g.Connect(l, n)
	}
	return newLatches, nil
}
