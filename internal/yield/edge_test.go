package yield

import (
	"math"
	"testing"
)

// TestPoissonLimit pins the alpha→∞ limit: the negative-binomial yield
// (1+λ/α)^(−α) must converge to the Poisson e^(−λ), and from below
// (clustering always helps yield, so finite alpha is an upper bound).
func TestPoissonLimit(t *testing.T) {
	for _, lam := range []float64{0.01, 0.1, 1, 5, 20} {
		want := PoissonClean(lam)
		if got := NegBinomialYieldAlpha(lam, 1e8); math.Abs(got-want) > 1e-7 {
			t.Errorf("lambda=%v: NB(alpha=1e8)=%.12f, Poisson=%.12f", lam, got, want)
		}
		prev := PoissonClean(lam) // limit; every finite alpha must exceed it
		for _, alpha := range []float64{1e6, 1e4, 100, 10, 2, 1} {
			nb := NegBinomialYieldAlpha(lam, alpha)
			if nb < prev {
				t.Errorf("lambda=%v: NB not monotone in alpha: NB(%v)=%.12f < %.12f", lam, alpha, nb, prev)
			}
			prev = nb
		}
	}
}

// TestZeroDensityYieldsOne pins the λ=0 edge exactly: a block with zero
// mean fault count is clean with probability exactly 1 under every model
// — not approximately, exactly, so downstream products stay bit-stable.
func TestZeroDensityYieldsOne(t *testing.T) {
	if y := NegBinomialYield(0); y != 1 {
		t.Errorf("NegBinomialYield(0) = %v, want exactly 1", y)
	}
	for _, alpha := range []float64{0.5, 1, 2, 100} {
		if y := NegBinomialYieldAlpha(0, alpha); y != 1 {
			t.Errorf("NegBinomialYieldAlpha(0, %v) = %v, want exactly 1", alpha, y)
		}
	}
	if y := PoissonClean(0); y != 1 {
		t.Errorf("PoissonClean(0) = %v, want exactly 1", y)
	}
	if p := PairProb(0); p != [3]float64{1, 0, 0} {
		t.Errorf("PairProb(0) = %v, want exactly {1,0,0}", p)
	}
}

// TestMixGammaMatchesClosedForm cross-checks the Simpson quadrature
// against the closed-form negative binomial (the mixture of PoissonClean
// IS the negative binomial) across the usable alpha range and ten decades
// of defect density. Tolerances were calibrated against the fixed-step
// integrator: production alpha=2 holds to 1e-5 absolute everywhere;
// alpha=1 keeps a constant pdf(0)·h/3 endpoint term (~5e-3) that only
// matters once the true yield has decayed below it.
func TestMixGammaMatchesClosedForm(t *testing.T) {
	cases := []struct {
		alpha, maxLambda, tol float64
	}{
		{1, 100, 5e-4},
		{2, 1000, 1e-5},
		{4, 1e5, 1e-5},
		{10, 1e5, 1e-5},
	}
	for _, c := range cases {
		for _, lam := range []float64{1e-9, 1e-4, 0.01, 1, 10, 100, 1000, 1e5} {
			if lam > c.maxLambda {
				continue
			}
			lam := lam
			got := MixGammaAlpha(c.alpha, func(x float64) float64 { return PoissonClean(lam * x) })
			want := NegBinomialYieldAlpha(lam, c.alpha)
			if math.Abs(got-want) > c.tol {
				t.Errorf("alpha=%v lambda=%v: mix=%.10f closed=%.10f (tol %v)",
					c.alpha, lam, got, want, c.tol)
			}
		}
	}
}

// TestMixGammaExtremeDensity pins the integrator's behavior where the
// quadrature is stressed: the result must stay a probability, decrease
// monotonically in λ, and saturate to ~0 (alpha=2 has pdf(0)=0, so the
// x=0 endpoint contributes nothing and extreme densities decay cleanly).
func TestMixGammaExtremeDensity(t *testing.T) {
	prev := math.Inf(1)
	for _, lam := range []float64{1e-9, 1e-6, 1e-3, 1, 1e3, 1e6, 1e9} {
		lam := lam
		y := MixGamma(func(x float64) float64 { return PoissonClean(lam * x) })
		if y < 0 || y > 1+1e-8 {
			t.Errorf("lambda=%v: mixture yield %v outside [0,1]", lam, y)
		}
		if y > prev+1e-12 {
			t.Errorf("lambda=%v: mixture yield %v not monotone (prev %v)", lam, y, prev)
		}
		prev = y
	}
	if y := MixGamma(func(x float64) float64 { return PoissonClean(1e6 * x) }); y > 1e-6 {
		t.Errorf("lambda=1e6: mixture yield %v did not saturate to 0", y)
	}
	// The mixing density itself integrates to 1 for alpha >= 1; the
	// alpha < 1 singularity at x=0 is a documented integrator limitation.
	for _, alpha := range []float64{1, 2, 10} {
		if n := MixGammaAlpha(alpha, func(x float64) float64 { return 1 }); math.Abs(n-1) > 1e-8 {
			t.Errorf("alpha=%v: gamma pdf integrates to %.12f, want 1", alpha, n)
		}
	}
}
