// Package sched is the multi-tenant admission controller and fair
// scheduler behind rescued's job queue. It replaces the single bounded
// FIFO with per-tenant queues drained by deficit-weighted round-robin
// (DRR), so one greedy client degrades its own service instead of
// everyone's — the serving-layer analogue of the paper's thesis that a
// defective unit should cost its own capacity, not the whole die.
//
// The scheduler admits or sheds at enqueue time:
//
//   - a global cap bounds total queued work (memory),
//   - a per-tenant cap bounds one tenant's queued work (fairness),
//   - a per-tenant in-flight limit bounds one tenant's running work,
//   - a client-supplied deadline sheds up front when the estimated
//     queue wait already exceeds it (no point queueing doomed work).
//
// Every shed carries an honest per-tenant Retry-After derived from the
// observed mean job duration and the tenant's fair share of slots.
//
// Within a tenant, two priority classes (interactive > batch) reorder
// the queue; they never preempt running jobs. Across tenants, DRR
// grants each active tenant credit proportional to its weight every
// round, so over any round each backlogged tenant gets exactly its
// weighted share of dispatches.
package sched

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Class is a job priority class within a tenant's queue.
type Class uint8

const (
	// ClassBatch is the default: FIFO within the tenant.
	ClassBatch Class = iota
	// ClassInteractive jumps ahead of queued batch work of the same
	// tenant. It never preempts a running job.
	ClassInteractive
)

// String renders the wire name.
func (c Class) String() string {
	if c == ClassInteractive {
		return "interactive"
	}
	return "batch"
}

// ParseClass maps the wire name to a Class; "" is batch.
func ParseClass(s string) (Class, error) {
	switch s {
	case "", "batch":
		return ClassBatch, nil
	case "interactive":
		return ClassInteractive, nil
	}
	return ClassBatch, fmt.Errorf("unknown class %q (want batch or interactive)", s)
}

// Config parameterizes a Scheduler.
type Config struct {
	// Slots is the number of concurrently dispatched jobs the wait
	// estimator assumes. 0 = 1.
	Slots int
	// GlobalCap bounds total queued entries across all tenants.
	// 0 = unlimited.
	GlobalCap int
	// TenantCap bounds one tenant's queued entries. 0 = GlobalCap.
	// Ignored when fairness is disabled.
	TenantCap int
	// MaxInflight bounds one tenant's dispatched-but-unreleased entries;
	// a tenant at its limit is skipped by the round-robin until a
	// release. 0 = unlimited. Ignored when fairness is disabled.
	MaxInflight int
	// Weights gives per-tenant DRR weights; unlisted tenants get
	// DefaultWeight. All weights must be >= 1.
	Weights map[string]int
	// DefaultWeight is the weight for tenants absent from Weights. 0 = 1.
	DefaultWeight int
	// Disable reverts to a single global FIFO with only the global cap —
	// the pre-fairness behavior, kept for A/B measurement. Per-tenant
	// caps, weights, in-flight limits, and classes are ignored; deadline
	// shedding still applies, against the global wait estimate.
	Disable bool
	// JobSeconds returns the observed mean job duration in seconds,
	// feeding the wait estimator. nil or non-positive values fall back
	// to 1s.
	JobSeconds func() float64
	// OnDequeue, when set, observes each dispatch: the tenant, class,
	// and how long the entry waited in queue. Called without the
	// scheduler lock held.
	OnDequeue func(tenant string, class Class, wait time.Duration)
}

// ShedError reports an admission rejection with an honest retry hint.
type ShedError struct {
	Tenant string
	Reason string // "queue full", "tenant queue full", "deadline unmeetable"
	// Deadline marks deadline-based sheds (the client's deadline cannot
	// be met; retrying without relaxing it is pointless).
	Deadline bool
	// RetryAfter is the suggested client backoff in whole seconds,
	// clamped to [1, 60].
	RetryAfter int
	// EstWait is the wait estimate that triggered a deadline shed.
	EstWait time.Duration
}

func (e *ShedError) Error() string {
	if e.Deadline {
		return fmt.Sprintf("shed tenant %s: %s (estimated wait %s)", e.Tenant, e.Reason, e.EstWait.Round(time.Millisecond))
	}
	return fmt.Sprintf("shed tenant %s: %s", e.Tenant, e.Reason)
}

// ErrClosed is returned by Enqueue after Close.
var ErrClosed = errors.New("scheduler closed")

type entry struct {
	tenant  *tenant
	class   Class
	payload any
	at      time.Time
}

type tenant struct {
	name   string
	weight int

	credit   int // remaining dispatches this DRR round
	qi, qb   []*entry
	inflight int
	active   bool // member of the round-robin ring

	admitted, shed, dispatched, completed int64
}

func (t *tenant) qlen() int { return len(t.qi) + len(t.qb) }

// pop takes the next entry: interactive before batch, FIFO within each.
func (t *tenant) pop() *entry {
	if len(t.qi) > 0 {
		e := t.qi[0]
		t.qi = t.qi[1:]
		return e
	}
	e := t.qb[0]
	t.qb = t.qb[1:]
	return e
}

// Scheduler is the admission controller + DRR dispatcher. All methods
// are safe for concurrent use.
type Scheduler struct {
	mu   sync.Mutex
	cond *sync.Cond
	cfg  Config

	tenants map[string]*tenant
	ring    []*tenant // active (backlogged) tenants in round order
	cursor  int       // ring index the next scan starts from
	queued  int       // total queued entries
	running int       // total dispatched-but-unreleased entries
	fifo    []*entry  // the single queue in Disable mode
	closed  bool
}

// New builds a Scheduler.
func New(cfg Config) *Scheduler {
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	if cfg.DefaultWeight < 1 {
		cfg.DefaultWeight = 1
	}
	if cfg.TenantCap == 0 {
		cfg.TenantCap = cfg.GlobalCap
	}
	s := &Scheduler{cfg: cfg, tenants: map[string]*tenant{}}
	s.cond = sync.NewCond(&s.mu)
	return s
}

func (s *Scheduler) tenantLocked(name string) *tenant {
	t, ok := s.tenants[name]
	if !ok {
		w := s.cfg.DefaultWeight
		if cw, ok := s.cfg.Weights[name]; ok && cw >= 1 {
			w = cw
		}
		t = &tenant{name: name, weight: w}
		s.tenants[name] = t
	}
	return t
}

// Enqueue admits one entry for the tenant or sheds it with a ShedError.
// deadline <= 0 means no deadline. The payload is returned later by
// Next.
func (s *Scheduler) Enqueue(tenantName string, class Class, deadline time.Duration, payload any) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	t := s.tenantLocked(tenantName)

	if s.cfg.GlobalCap > 0 && s.queued >= s.cfg.GlobalCap {
		t.shed++
		return &ShedError{Tenant: tenantName, Reason: "queue full", RetryAfter: s.retryAfterLocked(t)}
	}
	if !s.cfg.Disable && s.cfg.TenantCap > 0 && t.qlen() >= s.cfg.TenantCap {
		t.shed++
		return &ShedError{Tenant: tenantName, Reason: "tenant queue full", RetryAfter: s.retryAfterLocked(t)}
	}
	if deadline > 0 {
		if est := s.estimateLocked(t); est > deadline {
			t.shed++
			return &ShedError{Tenant: tenantName, Reason: "deadline unmeetable", Deadline: true,
				RetryAfter: s.retryAfterLocked(t), EstWait: est}
		}
	}

	e := &entry{tenant: t, class: class, payload: payload, at: time.Now()}
	if s.cfg.Disable {
		s.fifo = append(s.fifo, e)
	} else {
		if class == ClassInteractive {
			t.qi = append(t.qi, e)
		} else {
			t.qb = append(t.qb, e)
		}
		if !t.active {
			// Joins the ring with zero credit; the next replenishment
			// deals it in, so a returning tenant cannot bank a burst.
			t.active = true
			s.ring = append(s.ring, t)
		}
	}
	t.admitted++
	s.queued++
	s.cond.Signal()
	return nil
}

// Next blocks until an entry is dispatchable or the scheduler closes.
// It returns the payload and a release func the caller must invoke when
// the work finishes (it frees the tenant's in-flight slot). ok is false
// after Close.
func (s *Scheduler) Next() (payload any, release func(), ok bool) {
	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return nil, nil, false
		}
		if e := s.pickLocked(); e != nil {
			t := e.tenant
			t.inflight++
			t.dispatched++
			s.running++
			s.queued--
			wait := time.Since(e.at)
			s.mu.Unlock()
			if fn := s.cfg.OnDequeue; fn != nil {
				fn(t.name, e.class, wait)
			}
			rel := func() {
				s.mu.Lock()
				t.inflight--
				t.completed++
				s.running--
				// A tenant parked at its in-flight limit becomes
				// dispatchable again; wake every waiting slot.
				s.cond.Broadcast()
				s.mu.Unlock()
			}
			return e.payload, rel, true
		}
		s.cond.Wait()
	}
}

// pickLocked selects the next entry per DRR, or nil when nothing is
// dispatchable (empty, or every backlogged tenant is at its in-flight
// limit).
func (s *Scheduler) pickLocked() *entry {
	if s.cfg.Disable {
		if len(s.fifo) == 0 {
			return nil
		}
		e := s.fifo[0]
		s.fifo = s.fifo[1:]
		return e
	}
	for pass := 0; pass < 2; pass++ {
		n := len(s.ring)
		for i := 0; i < n; i++ {
			idx := (s.cursor + i) % n
			t := s.ring[idx]
			if t.credit < 1 || s.capped(t) {
				continue
			}
			// Serve this tenant until its credit runs out: the cursor
			// stays here so the burst order is A,A,A,B for weights 3:1.
			t.credit--
			s.cursor = idx
			e := t.pop()
			if t.qlen() == 0 {
				s.deactivate(idx)
			}
			return e
		}
		// No credit anywhere. If some tenant is still dispatchable,
		// start a new round: reset (not add — an idle round must not
		// bank credit) every active tenant's credit to its weight.
		dispatchable := false
		for _, t := range s.ring {
			if !s.capped(t) {
				dispatchable = true
				break
			}
		}
		if !dispatchable {
			return nil
		}
		for _, t := range s.ring {
			t.credit = t.weight
		}
	}
	return nil // unreachable: after a replenish some tenant has credit
}

func (s *Scheduler) capped(t *tenant) bool {
	return s.cfg.MaxInflight > 0 && t.inflight >= s.cfg.MaxInflight
}

// deactivate removes ring[idx] — a tenant whose queue just emptied —
// and zeroes its credit (the classic DRR rule: an empty queue forfeits
// its deficit, so idleness cannot be banked into a later burst).
func (s *Scheduler) deactivate(idx int) {
	t := s.ring[idx]
	t.active = false
	t.credit = 0
	s.ring = append(s.ring[:idx], s.ring[idx+1:]...)
	if idx < s.cursor {
		s.cursor--
	}
	if len(s.ring) == 0 {
		s.cursor = 0
	} else {
		s.cursor %= len(s.ring)
	}
}

// jobSecondsLocked returns the mean observed job duration, floored at a
// 1s prior when unobserved.
func (s *Scheduler) jobSeconds() float64 {
	if s.cfg.JobSeconds != nil {
		if v := s.cfg.JobSeconds(); v > 0 {
			return v
		}
	}
	return 1.0
}

// estimateLocked estimates how long a new entry for t would wait in
// queue: the tenant's backlog (queued + in-flight) divided by the
// tenant's fair share of slots, at the observed mean job duration. With
// fairness disabled the estimate is global: the whole queue drains
// ahead of the newcomer.
func (s *Scheduler) estimateLocked(t *tenant) time.Duration {
	mean := s.jobSeconds()
	slots := float64(s.cfg.Slots)
	if s.cfg.Disable {
		ahead := float64(s.queued + s.running)
		return time.Duration(mean * ahead / slots * float64(time.Second))
	}
	// Fair share: this tenant's weight over all tenants currently
	// competing (backlogged or running), itself included.
	total := 0
	for _, o := range s.tenants {
		if o == t || o.active || o.inflight > 0 {
			total += o.weight
		}
	}
	if total < t.weight {
		total = t.weight
	}
	share := float64(t.weight) / float64(total)
	ahead := float64(t.qlen() + t.inflight)
	return time.Duration(mean * ahead / (slots * share) * float64(time.Second))
}

func (s *Scheduler) retryAfterLocked(t *tenant) int {
	secs := int(s.estimateLocked(t).Seconds() + 0.5)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// EstimateWait reports the current queue-wait estimate for a tenant.
func (s *Scheduler) EstimateWait(tenantName string) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.estimateLocked(s.tenantLocked(tenantName))
}

// RetryAfter reports the per-tenant backoff hint in seconds, clamped to
// [1, 60].
func (s *Scheduler) RetryAfter(tenantName string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retryAfterLocked(s.tenantLocked(tenantName))
}

// Queued reports the total queued entries.
func (s *Scheduler) Queued() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// TenantSnapshot is one tenant's scheduling state, for /metrics.
type TenantSnapshot struct {
	Name     string
	Weight   int
	Queued   int
	Inflight int

	Admitted, Shed, Dispatched, Completed int64
}

// Tenant snapshots one tenant by name.
func (s *Scheduler) Tenant(name string) (TenantSnapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[name]
	if !ok {
		return TenantSnapshot{}, false
	}
	return snap(t), true
}

// Tenants snapshots every tenant ever seen, sorted by name.
func (s *Scheduler) Tenants() []TenantSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantSnapshot, 0, len(s.tenants))
	for _, t := range s.tenants {
		out = append(out, snap(t))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func snap(t *tenant) TenantSnapshot {
	return TenantSnapshot{
		Name: t.name, Weight: t.weight,
		Queued: t.qlen(), Inflight: t.inflight,
		Admitted: t.admitted, Shed: t.shed,
		Dispatched: t.dispatched, Completed: t.completed,
	}
}

// Close shuts the scheduler down: Enqueue starts returning ErrClosed,
// blocked Next calls return ok=false, and every undelivered payload is
// returned (in dispatch-ish order) so the caller can fail them over.
func (s *Scheduler) Close() []any {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var out []any
	for _, e := range s.fifo {
		out = append(out, e.payload)
	}
	s.fifo = nil
	// Ring order, interactive before batch per tenant: close enough to
	// dispatch order for fail-over purposes, and deterministic.
	for _, t := range s.ring {
		for _, e := range t.qi {
			out = append(out, e.payload)
		}
		for _, e := range t.qb {
			out = append(out, e.payload)
		}
		t.qi, t.qb = nil, nil
		t.active = false
		t.credit = 0
	}
	s.ring = nil
	s.queued = 0
	s.cond.Broadcast()
	return out
}
