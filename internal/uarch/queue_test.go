package uarch

import (
	"testing"

	"rescue/internal/isa"
	"rescue/internal/workload"
)

// mkSim builds a Rescue simulator without running it, for white-box queue
// tests.
func mkSim(t *testing.T, p Params) *Sim {
	t.Helper()
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(p, prof)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// addEntry dispatches a fake instruction directly into the int queue.
func addEntry(s *Sim, class isa.Class) int {
	rob := s.robTail
	s.robTail = (s.robTail + 1) % len(s.rob)
	s.robCount++
	s.seq++
	s.rob[rob] = robEntry{
		inst:    isa.Inst{Class: class},
		seq:     s.seq,
		state:   inQueue,
		present: true, resultReady: 0,
		src1Rob: -1, src2Rob: -1, lsqIdx: -1,
	}
	s.intQ.insert(rob)
	return rob
}

func TestRescueInsertGoesToNewHalf(t *testing.T) {
	s := mkSim(t, RescueParams())
	rob := addEntry(s, isa.IntALU)
	if len(s.intQ.new.entries) != 1 || s.intQ.new.entries[0] != rob {
		t.Fatalf("entry not in new half: old=%v new=%v", s.intQ.old.entries, s.intQ.new.entries)
	}
}

func TestCompactionIsCycleSplit(t *testing.T) {
	s := mkSim(t, RescueParams())
	rob := addEntry(s, isa.IntALU)
	s.rob[rob].resultReady = never // keep it waiting so it can move

	// cycle 1 of maintenance: the old half's request is not yet latched,
	// so nothing moves new -> buffer
	s.intQ.reqPrev = false
	s.compact(s.intQ)
	if len(s.intQ.buf) != 0 {
		t.Fatal("moved to buffer without a latched request")
	}
	// the request is now latched (old half has space)
	if !s.intQ.reqPrev {
		t.Fatal("request should be latched after a cycle with free old-half slots")
	}
	// cycle 2: the entry moves into the buffer...
	s.compact(s.intQ)
	if len(s.intQ.buf) != 1 || len(s.intQ.new.entries) != 0 {
		t.Fatalf("buffer=%v new=%v after request", s.intQ.buf, s.intQ.new.entries)
	}
	// ...and cycle 3 lands it in the old half
	s.compact(s.intQ)
	if len(s.intQ.old.entries) != 1 {
		t.Fatalf("old=%v after two compaction cycles", s.intQ.old.entries)
	}
}

func TestCompactionBufferBounded(t *testing.T) {
	p := RescueParams()
	s := mkSim(t, p)
	for i := 0; i < p.CompBufSlots+3; i++ {
		rob := addEntry(s, isa.IntALU)
		s.rob[rob].resultReady = never
	}
	s.intQ.reqPrev = true
	s.compact(s.intQ)
	if len(s.intQ.buf) > p.CompBufSlots {
		t.Fatalf("buffer %d exceeds %d slots", len(s.intQ.buf), p.CompBufSlots)
	}
}

func TestDeadNewHalfInsertsIntoOld(t *testing.T) {
	p := RescueParams()
	p.Degr.IntIQHalvesDown = 1
	s := mkSim(t, p)
	rob := addEntry(s, isa.IntALU)
	if len(s.intQ.old.entries) != 1 || s.intQ.old.entries[0] != rob {
		t.Fatalf("entry should bypass the dead new half: old=%v new=%v",
			s.intQ.old.entries, s.intQ.new.entries)
	}
}

func TestQueueCapacityRescue(t *testing.T) {
	p := RescueParams()
	s := mkSim(t, p)
	newCap := p.IntIQSize/2 - p.CompBufSlots
	for i := 0; i < newCap; i++ {
		if !s.intQ.hasSpace() {
			t.Fatalf("space exhausted after %d inserts, cap %d", i, newCap)
		}
		addEntry(s, isa.IntALU)
	}
	if s.intQ.hasSpace() {
		t.Fatal("new half should be full")
	}
}

func TestBaselineQueueSingleList(t *testing.T) {
	s := mkSim(t, DefaultParams())
	for i := 0; i < DefaultParams().IntIQSize; i++ {
		if !s.intQ.hasSpace() {
			t.Fatalf("baseline queue full after %d", i)
		}
		addEntry(s, isa.IntALU)
	}
	if s.intQ.hasSpace() {
		t.Fatal("baseline queue should be full at IntIQSize")
	}
	if len(s.intQ.new.entries) != 0 {
		t.Fatal("baseline keeps a single age-ordered list")
	}
}

func TestSelectOldestFirst(t *testing.T) {
	s := mkSim(t, DefaultParams())
	var robs []int
	for i := 0; i < 8; i++ {
		robs = append(robs, addEntry(s, isa.IntALU))
	}
	s.now = 10
	budget := s.fullBudget()
	sel := s.selectHalf(&s.intQ.old, 4, &budget)
	if len(sel) != 4 {
		t.Fatalf("selected %d, want 4", len(sel))
	}
	for i := 0; i < 4; i++ {
		if sel[i] != robs[i] {
			t.Fatalf("selection not age-ordered: %v vs %v", sel, robs[:4])
		}
	}
}

func TestFUBudgetClasses(t *testing.T) {
	p := DefaultParams()
	prof, _ := workload.ByName("gzip")
	s, _ := New(p, prof)
	b := s.fullBudget()
	// 4 int ways: 4 ALU ops
	for i := 0; i < 4; i++ {
		if !b.take(isa.IntALU) {
			t.Fatalf("ALU slot %d refused", i)
		}
	}
	if b.take(isa.IntALU) {
		t.Fatal("fifth ALU op must be refused")
	}
	b = s.fullBudget()
	// 2 memory ports (one per int group)
	if !b.take(isa.Load) || !b.take(isa.Store) {
		t.Fatal("two memory ports expected")
	}
	if b.take(isa.Load) {
		t.Fatal("third memory op must be refused")
	}
	// degraded: one int group down -> 1 memory port
	p2 := RescueParams()
	p2.Degr.IntGroupsDisabled = 1
	s2, _ := New(p2, prof)
	b2 := s2.fullBudget()
	if !b2.take(isa.Load) {
		t.Fatal("one port should remain")
	}
	if b2.take(isa.Load) {
		t.Fatal("second port should be gone")
	}
}
