package rtl

import (
	"fmt"
	"testing"

	"rescue/internal/netlist"
)

// lsqFixture builds the small Rescue design and returns a fresh state.
func lsqFixture(t *testing.T) (*Design, *netlist.State) {
	t.Helper()
	d, err := Build(Small(), RescueDesign)
	if err != nil {
		t.Fatal(err)
	}
	return d, d.N.NewState()
}

// driveSearchKey puts an address into exec way 0's output latch (the LSQ
// search key for tree A) and a matching entry into an LSQ half.
func driveSearchKey(t *testing.T, d *Design, s *netlist.State, half, entry int, addr uint64) {
	t.Helper()
	cfg := d.Cfg
	for b := 0; b < cfg.AddrW; b++ {
		bit := addr&(1<<uint(b)) != 0
		s.SetBool(findFFQ(t, d.N, fmt.Sprintf("ex.i0.res[%d]", b)), bit)
		s.SetBool(findFFQ(t, d.N, fmt.Sprintf("lsq%d.e%d.addr[%d]", half, entry, b)), bit)
	}
	s.SetBool(findFFQ(t, d.N, fmt.Sprintf("lsq%d.e%d.valid", half, entry)), true)
}

// searchResultA runs the two-cycle pipelined search and returns tree A's
// root outputs (found, half).
func searchResultA(t *testing.T, d *Design, s *netlist.State) (bool, bool) {
	t.Helper()
	// cycle 1: sub-trees search and latch
	s.Cycle(netlist.NoFault)
	// cycle 2: roots combine the latched sub-results
	s.EvalComb(netlist.NoFault)
	var found, half bool
	for _, out := range d.N.Outputs {
		switch d.N.NetName(out) {
		case "lsq.resA.found":
			found = s.Get(out)&1 != 0
		case "lsq.resA.half":
			half = s.Get(out)&1 != 0
		}
	}
	return found, half
}

func TestLSQSearchFindsMatch(t *testing.T) {
	d, s := lsqFixture(t)
	driveSearchKey(t, d, s, 0, 1, 0xA)
	found, half := searchResultA(t, d, s)
	if !found {
		t.Fatal("matching entry not found by tree A")
	}
	if half {
		t.Fatal("match reported in half 1, planted in half 0")
	}
}

func TestLSQSearchMissesOnDifferentAddr(t *testing.T) {
	d, s := lsqFixture(t)
	driveSearchKey(t, d, s, 0, 1, 0xA)
	// change the key after planting: flip one exec bit
	s.SetBool(findFFQ(t, d.N, "ex.i0.res[0]"), false)
	s.SetBool(findFFQ(t, d.N, "lsq0.e1.addr[0]"), true)
	found, _ := searchResultA(t, d, s)
	if found {
		t.Fatal("search hit with mismatched address")
	}
}

func TestLSQRootMasksFaultyHalf(t *testing.T) {
	d, s := lsqFixture(t)
	driveSearchKey(t, d, s, 0, 1, 0xA)
	// fault-map LSQ half 0: the root must ignore its sub-tree result.
	// Drive both the register and its (normally fuse-driven) input so the
	// setting survives the search's capture cycle.
	s.SetBool(findFFQ(t, d.N, "fmap.lsq.q[0]"), true)
	setInput(t, d.N, s, "fmap.lsq[0]", true)
	found, _ := searchResultA(t, d, s)
	if found {
		t.Fatal("root did not mask the fault-mapped half's sub-tree")
	}
}

func TestLSQHalf1MatchReported(t *testing.T) {
	d, s := lsqFixture(t)
	driveSearchKey(t, d, s, 1, 0, 0x6)
	found, half := searchResultA(t, d, s)
	if !found || !half {
		t.Fatalf("half-1 match: found=%v half=%v", found, half)
	}
}

// TestRenameForwardsNewerMapping drives the cycle-split rename: way 1's
// source matches way 0's destination in the split latch, so way 1 must take
// way 0's allocated tag instead of the (stale) table read.
func TestRenameForwardsNewerMapping(t *testing.T) {
	d, s := lsqFixture(t)
	cfg := d.Cfg
	// in the cycle-split latch: way 0 defines arch reg 5 with alloc tag 9;
	// way 1 reads arch reg 5, its table read says tag 2
	setBus := func(name string, w int, v uint64) {
		for b := 0; b < w; b++ {
			s.SetBool(findFFQ(t, d.N, fmt.Sprintf("%s[%d]", name, b)), v&(1<<uint(b)) != 0)
		}
	}
	s.SetBool(findFFQ(t, d.N, "ren1.i0.valid.q"), true)
	setBus("ren1.i0.dest.q", cfg.ArchW, 5)
	setBus("ren1.i0.alloc.q", cfg.TagW, 9)
	s.SetBool(findFFQ(t, d.N, "ren1.i1.valid.q"), true)
	setBus("ren1.i1.src1.q", cfg.ArchW, 5)
	setBus("ren1.i1.t1.q", cfg.TagW, 2)
	s.EvalComb(netlist.NoFault)
	// way 1's renamed src1 tag (D of the rename output latch) must be 9
	var got uint64
	for b := 0; b < cfg.TagW; b++ {
		if s.Get(findFFD(t, d.N, fmt.Sprintf("ren2.i1.s1.q[%d]", b)))&1 != 0 {
			got |= 1 << uint(b)
		}
	}
	if got != 9 {
		t.Fatalf("forwarded tag = %d, want 9", got)
	}
	// and with way 0 fault-mapped, the match must be ignored (tag 2)
	s2 := d.N.NewState()
	s2.SetBool(findFFQ(t, d.N, "fmap.fe.q[0]"), true)
	s2.SetBool(findFFQ(t, d.N, "ren1.i0.valid.q"), true)
	for b := 0; b < cfg.ArchW; b++ {
		s2.SetBool(findFFQ(t, d.N, fmt.Sprintf("ren1.i0.dest.q[%d]", b)), 5&(1<<uint(b)) != 0)
		s2.SetBool(findFFQ(t, d.N, fmt.Sprintf("ren1.i1.src1.q[%d]", b)), 5&(1<<uint(b)) != 0)
	}
	for b := 0; b < cfg.TagW; b++ {
		s2.SetBool(findFFQ(t, d.N, fmt.Sprintf("ren1.i0.alloc.q[%d]", b)), 9&(1<<uint(b)) != 0)
		s2.SetBool(findFFQ(t, d.N, fmt.Sprintf("ren1.i1.t1.q[%d]", b)), 2&(1<<uint(b)) != 0)
	}
	s2.SetBool(findFFQ(t, d.N, "ren1.i1.valid.q"), true)
	s2.EvalComb(netlist.NoFault)
	got = 0
	for b := 0; b < cfg.TagW; b++ {
		if s2.Get(findFFD(t, d.N, fmt.Sprintf("ren2.i1.s1.q[%d]", b)))&1 != 0 {
			got |= 1 << uint(b)
		}
	}
	if got != 2 {
		t.Fatalf("fault-masked rename forwarded tag = %d, want table value 2", got)
	}
}
