package serve

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"
)

// State is a job's lifecycle state. Transitions are strictly forward:
//
//	queued → running → succeeded | failed | interrupted
//	queued | running → canceled
//
// interrupted is the drain outcome: the job's campaigns flushed their
// checkpoint journal and an identical resubmission resumes them.
type State string

const (
	StateQueued      State = "queued"
	StateRunning     State = "running"
	StateSucceeded   State = "succeeded"
	StateFailed      State = "failed"
	StateCanceled    State = "canceled"
	StateInterrupted State = "interrupted"
)

// Done reports whether the state is terminal.
func (s State) Done() bool {
	switch s {
	case StateSucceeded, StateFailed, StateCanceled, StateInterrupted:
		return true
	}
	return false
}

// Event is one entry of a job's event log, streamed over
// GET /jobs/{id}/events as NDJSON. Seq is 1-based and dense over the
// job's full history; synthetic stream-only lines (keepalive, dropped)
// carry Seq 0.
type Event struct {
	Seq  int       `json:"seq"`
	Time time.Time `json:"time"`
	Type string    `json:"type"` // queued, started, progress, output, done, dropped
	// Msg is human-readable detail (the error for a failed done event).
	Msg string `json:"msg,omitempty"`
	// Done/Total carry campaign progress for progress events.
	Done  int64 `json:"done,omitempty"`
	Total int64 `json:"total,omitempty"`
	// State accompanies done events.
	State State `json:"state,omitempty"`
	// Count accompanies dropped markers: how many events the consumer
	// missed because the bounded log evicted them (or the consumer fell
	// past the per-stream lag bound).
	Count int `json:"count,omitempty"`
}

// Spec is the client-submitted description of a job: a kind name and
// kind-specific parameters. Kind and Params alone are the job's cache
// identity — byte-identical pairs share artifacts and checkpoint
// journals regardless of tenant, so a warm submission stays warm across
// tenants and the digest contract of earlier releases is unchanged.
type Spec struct {
	Kind   string          `json:"kind"`
	Params json.RawMessage `json:"params,omitempty"`
	// Tenant names the submitting client for fair scheduling; the
	// X-Rescue-Client header overrides it. "" = "default".
	Tenant string `json:"tenant,omitempty"`
	// Class is the priority class: "interactive" or "batch" (default).
	// The X-Rescue-Class header overrides it.
	Class string `json:"class,omitempty"`
	// DeadlineMS, when > 0, asks admission to shed the job up front if
	// the estimated queue wait already exceeds this many milliseconds.
	DeadlineMS int64 `json:"deadlineMS,omitempty"`
}

// Job is one submitted unit of work. All mutable fields are guarded by mu;
// readers take snapshots. The changed channel is closed and replaced on
// every mutation, so streamers can wait for news without polling.
type Job struct {
	ID   string `json:"id"`
	Spec Spec   `json:"spec"`
	// Tenant is the normalized tenant identity the job was admitted
	// under (header override applied, "" mapped to "default").
	Tenant string `json:"tenant"`

	mu      sync.Mutex
	state   State
	events  []Event
	evBase  int // events evicted from the front of the bounded log
	evCap   int // max retained events; <= 0 = unbounded
	changed chan struct{}
	output  []byte // the report, once finished
	err     string // failure detail, once finished

	queuedAt   time.Time
	startedAt  time.Time
	finishedAt time.Time

	// ckPath is the job's checkpoint journal on disk, "" when
	// checkpointing is off. Exported over GET /jobs/{id}/journal so a
	// coordinator can salvage an interrupted job's completed chunks.
	ckPath string

	cancel func(error) // context cancellation with cause; set when scheduled

	// pointCtl is the per-point cancellation surface a sweep runner
	// registers while running (nil for every other kind).
	pointCtl pointCanceler
}

// pointCanceler is the slice of sweep.Control the job surface needs:
// cancel one grid point by digest, reporting whether the digest belongs
// to the job's grid.
type pointCanceler interface {
	CancelPoint(digest string) bool
}

// setPointControl registers the running sweep's cancellation control.
func (j *Job) setPointControl(c pointCanceler) {
	j.mu.Lock()
	j.pointCtl = c
	j.mu.Unlock()
}

// pointControl returns the registered control, nil when the job is not a
// running sweep.
func (j *Job) pointControl() pointCanceler {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.pointCtl
}

// setCkPath records the job's journal location once the runner opens it.
func (j *Job) setCkPath(path string) {
	j.mu.Lock()
	j.ckPath = path
	j.mu.Unlock()
}

// journalPath returns the job's journal location, if any.
func (j *Job) journalPath() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ckPath
}

func newJob(id string, spec Spec, tenant string, evCap int) *Job {
	j := &Job{
		ID:       id,
		Spec:     spec,
		Tenant:   tenant,
		state:    StateQueued,
		evCap:    evCap,
		changed:  make(chan struct{}),
		queuedAt: time.Now(),
	}
	j.append(Event{Type: "queued"})
	return j
}

// append records an event and wakes streamers.
func (j *Job) append(ev Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.appendLocked(ev)
}

func (j *Job) appendLocked(ev Event) {
	ev.Seq = j.evBase + len(j.events) + 1
	ev.Time = time.Now()
	if j.evCap > 0 && len(j.events) >= j.evCap {
		// Bounded log: evict the oldest event instead of growing without
		// limit. Streamers that already read past the evicted prefix are
		// unaffected; ones that lag see a dropped marker.
		copy(j.events, j.events[1:])
		j.events[len(j.events)-1] = ev
		j.evBase++
	} else {
		j.events = append(j.events, ev)
	}
	close(j.changed)
	j.changed = make(chan struct{})
}

// setState moves the job forward and records the transition event. Terminal
// states are sticky: a late transition (e.g. the runner finishing after a
// cancel) is dropped, and the first terminal state wins.
func (j *Job) setState(s State, msg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Done() {
		return false
	}
	j.state = s
	switch s {
	case StateRunning:
		j.startedAt = time.Now()
		j.appendLocked(Event{Type: "started"})
	default:
		j.finishedAt = time.Now()
		j.err = msg
		j.appendLocked(Event{Type: "done", State: s, Msg: msg})
	}
	return true
}

// finishOutput stores the completed report. Called before the terminal
// setState so a done event implies the output is readable.
func (j *Job) finishOutput(out []byte) {
	j.mu.Lock()
	j.output = out
	j.mu.Unlock()
}

// Snapshot is the wire representation of a job's status.
type Snapshot struct {
	ID         string     `json:"id"`
	Kind       string     `json:"kind"`
	Tenant     string     `json:"tenant,omitempty"`
	Class      string     `json:"class,omitempty"`
	State      State      `json:"state"`
	Events     int        `json:"events"`
	Error      string     `json:"error,omitempty"`
	QueuedAt   time.Time  `json:"queuedAt"`
	StartedAt  *time.Time `json:"startedAt,omitempty"`
	FinishedAt *time.Time `json:"finishedAt,omitempty"`
}

// snapshot returns the job's current wire status.
func (j *Job) snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	sn := Snapshot{
		ID:       j.ID,
		Kind:     j.Spec.Kind,
		Tenant:   j.Tenant,
		Class:    j.Spec.Class,
		State:    j.state,
		Events:   j.evBase + len(j.events),
		Error:    j.err,
		QueuedAt: j.queuedAt,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		sn.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		sn.FinishedAt = &t
	}
	return sn
}

// eventsSince returns events with Seq > after, how many the bounded log
// already evicted past that cursor (the consumer's dropped count), the
// current state, and a channel closed on the next mutation — the
// building blocks of the NDJSON stream.
func (j *Job) eventsSince(after int) (dropped int, evs []Event, state State, changed <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if after < j.evBase {
		dropped = j.evBase - after
		after = j.evBase
	}
	if rel := after - j.evBase; rel < len(j.events) {
		evs = append(evs, j.events[rel:]...)
	}
	return dropped, evs, j.state, j.changed
}

// result returns the report once the job reached a terminal state.
func (j *Job) result() ([]byte, State, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.output, j.state, j.err
}

// specDigest is the job's content identity — the checkpoint journal and
// dedup key for byte-identical specs. Kind and raw parameter bytes both
// count; clients that resubmit the same body get the same digest.
func specDigest(spec Spec) string {
	params := strings.TrimSpace(string(spec.Params))
	if params == "" || params == "null" {
		params = "{}"
	}
	return fmt.Sprintf("%s-%x", spec.Kind, hashBytes([]byte(spec.Kind+"\x00"+params)))
}
