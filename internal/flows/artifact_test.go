package flows

import (
	"errors"
	"sync"
	"testing"
)

// TestStoreSingleflight: concurrent requesters of one key run one build and
// share the result; all but the builder count as hits.
func TestStoreSingleflight(t *testing.T) {
	s := NewStore()
	gate := make(chan struct{})
	var builds int
	const n = 8
	var wg sync.WaitGroup
	vals := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := s.do("k", func() (any, error) {
				<-gate // hold the build open so the others must join it
				builds++
				return "artifact", nil
			})
			if err != nil {
				t.Errorf("do: %v", err)
			}
			vals[i] = v
		}(i)
	}
	close(gate)
	wg.Wait()
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	for i, v := range vals {
		if v != "artifact" {
			t.Fatalf("requester %d got %v", i, v)
		}
	}
	if s.Builds() != 1 || s.Hits() != n-1 {
		t.Fatalf("counters: builds=%d hits=%d, want 1 and %d", s.Builds(), s.Hits(), n-1)
	}
	if s.Len() != 1 {
		t.Fatalf("store retains %d entries, want 1", s.Len())
	}
}

// TestStoreErrorNotRetained: a failed build is dropped so the next request
// retries instead of being served the stale error.
func TestStoreErrorNotRetained(t *testing.T) {
	s := NewStore()
	boom := errors.New("boom")
	if _, _, err := s.do("k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("first build: %v, want boom", err)
	}
	if s.Len() != 0 {
		t.Fatal("failed build was retained")
	}
	v, hit, err := s.do("k", func() (any, error) { return 42, nil })
	if err != nil || hit || v != 42 {
		t.Fatalf("retry got (%v, hit=%v, %v), want fresh 42", v, hit, err)
	}
}

// TestDigestDeterministic: equal keys address equal artifacts; different
// kinds or fields do not collide.
func TestDigestDeterministic(t *testing.T) {
	a := digest("testprogram", tpKey{Small: true, Variant: "rescue", Seed: 1})
	b := digest("testprogram", tpKey{Small: true, Variant: "rescue", Seed: 1})
	if a != b {
		t.Fatalf("equal keys digest differently: %s vs %s", a, b)
	}
	if a == digest("testprogram", tpKey{Small: true, Variant: "rescue", Seed: 2}) {
		t.Fatal("different seeds collide")
	}
	if a == digest("system", tpKey{Small: true, Variant: "rescue", Seed: 1}) {
		t.Fatal("different kinds collide")
	}
}
