package fault

import (
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// journalFor runs a small checkpointed campaign to completion and returns
// the journal path plus the inputs that produced it.
func journalFor(t *testing.T) (string, *Sim, *Universe) {
	t.Helper()
	sim, u := rescueSim(t, 2, 61)
	path := filepath.Join(t.TempDir(), "ck.journal")
	camp := NewCampaign(sim, CampaignConfig{Workers: 2})
	if _, _, err := camp.RunCheckpoint(context.Background(), NewCheckpoint(path), u.Collapsed[:200]); err != nil {
		t.Fatal(err)
	}
	return path, sim, u
}

// TestOpenCheckpointRefusesExisting pins the no-clobber contract: without
// -resume an existing journal must be refused with guidance, and with
// -resume it must load.
func TestOpenCheckpointRefusesExisting(t *testing.T) {
	path, _, _ := journalFor(t)
	if _, err := OpenCheckpoint(path, false); err == nil {
		t.Fatal("OpenCheckpoint clobbered an existing journal without -resume")
	} else if !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("refusal does not mention -resume: %v", err)
	}
	ck, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatalf("OpenCheckpoint with resume failed: %v", err)
	}
	if len(ck.sections) == 0 {
		t.Fatal("resumed journal loaded no sections")
	}
	// A fresh path works without resume and writes nothing until Flush.
	fresh := filepath.Join(t.TempDir(), "fresh.journal")
	if _, err := OpenCheckpoint(fresh, false); err != nil {
		t.Fatalf("fresh OpenCheckpoint failed: %v", err)
	}
	if _, err := os.Stat(fresh); !os.IsNotExist(err) {
		t.Fatal("fresh checkpoint touched the filesystem before any Flush")
	}
}

// TestCheckpointIdentityMismatch: resuming a journal against a run with
// different inputs (fault list, word range, or config) must be refused,
// not silently rehydrated into wrong results.
func TestCheckpointIdentityMismatch(t *testing.T) {
	path, sim, u := journalFor(t)
	cases := []struct {
		name string
		run  func(ck *Checkpoint) error
	}{
		{"different-faults", func(ck *Checkpoint) error {
			camp := NewCampaign(sim, CampaignConfig{Workers: 2})
			_, _, err := camp.RunCheckpoint(context.Background(), ck, u.Collapsed[:199])
			return err
		}},
		{"different-config", func(ck *Checkpoint) error {
			camp := NewCampaign(sim, CampaignConfig{Workers: 2, Drop: true})
			_, _, err := camp.RunCheckpoint(context.Background(), ck, u.Collapsed[:200])
			return err
		}},
		{"different-words", func(ck *Checkpoint) error {
			camp := NewCampaign(sim, CampaignConfig{Workers: 2})
			_, _, err := camp.RunWordsCheckpoint(context.Background(), ck, u.Collapsed[:200], 0, 1)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ck, err := LoadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			err = tc.run(ck)
			if err == nil || !strings.Contains(err.Error(), "different run") {
				t.Fatalf("mismatched resume returned %v, want identity-mismatch error", err)
			}
		})
	}
	// The identical run still rehydrates.
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	camp := NewCampaign(sim, CampaignConfig{Workers: 4})
	_, st, err := camp.RunCheckpoint(context.Background(), ck, u.Collapsed[:200])
	if err != nil {
		t.Fatalf("identical resume failed: %v", err)
	}
	if st.Rehydrated != 200 {
		t.Fatalf("identical resume rehydrated %d of 200", st.Rehydrated)
	}
}

// TestCheckpointContentAddressed: in content-addressed mode a journaled
// section is found by identity even when the resuming flow runs campaigns
// the journal never saw — the shape a warm-artifact-cache drain leaves
// behind: early campaigns were served from the cache and never journaled,
// so the cold re-run reaches them first.
func TestCheckpointContentAddressed(t *testing.T) {
	path, sim, u := journalFor(t) // one section: faults[:200]
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ck.ContentAddressed()
	camp := NewCampaign(sim, CampaignConfig{Workers: 2})
	// A campaign the journal never saw comes first; strict matching would
	// refuse it, content-addressed matching gives it a fresh section.
	_, st, err := camp.RunCheckpoint(context.Background(), ck, u.Collapsed[200:260])
	if err != nil {
		t.Fatalf("unjournaled campaign failed: %v", err)
	}
	if st.Rehydrated != 0 {
		t.Fatalf("fresh campaign rehydrated %d faults", st.Rehydrated)
	}
	// The journaled campaign still rehydrates fully despite its section no
	// longer being at the cursor position.
	_, st, err = camp.RunCheckpoint(context.Background(), ck, u.Collapsed[:200])
	if err != nil {
		t.Fatalf("journaled campaign failed: %v", err)
	}
	if st.Rehydrated != 200 {
		t.Fatalf("journaled campaign rehydrated %d of 200", st.Rehydrated)
	}
	// The reordered journal reloads cleanly and both sections survive.
	ck2, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck2.sections) != 2 {
		t.Fatalf("flushed journal has %d sections, want 2", len(ck2.sections))
	}
}

// TestCheckpointCorruption: tampered journals must be rejected on load —
// a flipped results digest, a truncated body, and an empty file.
func TestCheckpointCorruption(t *testing.T) {
	path, _, _ := journalFor(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("digest-mismatch", func(t *testing.T) {
		re := regexp.MustCompile(`"digest":"([0-9a-f])`)
		m := re.FindSubmatchIndex(raw)
		if m == nil {
			t.Fatal("journal has no digest line to corrupt")
		}
		bad := append([]byte(nil), raw...)
		if bad[m[2]] == 'f' {
			bad[m[2]] = '0'
		} else {
			bad[m[2]] = 'f'
		}
		p := filepath.Join(t.TempDir(), "bad.journal")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(p); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
			t.Fatalf("corrupted journal loaded: %v", err)
		}
	})

	t.Run("headerless", func(t *testing.T) {
		lines := strings.SplitN(string(raw), "\n", 2)
		if len(lines) != 2 {
			t.Fatal("journal too short")
		}
		p := filepath.Join(t.TempDir(), "headless.journal")
		if err := os.WriteFile(p, []byte(lines[1]), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(p); err == nil {
			t.Fatal("journal without header loaded")
		}
	})

	t.Run("empty-file", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "empty.journal")
		if err := os.WriteFile(p, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(p); err == nil {
			t.Fatal("empty journal loaded")
		}
	})

	t.Run("missing-file", func(t *testing.T) {
		ck, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.journal"))
		if err != nil {
			t.Fatalf("missing journal must start fresh, got %v", err)
		}
		if len(ck.sections) != 0 {
			t.Fatal("missing journal produced sections")
		}
	})
}
