#!/usr/bin/env bash
# Cold-vs-warm serving benchmark for rescued's content-addressed artifact
# cache: submit the small Table 3 campaign twice to one daemon and time
# each job from submission to its event stream completing. The first run
# builds every artifact (netlist, scan chain, ATPG test set); the second
# is served from the cache and must finish at least MIN_SPEEDUP times
# faster, byte-identical to the first.
#
# Emits BENCH_serve.json:
#   {"bench":"serve_table3_small","cold_ms":...,"warm_ms":...,
#    "speedup":...,"min_speedup":...,"cache_hits":...}
#
# Usage: scripts/bench-serve.sh [min speedup]   (default: 5)
set -euo pipefail
cd "$(dirname "$0")/.."

min_speedup=${1:-5}
tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build"
go build -o "$tmp/rescued" ./cmd/rescued

echo "== start rescued"
"$tmp/rescued" -addr 127.0.0.1:0 -quiet >"$tmp/rescued.out" 2>&1 &
daemon_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^listening on //p' "$tmp/rescued.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "FAIL: rescued never came up" >&2; exit 1; }
base="http://$addr"

# run_job submits the spec, blocks on the event stream until the job is
# done, and prints "<job-id> <elapsed-ms>".
run_job() {
    local t0 t1 job
    t0=$(date +%s%N)
    job=$(curl -fsS -X POST -H 'Content-Type: application/json' \
        -d '{"kind":"table3","params":{"small":true,"workers":2}}' \
        "$base/jobs" | grep -o '"id": *"[^"]*"' | head -1 | sed 's/.*"id": *"\([^"]*\)".*/\1/')
    curl -fsS --no-buffer "$base/jobs/$job/events" >/dev/null
    t1=$(date +%s%N)
    echo "$job $(( (t1 - t0) / 1000000 ))"
}

echo "== cold run (builds every artifact)"
read -r cold_job cold_ms < <(run_job)
echo "   cold: ${cold_ms}ms"

echo "== warm run (artifact cache)"
read -r warm_job warm_ms < <(run_job)
echo "   warm: ${warm_ms}ms"

curl -fsS "$base/jobs/$cold_job/result" >"$tmp/cold.txt"
curl -fsS "$base/jobs/$warm_job/result" >"$tmp/warm.txt"
cmp "$tmp/cold.txt" "$tmp/warm.txt" || {
    echo "FAIL: warm result is not byte-identical to cold" >&2
    exit 1
}
hits=$(curl -fsS "$base/metrics" | awk '$1 == "artifact_cache_hits_total" { print $2 }')
if [ -z "$hits" ] || [ "$hits" -lt 1 ]; then
    echo "FAIL: no artifact cache hits recorded (hits='${hits:-missing}')" >&2
    exit 1
fi

# Guard against division by zero on absurdly fast machines.
[ "$warm_ms" -ge 1 ] || warm_ms=1
speedup=$(( cold_ms / warm_ms ))
printf '{"bench":"serve_table3_small","cold_ms":%d,"warm_ms":%d,"speedup":%d,"min_speedup":%d,"cache_hits":%s}\n' \
    "$cold_ms" "$warm_ms" "$speedup" "$min_speedup" "$hits" >BENCH_serve.json
cat BENCH_serve.json

if [ "$speedup" -lt "$min_speedup" ]; then
    echo "FAIL: warm/cold speedup ${speedup}x < required ${min_speedup}x" >&2
    exit 1
fi
echo "PASS: warm serving ${speedup}x faster than cold (>= ${min_speedup}x)"
