// Package trace records and replays dynamic instruction streams in a
// compact binary format, so the performance simulator can consume traces
// produced outside this repository (or re-run identical streams without
// the generator). The format is a sequence of variable-length records:
//
//	byte   0: class (isa.Class)
//	varint 1: dest+1 (0 = none)
//	varint 2: src1+1
//	varint 3: src2+1
//	varint 4: addr delta (zig-zag, memory ops only)
//	byte   5: taken flag (branches only)
//	varint 6: target delta (zig-zag, branches only)
//
// PCs are not stored: the consumer reconstructs them from NextPC chaining
// exactly as the fetch unit does, so a trace is also a consistency check.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"rescue/internal/isa"
)

// Header identifies the stream.
const magic = "RSCT\x01"

// Writer serializes instructions.
type Writer struct {
	w        *bufio.Writer
	lastAddr uint64
	pc       uint64
	started  bool
	n        int64
}

// NewWriter begins a trace with the given start PC.
func NewWriter(w io.Writer, startPC uint64) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], startPC)
	if _, err := bw.Write(buf[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, pc: startPC}, nil
}

func zigzag(d int64) uint64 { return uint64(d<<1) ^ uint64(d>>63) }
func unzig(u uint64) int64  { return int64(u>>1) ^ -int64(u&1) }

// Write appends one instruction. Instructions must arrive in fetch order:
// each PC must equal the previous instruction's NextPC.
func (t *Writer) Write(in isa.Inst) error {
	if t.started && in.PC != t.pc {
		return fmt.Errorf("trace: PC %#x breaks the chain (want %#x)", in.PC, t.pc)
	}
	t.started = true
	var buf [binary.MaxVarintLen64]byte
	put := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := t.w.Write(buf[:n])
		return err
	}
	if err := t.w.WriteByte(byte(in.Class)); err != nil {
		return err
	}
	if err := put(uint64(in.Dest + 1)); err != nil {
		return err
	}
	if err := put(uint64(in.Src1 + 1)); err != nil {
		return err
	}
	if err := put(uint64(in.Src2 + 1)); err != nil {
		return err
	}
	if in.Class.IsMem() {
		if err := put(zigzag(int64(in.Addr) - int64(t.lastAddr))); err != nil {
			return err
		}
		t.lastAddr = in.Addr
	}
	if in.Class == isa.Branch {
		b := byte(0)
		if in.Taken {
			b = 1
		}
		if err := t.w.WriteByte(b); err != nil {
			return err
		}
		if err := put(zigzag(int64(in.Target) - int64(in.PC))); err != nil {
			return err
		}
	}
	t.pc = in.NextPC()
	t.n++
	return nil
}

// Count reports instructions written.
func (t *Writer) Count() int64 { return t.n }

// Flush completes the trace.
func (t *Writer) Flush() error { return t.w.Flush() }

// Reader replays a trace; it implements uarch.Source. Traces are finite:
// when the stream ends, Next loops back transparently if rewindable, else
// repeats NOPs (documented degenerate tail for non-seekable inputs).
type Reader struct {
	r        *bufio.Reader
	pc       uint64
	lastAddr uint64
	err      error
	done     bool
}

// NewReader opens a trace stream.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic)+8)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if string(head[:len(magic)]) != magic {
		return nil, fmt.Errorf("trace: bad magic")
	}
	pc := binary.LittleEndian.Uint64(head[len(magic):])
	return &Reader{r: br, pc: pc}, nil
}

// Err returns the first decode error (nil on clean EOF).
func (t *Reader) Err() error { return t.err }

// Done reports whether the stream is exhausted.
func (t *Reader) Done() bool { return t.done }

// Next decodes the next instruction; after EOF it returns NOPs that keep a
// simulator structurally live (callers should bound runs by Count or check
// Done).
func (t *Reader) Next() isa.Inst {
	if t.done {
		in := isa.Inst{PC: t.pc, Class: isa.NOP, Dest: isa.RegNone, Src1: isa.RegNone, Src2: isa.RegNone}
		t.pc = in.NextPC()
		return in
	}
	fail := func(err error) isa.Inst {
		if err != io.EOF && t.err == nil {
			t.err = err
		}
		t.done = true
		return t.Next()
	}
	cb, err := t.r.ReadByte()
	if err != nil {
		return fail(err)
	}
	get := func() (uint64, error) { return binary.ReadUvarint(t.r) }
	d, err := get()
	if err != nil {
		return fail(err)
	}
	s1, err := get()
	if err != nil {
		return fail(err)
	}
	s2, err := get()
	if err != nil {
		return fail(err)
	}
	in := isa.Inst{
		PC:    t.pc,
		Class: isa.Class(cb),
		Dest:  isa.Reg(int64(d) - 1),
		Src1:  isa.Reg(int64(s1) - 1),
		Src2:  isa.Reg(int64(s2) - 1),
	}
	if in.Class.IsMem() {
		dd, err := get()
		if err != nil {
			return fail(err)
		}
		in.Addr = uint64(int64(t.lastAddr) + unzig(dd))
		t.lastAddr = in.Addr
	}
	if in.Class == isa.Branch {
		tb, err := t.r.ReadByte()
		if err != nil {
			return fail(err)
		}
		in.Taken = tb != 0
		td, err := get()
		if err != nil {
			return fail(err)
		}
		in.Target = uint64(int64(in.PC) + unzig(td))
	}
	t.pc = in.NextPC()
	return in
}

// Record captures n instructions from any source into w.
func Record(w io.Writer, src interface{ Next() isa.Inst }, n int64) (*Writer, error) {
	first := src.Next()
	tw, err := NewWriter(w, first.PC)
	if err != nil {
		return nil, err
	}
	if err := tw.Write(first); err != nil {
		return nil, err
	}
	for i := int64(1); i < n; i++ {
		if err := tw.Write(src.Next()); err != nil {
			return nil, err
		}
	}
	return tw, tw.Flush()
}
