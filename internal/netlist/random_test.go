package netlist_test

import (
	"bytes"
	"testing"

	"rescue/internal/netlist"
	"rescue/internal/scan"
)

// TestRandomValid checks that every seed yields a structurally valid,
// scannable netlist whose size matches the config knobs.
func TestRandomValid(t *testing.T) {
	for seed := uint64(0); seed < 150; seed++ {
		cfg := netlist.RandomConfig{
			Seed:     seed,
			Gates:    5 + int(seed%60),
			FFs:      1 + int(seed%9),
			Inputs:   1 + int(seed%5),
			Outputs:  1 + int(seed%4),
			MaxFanIn: 2 + int(seed%4),
			Comps:    1 + int(seed%5),
		}
		n := netlist.Random(cfg)
		if err := n.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if n.NumGates() != cfg.Gates {
			t.Fatalf("seed %d: %d gates, want %d", seed, n.NumGates(), cfg.Gates)
		}
		if n.NumFFs() != cfg.FFs {
			t.Fatalf("seed %d: %d FFs, want %d", seed, n.NumFFs(), cfg.FFs)
		}
		if len(n.Outputs) == 0 {
			t.Fatalf("seed %d: no primary outputs", seed)
		}
		c, err := scan.Insert(n, 1+int(seed%3))
		if err != nil {
			t.Fatalf("seed %d: scan insert: %v", seed, err)
		}
		// a capture cycle on a random pattern must not panic
		p := c.NewPattern(64)
		p.PIVals[0] = 0xdeadbeefcafef00d
		c.ApplyTest(p, netlist.NoFault)
	}
}

// TestRandomDeterministic pins that a seed fully names a circuit: two
// generations with the same config are byte-identical in Verilog form.
func TestRandomDeterministic(t *testing.T) {
	cfg := netlist.RandomConfig{Seed: 7, Gates: 30, FFs: 6}
	var a, b bytes.Buffer
	if err := netlist.Random(cfg).WriteVerilog(&a); err != nil {
		t.Fatal(err)
	}
	if err := netlist.Random(cfg).WriteVerilog(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different netlists")
	}
	cfg.Seed = 8
	var c bytes.Buffer
	if err := netlist.Random(cfg).WriteVerilog(&c); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical netlists")
	}
}

// TestRandomCornerCoverage checks the generator actually produces the
// structural corner cases the differential harness exists to exercise:
// direct FF-to-FF transfers, shared D nets, and FF outputs used as
// primary outputs. Without these, the blind spots fixed in the fault
// simulator would never be re-covered by generated circuits.
func TestRandomCornerCoverage(t *testing.T) {
	var ffToFF, sharedD, qAsPO int
	for seed := uint64(0); seed < 100; seed++ {
		n := netlist.Random(netlist.RandomConfig{Seed: seed})
		dCount := map[netlist.NetID]int{}
		for _, ff := range n.FFs {
			dCount[ff.D]++
			if n.DriverFF(ff.D) >= 0 {
				ffToFF++
			}
		}
		for _, c := range dCount {
			if c > 1 {
				sharedD++
			}
		}
		for _, o := range n.Outputs {
			if n.DriverFF(o) >= 0 {
				qAsPO++
			}
		}
	}
	if ffToFF == 0 {
		t.Error("no direct FF-to-FF D connection in 100 seeds")
	}
	if sharedD == 0 {
		t.Error("no shared D net in 100 seeds")
	}
	if qAsPO == 0 {
		t.Error("no FF Q as primary output in 100 seeds")
	}
}
