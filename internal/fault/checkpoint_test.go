package fault

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// journalFor runs a small checkpointed campaign to completion and returns
// the journal path plus the inputs that produced it.
func journalFor(t *testing.T) (string, *Sim, *Universe) {
	t.Helper()
	sim, u := rescueSim(t, 2, 61)
	path := filepath.Join(t.TempDir(), "ck.journal")
	camp := NewCampaign(sim, CampaignConfig{Workers: 2})
	if _, _, err := camp.RunCheckpoint(context.Background(), NewCheckpoint(path), u.Collapsed[:200]); err != nil {
		t.Fatal(err)
	}
	return path, sim, u
}

// TestOpenCheckpointRefusesExisting pins the no-clobber contract: without
// -resume an existing journal must be refused with guidance, and with
// -resume it must load.
func TestOpenCheckpointRefusesExisting(t *testing.T) {
	path, _, _ := journalFor(t)
	if _, err := OpenCheckpoint(path, false); err == nil {
		t.Fatal("OpenCheckpoint clobbered an existing journal without -resume")
	} else if !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("refusal does not mention -resume: %v", err)
	}
	ck, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatalf("OpenCheckpoint with resume failed: %v", err)
	}
	if len(ck.sections) == 0 {
		t.Fatal("resumed journal loaded no sections")
	}
	// A fresh path works without resume and writes nothing until Flush.
	fresh := filepath.Join(t.TempDir(), "fresh.journal")
	if _, err := OpenCheckpoint(fresh, false); err != nil {
		t.Fatalf("fresh OpenCheckpoint failed: %v", err)
	}
	if _, err := os.Stat(fresh); !os.IsNotExist(err) {
		t.Fatal("fresh checkpoint touched the filesystem before any Flush")
	}
}

// TestCheckpointIdentityMismatch: resuming a journal against a run with
// different inputs (fault list, word range, or config) must be refused,
// not silently rehydrated into wrong results.
func TestCheckpointIdentityMismatch(t *testing.T) {
	path, sim, u := journalFor(t)
	cases := []struct {
		name string
		run  func(ck *Checkpoint) error
	}{
		{"different-faults", func(ck *Checkpoint) error {
			camp := NewCampaign(sim, CampaignConfig{Workers: 2})
			_, _, err := camp.RunCheckpoint(context.Background(), ck, u.Collapsed[:199])
			return err
		}},
		{"different-config", func(ck *Checkpoint) error {
			camp := NewCampaign(sim, CampaignConfig{Workers: 2, Drop: true})
			_, _, err := camp.RunCheckpoint(context.Background(), ck, u.Collapsed[:200])
			return err
		}},
		{"different-words", func(ck *Checkpoint) error {
			camp := NewCampaign(sim, CampaignConfig{Workers: 2})
			_, _, err := camp.RunWordsCheckpoint(context.Background(), ck, u.Collapsed[:200], 0, 1)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ck, err := LoadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			err = tc.run(ck)
			if err == nil || !strings.Contains(err.Error(), "different run") {
				t.Fatalf("mismatched resume returned %v, want identity-mismatch error", err)
			}
		})
	}
	// The identical run still rehydrates.
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	camp := NewCampaign(sim, CampaignConfig{Workers: 4})
	_, st, err := camp.RunCheckpoint(context.Background(), ck, u.Collapsed[:200])
	if err != nil {
		t.Fatalf("identical resume failed: %v", err)
	}
	if st.Rehydrated != 200 {
		t.Fatalf("identical resume rehydrated %d of 200", st.Rehydrated)
	}
}

// TestCheckpointContentAddressed: in content-addressed mode a journaled
// section is found by identity even when the resuming flow runs campaigns
// the journal never saw — the shape a warm-artifact-cache drain leaves
// behind: early campaigns were served from the cache and never journaled,
// so the cold re-run reaches them first.
func TestCheckpointContentAddressed(t *testing.T) {
	path, sim, u := journalFor(t) // one section: faults[:200]
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	ck.ContentAddressed()
	camp := NewCampaign(sim, CampaignConfig{Workers: 2})
	// A campaign the journal never saw comes first; strict matching would
	// refuse it, content-addressed matching gives it a fresh section.
	_, st, err := camp.RunCheckpoint(context.Background(), ck, u.Collapsed[200:260])
	if err != nil {
		t.Fatalf("unjournaled campaign failed: %v", err)
	}
	if st.Rehydrated != 0 {
		t.Fatalf("fresh campaign rehydrated %d faults", st.Rehydrated)
	}
	// The journaled campaign still rehydrates fully despite its section no
	// longer being at the cursor position.
	_, st, err = camp.RunCheckpoint(context.Background(), ck, u.Collapsed[:200])
	if err != nil {
		t.Fatalf("journaled campaign failed: %v", err)
	}
	if st.Rehydrated != 200 {
		t.Fatalf("journaled campaign rehydrated %d of 200", st.Rehydrated)
	}
	// The reordered journal reloads cleanly and both sections survive.
	ck2, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ck2.sections) != 2 {
		t.Fatalf("flushed journal has %d sections, want 2", len(ck2.sections))
	}
}

// TestCheckpointCorruption: tampered journals must be rejected on load —
// a flipped results digest, a truncated body, and an empty file.
func TestCheckpointCorruption(t *testing.T) {
	path, _, _ := journalFor(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("digest-mismatch", func(t *testing.T) {
		re := regexp.MustCompile(`"digest":"([0-9a-f])`)
		m := re.FindSubmatchIndex(raw)
		if m == nil {
			t.Fatal("journal has no digest line to corrupt")
		}
		bad := append([]byte(nil), raw...)
		if bad[m[2]] == 'f' {
			bad[m[2]] = '0'
		} else {
			bad[m[2]] = 'f'
		}
		p := filepath.Join(t.TempDir(), "bad.journal")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(p); err == nil || !strings.Contains(err.Error(), "digest mismatch") {
			t.Fatalf("corrupted journal loaded: %v", err)
		}
	})

	t.Run("headerless", func(t *testing.T) {
		lines := strings.SplitN(string(raw), "\n", 2)
		if len(lines) != 2 {
			t.Fatal("journal too short")
		}
		p := filepath.Join(t.TempDir(), "headless.journal")
		if err := os.WriteFile(p, []byte(lines[1]), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(p); err == nil {
			t.Fatal("journal without header loaded")
		}
	})

	t.Run("empty-file", func(t *testing.T) {
		p := filepath.Join(t.TempDir(), "empty.journal")
		if err := os.WriteFile(p, nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(p); err == nil {
			t.Fatal("empty journal loaded")
		}
	})

	t.Run("missing-file", func(t *testing.T) {
		ck, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.journal"))
		if err != nil {
			t.Fatalf("missing journal must start fresh, got %v", err)
		}
		if len(ck.sections) != 0 {
			t.Fatal("missing journal produced sections")
		}
	})
}

// twoSectionJournal runs two checkpointed campaigns against one journal and
// returns its path, the inputs, and the serialized golden results of each
// campaign for byte-identity comparisons.
func twoSectionJournal(t *testing.T) (path string, sim *Sim, u *Universe, want1, want2 []byte) {
	t.Helper()
	sim, u = rescueSim(t, 2, 61)
	path = filepath.Join(t.TempDir(), "two.journal")
	ck := NewCheckpoint(path)
	camp := NewCampaign(sim, CampaignConfig{Workers: 2})
	res1, _, err := camp.RunCheckpoint(context.Background(), ck, u.Collapsed[:200])
	if err != nil {
		t.Fatal(err)
	}
	res2, _, err := camp.RunCheckpoint(context.Background(), ck, u.Collapsed[200:260])
	if err != nil {
		t.Fatal(err)
	}
	return path, sim, u, mustJSON(t, res1), mustJSON(t, res2)
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// journalBlocks splits a journal into its header line and one block of
// lines per section (the section line plus its range lines).
func journalBlocks(t *testing.T, raw []byte) (header string, blocks [][]string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(string(raw), "\n"), "\n") {
		var ln ckLine
		if err := json.Unmarshal([]byte(line), &ln); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		switch {
		case ln.V != nil:
			header = line
		case ln.ID != nil:
			blocks = append(blocks, []string{line})
		default:
			if len(blocks) == 0 {
				t.Fatalf("range line before any section: %q", line)
			}
			blocks[len(blocks)-1] = append(blocks[len(blocks)-1], line)
		}
	}
	if header == "" || len(blocks) == 0 {
		t.Fatalf("journal missing header or sections:\n%s", raw)
	}
	return header, blocks
}

// renumber rewrites a section line's ordinal and (optionally) mutates its
// id, returning the block with the edited first line.
func renumber(t *testing.T, block []string, n int, mutate func(*CampaignKey)) []string {
	t.Helper()
	var ln ckLine
	if err := json.Unmarshal([]byte(block[0]), &ln); err != nil || ln.ID == nil {
		t.Fatalf("block does not start with a section line: %q (%v)", block[0], err)
	}
	ln.Section = &n
	if mutate != nil {
		mutate(ln.ID)
	}
	b, err := json.Marshal(ln)
	if err != nil {
		t.Fatal(err)
	}
	out := append([]string{string(b)}, block[1:]...)
	return out
}

func writeJournal(t *testing.T, header string, blocks ...[]string) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(header + "\n")
	for _, b := range blocks {
		sb.WriteString(strings.Join(b, "\n") + "\n")
	}
	p := filepath.Join(t.TempDir(), "edited.journal")
	if err := os.WriteFile(p, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// resumeBoth replays the two-campaign flow against a loaded journal in
// content-addressed mode and returns each campaign's serialized results
// plus rehydration counts.
func resumeBoth(t *testing.T, path string, sim *Sim, u *Universe) (got1, got2 []byte, re1, re2 int64) {
	t.Helper()
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("edited journal failed to load: %v", err)
	}
	ck.ContentAddressed()
	camp := NewCampaign(sim, CampaignConfig{Workers: 2})
	res1, st1, err := camp.RunCheckpoint(context.Background(), ck, u.Collapsed[:200])
	if err != nil {
		t.Fatalf("campaign 1 resume: %v", err)
	}
	res2, st2, err := camp.RunCheckpoint(context.Background(), ck, u.Collapsed[200:260])
	if err != nil {
		t.Fatalf("campaign 2 resume: %v", err)
	}
	return mustJSON(t, res1), mustJSON(t, res2), st1.Rehydrated, st2.Rehydrated
}

// TestCheckpointFlexibleJournals pins ContentAddressed against journals
// whose physical layout diverged from the flow order: sections reordered
// on disk, a foreign section spliced between the real ones, and a journal
// truncated mid-record or at a record boundary. In every case the resume
// must either restore byte-identical results or fail loudly — never merge
// wrong data quietly.
func TestCheckpointFlexibleJournals(t *testing.T) {
	path, sim, u, want1, want2 := twoSectionJournal(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	header, blocks := journalBlocks(t, raw)
	if len(blocks) != 2 {
		t.Fatalf("journal has %d sections, want 2", len(blocks))
	}

	t.Run("reordered-sections", func(t *testing.T) {
		// Swap the two section blocks (renumbered so the file itself stays
		// well-formed) — the layout a warm-cache drain leaves behind.
		p := writeJournal(t, header,
			renumber(t, blocks[1], 0, nil),
			renumber(t, blocks[0], 1, nil))

		// Strict mode must refuse: the section at the cursor belongs to the
		// other campaign.
		ck, err := LoadCheckpoint(p)
		if err != nil {
			t.Fatalf("reordered journal failed to load: %v", err)
		}
		camp := NewCampaign(sim, CampaignConfig{Workers: 2})
		if _, _, err := camp.RunCheckpoint(context.Background(), ck, u.Collapsed[:200]); err == nil ||
			!strings.Contains(err.Error(), "different run") {
			t.Fatalf("strict resume of reordered journal returned %v, want identity-mismatch error", err)
		}

		// Content-addressed mode finds both sections by identity.
		got1, got2, re1, re2 := resumeBoth(t, p, sim, u)
		if re1 != 200 || re2 != 60 {
			t.Fatalf("rehydrated %d/%d, want 200/60", re1, re2)
		}
		if !bytes.Equal(got1, want1) || !bytes.Equal(got2, want2) {
			t.Fatal("reordered resume diverged from golden results")
		}
	})

	t.Run("foreign-section-interleaved", func(t *testing.T) {
		// A section journaled by some other run (different fault-list
		// digest) sits between the two real ones. Its records are
		// internally consistent — only the identity says it is not ours —
		// so matching by position would rehydrate the wrong results.
		p := writeJournal(t, header,
			renumber(t, blocks[0], 0, nil),
			renumber(t, blocks[0], 1, func(id *CampaignKey) { id.FaultsDigest = "00000000deadbeef" }),
			renumber(t, blocks[1], 2, nil))

		got1, got2, re1, re2 := resumeBoth(t, p, sim, u)
		if re1 != 200 || re2 != 60 {
			t.Fatalf("rehydrated %d/%d, want 200/60", re1, re2)
		}
		if !bytes.Equal(got1, want1) || !bytes.Equal(got2, want2) {
			t.Fatal("resume with foreign section diverged from golden results")
		}
	})

	t.Run("truncated-mid-record", func(t *testing.T) {
		// Cut into the middle of the final record — the shape a crash
		// mid-write would leave if Flush were not atomic. Loading must fail
		// loudly, never deliver a partial section.
		lastStart := bytes.LastIndexByte(bytes.TrimRight(raw, "\n"), '\n') + 1
		cut := lastStart + (len(raw)-lastStart)/2
		p := filepath.Join(t.TempDir(), "torn.journal")
		if err := os.WriteFile(p, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(p); err == nil {
			t.Fatal("journal with torn final record loaded")
		} else if !strings.Contains(err.Error(), "line") {
			t.Fatalf("torn-record error does not name the line: %v", err)
		}
	})

	t.Run("truncated-at-boundary", func(t *testing.T) {
		// Drop the final record cleanly at its line boundary: the journal
		// still loads, the missing range is simply re-simulated, and the
		// merged results are byte-identical to the untruncated run.
		lastStart := bytes.LastIndexByte(bytes.TrimRight(raw, "\n"), '\n') + 1
		p := filepath.Join(t.TempDir(), "short.journal")
		if err := os.WriteFile(p, raw[:lastStart], 0o644); err != nil {
			t.Fatal(err)
		}
		got1, got2, re1, re2 := resumeBoth(t, p, sim, u)
		if re1 != 200 {
			t.Fatalf("campaign 1 rehydrated %d, want 200", re1)
		}
		if re2 >= 60 {
			t.Fatalf("campaign 2 rehydrated %d despite its record being truncated away", re2)
		}
		if !bytes.Equal(got1, want1) || !bytes.Equal(got2, want2) {
			t.Fatal("truncated-journal resume diverged from golden results")
		}
	})
}
