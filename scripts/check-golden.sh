#!/usr/bin/env bash
# Golden equivalence check for the parallel fault-simulation campaign
# engine: regenerate the small-config Table 3 and isolation reports at two
# different worker counts and diff them against the committed golden files.
# Any drift — numeric or ordering — fails the build. Timings are suppressed
# (-timing=false) so the outputs are byte-stable.
#
# Usage: scripts/check-golden.sh [worker counts...]   (default: 1 4)
set -euo pipefail
cd "$(dirname "$0")/.."

workers=("$@")
if [ ${#workers[@]} -eq 0 ]; then
    workers=(1 4)
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

go build -o "$tmp/rescue-atpg" ./cmd/rescue-atpg
go build -o "$tmp/rescue-isolate" ./cmd/rescue-isolate

fail=0
for w in "${workers[@]}"; do
    echo "== table3 (small), workers=$w"
    "$tmp/rescue-atpg" -small -timing=false -workers "$w" > "$tmp/table3_small.txt"
    if ! diff -u results/table3_small.txt "$tmp/table3_small.txt"; then
        echo "FAIL: table3_small.txt drifted at workers=$w" >&2
        fail=1
    fi

    echo "== isolation (small), workers=$w"
    "$tmp/rescue-isolate" -small -per-stage 200 -multi -timing=false -workers "$w" > "$tmp/isolation_small.txt"
    if ! diff -u results/isolation_small.txt "$tmp/isolation_small.txt"; then
        echo "FAIL: isolation_small.txt drifted at workers=$w" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    echo "golden check FAILED" >&2
    exit 1
fi
echo "golden check OK: outputs identical to committed results at workers: ${workers[*]}"
