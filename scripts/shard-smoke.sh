#!/usr/bin/env bash
# End-to-end smoke test for rescue-shard distributed campaign dispatch:
#
#   1. build rescue-shard
#   2. clean run: small Table 3 ATPG sharded across 3 spawned workers —
#      stdout must be byte-identical to the committed single-node golden,
#      with every shard computed remotely and exit code 0
#   3. chaos run: small fab flow across 3 workers with one worker
#      SIGKILLed mid-campaign — the coordinator must reassign its shards
#      and still merge byte-identically to the golden, exit 0
#   4. dead-pool run: every worker URL refuses connections — the
#      coordinator must degrade to local execution, still produce
#      byte-identical output, print a "degraded" notice, and exit 3
#
# Usage: scripts/shard-smoke.sh
set -euo pipefail
cd "$(dirname "$0")/.."

tmp=$(mktemp -d)
cleanup() { rm -rf "$tmp"; }
trap cleanup EXIT

echo "== build"
go build -o "$tmp/rescue-shard" ./cmd/rescue-shard

# remote_shards FILE — the completed-remotely count from a coordinator's
# dispatch stats line on stderr.
remote_shards() {
    sed -n 's/^dispatch: \([0-9][0-9]*\) shards completed remotely.*/\1/p' "$1"
}

echo "== clean run: table3 small across 3 spawned workers"
"$tmp/rescue-shard" -kind table3 -params '{"small":true}' \
    -spawn 3 -min-faults 32 -seed 5 \
    >"$tmp/table3.txt" 2>"$tmp/table3.err"
diff -u results/table3_small.txt "$tmp/table3.txt"
n=$(remote_shards "$tmp/table3.err")
if [ -z "$n" ] || [ "$n" -lt 1 ]; then
    echo "FAIL: clean run completed ${n:-no} shards remotely, want >= 1" >&2
    cat "$tmp/table3.err" >&2
    exit 1
fi
echo "   $n shards completed remotely"

echo "== chaos run: fab small across 3 workers, 1 killed mid-campaign"
"$tmp/rescue-shard" -kind fab -params '{"small":true,"dies":2000}' \
    -spawn 3 -chaos-kill-workers 1 -chaos-after-shards 2 -seed 11 \
    >"$tmp/fab.txt" 2>"$tmp/fab.err"
diff -u results/fab_small.txt "$tmp/fab.txt"
killed=$(sed -n 's/^dispatch: .* \([0-9][0-9]*\) workers killed$/\1/p' "$tmp/fab.err")
if [ "${killed:-0}" -ne 1 ]; then
    echo "FAIL: chaos run killed ${killed:-no} workers, want exactly 1" >&2
    cat "$tmp/fab.err" >&2
    exit 1
fi
n=$(remote_shards "$tmp/fab.err")
if [ -z "$n" ] || [ "$n" -lt 1 ]; then
    echo "FAIL: chaos run completed ${n:-no} shards remotely, want >= 1" >&2
    cat "$tmp/fab.err" >&2
    exit 1
fi
echo "   $n shards completed remotely, $killed worker killed, output byte-identical"

echo "== dead-pool run: every worker refuses connections; must degrade to local"
rc=0
"$tmp/rescue-shard" -kind table3 -params '{"small":true}' \
    -workers http://127.0.0.1:1 -retry-budget 1 -seed 5 \
    >"$tmp/degraded.txt" 2>"$tmp/degraded.err" || rc=$?
if [ "$rc" -ne 3 ]; then
    echo "FAIL: dead-pool run exited $rc, want 3 (degraded)" >&2
    cat "$tmp/degraded.err" >&2
    exit 1
fi
grep -q '^degraded:' "$tmp/degraded.err" || {
    echo "FAIL: dead-pool run printed no degraded notice" >&2
    cat "$tmp/degraded.err" >&2
    exit 1
}
diff -u results/table3_small.txt "$tmp/degraded.txt"
echo "   local fallback byte-identical, exit 3"

echo "PASS: shard smoke (clean + chaos + dead-pool all byte-identical)"
