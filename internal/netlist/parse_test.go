package netlist_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"rescue/internal/netlist"
)

func emit(t testing.TB, n *netlist.Netlist) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := n.WriteVerilog(&b); err != nil {
		t.Fatalf("WriteVerilog: %v", err)
	}
	return b.Bytes()
}

// roundTrip emits n, reparses it, and checks the reparse is functionally
// equivalent with identical interface shape and statistics.
func roundTrip(t testing.TB, n *netlist.Netlist, seed uint64) *netlist.Netlist {
	t.Helper()
	src := emit(t, n)
	back, err := netlist.ParseVerilog(bytes.NewReader(src))
	if err != nil {
		t.Fatalf("seed %d: reparse failed: %v\n%s", seed, err, src)
	}
	a, b := n.Stats(), back.Stats()
	if a.Gates != b.Gates || a.FFs != b.FFs || a.Inputs != b.Inputs ||
		a.Outputs != b.Outputs || a.Pins != b.Pins || !reflect.DeepEqual(a.ByKind, b.ByKind) {
		t.Fatalf("seed %d: stats changed across round trip:\n  orig %+v\n  back %+v", seed, a, b)
	}
	if !reflect.DeepEqual(n.ComponentsUsed(), back.ComponentsUsed()) {
		t.Fatalf("seed %d: components changed: %v vs %v", seed, n.ComponentsUsed(), back.ComponentsUsed())
	}
	if err := netlist.FunctionallyEquivalent(n, back, 8, seed); err != nil {
		t.Fatalf("seed %d: round trip not equivalent: %v", seed, err)
	}
	return back
}

func TestVerilogRoundTrip(t *testing.T) {
	for seed := uint64(0); seed < 60; seed++ {
		n := netlist.Random(netlist.RandomConfig{
			Seed:    seed,
			Gates:   5 + int(seed%50),
			FFs:     1 + int(seed%7),
			Inputs:  1 + int(seed%5),
			Outputs: 1 + int(seed%4),
			Comps:   1 + int(seed%4),
		})
		roundTrip(t, n, seed)
	}
}

// TestVerilogRoundTripIdempotent: once parsed, emit/parse must be a fixed
// point — the reparsed netlist re-emits byte-identically, since the parser
// preserves every identifier.
func TestVerilogRoundTripIdempotent(t *testing.T) {
	n := netlist.Random(netlist.RandomConfig{Seed: 11})
	back := roundTrip(t, n, 11)
	again := roundTrip(t, back, 11)
	if !bytes.Equal(emit(t, back), emit(t, again)) {
		t.Fatal("emission not stable after one parse")
	}
}

// TestParseVerilogRejects feeds structurally broken modules and requires a
// clean error — never a panic, never silent acceptance.
func TestParseVerilogRejects(t *testing.T) {
	const head = "module m (\n  input wire clk,\n  input wire a,\n  output wire o_x\n);\n"
	cases := map[string]string{
		"empty":            "",
		"no module":        "wire x;\n",
		"no endmodule":     head + "  wire x;\n  buf g0 (x, a);\n  assign o_x = x;\n",
		"undeclared out":   head + "  buf g0 (x, a);\n  assign o_x = x;\nendmodule\n",
		"double driver":    head + "  wire x;\n  buf g0 (x, a);\n  buf g1 (x, a);\n  assign o_x = x;\nendmodule\n",
		"unknown prim":     head + "  wire x;\n  frob g0 (x, a);\n  assign o_x = x;\nendmodule\n",
		"bad arity not":    head + "  wire x;\n  not g0 (x, a, a);\n  assign o_x = x;\nendmodule\n",
		"undriven wire":    head + "  wire x;\n  wire y;\n  buf g0 (x, y);\n  assign o_x = x;\nendmodule\n",
		"comb cycle":       head + "  wire x;\n  wire y;\n  buf g0 (x, y);\n  buf g1 (y, x);\n  assign o_x = x;\nendmodule\n",
		"unbound output":   head + "  wire x;\n  buf g0 (x, a);\nendmodule\n",
		"unknown po net":   head + "  wire x;\n  buf g0 (x, a);\n  assign o_x = z;\nendmodule\n",
		"reg no always":    head + "  wire x;\n  reg q;\n  buf g0 (x, a);\n  assign o_x = x;\nendmodule\n",
		"ff unknown d":     head + "  wire x;\n  reg q;\n  buf g0 (x, a);\n  always @(posedge clk) begin\n    q <= zz;\n  end\n  assign o_x = x;\nendmodule\n",
		"dup input port":   "module m (\n  input wire clk,\n  input wire a,\n  input wire a,\n  output wire o_x\n);\n  wire x;\n  buf g0 (x, a);\n  assign o_x = x;\nendmodule\n",
		"assign non-port":  head + "  wire x;\n  wire y;\n  buf g0 (x, a);\n  assign y = x;\n  assign o_x = x;\nendmodule\n",
		"gate into reg":    head + "  reg q;\n  buf g0 (q, a);\n  always @(posedge clk) begin\n    q <= a;\n  end\n  assign o_x = q;\nendmodule\n",
		"double ff assign": head + "  reg q;\n  always @(posedge clk) begin\n    q <= a;\n    q <= a;\n  end\n  assign o_x = q;\nendmodule\n",
	}
	for name, src := range cases {
		if _, err := netlist.ParseVerilog(strings.NewReader(src)); err == nil {
			t.Errorf("%s: parser accepted invalid module:\n%s", name, src)
		}
	}
}

// FuzzVerilogRoundTrip explores the generator's config space: every seed
// must survive emit → reparse with functional equivalence intact.
func FuzzVerilogRoundTrip(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(42))
	f.Add(uint64(1 << 40))
	f.Fuzz(func(t *testing.T, seed uint64) {
		n := netlist.Random(netlist.RandomConfig{
			Seed:     seed,
			Gates:    1 + int(seed%97),
			FFs:      1 + int((seed>>8)%11),
			Inputs:   1 + int((seed>>16)%7),
			Outputs:  1 + int((seed>>24)%5),
			MaxFanIn: 2 + int((seed>>32)%5),
			Comps:    1 + int((seed>>40)%6),
		})
		if err := n.Validate(); err != nil {
			t.Fatalf("generator produced invalid netlist: %v", err)
		}
		roundTrip(t, n, seed)
	})
}

// FuzzParseVerilog hammers the parser with arbitrary bytes: it must never
// panic, and anything it does accept must be a valid netlist that survives
// an emit/reparse round trip.
func FuzzParseVerilog(f *testing.F) {
	f.Add([]byte("module m (\n  input wire clk\n);\nendmodule\n"))
	for _, seed := range []uint64{1, 9} {
		var b bytes.Buffer
		if err := netlist.Random(netlist.RandomConfig{Seed: seed, Gates: 12, FFs: 3}).WriteVerilog(&b); err != nil {
			f.Fatal(err)
		}
		f.Add(b.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := netlist.ParseVerilog(bytes.NewReader(data))
		if err != nil {
			return // rejected is fine; panicking is not
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("parser accepted netlist that fails Validate: %v", err)
		}
		src := emit(t, n)
		back, err := netlist.ParseVerilog(bytes.NewReader(src))
		if err != nil {
			t.Fatalf("accepted module does not re-parse: %v\n%s", err, src)
		}
		if err := netlist.FunctionallyEquivalent(n, back, 4, 1); err != nil {
			t.Fatalf("accepted module not equivalent to its re-emission: %v", err)
		}
	})
}
