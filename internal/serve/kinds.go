package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"rescue/internal/flows"
)

// RunContext is what the server hands a runner: the flow environment
// (shared artifact store plus this job's checkpoint journal) and the
// server-default campaign worker count.
type RunContext struct {
	Env flows.Env
	// Workers is the server's default campaign concurrency; params that
	// carry their own workers field override it.
	Workers int
	// CheckpointDir is the server's journal directory ("" = checkpointing
	// off). Most kinds use the pre-opened Env.Ck; the sweep kind manages
	// a journal directory of its own under it.
	CheckpointDir string
}

// Runner executes one job kind. The returned bytes are the job's report —
// rendered by the same flows the CLIs print, so they are byte-identical to
// the corresponding command's stdout. On error the partial output is still
// returned for inspection.
type Runner func(ctx context.Context, rc RunContext, params json.RawMessage) ([]byte, error)

// decode unmarshals params strictly — unknown fields are submission errors,
// not silent typos.
func decode(params json.RawMessage, into any) error {
	if len(params) == 0 || string(params) == "null" {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(params))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("bad params: %w", err)
	}
	return nil
}

func pick(jobWorkers, serverWorkers int) int {
	if jobWorkers > 0 {
		return jobWorkers
	}
	return serverWorkers
}

// Kinds returns the built-in job kinds. Reports default to timing-free
// output (the deterministic, golden-diffable form); a job may opt into
// timings with "timing": true.
//
// The "shard" kind computes one fault-index window of another kind's
// campaign (see shard.go); it resolves the inner flow against this same
// registry, so kinds added to the returned map are shardable too.
func Kinds() map[string]Runner {
	m := map[string]Runner{
		"table3":    runTable3,
		"dict":      runDict,
		"isolation": runIsolation,
		"yat":       runYAT,
		"fab":       runFab,
		"sweep":     runSweep,
	}
	m["shard"] = shardRunner(m)
	return m
}

type table3Params struct {
	Small      bool  `json:"small"`
	Seed       int64 `json:"seed"`
	Backtracks int   `json:"backtracks"`
	Workers    int   `json:"workers"`
	Timing     bool  `json:"timing"`
}

func runTable3(ctx context.Context, rc RunContext, params json.RawMessage) ([]byte, error) {
	var p table3Params
	if err := decode(params, &p); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	_, err := flows.Table3(ctx, &buf, flows.Table3Opts{
		Small:      p.Small,
		Seed:       p.Seed,
		Backtracks: p.Backtracks,
		Workers:    pick(p.Workers, rc.Workers),
		Timing:     p.Timing,
	}, rc.Env)
	return buf.Bytes(), err
}

type dictParams struct {
	Small   bool `json:"small"`
	Workers int  `json:"workers"`
}

func runDict(ctx context.Context, rc RunContext, params json.RawMessage) ([]byte, error) {
	var p dictParams
	if err := decode(params, &p); err != nil {
		return nil, err
	}
	// The CSV is the artifact; the build commentary goes nowhere (clients
	// watch the event stream instead).
	var buf bytes.Buffer
	_, err := flows.DictBuild(ctx, io.Discard, &buf, flows.DictOpts{
		Small:   p.Small,
		Workers: pick(p.Workers, rc.Workers),
	}, rc.Env)
	return buf.Bytes(), err
}

type isolationParams struct {
	Small    bool  `json:"small"`
	PerStage int   `json:"perStage"`
	Seed     int64 `json:"seed"`
	Multi    bool  `json:"multi"`
	Workers  int   `json:"workers"`
	Timing   bool  `json:"timing"`
}

func runIsolation(ctx context.Context, rc RunContext, params json.RawMessage) ([]byte, error) {
	var p isolationParams
	if err := decode(params, &p); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	_, err := flows.Isolation(ctx, &buf, flows.IsolationOpts{
		Small:    p.Small,
		PerStage: p.PerStage,
		Seed:     p.Seed,
		Multi:    p.Multi,
		Workers:  pick(p.Workers, rc.Workers),
		Timing:   p.Timing,
	}, rc.Env)
	return buf.Bytes(), err
}

type yatParams struct {
	Stagnate int    `json:"stagnate"`
	Bench    string `json:"bench"`
	Warmup   int64  `json:"warmup"`
	Commit   int64  `json:"commit"`
	Workers  int    `json:"workers"`
	Timing   bool   `json:"timing"`
}

func runYAT(ctx context.Context, rc RunContext, params json.RawMessage) ([]byte, error) {
	var p yatParams
	if err := decode(params, &p); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	_, err := flows.YAT(ctx, &buf, flows.YATOpts{
		StagnateNM: p.Stagnate,
		Bench:      p.Bench,
		Warmup:     p.Warmup,
		Commit:     p.Commit,
		Workers:    pick(p.Workers, rc.Workers),
		Timing:     p.Timing,
	}, rc.Env)
	return buf.Bytes(), err
}

type fabParams struct {
	Dies          int     `json:"dies"`
	Node          int     `json:"node"`
	Stagnate      int     `json:"stagnate"`
	Growth        float64 `json:"growth"`
	Seed          int64   `json:"seed"`
	Small         bool    `json:"small"`
	Bench         string  `json:"bench"`
	Warmup        int64   `json:"warmup"`
	Commit        int64   `json:"commit"`
	SelfHealShare float64 `json:"selfhealShare"`
	Workers       int     `json:"workers"`
	Timing        bool    `json:"timing"`
}

func runFab(ctx context.Context, rc RunContext, params json.RawMessage) ([]byte, error) {
	var p fabParams
	if err := decode(params, &p); err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	_, err := flows.Fab(ctx, &buf, flows.FabOpts{
		Dies:          p.Dies,
		NodeNM:        p.Node,
		StagnateNM:    p.Stagnate,
		Growth:        p.Growth,
		Seed:          p.Seed,
		Workers:       pick(p.Workers, rc.Workers),
		Small:         p.Small,
		Bench:         p.Bench,
		Warmup:        p.Warmup,
		Commit:        p.Commit,
		SelfHealShare: p.SelfHealShare,
		Timing:        p.Timing,
	}, rc.Env)
	return buf.Bytes(), err
}
