package diffcheck

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rescue/internal/netlist"
)

// testOptions keeps per-seed work small so the unit tests stay fast; the
// CLI and CI run the full default property set.
func testOptions() Options {
	return Options{Workers: []int{1, 3}, Transforms: 4, EquivCycles: 4, ATPGFaults: 4, MaxBacktracks: 30}
}

// TestCheckSeeds runs the whole property set over a block of seeds — the
// in-tree slice of what CI's dedicated diffcheck job runs at scale.
func TestCheckSeeds(t *testing.T) {
	seeds := uint64(40)
	if testing.Short() {
		seeds = 8
	}
	for seed := uint64(0); seed < seeds; seed++ {
		if err := CheckSeed(context.Background(), seed, testOptions()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestConeCornerCircuits pins property P7 on the circuit shapes most
// likely to break cone clipping: FF feedback (a Q net feeding combinational
// logic, so fault cones start at pseudo-inputs and end at D-net capture
// without ever crossing the FF) and Q-as-primary-output (an observation
// point sitting directly on a fault's seed net with no gate in between).
// The seeds are found structurally, so the test fails loudly if the
// generator ever stops producing these corners instead of silently
// checking nothing.
func TestConeCornerCircuits(t *testing.T) {
	var ffFeedback, qAsPO []uint64
	for seed := uint64(0); seed < 300 && (len(ffFeedback) < 3 || len(qAsPO) < 3); seed++ {
		n := netlist.Random(ConfigForSeed(seed))
		qnet := map[netlist.NetID]bool{}
		for _, ff := range n.FFs {
			qnet[ff.Q] = true
		}
		feedback := false
		for _, g := range n.Gates {
			for _, in := range g.In {
				if qnet[in] {
					feedback = true
				}
			}
		}
		po := false
		for _, out := range n.Outputs {
			if qnet[out] {
				po = true
			}
		}
		if feedback && len(ffFeedback) < 3 {
			ffFeedback = append(ffFeedback, seed)
		}
		if po && len(qAsPO) < 3 {
			qAsPO = append(qAsPO, seed)
		}
	}
	if len(ffFeedback) == 0 {
		t.Fatal("no FF-feedback circuit in the first 300 seeds — generator changed shape?")
	}
	if len(qAsPO) == 0 {
		t.Fatal("no Q-as-PO circuit in the first 300 seeds — generator changed shape?")
	}
	for _, seed := range append(append([]uint64(nil), ffFeedback...), qAsPO...) {
		if err := CheckSeed(context.Background(), seed, testOptions()); err != nil {
			t.Fatalf("corner seed %d: %v", seed, err)
		}
	}
}

func TestRunCollectsAndCounts(t *testing.T) {
	rep, err := Run(context.Background(), 100, 105, 0, testOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != 5 || len(rep.Failures) != 0 {
		t.Fatalf("checked %d failures %d, want 5 and 0", rep.Checked, len(rep.Failures))
	}
}

func TestRunHonorsBudget(t *testing.T) {
	start := time.Now()
	rep, err := Run(context.Background(), 0, 1<<40, 300*time.Millisecond, testOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("budget ignored: ran %v", elapsed)
	}
	if rep.Checked == 0 {
		t.Fatal("budget run checked nothing")
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, 0, 1000, 0, testOptions(), nil)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep.Checked != 0 {
		t.Fatalf("cancelled before start but checked %d seeds", rep.Checked)
	}
}

// TestShrinkKeepsPassingConfigUntouched: shrinking only accepts reductions
// that still fail, so shrinking a failure whose config actually passes
// (synthetic here) must return the config unchanged.
func TestShrinkKeepsPassingConfigUntouched(t *testing.T) {
	f := Failure{Seed: 1, Cfg: ConfigForSeed(1), Err: errors.New("synthetic")}
	got := Shrink(context.Background(), f, testOptions())
	if got.Cfg != f.Cfg {
		t.Fatalf("shrink modified a config that does not fail: %+v -> %+v", f.Cfg, got.Cfg)
	}
	if got.Err.Error() != "synthetic" {
		t.Fatalf("shrink replaced the error: %v", got.Err)
	}
}

func TestWriteRepro(t *testing.T) {
	dir := t.TempDir()
	f := Failure{Seed: 7, Cfg: ConfigForSeed(7), Err: errors.New("P1 oracle: synthetic divergence")}
	paths, err := WriteRepro(dir, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("want 2 repro files, got %v", paths)
	}
	v, err := os.ReadFile(filepath.Join(dir, "seed-7.v"))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) == 0 || string(v[:2]) != "//" {
		t.Fatalf("verilog dump looks wrong: %.40s", v)
	}
	note, err := os.ReadFile(filepath.Join(dir, "seed-7.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"seed 7", "P1 oracle", "rescue-diffcheck -seed 7"} {
		if !strings.Contains(string(note), want) {
			t.Fatalf("repro note missing %q:\n%s", want, note)
		}
	}
}
