package atpg

import (
	"rescue/internal/netlist"
)

// podem is the working state of one PODEM run.
type podem struct {
	n     *netlist.Netlist
	fault netlist.Fault

	// pis lists the controllable points: primary inputs then FF Q nets.
	pis []netlist.NetID
	// piIndex maps net -> index in pis, or -1.
	piIndex []int
	// assign holds the current PI decisions (X = unassigned).
	assign []V3

	good, bad []V3 // per-net planes

	obsNets []netlist.NetID

	backtracks    int
	maxBacktracks int
}

// Cube is a generated test cube: per-PI three-valued assignments (primary
// inputs first, then FF scan cells, matching podem.pis order).
type Cube struct {
	PI []V3 // len = len(netlist.Inputs)
	FF []V3 // len = NumFFs
}

// PodemResult classifies a PODEM run.
type PodemResult int

// PODEM outcomes.
const (
	Detected PodemResult = iota
	Untestable
	Aborted
)

func (r PodemResult) String() string {
	switch r {
	case Detected:
		return "detected"
	case Untestable:
		return "untestable"
	default:
		return "aborted"
	}
}

// Podem attempts to generate a test for fault f on n. maxBacktracks bounds
// the search (typical production values are 10-100).
func Podem(n *netlist.Netlist, f netlist.Fault, maxBacktracks int) (Cube, PodemResult) {
	p := &podem{n: n, fault: f, maxBacktracks: maxBacktracks}
	p.pis = make([]netlist.NetID, 0, len(n.Inputs)+n.NumFFs())
	p.pis = append(p.pis, n.Inputs...)
	for i := range n.FFs {
		p.pis = append(p.pis, n.FFs[i].Q)
	}
	p.piIndex = make([]int, n.NumNets())
	for i := range p.piIndex {
		p.piIndex[i] = -1
	}
	for i, net := range p.pis {
		p.piIndex[net] = i
	}
	p.assign = make([]V3, len(p.pis))
	p.good = make([]V3, n.NumNets())
	p.bad = make([]V3, n.NumNets())
	for fi := range n.FFs {
		p.obsNets = append(p.obsNets, n.FFs[fi].D)
	}
	p.obsNets = append(p.obsNets, n.Outputs...)

	ok, aborted := p.search()
	cube := Cube{PI: make([]V3, len(n.Inputs)), FF: make([]V3, n.NumFFs())}
	copy(cube.PI, p.assign[:len(n.Inputs)])
	copy(cube.FF, p.assign[len(n.Inputs):])
	switch {
	case ok:
		return cube, Detected
	case aborted:
		return Cube{}, Aborted
	default:
		return Cube{}, Untestable
	}
}

type decision struct {
	pi        int
	value     V3
	triedBoth bool
}

// search runs the PODEM decision loop. Returns (found, aborted).
func (p *podem) search() (bool, bool) {
	var stack []decision
	for {
		p.imply()
		if p.errorAtOutput() {
			return true, false
		}
		feasible := p.feasible()
		if feasible {
			net, val, ok := p.objective()
			if ok {
				pi, pv := p.backtrace(net, val)
				if pi >= 0 {
					stack = append(stack, decision{pi: pi, value: pv})
					p.assign[pi] = pv
					continue
				}
			}
			// no objective or backtrace dead-ends: treat as infeasible
		}
		// backtrack
		flipped := false
		for len(stack) > 0 {
			d := &stack[len(stack)-1]
			if !d.triedBoth {
				d.triedBoth = true
				d.value = not3(d.value)
				p.assign[d.pi] = d.value
				p.backtracks++
				flipped = true
				break
			}
			p.assign[d.pi] = X
			stack = stack[:len(stack)-1]
		}
		if !flipped {
			return false, false // exhausted: untestable
		}
		if p.backtracks > p.maxBacktracks {
			return false, true
		}
	}
}

// imply performs full forward 5-valued implication from the current PI
// assignments.
func (p *podem) imply() {
	n := p.n
	for i := range p.good {
		p.good[i] = X
		p.bad[i] = X
	}
	for i, net := range p.pis {
		p.good[net] = p.assign[i]
		p.bad[net] = p.assign[i]
	}
	// FF-output fault: faulty plane of Q is forced
	if p.fault.Gate < 0 && p.fault.FF >= 0 {
		q := n.FFs[p.fault.FF].Q
		p.bad[q] = saVal(p.fault.StuckAt1)
	}
	for _, gi := range n.TopoOrder() {
		g := &n.Gates[gi]
		p.good[g.Out] = evalPlane3(g, p.good, netlist.NoFault, gi)
		p.bad[g.Out] = evalPlane3(g, p.bad, p.fault, gi)
	}
}

func saVal(sa1 bool) V3 {
	if sa1 {
		return One
	}
	return Zero
}

// evalPlane3 evaluates one gate in one plane, honoring fault injection if f
// targets this gate.
func evalPlane3(g *netlist.Gate, plane []V3, f netlist.Fault, gi netlist.GateID) V3 {
	var buf [8]V3
	ins := buf[:0]
	for _, in := range g.In {
		ins = append(ins, plane[in])
	}
	if f.Gate == gi && f.Pin >= 0 {
		ins[f.Pin] = saVal(f.StuckAt1)
	}
	var v V3
	switch g.Kind {
	case netlist.And, netlist.Nand:
		v = One
		for _, x := range ins {
			v = and3(v, x)
		}
		if g.Kind == netlist.Nand {
			v = not3(v)
		}
	case netlist.Or, netlist.Nor:
		v = Zero
		for _, x := range ins {
			v = or3(v, x)
		}
		if g.Kind == netlist.Nor {
			v = not3(v)
		}
	case netlist.Xor, netlist.Xnor:
		v = Zero
		for _, x := range ins {
			v = xor3(v, x)
		}
		if g.Kind == netlist.Xnor {
			v = not3(v)
		}
	case netlist.Not:
		v = not3(ins[0])
	case netlist.Buf:
		v = ins[0]
	case netlist.Mux2:
		v = mux3(ins[0], ins[1], ins[2])
	case netlist.Const0:
		v = Zero
	case netlist.Const1:
		v = One
	}
	if f.Gate == gi && f.Pin < 0 {
		v = saVal(f.StuckAt1)
	}
	return v
}

// isError reports whether net carries D or D'.
func (p *podem) isError(net netlist.NetID) bool {
	g, b := p.good[net], p.bad[net]
	return g != X && b != X && g != b
}

func (p *podem) errorAtOutput() bool {
	for _, net := range p.obsNets {
		if p.isError(net) {
			return true
		}
	}
	// FF-output faults are observed directly on scan-out of the faulty cell
	if p.fault.Gate < 0 && p.fault.FF >= 0 {
		d := p.n.FFs[p.fault.FF].D
		if p.good[d] != X && p.good[d] != saVal(p.fault.StuckAt1) {
			return true
		}
	}
	return false
}

// siteLine returns the net whose good value activates the fault.
func (p *podem) siteLine() netlist.NetID {
	f := p.fault
	switch {
	case f.Gate >= 0 && f.Pin >= 0:
		return p.n.Gates[f.Gate].In[f.Pin]
	case f.Gate >= 0:
		return p.n.Gates[f.Gate].Out
	default:
		return p.n.FFs[f.FF].D // activation for FF faults: capture opposite value
	}
}

// activated reports whether the fault currently produces an error at its
// site.
func (p *podem) activated() bool {
	f := p.fault
	switch {
	case f.Gate >= 0 && f.Pin >= 0:
		// error appears at the gate output if the pin divergence propagates;
		// activation condition: good value of pin line is opposite the stuck
		// value — the output error is then up to propagation.
		return p.good[p.siteLine()] == not3(saVal(f.StuckAt1)) && p.isError(p.n.Gates[f.Gate].Out)
	case f.Gate >= 0:
		return p.isError(p.n.Gates[f.Gate].Out)
	default:
		q := p.n.FFs[f.FF].Q
		return p.isError(q) || p.good[q] == not3(saVal(f.StuckAt1))
	}
}

// feasible checks whether the current partial assignment can still lead to
// detection: the fault can still be activated, and if activated, an X-path
// exists from the D-frontier to an observation point.
func (p *podem) feasible() bool {
	f := p.fault
	// activation still possible?
	line := p.siteLine()
	want := not3(saVal(f.StuckAt1))
	if f.Gate >= 0 && f.Pin >= 0 {
		if p.good[line] != X && p.good[line] != want {
			return false
		}
	} else if f.Gate >= 0 {
		if p.good[line] != X && p.good[line] != want {
			return false
		}
	} else {
		// FF fault: D capture or combinational propagation from Q
		dNet := p.n.FFs[f.FF].D
		if p.good[dNet] != X && p.good[dNet] != want {
			// direct capture observation blocked; combinational path from Q
			// may still work — fall through to frontier check
			if len(p.dFrontier()) == 0 && !p.errorAtOutput() {
				return false
			}
		}
		return true
	}
	// If error exists somewhere, require an X-path to an output.
	if p.anyError() {
		return p.xPathExists()
	}
	return true
}

func (p *podem) anyError() bool {
	for _, g := range p.n.Gates {
		if p.isError(g.Out) {
			return true
		}
	}
	if p.fault.Gate < 0 && p.fault.FF >= 0 && p.isError(p.n.FFs[p.fault.FF].Q) {
		return true
	}
	return false
}

// dFrontier returns gates with an error on some input and a non-error,
// not-fully-determined output.
func (p *podem) dFrontier() []netlist.GateID {
	var out []netlist.GateID
	for gi := range p.n.Gates {
		g := &p.n.Gates[gi]
		if p.isError(g.Out) {
			continue
		}
		if p.good[g.Out] != X && p.bad[g.Out] != X {
			continue // fully determined, error cannot appear anymore
		}
		for _, in := range g.In {
			if p.isError(in) {
				out = append(out, netlist.GateID(gi))
				break
			}
		}
	}
	return out
}

// xPathExists checks structural reachability from any error net or
// D-frontier gate to an observation point through nets that are not fully
// determined.
func (p *podem) xPathExists() bool {
	// error directly at an obs point counts
	if p.errorAtOutput() {
		return true
	}
	frontier := p.dFrontier()
	if len(frontier) == 0 {
		return false
	}
	obsSet := map[netlist.NetID]bool{}
	for _, net := range p.obsNets {
		obsSet[net] = true
	}
	fanout := p.n.GateFanout()
	seen := make([]bool, p.n.NumGates())
	stack := append([]netlist.GateID(nil), frontier...)
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[g] {
			continue
		}
		seen[g] = true
		out := p.n.Gates[g].Out
		if obsSet[out] {
			return true
		}
		if p.good[out] != X && p.bad[out] != X && !p.isError(out) {
			continue // blocked: fully determined without error
		}
		for _, s := range fanout[g] {
			stack = append(stack, s)
		}
	}
	return false
}

// objective picks the next (net, value) goal: activate the fault if not
// yet activated, otherwise advance a D-frontier gate.
func (p *podem) objective() (netlist.NetID, V3, bool) {
	f := p.fault
	want := not3(saVal(f.StuckAt1))
	line := p.siteLine()
	if f.Gate >= 0 {
		if p.good[line] == X {
			return line, want, true
		}
	} else {
		// FF fault: goal is to capture the opposite value into the cell (or
		// propagate combinationally; capture goal is the simple one)
		if p.good[line] == X {
			return line, want, true
		}
	}
	// Input-pin faults: once the pin line is activated the divergence lives
	// inside the faulty gate, which the D-frontier (a net-level notion)
	// cannot see. Sensitize the faulty gate by setting its other X inputs
	// to non-controlling values.
	if f.Gate >= 0 && f.Pin >= 0 && p.good[line] == want {
		g := &p.n.Gates[f.Gate]
		out := g.Out
		if !p.isError(out) && (p.good[out] == X || p.bad[out] == X) {
			nc, has := nonControlling(g.Kind)
			for pin, in := range g.In {
				if pin == f.Pin || p.good[in] != X {
					continue
				}
				if g.Kind == netlist.Mux2 && pin == 0 {
					// route the faulty data pin through the mux
					if f.Pin == 1 {
						return in, Zero, true
					}
					return in, One, true
				}
				if has {
					return in, nc, true
				}
				return in, Zero, true
			}
		}
	}
	frontier := p.dFrontier()
	for _, gi := range frontier {
		g := &p.n.Gates[gi]
		// set an X input to the gate's non-controlling value
		nc, has := nonControlling(g.Kind)
		for pin, in := range g.In {
			if p.good[in] == X {
				if g.Kind == netlist.Mux2 && pin == 0 {
					// select the data input carrying the error
					for di := 1; di <= 2; di++ {
						if p.isError(g.In[di]) {
							if di == 1 {
								return in, Zero, true
							}
							return in, One, true
						}
					}
					return in, Zero, true
				}
				if has {
					return in, nc, true
				}
				// XOR-family: any definite value sensitizes
				return in, Zero, true
			}
		}
	}
	return 0, X, false
}

// nonControlling returns the non-controlling input value of a gate kind.
func nonControlling(k netlist.GateKind) (V3, bool) {
	switch k {
	case netlist.And, netlist.Nand:
		return One, true
	case netlist.Or, netlist.Nor:
		return Zero, true
	}
	return X, false
}

// backtrace walks an objective back to an unassigned PI, returning the PI
// index and value (or -1 if no X input path exists).
func (p *podem) backtrace(net netlist.NetID, val V3) (int, V3) {
	for hops := 0; hops < p.n.NumNets()+4; hops++ {
		if pi := p.piIndex[net]; pi >= 0 {
			if p.assign[pi] != X {
				return -1, X // already assigned; objective unreachable
			}
			return pi, val
		}
		gid := p.n.DriverGate(net)
		if gid < 0 {
			return -1, X // FF D as objective shouldn't occur outside obs
		}
		g := &p.n.Gates[gid]
		switch g.Kind {
		case netlist.Not:
			net, val = g.In[0], not3(val)
		case netlist.Buf:
			net = g.In[0]
		case netlist.And, netlist.Nand, netlist.Or, netlist.Nor:
			inv := g.Kind == netlist.Nand || g.Kind == netlist.Nor
			target := val
			if inv {
				target = not3(val)
			}
			// choose an X input: if target is the controlling value one X
			// input suffices; otherwise all inputs need the non-controlling
			// value — either way descending into the first X input works.
			next := netlist.InvalidNet
			for _, in := range g.In {
				if p.good[in] == X {
					next = in
					break
				}
			}
			if next == netlist.InvalidNet {
				return -1, X
			}
			net, val = next, target
		case netlist.Xor, netlist.Xnor:
			target := val
			if g.Kind == netlist.Xnor {
				target = not3(val)
			}
			// parity of known inputs
			parity := Zero
			next := netlist.InvalidNet
			for _, in := range g.In {
				if p.good[in] == X {
					if next == netlist.InvalidNet {
						next = in
					}
				} else {
					parity = xor3(parity, p.good[in])
				}
			}
			if next == netlist.InvalidNet {
				return -1, X
			}
			net, val = next, xor3(target, parity)
		case netlist.Mux2:
			sel, a, b := g.In[0], g.In[1], g.In[2]
			switch {
			case p.good[sel] == Zero:
				net = a
			case p.good[sel] == One:
				net = b
			case p.good[a] == X:
				net = a // will need sel=0 later; objective loop handles it
			case p.good[b] == X:
				net = b
			default:
				// both data known, sel X: set sel to pick the matching one
				if p.good[a] == val {
					net, val = sel, Zero
				} else {
					net, val = sel, One
				}
			}
		case netlist.Const0, netlist.Const1:
			return -1, X
		}
	}
	return -1, X
}
