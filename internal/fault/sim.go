package fault

import (
	"sort"

	"rescue/internal/netlist"
	"rescue/internal/scan"
)

// FailBit records one failing observation: pattern word w, lane l within
// the word, observation point index obs (netlist.ObsPoints order: FF scan
// bits first, then primary outputs).
type FailBit struct {
	Word, Lane, Obs int
}

// Result is the outcome of simulating one fault against a pattern set.
//
// Ordering contract (pinned by TestResultOrdering and relied on by the
// differential harness for plain slice equality): Fails is word-major —
// all bits of pattern word w precede those of word w+1 — and within a
// word sorted by (Obs, Lane) ascending, with no duplicates. FailObs lists
// each failing observation point once, ordered by the word of its first
// failure, then by observation index within that word. Every independent
// implementation of this contract (Sim, Campaign at any worker count,
// Oracle) produces byte-identical Results for maxFail = 0.
type Result struct {
	Detected bool
	// Fails lists failing bits, at most the maxFail cap passed to Run
	// (0 = unlimited). Isolation needs every distinct failing obs point,
	// detection needs only one. When the cap truncates a word, the bits
	// kept are a deterministic subset of that word's canonical order.
	Fails []FailBit
	// FailObs is the deduplicated set of failing observation points.
	// When the cap truncated Fails, FailObs may still list points whose
	// individual bits were dropped (capped callers only use Detected).
	FailObs []int
}

// simCore is the read-only half of a fault simulator: the netlist, scan
// chain, pattern set, precomputed good-machine images, and static
// structure (levels, per-net readers, observation map). Once the pattern
// set stops growing, a simCore is safe to share across any number of
// concurrent workers — everything mutable lives in simScratch.
type simCore struct {
	C        *scan.Chain
	N        *netlist.Netlist
	Patterns []*scan.Pattern

	goodResp [][]uint64 // [word][obs]
	goodNets [][]uint64 // [word][net] post-EvalComb values (pre-capture)

	// static structure
	level      []int32 // per-gate combinational level
	maxLevel   int32
	netReaders [][]netlist.GateID // per-net reading gates
	// Observation points per net, as intrusive chains: a net can be the D
	// input of several FFs and a primary output at the same time, and every
	// such point must report a failing bit. obsHead[net] is the first obs
	// index reading the net (-1 = unobserved); obsNext[obs] links to the
	// next obs index sharing the same net.
	obsHead []int32
	obsNext []int32
	numObs  int
}

// simScratch is the mutable per-worker half: faulty-value overlays, event
// queues, and dedup markers, all epoch-cleared so one allocation serves
// every (fault, word) simulation. Each campaign worker owns one.
type simScratch struct {
	scratch []uint64 // per-net faulty values (valid when epoch matches)
	epoch   []int32
	curEp   int32
	buckets [][]netlist.GateID // event queue bucketed by level
	schedEp []int32            // per-gate scheduled marker
	obsEp   []int32            // per-obs FailObs dedup marker
	runEp   int32

	// counters for campaign Stats
	words  int64 // (fault, word) pairs event-simulated
	events int64 // gate evaluations performed
}

// Sim is a fault simulator bound to a netlist, a scan chain, and a growable
// pattern set. Good-machine responses and full good-machine net images are
// precomputed per pattern word; each fault is then simulated event-driven —
// only gates the fault effect actually reaches are re-evaluated, so the
// cost per (fault, word) is proportional to the propagation region, which
// is tiny whenever the pattern does not excite the fault.
//
// A Sim is a simCore plus one private simScratch, so its methods are the
// serial path; Campaign fans the same core out across workers.
type Sim struct {
	simCore
	scr simScratch
}

// NewSim builds a simulator and precomputes good-machine behavior for the
// given patterns (which may be nil; use AddPattern to grow the set).
func NewSim(c *scan.Chain, patterns []*scan.Pattern) *Sim {
	n := c.N
	s := &Sim{simCore: simCore{C: c, N: n}}
	// levels
	s.level = make([]int32, n.NumGates())
	for _, gi := range n.TopoOrder() {
		var lv int32
		for _, in := range n.Gates[gi].In {
			if d := n.DriverGate(in); d >= 0 {
				if s.level[d]+1 > lv {
					lv = s.level[d] + 1
				}
			}
		}
		s.level[gi] = lv
		if lv > s.maxLevel {
			s.maxLevel = lv
		}
	}
	// per-net readers
	s.netReaders = make([][]netlist.GateID, n.NumNets())
	for gi := range n.Gates {
		for _, in := range n.Gates[gi].In {
			s.netReaders[in] = append(s.netReaders[in], netlist.GateID(gi))
		}
	}
	// observation chains per net
	s.numObs = n.NumFFs() + len(n.Outputs)
	s.obsHead = make([]int32, n.NumNets())
	for i := range s.obsHead {
		s.obsHead[i] = -1
	}
	s.obsNext = make([]int32, s.numObs)
	addObs := func(net netlist.NetID, oi int32) {
		s.obsNext[oi] = s.obsHead[net]
		s.obsHead[net] = oi
	}
	// Insert in reverse so each chain reads out in ascending obs order.
	for oi := len(n.Outputs) - 1; oi >= 0; oi-- {
		addObs(n.Outputs[oi], int32(n.NumFFs()+oi))
	}
	for fi := n.NumFFs() - 1; fi >= 0; fi-- {
		addObs(n.FFs[fi].D, int32(fi))
	}
	s.scr.init(&s.simCore)
	for _, p := range patterns {
		s.AddPattern(p)
	}
	return s
}

// init sizes a scratch for the core's netlist.
func (scr *simScratch) init(c *simCore) {
	n := c.N
	scr.scratch = make([]uint64, n.NumNets())
	scr.epoch = make([]int32, n.NumNets())
	for i := range scr.epoch {
		scr.epoch[i] = -1
	}
	scr.buckets = make([][]netlist.GateID, c.maxLevel+1)
	scr.schedEp = make([]int32, n.NumGates())
	for i := range scr.schedEp {
		scr.schedEp[i] = -1
	}
	scr.obsEp = make([]int32, c.numObs)
	for i := range scr.obsEp {
		scr.obsEp[i] = -1
	}
}

// AddPattern appends a pattern word and precomputes its good-machine image.
// Used by the ATPG generator, which grows the pattern set incrementally.
// Not safe to call while a Campaign over this simulator is running.
func (s *simCore) AddPattern(p *scan.Pattern) {
	st := s.N.NewState()
	s.C.Load(st, p)
	st.EvalComb(netlist.NoFault)
	nets := make([]uint64, len(st.Vals))
	copy(nets, st.Vals)
	s.goodNets = append(s.goodNets, nets)
	resp := make([]uint64, s.N.NumFFs()+len(s.N.Outputs))
	for fi := 0; fi < s.N.NumFFs(); fi++ {
		resp[fi] = st.Get(s.N.FFs[fi].D)
	}
	for oi, out := range s.N.Outputs {
		resp[s.N.NumFFs()+oi] = st.Get(out)
	}
	s.goodResp = append(s.goodResp, resp)
	s.Patterns = append(s.Patterns, p)
}

// GoodResponse returns the good-machine response words of pattern word w.
func (s *simCore) GoodResponse(w int) []uint64 { return s.goodResp[w] }

// Run simulates fault f against every pattern. If maxFail > 0, simulation
// stops after collecting that many failing bits (fast detection mode);
// isolation uses maxFail = 0 to gather every failing observation point.
func (s *Sim) Run(f netlist.Fault, maxFail int) Result {
	return s.simCore.run(&s.scr, f, maxFail, 0, len(s.Patterns))
}

// RunWord simulates fault f against pattern word w only — the ATPG
// fault-dropping inner loop.
func (s *Sim) RunWord(f netlist.Fault, w, maxFail int) Result {
	return s.simCore.run(&s.scr, f, maxFail, w, w+1)
}

// schedule enqueues a gate for (re)evaluation in the current event pass.
func (c *simCore) schedule(scr *simScratch, g netlist.GateID) {
	if scr.schedEp[g] == scr.curEp {
		return
	}
	scr.schedEp[g] = scr.curEp
	lv := c.level[g]
	scr.buckets[lv] = append(scr.buckets[lv], g)
}

func (c *simCore) run(scr *simScratch, f netlist.Fault, maxFail, wLo, wHi int) Result {
	res := Result{}
	scr.runEp++

	var stuckWord uint64
	if f.StuckAt1 {
		stuckWord = ^uint64(0)
	}

	for w := wLo; w < wHi; w++ {
		mask := c.Patterns[w].LaneMask()
		good := c.goodNets[w]
		scr.words++

		scr.curEp++
		for i := range scr.buckets {
			scr.buckets[i] = scr.buckets[i][:0]
		}

		failsStart := len(res.Fails)
		obsStart := len(res.FailObs)

		// record appends the failing lanes of one observation point.
		record := func(oi int32, diff uint64) {
			res.Detected = true
			if scr.obsEp[oi] != scr.runEp {
				scr.obsEp[oi] = scr.runEp
				res.FailObs = append(res.FailObs, int(oi))
			}
			for lane := 0; lane < 64 && diff != 0; lane++ {
				if diff&(1<<uint(lane)) != 0 {
					res.Fails = append(res.Fails, FailBit{Word: w, Lane: lane, Obs: int(oi)})
					diff &^= 1 << uint(lane)
				}
			}
		}

		// observe records failing bits at every observation point sampling
		// net — a net can be the D input of several FFs and a primary
		// output simultaneously. Reports whether the failing-bit cap has
		// been reached (propagation may then stop early).
		observe := func(net netlist.NetID, faulty uint64) bool {
			for oi := c.obsHead[net]; oi >= 0; oi = c.obsNext[oi] {
				if f.Gate < 0 && oi == int32(f.FF) {
					// The faulty FF's own scan cell shifts out the stuck
					// value no matter what its D net carries (the capture
					// is overridden by the defect), so a fault effect
					// looping back to its own D is not a discrepancy
					// there. The own bit is recorded once at seeding.
					continue
				}
				if diff := (faulty ^ c.goodResp[w][oi]) & mask; diff != 0 {
					record(oi, diff)
				}
			}
			return maxFail > 0 && len(res.Fails) >= maxFail
		}

		// seed events at the fault site
		capped := false
		switch {
		case f.Gate >= 0:
			c.schedule(scr, f.Gate)
		case f.FF >= 0:
			q := c.N.FFs[f.FF].Q
			// the faulty FF's own scan cell captures the stuck value
			if diff := (stuckWord ^ c.goodResp[w][f.FF]) & mask; diff != 0 {
				record(int32(f.FF), diff)
				capped = maxFail > 0 && len(res.Fails) >= maxFail
			}
			if (stuckWord^good[q])&mask != 0 {
				scr.scratch[q] = stuckWord
				scr.epoch[q] = scr.curEp
				for _, r := range c.netReaders[q] {
					c.schedule(scr, r)
				}
				// q itself may be observed directly — as another FF's D
				// net or as a primary output — with no gate in between.
				if observe(q, stuckWord) {
					capped = true
				}
			}
		}

		// event-driven propagation in level order
		for lv := int32(0); lv <= c.maxLevel && !capped; lv++ {
			for bi := 0; bi < len(scr.buckets[lv]); bi++ {
				gi := scr.buckets[lv][bi]
				g := &c.N.Gates[gi]
				var buf [8]uint64
				ins := buf[:0]
				for _, in := range g.In {
					if scr.epoch[in] == scr.curEp {
						ins = append(ins, scr.scratch[in])
					} else {
						ins = append(ins, good[in])
					}
				}
				if f.Gate == gi && f.Pin >= 0 {
					ins[f.Pin] = stuckWord
				}
				scr.events++
				v := evalGate(g.Kind, ins)
				if f.Gate == gi && f.Pin < 0 {
					v = stuckWord
				}
				if (v^good[g.Out])&mask == 0 {
					continue // effect died here
				}
				scr.scratch[g.Out] = v
				scr.epoch[g.Out] = scr.curEp
				if observe(g.Out, v) {
					capped = true
					break
				}
				for _, r := range c.netReaders[g.Out] {
					c.schedule(scr, r)
				}
			}
		}

		finalizeWord(&res, failsStart, obsStart)
		if maxFail > 0 && len(res.Fails) >= maxFail {
			res.Fails = res.Fails[:maxFail]
			return res
		}
	}
	return res
}

// finalizeWord normalizes the bits one pattern word appended to res into
// the documented canonical order: Fails sorted by (obs, lane) with
// duplicates removed (a self-looped faulty FF can record its own scan bit
// twice), FailObs sorted ascending. Event discovery order is level order,
// which is deterministic but not the contract.
func finalizeWord(res *Result, failsStart, obsStart int) {
	seg := res.Fails[failsStart:]
	if len(seg) > 1 {
		sort.Slice(seg, func(i, j int) bool {
			if seg[i].Obs != seg[j].Obs {
				return seg[i].Obs < seg[j].Obs
			}
			return seg[i].Lane < seg[j].Lane
		})
		keep := 1
		for i := 1; i < len(seg); i++ {
			if seg[i] != seg[keep-1] {
				seg[keep] = seg[i]
				keep++
			}
		}
		res.Fails = res.Fails[:failsStart+keep]
	}
	if obsSeg := res.FailObs[obsStart:]; len(obsSeg) > 1 {
		sort.Ints(obsSeg)
	}
}

// DetectAll runs detection-only simulation for a list of faults and
// returns a bitmap of which were detected by the pattern set.
func (s *Sim) DetectAll(faults []netlist.Fault) []bool {
	out := make([]bool, len(faults))
	for i, f := range faults {
		out[i] = s.Run(f, 1).Detected
	}
	return out
}

// Coverage reports the fraction of the given faults detected.
func (s *Sim) Coverage(faults []netlist.Fault) float64 {
	if len(faults) == 0 {
		return 1
	}
	det := s.DetectAll(faults)
	n := 0
	for _, d := range det {
		if d {
			n++
		}
	}
	return float64(n) / float64(len(faults))
}

// evalGate mirrors netlist's gate semantics (duplicated to keep the hot
// loop free of cross-package calls; netlist's own tests pin the truth
// tables, and TestSimMatchesFullEval pins this copy against them).
func evalGate(k netlist.GateKind, ins []uint64) uint64 {
	switch k {
	case netlist.And:
		v := ^uint64(0)
		for _, x := range ins {
			v &= x
		}
		return v
	case netlist.Or:
		v := uint64(0)
		for _, x := range ins {
			v |= x
		}
		return v
	case netlist.Nand:
		v := ^uint64(0)
		for _, x := range ins {
			v &= x
		}
		return ^v
	case netlist.Nor:
		v := uint64(0)
		for _, x := range ins {
			v |= x
		}
		return ^v
	case netlist.Xor:
		v := uint64(0)
		for _, x := range ins {
			v ^= x
		}
		return v
	case netlist.Xnor:
		v := uint64(0)
		for _, x := range ins {
			v ^= x
		}
		return ^v
	case netlist.Not:
		return ^ins[0]
	case netlist.Buf:
		return ins[0]
	case netlist.Mux2:
		sel, a, b := ins[0], ins[1], ins[2]
		return (a &^ sel) | (b & sel)
	case netlist.Const0:
		return 0
	case netlist.Const1:
		return ^uint64(0)
	}
	panic("fault: unknown gate kind")
}
