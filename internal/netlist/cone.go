package netlist

// Observation points of a full-scan design are FF D inputs and primary
// outputs; control points are FF Q outputs and primary inputs. The cone
// helpers below compute intra-cycle structural reachability between them —
// exactly the relation the ICI rule of the paper constrains.

// ObsPoint names a scan observation point: either a flip-flop (its D input
// is captured on the test's single functional cycle) or a primary output.
type ObsPoint struct {
	FF  FFID // -1 when the point is a primary output
	Out int  // index into Netlist.Outputs when FF == -1
}

// ObsPoints enumerates all observation points, flip-flops first (in FF
// order), then primary outputs. The index of a point in this slice is its
// "scan signature bit" used by the fault simulator.
func (n *Netlist) ObsPoints() []ObsPoint {
	pts := make([]ObsPoint, 0, len(n.FFs)+len(n.Outputs))
	for fi := range n.FFs {
		pts = append(pts, ObsPoint{FF: FFID(fi), Out: -1})
	}
	for oi := range n.Outputs {
		pts = append(pts, ObsPoint{FF: -1, Out: oi})
	}
	return pts
}

// ObsNet returns the net sampled at an observation point.
func (n *Netlist) ObsNet(p ObsPoint) NetID {
	if p.FF >= 0 {
		return n.FFs[p.FF].D
	}
	return n.Outputs[p.Out]
}

// FanInComps returns, for each observation point (same indexing as
// ObsPoints), the set of ICI components whose gates appear in the point's
// intra-cycle combinational fan-in cone. Traversal stops at FF Q nets and
// primary inputs — signals that cross a cycle boundary. A design in which
// every observation point's set is a subset of one "super-component"
// satisfies the paper's ICI rule at that granularity.
func (n *Netlist) FanInComps() [][]CompID {
	pts := n.ObsPoints()
	out := make([][]CompID, len(pts))
	seenGate := make([]int32, len(n.Gates))
	for i := range seenGate {
		seenGate[i] = -1
	}
	var stack []GateID
	for pi, p := range pts {
		net := n.ObsNet(p)
		compSet := map[CompID]bool{}
		stack = stack[:0]
		if g := n.nets[net].gate; g >= 0 {
			stack = append(stack, g)
		}
		for len(stack) > 0 {
			g := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seenGate[g] == int32(pi) {
				continue
			}
			seenGate[g] = int32(pi)
			gt := &n.Gates[g]
			compSet[gt.Comp] = true
			for _, in := range gt.In {
				if d := n.nets[in].gate; d >= 0 {
					stack = append(stack, d)
				}
			}
		}
		comps := make([]CompID, 0, len(compSet))
		for c := range compSet {
			comps = append(comps, c)
		}
		out[pi] = comps
	}
	return out
}

// ForwardCone returns the gates structurally reachable (within one cycle)
// from a fault site, in topological order — the only gates whose values can
// differ from the good machine during a single capture cycle. Used by the
// event-restricted fault simulator. For FF-output faults, the cone starts
// at the gates reading the FF's Q net.
func (n *Netlist) ForwardCone(f Fault) []GateID {
	if err := n.levelize(); err != nil {
		panic(err)
	}
	inCone := make([]bool, len(n.Gates))
	var seed []GateID
	switch {
	case f.Gate >= 0:
		seed = append(seed, f.Gate)
	case f.FF >= 0:
		q := n.FFs[f.FF].Q
		for gi := range n.Gates {
			for _, in := range n.Gates[gi].In {
				if in == q {
					seed = append(seed, GateID(gi))
					break
				}
			}
		}
	}
	stack := append([]GateID(nil), seed...)
	for len(stack) > 0 {
		g := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if inCone[g] {
			continue
		}
		inCone[g] = true
		for _, s := range n.fanout[g] {
			if !inCone[s] {
				stack = append(stack, s)
			}
		}
	}
	cone := make([]GateID, 0, 64)
	for _, g := range n.order {
		if inCone[g] {
			cone = append(cone, g)
		}
	}
	return cone
}

// readersOf is a cached map from net to reading gates, built on demand for
// FF fan-out queries.
func (n *Netlist) readersOf(net NetID) []GateID {
	var out []GateID
	for gi := range n.Gates {
		for _, in := range n.Gates[gi].In {
			if in == net {
				out = append(out, GateID(gi))
				break
			}
		}
	}
	return out
}

// ConeObsPoints returns the indices (into ObsPoints) of observation points
// whose sampled net is driven by a gate in cone, plus — for FF faults — the
// FF's own observation point (a stuck FF output is observed directly when
// the chain is shifted out). obsIndexOfNet must map net->obs index or -1.
func (n *Netlist) ConeObsPoints(cone []GateID, f Fault) []int {
	// map gate output nets in cone
	inCone := map[NetID]bool{}
	for _, g := range cone {
		inCone[n.Gates[g].Out] = true
	}
	var idxs []int
	pts := n.ObsPoints()
	for pi, p := range pts {
		if inCone[n.ObsNet(p)] {
			idxs = append(idxs, pi)
		}
	}
	if f.Gate < 0 && f.FF >= 0 {
		// The faulty FF is itself observed on scan-out.
		idxs = append(idxs, int(f.FF))
	}
	return idxs
}
