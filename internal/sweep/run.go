package sweep

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"rescue/internal/area"
	"rescue/internal/atpg"
	"rescue/internal/fab"
	"rescue/internal/fault"
	"rescue/internal/flows"
	"rescue/internal/rtl"
)

// ErrPointCanceled is the cancellation cause for a single sweep point
// canceled through a Control — the rest of the grid keeps running.
var ErrPointCanceled = errors.New("sweep: point canceled")

// Control provides per-point cancellation for an in-flight sweep: the
// serving layer registers one and routes point-cancel requests through
// it. Canceling an unknown digest is refused; canceling a finished point
// is a no-op that still reports success (the result stands).
type Control struct {
	mu       sync.Mutex
	known    map[string]bool
	canceled map[string]bool
	cancels  map[string]context.CancelCauseFunc
}

// NewControl returns an empty control; Run registers the grid's digests.
func NewControl() *Control {
	return &Control{
		known:    map[string]bool{},
		canceled: map[string]bool{},
		cancels:  map[string]context.CancelCauseFunc{},
	}
}

func (c *Control) register(pts []Point) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, p := range pts {
		c.known[p.Digest] = true
	}
}

// CancelPoint cancels one point by digest. It reports whether the digest
// belongs to the sweep's grid.
func (c *Control) CancelPoint(digest string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.known[digest] {
		return false
	}
	c.canceled[digest] = true
	if cancel := c.cancels[digest]; cancel != nil {
		cancel(ErrPointCanceled)
	}
	return true
}

// arm wires a point's context for cancellation and reports whether the
// point was already canceled before starting.
func (c *Control) arm(ctx context.Context, digest string) (context.Context, func(), bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.canceled[digest] {
		return ctx, func() {}, true
	}
	pctx, cancel := context.WithCancelCause(ctx)
	c.cancels[digest] = cancel
	disarm := func() {
		c.mu.Lock()
		delete(c.cancels, digest)
		c.mu.Unlock()
		cancel(nil)
	}
	return pctx, disarm, false
}

// PointEvent is one progress notification from a running sweep.
type PointEvent struct {
	Index  int
	Total  int
	Digest string
	// Phase: "start", "done", "cached" (journal hit), "remote" (executed
	// on a shard worker), "fallback" (remote failed, ran locally),
	// "canceled", "failed".
	Phase string
	Msg   string
}

// RemoteFunc executes one point somewhere else — typically as a sweep job
// on a worker daemon — and returns the single-point frontier NDJSON. The
// engine verifies the returned point's digest before accepting it, and
// falls back to local execution on error.
type RemoteFunc func(ctx context.Context, spec Spec, pt Point) ([]byte, error)

// Options configures a sweep run. The zero value runs everything locally,
// sequentially, without a journal.
type Options struct {
	Env flows.Env // artifact store; Env.Ck is ignored (the sweep manages its own journals)

	// CheckpointDir holds the sweep's frontier journal and the shared
	// campaign checkpoint. "" disables journaling.
	CheckpointDir string
	Resume        bool

	Concurrency int // points in flight; <= 0 means spec.Concurrency, then 1
	Workers     int // per-point campaign workers; <= 0 means spec.Workers

	Control *Control   // optional per-point cancellation
	Remote  RemoteFunc // optional remote execution hook
	OnPoint func(PointEvent)
}

func (o Options) emit(ev PointEvent) {
	if o.OnPoint != nil {
		o.OnPoint(ev)
	}
}

// journal file names inside CheckpointDir.
const (
	frontierJournal = "frontier.journal"
	campaignJournal = "campaigns.ck"
)

// loadJournal reads completed point results from a frontier journal,
// keeping only digests that belong to the current grid — entries from an
// edited spec are recomputed, never misapplied.
func loadJournal(path string, valid map[string]bool) (map[string]PointResult, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return map[string]PointResult{}, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	done := map[string]PointResult{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var p PointResult
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, fmt.Errorf("sweep: journal %s line %d: %v", path, line, err)
		}
		if valid[p.Digest] {
			done[p.Digest] = p
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return done, nil
}

// journalWriter appends completed point results to the frontier journal,
// syncing after every line so a kill loses at most the in-flight points.
type journalWriter struct {
	mu sync.Mutex
	f  *os.File
}

func (jw *journalWriter) append(p PointResult) error {
	b, err := json.Marshal(p)
	if err != nil {
		return err
	}
	jw.mu.Lock()
	defer jw.mu.Unlock()
	if _, err := jw.f.Write(append(b, '\n')); err != nil {
		return err
	}
	return jw.f.Sync()
}

// Run evaluates the grid and returns the frontier. The result is
// byte-identical (as NDJSON) for the same spec at any concurrency, after
// any kill/resume cycle, and whether points ran locally or remotely.
// On interruption the error is the context's cause and the journal (if
// any) retains every completed point for -resume.
func Run(ctx context.Context, spec Spec, o Options) (*Frontier, error) {
	spec = spec.withDefaults()
	pts, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	if o.Control != nil {
		o.Control.register(pts)
	}
	conc := o.Concurrency
	if conc <= 0 {
		conc = spec.Concurrency
	}
	if conc <= 0 {
		conc = 1
	}
	workers := o.Workers
	if workers <= 0 {
		workers = spec.Workers
	}

	done := map[string]PointResult{}
	var jw *journalWriter
	var ck *fault.Checkpoint
	if o.CheckpointDir != "" {
		if err := os.MkdirAll(o.CheckpointDir, 0o755); err != nil {
			return nil, err
		}
		jpath := filepath.Join(o.CheckpointDir, frontierJournal)
		if o.Resume {
			valid := make(map[string]bool, len(pts))
			for _, p := range pts {
				valid[p.Digest] = true
			}
			if done, err = loadJournal(jpath, valid); err != nil {
				return nil, err
			}
			if ck, err = fault.LoadCheckpoint(filepath.Join(o.CheckpointDir, campaignJournal)); err != nil {
				return nil, err
			}
		} else {
			if _, err := os.Stat(jpath); err == nil {
				return nil, fmt.Errorf("sweep: journal %s already exists; pass resume to continue it or remove the directory", jpath)
			}
			ck = fault.NewCheckpoint(filepath.Join(o.CheckpointDir, campaignJournal))
		}
		// Points bind campaign sections concurrently and in cache-
		// dependent order; content addressing matches them on resume.
		ck.ContentAddressed()
		f, err := os.OpenFile(jpath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return nil, err
		}
		jw = &journalWriter{f: f}
		defer f.Close()
	}

	results := make([]PointResult, len(pts))
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for i, pt := range pts {
		if r, ok := done[pt.Digest]; ok {
			r.Index = pt.Index
			results[i] = r
			o.emit(PointEvent{Index: pt.Index, Total: len(pts), Digest: pt.Digest, Phase: "cached",
				Msg: fmt.Sprintf("point %d/%d %s: journaled", pt.Index+1, len(pts), pt.Digest)})
			continue
		}
		select {
		case <-ctx.Done():
		case sem <- struct{}{}:
			wg.Add(1)
			go func(i int, pt Point) {
				defer wg.Done()
				defer func() { <-sem }()
				r, err := runPoint(ctx, spec, pt, len(pts), o, ck, workers)
				if err != nil {
					fail(err)
					return
				}
				results[i] = r
				if jw != nil && !r.Canceled && r.Error == "" {
					if err := jw.append(r); err != nil {
						fail(err)
					}
				}
			}(i, pt)
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		if ck != nil {
			ck.Flush()
		}
		return nil, context.Cause(ctx)
	}
	if firstErr != nil {
		if ck != nil {
			ck.Flush()
		}
		return nil, firstErr
	}

	f := &Frontier{Points: results}
	f.markPareto()
	if o.CheckpointDir != "" {
		// Complete: the journals have served their purpose. Canceled
		// points are deliberately not journaled, so a later resume of the
		// same directory would rerun them — but a clean completion
		// removes the journals entirely, exactly like the flow CLIs.
		os.Remove(filepath.Join(o.CheckpointDir, frontierJournal))
		os.Remove(filepath.Join(o.CheckpointDir, campaignJournal))
	}
	return f, nil
}

// skeleton fills the identity fields every result carries, whatever its
// outcome.
func skeleton(pt Point) PointResult {
	return PointResult{
		Index:         pt.Index,
		Digest:        pt.Digest,
		Preset:        pt.Preset,
		Overrides:     pt.Overrides,
		NodeNM:        pt.NodeNM,
		StagnateNM:    pt.StagnateNM,
		SelfHealShare: pt.SelfHealShare,
	}
}

// runPoint evaluates one grid cell, honoring per-point cancellation and
// the remote hook. A point-level failure becomes an errored result; only
// sweep-level interruption (ctx done) propagates as an error.
func runPoint(ctx context.Context, spec Spec, pt Point, total int, o Options, ck *fault.Checkpoint, workers int) (PointResult, error) {
	pctx := ctx
	if o.Control != nil {
		var disarm func()
		var already bool
		pctx, disarm, already = o.Control.arm(ctx, pt.Digest)
		if already {
			r := skeleton(pt)
			r.Canceled = true
			o.emit(PointEvent{Index: pt.Index, Total: total, Digest: pt.Digest, Phase: "canceled",
				Msg: fmt.Sprintf("point %d/%d %s: canceled", pt.Index+1, total, pt.Digest)})
			return r, nil
		}
		defer disarm()
	}
	o.emit(PointEvent{Index: pt.Index, Total: total, Digest: pt.Digest, Phase: "start",
		Msg: fmt.Sprintf("point %d/%d %s: %s node=%d stagnate=%d selfheal=%g", pt.Index+1, total,
			pt.Digest, pt.Preset, pt.NodeNM, pt.StagnateNM, pt.SelfHealShare)})

	if o.Remote != nil {
		r, err := runPointRemote(pctx, spec, pt, o)
		if err == nil {
			o.emit(PointEvent{Index: pt.Index, Total: total, Digest: pt.Digest, Phase: "remote",
				Msg: fmt.Sprintf("point %d/%d %s: done (remote)", pt.Index+1, total, pt.Digest)})
			return r, nil
		}
		if ctx.Err() != nil {
			return PointResult{}, context.Cause(ctx)
		}
		if errors.Is(context.Cause(pctx), ErrPointCanceled) {
			r := skeleton(pt)
			r.Canceled = true
			o.emit(PointEvent{Index: pt.Index, Total: total, Digest: pt.Digest, Phase: "canceled",
				Msg: fmt.Sprintf("point %d/%d %s: canceled", pt.Index+1, total, pt.Digest)})
			return r, nil
		}
		o.emit(PointEvent{Index: pt.Index, Total: total, Digest: pt.Digest, Phase: "fallback",
			Msg: fmt.Sprintf("point %d/%d %s: remote failed (%v), running locally", pt.Index+1, total, pt.Digest, err)})
	}

	r, err := runPointLocal(pctx, spec, pt, o.Env, ck, workers)
	switch {
	case err == nil:
		o.emit(PointEvent{Index: pt.Index, Total: total, Digest: pt.Digest, Phase: "done",
			Msg: fmt.Sprintf("point %d/%d %s: yield %.2f%% yat %.4f", pt.Index+1, total, pt.Digest,
				r.EmpYield*100, r.EmpYAT)})
		return r, nil
	case errors.Is(context.Cause(pctx), ErrPointCanceled) && ctx.Err() == nil:
		r = skeleton(pt)
		r.Canceled = true
		o.emit(PointEvent{Index: pt.Index, Total: total, Digest: pt.Digest, Phase: "canceled",
			Msg: fmt.Sprintf("point %d/%d %s: canceled", pt.Index+1, total, pt.Digest)})
		return r, nil
	case ctx.Err() != nil:
		return PointResult{}, context.Cause(ctx)
	case pctx.Err() != nil && context.Cause(pctx) != ErrPointCanceled:
		// The point context expired for a reason other than point cancel
		// (shouldn't happen: only Control cancels pctx) — treat as fatal.
		return PointResult{}, context.Cause(pctx)
	case fault.Interrupted(err):
		// A chaos-armed campaign cancels itself as if the operator hit
		// Ctrl-C — a sweep-level interruption (journal kept for resume),
		// not a defective point.
		return PointResult{}, err
	default:
		r = skeleton(pt)
		r.Error = err.Error()
		o.emit(PointEvent{Index: pt.Index, Total: total, Digest: pt.Digest, Phase: "failed",
			Msg: fmt.Sprintf("point %d/%d %s: %v", pt.Index+1, total, pt.Digest, err)})
		return r, nil
	}
}

// runPointRemote ships the point to the remote hook as a single-point
// spec and verifies the digest of what comes back.
func runPointRemote(ctx context.Context, spec Spec, pt Point, o Options) (PointResult, error) {
	one := SinglePointSpec(spec, pt)
	raw, err := o.Remote(ctx, one, pt)
	if err != nil {
		return PointResult{}, err
	}
	fr, err := ParseNDJSON(bytes.NewReader(raw))
	if err != nil {
		return PointResult{}, err
	}
	if len(fr.Points) != 1 {
		return PointResult{}, fmt.Errorf("sweep: remote returned %d points, want 1", len(fr.Points))
	}
	r := fr.Points[0]
	if r.Digest != pt.Digest {
		return PointResult{}, fmt.Errorf("sweep: remote point digest %s does not match %s — worker ran a different spec", r.Digest, pt.Digest)
	}
	if r.Canceled {
		return PointResult{}, fmt.Errorf("sweep: remote point was canceled on the worker")
	}
	if r.Error != "" {
		return PointResult{}, fmt.Errorf("sweep: remote point failed: %s", r.Error)
	}
	r.Index = pt.Index
	r.Pareto = false // recomputed over the full grid
	return r, nil
}

// runPointLocal evaluates one point against the artifact store: build the
// variant's system, generate tests, build the perf model, run the fab
// fleet, and assemble the result row.
func runPointLocal(ctx context.Context, spec Spec, pt Point, env flows.Env, ck *fault.Checkpoint, workers int) (PointResult, error) {
	env.Ck = ck
	v := pt.Variant
	netKey := v.NetlistKey()

	sys, err := env.SystemAt(netKey, v.Netlist, v.ScanChains, rtl.RescueDesign)
	if err != nil {
		return PointResult{}, fmt.Errorf("build: %w", err)
	}
	if !sys.Audit.OK() {
		return PointResult{}, fmt.Errorf("ICI audit failed: %d violations", len(sys.Audit.Violations))
	}

	gen := atpg.DefaultGenConfig()
	gen.Workers = workers
	tp, err := env.TestProgramAt(ctx, netKey, sys, gen)
	if err != nil {
		return PointResult{}, err
	}

	var names []string
	if spec.Bench != "" {
		names = strings.Split(spec.Bench, ",")
	}
	base := v.Perf.BaselineParams()
	resc, err := v.Perf.RescueParams()
	if err != nil {
		return PointResult{}, err
	}
	pm, err := env.PerfModelAt(ctx, v.PerfKey(), pt.NodeNM, names, spec.Warmup, spec.Commit, workers, base, resc)
	if err != nil {
		return PointResult{}, err
	}

	node, ok := flows.ValidNode(pt.NodeNM)
	if !ok {
		return PointResult{}, fmt.Errorf("sweep: unsupported node %dnm", pt.NodeNM)
	}
	rescArea := v.AreaModel(pt.SelfHealShare)
	baseCM, rescCM := fab.ModelsFromPerf(pm, area.BaselineWithScan(), rescArea)
	eng, err := fab.New(sys, tp, baseCM, rescCM, fab.Config{
		Dies: spec.Dies, Node: node, Stagnate: area.Node(pt.StagnateNM),
		Growth: spec.Growth, Seed: spec.Seed, Workers: workers,
		SelfHealShare: pt.SelfHealShare,
	})
	if err != nil {
		return PointResult{}, err
	}
	rep, err := eng.Run(ctx, ck)
	if err != nil {
		return PointResult{}, err
	}

	r := skeleton(pt)
	r.Gates = sys.Design.N.NumGates()
	r.ScanCells = tp.Gen.ScanCells
	r.Vectors = tp.Gen.Vectors
	r.TestCycles = tp.Gen.Cycles
	r.Coverage = tp.Gen.Coverage
	r.CoreArea = rep.CoreArea
	r.Cores = rep.Cores
	r.EmpYield = rep.EmpYield
	r.EmpYieldCI = rep.EmpYieldCI
	r.AnaYield = rep.AnaYield
	r.EmpYAT = rep.EmpYAT
	r.EmpYATCI = rep.EmpYATCI
	r.AnaYAT = rep.AnaChip.Rescue
	return r, nil
}
