// Package flows holds the shared flow entry points behind the rescue
// commands and the serving daemon: one function per report (Table 3 ATPG,
// fault dictionary, isolation campaign, Figure 9 YAT, Monte Carlo fab
// fleet) that writes exactly the text the corresponding CLI prints, so a
// job served by rescued is byte-identical to a direct command run — and to
// the committed golden files.
//
// Backing the flows is a content-addressed artifact store: expensive
// intermediates (built netlists, generated ATPG test sets, per-node IPC
// tables, fault dictionaries) are keyed by a digest of the inputs that
// determine them — generator, configuration, seed — computed once under
// singleflight, and shared by every subsequent request. Worker count is
// deliberately absent from every key: campaign results are bit-identical
// at any concurrency (pinned by CI's golden checks), so a table built at
// -workers 1 serves a -workers 4 job unchanged.
package flows

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
)

// Store is an in-memory content-addressed artifact cache with singleflight
// builds: the first requester of a key runs the build while concurrent
// requesters for the same key block and share the one result. A failed
// build is not retained, so transient errors (cancelled jobs included) do
// not poison the cache.
type Store struct {
	mu      sync.Mutex
	entries map[string]*flight

	hits   atomic.Int64
	misses atomic.Int64
	builds atomic.Int64
}

type flight struct {
	done chan struct{}
	val  any
	err  error
}

// NewStore returns an empty artifact store.
func NewStore() *Store {
	return &Store{entries: map[string]*flight{}}
}

// Hits counts requests served from a completed or in-flight entry.
func (s *Store) Hits() int64 { return s.hits.Load() }

// Misses counts requests that had to start a build.
func (s *Store) Misses() int64 { return s.misses.Load() }

// Builds counts builds actually executed (== Misses; kept separate so the
// metrics read naturally).
func (s *Store) Builds() int64 { return s.builds.Load() }

// Len reports the number of retained artifacts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// do returns the artifact for key, building it with build on a miss.
// hit reports whether the value came from the cache (including joining an
// in-flight build — "concurrent identical submissions share one entry").
// On build error the partial value is returned to every waiter and the
// entry is dropped.
func (s *Store) do(key string, build func() (any, error)) (val any, hit bool, err error) {
	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.mu.Unlock()
		<-e.done
		s.hits.Add(1)
		return e.val, true, e.err
	}
	e := &flight{done: make(chan struct{})}
	s.entries[key] = e
	s.mu.Unlock()

	s.misses.Add(1)
	s.builds.Add(1)
	e.val, e.err = build()
	if e.err != nil {
		s.mu.Lock()
		delete(s.entries, key)
		s.mu.Unlock()
	}
	close(e.done)
	return e.val, false, e.err
}

// digest canonicalizes a key struct into its content address. Key structs
// marshal deterministically (fixed field order, no maps), so equal inputs
// always produce equal digests.
func digest(kind string, key any) string {
	b, err := json.Marshal(key)
	if err != nil {
		// Key structs are plain data; a marshal failure is a programming
		// error worth failing loudly on.
		panic(fmt.Sprintf("flows: cannot digest %s key: %v", kind, err))
	}
	sum := sha256.Sum256(append([]byte(kind+"\x00"), b...))
	return kind + ":" + hex.EncodeToString(sum[:8])
}
