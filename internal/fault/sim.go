package fault

import (
	"rescue/internal/netlist"
	"rescue/internal/scan"
)

// FailBit records one failing observation: pattern word w, lane l within
// the word, observation point index obs (netlist.ObsPoints order: FF scan
// bits first, then primary outputs).
type FailBit struct {
	Word, Lane, Obs int
}

// Result is the outcome of simulating one fault against a pattern set.
type Result struct {
	Detected bool
	// Fails lists failing bits, at most the maxFail cap passed to Run
	// (0 = unlimited). Isolation needs every distinct failing obs point,
	// detection needs only one.
	Fails []FailBit
	// FailObs is the deduplicated set of failing observation points.
	FailObs []int
}

// Sim is a fault simulator bound to a netlist, a scan chain, and a growable
// pattern set. Good-machine responses and full good-machine net images are
// precomputed per pattern word; each fault is then simulated event-driven —
// only gates the fault effect actually reaches are re-evaluated, so the
// cost per (fault, word) is proportional to the propagation region, which
// is tiny whenever the pattern does not excite the fault.
type Sim struct {
	C        *scan.Chain
	N        *netlist.Netlist
	Patterns []*scan.Pattern

	goodResp [][]uint64 // [word][obs]
	goodNets [][]uint64 // [word][net] post-EvalComb values (pre-capture)

	// static structure
	level      []int32 // per-gate combinational level
	maxLevel   int32
	netReaders [][]netlist.GateID // per-net reading gates
	obsOfNet   []int32            // per-net observation index or -1

	// per-run scratch
	scratch []uint64 // per-net faulty values (valid when epoch matches)
	epoch   []int32
	curEp   int32
	buckets [][]netlist.GateID // event queue bucketed by level
	schedEp []int32            // per-gate scheduled marker
}

// NewSim builds a simulator and precomputes good-machine behavior for the
// given patterns (which may be nil; use AddPattern to grow the set).
func NewSim(c *scan.Chain, patterns []*scan.Pattern) *Sim {
	n := c.N
	s := &Sim{C: c, N: n}
	// levels
	s.level = make([]int32, n.NumGates())
	for _, gi := range n.TopoOrder() {
		var lv int32
		for _, in := range n.Gates[gi].In {
			if d := n.DriverGate(in); d >= 0 {
				if s.level[d]+1 > lv {
					lv = s.level[d] + 1
				}
			}
		}
		s.level[gi] = lv
		if lv > s.maxLevel {
			s.maxLevel = lv
		}
	}
	// per-net readers
	s.netReaders = make([][]netlist.GateID, n.NumNets())
	for gi := range n.Gates {
		for _, in := range n.Gates[gi].In {
			s.netReaders[in] = append(s.netReaders[in], netlist.GateID(gi))
		}
	}
	// observation index per net
	s.obsOfNet = make([]int32, n.NumNets())
	for i := range s.obsOfNet {
		s.obsOfNet[i] = -1
	}
	for fi := range n.FFs {
		s.obsOfNet[n.FFs[fi].D] = int32(fi)
	}
	for oi, out := range n.Outputs {
		s.obsOfNet[out] = int32(n.NumFFs() + oi)
	}
	s.scratch = make([]uint64, n.NumNets())
	s.epoch = make([]int32, n.NumNets())
	for i := range s.epoch {
		s.epoch[i] = -1
	}
	s.buckets = make([][]netlist.GateID, s.maxLevel+1)
	s.schedEp = make([]int32, n.NumGates())
	for i := range s.schedEp {
		s.schedEp[i] = -1
	}
	for _, p := range patterns {
		s.AddPattern(p)
	}
	return s
}

// AddPattern appends a pattern word and precomputes its good-machine image.
// Used by the ATPG generator, which grows the pattern set incrementally.
func (s *Sim) AddPattern(p *scan.Pattern) {
	st := s.N.NewState()
	s.C.Load(st, p)
	st.EvalComb(netlist.NoFault)
	nets := make([]uint64, len(st.Vals))
	copy(nets, st.Vals)
	s.goodNets = append(s.goodNets, nets)
	resp := make([]uint64, s.N.NumFFs()+len(s.N.Outputs))
	for fi := 0; fi < s.N.NumFFs(); fi++ {
		resp[fi] = st.Get(s.N.FFs[fi].D)
	}
	for oi, out := range s.N.Outputs {
		resp[s.N.NumFFs()+oi] = st.Get(out)
	}
	s.goodResp = append(s.goodResp, resp)
	s.Patterns = append(s.Patterns, p)
}

// GoodResponse returns the good-machine response words of pattern word w.
func (s *Sim) GoodResponse(w int) []uint64 { return s.goodResp[w] }

// Run simulates fault f against every pattern. If maxFail > 0, simulation
// stops after collecting that many failing bits (fast detection mode);
// isolation uses maxFail = 0 to gather every failing observation point.
func (s *Sim) Run(f netlist.Fault, maxFail int) Result {
	return s.run(f, maxFail, 0, len(s.Patterns))
}

// RunWord simulates fault f against pattern word w only — the ATPG
// fault-dropping inner loop.
func (s *Sim) RunWord(f netlist.Fault, w, maxFail int) Result {
	return s.run(f, maxFail, w, w+1)
}

// schedule enqueues a gate for (re)evaluation in the current event pass.
func (s *Sim) schedule(g netlist.GateID) {
	if s.schedEp[g] == s.curEp {
		return
	}
	s.schedEp[g] = s.curEp
	lv := s.level[g]
	s.buckets[lv] = append(s.buckets[lv], g)
}

func (s *Sim) run(f netlist.Fault, maxFail, wLo, wHi int) Result {
	res := Result{}
	obsSeen := map[int]bool{}

	var stuckWord uint64
	if f.StuckAt1 {
		stuckWord = ^uint64(0)
	}

	for w := wLo; w < wHi; w++ {
		mask := s.Patterns[w].LaneMask()
		good := s.goodNets[w]

		s.curEp++
		for i := range s.buckets {
			s.buckets[i] = s.buckets[i][:0]
		}

		// record a failing observation at net if it differs from good
		observe := func(net netlist.NetID, faulty uint64) bool {
			oi := s.obsOfNet[net]
			if oi < 0 {
				return false
			}
			diff := (faulty ^ s.goodResp[w][oi]) & mask
			if diff == 0 {
				return false
			}
			res.Detected = true
			if !obsSeen[int(oi)] {
				obsSeen[int(oi)] = true
				res.FailObs = append(res.FailObs, int(oi))
			}
			for lane := 0; lane < 64 && diff != 0; lane++ {
				if diff&(1<<uint(lane)) != 0 {
					res.Fails = append(res.Fails, FailBit{Word: w, Lane: lane, Obs: int(oi)})
					diff &^= 1 << uint(lane)
					if maxFail > 0 && len(res.Fails) >= maxFail {
						return true
					}
				}
			}
			return false
		}

		// seed events at the fault site
		switch {
		case f.Gate >= 0:
			s.schedule(f.Gate)
		case f.FF >= 0:
			q := s.N.FFs[f.FF].Q
			if (stuckWord^good[q])&mask != 0 {
				s.scratch[q] = stuckWord
				s.epoch[q] = s.curEp
				for _, r := range s.netReaders[q] {
					s.schedule(r)
				}
			}
			// the faulty FF's own scan-out bit reads the stuck value
			diff := (stuckWord ^ s.goodResp[w][f.FF]) & mask
			if diff != 0 {
				res.Detected = true
				if !obsSeen[int(f.FF)] {
					obsSeen[int(f.FF)] = true
					res.FailObs = append(res.FailObs, int(f.FF))
				}
				for lane := 0; lane < 64 && diff != 0; lane++ {
					if diff&(1<<uint(lane)) != 0 {
						res.Fails = append(res.Fails, FailBit{Word: w, Lane: lane, Obs: int(f.FF)})
						diff &^= 1 << uint(lane)
						if maxFail > 0 && len(res.Fails) >= maxFail {
							return res
						}
					}
				}
			}
		}

		// event-driven propagation in level order
		stop := false
		for lv := int32(0); lv <= s.maxLevel && !stop; lv++ {
			for bi := 0; bi < len(s.buckets[lv]); bi++ {
				gi := s.buckets[lv][bi]
				g := &s.N.Gates[gi]
				var buf [8]uint64
				ins := buf[:0]
				for _, in := range g.In {
					if s.epoch[in] == s.curEp {
						ins = append(ins, s.scratch[in])
					} else {
						ins = append(ins, good[in])
					}
				}
				if f.Gate == gi && f.Pin >= 0 {
					ins[f.Pin] = stuckWord
				}
				v := evalGate(g.Kind, ins)
				if f.Gate == gi && f.Pin < 0 {
					v = stuckWord
				}
				if (v^good[g.Out])&mask == 0 {
					continue // effect died here
				}
				s.scratch[g.Out] = v
				s.epoch[g.Out] = s.curEp
				if observe(g.Out, v) {
					stop = true
					break
				}
				for _, r := range s.netReaders[g.Out] {
					s.schedule(r)
				}
			}
		}
		if stop {
			return res
		}
	}
	return res
}

// DetectAll runs detection-only simulation for a list of faults and
// returns a bitmap of which were detected by the pattern set.
func (s *Sim) DetectAll(faults []netlist.Fault) []bool {
	out := make([]bool, len(faults))
	for i, f := range faults {
		out[i] = s.Run(f, 1).Detected
	}
	return out
}

// Coverage reports the fraction of the given faults detected.
func (s *Sim) Coverage(faults []netlist.Fault) float64 {
	if len(faults) == 0 {
		return 1
	}
	det := s.DetectAll(faults)
	n := 0
	for _, d := range det {
		if d {
			n++
		}
	}
	return float64(n) / float64(len(faults))
}

// evalGate mirrors netlist's gate semantics (duplicated to keep the hot
// loop free of cross-package calls; netlist's own tests pin the truth
// tables, and TestSimMatchesFullEval pins this copy against them).
func evalGate(k netlist.GateKind, ins []uint64) uint64 {
	switch k {
	case netlist.And:
		v := ^uint64(0)
		for _, x := range ins {
			v &= x
		}
		return v
	case netlist.Or:
		v := uint64(0)
		for _, x := range ins {
			v |= x
		}
		return v
	case netlist.Nand:
		v := ^uint64(0)
		for _, x := range ins {
			v &= x
		}
		return ^v
	case netlist.Nor:
		v := uint64(0)
		for _, x := range ins {
			v |= x
		}
		return ^v
	case netlist.Xor:
		v := uint64(0)
		for _, x := range ins {
			v ^= x
		}
		return v
	case netlist.Xnor:
		v := uint64(0)
		for _, x := range ins {
			v ^= x
		}
		return ^v
	case netlist.Not:
		return ^ins[0]
	case netlist.Buf:
		return ins[0]
	case netlist.Mux2:
		sel, a, b := ins[0], ins[1], ins[2]
		return (a &^ sel) | (b & sel)
	case netlist.Const0:
		return 0
	case netlist.Const1:
		return ^uint64(0)
	}
	panic("fault: unknown gate kind")
}
