// Package netlist provides a gate-level structural netlist intermediate
// representation: combinational gates, D flip-flops, primary inputs and
// outputs, and per-gate component tags used by the ICI (intra-cycle logic
// independence) analysis.
//
// A Netlist plays the role of the paper's post-synthesis gate-level verilog
// description. It is deliberately simple — single clock domain, two-valued
// simulation semantics, full-scan-friendly — because that is exactly the
// setting the Rescue paper assumes (full scan, single stuck-at faults,
// single-cycle capture tests).
package netlist

import (
	"fmt"
	"sort"
)

// GateKind enumerates the supported combinational cell types.
type GateKind uint8

// Supported gate kinds. Mux2 has inputs [sel, a, b] and computes
// "if sel then b else a". Const0/Const1 are tie cells with no inputs.
const (
	And GateKind = iota
	Or
	Nand
	Nor
	Xor
	Xnor
	Not
	Buf
	Mux2
	Const0
	Const1
)

var gateNames = [...]string{"AND", "OR", "NAND", "NOR", "XOR", "XNOR", "NOT", "BUF", "MUX2", "CONST0", "CONST1"}

func (k GateKind) String() string {
	if int(k) < len(gateNames) {
		return gateNames[k]
	}
	return fmt.Sprintf("GateKind(%d)", uint8(k))
}

// NetID identifies a net (a single-bit signal) in a Netlist.
type NetID int32

// GateID identifies a gate in a Netlist.
type GateID int32

// FFID identifies a flip-flop in a Netlist.
type FFID int32

// CompID identifies an ICI component (the paper's "logic component" / LC).
// Component 0 is the anonymous default component.
type CompID int32

// InvalidNet is returned by lookups that fail.
const InvalidNet NetID = -1

// Gate is a combinational cell. In holds the input nets (for Mux2:
// [sel, a, b]); Out is the single output net. Comp tags the ICI component
// the gate belongs to.
type Gate struct {
	Kind GateKind
	In   []NetID
	Out  NetID
	Comp CompID
}

// FF is a positive-edge D flip-flop; after scan insertion it becomes a scan
// cell. Comp tags the component whose output register this FF implements.
type FF struct {
	D    NetID
	Q    NetID
	Comp CompID
	Name string
}

type netInfo struct {
	name string
	// driver bookkeeping: exactly one of gate/ff/input may drive a net.
	gate  GateID // -1 if none
	ff    FFID   // -1 if none
	input bool
}

// Netlist is a single-clock gate-level circuit.
type Netlist struct {
	Name string

	nets  []netInfo
	Gates []Gate
	FFs   []FF

	Inputs  []NetID
	Outputs []NetID

	compNames []string
	curComp   CompID

	// lazily computed
	order   []GateID // topological order of gates
	fanout  [][]GateID
	levelOK bool
}

// New returns an empty netlist with the given name. Component 0 is
// pre-registered as "<anon>".
func New(name string) *Netlist {
	return &Netlist{Name: name, compNames: []string{"<anon>"}}
}

// NumNets reports the number of nets.
func (n *Netlist) NumNets() int { return len(n.nets) }

// NumGates reports the number of gates.
func (n *Netlist) NumGates() int { return len(n.Gates) }

// NumFFs reports the number of flip-flops.
func (n *Netlist) NumFFs() int { return len(n.FFs) }

// NetName returns the declared name of a net ("" if unnamed).
func (n *Netlist) NetName(id NetID) string { return n.nets[id].name }

// Component registers (or finds) a component by name and makes it current:
// gates and FFs created afterwards are tagged with it until the next call.
func (n *Netlist) Component(name string) CompID {
	for i, s := range n.compNames {
		if s == name {
			n.curComp = CompID(i)
			return n.curComp
		}
	}
	n.compNames = append(n.compNames, name)
	n.curComp = CompID(len(n.compNames) - 1)
	return n.curComp
}

// CompName returns a component's registered name.
func (n *Netlist) CompName(c CompID) string { return n.compNames[c] }

// NumComps reports the number of registered components (including <anon>).
func (n *Netlist) NumComps() int { return len(n.compNames) }

// CurrentComp returns the component gates are currently tagged with.
func (n *Netlist) CurrentComp() CompID { return n.curComp }

// SetCurrentComp switches the current component without registering a name.
func (n *Netlist) SetCurrentComp(c CompID) { n.curComp = c }

func (n *Netlist) newNet(name string) NetID {
	n.nets = append(n.nets, netInfo{name: name, gate: -1, ff: -1})
	n.levelOK = false
	return NetID(len(n.nets) - 1)
}

// Input declares a primary input and returns its net.
func (n *Netlist) Input(name string) NetID {
	id := n.newNet(name)
	n.nets[id].input = true
	n.Inputs = append(n.Inputs, id)
	return id
}

// Output declares net id to be a primary output.
func (n *Netlist) Output(id NetID, name string) {
	if name != "" && n.nets[id].name == "" {
		n.nets[id].name = name
	}
	n.Outputs = append(n.Outputs, id)
}

// AddGate appends a gate of kind k reading ins, returning its output net.
func (n *Netlist) AddGate(k GateKind, ins ...NetID) NetID {
	switch k {
	case Not, Buf:
		if len(ins) != 1 {
			panic(fmt.Sprintf("netlist: %v needs 1 input, got %d", k, len(ins)))
		}
	case Mux2:
		if len(ins) != 3 {
			panic(fmt.Sprintf("netlist: MUX2 needs 3 inputs (sel,a,b), got %d", len(ins)))
		}
	case Const0, Const1:
		if len(ins) != 0 {
			panic("netlist: const gate takes no inputs")
		}
	default:
		if len(ins) < 2 {
			panic(fmt.Sprintf("netlist: %v needs >=2 inputs, got %d", k, len(ins)))
		}
	}
	out := n.newNet("")
	g := Gate{Kind: k, In: append([]NetID(nil), ins...), Out: out, Comp: n.curComp}
	n.Gates = append(n.Gates, g)
	n.nets[out].gate = GateID(len(n.Gates) - 1)
	return out
}

// Convenience constructors for the common gate kinds.

// And returns the AND of the given nets.
func (n *Netlist) And(ins ...NetID) NetID { return n.AddGate(And, ins...) }

// Or returns the OR of the given nets.
func (n *Netlist) Or(ins ...NetID) NetID { return n.AddGate(Or, ins...) }

// Nand returns the NAND of the given nets.
func (n *Netlist) Nand(ins ...NetID) NetID { return n.AddGate(Nand, ins...) }

// Nor returns the NOR of the given nets.
func (n *Netlist) Nor(ins ...NetID) NetID { return n.AddGate(Nor, ins...) }

// Xor returns the XOR of the given nets.
func (n *Netlist) Xor(ins ...NetID) NetID { return n.AddGate(Xor, ins...) }

// Xnor returns the XNOR of the given nets.
func (n *Netlist) Xnor(ins ...NetID) NetID { return n.AddGate(Xnor, ins...) }

// Not returns the complement of a net.
func (n *Netlist) Not(in NetID) NetID { return n.AddGate(Not, in) }

// Buf returns a buffered copy of a net.
func (n *Netlist) Buf(in NetID) NetID { return n.AddGate(Buf, in) }

// Mux returns "sel ? b : a".
func (n *Netlist) Mux(sel, a, b NetID) NetID { return n.AddGate(Mux2, sel, a, b) }

// Const returns a tie-0 or tie-1 net.
func (n *Netlist) Const(v bool) NetID {
	if v {
		return n.AddGate(Const1)
	}
	return n.AddGate(Const0)
}

// AddFF appends a D flip-flop capturing net d, returning its Q net.
func (n *Netlist) AddFF(d NetID, name string) NetID {
	q := n.newNet(name)
	ff := FF{D: d, Q: q, Comp: n.curComp, Name: name}
	n.FFs = append(n.FFs, ff)
	n.nets[q].ff = FFID(len(n.FFs) - 1)
	return q
}

// DeclFF declares a flip-flop whose D input is not known yet — the idiom
// for feedback loops, where the Q net must exist before the logic that
// computes D can be built. The FF's D is InvalidNet until BindFFD is
// called; Validate rejects unbound FFs. Returns the FF and its Q net.
func (n *Netlist) DeclFF(name string) (FFID, NetID) {
	q := n.newNet(name)
	ff := FF{D: InvalidNet, Q: q, Comp: n.curComp, Name: name}
	n.FFs = append(n.FFs, ff)
	id := FFID(len(n.FFs) - 1)
	n.nets[q].ff = id
	return id, q
}

// BindFFD connects a declared flip-flop's D input to net d.
func (n *Netlist) BindFFD(ff FFID, d NetID) {
	n.FFs[ff].D = d
	n.levelOK = false
}

// DriverGate returns the gate driving net id, or -1 if it is driven by a
// flip-flop, a primary input, or nothing.
func (n *Netlist) DriverGate(id NetID) GateID { return n.nets[id].gate }

// DriverFF returns the flip-flop driving net id, or -1.
func (n *Netlist) DriverFF(id NetID) FFID { return n.nets[id].ff }

// IsInput reports whether net id is a primary input.
func (n *Netlist) IsInput(id NetID) bool { return n.nets[id].input }

// Validate checks structural sanity: every gate input driven, no
// combinational cycles, no floating FF D inputs. It returns the first
// problem found.
func (n *Netlist) Validate() error {
	for gi, g := range n.Gates {
		for pi, in := range g.In {
			if in < 0 || int(in) >= len(n.nets) {
				return fmt.Errorf("netlist %s: gate %d pin %d references invalid net %d", n.Name, gi, pi, in)
			}
			ni := n.nets[in]
			if ni.gate < 0 && ni.ff < 0 && !ni.input {
				return fmt.Errorf("netlist %s: gate %d pin %d reads undriven net %d (%s)", n.Name, gi, pi, in, ni.name)
			}
		}
	}
	for fi, ff := range n.FFs {
		if ff.D < 0 || int(ff.D) >= len(n.nets) {
			return fmt.Errorf("netlist %s: FF %d (%s) has unbound or invalid D net %d", n.Name, fi, ff.Name, ff.D)
		}
		ni := n.nets[ff.D]
		if ni.gate < 0 && ni.ff < 0 && !ni.input {
			return fmt.Errorf("netlist %s: FF %d (%s) has undriven D net %d", n.Name, fi, ff.Name, ff.D)
		}
	}
	if err := n.levelize(); err != nil {
		return err
	}
	return nil
}

// levelize computes a topological order of the gates. FF Q nets and primary
// inputs are sources; a cycle among gates is a combinational loop error.
func (n *Netlist) levelize() error {
	if n.levelOK {
		return nil
	}
	indeg := make([]int32, len(n.Gates))
	// fanout from gate -> gates reading its output
	fanout := make([][]GateID, len(n.Gates))
	for gi := range n.Gates {
		g := &n.Gates[gi]
		for _, in := range g.In {
			if d := n.nets[in].gate; d >= 0 {
				fanout[d] = append(fanout[d], GateID(gi))
				indeg[gi]++
			}
		}
	}
	order := make([]GateID, 0, len(n.Gates))
	queue := make([]GateID, 0, len(n.Gates))
	for gi := range n.Gates {
		if indeg[gi] == 0 {
			queue = append(queue, GateID(gi))
		}
	}
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		order = append(order, g)
		for _, s := range fanout[g] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != len(n.Gates) {
		// find one gate on a cycle for the error message
		for gi := range n.Gates {
			if indeg[gi] > 0 {
				return fmt.Errorf("netlist %s: combinational cycle through gate %d (%v, comp %s)",
					n.Name, gi, n.Gates[gi].Kind, n.compNames[n.Gates[gi].Comp])
			}
		}
		return fmt.Errorf("netlist %s: combinational cycle", n.Name)
	}
	n.order = order
	n.fanout = fanout
	n.levelOK = true
	return nil
}

// TopoOrder returns the gates in topological (evaluation) order.
func (n *Netlist) TopoOrder() []GateID {
	if err := n.levelize(); err != nil {
		panic(err)
	}
	return n.order
}

// GateFanout returns, for each gate, the gates that read its output.
func (n *Netlist) GateFanout() [][]GateID {
	if err := n.levelize(); err != nil {
		panic(err)
	}
	return n.fanout
}

// Stats summarizes netlist size.
type Stats struct {
	Gates   int
	FFs     int
	Nets    int
	Inputs  int
	Outputs int
	Pins    int // total gate input pins
	ByKind  map[GateKind]int
	ByComp  map[string]int // gate count per component
}

// Stats computes size statistics.
func (n *Netlist) Stats() Stats {
	s := Stats{
		Gates:   len(n.Gates),
		FFs:     len(n.FFs),
		Nets:    len(n.nets),
		Inputs:  len(n.Inputs),
		Outputs: len(n.Outputs),
		ByKind:  map[GateKind]int{},
		ByComp:  map[string]int{},
	}
	for _, g := range n.Gates {
		s.Pins += len(g.In)
		s.ByKind[g.Kind]++
		s.ByComp[n.compNames[g.Comp]]++
	}
	return s
}

// ComponentsUsed returns the sorted list of component names that tag at
// least one gate or FF.
func (n *Netlist) ComponentsUsed() []string {
	used := map[string]bool{}
	for _, g := range n.Gates {
		used[n.compNames[g.Comp]] = true
	}
	for _, ff := range n.FFs {
		used[n.compNames[ff.Comp]] = true
	}
	out := make([]string, 0, len(used))
	for s := range used {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
