package rtl

import (
	"fmt"
	"strings"
	"testing"

	"rescue/internal/netlist"
)

// findFFQ looks up a flip-flop's Q net by name.
func findFFQ(t *testing.T, n *netlist.Netlist, name string) netlist.NetID {
	t.Helper()
	for i := range n.FFs {
		if n.FFs[i].Name == name {
			return n.FFs[i].Q
		}
	}
	t.Fatalf("FF %q not found", name)
	return 0
}

// findFFD returns the D net feeding a named flip-flop.
func findFFD(t *testing.T, n *netlist.Netlist, name string) netlist.NetID {
	t.Helper()
	for i := range n.FFs {
		if n.FFs[i].Name == name {
			return n.FFs[i].D
		}
	}
	t.Fatalf("FF %q not found", name)
	return 0
}

// setInput drives a named primary input across all lanes.
func setInput(t *testing.T, n *netlist.Netlist, s *netlist.State, name string, v bool) {
	t.Helper()
	for _, in := range n.Inputs {
		if n.NetName(in) == name {
			s.SetBool(in, v)
			return
		}
	}
	t.Fatalf("input %q not found", name)
}

// TestRouteStageMasksFaultyWay checks the Rescue map-out behavior in the
// actual gate-level netlist: with frontend way 0 fault-mapped, the routing
// stage never delivers a valid instruction to way 0, and way 1 receives
// fetched instruction 0 (program order preserved on fault-free ways).
func TestRouteStageMasksFaultyWay(t *testing.T) {
	d, err := Build(Small(), RescueDesign)
	if err != nil {
		t.Fatal(err)
	}
	n := d.N
	s := n.NewState()

	// mark frontend way 0 faulty in the fault-map register
	s.SetBool(findFFQ(t, n, "fmap.fe.q[0]"), true)
	// both fetched slots valid
	s.SetBool(findFFQ(t, n, "fetch.i0.valid.q"), true)
	s.SetBool(findFFQ(t, n, "fetch.i1.valid.q"), true)
	// give the two fetched instructions distinct dest fields
	s.SetBool(findFFQ(t, n, "fetch.i0.dest.q[0]"), true)  // inst0 dest = ...1
	s.SetBool(findFFQ(t, n, "fetch.i1.dest.q[0]"), false) // inst1 dest = ...0

	s.EvalComb(netlist.NoFault)

	// way 0 output latch must capture valid=0
	if v := s.Get(findFFD(t, n, "route.i0.valid.q")); v&1 != 0 {
		t.Error("fault-mapped way 0 still receives a valid instruction")
	}
	// way 1 must receive fetched instruction 0 (rank 0 among fault-free)
	if v := s.Get(findFFD(t, n, "route.i1.valid.q")); v&1 != 1 {
		t.Error("way 1 should carry instruction 0")
	}
	if v := s.Get(findFFD(t, n, "route.i1.dest.q[0]")); v&1 != 1 {
		t.Error("way 1 should carry fetched instruction 0's dest field")
	}
}

// TestRouteStageNoFaults checks the identity routing with a clean map.
func TestRouteStageNoFaults(t *testing.T) {
	d, err := Build(Small(), RescueDesign)
	if err != nil {
		t.Fatal(err)
	}
	n := d.N
	s := n.NewState()
	s.SetBool(findFFQ(t, n, "fetch.i0.valid.q"), true)
	s.SetBool(findFFQ(t, n, "fetch.i1.valid.q"), true)
	s.SetBool(findFFQ(t, n, "fetch.i0.dest.q[0]"), true)
	s.EvalComb(netlist.NoFault)
	if v := s.Get(findFFD(t, n, "route.i0.valid.q")); v&1 != 1 {
		t.Error("way 0 should be valid with a clean fault map")
	}
	if v := s.Get(findFFD(t, n, "route.i0.dest.q[0]")); v&1 != 1 {
		t.Error("way 0 should carry instruction 0 with a clean map")
	}
}

// TestIssueSelectRespectsHalfDisable: with IQ half 0 fault-mapped, its
// select slots never assert valid even when its entries are ready.
func TestIssueSelectRespectsHalfDisable(t *testing.T) {
	d, err := Build(Small(), RescueDesign)
	if err != nil {
		t.Fatal(err)
	}
	n := d.N
	s := n.NewState()
	// make every half-0 entry valid and ready
	h := Small().IQEntries / 2
	for e := 0; e < h; e++ {
		s.SetBool(findFFQ(t, n, fmt.Sprintf("iq0.e%d.valid", e)), true)
		s.SetBool(findFFQ(t, n, fmt.Sprintf("iq0.e%d.rdy1", e)), true)
		s.SetBool(findFFQ(t, n, fmt.Sprintf("iq0.e%d.rdy2", e)), true)
	}
	s.SetBool(findFFQ(t, n, "fmap.iq.q[0]"), true) // half 0 faulty
	s.EvalComb(netlist.NoFault)
	for k := 0; k < Small().Ways; k++ {
		if v := s.Get(findFFD(t, n, fmt.Sprintf("iq0.sel%d.valid", k))); v&1 != 0 {
			t.Errorf("select slot %d asserted from a fault-mapped half", k)
		}
	}
	// clean map: slot 0 must select
	s2 := n.NewState()
	for e := 0; e < h; e++ {
		s2.SetBool(findFFQ(t, n, fmt.Sprintf("iq0.e%d.valid", e)), true)
		s2.SetBool(findFFQ(t, n, fmt.Sprintf("iq0.e%d.rdy1", e)), true)
		s2.SetBool(findFFQ(t, n, fmt.Sprintf("iq0.e%d.rdy2", e)), true)
	}
	s2.EvalComb(netlist.NoFault)
	if v := s2.Get(findFFD(t, n, "iq0.sel0.valid")); v&1 != 1 {
		t.Error("select slot 0 should fire with ready entries and a clean map")
	}
}

// TestSelectResourceThermometer: with one backend way fault-mapped, the
// last select slot is disabled (select up to n-1, Section 4.1.3).
func TestSelectResourceThermometer(t *testing.T) {
	cfg := Small()
	d, err := Build(cfg, RescueDesign)
	if err != nil {
		t.Fatal(err)
	}
	n := d.N
	s := n.NewState()
	h := cfg.IQEntries / 2
	for e := 0; e < h; e++ {
		s.SetBool(findFFQ(t, n, fmt.Sprintf("iq0.e%d.valid", e)), true)
		s.SetBool(findFFQ(t, n, fmt.Sprintf("iq0.e%d.rdy1", e)), true)
		s.SetBool(findFFQ(t, n, fmt.Sprintf("iq0.e%d.rdy2", e)), true)
	}
	s.SetBool(findFFQ(t, n, "fmap.be.q[0]"), true) // one backend way down
	s.EvalComb(netlist.NoFault)
	last := cfg.Ways - 1
	if v := s.Get(findFFD(t, n, fmt.Sprintf("iq0.sel%d.valid", last))); v&1 != 0 {
		t.Errorf("slot %d should be budget-disabled with a backend way down", last)
	}
	if v := s.Get(findFFD(t, n, "iq0.sel0.valid")); v&1 != 1 {
		t.Error("slot 0 should still select")
	}
}

// TestCommitGating: a fault-mapped backend way's commit outputs are forced
// to zero (write-port disable, Sections 4.8/4.9).
func TestCommitGating(t *testing.T) {
	d, err := Build(Small(), RescueDesign)
	if err != nil {
		t.Fatal(err)
	}
	n := d.N
	s := n.NewState()
	// put data in way 0's writeback latch and mark the way faulty
	for i := 0; i < Small().DataW; i++ {
		s.SetBool(findFFQ(t, n, fmt.Sprintf("rf.wb0.data[%d]", i)), true)
	}
	s.SetBool(findFFQ(t, n, "rf.wb0.en"), true)
	s.SetBool(findFFQ(t, n, "fmap.be.q[0]"), true)
	s.EvalComb(netlist.NoFault)
	for _, out := range n.Outputs {
		name := n.NetName(out)
		if strings.HasPrefix(name, "commit.i0") {
			if s.Get(out)&1 != 0 {
				t.Errorf("commit output %s not gated for faulty way", name)
			}
		}
	}
}

// TestPipelineCyclesRun exercises multi-cycle simulation of both variants:
// random stimulus for many cycles must not wedge Validate-clean designs
// (smoke test for X-free evaluation and FF wiring).
func TestPipelineCyclesRun(t *testing.T) {
	for _, v := range []Variant{Baseline, RescueDesign} {
		d, err := Build(Small(), v)
		if err != nil {
			t.Fatal(err)
		}
		s := d.N.NewState()
		for i, in := range d.N.Inputs {
			s.Set(in, uint64(i)*0x9e3779b97f4a7c15)
		}
		for c := 0; c < 50; c++ {
			s.Cycle(netlist.NoFault)
		}
		// some observable activity must have occurred
		var any uint64
		for _, out := range d.N.Outputs {
			any |= s.Get(out)
		}
		if any == 0 {
			t.Errorf("%v: outputs all zero after 50 cycles of random stimulus", v)
		}
	}
}
