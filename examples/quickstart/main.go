// Quickstart: the whole Rescue flow on one page.
//
// Build the ICI-transformed pipeline, generate scan tests, inject a random
// fault, isolate it from its failing scan bits with a single lookup, map
// out the faulty super-component, and measure the degraded core's
// performance — the paper's Sections 2-6 end to end.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rescue/internal/atpg"
	"rescue/internal/core"
	"rescue/internal/netlist"
	"rescue/internal/rtl"
	"rescue/internal/uarch"
	"rescue/internal/workload"
)

func main() {
	// 1. Build the Rescue design (reduced 2-way config for speed) and
	//    verify intra-cycle logic independence.
	sys, err := core.Build(rtl.Small(), rtl.RescueDesign)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d gates, %d scan cells, %d super-components\n",
		sys.Design.N.Name, sys.Design.N.NumGates(), sys.Chain.Cells(),
		len(sys.Design.SuperComponents()))
	if !sys.Audit.OK() {
		log.Fatalf("ICI audit failed: %d violations", len(sys.Audit.Violations))
	}
	fmt.Println("ICI audit: every scan bit observes exactly one super-component")

	// 2. Generate scan tests with conventional ATPG.
	tp := sys.GenerateTests(atpg.DefaultGenConfig())
	fmt.Printf("ATPG: %d vectors, %.1f%% stuck-at coverage, %d tester cycles\n",
		tp.Gen.Vectors, tp.Gen.Coverage*100, tp.Gen.Cycles)

	// 3. Pretend the fab delivered a chip with one random defect.
	rng := rand.New(rand.NewSource(99))
	var f netlist.Fault
	var truth string
	for {
		f = tp.Universe.Collapsed[rng.Intn(len(tp.Universe.Collapsed))]
		if f.Gate < 0 {
			continue // FF faults are scan cells: chipkill, skip for the demo
		}
		comp := sys.Design.N.CompName(sys.Design.N.FaultSiteComp(f))
		truth = sys.Design.Grouping[comp]
		if truth != "CHIPKILL" {
			break
		}
	}
	fmt.Printf("\ninjected defect: %v (ground truth: %s)\n", f, truth)

	// 4. Apply the test program; isolate from the failing scan bits.
	res := tp.Gen.Sim.Run(f, 0)
	if !res.Detected {
		log.Fatal("fault not detected (rare untestable site; rerun with another seed)")
	}
	super, err := sys.Audit.Isolate(res.FailObs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isolated: %d failing scan bits -> super-component %s\n",
		len(res.FailObs), super)
	if super != truth {
		log.Fatalf("isolation mismatch: got %s want %s", super, truth)
	}

	// 5. Map out the faulty component (blow the fault-map fuses)...
	degr, err := core.MapOut([]string{super})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fault map: %v\n", degr)

	// 6. ...and measure the salvaged core's throughput.
	prof, err := workload.ByName("gzip")
	if err != nil {
		log.Fatal(err)
	}
	pFull := uarch.RescueParams()
	full, err := uarch.New(pFull, prof)
	if err != nil {
		log.Fatal(err)
	}
	pDegr := uarch.RescueParams()
	pDegr.Degr = degr
	degraded, err := uarch.New(pDegr, prof)
	if err != nil {
		log.Fatal(err)
	}
	fi := full.Run(20_000, 200_000).IPC()
	di := degraded.Run(20_000, 200_000).IPC()
	fmt.Printf("\ngzip IPC: %.3f fault-free -> %.3f degraded (%.1f%% loss)\n",
		fi, di, (1-di/fi)*100)
	fmt.Println("core salvaged: without Rescue this chip would be discarded")
}
