package yield

import (
	"math"
	"testing"
	"testing/quick"

	"rescue/internal/area"
)

func TestRefLambdaCalibration(t *testing.T) {
	if y := NegBinomialYield(RefLambda()); math.Abs(y-RefYield) > 1e-9 {
		t.Fatalf("yield at RefLambda = %v, want %v", y, RefYield)
	}
}

func TestDensityScaling(t *testing.T) {
	stag := area.Node(90)
	d90 := Density(area.Node(90), stag)
	d65 := Density(area.Node(65), stag)
	d45 := Density(area.Node(45), stag)
	if d90 != RefDensity() {
		t.Fatalf("d90 = %v", d90)
	}
	// density grows as 1/s²: 90→45 is s=0.5, density ×4
	if math.Abs(d45/d90-4) > 1e-9 {
		t.Fatalf("d45/d90 = %v, want 4", d45/d90)
	}
	if d65 <= d90 {
		t.Fatal("density must grow past stagnation")
	}
	// stagnating later keeps density flat until then
	stag65 := area.Node(65)
	if Density(area.Node(65), stag65) != RefDensity() {
		t.Fatal("density at the stagnation node must equal the reference")
	}
	if Density(area.Node(90), stag65) != RefDensity() {
		t.Fatal("density before stagnation must stay at the reference")
	}
}

func TestMixGammaNormalization(t *testing.T) {
	// ∫ pdf = 1, E[x] = 1
	if one := MixGamma(func(x float64) float64 { return 1 }); math.Abs(one-1) > 1e-3 {
		t.Fatalf("mixture mass = %v", one)
	}
	if mean := MixGamma(func(x float64) float64 { return x }); math.Abs(mean-1) > 1e-3 {
		t.Fatalf("mixture mean = %v", mean)
	}
}

func TestMixGammaReproducesNegBinomial(t *testing.T) {
	// E_x[e^(−λx)] must equal the negative binomial yield (the defining
	// property of the gamma-mixed Poisson model)
	for _, lam := range []float64{0.1, 0.5, 1, 2} {
		got := MixGamma(func(x float64) float64 { return math.Exp(-lam * x) })
		want := NegBinomialYield(lam)
		if math.Abs(got-want) > 1e-3 {
			t.Fatalf("λ=%v: mixture %v vs closed form %v", lam, got, want)
		}
	}
}

func TestPairProbSumsToOne(t *testing.T) {
	f := func(l float64) bool {
		lam := math.Abs(l)
		if lam > 50 {
			lam = 50
		}
		p := PairProb(lam)
		sum := p[0] + p[1] + p[2]
		return math.Abs(sum-1) < 1e-9 && p[0] >= 0 && p[1] >= 0 && p[2] >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConfigsCount(t *testing.T) {
	if n := len(Configs()); n != 64 {
		t.Fatalf("configs = %d, want 64", n)
	}
}

func flatIPC(full float64) map[CoreConfig]float64 {
	m := map[CoreConfig]float64{}
	for _, c := range Configs() {
		m[c] = full // degraded modes magically lose nothing
	}
	return m
}

func TestChipOrdering(t *testing.T) {
	base := CoreModel{Area: area.BaselineWithScan(), Full: 1.0}
	resc := CoreModel{Area: area.Rescue(), Full: 1.0, IPC: flatIPC(1.0)}
	for _, node := range area.Nodes() {
		r := Chip(node, area.Node(90), 0.3, base, resc)
		if !(r.NoRedundancy <= r.CoreSparing+1e-9) {
			t.Errorf("%dnm: none %v > CS %v", node.NodeNM, r.NoRedundancy, r.CoreSparing)
		}
		if !(r.CoreSparing <= r.Rescue+1e-9) {
			t.Errorf("%dnm: CS %v > Rescue %v (with lossless degradation)", node.NodeNM, r.CoreSparing, r.Rescue)
		}
		if !(r.Rescue <= r.Ideal+1e-9) {
			t.Errorf("%dnm: Rescue %v > ideal %v", node.NodeNM, r.Rescue, r.Ideal)
		}
	}
}

func TestChipRescueAdvantageGrowsWithScaling(t *testing.T) {
	base := CoreModel{Area: area.BaselineWithScan(), Full: 1.0}
	resc := CoreModel{Area: area.Rescue(), Full: 1.0, IPC: flatIPC(0.95)}
	adv := func(node area.Scaling) float64 {
		r := Chip(node, area.Node(90), 0.3, base, resc)
		return r.Rescue / r.CoreSparing
	}
	a32 := adv(area.Node(32))
	a18 := adv(area.Node(18))
	if a18 <= a32 {
		t.Fatalf("advantage should grow: 32nm %v, 18nm %v", a32, a18)
	}
	if a32 < 1.0 {
		t.Fatalf("Rescue should beat CS at 32nm: %v", a32)
	}
}

func TestDegradedIPCReducesRescueYAT(t *testing.T) {
	base := CoreModel{Area: area.BaselineWithScan(), Full: 1.0}
	lossless := CoreModel{Area: area.Rescue(), Full: 1.0, IPC: flatIPC(1.0)}
	lossy := CoreModel{Area: area.Rescue(), Full: 1.0, IPC: flatIPC(0.5)}
	// keep the full config at full IPC in the lossy model
	lossy.IPC[CoreConfig{}] = 1.0
	n := area.Node(18)
	r1 := Chip(n, area.Node(90), 0.3, base, lossless)
	r2 := Chip(n, area.Node(90), 0.3, base, lossy)
	if !(r2.Rescue < r1.Rescue) {
		t.Fatalf("lossy degraded IPC must lower YAT: %v vs %v", r2.Rescue, r1.Rescue)
	}
}
