// Package core assembles the Rescue system end to end — the paper's full
// flow in one API:
//
//	build the gate-level design (baseline or Rescue)      internal/rtl
//	insert scan                                            internal/scan
//	audit intra-cycle logic independence                   internal/ici
//	generate tests (ATPG)                                  internal/atpg
//	simulate faults, isolate to super-components           internal/fault
//	map out faulty components                              fault-map register
//	run degraded-mode performance simulation               internal/uarch
//	compute yield-adjusted throughput                      internal/yield
package core

import (
	"context"
	"errors"
	"fmt"

	"rescue/internal/atpg"
	"rescue/internal/fault"
	"rescue/internal/ici"
	"rescue/internal/rtl"
	"rescue/internal/scan"
	"rescue/internal/uarch"
)

// System is a built design with its scan chain and ICI audit.
type System struct {
	Design *rtl.Design
	Chain  *scan.Chain
	Audit  *ici.AuditResult
}

// Build constructs a system: netlist, scan insertion, ICI audit. The
// baseline variant builds successfully but its audit reports violations —
// that is the paper's point, not an error.
func Build(cfg rtl.Config, v rtl.Variant) (*System, error) {
	return BuildChains(cfg, v, 1)
}

// BuildChains is Build with an explicit scan-chain split — the
// design-space knob trading test time (shorter chains shift faster)
// against chipkill routing area. Build passes 1, the paper's single
// chain; every golden is pinned against that.
func BuildChains(cfg rtl.Config, v rtl.Variant, chains int) (*System, error) {
	d, err := rtl.Build(cfg, v)
	if err != nil {
		return nil, err
	}
	c, err := scan.Insert(d.N, chains)
	if err != nil {
		return nil, err
	}
	return &System{Design: d, Chain: c, Audit: ici.Audit(d.N, d.Grouping)}, nil
}

// TestProgram is a generated scan-test set with its Table 3 bookkeeping.
type TestProgram struct {
	Universe *fault.Universe
	Gen      *atpg.GenResult
}

// GenerateTests runs the ATPG flow (random phase + PODEM) on the system.
func (s *System) GenerateTests(cfg atpg.GenConfig) *TestProgram {
	u := fault.NewUniverse(s.Design.N)
	return &TestProgram{Universe: u, Gen: atpg.Generate(s.Chain, u, cfg)}
}

// GenerateTestsFlow is GenerateTests with cooperative cancellation and an
// optional campaign checkpoint journal (see atpg.GenerateFlow). On
// interrupt the partial TestProgram — carrying the campaign Stats so far —
// is returned alongside the error.
func (s *System) GenerateTestsFlow(ctx context.Context, cfg atpg.GenConfig, ck *fault.Checkpoint) (*TestProgram, error) {
	u := fault.NewUniverse(s.Design.N)
	g, err := atpg.GenerateFlow(ctx, s.Chain, u, cfg, ck)
	return &TestProgram{Universe: u, Gen: g}, err
}

// ScanSummary is one design's row of the paper's Table 3.
type ScanSummary struct {
	Variant    string
	Faults     int // uncollapsed fault universe
	ScanCells  int
	Vectors    int
	Cycles     int
	Coverage   float64
	Untestable int
	Aborted    int
}

// Summary extracts the Table 3 row.
func (s *System) Summary(tp *TestProgram) ScanSummary {
	return ScanSummary{
		Variant:    s.Design.Variant.String(),
		Faults:     tp.Gen.Faults,
		ScanCells:  tp.Gen.ScanCells,
		Vectors:    tp.Gen.Vectors,
		Cycles:     tp.Gen.Cycles,
		Coverage:   tp.Gen.Coverage,
		Untestable: tp.Gen.Untestable,
		Aborted:    tp.Gen.Aborted,
	}
}

// MapOut sentinel errors, distinguishable with errors.Is: the fab flow
// bins dies by which way a diagnosis left no working configuration.
var (
	// ErrChipkill reports a fault isolated to the chipkill logic.
	ErrChipkill = errors.New("core: fault in chipkill logic — core unusable")
	// ErrDead reports a degraded configuration with both members of some
	// redundant pair down.
	ErrDead = errors.New("core: degraded configuration is dead")
)

// MapOut converts a set of isolated faulty super-components into a
// degraded configuration for the performance model — the fault-map
// register's contents. It returns an error when the component set leaves
// no working configuration: ErrChipkill, ErrDead (both wrapped), or an
// unknown-super error.
func MapOut(supers []string) (uarch.Degraded, error) {
	var d uarch.Degraded
	seen := map[string]bool{}
	for _, s := range supers {
		if seen[s] {
			continue
		}
		seen[s] = true
		switch s {
		case "FE0", "FE1":
			d.FEGroupsDisabled++
		case "BE0", "BE1":
			d.IntGroupsDisabled++ // the netlist models the int backend
		case "IQ0", "IQ1":
			d.IntIQHalvesDown++
		case "LSQ0", "LSQ1":
			d.LSQHalvesDown++
		case "CHIPKILL":
			return d, ErrChipkill
		default:
			return d, fmt.Errorf("core: unknown super-component %q", s)
		}
	}
	if d.Dead() {
		return d, fmt.Errorf("%w: %v", ErrDead, d)
	}
	return d, nil
}
