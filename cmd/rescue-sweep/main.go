// Command rescue-sweep maps the yield/YAT design space: it expands a grid
// of Rescue variants (named presets crossed with parameter-override axes)
// against fab-level axes (technology node, defect-density stagnation node,
// self-heal spare share), evaluates every point through the shared
// artifact store — netlist, ATPG, and IPC-model work is built once per
// distinct variant, not once per point — and reports the frontier with the
// Pareto set marked.
//
// The frontier is deterministic: the same spec produces byte-identical
// NDJSON at any -concurrency, after any kill/-resume cycle (the
// -checkpoint directory journals completed points and campaign chunks),
// and whether points ran locally or were fanned out to rescued workers
// with -dispatch. Remote results are digest-verified; a worker failure
// falls back to local execution and the run exits 3 (degraded) so scripts
// can tell.
//
// Usage:
//
//	rescue-sweep -small -preset paper,deep-pipe -axis chipkill-scale=1,0.8 \
//	             -node 18,32 -dies 2000 -concurrency 4 -ndjson frontier.ndjson
//	rescue-sweep -small -checkpoint sweep.ck -resume
//	rescue-sweep -small -dispatch http://h1:8321,http://h2:8321
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"rescue/internal/cli"
	"rescue/internal/dispatch"
	"rescue/internal/fault"
	"rescue/internal/flows"
	"rescue/internal/serve"
	"rescue/internal/sweep"
)

// axisFlags collects repeated -axis key=v1,v2,... flags into a spec axes
// map.
type axisFlags map[string][]string

func (a axisFlags) String() string {
	keys := make([]string, 0, len(a))
	for k := range a {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, k+"="+strings.Join(a[k], ","))
	}
	return strings.Join(parts, " ")
}

func (a axisFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok || k == "" || v == "" {
		return fmt.Errorf("want key=v1,v2,... (keys: %s)", strings.Join(sweep.AxisKeys(), ", "))
	}
	a[k] = append(a[k], strings.Split(v, ",")...)
	return nil
}

func parseInts(flagName, csv string) []int {
	var out []int
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			cli.Usagef("-%s value %q is not an integer", flagName, s)
		}
		out = append(out, n)
	}
	return out
}

func parseFloats(flagName, csv string) []float64 {
	var out []float64
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s == "" {
			continue
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			cli.Usagef("-%s value %q is not a number", flagName, s)
		}
		out = append(out, f)
	}
	return out
}

func main() {
	axes := axisFlags{}
	var (
		presets     = flag.String("preset", "paper", "comma-separated variant presets ("+strings.Join(sweep.Presets(), ", ")+")")
		nodes       = flag.String("node", "18", "comma-separated technology nodes in nm (90, 65, 32, 18)")
		stagnates   = flag.String("stagnate", "90", "comma-separated PWP stagnation nodes in nm")
		selfheal    = flag.String("selfheal", "0", "comma-separated self-heal spare shares in [0,0.9]")
		small       = flag.Bool("small", false, "use the reduced configuration (2-way) for every preset")
		dies        = flag.Int("dies", 0, "dies per point's Monte Carlo fleet (0 = 2000)")
		seed        = flag.Int64("seed", 0, "fleet sampling seed (0 = 2026)")
		growth      = flag.Float64("growth", 0, "core growth rate per technology halving (0 = 0.30)")
		benches     = flag.String("bench", "", "comma-separated benchmarks for the IPC model (empty = gzip)")
		warmup      = flag.Int64("warmup", 0, "warmup instructions per IPC simulation (0 = 2000)")
		commit      = flag.Int64("commit", 0, "measured instructions per IPC simulation (0 = 10000)")
		concurrency = flag.Int("concurrency", 1, "grid points evaluated at once")
		ndjsonPath  = flag.String("ndjson", "", "write the frontier as NDJSON to this file (\"-\" = stdout instead of the table)")
		ckDir       = flag.String("checkpoint", "", "sweep journal directory (enables kill-and-resume)")
		resume      = flag.Bool("resume", false, "resume a previous sweep from the -checkpoint directory")
		chaosAfter  = flag.Int64("chaos-cancel-after", 0, "cancel after N campaign fault-sims (chaos testing; 0 = off)")
		workersCSV  = flag.String("dispatch", "", "comma-separated rescued base URLs to fan points out to")
		quiet       = flag.Bool("quiet", false, "suppress per-point progress lines on stderr")
	)
	flag.Var(axes, "axis", "override axis as key=v1,v2,... (repeatable; keys: "+strings.Join(sweep.AxisKeys(), ", ")+")")
	ff := cli.AddStudyFlags(flag.CommandLine)
	flag.Parse()
	ff.Validate()
	cli.ArmChaos(*chaosAfter)
	if *concurrency < 0 {
		cli.Usagef("-concurrency must be >= 0 (0 = 1), got %d", *concurrency)
	}
	if *resume && *ckDir == "" {
		cli.Usagef("-resume requires -checkpoint <dir>")
	}

	spec := sweep.Spec{
		Presets:     strings.Split(*presets, ","),
		Axes:        axes,
		Nodes:       parseInts("node", *nodes),
		Stagnates:   parseInts("stagnate", *stagnates),
		SelfHeal:    parseFloats("selfheal", *selfheal),
		Small:       *small,
		Dies:        *dies,
		Seed:        *seed,
		Growth:      *growth,
		Bench:       *benches,
		Warmup:      *warmup,
		Commit:      *commit,
		Concurrency: *concurrency,
		Workers:     ff.Workers,
	}
	if len(axes) == 0 {
		spec.Axes = nil
	}
	// Expand up front so a bad grid is a usage error before any work.
	pts, err := spec.Expand()
	if err != nil {
		cli.Usagef("%v", err)
	}

	var fallbacks atomic.Int64
	o := sweep.Options{
		Env:           flows.Env{Store: flows.NewStore()},
		CheckpointDir: *ckDir,
		Resume:        *resume,
		OnPoint: func(ev sweep.PointEvent) {
			if ev.Phase == "fallback" {
				fallbacks.Add(1)
			}
			if !*quiet {
				fmt.Fprintf(os.Stderr, "sweep: %s\n", ev.Msg)
			}
		},
	}

	var pool *dispatch.Pool
	if *workersCSV != "" {
		var urls []string
		for _, u := range strings.Split(*workersCSV, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			cli.Usagef("-dispatch lists no URLs")
		}
		logf := log.New(os.Stderr, "dispatch: ", log.LstdFlags).Printf
		if *quiet {
			logf = nil
		}
		pool, err = dispatch.NewPool(dispatch.Config{Workers: urls, Logf: logf})
		if err != nil {
			cli.Fatalf("%v", err)
		}
		defer pool.Close()
		o.Remote = func(ctx context.Context, one sweep.Spec, _ sweep.Point) ([]byte, error) {
			body, err := json.Marshal(one)
			if err != nil {
				return nil, err
			}
			return pool.ExecJob(ctx, serve.Spec{Kind: "sweep", Params: body})
		}
	}

	ctx, stop := ff.Context()
	defer stop()

	fmt.Fprintf(os.Stderr, "sweep: %d grid points\n", len(pts))
	fr, err := sweep.Run(ctx, spec, o)
	if err != nil {
		if *ckDir != "" && fault.Interrupted(err) {
			fmt.Fprintf(os.Stderr, "sweep journal: %s — rerun with -resume to continue\n", *ckDir)
		}
		cli.ExitErr(err)
	}

	switch *ndjsonPath {
	case "":
		fr.WriteTable(os.Stdout)
	case "-":
		if err := fr.WriteNDJSON(os.Stdout); err != nil {
			cli.Fatalf("write ndjson: %v", err)
		}
	default:
		f, err := os.Create(*ndjsonPath)
		if err != nil {
			cli.Fatalf("%v", err)
		}
		if err := fr.WriteNDJSON(f); err != nil {
			cli.Fatalf("write %s: %v", *ndjsonPath, err)
		}
		if err := f.Close(); err != nil {
			cli.Fatalf("close %s: %v", *ndjsonPath, err)
		}
		fr.WriteTable(os.Stdout)
	}

	if pool != nil {
		st := pool.Stats()
		fmt.Fprintf(os.Stderr, "dispatch: %d points completed remotely, %d retries, %d local fallbacks\n",
			st.Completed, st.Retries, fallbacks.Load())
		if fallbacks.Load() > 0 {
			fmt.Fprintf(os.Stderr,
				"degraded: %d point(s) ran locally after remote dispatch failed; the frontier is complete and digest-verified\n",
				fallbacks.Load())
			os.Exit(cli.ExitDegraded)
		}
	}
}
