// Command rescue-atpg regenerates the paper's Table 3 ("Scan Chain data"):
// it builds the baseline and Rescue gate-level pipelines, inserts scan,
// runs the ATPG flow (random patterns + PODEM with fault dropping), and
// prints fault counts, scan cells, test vectors, tester cycles, and
// coverage for both designs. Fault simulation runs as a parallel campaign
// sharded across -workers cores; output is identical at any worker count.
//
// The run is resilient: SIGINT/SIGTERM finish in-flight chunks, flush the
// -checkpoint journal (if one was given), print the partial campaign
// stats, and exit 130; rerunning with -resume rehydrates the journaled
// work and converges bit-identically to an uninterrupted run.
//
// Usage:
//
//	rescue-atpg [-small] [-seed N] [-backtracks N] [-workers N] [-timing=false]
//	            [-checkpoint path [-resume]] [-chaos-cancel-after N]
package main

import (
	"flag"
	"fmt"
	"time"

	"rescue/internal/atpg"
	"rescue/internal/cli"
	"rescue/internal/core"
	"rescue/internal/rtl"
)

func main() {
	small := flag.Bool("small", false, "use the reduced test configuration (2-way)")
	seed := flag.Int64("seed", 1, "ATPG random seed")
	backtracks := flag.Int("backtracks", 500, "PODEM backtrack limit")
	workers := flag.Int("workers", 0, "fault-simulation workers (0 = all cores)")
	timing := flag.Bool("timing", true, "print wall-clock timings (disable for golden diffs)")
	checkpoint := flag.String("checkpoint", "", "campaign checkpoint journal path (enables kill-and-resume)")
	resume := flag.Bool("resume", false, "resume a previous run from the -checkpoint journal")
	chaosAfter := flag.Int64("chaos-cancel-after", 0, "cancel after N campaign fault-sims (chaos testing; 0 = off)")
	flag.Parse()
	cli.CheckWorkers(*workers)
	cli.ArmChaos(*chaosAfter)
	ck := cli.OpenCheckpoint(*checkpoint, *resume)

	ctx, stop := cli.SignalContext()
	defer stop()

	cfg := rtl.Default()
	if *small {
		cfg = rtl.Small()
	}
	gen := atpg.DefaultGenConfig()
	gen.Seed = *seed
	gen.MaxBacktracks = *backtracks
	gen.Workers = *workers

	fmt.Println("Table 3: Scan Chain data (paper: baseline 111294 faults / 2768 cells /")
	fmt.Println("1911 vectors / 5272449 cycles; Rescue 113490 / 3334 / 1787 / 5959645;")
	fmt.Println("Rescue = fewer vectors, ~13% more cycles). Our model is smaller but the")
	fmt.Println("same shape must hold.")
	fmt.Println()
	if *timing {
		fmt.Printf("%-10s %10s %10s %10s %12s %9s %10s\n",
			"design", "faults", "cells", "vectors", "cycles", "coverage", "runtime")
	} else {
		fmt.Printf("%-10s %10s %10s %10s %12s %9s\n",
			"design", "faults", "cells", "vectors", "cycles", "coverage")
	}

	var rows []core.ScanSummary
	for _, v := range []rtl.Variant{rtl.Baseline, rtl.RescueDesign} {
		start := time.Now()
		s, err := core.Build(cfg, v)
		if err != nil {
			cli.Fatalf("build: %v", err)
		}
		tp, err := s.GenerateTestsFlow(ctx, gen, ck)
		if err != nil {
			cli.ExitFlow(err, tp.Gen.Stats, ck)
		}
		sum := s.Summary(tp)
		rows = append(rows, sum)
		if *timing {
			fmt.Printf("%-10s %10d %10d %10d %12d %8.2f%% %10s\n",
				sum.Variant, sum.Faults, sum.ScanCells, sum.Vectors, sum.Cycles,
				sum.Coverage*100, time.Since(start).Round(time.Millisecond))
			st := tp.Gen.Stats
			fmt.Printf("           campaign: %d fault-sims, %d word-sims, %d dropped, %d gate events, %d workers\n",
				st.Faults, st.Words, st.Dropped, st.Events, st.Workers)
		} else {
			fmt.Printf("%-10s %10d %10d %10d %12d %8.2f%%\n",
				sum.Variant, sum.Faults, sum.ScanCells, sum.Vectors, sum.Cycles,
				sum.Coverage*100)
		}
	}
	if len(rows) == 2 {
		fmt.Println()
		fmt.Printf("Rescue vs baseline: cells %+.1f%%, vectors %+.1f%%, cycles %+.1f%%\n",
			pct(rows[1].ScanCells, rows[0].ScanCells),
			pct(rows[1].Vectors, rows[0].Vectors),
			pct(rows[1].Cycles, rows[0].Cycles))
	}
}

func pct(a, b int) float64 { return (float64(a)/float64(b) - 1) * 100 }
