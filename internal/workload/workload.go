// Package workload generates deterministic synthetic instruction traces
// standing in for the 23 SPEC2000 benchmarks the paper simulates (Section
// 5; the paper runs 100M-instruction SimPoints of SPEC2000, which we do not
// have). Each benchmark is a static synthetic program — a control-flow
// graph of basic blocks with fixed instruction templates, loop trip
// patterns, and per-instruction memory streams — walked dynamically. The
// profiles are chosen so the set spans the IPC range and issue-queue
// sensitivity the paper reports (Figure 8: 0% (swim) to 10% (bzip) Rescue
// degradation, mean ~4%).
package workload

import (
	"fmt"
	"math/rand"

	"rescue/internal/isa"
)

// Profile parameterizes a synthetic benchmark.
type Profile struct {
	Name string
	// Instruction mix (fractions of non-branch instructions).
	LoadFrac, StoreFrac float64
	FPFrac              float64 // fraction of compute in FP units
	MulFrac, DivFrac    float64 // within the compute population
	// Control flow.
	BlockLen       float64 // mean basic-block length (instructions)
	LoopWeight     float64 // fraction of blocks ending in a loop back-edge
	LoopTrip       int     // mean loop trip count (predictability knob)
	RandomBranches float64 // fraction of branches with random direction
	// Memory behavior. Each static memory instruction is assigned a
	// locality class at program-construction time: with probability L1Frac
	// it works in a small (L1-resident) region, with probability L2Frac in
	// a medium (L2-resident) region, otherwise it roams the full
	// footprint. Zero values default to 0.90/0.08.
	Footprint      uint64 // data working-set bytes
	L1Frac, L2Frac float64
	StrideFrac     float64 // fraction of memory instructions that stream
	// CodeFootprint bounds the hot code region (i-cache behavior).
	CodeFootprint uint64
	// Dependences.
	DepDist float64 // mean register reuse distance (higher = more ILP)
	// BurstFrac: fraction of blocks that are high-ILP bursts (independent
	// ops waking together — stresses selection and Rescue's replay).
	BurstFrac float64
}

type branchKind uint8

const (
	loopBranch branchKind = iota
	biasedBranch
	randomBranch
)

// template is one static instruction.
type template struct {
	class      isa.Class
	dest       isa.Reg
	src1, src2 isa.Reg
	// memory template
	stream bool // streaming (strided) vs random-in-region
	stride uint64
	base   uint64 // region base offset within the footprint
	region uint64 // region size (locality class)
}

// block is one static basic block ending in a branch.
type block struct {
	pc    uint64
	insts []template
	// branch
	kind      branchKind
	trip      int     // loop trip count
	takenProb float64 // for biased/random
	takenIdx  int     // target block when taken
	fallIdx   int     // next block when not taken
	brSrc     isa.Reg
}

// Gen walks a static synthetic program, producing a deterministic dynamic
// instruction stream.
type Gen struct {
	p      Profile
	rng    *rand.Rand // dynamic randomness (random-direction branches, addresses)
	blocks []block

	cur     int // current block
	idx     int // next instruction slot in the block
	trips   map[int]int
	streams map[int]uint64 // per static mem-inst stream cursor (key: block<<8|slot)
}

// New creates a generator. The program and its dynamic behavior are a pure
// function of the profile (seeded by its name), so runs are reproducible.
func New(p Profile) *Gen {
	if p.CodeFootprint == 0 {
		p.CodeFootprint = 64 << 10
	}
	seed := int64(0)
	for _, c := range p.Name {
		seed = seed*131 + int64(c)
	}
	sr := rand.New(rand.NewSource(seed)) // static program construction
	g := &Gen{
		p:       p,
		rng:     rand.New(rand.NewSource(seed ^ 0x5eed)),
		trips:   map[int]int{},
		streams: map[int]uint64{},
	}
	g.build(sr)
	return g
}

// build constructs the static program.
func (g *Gen) build(sr *rand.Rand) {
	p := g.p
	pc := uint64(0x1000)
	limit := uint64(0x1000) + p.CodeFootprint
	// recent destinations for dependence-distance synthesis
	var recentInt, recentFP []isa.Reg
	for i := 0; i < 8; i++ {
		recentInt = append(recentInt, isa.Reg(i))
		recentFP = append(recentFP, isa.Reg(isa.NumIntRegs+i))
	}
	pickSrc := func(fp, burst bool) isa.Reg {
		pool := recentInt
		if fp {
			pool = recentFP
		}
		d := int(sr.ExpFloat64() * p.DepDist)
		if burst {
			d += len(pool)
		}
		if d >= len(pool) {
			d = len(pool) - 1
		}
		return pool[len(pool)-1-d]
	}
	pickDest := func(fp bool) isa.Reg {
		var r isa.Reg
		if fp {
			r = isa.Reg(isa.NumIntRegs + sr.Intn(isa.NumFPRegs))
			recentFP = append(recentFP, r)
			if len(recentFP) > 24 {
				recentFP = recentFP[1:]
			}
		} else {
			r = isa.Reg(sr.Intn(isa.NumIntRegs))
			recentInt = append(recentInt, r)
			if len(recentInt) > 24 {
				recentInt = recentInt[1:]
			}
		}
		return r
	}

	// Shared data regions: the hot (L1-resident) and warm (L2-resident)
	// working sets are program-wide, not per-instruction, so their
	// aggregate size matches real cache behavior: ~48KB hot, ~1MB warm.
	const nHot, nWarm = 6, 8
	hotBase := make([]uint64, nHot)
	warmBase := make([]uint64, nWarm)
	region := func(sz uint64) uint64 {
		if sz > p.Footprint {
			sz = p.Footprint
		}
		return sz
	}
	hotSz := region(8 << 10)
	warmSz := region(128 << 10)
	for i := range hotBase {
		if p.Footprint > hotSz {
			hotBase[i] = uint64(sr.Int63n(int64(p.Footprint-hotSz))) &^ 63
		}
	}
	for i := range warmBase {
		if p.Footprint > warmSz {
			warmBase[i] = uint64(sr.Int63n(int64(p.Footprint-warmSz))) &^ 63
		}
	}

	for pc < limit {
		var b block
		b.pc = pc
		burst := sr.Float64() < p.BurstFrac
		// half deterministic, half exponential: mean ~BlockLen, minimum
		// BlockLen/2 — a pure exponential leaves too many 1-2 instruction
		// blocks, which hot loops amplify into unrealistic branch density
		n := 1 + int(p.BlockLen/2) + int(sr.ExpFloat64()*p.BlockLen/2)
		if n > 40 {
			n = 40
		}
		for i := 0; i < n; i++ {
			var t template
			r := sr.Float64()
			fp := sr.Float64() < p.FPFrac
			switch {
			case r < p.LoadFrac:
				t.class = isa.Load
				t.dest = pickDest(fp)
				t.src1 = pickSrc(false, burst)
				t.src2 = isa.RegNone
			case r < p.LoadFrac+p.StoreFrac:
				t.class = isa.Store
				t.dest = isa.RegNone
				t.src1 = pickSrc(false, burst)
				t.src2 = pickSrc(fp, burst)
			default:
				rr := sr.Float64()
				switch {
				case fp && rr < p.DivFrac:
					t.class = isa.FPDiv
				case fp && rr < p.DivFrac+p.MulFrac:
					t.class = isa.FPMul
				case fp:
					t.class = isa.FPAdd
				case rr < p.DivFrac:
					t.class = isa.IntDiv
				case rr < p.DivFrac+p.MulFrac:
					t.class = isa.IntMul
				default:
					t.class = isa.IntALU
				}
				t.dest = pickDest(fp)
				t.src1 = pickSrc(fp, burst)
				t.src2 = pickSrc(fp, burst)
			}
			if t.class.IsMem() {
				t.stream = sr.Float64() < p.StrideFrac
				t.stride = 8
				if sr.Intn(4) == 0 {
					t.stride = 64 // cache-line stride
				}
				l1f, l2f := p.L1Frac, p.L2Frac
				if l1f == 0 && l2f == 0 {
					l1f, l2f = 0.90, 0.08
				}
				switch lr := sr.Float64(); {
				case lr < l1f:
					t.region = hotSz
					t.base = hotBase[sr.Intn(nHot)]
				case lr < l1f+l2f:
					t.region = warmSz
					t.base = warmBase[sr.Intn(nWarm)]
				default:
					t.region = p.Footprint
					t.base = 0
				}
			}
			b.insts = append(b.insts, t)
			pc += 8
		}
		// terminating branch
		b.brSrc = pickSrc(false, false)
		switch {
		case sr.Float64() < p.LoopWeight:
			b.kind = loopBranch
			b.trip = 1 + sr.Intn(2*p.LoopTrip)
		case sr.Float64() < p.RandomBranches/(1-p.LoopWeight+1e-9):
			b.kind = randomBranch
			b.takenProb = 0.5
		default:
			b.kind = biasedBranch
			b.takenProb = 0.05
		}
		pc += 8
		g.blocks = append(g.blocks, b)
	}
	// wire targets: fallthrough = next block; loop = back edge; biased and
	// random = forward skip. Last block jumps to block 0.
	nb := len(g.blocks)
	for i := range g.blocks {
		b := &g.blocks[i]
		b.fallIdx = (i + 1) % nb
		switch b.kind {
		case loopBranch:
			back := 2 + sr.Intn(8)
			if back > i {
				back = i
			}
			b.takenIdx = i - back
		default:
			skip := 1 + sr.Intn(8)
			b.takenIdx = (i + skip) % nb
		}
	}
	last := &g.blocks[nb-1]
	last.kind = loopBranch
	last.trip = 1 << 30 // effectively always taken: the outer loop
	last.takenIdx = 0
}

func (g *Gen) memAddr(bi, slot int, t *template) uint64 {
	key := bi<<8 | slot
	if t.stream {
		cur := g.streams[key]
		g.streams[key] = (cur + t.stride) % t.region
		return 0x10000000 + t.base + cur&^7
	}
	return 0x10000000 + t.base + (uint64(g.rng.Int63n(int64(t.region))))&^7
}

// Next produces the next dynamic instruction.
func (g *Gen) Next() isa.Inst {
	b := &g.blocks[g.cur]
	if g.idx < len(b.insts) {
		t := &b.insts[g.idx]
		pc := b.pc + uint64(8*g.idx)
		inst := isa.Inst{PC: pc, Class: t.class, Dest: t.dest, Src1: t.src1, Src2: t.src2}
		if t.class.IsMem() {
			inst.Addr = g.memAddr(g.cur, g.idx, t)
		}
		g.idx++
		return inst
	}
	// branch
	pc := b.pc + uint64(8*len(b.insts))
	inst := isa.Inst{PC: pc, Class: isa.Branch, Dest: isa.RegNone, Src1: b.brSrc, Src2: isa.RegNone}
	taken := false
	switch b.kind {
	case loopBranch:
		trips, ok := g.trips[g.cur]
		if !ok {
			trips = b.trip
		}
		if trips > 0 {
			taken = true
			g.trips[g.cur] = trips - 1
		} else {
			delete(g.trips, g.cur)
		}
	case randomBranch:
		taken = g.rng.Float64() < b.takenProb
	default:
		taken = g.rng.Float64() < b.takenProb
	}
	inst.Taken = taken
	next := b.fallIdx
	if taken {
		next = b.takenIdx
	}
	inst.Target = g.blocks[b.takenIdx].pc
	g.cur = next
	g.idx = 0
	return inst
}

// Benchmarks returns the 23 SPEC2000 stand-in profiles in the order the
// paper's Figure 8 lists them (SPECint then SPECfp; ammp, galgel and gap
// are excluded exactly as in the paper).
func Benchmarks() []Profile {
	return []Profile{
		// --- SPECint 2000 ---
		{Name: "gzip", LoadFrac: 0.22, StoreFrac: 0.08, BlockLen: 7, LoopWeight: 0.5, LoopTrip: 24, RandomBranches: 0.10, Footprint: 180 << 10, L1Frac: 0.97, L2Frac: 0.025, StrideFrac: 0.8, CodeFootprint: 48 << 10, DepDist: 3.4, BurstFrac: 0.35},
		{Name: "vpr", LoadFrac: 0.28, StoreFrac: 0.10, BlockLen: 6, LoopWeight: 0.4, LoopTrip: 12, RandomBranches: 0.14, Footprint: 2 << 20, L1Frac: 0.96, L2Frac: 0.04, StrideFrac: 0.4, CodeFootprint: 96 << 10, DepDist: 3, BurstFrac: 0.25},
		{Name: "gcc", LoadFrac: 0.26, StoreFrac: 0.12, BlockLen: 5, LoopWeight: 0.35, LoopTrip: 8, RandomBranches: 0.1, Footprint: 4 << 20, L1Frac: 0.95, L2Frac: 0.04, StrideFrac: 0.35, CodeFootprint: 640 << 10, DepDist: 2.8, BurstFrac: 0.12},
		{Name: "mcf", LoadFrac: 0.35, StoreFrac: 0.09, BlockLen: 6, LoopWeight: 0.45, LoopTrip: 16, RandomBranches: 0.10, Footprint: 96 << 20, L1Frac: 0.86, L2Frac: 0.12, StrideFrac: 0.1, CodeFootprint: 32 << 10, DepDist: 2.2, BurstFrac: 0.05},
		{Name: "crafty", LoadFrac: 0.27, StoreFrac: 0.07, BlockLen: 8, LoopWeight: 0.4, LoopTrip: 20, RandomBranches: 0.12, Footprint: 1 << 20, L1Frac: 0.97, L2Frac: 0.025, StrideFrac: 0.5, CodeFootprint: 160 << 10, DepDist: 3.6, BurstFrac: 0.3},
		{Name: "parser", LoadFrac: 0.24, StoreFrac: 0.10, BlockLen: 5, LoopWeight: 0.35, LoopTrip: 10, RandomBranches: 0.15, Footprint: 8 << 20, L1Frac: 0.95, L2Frac: 0.05, StrideFrac: 0.3, CodeFootprint: 96 << 10, DepDist: 3, BurstFrac: 0.1},
		{Name: "eon", LoadFrac: 0.26, StoreFrac: 0.13, BlockLen: 9, LoopWeight: 0.5, LoopTrip: 18, RandomBranches: 0.06, Footprint: 512 << 10, L1Frac: 0.96, L2Frac: 0.03, StrideFrac: 0.6, CodeFootprint: 192 << 10, DepDist: 3.2, FPFrac: 0.2, BurstFrac: 0.35},
		{Name: "perlbmk", LoadFrac: 0.27, StoreFrac: 0.12, BlockLen: 5, LoopWeight: 0.3, LoopTrip: 9, RandomBranches: 0.1, Footprint: 6 << 20, L1Frac: 0.96, L2Frac: 0.04, StrideFrac: 0.3, CodeFootprint: 320 << 10, DepDist: 3, BurstFrac: 0.12},
		{Name: "vortex", LoadFrac: 0.29, StoreFrac: 0.14, BlockLen: 7, LoopWeight: 0.4, LoopTrip: 14, RandomBranches: 0.06, Footprint: 12 << 20, L1Frac: 0.95, L2Frac: 0.04, StrideFrac: 0.45, CodeFootprint: 256 << 10, DepDist: 3.2, BurstFrac: 0.2},
		{Name: "bzip2", LoadFrac: 0.24, StoreFrac: 0.09, BlockLen: 9, LoopWeight: 0.55, LoopTrip: 28, RandomBranches: 0.05, Footprint: 3 << 20, L1Frac: 0.96, L2Frac: 0.02, StrideFrac: 0.7, CodeFootprint: 48 << 10, DepDist: 3.4, BurstFrac: 0.6},
		{Name: "twolf", LoadFrac: 0.28, StoreFrac: 0.09, BlockLen: 6, LoopWeight: 0.4, LoopTrip: 11, RandomBranches: 0.1, Footprint: 2 << 20, L1Frac: 0.95, L2Frac: 0.05, StrideFrac: 0.3, CodeFootprint: 96 << 10, DepDist: 2.9, BurstFrac: 0.12},
		// --- SPECfp 2000 ---
		{Name: "wupwise", LoadFrac: 0.26, StoreFrac: 0.10, FPFrac: 0.75, MulFrac: 0.3, DivFrac: 0.01, BlockLen: 14, LoopWeight: 0.8, LoopTrip: 60, RandomBranches: 0.02, Footprint: 40 << 20, L1Frac: 0.93, L2Frac: 0.06, StrideFrac: 0.9, CodeFootprint: 32 << 10, DepDist: 3.8, BurstFrac: 0.35},
		{Name: "swim", LoadFrac: 0.30, StoreFrac: 0.12, FPFrac: 0.8, MulFrac: 0.35, DivFrac: 0.0, BlockLen: 20, LoopWeight: 0.9, LoopTrip: 120, RandomBranches: 0.005, Footprint: 190 << 20, L1Frac: 0.95, L2Frac: 0.04, StrideFrac: 0.97, CodeFootprint: 24 << 10, DepDist: 4.6, BurstFrac: 0.05},
		{Name: "mgrid", LoadFrac: 0.33, StoreFrac: 0.08, FPFrac: 0.85, MulFrac: 0.4, DivFrac: 0.0, BlockLen: 18, LoopWeight: 0.9, LoopTrip: 90, RandomBranches: 0.01, Footprint: 56 << 20, L1Frac: 0.93, L2Frac: 0.06, StrideFrac: 0.95, CodeFootprint: 24 << 10, DepDist: 3.8, BurstFrac: 0.35},
		{Name: "applu", LoadFrac: 0.30, StoreFrac: 0.10, FPFrac: 0.8, MulFrac: 0.35, DivFrac: 0.02, BlockLen: 16, LoopWeight: 0.85, LoopTrip: 70, RandomBranches: 0.01, Footprint: 180 << 20, L1Frac: 0.91, L2Frac: 0.07, StrideFrac: 0.9, CodeFootprint: 48 << 10, DepDist: 3.5, BurstFrac: 0.3},
		{Name: "mesa", LoadFrac: 0.24, StoreFrac: 0.11, FPFrac: 0.55, MulFrac: 0.3, DivFrac: 0.02, BlockLen: 9, LoopWeight: 0.6, LoopTrip: 26, RandomBranches: 0.04, Footprint: 9 << 20, L1Frac: 0.96, L2Frac: 0.03, StrideFrac: 0.7, CodeFootprint: 128 << 10, DepDist: 3.2, BurstFrac: 0.3},
		{Name: "art", LoadFrac: 0.34, StoreFrac: 0.07, FPFrac: 0.7, MulFrac: 0.35, DivFrac: 0.01, BlockLen: 12, LoopWeight: 0.8, LoopTrip: 48, RandomBranches: 0.02, Footprint: 3600 << 10, L1Frac: 0.88, L2Frac: 0.1, StrideFrac: 0.5, CodeFootprint: 24 << 10, DepDist: 2.8, BurstFrac: 0.1},
		{Name: "equake", LoadFrac: 0.36, StoreFrac: 0.08, FPFrac: 0.65, MulFrac: 0.35, DivFrac: 0.02, BlockLen: 11, LoopWeight: 0.75, LoopTrip: 40, RandomBranches: 0.03, Footprint: 48 << 20, L1Frac: 0.88, L2Frac: 0.09, StrideFrac: 0.6, CodeFootprint: 48 << 10, DepDist: 2.6, BurstFrac: 0.15},
		{Name: "facerec", LoadFrac: 0.28, StoreFrac: 0.08, FPFrac: 0.7, MulFrac: 0.35, DivFrac: 0.01, BlockLen: 13, LoopWeight: 0.8, LoopTrip: 55, RandomBranches: 0.02, Footprint: 16 << 20, L1Frac: 0.96, L2Frac: 0.03, StrideFrac: 0.85, CodeFootprint: 48 << 10, DepDist: 3.6, BurstFrac: 0.45},
		{Name: "lucas", LoadFrac: 0.27, StoreFrac: 0.10, FPFrac: 0.85, MulFrac: 0.4, DivFrac: 0.0, BlockLen: 17, LoopWeight: 0.85, LoopTrip: 80, RandomBranches: 0.01, Footprint: 128 << 20, L1Frac: 0.93, L2Frac: 0.05, StrideFrac: 0.9, CodeFootprint: 32 << 10, DepDist: 4, BurstFrac: 0.3},
		{Name: "fma3d", LoadFrac: 0.29, StoreFrac: 0.12, FPFrac: 0.75, MulFrac: 0.35, DivFrac: 0.02, BlockLen: 12, LoopWeight: 0.7, LoopTrip: 35, RandomBranches: 0.03, Footprint: 100 << 20, L1Frac: 0.96, L2Frac: 0.03, StrideFrac: 0.7, CodeFootprint: 256 << 10, DepDist: 3.4, BurstFrac: 0.35},
		{Name: "sixtrack", LoadFrac: 0.25, StoreFrac: 0.09, FPFrac: 0.8, MulFrac: 0.4, DivFrac: 0.03, BlockLen: 15, LoopWeight: 0.8, LoopTrip: 65, RandomBranches: 0.02, Footprint: 26 << 20, L1Frac: 0.97, L2Frac: 0.02, StrideFrac: 0.85, CodeFootprint: 96 << 10, DepDist: 3.4, BurstFrac: 0.35},
		{Name: "apsi", LoadFrac: 0.28, StoreFrac: 0.10, FPFrac: 0.75, MulFrac: 0.35, DivFrac: 0.02, BlockLen: 13, LoopWeight: 0.75, LoopTrip: 45, RandomBranches: 0.03, Footprint: 192 << 20, L1Frac: 0.95, L2Frac: 0.04, StrideFrac: 0.8, CodeFootprint: 64 << 10, DepDist: 3.4, BurstFrac: 0.4},
	}
}

// ByName returns the profile for a benchmark name.
func ByName(name string) (Profile, error) {
	for _, p := range Benchmarks() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}
