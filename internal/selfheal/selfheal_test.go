package selfheal

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewErrors(t *testing.T) {
	if _, err := New(0, 0); err == nil {
		t.Fatal("zero entries must error")
	}
	if _, err := New(4, -1); err == nil {
		t.Fatal("negative spares must error")
	}
}

func TestMarkAndAvoid(t *testing.T) {
	a, err := New(8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Usable(3) {
		t.Fatal("pristine entry must be usable")
	}
	if err := a.MarkFaulty(3); err != nil {
		t.Fatal(err)
	}
	if a.Usable(3) {
		t.Fatal("faulty entry without spares must be avoided")
	}
	if a.EffectiveCapacity() != 7 {
		t.Fatalf("capacity = %d", a.EffectiveCapacity())
	}
	if a.Avoided == 0 {
		t.Fatal("avoidance not counted")
	}
	if err := a.MarkFaulty(99); err == nil {
		t.Fatal("out of range must error")
	}
	// double mark is idempotent
	if err := a.MarkFaulty(3); err != nil {
		t.Fatal(err)
	}
	if a.FaultyCount() != 1 {
		t.Fatalf("faulty = %d", a.FaultyCount())
	}
}

func TestSparesRestoreCapacity(t *testing.T) {
	a, _ := New(8, 2)
	a.MarkFaulty(1)
	a.MarkFaulty(5)
	if !a.Usable(1) || !a.Usable(5) {
		t.Fatal("remapped entries must be usable")
	}
	if a.EffectiveCapacity() != 8 {
		t.Fatalf("capacity = %d with spares", a.EffectiveCapacity())
	}
	// third fault exceeds the spares
	a.MarkFaulty(6)
	if a.Usable(6) {
		t.Fatal("third fault must be avoided")
	}
	if a.EffectiveCapacity() != 7 {
		t.Fatalf("capacity = %d", a.EffectiveCapacity())
	}
	if a.Remapped == 0 {
		t.Fatal("remap not counted")
	}
}

func TestInjectRandomDeterministic(t *testing.T) {
	a, _ := New(256, 0)
	b, _ := New(256, 0)
	a.InjectRandom(0.25, 7)
	b.InjectRandom(0.25, 7)
	if a.FaultyCount() != b.FaultyCount() {
		t.Fatal("injection not deterministic")
	}
	if a.FaultyCount() < 30 || a.FaultyCount() > 100 {
		t.Fatalf("injection count %d implausible for 25%% of 256", a.FaultyCount())
	}
	if a.Alive() != true {
		t.Fatal("array should still be alive")
	}
}

// TestSpareExhaustionBoundary walks the exact boundary: with k spares the
// first k faults remap (in mark order, to spares 0..k-1), the k+1-th is
// avoided, and an array with as many spares as entries survives every
// entry failing.
func TestSpareExhaustionBoundary(t *testing.T) {
	const k = 3
	a, _ := New(8, k)
	order := []int{6, 0, 4, 2}
	for _, i := range order {
		if err := a.MarkFaulty(i); err != nil {
			t.Fatal(err)
		}
	}
	wantRemap := map[int]int{6: 0, 0: 1, 4: 2}
	if !reflect.DeepEqual(a.remap, wantRemap) {
		t.Fatalf("remap = %v, want %v (spares assigned in mark order)", a.remap, wantRemap)
	}
	if a.Usable(2) {
		t.Fatal("fault past spare exhaustion must be avoided")
	}
	if a.EffectiveCapacity() != 7 {
		t.Fatalf("capacity = %d, want 7", a.EffectiveCapacity())
	}

	full, _ := New(4, 4)
	for i := 0; i < 4; i++ {
		_ = full.MarkFaulty(i)
	}
	if full.EffectiveCapacity() != 4 || !full.Alive() {
		t.Fatalf("fully-spared array lost capacity: %d", full.EffectiveCapacity())
	}
	if full.FaultyCount() != 4 {
		t.Fatalf("faulty = %d", full.FaultyCount())
	}
}

// TestDoubleMarkDoesNotConsumeSpare: re-marking an already-faulty entry is
// idempotent all the way down — it must not burn a second spare or disturb
// the existing remapping.
func TestDoubleMarkDoesNotConsumeSpare(t *testing.T) {
	a, _ := New(8, 2)
	if err := a.MarkFaulty(2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := a.MarkFaulty(2); err != nil {
			t.Fatal(err)
		}
	}
	if a.nextSp != 1 {
		t.Fatalf("double mark consumed spares: nextSp = %d, want 1", a.nextSp)
	}
	if err := a.MarkFaulty(5); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.remap, map[int]int{2: 0, 5: 1}) {
		t.Fatalf("remap = %v, want {2:0 5:1}", a.remap)
	}
	if !a.Usable(2) || !a.Usable(5) {
		t.Fatal("both faults have spares and must stay usable")
	}
	if a.EffectiveCapacity() != 8 {
		t.Fatalf("capacity = %d, want 8", a.EffectiveCapacity())
	}
}

// TestRemapDeterminism: the same fault sequence — explicit or via
// seeded injection — must produce identical fault maps and spare
// assignments on independent arrays.
func TestRemapDeterminism(t *testing.T) {
	seq := []int{5, 1, 7, 3, 1, 5, 0}
	a, _ := New(8, 4)
	b, _ := New(8, 4)
	for _, i := range seq {
		_ = a.MarkFaulty(i)
		_ = b.MarkFaulty(i)
	}
	if !reflect.DeepEqual(a.remap, b.remap) || !reflect.DeepEqual(a.faulty, b.faulty) {
		t.Fatalf("same sequence diverged: %v vs %v", a.remap, b.remap)
	}

	x, _ := New(256, 16)
	y, _ := New(256, 16)
	x.InjectRandom(0.1, 2026)
	y.InjectRandom(0.1, 2026)
	if !reflect.DeepEqual(x.remap, y.remap) || !reflect.DeepEqual(x.faulty, y.faulty) {
		t.Fatal("seeded injection produced diverging remaps")
	}
	if x.nextSp != 16 {
		t.Fatalf("10%% of 256 must exhaust 16 spares, nextSp = %d", x.nextSp)
	}
}

// Property: capacity + avoided-entry count == size, for any fault pattern.
func TestCapacityAccountingProperty(t *testing.T) {
	f := func(marks []uint8, spares8 uint8) bool {
		spares := int(spares8 % 4)
		a, err := New(16, spares)
		if err != nil {
			return false
		}
		for _, m := range marks {
			_ = a.MarkFaulty(int(m % 16))
		}
		unusable := 0
		for i := 0; i < 16; i++ {
			if !a.Usable(i) {
				unusable++
			}
		}
		return a.EffectiveCapacity()+unusable == 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
