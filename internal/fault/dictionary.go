package fault

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"rescue/internal/obs"
)

// Dictionary is a precomputed fault dictionary: for every collapsed fault,
// the set of observation points that fail under the generated test
// program. Real test floors use dictionaries to diagnose returned parts
// without re-simulation; here it also serves as a complete machine-checkable
// record that every fault's syndrome stays inside one super-component.
type Dictionary struct {
	// Syndromes[i] lists the failing observation points of Collapsed[i]
	// (empty = fault undetected by the program).
	Syndromes [][]int
}

// BuildDictionary simulates every collapsed fault against the pattern set
// across all cores. This is the expensive, exhaustive version of the
// per-fault isolation flow; cost is proportional to faults × affected cones.
func BuildDictionary(sim *Sim, u *Universe) *Dictionary {
	d, _ := BuildDictionaryWorkers(sim, u, 0)
	return d
}

// BuildDictionaryWorkers is BuildDictionary with an explicit worker count
// (<= 0 = all cores) and campaign stats. Fault dropping stays off: a
// dictionary needs every fault's complete syndrome. It panics if the
// underlying flow errors, which cannot happen without a cancellable
// context, a checkpoint, or an armed chaos budget.
func BuildDictionaryWorkers(sim *Sim, u *Universe, workers int) (*Dictionary, Stats) {
	d, st, err := BuildDictionaryFlow(context.Background(), sim, u, workers, nil)
	if err != nil {
		panic(fmt.Sprintf("fault: BuildDictionaryWorkers failed: %v", err))
	}
	return d, st
}

// BuildDictionaryFlow is BuildDictionaryWorkers with cooperative
// cancellation and an optional checkpoint journal: the single big campaign
// behind the dictionary resumes at chunk granularity after a kill, and the
// rebuilt dictionary is bit-identical to an uninterrupted build at any
// worker count. On error the partial campaign Stats are still returned.
func BuildDictionaryFlow(ctx context.Context, sim *Sim, u *Universe, workers int, ck *Checkpoint) (*Dictionary, Stats, error) {
	defer obs.Span(ctx, "dictionary")()
	camp := NewCampaign(sim, CampaignConfig{Workers: workers})
	results, st, err := camp.RunCheckpoint(ctx, ck, u.Collapsed)
	if err != nil {
		return nil, st, err
	}
	d := &Dictionary{Syndromes: make([][]int, len(u.Collapsed))}
	for i, res := range results {
		obs := append([]int(nil), res.FailObs...)
		sort.Ints(obs)
		d.Syndromes[i] = obs
	}
	return d, st, nil
}

// Detected reports how many faults the dictionary's program detects.
func (d *Dictionary) Detected() int {
	n := 0
	for _, s := range d.Syndromes {
		if len(s) > 0 {
			n++
		}
	}
	return n
}

// Lookup finds the faults whose syndrome is a superset of the observed
// failing bits — the diagnosis candidates for a returned part. Bits are
// matched as sets (tester bit order does not matter).
func (d *Dictionary) Lookup(failObs []int) []int {
	want := map[int]bool{}
	for _, o := range failObs {
		want[o] = true
	}
	var out []int
	for i, syn := range d.Syndromes {
		if len(syn) == 0 || len(syn) < len(want) {
			continue
		}
		have := map[int]bool{}
		for _, o := range syn {
			have[o] = true
		}
		all := true
		for o := range want {
			if !have[o] {
				all = false
				break
			}
		}
		if all {
			out = append(out, i)
		}
	}
	return out
}

// WriteCSV serializes the dictionary as "faultIndex,obs;obs;..." lines.
func (d *Dictionary) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i, syn := range d.Syndromes {
		parts := make([]string, len(syn))
		for j, o := range syn {
			parts[j] = fmt.Sprintf("%d", o)
		}
		if _, err := fmt.Fprintf(bw, "%d,%s\n", i, strings.Join(parts, ";")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a dictionary written by WriteCSV.
func ReadCSV(r io.Reader) (*Dictionary, error) {
	d := &Dictionary{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" {
			continue
		}
		idxPart, synPart, ok := strings.Cut(txt, ",")
		if !ok {
			return nil, fmt.Errorf("fault: dictionary line %d: no comma", line)
		}
		var idx int
		if _, err := fmt.Sscanf(idxPart, "%d", &idx); err != nil {
			return nil, fmt.Errorf("fault: dictionary line %d: %v", line, err)
		}
		if idx != len(d.Syndromes) {
			return nil, fmt.Errorf("fault: dictionary line %d: index %d out of order", line, idx)
		}
		var syn []int
		if synPart != "" {
			for _, p := range strings.Split(synPart, ";") {
				var o int
				if _, err := fmt.Sscanf(p, "%d", &o); err != nil {
					return nil, fmt.Errorf("fault: dictionary line %d: %v", line, err)
				}
				syn = append(syn, o)
			}
		}
		d.Syndromes = append(d.Syndromes, syn)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}
