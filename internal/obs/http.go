package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in the text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// AttachPprof mounts the standard net/http/pprof handlers on mux under
// /debug/pprof/ — the manual equivalent of importing the package for its
// side effect on http.DefaultServeMux, which the daemon does not use.
func AttachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
