package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"rescue/internal/obs"
	"rescue/internal/sched"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs              submit {kind, params}; 202 + job snapshot
//	GET    /jobs              list all jobs
//	GET    /jobs/{id}         one job's snapshot
//	GET    /jobs/{id}/result  the finished report (text/plain)
//	GET    /jobs/{id}/events  NDJSON event stream: replay, then live until done
//	GET    /jobs/{id}/journal the job's checkpoint journal (NDJSON), if any
//	DELETE /jobs/{id}         cancel a queued or running job; 409 if already terminal
//	GET    /metrics           obs text format
//	GET    /healthz           200 ok / 503 draining
//	/debug/pprof/...          net/http/pprof
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.Handle("/metrics", obs.Handler(s.reg))
	mux.HandleFunc("/healthz", s.handleHealth)
	obs.AttachPprof(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.List())
	case http.MethodPost:
		var spec Spec
		dec := json.NewDecoder(r.Body)
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, "bad job spec: %v", err)
			return
		}
		// Headers override the spec fields: proxies and dispatch
		// coordinators tag traffic without rewriting job bodies (which
		// would change the artifact/checkpoint identity).
		if h := r.Header.Get("X-Rescue-Client"); h != "" {
			spec.Tenant = h
		}
		if h := r.Header.Get("X-Rescue-Class"); h != "" {
			spec.Class = h
		}
		j, err := s.Submit(spec)
		var shed *sched.ShedError
		switch {
		case errors.As(err, &shed):
			// Per-tenant Retry-After makes client backoff principled:
			// this tenant's estimated queue-drain time, not a guess and
			// not some other tenant's backlog.
			w.Header().Set("Retry-After", strconv.Itoa(shed.RetryAfter))
			writeErr(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrDraining):
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, ErrUnknownKind), errors.Is(err, ErrBadSpec):
			writeErr(w, http.StatusBadRequest, "%v", err)
		case err != nil:
			writeErr(w, http.StatusInternalServerError, "%v", err)
		default:
			writeJSON(w, http.StatusAccepted, j.snapshot())
		}
	default:
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	j, ok := s.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, j.snapshot())
	case sub == "" && r.Method == http.MethodDelete:
		// A cancel racing a job that already reached a terminal state is a
		// conflict, not a lookup miss: the job exists, its outcome is just
		// no longer negotiable. 409 lets coordinators distinguish "too
		// late" (result may be worth fetching) from "never existed".
		if sn := j.snapshot(); sn.State.Done() {
			writeErr(w, http.StatusConflict, "job %s already %s; cancel has no effect", id, sn.State)
			return
		}
		s.Cancel(id)
		writeJSON(w, http.StatusOK, j.snapshot())
	case sub == "result" && r.Method == http.MethodGet:
		s.handleResult(w, j)
	case sub == "events" && r.Method == http.MethodGet:
		s.handleEvents(w, r, j)
	case sub == "journal" && r.Method == http.MethodGet:
		s.handleJournal(w, j)
	case strings.HasPrefix(sub, "points/") && r.Method == http.MethodDelete:
		s.handlePointCancel(w, j, strings.TrimPrefix(sub, "points/"))
	default:
		writeErr(w, http.StatusNotFound, "no route /jobs/%s/%s", id, sub)
	}
}

// handlePointCancel cancels one grid point of a running sweep job
// (DELETE /jobs/{id}/points/{digest}). The rest of the grid keeps
// running; the canceled point renders as canceled in the frontier. Only a
// running sweep has cancelable points — other kinds and terminal jobs are
// conflicts, an unknown digest is a lookup miss.
func (s *Server) handlePointCancel(w http.ResponseWriter, j *Job, digest string) {
	if sn := j.snapshot(); sn.State.Done() {
		writeErr(w, http.StatusConflict, "job %s already %s; point cancel has no effect", j.ID, sn.State)
		return
	}
	ctl := j.pointControl()
	if ctl == nil {
		writeErr(w, http.StatusConflict, "job %s has no cancelable points (not a running sweep)", j.ID)
		return
	}
	if !ctl.CancelPoint(digest) {
		writeErr(w, http.StatusNotFound, "job %s has no point %q", j.ID, digest)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"job": j.ID, "point": digest, "canceled": true})
}

// handleJournal exports the job's checkpoint journal — the digest-sealed
// record of its campaigns' completed fault ranges. Interrupted jobs are the
// interesting case: the journal is what an identical resubmission (or an
// external coordinator) resumes from. Succeeded jobs have consumed and
// removed theirs.
func (s *Server) handleJournal(w http.ResponseWriter, j *Job) {
	path := j.journalPath()
	if path == "" {
		writeErr(w, http.StatusNotFound, "job %s has no checkpoint journal (checkpointing disabled)", j.ID)
		return
	}
	b, err := os.ReadFile(path)
	if err != nil {
		writeErr(w, http.StatusNotFound, "job %s journal unavailable: %v", j.ID, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(b)
}

func (s *Server) handleResult(w http.ResponseWriter, j *Job) {
	out, state, errMsg := j.result()
	if !state.Done() {
		writeErr(w, http.StatusConflict, "job %s is %s; result not ready", j.ID, state)
		return
	}
	if state != StateSucceeded {
		writeErr(w, http.StatusConflict, "job %s %s: %s", j.ID, state, errMsg)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(out)
}

// keepaliveEvery is the idle interval after which handleEvents emits a
// synthetic keepalive line (not part of the job's event log, seq 0). Long
// quiet stretches — a job waiting in the queue, a flow building artifacts
// before its first campaign — would otherwise be indistinguishable from a
// dead server to a streaming client with a liveness timeout, such as the
// dispatch coordinator's heartbeat watchdog.
const keepaliveEvery = 10 * time.Second

// handleEvents streams the job's event log as NDJSON: everything still
// retained, then live appends until the job reaches a terminal state or
// the client goes away. Each line is one Event; idle periods carry
// keepalives. The stream is bounded on both ends: the job's log evicts
// old events past EventLogCap, and a consumer more than maxStreamLag
// events behind is skipped ahead — either case surfaces as an explicit
// {"type":"dropped","count":N} marker (seq 0, like keepalives) instead
// of silently pinning server memory on a slow reader.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	idle := time.NewTimer(keepaliveEvery)
	defer idle.Stop()
	after := 0
	replay := true
	for {
		dropped, evs, state, changed := j.eventsSince(after)
		// The initial replay of retained history is part of the API
		// contract (and already bounded by the log cap); the lag clip
		// only applies once the stream is live and the consumer proves
		// unable to keep up with it.
		if !replay {
			if lag := len(evs) - maxStreamLag; lag > 0 {
				dropped += lag
				evs = evs[lag:]
			}
		}
		replay = false
		if dropped > 0 {
			if err := enc.Encode(Event{Type: "dropped", Time: time.Now(), Count: dropped}); err != nil {
				return
			}
			after += dropped
		}
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		after += len(evs)
		if len(evs) > 0 || dropped > 0 {
			if fl != nil {
				fl.Flush()
			}
		}
		if state.Done() {
			// Drain any events appended between the snapshot and now.
			if d, evs, _, _ := j.eventsSince(after); len(evs) == 0 && d == 0 {
				return
			}
			continue
		}
		if !idle.Stop() {
			select {
			case <-idle.C:
			default:
			}
		}
		idle.Reset(keepaliveEvery)
		select {
		case <-changed:
		case <-idle.C:
			if err := enc.Encode(Event{Type: "keepalive", Time: time.Now()}); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}
