// Command rescue-shard runs one flow as a distributed campaign: it splits
// every eligible fault-simulation campaign into content-addressed shards,
// dispatches them to a pool of rescued workers over HTTP, and merges the
// results byte-identically to the single-node run — the report on stdout
// is the same bytes `rescued` or the corresponding CLI would produce.
//
// The point is the failure story, not the speedup: workers are health
// checked and heartbeat monitored; failed or hung shards are retried
// across the pool with exponential backoff under a retry budget; and when
// the pool is exhausted the remaining shards are recomputed locally — the
// run degrades to a single-node campaign instead of failing, finishing
// with exit code 3 so scripts can tell a degraded success from a clean one.
//
// Workers are either external rescued processes (-workers URL,URL,...) or
// children spawned from this binary (-spawn N), each a fully featured
// rescued on a loopback port. With -spawn, chaos mode (-chaos-kill-workers
// K) SIGKILLs K seeded-random workers mid-campaign to prove the machinery:
// the merged output must still match the serial golden.
//
// Usage:
//
//	rescue-shard -kind fab -params '{"small":true,"seed":7}' -spawn 3
//	rescue-shard -kind dict -params '{"small":true}' -workers http://h1:8321,http://h2:8321
//	rescue-shard -worker -addr 127.0.0.1:0     (one pool worker; used by -spawn)
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strings"
	"time"

	"rescue/internal/cli"
	"rescue/internal/dispatch"
	"rescue/internal/fault"
	"rescue/internal/flows"
	"rescue/internal/serve"
)

func main() {
	var (
		worker = flag.Bool("worker", false, "run as a pool worker (a rescued serving shard jobs) instead of a coordinator")
		addr   = flag.String("addr", "127.0.0.1:0", "worker listen address (port 0 picks a free port)")

		kind       = flag.String("kind", "", "flow to run (a rescued job kind: table3, dict, isolation, yat, fab)")
		params     = flag.String("params", "", "flow parameters as JSON (the kind's job params)")
		workersCSV = flag.String("workers", "", "comma-separated rescued base URLs to dispatch shards to")
		spawn      = flag.Int("spawn", 0, "spawn N local worker children instead of -workers URLs")
		shards     = flag.Int("shards", 0, "shards per eligible campaign (0 = pool size)")
		minFaults  = flag.Int("min-faults", 64, "campaigns smaller than this run locally")
		budget     = flag.Int("retry-budget", 0, "re-dispatch attempts per shard (0 = 2x pool size)")
		heartbeat  = flag.Duration("heartbeat", 30*time.Second, "max event-stream silence before a worker counts as hung")
		jobWorkers = flag.Int("job-workers", 0, "campaign workers inside each shard job and locally (0 = all cores)")
		seed       = flag.Int64("seed", 1, "seed for retry jitter and chaos victim choice")
		tenant     = flag.String("tenant", "", "tenant tag for dispatched shard jobs (X-Rescue-Client on workers)")
		timeout    = flag.Duration("timeout", 0, "overall deadline (0 = none; exit 124 when exceeded)")
		ckPath     = flag.String("checkpoint", "", "campaign checkpoint journal for the local run (empty = off)")
		resume     = flag.Bool("resume", false, "resume from an existing -checkpoint journal")
		quiet      = flag.Bool("quiet", false, "suppress dispatch log lines")

		chaosKill  = flag.Int("chaos-kill-workers", 0, "kill this many spawned workers mid-campaign (requires -spawn)")
		chaosAfter = flag.Int("chaos-after-shards", 1, "completed shards to wait for before the chaos kill")
	)
	flag.Parse()

	if *worker {
		runWorker(*addr, *jobWorkers)
		return
	}
	runCoordinator(coordConfig{
		kind: *kind, params: *params, workersCSV: *workersCSV, spawn: *spawn,
		shards: *shards, minFaults: *minFaults, budget: *budget,
		heartbeat: *heartbeat, jobWorkers: *jobWorkers, seed: *seed,
		timeout: *timeout, ckPath: *ckPath, resume: *resume, quiet: *quiet,
		chaosKill: *chaosKill, chaosAfter: *chaosAfter, tenant: *tenant,
	})
}

// runWorker is the -worker mode: a rescued pinned to the built-in kinds,
// draining gracefully on SIGINT/SIGTERM. The resolved address on stdout is
// the contract the coordinator's -spawn mode parses.
func runWorker(addr string, jobWorkers int) {
	cli.CheckWorkers(jobWorkers)
	srv := serve.New(serve.Config{
		Workers: jobWorkers,
		Logf:    log.New(os.Stderr, "worker: ", log.LstdFlags).Printf,
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		cli.Fatalf("listen: %v", err)
	}
	fmt.Printf("listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := cli.SignalContext()
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errc:
		cli.Fatalf("serve: %v", err)
	}
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		hs.Close()
		cli.Fatalf("drain: %v", err)
	}
	hs.Shutdown(dctx)
}

type coordConfig struct {
	kind, params, workersCSV string
	spawn, shards, minFaults int
	budget                   int
	heartbeat                time.Duration
	jobWorkers               int
	seed                     int64
	timeout                  time.Duration
	ckPath                   string
	resume                   bool
	quiet                    bool
	chaosKill, chaosAfter    int
	tenant                   string
}

func runCoordinator(cfg coordConfig) {
	kinds := serve.Kinds()
	runner, ok := kinds[cfg.kind]
	if cfg.kind == "" || cfg.kind == "shard" || !ok {
		cli.Usagef("-kind must be one of %s, got %q", kindNames(kinds), cfg.kind)
	}
	if cfg.params != "" && !json.Valid([]byte(cfg.params)) {
		cli.Usagef("-params is not valid JSON: %s", cfg.params)
	}
	if _, err := serve.TenantName(cfg.tenant); err != nil {
		cli.Usagef("-tenant: %v", err)
	}
	if (cfg.workersCSV == "") == (cfg.spawn == 0) {
		cli.Usagef("need exactly one of -workers or -spawn")
	}
	if cfg.spawn < 0 {
		cli.Usagef("-spawn must be >= 0, got %d", cfg.spawn)
	}
	if cfg.chaosKill > 0 && cfg.spawn == 0 {
		cli.Usagef("-chaos-kill-workers requires -spawn (can only kill workers this process owns)")
	}
	if cfg.chaosKill > cfg.spawn {
		cli.Usagef("-chaos-kill-workers %d exceeds -spawn %d", cfg.chaosKill, cfg.spawn)
	}
	cli.CheckWorkers(cfg.jobWorkers)
	cli.CheckTimeout(cfg.timeout)
	ck := cli.OpenCheckpoint(cfg.ckPath, cfg.resume)

	logf := log.New(os.Stderr, "dispatch: ", log.LstdFlags).Printf
	if cfg.quiet {
		logf = nil
	}

	// Assemble the pool: external URLs, or spawned children.
	var urls []string
	var children []*exec.Cmd
	if cfg.spawn > 0 {
		var err error
		urls, children, err = spawnWorkers(cfg.spawn, cfg.jobWorkers)
		if err != nil {
			killAll(children)
			cli.Fatalf("spawn workers: %v", err)
		}
		defer killAll(children)
	} else {
		for _, u := range strings.Split(cfg.workersCSV, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			cli.Usagef("-workers lists no URLs")
		}
	}

	pool, err := dispatch.NewPool(dispatch.Config{
		Workers:     urls,
		Flow:        serve.Spec{Kind: cfg.kind, Params: json.RawMessage(cfg.params)},
		Shards:      cfg.shards,
		MinFaults:   cfg.minFaults,
		RetryBudget: cfg.budget,
		Heartbeat:   cfg.heartbeat,
		Seed:        cfg.seed,
		Tenant:      cfg.tenant,
		Logf:        logf,
		Chaos: dispatch.ChaosConfig{
			KillWorkers: cfg.chaosKill,
			AfterShards: cfg.chaosAfter,
			Kill: func(i int) error {
				return children[i].Process.Kill()
			},
		},
	})
	if err != nil {
		cli.Fatalf("%v", err)
	}
	defer pool.Close()

	ctx, cancel := cli.FlowContext(cfg.timeout)
	defer cancel()
	ctx = fault.WithShardPlan(ctx, pool.Plan())

	rc := serve.RunContext{
		Env:     flows.Env{Store: flows.NewStore(), Ck: ck},
		Workers: cfg.jobWorkers,
	}
	out, err := runner(ctx, rc, json.RawMessage(cfg.params))
	os.Stdout.Write(out)
	if err != nil {
		cli.ExitErr(err)
	}

	st := pool.Stats()
	fmt.Fprintf(os.Stderr,
		"dispatch: %d shards completed remotely, %d retries, %d local fallbacks, %d workers killed\n",
		st.Completed, st.Retries, st.Fallbacks, st.Killed)
	if st.Fallbacks > 0 {
		fmt.Fprintf(os.Stderr,
			"degraded: %d shard(s) recomputed locally after the worker pool was exhausted; output is complete and verified\n",
			st.Fallbacks)
		os.Exit(cli.ExitDegraded)
	}
}

func kindNames(kinds map[string]serve.Runner) string {
	var names []string
	for k := range kinds {
		if k != "shard" {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// spawnWorkers launches n children of this binary in -worker mode on free
// loopback ports and returns their base URLs once each prints its
// listening address.
func spawnWorkers(n, jobWorkers int) ([]string, []*exec.Cmd, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, nil, err
	}
	var urls []string
	var children []*exec.Cmd
	for i := 0; i < n; i++ {
		c := exec.Command(self, "-worker", "-addr", "127.0.0.1:0",
			"-job-workers", fmt.Sprint(jobWorkers))
		c.Stderr = os.Stderr
		stdout, err := c.StdoutPipe()
		if err != nil {
			return urls, children, err
		}
		if err := c.Start(); err != nil {
			return urls, children, err
		}
		children = append(children, c)
		addr, err := readListenAddr(stdout)
		if err != nil {
			return urls, children, fmt.Errorf("worker %d: %w", i, err)
		}
		go io.Copy(io.Discard, stdout) // keep the pipe drained
		urls = append(urls, "http://"+addr)
	}
	return urls, children, nil
}

func readListenAddr(r io.Reader) (string, error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "listening on "); ok {
			return addr, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("exited before printing its listen address")
}

// killAll SIGKILLs every spawned worker and reaps it. By the time this
// runs the results are merged (or the run failed); there is nothing worth
// draining.
func killAll(children []*exec.Cmd) {
	for _, c := range children {
		if c != nil && c.Process != nil {
			c.Process.Kill()
		}
	}
	for _, c := range children {
		if c != nil && c.Process != nil {
			c.Wait()
		}
	}
}
