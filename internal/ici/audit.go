package ici

import (
	"fmt"
	"sort"

	"rescue/internal/netlist"
)

// Grouping assigns every netlist component (by name) to a named
// super-component — the granularity at which faults are mapped out. The
// paper's Rescue grouping lumps, e.g., an issue-queue half, its selection
// tree, and its wakeup/replay copy into one super-component (Section
// 4.1.3).
type Grouping map[string]string

// AuditResult is the outcome of checking a netlist against a grouping.
type AuditResult struct {
	// BitSuper maps each observation-point index (netlist.ObsPoints order)
	// to the single super-component feeding it, or "" for bits with no
	// logic in their cone (direct FF-to-FF wiring).
	BitSuper []string
	// Violations lists observation points whose intra-cycle cone spans
	// more than one super-component, with the offending super names.
	Violations []AuditViolation
}

// AuditViolation is one observation point fed by multiple super-components.
type AuditViolation struct {
	Obs    int
	Supers []string
}

// Audit verifies the ICI property of a gate-level netlist at the
// granularity of a super-component grouping: every scan observation point
// must be fed, within one cycle, by logic of at most one super-component.
// Components missing from the grouping map to themselves.
func Audit(n *netlist.Netlist, grouping Grouping) *AuditResult {
	cones := n.FanInComps()
	res := &AuditResult{BitSuper: make([]string, len(cones))}
	for oi, comps := range cones {
		supers := map[string]bool{}
		for _, c := range comps {
			name := n.CompName(c)
			if s, ok := grouping[name]; ok {
				name = s
			}
			supers[name] = true
		}
		switch len(supers) {
		case 0:
			res.BitSuper[oi] = ""
		case 1:
			for s := range supers {
				res.BitSuper[oi] = s
			}
		default:
			names := make([]string, 0, len(supers))
			for s := range supers {
				names = append(names, s)
			}
			sort.Strings(names)
			res.Violations = append(res.Violations, AuditViolation{Obs: oi, Supers: names})
			res.BitSuper[oi] = names[0] // arbitrary; design is not isolable here
		}
	}
	return res
}

// OK reports whether the audit found no violations.
func (r *AuditResult) OK() bool { return len(r.Violations) == 0 }

// ViolatingObs reports whether an observation point was flagged as an ICI
// violation — its cone spans multiple super-components, so its BitSuper
// entry is an arbitrary pick, not a diagnosis. Conservative flows treat a
// failing violating bit as undiagnosable (chipkill) rather than trust it.
func (r *AuditResult) ViolatingObs(oi int) bool {
	for _, v := range r.Violations {
		if v.Obs == oi {
			return true
		}
	}
	return false
}

// Isolate maps a set of failing observation points to the unique faulty
// super-component, implementing the paper's single-lookup isolation. It
// fails if the failing bits implicate more than one super-component (which
// a compliant design produces only under multi-fault collisions within one
// super) or none at all.
func (r *AuditResult) Isolate(failObs []int) (string, error) {
	supers := map[string]bool{}
	for _, oi := range failObs {
		if oi < 0 || oi >= len(r.BitSuper) {
			return "", fmt.Errorf("ici: observation index %d out of range", oi)
		}
		if s := r.BitSuper[oi]; s != "" {
			supers[s] = true
		}
	}
	if len(supers) == 0 {
		return "", fmt.Errorf("ici: no super-component implicated by %d failing bits", len(failObs))
	}
	if len(supers) > 1 {
		names := make([]string, 0, len(supers))
		for s := range supers {
			names = append(names, s)
		}
		sort.Strings(names)
		return "", fmt.Errorf("ici: failing bits implicate %d super-components: %v", len(supers), names)
	}
	for s := range supers {
		return s, nil
	}
	panic("unreachable")
}

// IsolateEach maps failing bits to super-components individually and
// returns the distinct set — used when multiple simultaneous faults in
// different super-components are isolated by a single vector (the ICI
// corollary of Section 3.1).
func (r *AuditResult) IsolateEach(failObs []int) []string {
	set := map[string]bool{}
	for _, oi := range failObs {
		if oi >= 0 && oi < len(r.BitSuper) && r.BitSuper[oi] != "" {
			set[r.BitSuper[oi]] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
