package rtl

import (
	"fmt"

	"rescue/internal/netlist"
)

// iqEntry is one issue-queue entry's register state (Q nets of its FFs).
type iqEntry struct {
	valid, rdy1, rdy2 netlist.NetID
	s1, s2, dest      Bus
	op                Bus
}

// newEntryHoles allocates an entry's FFs with placeholder D inputs.
func (p *pipe) newEntryHoles(name string) iqEntry {
	cfg := p.cfg
	return iqEntry{
		valid: p.ffHole(name + ".valid"),
		rdy1:  p.ffHole(name + ".rdy1"),
		rdy2:  p.ffHole(name + ".rdy2"),
		s1:    p.ffHoleBus(name+".s1", cfg.TagW),
		s2:    p.ffHoleBus(name+".s2", cfg.TagW),
		dest:  p.ffHoleBus(name+".dest", cfg.TagW),
		op:    p.ffHoleBus(name+".op", cfg.OpW),
	}
}

// entryVal is a combinational snapshot of an entry's next or current value.
type entryVal struct {
	valid, rdy1, rdy2 netlist.NetID
	s1, s2, dest      Bus
	op                Bus
}

func (e iqEntry) val(p *pipe) entryVal {
	return entryVal{valid: e.valid, rdy1: e.rdy1, rdy2: e.rdy2,
		s1: e.s1, s2: e.s2, dest: e.dest, op: e.op}
}

// muxEntry selects between two entry values bitwise.
func (p *pipe) muxEntry(sel netlist.NetID, a, c entryVal) entryVal {
	return entryVal{
		valid: p.n.Mux(sel, a.valid, c.valid),
		rdy1:  p.n.Mux(sel, a.rdy1, c.rdy1),
		rdy2:  p.n.Mux(sel, a.rdy2, c.rdy2),
		s1:    p.muxBus(sel, a.s1, c.s1),
		s2:    p.muxBus(sel, a.s2, c.s2),
		dest:  p.muxBus(sel, a.dest, c.dest),
		op:    p.muxBus(sel, a.op, c.op),
	}
}

// renamedVal converts a renamed-latch bundle to an entry value (sources
// start not-ready; real designs check the scoreboard — structurally the
// wakeup network provides readiness).
func (p *pipe) renamedVal(r renamed) entryVal {
	return entryVal{valid: r.valid, rdy1: p.tie0(), rdy2: p.tie0(),
		s1: r.src1Tag, s2: r.src2Tag, dest: r.destTag, op: r.op}
}

// broadcast is one wakeup broadcast slot: a dest tag and a valid bit.
type broadcast struct {
	tag   Bus
	valid netlist.NetID
}

// wakeupMatch builds the CAM match for one source tag against a set of
// broadcasts: OR over slots of (valid AND tag-equal).
func (p *pipe) wakeupMatch(src Bus, bcasts []broadcast) netlist.NetID {
	terms := make([]netlist.NetID, len(bcasts))
	for i, bc := range bcasts {
		terms[i] = p.n.And(bc.valid, p.eq(src, bc.tag))
	}
	return p.reduceOr(terms)
}

// selSlot is one latched selection result: whether a slot selected an
// instruction, the one-hot entry grant, and the selected payload.
type selSlot struct {
	valid netlist.NetID
	grant []netlist.NetID // one-hot over the half's entries
	dest  Bus
	s1    Bus
	s2    Bus
	op    Bus
}

// buildSelect constructs a select tree over entries: up to `slots` grants
// in priority (age ~ position) order, each gated by the resource limit
// thermometer `allow` (allow[k] = "slot k may issue") and the half-disable
// signal. Returns latched slots (latch FFs tagged with the current comp).
func (p *pipe) buildSelect(name string, entries []iqEntry, allow []netlist.NetID, halfDead netlist.NetID) []selSlot {
	reqs := make([]netlist.NetID, len(entries))
	for i, e := range entries {
		r := p.n.And(e.valid, p.n.And(e.rdy1, e.rdy2))
		reqs[i] = p.n.And(r, p.n.Not(halfDead))
	}
	slots := len(allow)
	taken := make([]netlist.NetID, len(entries))
	for i := range taken {
		taken[i] = p.tie0()
	}
	var out []selSlot
	for k := 0; k < slots; k++ {
		rem := make([]netlist.NetID, len(entries))
		for i := range entries {
			rem[i] = p.n.And(reqs[i], p.n.Not(taken[i]))
		}
		grants, any := p.priorityGrant(rem)
		for i := range grants {
			grants[i] = p.n.And(grants[i], allow[k])
		}
		valid := p.n.And(any, allow[k])
		for i := range taken {
			taken[i] = p.n.Or(taken[i], grants[i])
		}
		// payload muxes
		bus := func(get func(iqEntry) Bus) Bus {
			ins := make([]Bus, len(entries))
			for i, e := range entries {
				ins[i] = get(e)
			}
			return p.onehotMux(grants, ins)
		}
		slot := selSlot{
			valid: p.n.AddFF(valid, fmt.Sprintf("%s.sel%d.valid", name, k)),
			dest:  p.regBus(bus(func(e iqEntry) Bus { return e.dest }), fmt.Sprintf("%s.sel%d.dest", name, k)),
			s1:    p.regBus(bus(func(e iqEntry) Bus { return e.s1 }), fmt.Sprintf("%s.sel%d.s1", name, k)),
			s2:    p.regBus(bus(func(e iqEntry) Bus { return e.s2 }), fmt.Sprintf("%s.sel%d.s2", name, k)),
			op:    p.regBus(bus(func(e iqEntry) Bus { return e.op }), fmt.Sprintf("%s.sel%d.op", name, k)),
		}
		slot.grant = make([]netlist.NetID, len(entries))
		for i := range entries {
			slot.grant[i] = p.n.AddFF(grants[i], fmt.Sprintf("%s.sel%d.g%d", name, k, i))
		}
		out = append(out, slot)
	}
	return out
}

// allowThermo builds allow[k] = "at most (Ways - disabledBE) instructions
// may issue; slot k is within budget": allow[k] = NOT atLeast(k+1 disabled
// ... ) — i.e. k < Ways - popcount(fmapBE).
func (p *pipe) allowThermo(extra netlist.NetID) []netlist.NetID {
	cfg := p.cfg
	dis := make([]netlist.NetID, len(p.fmapBE))
	copy(dis, p.fmapBE)
	ge := p.atLeast(dis) // ge[j-1] = popcount(disabled) >= j
	allow := make([]netlist.NetID, cfg.Ways)
	for k := 0; k < cfg.Ways; k++ {
		// slot k allowed iff disabled <= Ways-1-k, i.e. NOT (disabled >= Ways-k)
		j := cfg.Ways - k
		var ok netlist.NetID
		if j-1 < len(ge) {
			ok = p.n.Not(ge[j-1])
		} else {
			ok = p.n.Const(true)
		}
		if extra != netlist.InvalidNet {
			ok = p.n.And(ok, p.n.Not(extra))
		}
		allow[k] = ok
	}
	return allow
}

// buildIssue constructs the issue stage. Rescue (Section 4.1.2, Figure 6):
// two independent halves, each with its own select sub-tree and privatized
// broadcast/replay copy; inter-segment compaction cycle-split through a
// temporary latch; a routing stage after issue. Baseline (Section 4.1.1):
// one compacting queue whose free-slot count chains across halves, a select
// chain spanning the whole queue, and one shared broadcast block — the ICI
// violations the paper calls out.
func (p *pipe) buildIssue() {
	if p.rescue {
		p.buildIssueRescue()
	} else {
		p.buildIssueBaseline()
	}
	p.buildIssueRouting()
}

func (p *pipe) buildIssueRescue() {
	cfg := p.cfg
	h := cfg.IQEntries / 2

	// --- Entry storage (placeholders now, next-state logic below) ---
	halves := [2][]iqEntry{}
	for hf := 0; hf < 2; hf++ {
		p.comp(fmt.Sprintf("iq.q%d", hf), "issue")
		for e := 0; e < h; e++ {
			halves[hf] = append(halves[hf], p.newEntryHoles(fmt.Sprintf("iq%d.e%d", hf, e)))
		}
	}
	// temporary inter-segment latch (written by the new half)
	p.comp("iq.q1", "issue")
	temp := make([]iqEntry, cfg.TempSlots)
	for t := 0; t < cfg.TempSlots; t++ {
		temp[t] = p.newEntryHoles(fmt.Sprintf("iq.temp%d", t))
	}
	// old half's "request instructions" latch, written by old half
	p.comp("iq.q0", "issue")
	reqLatch := p.ffHole("iq.req")

	// --- Select sub-trees (one per half) ---
	p.comp("iq.sel0", "issue")
	sel0 := p.buildSelect("iq0", halves[0], p.allowThermo(p.fmapIQ[0]), p.fmapIQ[0])
	p.comp("iq.sel1", "issue")
	sel1 := p.buildSelect("iq1", halves[1], p.allowThermo(p.fmapIQ[1]), p.fmapIQ[1])
	p.selLatch = [][]renamed{}
	sel := [2][]selSlot{sel0, sel1}

	// --- Broadcast/replay copies (privatized, Figure 6's LCC clones) ---
	bc := [2][]broadcast{}
	replayOwn := [2]netlist.NetID{}
	for hf := 0; hf < 2; hf++ {
		p.comp(fmt.Sprintf("iq.bc%d", hf), "issue")
		// selected counts per half from the latched slot valids
		v0 := make([]netlist.NetID, len(sel[0]))
		for i, s := range sel[0] {
			v0[i] = s.valid
		}
		v1 := make([]netlist.NetID, len(sel[1]))
		for i, s := range sel[1] {
			v1[i] = s.valid
		}
		ge0 := p.atLeast(v0) // ge0[j-1] = count0 >= j
		ge1 := p.atLeast(v1)
		// total > allowed? allowed = Ways - disabled. Overflow iff exists
		// j: count0 >= j AND count1 >= (allowed - j + 1)... build as OR over
		// split points using thermometers and the disabled thermometer.
		disGE := p.atLeast(p.fmapBE) // disGE[j-1] = disabled >= j
		var overflowTerms []netlist.NetID
		W := cfg.Ways
		for c0 := 0; c0 <= len(v0); c0++ {
			for c1 := 0; c1 <= len(v1); c1++ {
				if c0+c1 == 0 {
					continue
				}
				// term: count0 >= c0, count1 >= c1, allowed < c0+c1
				// allowed < t  <=>  disabled > W - t  <=>  disabled >= W-t+1
				t := c0 + c1
				var parts []netlist.NetID
				if c0 > 0 {
					parts = append(parts, ge0[c0-1])
				}
				if c1 > 0 {
					parts = append(parts, ge1[c1-1])
				}
				j := W - t + 1
				if j > len(disGE) {
					continue // disabled can never reach j
				}
				if j >= 1 {
					parts = append(parts, disGE[j-1])
				}
				overflowTerms = append(overflowTerms, p.reduceAnd(parts))
			}
		}
		overflow := p.reduceOr(overflowTerms)
		// fewer half replays; tie replays the new half (1)
		// count0 < count1  <=>  exists j: count1 >= j AND NOT count0 >= j
		var lessTerms []netlist.NetID
		for j := 1; j <= len(v1); j++ {
			c0ge := p.tie0()
			if j-1 < len(ge0) {
				c0ge = ge0[j-1]
			}
			lessTerms = append(lessTerms, p.n.And(ge1[j-1], p.n.Not(c0ge)))
		}
		zeroLess := p.reduceOr(lessTerms) // count0 < count1
		if hf == 0 {
			replayOwn[0] = p.n.And(overflow, zeroLess)
		} else {
			replayOwn[1] = p.n.And(overflow, p.n.Not(zeroLess))
		}
		// broadcasts: all slots of both halves, gated by the (privately
		// recomputed) replay decision for the slot's source half
		repl0 := p.n.And(overflow, zeroLess)
		repl1 := p.n.And(overflow, p.n.Not(zeroLess))
		var bcs []broadcast
		for _, s := range sel[0] {
			bcs = append(bcs, broadcast{tag: s.dest, valid: p.n.And(s.valid, p.n.Not(repl0))})
		}
		for _, s := range sel[1] {
			bcs = append(bcs, broadcast{tag: s.dest, valid: p.n.And(s.valid, p.n.Not(repl1))})
		}
		bc[hf] = bcs
	}

	// --- Per-half next-state: wakeup, issue-clear, compaction ---
	for hf := 0; hf < 2; hf++ {
		p.comp(fmt.Sprintf("iq.q%d", hf), "issue")
		entries := halves[hf]
		// post-wakeup, post-issue view of each entry
		after := make([]entryVal, h)
		for e := 0; e < h; e++ {
			ent := entries[e]
			m1 := p.wakeupMatch(ent.s1, bc[hf])
			m2 := p.wakeupMatch(ent.s2, bc[hf])
			issued := p.tie0()
			for _, s := range sel[hf] {
				issued = p.n.Or(issued, p.n.And(s.grant[e], p.n.Not(replayOwn[hf])))
			}
			after[e] = entryVal{
				valid: p.n.And(ent.valid, p.n.Not(issued)),
				rdy1:  p.n.Or(ent.rdy1, m1),
				rdy2:  p.n.Or(ent.rdy2, m2),
				s1:    ent.s1, s2: ent.s2, dest: ent.dest, op: ent.op,
			}
		}
		// within-half compaction: shift toward entry 0 when a hole exists
		// below (thermometer of holes strictly below e, within this half)
		holeBelow := p.tie0()
		next := make([]entryVal, h)
		for e := 0; e < h; e++ {
			if e > 0 {
				holeBelow = p.n.Or(holeBelow, p.n.Not(after[e-1].valid))
			}
			src := after[e]
			var shifted entryVal
			if e+1 < h {
				shifted = after[e+1]
			} else {
				// tail refill
				if hf == 0 {
					// Old half tail refills from the temporary latch slot 0.
					// This is the paper's temp-latch wakeup logic: it reads
					// only the temp latch and bc0 and writes only the old
					// half, so ICI holds (Section 4.1.2).
					shifted = temp[0].val(p)
					shifted.valid = p.n.And(shifted.valid, reqLatch)
					shifted.rdy1 = p.n.Or(shifted.rdy1, p.wakeupMatch(temp[0].s1, bc[0]))
					shifted.rdy2 = p.n.Or(shifted.rdy2, p.wakeupMatch(temp[0].s2, bc[0]))
				} else {
					// new half tail inserts from rename output latch way 0
					shifted = p.renamedVal(p.renamed[0])
				}
			}
			next[e] = p.muxEntry(holeBelow, src, shifted)
		}
		for e := 0; e < h; e++ {
			ent := entries[e]
			p.drive(ent.valid, next[e].valid)
			p.drive(ent.rdy1, next[e].rdy1)
			p.drive(ent.rdy2, next[e].rdy2)
			p.driveBus(ent.s1, next[e].s1)
			p.driveBus(ent.s2, next[e].s2)
			p.driveBus(ent.dest, next[e].dest)
			p.driveBus(ent.op, next[e].op)
		}
		if hf == 0 {
			// request more instructions when the old half has a hole
			anyHole := p.tie0()
			for e := 0; e < h; e++ {
				anyHole = p.n.Or(anyHole, p.n.Not(after[e].valid))
			}
			p.drive(reqLatch, anyHole)
		}
	}

	// temp latch capture: new half's head entries move in when the old
	// half requested; wakeup updates applied from bc1 (the new half's copy)
	p.comp("iq.q1", "issue")
	for t := 0; t < cfg.TempSlots; t++ {
		src := halves[1][t]
		m1 := p.wakeupMatch(src.s1, bc[1])
		m2 := p.wakeupMatch(src.s2, bc[1])
		nv := entryVal{
			valid: p.n.And(src.valid, reqLatch),
			rdy1:  p.n.Or(src.rdy1, m1),
			rdy2:  p.n.Or(src.rdy2, m2),
			s1:    src.s1, s2: src.s2, dest: src.dest, op: src.op,
		}
		hold := temp[t].val(p)
		v := p.muxEntry(reqLatch, hold, nv)
		p.drive(temp[t].valid, v.valid)
		p.drive(temp[t].rdy1, v.rdy1)
		p.drive(temp[t].rdy2, v.rdy2)
		p.driveBus(temp[t].s1, v.s1)
		p.driveBus(temp[t].s2, v.s2)
		p.driveBus(temp[t].dest, v.dest)
		p.driveBus(temp[t].op, v.op)
	}

	p.stashSelection(sel[:])
}

// stashSelection records the latched selection slots for the routing stage.
func (p *pipe) stashSelection(sel [][]selSlot) {
	p.selLatch = nil
	p.selValid = nil
	for _, half := range sel {
		var rs []renamed
		var vs []netlist.NetID
		for _, s := range half {
			rs = append(rs, renamed{valid: s.valid, op: s.op, destTag: s.dest, src1Tag: s.s1, src2Tag: s.s2})
			vs = append(vs, s.valid)
		}
		p.selLatch = append(p.selLatch, rs)
		p.selValid = append(p.selValid, vs)
	}
}

func (p *pipe) buildIssueBaseline() {
	cfg := p.cfg
	h := cfg.IQEntries / 2

	// entries, tagged by half so the audit can ask the half-granularity
	// isolation question the paper asks
	var all []iqEntry
	for hf := 0; hf < 2; hf++ {
		p.comp(fmt.Sprintf("iq.q%d", hf), "issue")
		for e := 0; e < h; e++ {
			all = append(all, p.newEntryHoles(fmt.Sprintf("iq%d.e%d", hf, e)))
		}
	}

	// one global select chain across the whole queue (the root combines
	// halves within the cycle); latched slots live in iq.selroot
	p.comp("iq.selroot", "issue")
	sel := p.buildSelect("iq", all, p.allowThermo(netlist.InvalidNet), p.tie0())

	// one shared broadcast block
	p.comp("iq.bc", "issue")
	var bcs []broadcast
	for _, s := range sel {
		bcs = append(bcs, broadcast{tag: s.dest, valid: s.valid})
	}

	// wakeup + issue-clear + global compaction (free-slot chain crosses
	// the half boundary: the paper's violations (1) and (2))
	after := make([]entryVal, len(all))
	for e, ent := range all {
		hf := 0
		if e >= h {
			hf = 1
		}
		p.comp(fmt.Sprintf("iq.q%d", hf), "issue")
		m1 := p.wakeupMatch(ent.s1, bcs)
		m2 := p.wakeupMatch(ent.s2, bcs)
		issued := p.tie0()
		for _, s := range sel {
			issued = p.n.Or(issued, s.grant[e])
		}
		after[e] = entryVal{
			valid: p.n.And(ent.valid, p.n.Not(issued)),
			rdy1:  p.n.Or(ent.rdy1, m1),
			rdy2:  p.n.Or(ent.rdy2, m2),
			s1:    ent.s1, s2: ent.s2, dest: ent.dest, op: ent.op,
		}
	}
	holeBelow := p.tie0()
	for e, ent := range all {
		hf := 0
		if e >= h {
			hf = 1
		}
		p.comp(fmt.Sprintf("iq.q%d", hf), "issue")
		if e > 0 {
			holeBelow = p.n.Or(holeBelow, p.n.Not(after[e-1].valid))
		}
		src := after[e]
		var shifted entryVal
		if e+1 < len(all) {
			shifted = after[e+1] // crosses the half boundary at e = h-1
		} else {
			shifted = p.renamedVal(p.renamed[0])
		}
		next := p.muxEntry(holeBelow, src, shifted)
		p.drive(ent.valid, next.valid)
		p.drive(ent.rdy1, next.rdy1)
		p.drive(ent.rdy2, next.rdy2)
		p.driveBus(ent.s1, next.s1)
		p.driveBus(ent.s2, next.s2)
		p.driveBus(ent.dest, next.dest)
		p.driveBus(ent.op, next.op)
	}

	p.stashSelection([][]selSlot{sel})
}

// buildIssueRouting adds the post-issue routing stage (Rescue) or a plain
// issue latch (baseline). Rescue: backend way k has a privatized mux
// controller choosing among the latched selection slots, skipping
// fault-mapped backend ways.
func (p *pipe) buildIssueRouting() {
	cfg := p.cfg
	// flatten slots
	var slots []renamed
	for _, half := range p.selLatch {
		slots = append(slots, half...)
	}
	selW := 1
	for 1<<uint(selW) < len(slots) {
		selW++
	}
	for k := 0; k < cfg.Ways; k++ {
		g := k / 2
		var out renamed
		if p.rescue {
			p.comp(fmt.Sprintf("be%d.route%d", g, k), "issue")
			// rank of this backend way among fault-free ways (privatized
			// controller per way)
			idx := p.constBus(0, selW)
			for j := 0; j < k; j++ {
				idx = p.inc(idx, p.n.Not(p.fmapBE[j]))
			}
			srcs := make([]Bus, len(slots))
			pick := func(get func(renamed) Bus) Bus {
				for i, s := range slots {
					srcs[i] = get(s)
				}
				return p.muxTree(idx, srcs)
			}
			vsrc := make([]Bus, len(slots))
			for i, s := range slots {
				vsrc[i] = Bus{s.valid}
			}
			valid := p.muxTree(idx, vsrc)[0]
			out.valid = p.n.And(valid, p.n.Not(p.fmapBE[k]))
			out.op = pick(func(r renamed) Bus { return r.op })
			out.destTag = pick(func(r renamed) Bus { return r.destTag })
			out.src1Tag = pick(func(r renamed) Bus { return r.src1Tag })
			out.src2Tag = pick(func(r renamed) Bus { return r.src2Tag })
		} else {
			// baseline: selection slot k feeds backend way k directly
			p.comp("iq.selroot", "issue")
			s := slots[k]
			out.valid = p.n.Buf(s.valid)
			out.op = s.op
			out.destTag = s.destTag
			out.src1Tag = s.src1Tag
			out.src2Tag = s.src2Tag
		}
		pre := fmt.Sprintf("issue.i%d", k)
		var q renamed
		q.valid = p.n.AddFF(out.valid, pre+".valid.q")
		q.op = p.regBus(out.op, pre+".op.q")
		q.destTag = p.regBus(out.destTag, pre+".dest.q")
		q.src1Tag = p.regBus(out.src1Tag, pre+".s1.q")
		q.src2Tag = p.regBus(out.src2Tag, pre+".s2.q")
		p.issued = append(p.issued, q)
	}
}
