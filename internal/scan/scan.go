// Package scan models conventional scan-chain design-for-test (DFT) as
// described in Section 2 of the Rescue paper: every flip-flop is replaced by
// a multiplexed-flip-flop scan cell, all cells are stitched into shift
// registers, and testing proceeds as scan-in → one functional capture cycle
// → scan-out.
//
// The package works on top of netlist.Netlist. Rather than physically
// rewriting the netlist with scan muxes (which would pollute the fault
// universe with DFT gates the paper counts as chipkill), a Chain keeps the
// stitching order and provides shift/capture semantics over a
// netlist.State. This matches the paper's accounting: scan-cell area is
// charged as chipkill, and ATPG treats FF Qs as pseudo-primary inputs and
// FF Ds as pseudo-primary outputs.
package scan

import (
	"fmt"

	"rescue/internal/netlist"
)

// Chain is an ordered set of scan cells covering every FF of a netlist.
// Cells are split across NumChains physical chains of balanced length, as
// real testers drive several chains in parallel; cycle accounting uses the
// longest chain.
type Chain struct {
	N         *netlist.Netlist
	Order     []netlist.FFID // scan stitch order: Order[0] is nearest scan-in
	NumChains int
}

// Insert builds a scan chain over all FFs of n, stitched in FF creation
// order (the order a DFT tool would get from the synthesized netlist), and
// balanced across numChains physical chains.
func Insert(n *netlist.Netlist, numChains int) (*Chain, error) {
	if numChains < 1 {
		return nil, fmt.Errorf("scan: numChains must be >= 1, got %d", numChains)
	}
	if n.NumFFs() == 0 {
		return nil, fmt.Errorf("scan: netlist %s has no flip-flops", n.Name)
	}
	order := make([]netlist.FFID, n.NumFFs())
	for i := range order {
		order[i] = netlist.FFID(i)
	}
	return &Chain{N: n, Order: order, NumChains: numChains}, nil
}

// Cells reports the total number of scan cells.
func (c *Chain) Cells() int { return len(c.Order) }

// ChainLength reports the length of the longest physical chain — the number
// of shift cycles needed for a full scan-in or scan-out.
func (c *Chain) ChainLength() int {
	return (len(c.Order) + c.NumChains - 1) / c.NumChains
}

// Pattern is a single scan test: the state to load into every scan cell
// (indexed by FFID), and values for the primary inputs, all 64-lane words
// so 64 patterns pack into one Pattern... but by convention a Pattern holds
// exactly the lanes its producer filled; Lanes records how many are valid.
type Pattern struct {
	FFVals []uint64 // per-FF 64-lane scan-in words
	PIVals []uint64 // per-primary-input 64-lane words
	Lanes  int      // number of valid lanes (1..64)
}

// NewPattern allocates an all-zero pattern for the chain's netlist.
func (c *Chain) NewPattern(lanes int) *Pattern {
	return &Pattern{
		FFVals: make([]uint64, c.N.NumFFs()),
		PIVals: make([]uint64, len(c.N.Inputs)),
		Lanes:  lanes,
	}
}

// LaneMask returns a word with the pattern's valid lanes set.
func (p *Pattern) LaneMask() uint64 {
	if p.Lanes >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(p.Lanes)) - 1
}

// Load applies a pattern to a state as the end product of scan-in: every FF
// Q takes its scan word and every primary input is driven.
func (c *Chain) Load(s *netlist.State, p *Pattern) {
	for fi := 0; fi < c.N.NumFFs(); fi++ {
		s.Set(c.N.FFs[fi].Q, p.FFVals[fi])
	}
	for i, in := range c.N.Inputs {
		s.Set(in, p.PIVals[i])
	}
}

// Capture runs the single functional capture cycle of a scan test with
// fault f injected (netlist.NoFault for the good machine) and returns the
// observed response: the post-capture FF contents (what scan-out shifts
// out) followed by the primary-output values, one 64-lane word per
// observation point, indexed identically to netlist.ObsPoints.
func (c *Chain) Capture(s *netlist.State, f netlist.Fault) []uint64 {
	s.EvalComb(f)
	resp := make([]uint64, c.N.NumFFs()+len(c.N.Outputs))
	for oi, out := range c.N.Outputs {
		resp[c.N.NumFFs()+oi] = s.Get(out)
	}
	s.CaptureFFs(f)
	for fi := 0; fi < c.N.NumFFs(); fi++ {
		resp[fi] = s.Get(c.N.FFs[fi].Q)
	}
	return resp
}

// ApplyTest performs a complete scan test of one pattern: load, capture,
// and returns the response words.
func (c *Chain) ApplyTest(p *Pattern, f netlist.Fault) []uint64 {
	s := c.N.NewState()
	c.Load(s, p)
	return c.Capture(s, f)
}

// ShiftRegisterModel simulates the physical shift operation bit by bit for
// a single lane, returning the bit sequence observed at the scan-out pin of
// chain 0 while scanning out (oldest first). It exists to validate that the
// abstract Load/Capture semantics equal real shifting; heavy lifting uses
// Load/Capture directly.
func (c *Chain) ShiftRegisterModel(ffBits []bool) []bool {
	cells := c.chainCells(0)
	// contents indexed along the chain; scan-out emits the cell nearest the
	// scan-out pin first, i.e. the LAST cell in stitch order.
	contents := make([]bool, len(cells))
	for i, ff := range cells {
		contents[i] = ffBits[ff]
	}
	out := make([]bool, 0, len(cells))
	for shift := 0; shift < len(cells); shift++ {
		out = append(out, contents[len(contents)-1])
		copy(contents[1:], contents[:len(contents)-1])
		contents[0] = false
	}
	return out
}

// chainCells returns the FFs assigned to physical chain k, in stitch order.
func (c *Chain) chainCells(k int) []netlist.FFID {
	var out []netlist.FFID
	for i, ff := range c.Order {
		if i%c.NumChains == k {
			out = append(out, ff)
		}
	}
	return out
}

// TestCycles reports the tester cycle count for applying nvec scan vectors:
// scan-in/scan-out overlap in steady state, so the cost is
// (nvec+1)*chainLength + nvec capture cycles. This is the quantity Table 3
// of the paper reports as "cycles".
func (c *Chain) TestCycles(nvec int) int {
	return (nvec+1)*c.ChainLength() + nvec
}

// BitComp maps each observation-point index (FF scan bits, then primary
// outputs) to the set of ICI components whose logic feeds it within the
// capture cycle. For an ICI-compliant design every entry has length <= 1
// after super-component grouping; the map is the paper's "single lookup"
// table from failing scan-chain bit index to faulty component.
func (c *Chain) BitComp() [][]netlist.CompID {
	return c.N.FanInComps()
}
