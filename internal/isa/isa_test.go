package isa

import "testing"

func TestClassPredicates(t *testing.T) {
	if !FPAdd.IsFP() || !FPMul.IsFP() || !FPDiv.IsFP() {
		t.Fatal("FP classes")
	}
	if IntALU.IsFP() || Load.IsFP() || Branch.IsFP() {
		t.Fatal("non-FP classes")
	}
	if !Load.IsMem() || !Store.IsMem() || IntALU.IsMem() {
		t.Fatal("mem classes")
	}
}

func TestLatencies(t *testing.T) {
	if IntALU.Latency() != 1 || Branch.Latency() != 1 {
		t.Fatal("single-cycle classes")
	}
	if !(IntDiv.Latency() > IntMul.Latency() && IntMul.Latency() > IntALU.Latency()) {
		t.Fatal("int latency ordering")
	}
	if !(FPDiv.Latency() > FPMul.Latency() && FPMul.Latency() > FPAdd.Latency()) {
		t.Fatal("fp latency ordering")
	}
}

func TestNextPC(t *testing.T) {
	i := Inst{PC: 0x100, Class: IntALU}
	if i.NextPC() != 0x108 {
		t.Fatalf("sequential next = %x", i.NextPC())
	}
	b := Inst{PC: 0x100, Class: Branch, Taken: true, Target: 0x400}
	if b.NextPC() != 0x400 {
		t.Fatalf("taken next = %x", b.NextPC())
	}
	b.Taken = false
	if b.NextPC() != 0x108 {
		t.Fatalf("not-taken next = %x", b.NextPC())
	}
}

func TestClassStrings(t *testing.T) {
	if IntALU.String() != "IntALU" || FPDiv.String() != "FPDiv" {
		t.Fatal("class names")
	}
	if Class(200).String() == "" {
		t.Fatal("unknown class must still format")
	}
}
