package bist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCleanRAMPasses(t *testing.T) {
	m, err := NewFaultyRAM(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	res := MarchCMinus(m)
	if !res.Pass || len(res.FaultyRows) != 0 {
		t.Fatalf("clean RAM failed: %+v", res)
	}
	// March C-: 10n operations for n words
	if res.Operations != 10*64 {
		t.Fatalf("operations = %d, want %d", res.Operations, 640)
	}
}

func TestStuckAtDetected(t *testing.T) {
	for _, one := range []bool{false, true} {
		m, _ := NewFaultyRAM(32, 6)
		if err := m.StuckAt(13, 2, one); err != nil {
			t.Fatal(err)
		}
		res := MarchCMinus(m)
		if res.Pass {
			t.Fatalf("stuck-at-%v undetected", one)
		}
		if len(res.FaultyRows) != 1 || res.FaultyRows[0] != 13 {
			t.Fatalf("faulty rows = %v, want [13]", res.FaultyRows)
		}
	}
}

func TestStuckAtErrors(t *testing.T) {
	m, _ := NewFaultyRAM(8, 4)
	if err := m.StuckAt(8, 0, true); err == nil {
		t.Fatal("row out of range must error")
	}
	if err := m.StuckAt(0, 4, true); err == nil {
		t.Fatal("bit out of range must error")
	}
	if _, err := NewFaultyRAM(0, 4); err == nil {
		t.Fatal("empty RAM must error")
	}
	if _, err := NewFaultyRAM(4, 65); err == nil {
		t.Fatal("over-wide RAM must error")
	}
}

// Property: March C- detects every single stuck-at fault, and reports
// exactly the injected rows for any multi-fault pattern.
func TestMarchDetectsAllStuckAtsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, _ := NewFaultyRAM(16, 5)
		want := map[int]bool{}
		for k := 0; k < 1+r.Intn(4); k++ {
			row := r.Intn(16)
			_ = m.StuckAt(row, r.Intn(5), r.Intn(2) == 0)
			want[row] = true
		}
		res := MarchCMinus(m)
		if res.Pass {
			return false
		}
		if len(res.FaultyRows) != len(want) {
			return false
		}
		for _, row := range res.FaultyRows {
			if !want[row] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRepairableRAM(t *testing.T) {
	m, _ := NewFaultyRAM(32, 8)
	m.StuckAt(3, 1, true)
	m.StuckAt(17, 7, false)
	r := NewRepairable(m, 4)
	res, ok := r.Repair()
	if res.Pass {
		t.Fatal("faults should be found")
	}
	if !ok {
		t.Fatal("4 spares must cover 2 faulty rows")
	}
	// repaired rows must now behave
	r.Write(3, 0x00)
	if got := r.Read(3); got != 0 {
		t.Fatalf("repaired row reads %x", got)
	}
	r.Write(17, 0xff)
	if got := r.Read(17); got != 0xff {
		t.Fatalf("repaired row reads %x", got)
	}
	// a second BIST pass over the repaired array must pass
	res2 := MarchCMinus(r)
	if !res2.Pass {
		t.Fatalf("post-repair BIST failed: %v", res2.FaultyRows)
	}
}

func TestRepairExhaustsSpares(t *testing.T) {
	m, _ := NewFaultyRAM(32, 8)
	for i := 0; i < 5; i++ {
		m.StuckAt(i, 0, true)
	}
	r := NewRepairable(m, 2)
	_, ok := r.Repair()
	if ok {
		t.Fatal("2 spares cannot cover 5 faulty rows")
	}
}

// TestRenameTableScenario mirrors the paper's Section 4.4 story: a rename
// map table (16 rows x 5 bits, as in the generated netlist) is tested by
// BIST independently of the scan flow; a faulty copy is detected and the
// frontend group using it is mapped out.
func TestRenameTableScenario(t *testing.T) {
	copy0, _ := NewFaultyRAM(16, 5)
	copy1, _ := NewFaultyRAM(16, 5)
	copy1.StuckAt(9, 3, true)
	if !MarchCMinus(copy0).Pass {
		t.Fatal("healthy copy must pass")
	}
	res := MarchCMinus(copy1)
	if res.Pass {
		t.Fatal("faulty copy must fail BIST")
	}
	// the faulty copy's frontend group gets fault-mapped; the healthy one
	// keeps the core alive at half frontend width — see core.MapOut("FE1")
}
