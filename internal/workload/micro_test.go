package workload

import (
	"testing"

	"rescue/internal/isa"
)

func TestMicroByName(t *testing.T) {
	if _, ok := MicroByName("chase"); !ok {
		t.Fatal("chase missing")
	}
	if _, ok := MicroByName("nope"); ok {
		t.Fatal("bogus name found")
	}
	if len(Microbenchmarks()) < 5 {
		t.Fatal("expected at least 5 microbenchmarks")
	}
}

// Each micro kernel must actually exhibit its designed signature.
func TestMicroSignatures(t *testing.T) {
	classCount := func(name string, n int) map[isa.Class]int {
		p, ok := MicroByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		g := New(p)
		counts := map[isa.Class]int{}
		for i := 0; i < n; i++ {
			counts[g.Next().Class]++
		}
		return counts
	}
	const n = 50000

	// chase: load-dominated
	c := classCount("chase", n)
	if c[isa.Load] < n/4 {
		t.Errorf("chase loads = %d of %d", c[isa.Load], n)
	}
	// torture: branch-dominated
	c = classCount("torture", n)
	if c[isa.Branch] < n/8 {
		t.Errorf("torture branches = %d of %d", c[isa.Branch], n)
	}
	// alu: almost no memory
	c = classCount("alu", n)
	if c[isa.Load]+c[isa.Store] > n/10 {
		t.Errorf("alu memory ops = %d of %d", c[isa.Load]+c[isa.Store], n)
	}
	// torture branches are mostly unpredictable: measure actual taken
	// randomness via alternation entropy proxy
	p, _ := MicroByName("torture")
	g := New(p)
	taken, total := 0, 0
	for i := 0; i < n; i++ {
		in := g.Next()
		if in.Class == isa.Branch {
			total++
			if in.Taken {
				taken++
			}
		}
	}
	frac := float64(taken) / float64(total)
	if frac < 0.15 || frac > 0.85 {
		t.Errorf("torture taken fraction %.2f not mixed", frac)
	}
}
