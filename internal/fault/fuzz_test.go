package fault

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"rescue/internal/netlist"
	"rescue/internal/scan"
)

// validJournal runs a small checkpointed campaign and returns the flushed
// journal bytes — a structurally complete specimen for the fuzzer to
// mutate. The circuit and pattern are deliberately tiny: large corpus
// entries make the fuzz engine spend its whole budget minimizing instead
// of exploring.
func validJournal(tb testing.TB) []byte {
	tb.Helper()
	n := netlist.New("specimen")
	a := n.Input("a")
	b := n.Input("b")
	q := n.AddFF(n.And(a, b), "q")
	n.Output(n.Or(q, a), "po")
	if err := n.Validate(); err != nil {
		tb.Fatal(err)
	}
	c, _ := scan.Insert(n, 1)
	p := c.NewPattern(4)
	p.PIVals[0] = 0x5
	p.PIVals[1] = 0x3
	sim := NewSim(c, []*scan.Pattern{p})
	path := filepath.Join(tb.TempDir(), "journal.ck")
	ck := NewCheckpoint(path)
	camp := NewCampaign(sim, CampaignConfig{Workers: 1})
	if _, _, err := camp.RunCheckpoint(context.Background(), ck, NewUniverse(n).Collapsed); err != nil {
		tb.Fatal(err)
	}
	if err := ck.Flush(); err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzCheckpointRead feeds arbitrary (typically mutated-journal) bytes to
// the checkpoint decoder. The decoder must never panic; it either rejects
// the input with an error or accepts a journal whose sections are
// internally consistent — restore and normalize must be safe to call and
// every rehydrated count must stay within the section's declared fault
// count.
func FuzzCheckpointRead(f *testing.F) {
	f.Add(validJournal(f))
	f.Add([]byte(""))
	f.Add([]byte("{\"v\":1,\"kind\":\"rescue-campaign-checkpoint\"}\n"))
	f.Add([]byte("{\"section\":0,\"id\":{}}\n"))
	f.Add([]byte("not json at all\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		ck := NewCheckpoint("")
		if err := ck.read(bytes.NewReader(data)); err != nil {
			return // rejected: fine, as long as it did not panic
		}
		if len(ck.sections) == 0 {
			t.Fatal("read accepted a journal with no sections")
		}
		for si, s := range ck.sections {
			if s.id.NFaults < 0 {
				t.Fatalf("section %d: accepted negative fault count %d", si, s.id.NFaults)
			}
			// A mutated journal may declare an absurd fault count with no
			// ranges behind it; restore guards i < len(out), so a capped
			// buffer exercises the same code without an unbounded alloc.
			size := s.id.NFaults
			if size > 1<<16 {
				size = 1 << 16
			}
			out := make([]Result, size)
			done, rehydrated := s.restore(out)
			if rehydrated < 0 || rehydrated > int64(len(out)) {
				t.Fatalf("section %d: rehydrated %d of %d faults", si, rehydrated, len(out))
			}
			if done != nil && len(done) != len(out) {
				t.Fatalf("section %d: done bitmap length %d, want %d", si, len(done), len(out))
			}
			s.normalize()
		}
	})
}

// TestCheckpointReadRejectsMutations pins a handful of specific journal
// corruptions that the decoder must reject with an error (not accept, not
// panic): flipped digest, truncated results, out-of-order sections, range
// beyond the declared fault count, and a missing header.
func TestCheckpointReadRejectsMutations(t *testing.T) {
	valid := validJournal(t)
	if err := NewCheckpoint("").read(bytes.NewReader(valid)); err != nil {
		t.Fatalf("specimen journal does not load: %v", err)
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"digest flip", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"digest":"`), []byte(`"digest":"f`), 1)
		}},
		{"truncated tail", func(b []byte) []byte { return b[:len(b)-len(b)/3] }},
		{"header dropped", func(b []byte) []byte {
			i := bytes.IndexByte(b, '\n')
			return b[i+1:]
		}},
		{"section renumbered", func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"section":0`), []byte(`"section":7`), 1)
		}},
		{"garbage line", func(b []byte) []byte {
			return append(append([]byte{}, b...), []byte("}{nonsense\n")...)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := tc.mutate(append([]byte(nil), valid...))
			if bytes.Equal(mut, valid) {
				t.Fatal("mutation did not change the journal — test is vacuous")
			}
			if err := NewCheckpoint("").read(bytes.NewReader(mut)); err == nil {
				t.Fatal("decoder accepted a corrupted journal")
			}
		})
	}
}

// TestValidJournalHasRangeLines guards the fuzz specimen itself: it must
// contain at least one results range, or the corpus seeds nothing useful.
func TestValidJournalHasRangeLines(t *testing.T) {
	if !bytes.Contains(validJournal(t), []byte(`"results"`)) {
		t.Fatal("specimen journal has no results lines")
	}
}
