// Fab-line triage: the complete test floor for a batch of Rescue chips.
//
// Each incoming die goes through the flow the paper's Section 4 describes
// (with the related-work extensions this repo adds):
//
//  1. BIST (March C-) tests the RAM-like structures — rename-table copies
//     here — independently of the logic (Section 4.4: cycle splitting
//     keeps logic testable even with faulty tables);
//
//  2. conventional scan/ATPG patterns test the core logic, and failing
//     scan bits isolate faults to super-components by a single lookup;
//
//  3. self-healing arrays absorb BTB entry defects at run time;
//
//  4. the fault-map register is programmed (MapOut) and the die is binned
//     by the salvaged configuration's simulated throughput.
//
//     go run ./examples/fabline
package main

import (
	"fmt"
	"log"
	"math/rand"

	"rescue/internal/atpg"
	"rescue/internal/bist"
	"rescue/internal/core"
	"rescue/internal/netlist"
	"rescue/internal/rtl"
	"rescue/internal/uarch"
	"rescue/internal/workload"
)

const dies = 12

func main() {
	sys, err := core.Build(rtl.Small(), rtl.RescueDesign)
	if err != nil {
		log.Fatal(err)
	}
	tp := sys.GenerateTests(atpg.DefaultGenConfig())
	fmt.Printf("test program ready: %d vectors, %.1f%% coverage\n\n",
		tp.Gen.Vectors, tp.Gen.Coverage*100)
	prof, err := workload.ByName("gzip")
	if err != nil {
		log.Fatal(err)
	}

	rng := rand.New(rand.NewSource(2005))
	fmt.Printf("%-5s %-34s %-22s %s\n", "die", "defects", "disposition", "bin")
	shipped, scrapped := 0, 0
	for die := 0; die < dies; die++ {
		var defects []string
		var supers []string
		chipkill := false

		// --- random defect mix for this die ---
		// logic defect with p=0.5
		if rng.Intn(2) == 0 {
			for tries := 0; tries < 50; tries++ {
				f := tp.Universe.Collapsed[rng.Intn(len(tp.Universe.Collapsed))]
				if f.Gate < 0 {
					continue
				}
				res := tp.Gen.Sim.Run(f, 0)
				if !res.Detected {
					continue
				}
				super, err := sys.Audit.Isolate(res.FailObs)
				if err != nil {
					chipkill = true
					defects = append(defects, "logic(ambiguous)")
					break
				}
				defects = append(defects, "logic->"+super)
				if super == "CHIPKILL" {
					chipkill = true
				} else {
					supers = append(supers, super)
				}
				break
			}
		}
		// rename-table defect with p=1/3: BIST finds it, kill that group
		if rng.Intn(3) == 0 {
			table, _ := bist.NewFaultyRAM(16, 5)
			table.StuckAt(rng.Intn(16), rng.Intn(5), rng.Intn(2) == 0)
			if res := bist.MarchCMinus(table); !res.Pass {
				grp := fmt.Sprintf("FE%d", rng.Intn(2))
				defects = append(defects, "table(BIST)->"+grp)
				supers = append(supers, grp)
			}
		}
		// BTB entry defects with p=1/3: self-healing absorbs them
		btbFrac := 0.0
		if rng.Intn(3) == 0 {
			btbFrac = 0.05
			defects = append(defects, "btb(self-healed)")
		}

		// --- disposition ---
		if chipkill {
			fmt.Printf("%-5d %-34s %-22s %s\n", die, list(defects), "scrap (chipkill)", "-")
			scrapped++
			continue
		}
		degr, err := core.MapOut(supers)
		if err != nil {
			fmt.Printf("%-5d %-34s %-22s %s\n", die, list(defects), "scrap ("+err.Error()+")", "-")
			scrapped++
			continue
		}
		p := uarch.RescueParams()
		p.Degr = degr
		p.BTBFaultFrac = btbFrac
		sim, err := uarch.New(p, prof)
		if err != nil {
			log.Fatal(err)
		}
		ipc := sim.Run(5_000, 40_000).IPC()
		disposition := "ship degraded"
		if len(defects) == 0 {
			disposition = "ship (clean)"
		}
		fmt.Printf("%-5d %-34s %-22s %.2f IPC\n", die, list(defects), disposition, ipc)
		shipped++
	}
	fmt.Printf("\nshipped %d/%d dies; core sparing would have scrapped every defective one\n",
		shipped, dies)
	_ = netlist.NoFault
}

func list(xs []string) string {
	if len(xs) == 0 {
		return "none"
	}
	out := xs[0]
	for _, x := range xs[1:] {
		out += "," + x
	}
	return out
}
