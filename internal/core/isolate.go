package core

import (
	"math/rand"
	"sort"

	"rescue/internal/netlist"
)

// IsolationReport is the outcome of the Section 6.1 campaign: randomly
// chosen faults per pipeline stage, each simulated against the generated
// scan patterns; its failing scan bits are mapped through the single-lookup
// isolation table and checked against the ground-truth fault site.
type IsolationReport struct {
	Requested  int
	Undetected int // sampled faults no pattern detects (excluded, resampled)
	Isolated   int // failing bits implicate exactly the faulty super-component
	Wrong      int // implicated super differs from the ground truth
	Ambiguous  int // failing bits span multiple super-components
	PerStage   map[string]StageIsolation
}

// StageIsolation is the per-stage breakdown.
type StageIsolation struct {
	Sampled, Isolated, Wrong, Ambiguous int
}

// Stages returns the six stages the paper samples (register read,
// writeback and commit are excluded: no significant logic beyond RAM
// tables).
func Stages() []string {
	return []string{"fetch", "decode", "rename", "issue", "execute", "memory"}
}

// IsolateCampaign samples perStage detectable gate faults from each listed
// stage (FF faults are scan cells — chipkill by construction — and chipkill
// components are excluded), runs full fault simulation for each, and
// verifies isolation. It mirrors the paper's 6000-fault TetraMax campaign.
func (s *System) IsolateCampaign(tp *TestProgram, perStage int, stages []string, seed int64) IsolationReport {
	rng := rand.New(rand.NewSource(seed))
	n := s.Design.N
	rep := IsolationReport{PerStage: map[string]StageIsolation{}}

	// candidate faults per stage: gate faults in non-chipkill components
	byStage := map[string][]netlist.Fault{}
	for _, f := range tp.Universe.Collapsed {
		if f.Gate < 0 {
			continue
		}
		comp := n.CompName(n.FaultSiteComp(f))
		super := s.Design.Grouping[comp]
		if super == "CHIPKILL" {
			continue
		}
		stage := s.Design.StageOfComp[comp]
		byStage[stage] = append(byStage[stage], f)
	}

	sim := tp.Gen.Sim
	for _, stage := range stages {
		cands := byStage[stage]
		if len(cands) == 0 {
			continue
		}
		st := rep.PerStage[stage]
		// sample without replacement
		perm := rng.Perm(len(cands))
		taken := 0
		for _, idx := range perm {
			if taken >= perStage {
				break
			}
			f := cands[idx]
			res := sim.Run(f, 0)
			rep.Requested++
			if !res.Detected {
				rep.Undetected++
				continue // resample: the paper inserts detectable faults
			}
			taken++
			st.Sampled++
			supers := s.Audit.IsolateEach(res.FailObs)
			truth := s.Design.Grouping[n.CompName(n.FaultSiteComp(f))]
			switch {
			case len(supers) == 1 && supers[0] == truth:
				rep.Isolated++
				st.Isolated++
			case len(supers) == 1:
				rep.Wrong++
				st.Wrong++
			default:
				rep.Ambiguous++
				st.Ambiguous++
			}
		}
		rep.PerStage[stage] = st
	}
	return rep
}

// MultiFaultIsolation exercises the ICI corollary of Section 3.1: faults
// injected simultaneously into nFaults DIFFERENT super-components must all
// be isolated by the same pattern set. It returns the number of trials in
// which every implicated super-component matched a ground-truth faulty one
// and every faulty super with a detectable fault was implicated.
//
// Simultaneous injection is simulated by unioning each fault's failing
// bits — valid under ICI because a fault in one component cannot influence
// observation points of another (their cones are disjoint by audit).
func (s *System) MultiFaultIsolation(tp *TestProgram, trials, nFaults int, seed int64) (ok, total int) {
	rng := rand.New(rand.NewSource(seed))
	n := s.Design.N
	var cands []netlist.Fault
	for _, f := range tp.Universe.Collapsed {
		if f.Gate < 0 {
			continue
		}
		comp := n.CompName(n.FaultSiteComp(f))
		if s.Design.Grouping[comp] == "CHIPKILL" {
			continue
		}
		cands = append(cands, f)
	}
	sim := tp.Gen.Sim
	for t := 0; t < trials; t++ {
		total++
		// pick nFaults faults in distinct supers
		chosen := map[string]netlist.Fault{}
		for tries := 0; tries < 200 && len(chosen) < nFaults; tries++ {
			f := cands[rng.Intn(len(cands))]
			super := s.Design.Grouping[n.CompName(n.FaultSiteComp(f))]
			if _, dup := chosen[super]; !dup {
				chosen[super] = f
			}
		}
		var allObs []int
		truth := map[string]bool{}
		detected := map[string]bool{}
		for super, f := range chosen {
			truth[super] = true
			res := sim.Run(f, 0)
			if res.Detected {
				detected[super] = true
				allObs = append(allObs, res.FailObs...)
			}
		}
		supers := s.Audit.IsolateEach(allObs)
		good := len(supers) == len(detected)
		for _, sp := range supers {
			if !truth[sp] {
				good = false
			}
		}
		if good && len(detected) > 0 {
			ok++
		}
	}
	return ok, total
}

// StageNames lists stages present in the design, sorted (debug helper).
func (s *System) StageNames() []string {
	set := map[string]bool{}
	for _, st := range s.Design.StageOfComp {
		set[st] = true
	}
	out := make([]string, 0, len(set))
	for st := range set {
		out = append(out, st)
	}
	sort.Strings(out)
	return out
}
