// Command rescue-isolate reproduces the paper's Section 6.1 fault-
// isolation campaign: N random detectable faults per pipeline stage
// (fetch, decode, rename, issue, execute, memory) are injected into the
// Rescue netlist one at a time; each fault's failing scan bits are mapped
// through the single-lookup isolation table; the implicated super-component
// is checked against the ground-truth fault site. The paper's result: all
// 6000 faults isolate correctly.
//
// Usage:
//
//	rescue-isolate [-small] [-per-stage N] [-seed N] [-multi] [-workers N] [-timing=false]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rescue/internal/atpg"
	"rescue/internal/core"
	"rescue/internal/rtl"
)

func main() {
	small := flag.Bool("small", false, "use the reduced configuration (2-way)")
	perStage := flag.Int("per-stage", 1000, "faults to sample per stage (paper: 1000)")
	seed := flag.Int64("seed", 2005, "sampling seed")
	multi := flag.Bool("multi", false, "also run the multi-fault isolation corollary")
	workers := flag.Int("workers", 0, "fault-simulation workers (0 = all cores)")
	timing := flag.Bool("timing", true, "print wall-clock timings (disable for golden diffs)")
	flag.Parse()

	cfg := rtl.Default()
	if *small {
		cfg = rtl.Small()
	}
	start := time.Now()
	s, err := core.Build(cfg, rtl.RescueDesign)
	if err != nil {
		fmt.Fprintln(os.Stderr, "build:", err)
		os.Exit(1)
	}
	if !s.Audit.OK() {
		fmt.Fprintf(os.Stderr, "ICI audit failed: %d violations\n", len(s.Audit.Violations))
		os.Exit(1)
	}
	fmt.Printf("built %s: %d gates, %d scan cells; ICI audit clean\n",
		s.Design.N.Name, s.Design.N.NumGates(), s.Design.N.NumFFs())

	gen := atpg.DefaultGenConfig()
	gen.Workers = *workers
	tp := s.GenerateTests(gen)
	if *timing {
		fmt.Printf("ATPG: %d vectors, %.2f%% coverage (%s)\n",
			tp.Gen.Vectors, tp.Gen.Coverage*100, time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Printf("ATPG: %d vectors, %.2f%% coverage\n", tp.Gen.Vectors, tp.Gen.Coverage*100)
	}

	rep := s.IsolateCampaign(tp, *perStage, core.Stages(), *seed, *workers)
	fmt.Println()
	fmt.Printf("%-10s %9s %9s %7s %10s\n", "stage", "sampled", "isolated", "wrong", "ambiguous")
	for _, st := range core.Stages() {
		r := rep.PerStage[st]
		fmt.Printf("%-10s %9d %9d %7d %10d\n", st, r.Sampled, r.Isolated, r.Wrong, r.Ambiguous)
	}
	total := rep.Isolated + rep.Wrong + rep.Ambiguous
	fmt.Println()
	fmt.Printf("TOTAL: %d faults simulated, %d isolated correctly, %d wrong, %d ambiguous\n",
		total, rep.Isolated, rep.Wrong, rep.Ambiguous)
	fmt.Printf("(paper: 6000/6000 isolated; %d undetectable faults were resampled)\n", rep.Undetected)
	if *timing {
		fmt.Printf("campaign: %d faults, %d word-sims, %d gate events, %d workers, %s\n",
			rep.Stats.Faults, rep.Stats.Words, rep.Stats.Events, rep.Stats.Workers,
			rep.Stats.Wall.Round(time.Millisecond))
	}

	if *multi {
		ok, trials := s.MultiFaultIsolation(tp, 200, 3, *seed, *workers)
		fmt.Printf("multi-fault corollary: %d/%d trials — all simultaneous faults in\n", ok, trials)
		fmt.Println("distinct super-components isolated by one pattern set")
	}
	if rep.Wrong+rep.Ambiguous > 0 {
		os.Exit(1)
	}
}
