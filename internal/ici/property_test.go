package ici

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDag builds a random layered component graph with sources, logic
// and latches.
func randomDag(seed int64) *Graph {
	r := rand.New(rand.NewSource(seed))
	g := NewGraph()
	var prev []NodeID
	for i := 0; i < 3; i++ {
		prev = append(prev, g.Add("src", Source))
	}
	for layer := 0; layer < 4; layer++ {
		var cur []NodeID
		for i := 0; i < 2+r.Intn(4); i++ {
			kind := Logic
			if r.Intn(3) == 0 {
				kind = Latch
			}
			n := g.Add("n", kind)
			// connect to 1-3 random earlier nodes
			for c := 0; c < 1+r.Intn(3); c++ {
				g.Connect(prev[r.Intn(len(prev))], n)
			}
			cur = append(cur, n)
		}
		prev = append(prev, cur...)
	}
	for i := 0; i < 2; i++ {
		sink := g.Add("out", Sink)
		g.Connect(prev[len(prev)-1-i], sink)
	}
	return g
}

// Property: after cycle-splitting every violation, the graph satisfies ICI
// with singleton super-components.
func TestCycleSplitAlwaysRepairsProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDag(seed % 10000)
		for _, v := range g.Violations() {
			if _, err := g.CycleSplit(v.From, v.To); err != nil {
				return false
			}
		}
		return g.CheckICI() && len(g.Violations()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: super-components partition the logic nodes (every logic node
// in exactly one group).
func TestSuperComponentsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDag(seed % 10000)
		seen := map[NodeID]int{}
		for _, grp := range g.SuperComponents() {
			for _, n := range grp {
				seen[n]++
				if g.Nodes[n].Kind != Logic {
					return false
				}
			}
		}
		logicCount := 0
		for i, n := range g.Nodes {
			if n.Kind == Logic {
				logicCount++
				if seen[NodeID(i)] != 1 {
					return false
				}
			}
		}
		return len(seen) == logicCount
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: full privatization of a violating producer leaves every copy
// (original included) with exactly its assigned single consumer, and the
// partition property still holds. (Privatization does NOT always shrink
// super-components — copies inherit the producer's own logic inputs, which
// is why the paper pairs it with cycle splitting or dependence rotation.)
func TestPrivatizeStructureProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDag(seed % 10000)
		vs := g.Violations()
		if len(vs) == 0 {
			return true
		}
		prod := vs[0].From
		consumers := append([]NodeID(nil), g.Succs(prod)...)
		var groups [][]NodeID
		for _, c := range consumers {
			groups = append(groups, []NodeID{c})
		}
		copies, err := g.Privatize(prod, groups)
		if err != nil {
			return false
		}
		if len(copies) != len(consumers)-1 {
			return false
		}
		all := append([]NodeID{prod}, copies...)
		for _, n := range all {
			if len(g.Succs(n)) != 1 {
				return false
			}
		}
		// partition property still holds
		seen := map[NodeID]bool{}
		for _, grp := range g.SuperComponents() {
			for _, n := range grp {
				if seen[n] {
					return false
				}
				seen[n] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
