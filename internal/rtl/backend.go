package rtl

import (
	"fmt"

	"rescue/internal/netlist"
)

// buildRegRead models the register-read stage (Section 4.5): the register
// file uses multiple reduced-port copies (as in the Alpha 21264); each copy
// is an independent logic block obeying ICI — specifiers come from the
// issue latch, data goes straight to the output latch. Rescue and baseline
// share the structure (the baseline 21264-style file already has copies);
// what differs is only the map-out ability, which lives in the fault map.
func (p *pipe) buildRegRead() {
	cfg := p.cfg
	regs := 1 << uint(cfg.TagW)

	// writeback ports into the register file copies are declared here as
	// placeholder buses and driven by buildWriteback.
	p.wbTag = make([]Bus, cfg.Ways)
	p.wbOut = make([]Bus, cfg.Ways)
	wbEn := make([]netlist.NetID, cfg.Ways)
	p.comp("be0.rfwb", "writeback")
	for k := 0; k < cfg.Ways; k++ {
		if k == cfg.Ways/2 {
			p.comp("be1.rfwb", "writeback")
		}
		pre := fmt.Sprintf("rf.wb%d", k)
		wbEn[k] = p.ffHole(pre + ".en")
		p.wbTag[k] = p.ffHoleBus(pre+".tag", cfg.TagW)
		p.wbOut[k] = p.ffHoleBus(pre+".data", cfg.DataW)
	}
	p.wbVal = wbEn

	for g := 0; g < cfg.Ways/2; g++ {
		comp := fmt.Sprintf("be%d.rf", g)
		p.comp(comp, "regread")
		// storage
		rows := make([]Bus, regs)
		for r := 0; r < regs; r++ {
			rows[r] = p.ffHoleBus(fmt.Sprintf("%s.r%d", comp, r), cfg.DataW)
		}
		// write ports: every backend way writes every copy (a faulty way's
		// port is disabled by the fault map — Section 4.8)
		for r := 0; r < regs; r++ {
			next := rows[r].hold()
			for k := 0; k < cfg.Ways; k++ {
				en := p.n.And(wbEn[k], p.eqConst(p.wbTag[k], r))
				if p.rescue {
					en = p.n.And(en, p.n.Not(p.fmapBE[k]))
				}
				next = p.muxBus(en, next, p.wbOut[k])
			}
			p.driveBus(rows[r], next)
		}
		// read ports for this copy's two backend ways
		for j := 0; j < 2; j++ {
			k := 2*g + j
			v1 := p.muxTree(p.issued[k].src1Tag, rows)
			v2 := p.muxTree(p.issued[k].src2Tag, rows)
			p.rrOut = append(p.rrOut, p.regBus(v1, fmt.Sprintf("rr.i%d.v1", k)))
			p.rrOut2 = append(p.rrOut2, p.regBus(v2, fmt.Sprintf("rr.i%d.v2", k)))
		}
	}
}

// hold returns the bus itself (named for readability at write-port chains).
func (v Bus) hold() Bus { return v }

// eqConst compares a bus against a constant without burning const gates
// per bit: bits that must be 0 are inverted into the AND tree.
func (p *pipe) eqConst(v Bus, c int) netlist.NetID {
	terms := make([]netlist.NetID, len(v))
	for i := range v {
		if c&(1<<uint(i)) != 0 {
			terms[i] = v[i]
		} else {
			terms[i] = p.n.Not(v[i])
		}
	}
	return p.reduceAnd(terms)
}

// buildExecute models the execute stage (Section 4.6): per-way ALU with a
// full bypass network. Forwarding reads pipeline latches (inter-cycle, so
// ICI holds); for map-out, forwarding matches from fault-mapped ways are
// masked so fault-free ways never consume faulty data.
func (p *pipe) buildExecute() {
	cfg := p.cfg
	for k := 0; k < cfg.Ways; k++ {
		g := k / 2
		p.comp(fmt.Sprintf("be%d.ex%d", g, k), "execute")
		ins := p.issued[k]
		bypass := func(tag Bus, regVal Bus) Bus {
			v := regVal
			for j := 0; j < cfg.Ways; j++ {
				m := p.n.And(p.wbVal[j], p.eq(tag, p.wbTag[j]))
				if p.rescue {
					// mask forwarding from faulty ways (fault-map register)
					m = p.n.And(m, p.n.Not(p.fmapBE[j]))
				}
				v = p.muxBus(m, v, p.wbOut[j])
			}
			return v
		}
		a := bypass(ins.src1Tag, p.rrOut[k])
		c := bypass(ins.src2Tag, p.rrOut2[k])
		// ALU: add, and, xor, pass-b selected by op[1:0]
		sum, _ := p.adder(a, c, p.tie0())
		band := make(Bus, cfg.DataW)
		bxor := make(Bus, cfg.DataW)
		for i := 0; i < cfg.DataW; i++ {
			band[i] = p.n.And(a[i], c[i])
			bxor[i] = p.n.Xor(a[i], c[i])
		}
		r0 := p.muxBus(ins.op[0], sum, band)
		r1 := p.muxBus(ins.op[0], bxor, c)
		res := p.muxBus(ins.op[1], r0, r1)
		pre := fmt.Sprintf("ex.i%d", k)
		p.exOut = append(p.exOut, p.regBus(res, pre+".res"))
		// carry the dest tag and valid alongside (same component)
		p.regBus(ins.destTag, pre+".dest")
		p.n.AddFF(ins.valid, pre+".valid")
	}
}

// buildWriteback models writeback and commit (Sections 4.8, 4.9): the
// execute results move into the writeback latches that drive the register
// file write ports (declared in buildRegRead) and, gated per backend way
// by the fault map, the architectural commit outputs.
func (p *pipe) buildWriteback() {
	cfg := p.cfg
	for k := 0; k < cfg.Ways; k++ {
		g := k / 2
		p.comp(fmt.Sprintf("be%d.wb%d", g, k), "writeback")
		// find the execute latch FFs for way k by recomputing their nets:
		// exOut[k] is the result; dest/valid latches were created alongside
		// and are reachable via the issued latch one cycle earlier. For
		// structural clarity we re-latch into the declared writeback holes.
		p.drive(p.wbVal[k], p.issuedValidDelayed(k))
		p.driveBus(p.wbTag[k], p.issuedDestDelayed(k))
		p.driveBus(p.wbOut[k], p.exOut[k])

		// commit port: results leave the core, disabled for faulty ways
		en := p.n.Not(p.fmapBE[k])
		if !p.rescue {
			en = p.n.Const(true)
		}
		out := p.andBus(en, p.wbOut[k])
		p.outputBus(out, fmt.Sprintf("commit.i%d", k))
		p.n.Output(p.n.And(en, p.wbVal[k]), fmt.Sprintf("commit.i%d.valid", k))
	}
}

// issuedValidDelayed / issuedDestDelayed return the execute-stage copies of
// the issued instruction's valid and dest tag (latched in buildExecute).
func (p *pipe) issuedValidDelayed(k int) netlist.NetID {
	return p.findFF(fmt.Sprintf("ex.i%d.valid", k))
}

func (p *pipe) issuedDestDelayed(k int) Bus {
	out := make(Bus, p.cfg.TagW)
	for i := range out {
		out[i] = p.findFF(fmt.Sprintf("ex.i%d.dest[%d]", k, i))
	}
	return out
}

// findFF looks up a flip-flop by name and returns its Q net.
func (p *pipe) findFF(name string) netlist.NetID {
	for i := range p.n.FFs {
		if p.n.FFs[i].Name == name {
			return p.n.FFs[i].Q
		}
	}
	panic("rtl: FF not found: " + name)
}
