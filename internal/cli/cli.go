// Package cli holds plumbing shared by the rescue commands: flag
// validation with usage-style exits, signal-driven contexts, checkpoint
// opening, and the exit-code convention —
//
//	0    success
//	1    runtime failure (build error, I/O, worker panic)
//	2    usage error (bad flags or arguments)
//	130  interrupted (SIGINT/SIGTERM or chaos budget); in-flight work was
//	     finished and any checkpoint journal flushed before exiting
package cli

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rescue/internal/fault"
)

// Exit codes.
const (
	ExitRuntime     = 1
	ExitUsage       = 2
	ExitInterrupted = 130
)

// Usagef reports a usage error on stderr and exits with code 2.
func Usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "usage error: "+format+"\n", args...)
	os.Exit(ExitUsage)
}

// Fatalf reports a runtime error on stderr and exits with code 1.
func Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(ExitRuntime)
}

// CheckWorkers validates a -workers flag: negative counts are a usage
// error (0 means all cores).
func CheckWorkers(workers int) {
	if workers < 0 {
		Usagef("-workers must be >= 0 (0 = all cores), got %d", workers)
	}
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM. Flows
// observe the cancellation at chunk boundaries: in-flight chunks finish,
// the checkpoint journal (if any) is flushed, and the command exits 130.
// A second signal kills the process the hard way (Go default behavior is
// restored once the context fires).
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// OpenCheckpoint validates and opens the -checkpoint/-resume flag pair.
// An empty path (checkpointing off) returns nil; -resume without
// -checkpoint is a usage error; refusing to clobber an existing journal
// without -resume is a runtime error with guidance.
func OpenCheckpoint(path string, resume bool) *fault.Checkpoint {
	if resume && path == "" {
		Usagef("-resume requires -checkpoint <path>")
	}
	if path == "" {
		return nil
	}
	ck, err := fault.OpenCheckpoint(path, resume)
	if err != nil {
		Fatalf("checkpoint: %v", err)
	}
	return ck
}

// ArmChaos arms the process-wide chaos budget from a -chaos-cancel-after
// flag: after n campaign fault simulations every campaign cancels as if
// interrupted. 0 leaves chaos off; negative budgets are a usage error.
func ArmChaos(n int64) {
	if n < 0 {
		Usagef("-chaos-cancel-after must be >= 0, got %d", n)
	}
	if n > 0 {
		fault.ChaosCancelAfterSims(n)
	}
}

// ExitFlow reports a flow error and exits with the conventional code:
// cooperative interruptions (signal, deadline, chaos budget) print the
// partial campaign stats and the journal path, then exit 130; anything
// else — a worker panic included — exits 1.
func ExitFlow(err error, st fault.Stats, ck *fault.Checkpoint) {
	if fault.Interrupted(err) {
		fmt.Fprintf(os.Stderr, "interrupted: %v\n", err)
		fmt.Fprintf(os.Stderr,
			"partial campaign: %d fault-sims (%d rehydrated), %d word-sims, %d dropped, %d gate events, %s\n",
			st.Faults, st.Rehydrated, st.Words, st.Dropped, st.Events,
			st.Wall.Round(time.Millisecond))
		if ck != nil {
			fmt.Fprintf(os.Stderr, "checkpoint journal: %s — rerun with -resume to continue\n", ck.Path())
		}
		os.Exit(ExitInterrupted)
	}
	Fatalf("%v", err)
}
