module rescue

go 1.22
