package flows

import (
	"context"
	"fmt"
	"io"
	"time"

	"rescue/internal/atpg"
	"rescue/internal/core"
	"rescue/internal/fault"
	"rescue/internal/rtl"
)

// Table3Opts parameterizes the Table 3 (scan-chain data) flow — the
// rescue-atpg command surface.
type Table3Opts struct {
	Small      bool
	Seed       int64 // 0 means the default seed 1
	Backtracks int   // 0 means the default 500
	Workers    int
	Timing     bool
}

func (o *Table3Opts) setDefaults() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Backtracks == 0 {
		o.Backtracks = 500
	}
}

// Table3Result carries the flow's campaign stats (partial on interrupt)
// and the summary rows.
type Table3Result struct {
	Stats fault.Stats
	Rows  []core.ScanSummary
}

// Table3 runs the paper's Table 3 flow for both design variants and
// writes the report to w — the exact text rescue-atpg prints, which is
// what results/table3_small.txt pins.
func Table3(ctx context.Context, w io.Writer, o Table3Opts, env Env) (Table3Result, error) {
	o.setDefaults()
	var res Table3Result

	gen := atpg.DefaultGenConfig()
	gen.Seed = o.Seed
	gen.MaxBacktracks = o.Backtracks
	gen.Workers = o.Workers

	fmt.Fprintln(w, "Table 3: Scan Chain data (paper: baseline 111294 faults / 2768 cells /")
	fmt.Fprintln(w, "1911 vectors / 5272449 cycles; Rescue 113490 / 3334 / 1787 / 5959645;")
	fmt.Fprintln(w, "Rescue = fewer vectors, ~13% more cycles). Our model is smaller but the")
	fmt.Fprintln(w, "same shape must hold.")
	fmt.Fprintln(w)
	if o.Timing {
		fmt.Fprintf(w, "%-10s %10s %10s %10s %12s %9s %10s\n",
			"design", "faults", "cells", "vectors", "cycles", "coverage", "runtime")
	} else {
		fmt.Fprintf(w, "%-10s %10s %10s %10s %12s %9s\n",
			"design", "faults", "cells", "vectors", "cycles", "coverage")
	}

	for _, v := range []rtl.Variant{rtl.Baseline, rtl.RescueDesign} {
		start := time.Now()
		s, err := env.System(o.Small, v)
		if err != nil {
			return res, fmt.Errorf("build: %w", err)
		}
		tp, err := env.TestProgram(ctx, s, o.Small, v, gen)
		if err != nil {
			res.Stats = tp.Gen.Stats
			return res, err
		}
		res.Stats.Add(tp.Gen.Stats)
		sum := s.Summary(tp)
		res.Rows = append(res.Rows, sum)
		if o.Timing {
			fmt.Fprintf(w, "%-10s %10d %10d %10d %12d %8.2f%% %10s\n",
				sum.Variant, sum.Faults, sum.ScanCells, sum.Vectors, sum.Cycles,
				sum.Coverage*100, time.Since(start).Round(time.Millisecond))
			st := tp.Gen.Stats
			fmt.Fprintf(w, "           campaign: %d fault-sims, %d word-sims, %d dropped, %d gate events, %d workers\n",
				st.Faults, st.Words, st.Dropped, st.Events, st.Workers)
		} else {
			fmt.Fprintf(w, "%-10s %10d %10d %10d %12d %8.2f%%\n",
				sum.Variant, sum.Faults, sum.ScanCells, sum.Vectors, sum.Cycles,
				sum.Coverage*100)
		}
	}
	if len(res.Rows) == 2 {
		fmt.Fprintln(w)
		fmt.Fprintf(w, "Rescue vs baseline: cells %+.1f%%, vectors %+.1f%%, cycles %+.1f%%\n",
			pct(res.Rows[1].ScanCells, res.Rows[0].ScanCells),
			pct(res.Rows[1].Vectors, res.Rows[0].Vectors),
			pct(res.Rows[1].Cycles, res.Rows[0].Cycles))
	}
	return res, nil
}

func pct(a, b int) float64 { return (float64(a)/float64(b) - 1) * 100 }
