package fab

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"rescue/internal/area"
	"rescue/internal/atpg"
	"rescue/internal/core"
	"rescue/internal/fault"
	"rescue/internal/ici"
	"rescue/internal/netlist"
	"rescue/internal/rtl"
	"rescue/internal/selfheal"
	"rescue/internal/yield"
)

// The reduced-configuration system and its test program are expensive to
// build (scan insertion + full ATPG), so every test shares one fixture.
var (
	fixOnce sync.Once
	fixSys  *core.System
	fixTP   *core.TestProgram
	fixErr  error
)

func fixture(t *testing.T) (*core.System, *core.TestProgram) {
	t.Helper()
	fixOnce.Do(func() {
		fixSys, fixErr = core.Build(rtl.Small(), rtl.RescueDesign)
		if fixErr != nil {
			return
		}
		fixTP = fixSys.GenerateTests(atpg.DefaultGenConfig())
	})
	if fixErr != nil {
		t.Fatalf("fixture: %v", fixErr)
	}
	return fixSys, fixTP
}

// syntheticModels builds reference CoreModels with the real area split but
// a closed-form IPC table, so engine tests do not need uarch simulations.
func syntheticModels() (base, resc yield.CoreModel) {
	base = yield.CoreModel{Area: area.BaselineWithScan(), Full: 2.0}
	resc = yield.CoreModel{Area: area.Rescue(), IPC: map[yield.CoreConfig]float64{}}
	for _, c := range yield.Configs() {
		downs := c.FEDown + c.IntIQDown + c.FPIQDown + c.LSQDown + c.IntBEDown + c.FPBEDown
		resc.IPC[c] = 1.9 * math.Pow(0.8, float64(downs))
	}
	resc.Full = resc.IPC[yield.CoreConfig{}]
	return base, resc
}

func runFleet(t *testing.T, cfg Config, ck *fault.Checkpoint) (*FleetReport, error) {
	t.Helper()
	sys, tp := fixture(t)
	base, resc := syntheticModels()
	eng, err := New(sys, tp, base, resc, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return eng.Run(context.Background(), ck)
}

func smallConfig(dies, workers int) Config {
	return Config{
		Dies: dies, Node: area.Node(18), Stagnate: area.Node(90),
		Growth: 0.30, Seed: 2026, Workers: workers,
	}
}

// stripStats clears the fields that legitimately vary across worker
// counts and resume cycles (wall clock, rehydration counts).
func stripStats(r *FleetReport) *FleetReport {
	c := *r
	c.Stats = fault.Stats{}
	return &c
}

func TestFleetWorkerDeterminism(t *testing.T) {
	ref, err := runFleet(t, smallConfig(400, 1), nil)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	for _, w := range []int{2, 8} {
		got, err := runFleet(t, smallConfig(400, w), nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(stripStats(ref), stripStats(got)) {
			t.Fatalf("workers=%d fleet differs from workers=1:\n  %+v\nvs\n  %+v", w, ref, got)
		}
	}
}

func TestFleetKillResume(t *testing.T) {
	ref, err := runFleet(t, smallConfig(400, 2), nil)
	if err != nil {
		t.Fatalf("uninterrupted: %v", err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "fab.ck")
	defer fault.ChaosCancelAfterSims(0)
	fault.ChaosCancelAfterSims(int64(ref.UniqueFaults)/2 + 1)
	_, err = runFleet(t, smallConfig(400, 1), fault.NewCheckpoint(path))
	fault.ChaosCancelAfterSims(0)
	if err == nil {
		t.Fatalf("chaos budget did not interrupt the campaign")
	}
	if !fault.Interrupted(err) {
		t.Fatalf("interrupted run failed hard: %v", err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("no journal written at %s: %v", path, err)
	}

	ck, err := fault.LoadCheckpoint(path)
	if err != nil {
		t.Fatalf("reload journal: %v", err)
	}
	got, err := runFleet(t, smallConfig(400, 8), ck)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if got.Stats.Rehydrated == 0 {
		t.Fatalf("resume did not rehydrate any journaled work")
	}
	if !reflect.DeepEqual(stripStats(ref), stripStats(got)) {
		t.Fatalf("resumed fleet differs from uninterrupted:\n  %+v\nvs\n  %+v", ref, got)
	}
}

// TestFleetConvergence pins the acceptance criterion at test scale: the
// empirical fleet yield and YAT converge to within 3% relative of the
// analytic EQ 2/3 model at the 18nm node. The seed is fixed, so this is a
// deterministic regression guard, not a flaky statistical assertion.
func TestFleetConvergence(t *testing.T) {
	rep, err := runFleet(t, smallConfig(6000, 0), nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := rep.Counts.Clean + rep.Counts.Degraded + rep.Counts.ChainFail +
		rep.Counts.ArrayDead + rep.Counts.Chipkill + rep.Counts.Ambiguous +
		rep.Counts.Dead + rep.Counts.FieldFail; got != rep.Dies*rep.Cores {
		t.Fatalf("fates sum to %d, want %d", got, rep.Dies*rep.Cores)
	}
	if rel := math.Abs(rep.EmpYield/rep.AnaYield - 1); rel > 0.03 {
		t.Errorf("core yield off by %.2f%%: empirical %.4f vs analytic %.4f",
			rel*100, rep.EmpYield, rep.AnaYield)
	}
	if rel := math.Abs(rep.EmpYAT/rep.AnaChip.Rescue - 1); rel > 0.03 {
		t.Errorf("chip YAT off by %.2f%%: empirical %.4f vs analytic %.4f",
			rel*100, rep.EmpYAT, rep.AnaChip.Rescue)
	}
	// the corners the tentpole exists to exercise must all occur
	if rep.Counts.Degraded == 0 || rep.Counts.ChainFail == 0 ||
		rep.Counts.Chipkill == 0 || rep.Counts.Dead == 0 {
		t.Errorf("expected every lifecycle corner at fleet scale, got %+v", rep.Counts)
	}
}

// TestFleetSelfHeal drives the selfheal.Array integration: with a tiny
// spare-less array, clustered defects exhaust capacity and kill cores;
// one spare is enough to keep every array alive (capacity >= 1 always).
func TestFleetSelfHeal(t *testing.T) {
	cfg := smallConfig(800, 0)
	cfg.SelfHealShare = 0.6
	cfg.HealEntries = 2
	cfg.HealSpares = 0
	rep, err := runFleet(t, cfg, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Defects.Healed == 0 {
		t.Fatalf("self-heal share produced no healed defects: %+v", rep.Defects)
	}
	if rep.Counts.ArrayDead == 0 {
		t.Errorf("2-entry spare-less arrays never exhausted: %+v", rep.Counts)
	}

	cfg.HealSpares = 1
	rep2, err := runFleet(t, cfg, nil)
	if err != nil {
		t.Fatalf("run with spare: %v", err)
	}
	if rep2.Counts.ArrayDead != 0 {
		t.Errorf("one spare still exhausted %d arrays", rep2.Counts.ArrayDead)
	}

	// remap determinism: the same seed reproduces the fleet exactly
	rep3, err := runFleet(t, cfg, nil)
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if !reflect.DeepEqual(stripStats(rep2), stripStats(rep3)) {
		t.Fatalf("same seed produced different fleets")
	}
}

// TestSelfHealArrayUnderFabDefects drives selfheal.Array exactly the way
// coreLifecycle does — MarkFaulty per healed defect, Alive() as the
// live/dead verdict — and cross-checks against InjectRandom: the same
// defect stream or seed must always produce the same capacity, remap
// assignment, and Alive() flip, independent of how often it is replayed.
func TestSelfHealArrayUnderFabDefects(t *testing.T) {
	// Exhaustion boundary under the fab's mark-per-defect discipline:
	// with s spares, Alive() holds until every entry is faulty, and the
	// first s marks are remapped (capacity stays full that long).
	a, err := selfheal.New(4, 2)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	marks := []int{2, 0, 3, 1}
	for i, m := range marks {
		if !a.Alive() {
			t.Fatalf("array died after %d/%d marks", i, len(marks))
		}
		if err := a.MarkFaulty(m); err != nil {
			t.Fatalf("MarkFaulty(%d): %v", m, err)
		}
		wantCap := 4 - max(0, i+1-2) // first 2 marks absorbed by spares
		if got := a.EffectiveCapacity(); got != wantCap {
			t.Fatalf("after %d marks capacity = %d, want %d", i+1, got, wantCap)
		}
	}
	if !a.Alive() {
		t.Fatalf("4 faults with 2 spares should leave capacity 2, not kill the array")
	}

	// InjectRandom reproducibility: same (frac, seed) on fresh arrays is
	// bit-identical; replaying the fab's MarkFaulty stream on top changes
	// nothing that InjectRandom already marked.
	mk := func() *selfheal.Array {
		b, err := selfheal.New(64, 3)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		b.InjectRandom(0.2, 7)
		return b
	}
	b1, b2 := mk(), mk()
	if b1.FaultyCount() == 0 {
		t.Fatalf("InjectRandom(0.2) marked nothing")
	}
	for i := 0; i < 64; i++ {
		if b1.Usable(i) != b2.Usable(i) {
			t.Fatalf("entry %d usability differs across identical seeds", i)
		}
	}
	if b1.EffectiveCapacity() != b2.EffectiveCapacity() || b1.Alive() != b2.Alive() {
		t.Fatalf("identical seeds produced different capacity/liveness")
	}
}

func TestDiagnose(t *testing.T) {
	audit := &ici.AuditResult{
		BitSuper:   []string{"FE0", "", "IQ1", "IQ1"},
		Violations: []ici.AuditViolation{{Obs: 3, Supers: []string{"FE0", "IQ1"}}},
	}
	if supers, amb := Diagnose(audit, []int{0, 2}); amb || !reflect.DeepEqual(supers, []string{"FE0", "IQ1"}) {
		t.Fatalf("clean diagnosis got %v amb=%v", supers, amb)
	}
	if supers, amb := Diagnose(audit, nil); amb || len(supers) != 0 {
		t.Fatalf("empty diagnosis got %v amb=%v", supers, amb)
	}
	for _, bad := range [][]int{{1}, {3}, {-1}, {4}, {0, 1}} {
		if _, amb := Diagnose(audit, bad); !amb {
			t.Errorf("failObs %v should be ambiguous", bad)
		}
	}
}

func TestChainFail(t *testing.T) {
	gate := netlist.Fault{Gate: 3, Pin: 0}
	ff := netlist.Fault{Gate: -1, FF: 2}
	if ChainFail([]netlist.Fault{gate}) {
		t.Fatalf("gate fault should not fail the chain flush")
	}
	if !ChainFail([]netlist.Fault{gate, ff}) {
		t.Fatalf("FF fault must fail the chain flush")
	}
}

func TestConfigValidation(t *testing.T) {
	sys, tp := fixture(t)
	base, resc := syntheticModels()
	for _, cfg := range []Config{
		{Dies: 0, Node: area.Node(18), Stagnate: area.Node(90), Growth: 0.3},
		{Dies: 10, Node: area.Node(18), Stagnate: area.Node(90), Growth: -0.1},
		{Dies: 10, Node: area.Node(18), Stagnate: area.Node(90), Growth: 0.3, SelfHealShare: 1.0},
		{Dies: 10, Node: area.Node(18), Stagnate: area.Node(90), Growth: 0.3, Workers: -1},
	} {
		if _, err := New(sys, tp, base, resc, cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}
