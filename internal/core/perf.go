package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"rescue/internal/area"
	"rescue/internal/fault"
	"rescue/internal/obs"
	"rescue/internal/uarch"
	"rescue/internal/workload"
	"rescue/internal/yield"
)

// NodeScale carries the Section 5 technology-scaling knobs: each halving of
// device area multiplies memory latency by 1.5 and adds 2 cycles to the
// branch misprediction penalty.
type NodeScale struct {
	MemLatencyScale float64
	ExtraMispred    int
}

// ScaleFor computes the scaling knobs for a node.
func ScaleFor(node area.Scaling) NodeScale {
	return NodeScale{
		MemLatencyScale: math.Pow(1.5, node.Halvings),
		ExtraMispred:    int(math.Round(2 * node.Halvings)),
	}
}

func (ns NodeScale) apply(p uarch.Params) uarch.Params {
	p.MemLatencyScale = ns.MemLatencyScale
	p.FrontendDepth += ns.ExtraMispred
	return p
}

// IPCRow is one bar pair of Figure 8.
type IPCRow struct {
	Benchmark      string
	Baseline       float64
	Rescue         float64
	DegradationPct float64
}

// runIPC simulates one configuration of one benchmark.
func runIPC(p uarch.Params, prof workload.Profile, warmup, commit int64) (float64, error) {
	s, err := uarch.New(p, prof)
	if err != nil {
		return 0, err
	}
	return s.Run(warmup, commit).IPC(), nil
}

// parallelMap runs jobs across workers goroutines (<= 0 = all CPUs).
func parallelMap(n, workers int, f func(i int)) {
	parallelMapCtx(context.Background(), n, workers, f)
}

// parallelMapCtx is parallelMap with cooperative cancellation at job
// granularity: once ctx is done no new jobs are dispatched, in-flight
// jobs finish, and the context's cause is returned.
func parallelMapCtx(ctx context.Context, n, workers int, f func(i int)) error {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				f(i)
			}
		}()
	}
	var err error
dispatch:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			err = context.Cause(ctx)
			break dispatch
		case ch <- i:
		}
	}
	close(ch)
	wg.Wait()
	return err
}

// IPCStudy reproduces Figure 8: fault-free baseline vs. Rescue IPC for the
// given benchmarks (nil = all 23). Workers accumulate into disjoint
// per-index slots — no shared state, nothing to lock.
func IPCStudy(benchNames []string, warmup, commit int64) ([]IPCRow, error) {
	return IPCStudyWorkers(benchNames, warmup, commit, 0)
}

// IPCStudyWorkers is IPCStudy with an explicit simulation concurrency
// degree (<= 0 = all cores). Rows land in disjoint per-index slots, so the
// result is identical at any worker count.
func IPCStudyWorkers(benchNames []string, warmup, commit int64, workers int) ([]IPCRow, error) {
	return IPCStudyFlow(context.Background(), benchNames, warmup, commit, workers)
}

// IPCStudyFlow is IPCStudyWorkers with cooperative cancellation: once ctx
// is done no new benchmark simulations start and the context's cause is
// returned (the partial rows alongside it).
func IPCStudyFlow(ctx context.Context, benchNames []string, warmup, commit int64, workers int) ([]IPCRow, error) {
	defer obs.Span(ctx, "ipc_study")()
	profs, err := resolve(benchNames)
	if err != nil {
		return nil, err
	}
	rows := make([]IPCRow, len(profs))
	errs := make([]error, len(profs))
	progress := fault.ProgressFromContext(ctx)
	var done atomic.Int64
	cerr := parallelMapCtx(ctx, len(profs), workers, func(i int) {
		base, err1 := runIPC(uarch.DefaultParams(), profs[i], warmup, commit)
		resc, err2 := runIPC(uarch.RescueParams(), profs[i], warmup, commit)
		if err1 != nil {
			errs[i] = err1
		} else if err2 != nil {
			errs[i] = err2
		}
		rows[i] = IPCRow{
			Benchmark: profs[i].Name,
			Baseline:  base,
			Rescue:    resc,
		}
		if base > 0 {
			rows[i].DegradationPct = (1 - resc/base) * 100
		}
		if progress != nil {
			progress(done.Add(1), int64(len(profs)))
		}
	})
	if cerr != nil {
		return rows, cerr
	}
	for _, e := range errs {
		if e != nil {
			return rows, e
		}
	}
	return rows, nil
}

func resolve(names []string) ([]workload.Profile, error) {
	if names == nil {
		return workload.Benchmarks(), nil
	}
	var out []workload.Profile
	for _, n := range names {
		p, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// PerfModel holds, for one technology node, the per-benchmark baseline IPC
// and the Rescue IPC of every live degraded configuration — the inputs EQ 3
// needs.
type PerfModel struct {
	Node     area.Scaling
	Baseline map[string]float64
	Rescue   map[string]map[yield.CoreConfig]float64
}

// toDegraded converts a yield configuration into simulator knobs.
func toDegraded(c yield.CoreConfig) uarch.Degraded {
	return uarch.Degraded{
		FEGroupsDisabled:  c.FEDown,
		IntGroupsDisabled: c.IntBEDown,
		FPGroupsDisabled:  c.FPBEDown,
		IntIQHalvesDown:   c.IntIQDown,
		FPIQHalvesDown:    c.FPIQDown,
		LSQHalvesDown:     c.LSQDown,
	}
}

// BuildPerfModel simulates every (benchmark, degraded configuration) pair
// at a node. This is the expensive step of Figure 9; warmup/commit control
// the accuracy/runtime trade.
func BuildPerfModel(node area.Scaling, benchNames []string, warmup, commit int64) (*PerfModel, error) {
	return BuildPerfModelFlow(context.Background(), node, benchNames, warmup, commit, 0)
}

// BuildPerfModelFlow is BuildPerfModel with cooperative cancellation and
// an explicit simulation concurrency degree (<= 0 = all cores). Once ctx
// is done no new simulations start and the context's cause is returned.
func BuildPerfModelFlow(ctx context.Context, node area.Scaling, benchNames []string, warmup, commit int64, workers int) (*PerfModel, error) {
	return BuildPerfModelFlowParams(ctx, node, uarch.DefaultParams(), uarch.RescueParams(), benchNames, warmup, commit, workers)
}

// BuildPerfModelFlowParams is BuildPerfModelFlow over an explicit
// (baseline, Rescue) parameter pair instead of the paper's Table 1
// machines — the entry point for design-space variants. Node scaling is
// applied on top of both, exactly as for the fixed configuration.
func BuildPerfModelFlowParams(ctx context.Context, node area.Scaling, baseParams, rescParams uarch.Params, benchNames []string, warmup, commit int64, workers int) (*PerfModel, error) {
	defer obs.Span(ctx, "perf_model")()
	if err := baseParams.Validate(); err != nil {
		return nil, err
	}
	if err := rescParams.Validate(); err != nil {
		return nil, err
	}
	profs, err := resolve(benchNames)
	if err != nil {
		return nil, err
	}
	ns := ScaleFor(node)
	cfgs := yield.Configs()
	pm := &PerfModel{
		Node:     node,
		Baseline: map[string]float64{},
		Rescue:   map[string]map[yield.CoreConfig]float64{},
	}
	type job struct {
		bench int
		cfg   int // -1 = baseline
	}
	var jobs []job
	for b := range profs {
		jobs = append(jobs, job{b, -1})
		for c := range cfgs {
			jobs = append(jobs, job{b, c})
		}
	}
	results := make([]float64, len(jobs))
	errs := make([]error, len(jobs))
	progress := fault.ProgressFromContext(ctx)
	var done atomic.Int64
	cerr := parallelMapCtx(ctx, len(jobs), workers, func(i int) {
		j := jobs[i]
		var p uarch.Params
		if j.cfg < 0 {
			p = ns.apply(baseParams)
		} else {
			p = ns.apply(rescParams)
			p.Degr = toDegraded(cfgs[j.cfg])
		}
		results[i], errs[i] = runIPC(p, profs[j.bench], warmup, commit)
		if progress != nil {
			progress(done.Add(1), int64(len(jobs)))
		}
	})
	if cerr != nil {
		return nil, cerr
	}
	for i, j := range jobs {
		if errs[i] != nil {
			return nil, errs[i]
		}
		name := profs[j.bench].Name
		if j.cfg < 0 {
			pm.Baseline[name] = results[i]
		} else {
			if pm.Rescue[name] == nil {
				pm.Rescue[name] = map[yield.CoreConfig]float64{}
			}
			pm.Rescue[name][cfgs[j.cfg]] = results[i]
		}
	}
	return pm, nil
}

// YATRow is one bar group of Figure 9: a (node, growth) scenario averaged
// across benchmarks. Relative values are normalized per benchmark by the
// ideal (100% yield, no degradation) chip YAT.
type YATRow struct {
	StagnateNM, NodeNM int
	Growth             float64
	Cores              int
	RelNone            float64
	RelCS              float64
	RelRescue          float64
	// RescueOverCSPct is the headline: (Rescue/CS − 1) × 100.
	RescueOverCSPct float64
}

// YATStudy reproduces one panel of Figure 9 for the given PWP-stagnation
// node, using per-node performance models (one per plotted node).
func YATStudy(stagnate area.Scaling, models map[int]*PerfModel) ([]YATRow, error) {
	var rows []YATRow
	baseArea := area.BaselineWithScan()
	rescArea := area.Rescue()
	for _, node := range area.Nodes() {
		pm, ok := models[node.NodeNM]
		if !ok {
			return nil, fmt.Errorf("core: no performance model for %dnm", node.NodeNM)
		}
		for _, g := range area.GrowthRates() {
			var sumNone, sumCS, sumRescue float64
			var count int
			var cores int
			for bench, full := range pm.Baseline {
				baseCM := yield.CoreModel{Area: baseArea, Full: full}
				rescCM := yield.CoreModel{
					Area: rescArea,
					Full: pm.Rescue[bench][yield.CoreConfig{}],
					IPC:  pm.Rescue[bench],
				}
				r := yield.Chip(node, stagnate, g, baseCM, rescCM)
				cores = r.Cores
				sumNone += r.NoRedundancy / r.Ideal
				sumCS += r.CoreSparing / r.Ideal
				sumRescue += r.Rescue / r.Ideal
				count++
			}
			row := YATRow{
				StagnateNM: stagnate.NodeNM,
				NodeNM:     node.NodeNM,
				Growth:     g,
				Cores:      cores,
				RelNone:    sumNone / float64(count),
				RelCS:      sumCS / float64(count),
				RelRescue:  sumRescue / float64(count),
			}
			if row.RelCS > 0 {
				row.RescueOverCSPct = (row.RelRescue/row.RelCS - 1) * 100
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}
