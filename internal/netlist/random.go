package netlist

import "fmt"

// RandomConfig controls the seeded netlist generator. The zero value of
// every knob selects a sensible default; minimums are enforced so any
// config yields a valid scannable circuit (at least one input and one FF).
type RandomConfig struct {
	Seed     uint64
	Gates    int // combinational gates (default 40)
	FFs      int // flip-flops (default 8, min 1)
	Inputs   int // primary inputs (default 6, min 1)
	Outputs  int // primary outputs (default 4, min 1)
	MaxFanIn int // max inputs per multi-input gate (default 4, min 2)
	Comps    int // ICI components to scatter gates across (default 3, min 1)
}

func (c RandomConfig) withDefaults() RandomConfig {
	def := func(v *int, d, min int) {
		if *v == 0 {
			*v = d
		}
		if *v < min {
			*v = min
		}
	}
	def(&c.Gates, 40, 0)
	def(&c.FFs, 8, 1)
	def(&c.Inputs, 6, 1)
	def(&c.Outputs, 4, 1)
	def(&c.MaxFanIn, 4, 2)
	def(&c.Comps, 3, 1)
	return c
}

// randRNG is a splitmix64 generator: tiny, deterministic across platforms
// and Go versions, so seed N always names the same circuit.
type randRNG struct{ s uint64 }

func (r *randRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *randRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// Random generates a pseudo-random but always-valid netlist from a seed:
// a levelized DAG of gates over primary inputs and FF outputs, with
// sequential feedback through flip-flops, random ICI component tags, and
// primary outputs drawn from arbitrary nets. The construction deliberately
// exercises the corner cases that have bitten the fault simulator before:
// FF Q nets feeding other FFs' D pins directly (no gate in between),
// several FFs sharing one D net, FF Q nets doubling as primary outputs,
// self-looped FFs, tie cells, and multi-fanout nets.
//
// The same seed and config always produce the identical netlist, so a seed
// is a complete, reproducible name for a test circuit.
func Random(cfg RandomConfig) *Netlist {
	cfg = cfg.withDefaults()
	r := randRNG{s: cfg.Seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
	n := New(fmt.Sprintf("rand%d", cfg.Seed))

	comps := make([]CompID, cfg.Comps)
	for i := range comps {
		comps[i] = n.Component(fmt.Sprintf("lc%d", i))
	}
	n.SetCurrentComp(comps[0])

	var pool []NetID
	for i := 0; i < cfg.Inputs; i++ {
		pool = append(pool, n.Input(fmt.Sprintf("i%d", i)))
	}

	// Declare roughly half the FFs up-front so their Q nets can feed the
	// combinational logic, creating real sequential feedback loops.
	nDecl := cfg.FFs/2 + 1
	if nDecl > cfg.FFs {
		nDecl = cfg.FFs
	}
	decl := make([]FFID, nDecl)
	for i := 0; i < nDecl; i++ {
		n.SetCurrentComp(comps[r.intn(len(comps))])
		id, q := n.DeclFF(fmt.Sprintf("ff%d", i))
		decl[i] = id
		pool = append(pool, q)
	}

	// pick returns a random driven net, biased toward recently created nets
	// half the time so chains grow deep instead of the DAG staying flat.
	pick := func() NetID {
		if len(pool) > 4 && r.intn(2) == 0 {
			lo := len(pool) - len(pool)/4
			return pool[lo+r.intn(len(pool)-lo)]
		}
		return pool[r.intn(len(pool))]
	}

	// multi-input kinds weighted heavier than inverters/buffers
	kinds := []GateKind{And, Or, Nand, Nor, Xor, Xnor, And, Or, Nand, Nor, Not, Buf, Mux2}
	for g := 0; g < cfg.Gates; g++ {
		if r.intn(4) == 0 {
			n.SetCurrentComp(comps[r.intn(len(comps))])
		}
		var out NetID
		if r.intn(64) == 0 {
			out = n.Const(r.intn(2) == 1)
		} else {
			switch k := kinds[r.intn(len(kinds))]; k {
			case Not, Buf:
				out = n.AddGate(k, pick())
			case Mux2:
				out = n.AddGate(k, pick(), pick(), pick())
			default:
				ins := make([]NetID, 2+r.intn(cfg.MaxFanIn-1))
				for i := range ins {
					ins[i] = pick()
				}
				out = n.AddGate(k, ins...)
			}
		}
		pool = append(pool, out)
	}

	// Bind the declared FFs. Picking freely from the pool means a D net may
	// be another FF's Q (a direct FF-to-FF transfer with no gate between)
	// or even the FF's own Q (a hold register).
	for _, id := range decl {
		n.BindFFD(id, pick())
	}
	// The remaining FFs capture arbitrary nets; independent picks can
	// repeat, giving several FFs one shared D net.
	for i := nDecl; i < cfg.FFs; i++ {
		n.SetCurrentComp(comps[r.intn(len(comps))])
		pool = append(pool, n.AddFF(pick(), fmt.Sprintf("ff%d", i)))
	}

	// Distinct primary outputs from the whole pool — gate outputs, FF Q
	// nets, and primary inputs are all fair game.
	taken := map[NetID]bool{}
	outs := 0
	for attempts := 0; outs < cfg.Outputs && attempts < cfg.Outputs*20; attempts++ {
		id := pick()
		if taken[id] {
			continue
		}
		taken[id] = true
		n.Output(id, fmt.Sprintf("po%d", outs))
		outs++
	}
	if outs == 0 {
		n.Output(pool[len(pool)-1], "po0")
	}
	return n
}
