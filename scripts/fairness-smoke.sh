#!/usr/bin/env bash
# Multi-tenant fairness smoke for the rescued daemon, and the CI fairness
# gate:
#
#   1. build rescued and rescue-loadgen
#   2. boot two daemons on ephemeral ports: one with fair scheduling
#      (DRR weights victim=2:aggressor=1, per-tenant queue cap, one
#      in-flight job per tenant) and one with -fair=false (the legacy
#      single FIFO)
#   3. run the canned noisy-neighbor scenario: the victim tenant's warm
#      p99 is measured solo, then under an aggressor flood against the
#      fair daemon — it must stay within the fairness budget — and then
#      against the unfair daemon, which must demonstrably violate it
#      (or starve the victim outright); the report lands in
#      BENCH_loadtest.json and a violation exits nonzero
#   4. assert the fair daemon's /metrics carry the per-tenant account:
#      aggressor shed at least once, victim admitted, victim wait
#      quantiles exported
#   5. slow-consumer leg: a third daemon with a tiny -event-log-cap
#      serves chatty cold campaigns to late-replaying readers; every
#      stream must surface an explicit {"type":"dropped"} marker instead
#      of unbounded buffering
#   6. SIGTERM the fair daemon; it must drain and exit 0
#
# The 3x bound is a regression tripwire for "fair scheduling broke", not
# a performance contest: with one in-flight aggressor job per tenant the
# victim always has a free slot, so its contended warm p99 should sit
# near its solo baseline with a wide margin.
#
# Usage: scripts/fairness-smoke.sh
#   env: FAIR_SEED (default 2026), FAIR_DURATION (default 6s),
#        FAIR_BOUND (default 3)
set -euo pipefail
cd "$(dirname "$0")/.."

seed=${FAIR_SEED:-2026}
duration=${FAIR_DURATION:-6s}
bound=${FAIR_BOUND:-3}
tmp=$(mktemp -d)
fair_pid=""
unfair_pid=""
drops_pid=""
cleanup() {
    for pid in "$fair_pid" "$unfair_pid" "$drops_pid"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build"
go build -o "$tmp/rescued" ./cmd/rescued
go build -o "$tmp/rescue-loadgen" ./cmd/rescue-loadgen

# start_daemon runs rescued in the *main* shell (so wait/kill see it as a
# child) and leaves its pid in DAEMON_PID and base URL in DAEMON_BASE.
start_daemon() { # name, args...
    local name=$1; shift
    "$tmp/rescued" -addr 127.0.0.1:0 -quiet "$@" >"$tmp/$name.out" 2>&1 &
    DAEMON_PID=$!
    local addr=""
    for _ in $(seq 1 50); do
        addr=$(sed -n 's/^listening on //p' "$tmp/$name.out")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "FAIL: $name rescued never came up" >&2
        cat "$tmp/$name.out" >&2
        exit 1
    fi
    DAEMON_BASE="http://$addr"
}

echo "== start fair daemon (DRR victim=2:aggressor=1, tenant caps) and unfair control"
start_daemon fair -slots 2 -queue 64 \
    -tenant-weights victim=2,aggressor=1 -tenant-queue-cap 16 \
    -max-inflight-per-tenant 1
fair_pid=$DAEMON_PID fair_base=$DAEMON_BASE
start_daemon unfair -fair=false -slots 2 -queue 64
unfair_pid=$DAEMON_PID unfair_base=$DAEMON_BASE
echo "   fair $fair_base, unfair $unfair_base"

echo "== noisy-neighbor scenario (bound ${bound}x, duration $duration)"
"$tmp/rescue-loadgen" -scenario noisy-neighbor \
    -base "$fair_base" -base-unfair "$unfair_base" \
    -seed "$seed" -duration "$duration" -aggressor-mult 12 \
    -fairness-bound "$bound" -out BENCH_loadtest.json

echo "== BENCH_loadtest.json must carry the fairness verdict"
for field in '"fairness"' '"solo_p99_ms"' '"fair_p99_ms"' '"per_tenant"' \
    '"victim"' '"aggressor"'; do
    grep -q "$field" BENCH_loadtest.json || {
        echo "FAIL: BENCH_loadtest.json missing $field" >&2
        cat BENCH_loadtest.json >&2
        exit 1
    }
done

echo "== fair daemon /metrics must account per tenant"
curl -fsS "$fair_base/metrics" >"$tmp/fair.metrics"
grep -Eq 'tenant_aggressor_shed_total [1-9]' "$tmp/fair.metrics" || {
    echo "FAIL: aggressor was never shed on the fair daemon" >&2
    grep tenant_ "$tmp/fair.metrics" >&2 || true
    exit 1
}
grep -Eq 'tenant_victim_admitted_total [1-9]' "$tmp/fair.metrics" || {
    echo "FAIL: no victim admissions recorded" >&2
    exit 1
}
grep -q 'tenant_victim_wait_seconds_p99' "$tmp/fair.metrics" || {
    echo "FAIL: victim wait quantiles not exported" >&2
    exit 1
}

echo "== slow consumers must see dropped markers, not unbounded buffers"
start_daemon drops -slots 2 -event-log-cap 16
drops_pid=$DAEMON_PID drops_base=$DAEMON_BASE
"$tmp/rescue-loadgen" -base "$drops_base" -seed "$seed" \
    -mix isolation=1 -hit-ratio 0 -clients 2 -rps 1.5 -duration 4s \
    -slow-readers 9999 -prewarm=false -out "$tmp/drops.json" -quiet >/dev/null
grep -Eq '"drop_markers": [1-9]' "$tmp/drops.json" || {
    echo "FAIL: slow readers saw no dropped markers" >&2
    cat "$tmp/drops.json" >&2
    exit 1
}

echo "== SIGTERM: fair daemon must drain and exit 0"
kill -TERM "$fair_pid"
rc=0
wait "$fair_pid" || rc=$?
fair_pid=""
if [ "$rc" -ne 0 ]; then
    echo "FAIL: fair rescued exited $rc on SIGTERM, want 0" >&2
    cat "$tmp/fair.out" >&2
    exit 1
fi

echo "PASS: fairness smoke (victim isolated under flood, unfair mode provably worse, tenants metered, slow readers bounded)"
