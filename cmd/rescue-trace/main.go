// Command rescue-trace records synthetic benchmark traces to the compact
// binary format and replays traces (from this tool or external producers)
// through the performance simulator.
//
// Usage:
//
//	rescue-trace record -bench gzip -n 1000000 -o gzip.rsct [-timeout D]
//	rescue-trace replay -i gzip.rsct [-rescue] [-warmup N] [-commit N] [-timeout D]
//
// SIGINT/SIGTERM abort the trace stream and exit 130; a -timeout
// deadline exits 124. An interrupted record leaves a truncated file.
package main

import (
	"flag"
	"fmt"
	"os"

	"rescue/internal/cli"
	"rescue/internal/trace"
	"rescue/internal/uarch"
	"rescue/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rescue-trace record|replay [flags]")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	bench := fs.String("bench", "gzip", "benchmark to record")
	n := fs.Int64("n", 1_000_000, "instructions")
	out := fs.String("o", "", "output file (required)")
	timeout := fs.Duration("timeout", 0, "overall deadline (0 = none); exceeded = exit 124")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "record: -o required")
		os.Exit(2)
	}
	cli.CheckTimeout(*timeout)
	ctx, stop := cli.FlowContext(*timeout)
	defer stop()
	prof, err := workload.ByName(*bench)
	if err != nil {
		cli.ExitErr(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		cli.ExitErr(err)
	}
	defer f.Close()
	tw, err := trace.Record(&cli.CtxWriter{Ctx: ctx, W: f}, workload.New(prof), *n)
	if err != nil {
		cli.ExitErr(err)
	}
	st, _ := f.Stat()
	fmt.Printf("recorded %d instructions of %s to %s (%.2f bytes/inst)\n",
		tw.Count(), *bench, *out, float64(st.Size())/float64(tw.Count()))
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("i", "", "trace file (required)")
	rescueMachine := fs.Bool("rescue", false, "simulate the Rescue machine (default baseline)")
	warmup := fs.Int64("warmup", 50_000, "warmup instructions")
	commit := fs.Int64("commit", 500_000, "measured instructions")
	timeout := fs.Duration("timeout", 0, "overall deadline (0 = none); exceeded = exit 124")
	fs.Parse(args)
	if *in == "" {
		fmt.Fprintln(os.Stderr, "replay: -i required")
		os.Exit(2)
	}
	cli.CheckTimeout(*timeout)
	ctx, stop := cli.FlowContext(*timeout)
	defer stop()
	f, err := os.Open(*in)
	if err != nil {
		cli.ExitErr(err)
	}
	defer f.Close()
	tr, err := trace.NewReader(&cli.CtxReader{Ctx: ctx, R: f})
	if err != nil {
		cli.ExitErr(err)
	}
	p := uarch.DefaultParams()
	if *rescueMachine {
		p = uarch.RescueParams()
	}
	sim, err := uarch.NewFromSource(p, tr)
	if err != nil {
		cli.ExitErr(err)
	}
	st := sim.Run(*warmup, *commit)
	// A context abort surfaces as the reader's sticky error: report it as
	// an interrupt/deadline, not a decode failure.
	if err := tr.Err(); err != nil {
		cli.ExitErr(err)
	}
	machine := "baseline"
	if *rescueMachine {
		machine = "rescue"
	}
	fmt.Printf("%s: IPC %.3f over %d instructions (%d cycles)\n",
		machine, st.IPC(), st.Committed, st.Cycles)
	if tr.Done() {
		fmt.Println("note: trace exhausted during the run (tail padded with NOPs)")
	}
}
