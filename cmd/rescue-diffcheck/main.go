// Command rescue-diffcheck runs the differential verification harness:
// seeded random scan circuits are generated and every layer of the fault
// flow is cross-checked against independent implementations — the
// event-driven simulator against a brute-force oracle, the parallel
// campaign against the serial path at several worker counts, checkpoint
// kill/resume against uninterrupted runs, ICI-style equivalence transforms
// against functional simulation, and PODEM cubes against the oracle.
//
// Usage:
//
//	rescue-diffcheck [-seeds lo:hi | -seed N] [-budget dur]
//	                 [-workers n,n,...] [-dump dir] [-v]
//
// A failing seed is replayed with `rescue-diffcheck -seed N`; with -dump
// the failing circuit is shrunk to a minimal configuration and written out
// as Verilog plus a replay note.
package main

import (
	"context"
	"flag"
	"fmt"
	"strconv"
	"strings"
	"time"

	"rescue/internal/cli"
	"rescue/internal/diffcheck"
	"rescue/internal/fault"
)

func main() {
	seed := flag.Int64("seed", -1, "check a single seed (replay mode); -1 = use -seeds")
	seeds := flag.String("seeds", "0:1000", "seed range lo:hi (hi exclusive)")
	budget := flag.Duration("budget", 0, "stop after this much wall time (0 = no limit)")
	workersFlag := flag.String("workers", "1,2,8", "comma-separated campaign worker counts to cross-check")
	dump := flag.String("dump", "", "directory for shrunken failing-circuit dumps (off when empty)")
	verbose := flag.Bool("v", false, "print each seed as it is checked")
	flag.Parse()
	if flag.NArg() > 0 {
		cli.Usagef("unexpected arguments: %v", flag.Args())
	}

	opt := diffcheck.Options{Workers: parseWorkers(*workersFlag)}
	ctx, stop := cli.SignalContext()
	defer stop()

	if *seed >= 0 {
		err := diffcheck.CheckSeed(ctx, uint64(*seed), opt)
		if err == nil {
			fmt.Printf("seed %d: all properties hold\n", *seed)
			return
		}
		if fault.Interrupted(err) || ctx.Err() != nil {
			cli.ExitFlow(err, fault.Stats{}, nil)
		}
		fmt.Printf("seed %d: FAIL\n%v\n", *seed, err)
		dumpFailures(ctx, *dump, opt, []diffcheck.Failure{{
			Seed: uint64(*seed), Cfg: diffcheck.ConfigForSeed(uint64(*seed)), Err: err,
		}})
		cli.Fatalf("1 failing seed")
	}

	lo, hi := parseSeedRange(*seeds)
	start := time.Now()
	progress := func(s uint64) {}
	if *verbose {
		progress = func(s uint64) { fmt.Printf("seed %d\n", s) }
	}
	rep, err := diffcheck.Run(ctx, lo, hi, *budget, opt, progress)
	if err != nil {
		fmt.Printf("checked %d seeds before interruption\n", rep.Checked)
		cli.ExitFlow(err, fault.Stats{}, nil)
	}
	fmt.Printf("checked %d seeds of [%d, %d) in %s, workers %v: %d failing\n",
		rep.Checked, lo, hi, time.Since(start).Round(time.Millisecond), opt.Workers, len(rep.Failures))
	if len(rep.Failures) == 0 {
		return
	}
	for _, f := range rep.Failures {
		fmt.Printf("\nseed %d: %v\n  replay: rescue-diffcheck -seed %d\n", f.Seed, f.Err, f.Seed)
	}
	dumpFailures(ctx, *dump, opt, rep.Failures)
	cli.Fatalf("%d failing seed(s)", len(rep.Failures))
}

// dumpFailures shrinks each failure to a minimal configuration and writes
// the Verilog circuit plus a replay note into dir (no-op when dir is "").
func dumpFailures(ctx context.Context, dir string, opt diffcheck.Options, failures []diffcheck.Failure) {
	if dir == "" {
		return
	}
	for _, f := range failures {
		small := diffcheck.Shrink(ctx, f, opt)
		paths, err := diffcheck.WriteRepro(dir, small)
		if err != nil {
			cli.Fatalf("writing repro for seed %d: %v", f.Seed, err)
		}
		fmt.Printf("seed %d: shrunk to %+v\n  repro: %s\n", f.Seed, small.Cfg, strings.Join(paths, ", "))
	}
}

// parseWorkers validates the -workers list: comma-separated counts, each
// >= 0 (0 = all cores).
func parseWorkers(s string) []int {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			cli.Usagef("-workers: bad count %q: %v", p, err)
		}
		cli.CheckWorkers(n)
		out = append(out, n)
	}
	if len(out) == 0 {
		cli.Usagef("-workers needs at least one count")
	}
	return out
}

// parseSeedRange validates the -seeds flag: "lo:hi" with lo < hi.
func parseSeedRange(s string) (lo, hi uint64) {
	loS, hiS, ok := strings.Cut(s, ":")
	if !ok {
		cli.Usagef("-seeds must be lo:hi, got %q", s)
	}
	var err error
	if lo, err = strconv.ParseUint(strings.TrimSpace(loS), 10, 64); err != nil {
		cli.Usagef("-seeds: bad lo %q: %v", loS, err)
	}
	if hi, err = strconv.ParseUint(strings.TrimSpace(hiS), 10, 64); err != nil {
		cli.Usagef("-seeds: bad hi %q: %v", hiS, err)
	}
	if lo >= hi {
		cli.Usagef("-seeds: lo %d must be < hi %d", lo, hi)
	}
	return lo, hi
}
