package atpg

import (
	"context"
	"fmt"
	"math/rand"

	"rescue/internal/fault"
	"rescue/internal/netlist"
	"rescue/internal/obs"
	"rescue/internal/scan"
)

// GenConfig tunes the pattern-generation flow.
type GenConfig struct {
	// MaxRandomWords caps the random phase (64 patterns per word).
	MaxRandomWords int
	// UselessLimit ends the random phase after this many consecutive words
	// that detect no new fault.
	UselessLimit int
	// MaxBacktracks bounds each PODEM run.
	MaxBacktracks int
	// Seed drives random pattern generation and X-fill.
	Seed int64
	// Workers sets the fault-simulation campaign concurrency
	// (<= 0 = all cores). Results are identical at any worker count.
	Workers int
}

// DefaultGenConfig matches common production ATPG settings.
func DefaultGenConfig() GenConfig {
	return GenConfig{MaxRandomWords: 64, UselessLimit: 4, MaxBacktracks: 500, Seed: 1}
}

// GenResult summarizes a generation run — the quantities Table 3 of the
// paper reports.
type GenResult struct {
	Sim *fault.Sim // holds the final pattern set and good responses

	Vectors    int // scan loads (test patterns)
	Faults     int // uncollapsed fault universe size
	Collapsed  int
	Detected   int
	Untestable int
	Aborted    int
	Coverage   float64 // detected / (collapsed - untestable)
	ScanCells  int
	Cycles     int // tester cycles to apply all vectors

	// Stats accumulates the fault-dropping campaign work (faults simulated,
	// words dropped, gate events, wall time across all dropWord passes).
	Stats fault.Stats
}

// Generate runs the full ATPG flow on a scan-inserted netlist: a random
// phase with fault dropping, then PODEM for the survivors. It is the
// uninterruptible wrapper around GenerateFlow; it panics if the flow
// reports an error, which cannot happen without a cancellable context, a
// checkpoint, or an armed chaos budget.
func Generate(c *scan.Chain, u *fault.Universe, cfg GenConfig) *GenResult {
	g, err := GenerateFlow(context.Background(), c, u, cfg, nil)
	if err != nil {
		panic(fmt.Sprintf("atpg: Generate failed: %v", err))
	}
	return g
}

// GenerateFlow is Generate with cooperative cancellation and an optional
// campaign checkpoint journal. The flow is deterministic for a given
// (config, netlist): on resume it is re-executed from the start and every
// journaled fault-dropping campaign rehydrates instead of simulating, so
// a killed-and-resumed generation is bit-identical to an uninterrupted
// one. On cancellation the partial GenResult (with its campaign Stats so
// far) is returned alongside the error.
func GenerateFlow(ctx context.Context, c *scan.Chain, u *fault.Universe, cfg GenConfig, ck *fault.Checkpoint) (*GenResult, error) {
	defer obs.Span(ctx, "atpg_generate")()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sim := fault.NewSim(c, nil)
	n := c.N

	remaining := make([]bool, u.CountCollapsed())
	for i := range remaining {
		remaining[i] = true
	}
	nRemaining := len(remaining)
	detected := 0
	vectors := 0
	untestable, aborted := 0, 0

	// One campaign serves every dropWord pass, so per-worker scratch state
	// is allocated once. MaxFail=1: detection-only, the coverage loop never
	// needs more than the first failing bit.
	camp := fault.NewCampaign(sim, fault.CampaignConfig{Workers: cfg.Workers, MaxFail: 1})
	var campStats fault.Stats

	// partial assembles the result from whatever the flow has finished —
	// the complete answer on success, the progress record on interrupt.
	partial := func() *GenResult {
		res := &GenResult{
			Sim:        sim,
			Vectors:    vectors,
			Faults:     u.CountAll(),
			Collapsed:  u.CountCollapsed(),
			Detected:   detected,
			Untestable: untestable,
			Aborted:    aborted,
			ScanCells:  c.Cells(),
			Cycles:     c.TestCycles(vectors),
			Stats:      campStats,
		}
		if d := u.CountCollapsed() - untestable; d > 0 {
			res.Coverage = float64(detected) / float64(d)
		}
		return res
	}

	aliveIdx := make([]int, 0, nRemaining)
	aliveFaults := make([]netlist.Fault, 0, nRemaining)

	dropWord := func(w int) (int, error) {
		aliveIdx = aliveIdx[:0]
		aliveFaults = aliveFaults[:0]
		for i, alive := range remaining {
			if !alive {
				continue
			}
			aliveIdx = append(aliveIdx, i)
			aliveFaults = append(aliveFaults, u.Collapsed[i])
		}
		results, st, err := camp.RunWordsCheckpoint(ctx, ck, aliveFaults, w, w+1)
		campStats.Add(st)
		if err != nil {
			return 0, err
		}
		dropped := 0
		for k, res := range results {
			if res.Detected {
				remaining[aliveIdx[k]] = false
				nRemaining--
				detected++
				dropped++
			}
		}
		return dropped, nil
	}

	randomWord := func() *scan.Pattern {
		p := c.NewPattern(64)
		for i := range p.FFVals {
			p.FFVals[i] = rng.Uint64()
		}
		for i := range p.PIVals {
			p.PIVals[i] = rng.Uint64()
		}
		return p
	}

	// Phase 1: random patterns with fault dropping.
	useless := 0
	for w := 0; w < cfg.MaxRandomWords && nRemaining > 0 && useless < cfg.UselessLimit; w++ {
		sim.AddPattern(randomWord())
		vectors += 64
		d, err := dropWord(len(sim.Patterns) - 1)
		if err != nil {
			return partial(), err
		}
		if d == 0 {
			useless++
		} else {
			useless = 0
		}
	}

	// Phase 2: PODEM for survivors, packing cubes 64 to a word with random
	// X-fill. Each filled word is fault-simulated to drop secondaries.
	var cur *scan.Pattern
	curLanes := 0
	flush := func() error {
		if cur == nil || curLanes == 0 {
			return nil
		}
		cur.Lanes = curLanes
		sim.AddPattern(cur)
		vectors += curLanes
		_, err := dropWord(len(sim.Patterns) - 1)
		cur, curLanes = nil, 0
		return err
	}
	xfill := func() uint64 { return rng.Uint64() }
	for i := range remaining {
		if !remaining[i] {
			continue
		}
		// PODEM runs are serial CPU work outside the campaign engine; check
		// for cancellation between faults so a Ctrl-C lands promptly here
		// too.
		if err := ctx.Err(); err != nil {
			return partial(), context.Cause(ctx)
		}
		cube, res := Podem(n, u.Collapsed[i], cfg.MaxBacktracks)
		switch res {
		case Untestable:
			remaining[i] = false
			nRemaining--
			untestable++
			continue
		case Aborted:
			aborted++
			continue
		}
		if cur == nil {
			cur = c.NewPattern(0)
		}
		cube.Apply(cur, uint(curLanes), xfill)
		curLanes++
		if curLanes == 64 {
			if err := flush(); err != nil {
				return partial(), err
			}
			if !remaining[i] {
				// the cube's own word should have detected it; if random
				// fill masked it (can't for a true PODEM test), it stays
				// remaining and is counted aborted below
				continue
			}
			// self-detection is guaranteed by PODEM; mark defensively
			remaining[i] = false
			nRemaining--
			detected++
		} else {
			remaining[i] = false
			nRemaining--
			detected++
		}
	}
	if err := flush(); err != nil {
		return partial(), err
	}
	return partial(), nil
}

// CompactReverse performs reverse-order static compaction: vectors are
// dropped greedily (newest first) when the remaining set still detects
// every originally-detected fault. It returns the compacted vector count.
// The paper's vector counts come from a commercial tool with compaction;
// this pass approximates it. Each trial detection sweep is a parallel
// campaign with fault dropping (detection-only, workers <= 0 = all cores).
func CompactReverse(c *scan.Chain, u *fault.Universe, g *GenResult, workers int) int {
	n, err := CompactReverseContext(context.Background(), c, u, g, workers)
	if err != nil {
		panic(fmt.Sprintf("atpg: CompactReverse failed: %v", err))
	}
	return n
}

// CompactReverseContext is CompactReverse with cooperative cancellation:
// each trial detection sweep aborts at chunk granularity when ctx is
// cancelled, and the error carries the cancellation cause.
func CompactReverseContext(ctx context.Context, c *scan.Chain, u *fault.Universe, g *GenResult, workers int) (int, error) {
	// Build per-vector detection sets lazily is expensive; approximate by
	// word granularity: try dropping whole 64-lane words from the end.
	kept := make([]bool, len(g.Sim.Patterns))
	for i := range kept {
		kept[i] = true
	}
	detectedBy := func(words []bool) (int, error) {
		sim := fault.NewSim(c, nil)
		for w, k := range words {
			if k {
				sim.AddPattern(g.Sim.Patterns[w])
			}
		}
		camp := fault.NewCampaign(sim, fault.CampaignConfig{Workers: workers, Drop: true})
		results, _, err := camp.Run(ctx, u.Collapsed)
		if err != nil {
			return 0, err
		}
		n := 0
		for _, res := range results {
			if res.Detected {
				n++
			}
		}
		return n, nil
	}
	full, err := detectedBy(kept)
	if err != nil {
		return 0, err
	}
	for w := len(kept) - 1; w >= 0; w-- {
		kept[w] = false
		d, err := detectedBy(kept)
		if err != nil {
			return 0, err
		}
		if d < full {
			kept[w] = true
		}
	}
	vectors := 0
	for w, k := range kept {
		if k {
			vectors += g.Sim.Patterns[w].Lanes
		}
	}
	return vectors, nil
}
