// Package serve is the rescued batch daemon: the repo's long-running flows
// (ATPG/Table 3, fault-dictionary builds, isolation campaigns, YAT and IPC
// studies, Monte Carlo fab fleets) exposed as HTTP jobs over a bounded
// queue, with live NDJSON event streams, per-job cancellation, and a
// graceful drain that checkpoints running campaigns so an identical
// resubmission resumes them bit-identically.
//
// Every job renders through the same internal/flows runners the CLIs use,
// against a shared content-addressed artifact store — so a warm job's
// report is byte-identical to a cold one, and both are byte-identical to
// the corresponding command's output (what results/*.txt pin).
package serve

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rescue/internal/fault"
	"rescue/internal/flows"
	"rescue/internal/obs"
)

// Cancellation causes, distinguishable via context.Cause so the runner can
// map them to job states.
var (
	// ErrCanceled is the cause when a client DELETEs a job.
	ErrCanceled = errors.New("job canceled by client")
	// ErrDraining is the cause when the server is shutting down; running
	// campaigns flush their checkpoint journals before the job finishes.
	ErrDraining = errors.New("server draining")
)

// Config parameterizes a Server.
type Config struct {
	// QueueCap bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected with 429. 0 = 64.
	QueueCap int
	// Slots is the number of jobs running concurrently. 0 = 1: flows
	// parallelize internally, so one slot already saturates the cores.
	Slots int
	// Workers is the per-job default campaign concurrency (0 = all cores);
	// job params may override it.
	Workers int
	// CheckpointDir, when set, gives every checkpointable job a campaign
	// journal named by its spec digest: a drained job's journal is resumed
	// by the next identical submission. "" disables checkpointing.
	CheckpointDir string
	// Reg receives the server's metrics. nil = a private registry.
	Reg *obs.Registry
	// Kinds maps kind names to runners. nil = Kinds() (the built-in set).
	Kinds map[string]Runner
	// Logf, when set, receives one line per job transition.
	Logf func(format string, args ...any)
}

// Server owns the queue, the scheduler, and the artifact store.
type Server struct {
	cfg   Config
	kinds map[string]Runner
	store *flows.Store
	reg   *obs.Registry

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // insertion order, for listing
	nextID   int
	draining bool

	queue chan *Job
	wg    sync.WaitGroup // scheduler slots
	jobWG sync.WaitGroup // running jobs

	mQueued      *obs.Counter
	mRejected    *obs.Counter
	mSucceeded   *obs.Counter
	mFailed      *obs.Counter
	mCanceled    *obs.Counter
	mInterrupted *obs.Counter
	gQueueDepth  *obs.Gauge
	gRunning     *obs.Gauge
	hJobSeconds  *obs.Histogram
}

// New builds a Server and starts its scheduler slots.
func New(cfg Config) *Server {
	if cfg.QueueCap == 0 {
		cfg.QueueCap = 64
	}
	if cfg.Slots == 0 {
		cfg.Slots = 1
	}
	if cfg.Reg == nil {
		cfg.Reg = obs.NewRegistry()
	}
	kinds := cfg.Kinds
	if kinds == nil {
		kinds = Kinds()
	}
	s := &Server{
		cfg:   cfg,
		kinds: kinds,
		store: flows.NewStore(),
		reg:   cfg.Reg,
		jobs:  map[string]*Job{},
		queue: make(chan *Job, cfg.QueueCap),

		mQueued:      cfg.Reg.Counter("jobs_queued_total"),
		mRejected:    cfg.Reg.Counter("jobs_rejected_total"),
		mSucceeded:   cfg.Reg.Counter("jobs_succeeded_total"),
		mFailed:      cfg.Reg.Counter("jobs_failed_total"),
		mCanceled:    cfg.Reg.Counter("jobs_canceled_total"),
		mInterrupted: cfg.Reg.Counter("jobs_interrupted_total"),
		gQueueDepth:  cfg.Reg.Gauge("queue_depth"),
		gRunning:     cfg.Reg.Gauge("jobs_running"),
		hJobSeconds:  cfg.Reg.Histogram("job_seconds"),
	}
	cfg.Reg.RegisterFunc("queue_cap", func() float64 { return float64(s.cfg.QueueCap) })
	cfg.Reg.RegisterFunc("scheduler_slots", func() float64 { return float64(s.cfg.Slots) })
	cfg.Reg.RegisterFunc("artifact_cache_hits_total", func() float64 { return float64(s.store.Hits()) })
	cfg.Reg.RegisterFunc("artifact_cache_misses_total", func() float64 { return float64(s.store.Misses()) })
	cfg.Reg.RegisterFunc("artifact_cache_builds_total", func() float64 { return float64(s.store.Builds()) })
	cfg.Reg.RegisterFunc("artifact_cache_entries", func() float64 { return float64(s.store.Len()) })
	for i := 0; i < cfg.Slots; i++ {
		s.wg.Add(1)
		go s.slot()
	}
	return s
}

// Store exposes the artifact store (tests assert its hit/build counters).
func (s *Server) Store() *flows.Store { return s.store }

// Registry exposes the metrics registry backing /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Submit validates and enqueues a job. It returns ErrQueueFull when the
// queue is at capacity and ErrDraining after Drain began.
func (s *Server) Submit(spec Spec) (*Job, error) {
	if _, ok := s.kinds[spec.Kind]; !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, spec.Kind)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.nextID++
	j := newJob(fmt.Sprintf("j%06d", s.nextID), spec)
	select {
	case s.queue <- j:
	default:
		s.nextID--
		s.mu.Unlock()
		s.mRejected.Inc()
		return nil, ErrQueueFull
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.mu.Unlock()
	s.mQueued.Inc()
	s.gQueueDepth.Add(1)
	s.logf("job %s queued kind=%s", j.ID, spec.Kind)
	return j, nil
}

// Submission errors, mapped to HTTP statuses by the handler.
var (
	ErrQueueFull   = errors.New("job queue full")
	ErrUnknownKind = errors.New("unknown job kind")
)

// RetryAfter estimates how many seconds a 429'd client should wait before
// resubmitting: the time for the scheduler to drain the current queue,
// from the observed mean job duration — depth/slots jobs ahead of the
// retry, clamped to [1s, 60s]. With no completed jobs yet the estimate
// defaults to the 1-second floor.
func (s *Server) RetryAfter() int {
	count, sum, _, _ := s.hJobSeconds.Snapshot()
	mean := 1.0
	if count > 0 {
		mean = sum / float64(count)
	}
	depth := float64(s.gQueueDepth.Value() + s.gRunning.Value())
	secs := int(mean*depth/float64(s.cfg.Slots) + 0.5)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List snapshots every job in submission order.
func (s *Server) List() []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Snapshot, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].snapshot())
	}
	return out
}

// Cancel cancels a queued or running job. Queued jobs flip to canceled
// immediately (the slot skips them); running jobs get their context
// canceled with ErrCanceled and finish when the flow unwinds.
func (s *Server) Cancel(id string) (*Job, bool) {
	j, ok := s.Job(id)
	if !ok {
		return nil, false
	}
	j.mu.Lock()
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel(ErrCanceled)
		return j, true
	}
	if j.setState(StateCanceled, ErrCanceled.Error()) {
		s.mCanceled.Inc()
		s.logf("job %s canceled while queued", j.ID)
	}
	return j, true
}

// Drain stops accepting submissions, cancels running jobs with the drain
// cause — their campaigns finish in-flight chunks and flush checkpoint
// journals — lets queued jobs fail over to interrupted, and waits for the
// scheduler to go quiet. It is the SIGTERM path; rescued exits 0 after it
// returns.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	jobs := make([]*Job, 0, len(s.jobs))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	close(s.queue)

	for _, j := range jobs {
		j.mu.Lock()
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel(ErrDraining)
		} else if j.setState(StateInterrupted, ErrDraining.Error()) {
			// Still queued: the slot drains it from the channel (keeping the
			// depth gauge honest) and skips it once it sees the state.
			s.mInterrupted.Inc()
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

// slot is one scheduler worker: it owns at most one running job at a time.
func (s *Server) slot() {
	defer s.wg.Done()
	for j := range s.queue {
		s.gQueueDepth.Add(-1)
		s.runJob(j)
	}
}

// runJob drives one job through the runner.
func (s *Server) runJob(j *Job) {
	runner := s.kinds[j.Spec.Kind]

	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	j.mu.Lock()
	if j.state.Done() { // canceled while queued
		j.mu.Unlock()
		return
	}
	j.cancel = cancel
	j.mu.Unlock()

	if !j.setState(StateRunning, "") {
		return
	}
	s.jobWG.Add(1)
	defer s.jobWG.Done()
	s.gRunning.Add(1)
	defer s.gRunning.Add(-1)
	s.logf("job %s running", j.ID)
	start := time.Now()

	// Throttled progress events: at most one per percent of a campaign's
	// work (plus its completion), so streams stay light even for
	// million-fault campaigns. A flow runs many campaigns back to back;
	// completion resets the threshold for the next one.
	var lastPct int64 = -1
	ctx = fault.WithProgress(ctx, func(done, total int64) {
		pct := int64(0)
		if total > 0 {
			pct = 100 * done / total
		}
		j.mu.Lock()
		if pct > lastPct || done == total {
			lastPct = pct
			if done == total {
				lastPct = -1
			}
			j.appendLocked(Event{Type: "progress", Done: done, Total: total})
		}
		j.mu.Unlock()
	})
	ctx = obs.WithTracer(ctx, s.reg)

	ck, ckPath, err := s.openCheckpoint(j)
	if err != nil {
		j.setState(StateFailed, err.Error())
		s.mFailed.Inc()
		return
	}
	j.setCkPath(ckPath)

	out, runErr := runner(ctx, RunContext{
		Env:     flows.Env{Store: s.store, Ck: ck},
		Workers: s.cfg.Workers,
	}, j.Spec.Params)
	j.finishOutput(out)
	s.hJobSeconds.Observe(time.Since(start).Seconds())

	switch {
	case runErr == nil:
		if ckPath != "" {
			os.Remove(ckPath)
		}
		if j.setState(StateSucceeded, "") {
			s.mSucceeded.Inc()
		}
	case errors.Is(runErr, ErrCanceled):
		if j.setState(StateCanceled, ErrCanceled.Error()) {
			s.mCanceled.Inc()
		}
	case errors.Is(runErr, ErrDraining):
		if j.setState(StateInterrupted, ErrDraining.Error()) {
			s.mInterrupted.Inc()
		}
	default:
		if j.setState(StateFailed, runErr.Error()) {
			s.mFailed.Inc()
		}
	}
	sn := j.snapshot()
	s.logf("job %s %s (%s)", j.ID, sn.State, time.Since(start).Round(time.Millisecond))
}

// openCheckpoint opens the job's content-addressed campaign journal when
// checkpointing is configured and the kind runs campaigns. A journal left
// behind by a drained twin is resumed; a fresh path starts a new journal.
func (s *Server) openCheckpoint(j *Job) (*fault.Checkpoint, string, error) {
	if s.cfg.CheckpointDir == "" {
		return nil, "", nil
	}
	path := filepath.Join(s.cfg.CheckpointDir, specDigest(j.Spec)+".ck")
	_, statErr := os.Stat(path)
	resume := statErr == nil
	ck, err := fault.OpenCheckpoint(path, resume)
	if err != nil {
		return nil, "", fmt.Errorf("checkpoint: %w", err)
	}
	// The journal path already encodes the job's full identity (the spec
	// digest), so section matching can go by content: a warm-cache run
	// journals only the campaigns it actually simulated, and a cold resume
	// must find them regardless of position.
	ck.ContentAddressed()
	if resume {
		j.append(Event{Type: "output", Msg: "resuming from checkpoint journal"})
	}
	return ck, path, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// hashBytes is the digest primitive shared with the job identity.
func hashBytes(b []byte) []byte {
	sum := sha256.Sum256(b)
	return sum[:8]
}
