package diffcheck

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"rescue/internal/netlist"
)

// Failure records one seed whose property check failed, with the exact
// generator config that reproduces it.
type Failure struct {
	Seed uint64
	Cfg  netlist.RandomConfig
	Err  error
}

// Report summarizes a seed-range campaign.
type Report struct {
	Checked  int
	Failures []Failure
}

// MaxFailures caps how many failing seeds Run collects before stopping
// early — after a handful, more repros add noise, not signal.
const MaxFailures = 5

// Run checks seeds [lo, hi) in order, stopping early when the time budget
// (0 = unlimited) is exhausted, the context is cancelled, or MaxFailures
// seeds have failed. progress, when non-nil, is called before each seed.
// The returned error is non-nil only for interruption — property failures
// are reported in the Report, not as an error.
func Run(ctx context.Context, lo, hi uint64, budget time.Duration, opt Options, progress func(seed uint64)) (Report, error) {
	var rep Report
	start := time.Now()
	for seed := lo; seed < hi; seed++ {
		if err := ctx.Err(); err != nil {
			return rep, context.Cause(ctx)
		}
		if budget > 0 && time.Since(start) >= budget {
			break
		}
		if progress != nil {
			progress(seed)
		}
		if err := CheckSeed(ctx, seed, opt); err != nil {
			if ctx.Err() != nil {
				// the property run died because we were cancelled, not
				// because the property failed
				return rep, context.Cause(ctx)
			}
			rep.Failures = append(rep.Failures, Failure{Seed: seed, Cfg: ConfigForSeed(seed), Err: err})
			if len(rep.Failures) >= MaxFailures {
				rep.Checked++
				break
			}
		}
		rep.Checked++
	}
	return rep, nil
}

// Shrink greedily minimizes a failing config: each knob is repeatedly
// halved toward its floor as long as the shrunken circuit still fails
// (any property — the minimal repro need not fail the original way).
// Returns the smallest failing config found and its error.
func Shrink(ctx context.Context, f Failure, opt Options) Failure {
	cfg, lastErr := f.Cfg, f.Err
	knobs := []struct {
		get   func(*netlist.RandomConfig) *int
		floor int
	}{
		{func(c *netlist.RandomConfig) *int { return &c.Gates }, 1},
		{func(c *netlist.RandomConfig) *int { return &c.FFs }, 1},
		{func(c *netlist.RandomConfig) *int { return &c.Inputs }, 1},
		{func(c *netlist.RandomConfig) *int { return &c.Outputs }, 1},
		{func(c *netlist.RandomConfig) *int { return &c.Comps }, 1},
		{func(c *netlist.RandomConfig) *int { return &c.MaxFanIn }, 2},
	}
	for changed := true; changed && ctx.Err() == nil; {
		changed = false
		for _, k := range knobs {
			for ctx.Err() == nil {
				cur := *k.get(&cfg)
				next := cur / 2
				if next < k.floor {
					next = k.floor
				}
				if next == cur {
					break
				}
				try := cfg
				*k.get(&try) = next
				err := CheckConfig(ctx, try, opt)
				if err == nil || ctx.Err() != nil {
					break
				}
				cfg, lastErr, changed = try, err, true
			}
		}
	}
	return Failure{Seed: f.Seed, Cfg: cfg, Err: lastErr}
}

// WriteRepro dumps a failure into dir: the generated circuit as Verilog
// (seed-N.v) and a replay note with the config and the violated property
// (seed-N.txt). Returns the paths written.
func WriteRepro(dir string, f Failure) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	vPath := filepath.Join(dir, fmt.Sprintf("seed-%d.v", f.Seed))
	vf, err := os.Create(vPath)
	if err != nil {
		return nil, err
	}
	n := netlist.Random(f.Cfg)
	if err := n.WriteVerilog(vf); err != nil {
		vf.Close()
		return nil, err
	}
	if err := vf.Close(); err != nil {
		return nil, err
	}

	tPath := filepath.Join(dir, fmt.Sprintf("seed-%d.txt", f.Seed))
	note := fmt.Sprintf(
		"rescue-diffcheck failing seed %d\n\nconfig: %+v\n\nproperty violation:\n%v\n\nreplay:\n  rescue-diffcheck -seed %d\n",
		f.Seed, f.Cfg, f.Err, f.Seed)
	if err := os.WriteFile(tPath, []byte(note), 0o644); err != nil {
		return nil, err
	}
	return []string{vPath, tPath}, nil
}
