package workload

// Microbenchmarks returns small single-behavior kernels that isolate one
// microarchitectural mechanism each. They complement the SPEC2000
// stand-ins: where the big profiles mix effects, these pin them down, which
// makes them the right inputs for the ablation benchmarks and for sanity
// checks of simulator changes.
func Microbenchmarks() []Profile {
	return []Profile{
		{
			// pointer-chase: serial dependent loads missing the caches —
			// memory latency exposed, zero ILP, no issue pressure
			Name: "chase", LoadFrac: 0.55, StoreFrac: 0.02,
			BlockLen: 12, LoopWeight: 0.9, LoopTrip: 200, RandomBranches: 0.0,
			Footprint: 64 << 20, L1Frac: 0.05, L2Frac: 0.15, StrideFrac: 0.0,
			CodeFootprint: 4 << 10, DepDist: 0.3, BurstFrac: 0,
		},
		{
			// stream: unit-stride loads/stores, long blocks, perfect
			// branches — bandwidth-bound, high ILP, minimal replay exposure
			Name: "stream", LoadFrac: 0.35, StoreFrac: 0.15,
			BlockLen: 24, LoopWeight: 0.95, LoopTrip: 500, RandomBranches: 0.0,
			Footprint: 64 << 20, L1Frac: 0.5, L2Frac: 0.3, StrideFrac: 1.0,
			CodeFootprint: 4 << 10, DepDist: 5.0, BurstFrac: 0.1,
		},
		{
			// branch-torture: short blocks, half the branches random —
			// misprediction penalty (and Rescue's +2) exposed
			Name: "torture", LoadFrac: 0.10, StoreFrac: 0.05,
			BlockLen: 3, LoopWeight: 0.1, LoopTrip: 4, RandomBranches: 0.5,
			Footprint: 64 << 10, L1Frac: 0.99, L2Frac: 0.01, StrideFrac: 0.5,
			CodeFootprint: 16 << 10, DepDist: 3.0, BurstFrac: 0,
		},
		{
			// burst: alternating serial chains and wide independent bursts
			// — maximal stress on selection and the replay policy
			Name: "burst", LoadFrac: 0.15, StoreFrac: 0.05,
			BlockLen: 16, LoopWeight: 0.85, LoopTrip: 100, RandomBranches: 0.02,
			Footprint: 256 << 10, L1Frac: 0.98, L2Frac: 0.02, StrideFrac: 0.8,
			CodeFootprint: 8 << 10, DepDist: 1.2, BurstFrac: 0.7,
		},
		{
			// alu: cache-resident integer arithmetic — the high-IPC anchor
			Name: "alu", LoadFrac: 0.02, StoreFrac: 0.01,
			BlockLen: 20, LoopWeight: 0.9, LoopTrip: 300, RandomBranches: 0.0,
			Footprint: 16 << 10, L1Frac: 1, L2Frac: 0, StrideFrac: 1,
			CodeFootprint: 4 << 10, DepDist: 0.2, BurstFrac: 0,
		},
	}
}

// MicroByName finds a microbenchmark profile.
func MicroByName(name string) (Profile, bool) {
	for _, p := range Microbenchmarks() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
