// Package loadgen is a seeded, ServeGen-style load generator for the
// rescued batch daemon: it constructs a heterogeneous client population —
// per-client job-kind mixes over the serving kinds, Zipf-skewed request
// rates, Poisson arrivals with optional bursts, and a configurable
// cache-hit ratio realized by reusing vs. perturbing flow seeds — and
// compiles it into a deterministic request schedule.
//
// Determinism is the point: the same Config (seed included) always builds
// the identical schedule — same clients, same kinds, same arrival times,
// same request bodies — so latency measurements are comparable across
// commits and the CI SLO gate compares like with like. All randomness
// flows from Config.Seed through per-client derived sources; nothing in
// schedule construction reads the clock.
//
// The firing engine (Run) replays a schedule against a live daemon over
// real HTTP — submit, stream events to completion, back off on 429 by the
// server's Retry-After — and the report layer turns the recorded
// latencies into per-kind percentiles and SLO verdicts.
package loadgen

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Profile is one job-kind template in the population's traffic mix.
type Profile struct {
	// Kind is the serve job kind ("table3", "isolation", ...).
	Kind string
	// Weight is the kind's share of aggregate traffic (relative).
	Weight float64
	// Params is the canonical parameter set — the warm identity. Requests
	// that should hit the artifact cache submit exactly these params.
	Params map[string]any
	// SeedKey names the integer param whose perturbation changes the
	// kind's artifact identity (a cache miss). "" marks the kind
	// warm-only: every request reuses the canonical params.
	SeedKey string
}

// Config seeds a client population.
type Config struct {
	// Seed drives every random choice below. Same Config = same schedule.
	Seed int64
	// Clients is the population size.
	Clients int
	// Duration is the schedule horizon; arrivals past it are dropped.
	Duration time.Duration
	// RPS is the aggregate target arrival rate across all clients.
	RPS float64
	// Skew is the Zipf-like exponent over client rates: client i carries
	// weight (i+1)^-Skew. 0 = uniform; 1 ≈ classic Zipf (a few heavy
	// hitters, a long tail).
	Skew float64
	// HitRatio is the probability a request reuses its kind's canonical
	// seed (an artifact-cache hit once warmed) instead of perturbing it.
	HitRatio float64
	// BurstFrac is the fraction of clients with bursty arrivals: at each
	// Poisson epoch a bursty client emits a geometric burst of follow-up
	// requests instead of a single one.
	BurstFrac float64
	// BurstLen is the mean number of extra requests per burst epoch.
	// 0 = 3.
	BurstLen float64
	// BurstGap spaces requests within one burst. 0 = 5ms.
	BurstGap time.Duration
	// Profiles is the kind mix. Required.
	Profiles []Profile
	// Tenant, when set, tags every generated request with this tenant
	// identity (spec "tenant" field + X-Rescue-Client header at fire
	// time). "" leaves requests untagged — the schedule bytes, and
	// therefore the digest, are identical to pre-tenancy builds.
	Tenant string
	// Class, when set, tags every request with a priority class
	// ("interactive" or "batch").
	Class string
}

func (c *Config) setDefaults() error {
	if c.Clients < 1 {
		return fmt.Errorf("loadgen: need >= 1 client, got %d", c.Clients)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("loadgen: need a positive duration, got %v", c.Duration)
	}
	if c.RPS <= 0 {
		return fmt.Errorf("loadgen: need a positive rps, got %g", c.RPS)
	}
	if c.HitRatio < 0 || c.HitRatio > 1 {
		return fmt.Errorf("loadgen: hit ratio must be in [0,1], got %g", c.HitRatio)
	}
	if c.Skew < 0 {
		return fmt.Errorf("loadgen: skew must be >= 0, got %g", c.Skew)
	}
	if c.BurstFrac < 0 || c.BurstFrac > 1 {
		return fmt.Errorf("loadgen: burst fraction must be in [0,1], got %g", c.BurstFrac)
	}
	if len(c.Profiles) == 0 {
		return fmt.Errorf("loadgen: need at least one kind profile")
	}
	total := 0.0
	for _, p := range c.Profiles {
		if p.Kind == "" || p.Weight < 0 {
			return fmt.Errorf("loadgen: bad profile %+v", p)
		}
		total += p.Weight
	}
	if total <= 0 {
		return fmt.Errorf("loadgen: profile weights sum to %g, need > 0", total)
	}
	if c.BurstLen == 0 {
		c.BurstLen = 3
	}
	if c.BurstGap == 0 {
		c.BurstGap = 5 * time.Millisecond
	}
	return nil
}

// Client is one member of the population.
type Client struct {
	ID int `json:"id"`
	// Rate is the client's Poisson arrival rate in requests/second.
	Rate float64 `json:"rate"`
	// Bursty clients emit geometric bursts at each arrival epoch.
	Bursty bool `json:"bursty"`
	// Mix is the client's per-profile kind distribution (sums to 1). Each
	// client leans heavily on one favorite kind — ServeGen's client
	// heterogeneity — with the rest of the mass spread by global weight.
	Mix []float64 `json:"mix"`
	// Tenant is the identity this client fires under (X-Rescue-Client).
	// omitempty: untagged populations serialize — and digest — exactly as
	// they did before multi-tenancy existed.
	Tenant string `json:"tenant,omitempty"`
}

// Request is one scheduled job submission.
type Request struct {
	Seq    int           `json:"seq"`
	At     time.Duration `json:"at"`
	Client int           `json:"client"`
	Kind   string        `json:"kind"`
	// Warm marks requests that submit their kind's canonical params and
	// should therefore be artifact-cache hits once the cache is primed.
	Warm bool `json:"warm"`
	// Tenant and Class ride as X-Rescue-Client / X-Rescue-Class headers at
	// fire time — never in Body, so tagging a workload doesn't perturb the
	// jobs' artifact identities. omitempty keeps untagged schedules
	// byte-identical (and digest-identical) to pre-tenancy builds.
	Tenant string `json:"tenant,omitempty"`
	Class  string `json:"class,omitempty"`
	// Body is the full POST /jobs payload.
	Body json.RawMessage `json:"body"`
}

// Schedule is a compiled workload: the population and its time-ordered
// request list, plus each profile's canonical body for cache prewarming.
type Schedule struct {
	Clients  []Client
	Requests []Request
	// Canonical maps kind -> the warm-identity POST body.
	Canonical map[string]json.RawMessage
	// Seeds holds each client's derived arrival seed. The firing loop
	// reuses it to jitter 429 backoff deterministically per request, so two
	// runs of one schedule back off identically. Excluded from Digest —
	// the seeds are derived state, not workload identity.
	Seeds []int64
}

// affinity is how much of a client's kind mix concentrates on its
// favorite profile; the remainder follows the global weights.
const affinity = 0.7

// Build compiles a Config into its deterministic Schedule.
func Build(cfg Config) (*Schedule, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Global kind distribution.
	global := make([]float64, len(cfg.Profiles))
	total := 0.0
	for i, p := range cfg.Profiles {
		total += p.Weight
		global[i] = p.Weight
	}
	for i := range global {
		global[i] /= total
	}

	// Population: Zipf-skewed rates, favorite-kind mixes, burstiness, and
	// one derived arrival seed per client (drawn in client order, so each
	// client's arrival stream is independent of the others' sample counts).
	sch := &Schedule{Canonical: map[string]json.RawMessage{}}
	weightSum := 0.0
	weights := make([]float64, cfg.Clients)
	for i := range weights {
		weights[i] = math.Pow(float64(i+1), -cfg.Skew)
		weightSum += weights[i]
	}
	seeds := make([]int64, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		fav := sample(rng.Float64(), global)
		mix := make([]float64, len(global))
		for p := range mix {
			mix[p] = (1 - affinity) * global[p]
			if p == fav {
				mix[p] += affinity
			}
		}
		sch.Clients = append(sch.Clients, Client{
			ID:     i,
			Rate:   cfg.RPS * weights[i] / weightSum,
			Bursty: rng.Float64() < cfg.BurstFrac,
			Mix:    mix,
			Tenant: cfg.Tenant,
		})
		seeds[i] = rng.Int63()
	}
	sch.Seeds = seeds

	for i, p := range cfg.Profiles {
		body, err := specBody(p.Kind, p.Params)
		if err != nil {
			return nil, fmt.Errorf("loadgen: profile %d (%s): %w", i, p.Kind, err)
		}
		sch.Canonical[p.Kind] = body
	}

	// Arrival streams. Each client owns a derived RNG; bursty clients
	// follow every Poisson epoch with a geometric train of extra requests.
	for i := range sch.Clients {
		c := &sch.Clients[i]
		crng := rand.New(rand.NewSource(seeds[i]))
		t := time.Duration(0)
		for {
			t += time.Duration(crng.ExpFloat64() / c.Rate * float64(time.Second))
			if t >= cfg.Duration {
				break
			}
			if err := emit(sch, cfg, crng, c, t); err != nil {
				return nil, err
			}
			if c.Bursty {
				extra := 0
				for crng.Float64() < cfg.BurstLen/(cfg.BurstLen+1) {
					extra++
				}
				for k := 1; k <= extra; k++ {
					bt := t + time.Duration(k)*cfg.BurstGap
					if bt >= cfg.Duration {
						break
					}
					if err := emit(sch, cfg, crng, c, bt); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	sort.SliceStable(sch.Requests, func(a, b int) bool {
		ra, rb := sch.Requests[a], sch.Requests[b]
		if ra.At != rb.At {
			return ra.At < rb.At
		}
		return ra.Client < rb.Client
	})
	for i := range sch.Requests {
		sch.Requests[i].Seq = i + 1
	}
	return sch, nil
}

// emit appends one request at time t for client c: kind by the client's
// mix, warm/cold by the hit ratio, cold seeds perturbed uniquely.
func emit(sch *Schedule, cfg Config, crng *rand.Rand, c *Client, t time.Duration) error {
	pi := sample(crng.Float64(), c.Mix)
	p := cfg.Profiles[pi]
	warm := p.SeedKey == "" || crng.Float64() < cfg.HitRatio
	body := sch.Canonical[p.Kind]
	if !warm {
		// A fresh seed far above any canonical one (canonical flow seeds
		// are small constants), so a cold request never aliases a warm
		// identity or, with overwhelming probability, another cold one.
		params := map[string]any{}
		for k, v := range p.Params {
			params[k] = v
		}
		params[p.SeedKey] = int64(1)<<32 + crng.Int63n(1<<62)
		b, err := specBody(p.Kind, params)
		if err != nil {
			return fmt.Errorf("loadgen: cold body for %s: %w", p.Kind, err)
		}
		body = b
	}
	sch.Requests = append(sch.Requests, Request{
		At:     t,
		Client: c.ID,
		Kind:   p.Kind,
		Warm:   warm,
		Tenant: cfg.Tenant,
		Class:  cfg.Class,
		Body:   body,
	})
	return nil
}

// Merge combines schedules built from separate Configs — typically one
// per tenant — into a single time-ordered workload. Client IDs are
// reindexed by offset (requests follow), seqs are reassigned over the
// merged arrival order, canonicals are unioned, and Seeds concatenate in
// client order so per-request backoff jitter stays deterministic.
func Merge(schs ...*Schedule) *Schedule {
	out := &Schedule{Canonical: map[string]json.RawMessage{}}
	for _, s := range schs {
		offset := len(out.Clients)
		for _, c := range s.Clients {
			c.ID += offset
			out.Clients = append(out.Clients, c)
		}
		out.Seeds = append(out.Seeds, s.Seeds...)
		for _, r := range s.Requests {
			r.Client += offset
			out.Requests = append(out.Requests, r)
		}
		for k, v := range s.Canonical {
			out.Canonical[k] = v
		}
	}
	sort.SliceStable(out.Requests, func(a, b int) bool {
		ra, rb := out.Requests[a], out.Requests[b]
		if ra.At != rb.At {
			return ra.At < rb.At
		}
		return ra.Client < rb.Client
	})
	for i := range out.Requests {
		out.Requests[i].Seq = i + 1
	}
	return out
}

// sample returns the index of the bucket u ∈ [0,1) falls into for a
// normalized weight vector.
func sample(u float64, weights []float64) int {
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// specBody renders a POST /jobs payload. encoding/json sorts map keys, so
// identical params always produce identical bytes — which is what makes a
// warm request's spec digest match its twin's.
func specBody(kind string, params map[string]any) (json.RawMessage, error) {
	type spec struct {
		Kind   string         `json:"kind"`
		Params map[string]any `json:"params,omitempty"`
	}
	return json.Marshal(spec{Kind: kind, Params: params})
}

// Digest is a stable fingerprint of the compiled schedule — clients,
// kinds, arrival times, and request bodies all count. Two runs are
// comparable iff their digests match.
func (s *Schedule) Digest() string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	enc.Encode(s.Clients)
	enc.Encode(s.Requests)
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

// SmallMix is the default small-config traffic mix: every serving kind,
// weighted toward the cheap ones, with cold traffic (perturbed seeds)
// enabled on the kinds whose artifact rebuild is campaign-sized rather
// than ATPG-sized — isolation re-runs its sampling campaign (~0.1s small)
// and fab re-manufactures its fleet (~2s small), while a perturbed table3
// seed would regenerate the full test set (~12s) per request.
func SmallMix() []Profile {
	return []Profile{
		{Kind: "table3", Weight: 3, Params: map[string]any{"small": true}},
		{Kind: "dict", Weight: 1, Params: map[string]any{"small": true}},
		{Kind: "isolation", Weight: 3, SeedKey: "seed",
			Params: map[string]any{"small": true, "perStage": 50}},
		{Kind: "fab", Weight: 2, SeedKey: "seed",
			Params: map[string]any{"small": true, "dies": 100, "warmup": 500, "commit": 2000}},
		{Kind: "yat", Weight: 1,
			Params: map[string]any{"bench": "gcc", "warmup": 500, "commit": 2000, "stagnate": 180}},
		// A single-point design-space sweep: warm traffic reuses every
		// artifact; a perturbed seed re-runs only the fleet campaign (the
		// netlist/ATPG/IPC artifacts are seed-independent).
		{Kind: "sweep", Weight: 1, SeedKey: "seed",
			Params: map[string]any{"presets": []any{"paper"}, "small": true,
				"dies": 40, "warmup": 100, "commit": 500}},
	}
}
