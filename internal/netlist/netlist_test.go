package netlist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGateTruthTables(t *testing.T) {
	cases := []struct {
		kind GateKind
		ins  []uint64
		want uint64
	}{
		{And, []uint64{0b1100, 0b1010}, 0b1000},
		{Or, []uint64{0b1100, 0b1010}, 0b1110},
		{Nand, []uint64{0b1100, 0b1010}, ^uint64(0b1000)},
		{Nor, []uint64{0b1100, 0b1010}, ^uint64(0b1110)},
		{Xor, []uint64{0b1100, 0b1010}, 0b0110},
		{Xnor, []uint64{0b1100, 0b1010}, ^uint64(0b0110)},
		{Not, []uint64{0b1100}, ^uint64(0b1100)},
		{Buf, []uint64{0b1100}, 0b1100},
		// Mux2: sel, a, b -> sel ? b : a
		{Mux2, []uint64{0b1100, 0b1010, 0b0110}, 0b0110&0b1100 | 0b1010&^uint64(0b1100)},
		{Const0, nil, 0},
		{Const1, nil, ^uint64(0)},
	}
	for _, c := range cases {
		if got := evalGate(c.kind, c.ins); got != c.want {
			t.Errorf("%v(%b) = %b, want %b", c.kind, c.ins, got, c.want)
		}
	}
}

func TestBuilderAndEval(t *testing.T) {
	n := New("adder1")
	a := n.Input("a")
	b := n.Input("b")
	cin := n.Input("cin")
	sum := n.Xor(n.Xor(a, b), cin)
	carry := n.Or(n.And(a, b), n.And(n.Xor(a, b), cin))
	n.Output(sum, "sum")
	n.Output(carry, "carry")
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.NewState()
	// exhaustive over lanes: lane index bit0=a, bit1=b, bit2=cin
	var av, bv, cv uint64
	for lane := 0; lane < 8; lane++ {
		if lane&1 != 0 {
			av |= 1 << lane
		}
		if lane&2 != 0 {
			bv |= 1 << lane
		}
		if lane&4 != 0 {
			cv |= 1 << lane
		}
	}
	s.Set(a, av)
	s.Set(b, bv)
	s.Set(cin, cv)
	s.EvalComb(NoFault)
	for lane := 0; lane < 8; lane++ {
		ai, bi, ci := lane&1, (lane>>1)&1, (lane>>2)&1
		wantSum := (ai + bi + ci) & 1
		wantCarry := (ai + bi + ci) >> 1
		if got := int(s.Get(sum)>>lane) & 1; got != wantSum {
			t.Errorf("lane %d: sum=%d want %d", lane, got, wantSum)
		}
		if got := int(s.Get(carry)>>lane) & 1; got != wantCarry {
			t.Errorf("lane %d: carry=%d want %d", lane, got, wantCarry)
		}
	}
}

func TestFFCaptureAndCycle(t *testing.T) {
	n := New("shift2")
	in := n.Input("in")
	q0 := n.AddFF(in, "q0")
	q1 := n.AddFF(q0, "q1")
	n.Output(q1, "out")
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	s := n.NewState()
	s.Set(in, 1)
	s.Cycle(NoFault)
	if s.Get(q0) != 1 || s.Get(q1) != 0 {
		t.Fatalf("after 1 cycle: q0=%d q1=%d", s.Get(q0), s.Get(q1))
	}
	s.Set(in, 0)
	s.Cycle(NoFault)
	if s.Get(q0) != 0 || s.Get(q1) != 1 {
		t.Fatalf("after 2 cycles: q0=%d q1=%d", s.Get(q0), s.Get(q1))
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	n := New("loop")
	a := n.Input("a")
	// build a cycle: g2 reads g1, g1 reads g2 — construct via placeholder
	g1out := n.And(a, a) // temporarily self-consistent
	g2out := n.Or(g1out, a)
	// rewire g1 to read g2's output, creating a loop
	n.Gates[0].In[1] = g2out
	n.Output(g2out, "o")
	if err := n.Validate(); err == nil {
		t.Fatal("expected combinational cycle error")
	}
}

func TestStuckAtInjection(t *testing.T) {
	n := New("and2")
	a := n.Input("a")
	b := n.Input("b")
	o := n.And(a, b)
	n.Output(o, "o")
	s := n.NewState()
	s.Set(a, ^uint64(0))
	s.Set(b, ^uint64(0))

	s.EvalComb(Fault{Gate: 0, FF: -1, Pin: -1, StuckAt1: false})
	if s.Get(o) != 0 {
		t.Errorf("output sa0: got %x", s.Get(o))
	}
	s.EvalComb(Fault{Gate: 0, FF: -1, Pin: 0, StuckAt1: false})
	if s.Get(o) != 0 {
		t.Errorf("input sa0: got %x", s.Get(o))
	}
	s.Set(a, 0)
	s.EvalComb(Fault{Gate: 0, FF: -1, Pin: 0, StuckAt1: true})
	if s.Get(o) != ^uint64(0) {
		t.Errorf("input sa1 should mask a=0: got %x", s.Get(o))
	}
}

func TestFFOutputFault(t *testing.T) {
	n := New("ffq")
	in := n.Input("in")
	q := n.AddFF(in, "q")
	o := n.Buf(q)
	n.Output(o, "o")
	s := n.NewState()
	s.Set(in, ^uint64(0))
	f := Fault{Gate: -1, FF: 0, Pin: -1, StuckAt1: false}
	s.Cycle(f) // capture 1 but Q stuck at 0
	if s.Get(q) != 0 {
		t.Errorf("stuck FF q = %x, want 0", s.Get(q))
	}
	s.EvalComb(f)
	if s.Get(o) != 0 {
		t.Errorf("buffered stuck q = %x, want 0", s.Get(o))
	}
}

func TestFanInComps(t *testing.T) {
	// Figure 2b of the paper: LCM -> SRS -> {LCX, LCY} -> SRT -> LCN
	n := New("fig2b")
	a := n.Input("a")
	b := n.Input("b")
	n.Component("LCM")
	m := n.And(a, b)
	srs := n.AddFF(m, "SRS")
	n.Component("LCX")
	x := n.Xor(srs, a)
	n.Component("LCY")
	y := n.Or(srs, b)
	n.Component("SRT")
	srtX := n.AddFF(x, "SRT.x")
	srtY := n.AddFF(y, "SRT.y")
	n.Component("LCN")
	o := n.And(srtX, srtY)
	n.Output(o, "out")
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	cones := n.FanInComps()
	pts := n.ObsPoints()
	nameSets := map[string][]string{}
	for i, p := range pts {
		var key string
		if p.FF >= 0 {
			key = n.FFs[p.FF].Name
		} else {
			key = "out"
		}
		var comps []string
		for _, c := range cones[i] {
			comps = append(comps, n.CompName(c))
		}
		nameSets[key] = comps
	}
	check := func(key string, want ...string) {
		t.Helper()
		got := nameSets[key]
		if len(got) != len(want) {
			t.Fatalf("%s: fan-in comps %v, want %v", key, got, want)
		}
		wantSet := map[string]bool{}
		for _, w := range want {
			wantSet[w] = true
		}
		for _, g := range got {
			if !wantSet[g] {
				t.Fatalf("%s: fan-in comps %v, want %v", key, got, want)
			}
		}
	}
	check("SRS", "LCM")
	check("SRT.x", "LCX")
	check("SRT.y", "LCY")
	check("out", "LCN")
}

func TestForwardCone(t *testing.T) {
	n := New("cone")
	a := n.Input("a")
	b := n.Input("b")
	x := n.And(a, b) // gate 0
	y := n.Or(x, a)  // gate 1, in cone of 0
	z := n.Xor(a, b) // gate 2, NOT in cone of 0
	w := n.And(y, z) // gate 3, in cone of 0
	n.Output(w, "w")
	cone := n.ForwardCone(Fault{Gate: 0, FF: -1, Pin: -1})
	want := map[GateID]bool{0: true, 1: true, 3: true}
	if len(cone) != len(want) {
		t.Fatalf("cone = %v, want gates 0,1,3", cone)
	}
	for _, g := range cone {
		if !want[g] {
			t.Fatalf("cone = %v contains unexpected gate %d", cone, g)
		}
	}
	_ = z
}

// Property: evaluating the same netlist twice from the same state is
// deterministic, and pattern lanes are independent (evaluating a single
// lane alone gives the same value as that lane within a 64-wide word).
func TestLaneIndependenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	buildRandom := func(seed int64) (*Netlist, []NetID) {
		r := rand.New(rand.NewSource(seed))
		n := New("rand")
		nets := []NetID{}
		for i := 0; i < 6; i++ {
			nets = append(nets, n.Input("i"))
		}
		for g := 0; g < 40; g++ {
			k := GateKind(r.Intn(int(Mux2) + 1))
			pick := func() NetID { return nets[r.Intn(len(nets))] }
			var out NetID
			switch k {
			case Not, Buf:
				out = n.AddGate(k, pick())
			case Mux2:
				out = n.AddGate(k, pick(), pick(), pick())
			default:
				out = n.AddGate(k, pick(), pick())
			}
			nets = append(nets, out)
		}
		n.Output(nets[len(nets)-1], "o")
		return n, nets
	}
	f := func(seed int64, stim [6]uint64) bool {
		n, _ := buildRandom(seed % 1000)
		if err := n.Validate(); err != nil {
			return false
		}
		s := n.NewState()
		for i, in := range n.Inputs {
			s.Set(in, stim[i])
		}
		s.EvalComb(NoFault)
		wide := s.Get(n.Outputs[0])
		// now evaluate lane 13 alone
		lane := uint(13)
		s2 := n.NewState()
		for i, in := range n.Inputs {
			s2.Set(in, (stim[i]>>lane)&1)
		}
		s2.EvalComb(NoFault)
		return (wide>>lane)&1 == s2.Get(n.Outputs[0])&1
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestAllFaultSitesCount(t *testing.T) {
	n := New("c")
	a := n.Input("a")
	b := n.Input("b")
	x := n.And(a, b)
	q := n.AddFF(x, "q")
	n.Output(q, "o")
	sites := n.AllFaultSites()
	// AND gate: out + 2 pins = 3 sites * 2 polarities = 6; FF: 2
	if len(sites) != 8 {
		t.Fatalf("got %d fault sites, want 8", len(sites))
	}
}

func TestStats(t *testing.T) {
	n := New("s")
	a := n.Input("a")
	n.Component("X")
	x := n.Not(a)
	n.Component("Y")
	y := n.And(x, a)
	n.AddFF(y, "q")
	n.Output(y, "o")
	st := n.Stats()
	if st.Gates != 2 || st.FFs != 1 || st.Inputs != 1 || st.Outputs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ByComp["X"] != 1 || st.ByComp["Y"] != 1 {
		t.Fatalf("by-comp = %v", st.ByComp)
	}
	used := n.ComponentsUsed()
	if len(used) != 2 {
		t.Fatalf("components used = %v", used)
	}
}
