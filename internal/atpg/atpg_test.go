package atpg

import (
	"math/rand"
	"testing"

	"rescue/internal/fault"
	"rescue/internal/netlist"
	"rescue/internal/scan"
)

func TestV3Ops(t *testing.T) {
	if and3(One, Zero) != Zero || and3(One, One) != One || and3(X, One) != X || and3(X, Zero) != Zero {
		t.Fatal("and3 truth table")
	}
	if or3(Zero, One) != One || or3(Zero, Zero) != Zero || or3(X, Zero) != X || or3(X, One) != One {
		t.Fatal("or3 truth table")
	}
	if xor3(One, One) != Zero || xor3(One, Zero) != One || xor3(X, One) != X {
		t.Fatal("xor3 truth table")
	}
	if not3(X) != X || not3(One) != Zero || not3(Zero) != One {
		t.Fatal("not3 truth table")
	}
	if mux3(Zero, One, Zero) != One || mux3(One, One, Zero) != Zero ||
		mux3(X, One, One) != One || mux3(X, One, Zero) != X {
		t.Fatal("mux3 truth table")
	}
}

// applyCube converts a PODEM cube into a 1-lane scan pattern (X -> 0).
func applyCube(c *scan.Chain, cube Cube) *scan.Pattern {
	p := c.NewPattern(1)
	for i, v := range cube.PI {
		if v == One {
			p.PIVals[i] = 1
		}
	}
	for i, v := range cube.FF {
		if v == One {
			p.FFVals[i] = 1
		}
	}
	return p
}

func buildPipe() *netlist.Netlist {
	n := netlist.New("fig2b")
	a := n.Input("a")
	b := n.Input("b")
	n.Component("LCM")
	m := n.Nand(a, b)
	srs := n.AddFF(m, "SRS")
	n.Component("LCX")
	x := n.Xor(srs, a)
	n.Component("LCY")
	y := n.Or(srs, b)
	n.Component("SRT")
	sx := n.AddFF(x, "SRT.x")
	sy := n.AddFF(y, "SRT.y")
	n.Component("LCN")
	o := n.And(sx, sy)
	n.Output(o, "out")
	return n
}

// randomNetlist builds a random sequential circuit that is structurally
// valid (no combinational cycles).
func randomNetlist(seed int64, gates int) *netlist.Netlist {
	r := rand.New(rand.NewSource(seed))
	n := netlist.New("rand")
	var nets []netlist.NetID
	for i := 0; i < 8; i++ {
		nets = append(nets, n.Input("i"))
	}
	// a few FFs reading early nets
	for i := 0; i < 6; i++ {
		q := n.AddFF(nets[r.Intn(len(nets))], "q")
		nets = append(nets, q)
	}
	for g := 0; g < gates; g++ {
		k := netlist.GateKind(r.Intn(int(netlist.Mux2) + 1))
		pick := func() netlist.NetID { return nets[r.Intn(len(nets))] }
		var out netlist.NetID
		switch k {
		case netlist.Not, netlist.Buf:
			out = n.AddGate(k, pick())
		case netlist.Mux2:
			out = n.AddGate(k, pick(), pick(), pick())
		default:
			out = n.AddGate(k, pick(), pick())
		}
		nets = append(nets, out)
	}
	// sinks: some FFs and outputs so most logic is observable
	for i := 0; i < 6; i++ {
		n.AddFF(nets[len(nets)-1-i], "s")
	}
	n.Output(nets[len(nets)-1], "o")
	return n
}

func TestPodemDetectsSimpleFaults(t *testing.T) {
	n := buildPipe()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	c, _ := scan.Insert(n, 1)
	u := fault.NewUniverse(n)
	for _, f := range u.Collapsed {
		cube, res := Podem(n, f, 50)
		if res != Detected {
			t.Errorf("fault %v: %v, want detected", f, res)
			continue
		}
		// verify by fault simulation
		sim := fault.NewSim(c, []*scan.Pattern{applyCube(c, cube)})
		if !sim.Run(f, 1).Detected {
			t.Errorf("fault %v: PODEM cube does not detect it", f)
		}
	}
}

func TestPodemUntestableRedundantFault(t *testing.T) {
	// o = a AND (a OR b): the OR output sa1 is undetectable (redundant)
	n := netlist.New("red")
	a := n.Input("a")
	b := n.Input("b")
	orOut := n.Or(a, b)
	o := n.And(a, orOut)
	n.AddFF(o, "q")
	n.Output(o, "o")
	f := netlist.Fault{Gate: 0, FF: -1, Pin: -1, StuckAt1: true} // OR out sa1
	_, res := Podem(n, f, 200)
	if res != Untestable {
		t.Fatalf("redundant fault classified %v, want untestable", res)
	}
}

func TestPodemAgreesWithExhaustiveSimulation(t *testing.T) {
	// On random circuits: whenever PODEM says Detected the cube must work;
	// whenever it says Untestable, exhaustive simulation over all PI/FF
	// assignments must find no detecting pattern.
	smallRandom := func(seed int64, gates int) *netlist.Netlist {
		r := rand.New(rand.NewSource(seed))
		n := netlist.New("small")
		var nets []netlist.NetID
		for i := 0; i < 5; i++ {
			nets = append(nets, n.Input("i"))
		}
		for i := 0; i < 3; i++ {
			nets = append(nets, n.AddFF(nets[r.Intn(len(nets))], "q"))
		}
		for g := 0; g < gates; g++ {
			k := netlist.GateKind(r.Intn(int(netlist.Mux2) + 1))
			pick := func() netlist.NetID { return nets[r.Intn(len(nets))] }
			var out netlist.NetID
			switch k {
			case netlist.Not, netlist.Buf:
				out = n.AddGate(k, pick())
			case netlist.Mux2:
				out = n.AddGate(k, pick(), pick(), pick())
			default:
				out = n.AddGate(k, pick(), pick())
			}
			nets = append(nets, out)
		}
		for i := 0; i < 3; i++ {
			n.AddFF(nets[len(nets)-1-i], "s")
		}
		n.Output(nets[len(nets)-1], "o")
		return n
	}
	for seed := int64(0); seed < 6; seed++ {
		n := smallRandom(seed, 25)
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
		c, _ := scan.Insert(n, 1)
		u := fault.NewUniverse(n)
		nCtl := len(n.Inputs) + n.NumFFs()
		if nCtl > 16 {
			t.Fatalf("circuit too wide for exhaustive check: %d", nCtl)
		}
		// exhaustive pattern set
		var pats []*scan.Pattern
		total := 1 << uint(nCtl)
		for base := 0; base < total; base += 64 {
			p := c.NewPattern(64)
			if total-base < 64 {
				p.Lanes = total - base
			}
			for lane := 0; lane < p.Lanes; lane++ {
				v := base + lane
				for i := range p.PIVals {
					if v&(1<<uint(i)) != 0 {
						p.PIVals[i] |= 1 << uint(lane)
					}
				}
				for i := range p.FFVals {
					if v&(1<<uint(len(p.PIVals)+i)) != 0 {
						p.FFVals[i] |= 1 << uint(lane)
					}
				}
			}
			pats = append(pats, p)
		}
		sim := fault.NewSim(c, pats)
		for i, f := range u.Collapsed {
			if i%7 != 0 { // sample for speed
				continue
			}
			cube, res := Podem(n, f, 1000)
			exhaustive := sim.Run(f, 1).Detected
			switch res {
			case Detected:
				one := fault.NewSim(c, []*scan.Pattern{applyCube(c, cube)})
				if !one.Run(f, 1).Detected {
					t.Errorf("seed %d fault %v: bogus PODEM cube", seed, f)
				}
				if !exhaustive {
					t.Errorf("seed %d fault %v: PODEM detected but exhaustive says untestable", seed, f)
				}
			case Untestable:
				if exhaustive {
					t.Errorf("seed %d fault %v: PODEM untestable but a pattern exists", seed, f)
				}
			}
		}
	}
}

func TestGenerateFullCoverage(t *testing.T) {
	n := buildPipe()
	c, _ := scan.Insert(n, 1)
	u := fault.NewUniverse(n)
	g := Generate(c, u, DefaultGenConfig())
	if g.Coverage < 0.999 {
		t.Fatalf("coverage = %.4f, want ~1.0 (aborted=%d)", g.Coverage, g.Aborted)
	}
	if g.Vectors <= 0 || g.Cycles <= 0 {
		t.Fatalf("vectors=%d cycles=%d", g.Vectors, g.Cycles)
	}
	if g.ScanCells != 3 {
		t.Fatalf("scan cells = %d, want 3", g.ScanCells)
	}
}

func TestGenerateOnRandomCircuits(t *testing.T) {
	for seed := int64(10); seed < 13; seed++ {
		n := randomNetlist(seed, 120)
		if err := n.Validate(); err != nil {
			t.Fatal(err)
		}
		c, _ := scan.Insert(n, 1)
		u := fault.NewUniverse(n)
		g := Generate(c, u, DefaultGenConfig())
		if g.Coverage < 0.99 {
			t.Errorf("seed %d: coverage %.3f < 0.99 (untestable=%d aborted=%d)",
				seed, g.Coverage, g.Untestable, g.Aborted)
		}
		// detected + untestable + aborted must account for all collapsed faults
		if g.Detected+g.Untestable+g.Aborted != g.Collapsed {
			t.Errorf("seed %d: %d+%d+%d != %d", seed,
				g.Detected, g.Untestable, g.Aborted, g.Collapsed)
		}
	}
}

func TestGenerateCyclesAccounting(t *testing.T) {
	n := buildPipe()
	c, _ := scan.Insert(n, 1)
	u := fault.NewUniverse(n)
	g := Generate(c, u, DefaultGenConfig())
	if want := c.TestCycles(g.Vectors); g.Cycles != want {
		t.Fatalf("cycles = %d, want %d", g.Cycles, want)
	}
}
