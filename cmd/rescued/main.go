// Command rescued serves the repo's flows as HTTP batch jobs: ATPG
// (Table 3), fault-dictionary builds, isolation campaigns, YAT studies,
// and Monte Carlo fab fleets, over a bounded queue with live NDJSON event
// streams, per-job cancellation, /metrics, and /debug/pprof.
//
// Jobs render through the same internal/flows runners the CLIs use,
// against a shared content-addressed artifact cache — a repeated
// submission reuses the built netlists, test sets, and IPC tables, and its
// report is byte-identical to the cold run and to the CLI's output.
//
// SIGINT/SIGTERM drain gracefully: running campaigns finish in-flight
// chunks and flush their checkpoint journals (with -checkpoint-dir), so
// resubmitting the same job to the next rescued resumes where it left off;
// the process then exits 0.
//
// Admission is multi-tenant: clients identify via the X-Rescue-Client
// header (or spec "tenant" field) and are scheduled by deficit-weighted
// round-robin with per-tenant queue caps, in-flight limits, priority
// classes, and deadline-aware shedding, so one greedy client degrades
// its own service instead of everyone's. -fair=false reverts to the
// legacy single FIFO for A/B measurement.
//
// Usage:
//
//	rescued [-addr host:port] [-queue N] [-slots N] [-workers N]
//	        [-checkpoint-dir dir] [-drain-timeout D] [-quiet]
//	        [-fair=bool] [-tenant-weights a=3,b=1] [-tenant-queue-cap N]
//	        [-max-inflight-per-tenant N] [-event-log-cap N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"rescue/internal/cli"
	"rescue/internal/serve"
)

// parseTenantWeights parses "a=3,b=1" into a weight map; every weight
// must be a positive integer and every name a valid tenant.
func parseTenantWeights(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad tenant weight %q (want name=weight)", part)
		}
		if _, err := serve.TenantName(name); err != nil {
			return nil, fmt.Errorf("bad tenant name %q in weights", name)
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad weight %q for tenant %s (want integer >= 1)", val, name)
		}
		out[name] = w
	}
	return out, nil
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "listen address (port 0 picks a free port)")
	queueCap := flag.Int("queue", 64, "queued-job capacity; submissions beyond it get 429")
	slots := flag.Int("slots", 1, "jobs running concurrently (flows parallelize internally)")
	workers := flag.Int("workers", 0, "default campaign workers per job (0 = all cores)")
	ckDir := flag.String("checkpoint-dir", "", "directory for per-job campaign checkpoint journals (empty = off)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "max time to wait for running jobs on shutdown")
	quiet := flag.Bool("quiet", false, "suppress per-job log lines")
	fair := flag.Bool("fair", true, "multi-tenant fair scheduling; false reverts to one global FIFO")
	weightsFlag := flag.String("tenant-weights", "", "per-tenant DRR weights, e.g. victim=3,batch=1 (unlisted tenants weigh 1)")
	tenantQueueCap := flag.Int("tenant-queue-cap", 0, "max queued jobs per tenant (0 = the global -queue cap)")
	maxInflight := flag.Int("max-inflight-per-tenant", 0, "max running jobs per tenant (0 = no per-tenant limit)")
	eventLogCap := flag.Int("event-log-cap", 0, "max retained events per job; lagging stream consumers get dropped markers (0 = 4096, min 16)")
	flag.Parse()
	cli.CheckWorkers(*workers)
	if *queueCap < 1 {
		cli.Usagef("-queue must be >= 1, got %d", *queueCap)
	}
	if *slots < 1 {
		cli.Usagef("-slots must be >= 1, got %d", *slots)
	}
	if *drainTimeout <= 0 {
		cli.Usagef("-drain-timeout must be > 0, got %v", *drainTimeout)
	}
	weights, err := parseTenantWeights(*weightsFlag)
	if err != nil {
		cli.Usagef("-tenant-weights: %v", err)
	}
	if *tenantQueueCap < 0 {
		cli.Usagef("-tenant-queue-cap must be >= 0, got %d", *tenantQueueCap)
	}
	if *maxInflight < 0 {
		cli.Usagef("-max-inflight-per-tenant must be >= 0, got %d", *maxInflight)
	}
	if *eventLogCap != 0 && *eventLogCap < 16 {
		cli.Usagef("-event-log-cap must be 0 or >= 16, got %d", *eventLogCap)
	}
	if *ckDir != "" {
		if err := os.MkdirAll(*ckDir, 0o755); err != nil {
			cli.Fatalf("checkpoint-dir: %v", err)
		}
	}

	logf := log.New(os.Stderr, "rescued: ", log.LstdFlags).Printf
	if *quiet {
		logf = nil
	}
	srv := serve.New(serve.Config{
		QueueCap:             *queueCap,
		Slots:                *slots,
		Workers:              *workers,
		CheckpointDir:        *ckDir,
		Logf:                 logf,
		TenantWeights:        weights,
		TenantQueueCap:       *tenantQueueCap,
		MaxInflightPerTenant: *maxInflight,
		DisableFairness:      !*fair,
		EventLogCap:          *eventLogCap,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Fatalf("listen: %v", err)
	}
	// The resolved address on stdout is the contract scripts use with
	// -addr 127.0.0.1:0 to avoid port races.
	fmt.Printf("listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := cli.SignalContext()
	defer stop()
	select {
	case <-ctx.Done():
	case err := <-errc:
		cli.Fatalf("serve: %v", err)
	}

	// Graceful drain: stop accepting, cancel running jobs (their campaigns
	// flush checkpoint journals), then close the listener and exit 0.
	dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		hs.Close()
		cli.Fatalf("drain: %v", err)
	}
	hs.Shutdown(dctx)
	fmt.Println("drained; exiting")
}
