// Yield planning: when is Rescue worth its area?
//
// A product architect wants to know, for each upcoming technology node and
// core-growth plan, whether to ship plain cores, core sparing, or Rescue.
// This example sweeps both PWP-stagnation scenarios of Figure 9 on a small
// benchmark subset and prints the winning strategy per scenario.
//
//	go run ./examples/yieldplan
package main

import (
	"fmt"
	"log"

	"rescue/internal/area"
	"rescue/internal/core"
)

func main() {
	benches := []string{"gzip", "swim", "mcf"}
	fmt.Println("building per-node degraded-performance models (3 benchmarks x 65 configs)...")
	models := map[int]*core.PerfModel{}
	for _, node := range area.Nodes() {
		pm, err := core.BuildPerfModel(node, benches, 5_000, 40_000)
		if err != nil {
			log.Fatal(err)
		}
		models[node.NodeNM] = pm
	}

	for _, stagnate := range []int{90, 65} {
		rows, err := core.YATStudy(area.Node(stagnate), models)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n=== PWP stagnates at %dnm ===\n", stagnate)
		fmt.Printf("%5s %7s %6s %8s %8s %8s   %s\n",
			"node", "growth", "cores", "none", "+CS", "+Rescue", "recommendation")
		for _, r := range rows {
			rec := "plain cores fine"
			switch {
			case r.RelRescue > r.RelCS*1.03:
				rec = "ship Rescue"
			case r.RelCS > r.RelNone*1.03:
				rec = "core sparing suffices"
			}
			fmt.Printf("%4dnm %6.0f%% %6d %8.3f %8.3f %8.3f   %s\n",
				r.NodeNM, r.Growth*100, r.Cores, r.RelNone, r.RelCS, r.RelRescue, rec)
		}
	}
	fmt.Println()
	fmt.Println("relative YAT = chip YAT / (cores x fault-free IPC), 3-benchmark average")
}
