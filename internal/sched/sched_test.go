package sched

import (
	"errors"
	"testing"
	"time"
)

// drain pulls n entries synchronously, releasing each immediately, and
// returns the dispatch order as payloads.
func drain(t *testing.T, s *Scheduler, n int) []any {
	t.Helper()
	out := make([]any, 0, n)
	for i := 0; i < n; i++ {
		p, rel, ok := s.Next()
		if !ok {
			t.Fatalf("Next returned !ok after %d of %d", i, n)
		}
		rel()
		out = append(out, p)
	}
	return out
}

// TestDRRWeightsWithinRound is the core fairness pin: with weights 3:1
// and both tenants backlogged, every DRR round — every non-overlapping
// window of weight-sum dispatches — contains exactly the weighted
// share of each tenant.
func TestDRRWeightsWithinRound(t *testing.T) {
	s := New(Config{Weights: map[string]int{"a": 3, "b": 1}})
	for i := 0; i < 12; i++ {
		if err := s.Enqueue("a", ClassBatch, 0, "a"); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := s.Enqueue("b", ClassBatch, 0, "b"); err != nil {
			t.Fatal(err)
		}
	}
	order := drain(t, s, 16)
	for w := 0; w < 16; w += 4 {
		na, nb := 0, 0
		for _, p := range order[w : w+4] {
			if p == "a" {
				na++
			} else {
				nb++
			}
		}
		if na != 3 || nb != 1 {
			t.Fatalf("round %d dispatched a=%d b=%d, want 3:1 (full order %v)", w/4, na, nb, order)
		}
	}
	// The very first round serves the burst in credit order: a,a,a,b.
	want := []any{"a", "a", "a", "b"}
	for i, p := range order[:4] {
		if p != want[i] {
			t.Fatalf("first round order %v, want %v", order[:4], want)
		}
	}
}

// TestDRREqualWeightsAlternate: unweighted tenants alternate once both
// are backlogged — no tenant gets two slots in a row while a peer
// waits.
func TestDRREqualWeightsAlternate(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 4; i++ {
		s.Enqueue("x", ClassBatch, 0, "x")
		s.Enqueue("y", ClassBatch, 0, "y")
	}
	order := drain(t, s, 8)
	for i := 0; i+1 < len(order); i += 2 {
		if order[i] == order[i+1] {
			t.Fatalf("equal-weight tenants did not alternate: %v", order)
		}
	}
}

// TestIdleTenantBanksNoCredit: a tenant that sat idle while another
// drained rounds does not burst past its weight when it returns.
func TestIdleTenantBanksNoCredit(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 6; i++ {
		s.Enqueue("busy", ClassBatch, 0, "busy")
	}
	// Drain three rounds solo, then the idle tenant shows up.
	drain(t, s, 3)
	for i := 0; i < 3; i++ {
		s.Enqueue("late", ClassBatch, 0, "late")
	}
	// Every subsequent round (window of 2) is still an even split — the
	// idle stretch earned "late" no extra credit.
	order := drain(t, s, 6)
	for w := 0; w < 6; w += 2 {
		if order[w] == order[w+1] {
			t.Fatalf("round %d served one tenant twice: %v", w/2, order)
		}
	}
}

// TestPriorityClasses: interactive entries jump queued batch work of
// the same tenant, but an already-dispatched batch job is never
// recalled.
func TestPriorityClasses(t *testing.T) {
	s := New(Config{})
	s.Enqueue("t", ClassBatch, 0, "b1")
	p, rel, ok := s.Next()
	if !ok || p != "b1" {
		t.Fatalf("first dispatch = %v, want b1", p)
	}
	// b1 is running. Interactive arrives behind queued batch work.
	s.Enqueue("t", ClassBatch, 0, "b2")
	s.Enqueue("t", ClassBatch, 0, "b3")
	s.Enqueue("t", ClassInteractive, 0, "i1")
	order := drain(t, s, 3)
	if order[0] != "i1" || order[1] != "b2" || order[2] != "b3" {
		t.Fatalf("dispatch order %v, want [i1 b2 b3]", order)
	}
	rel() // b1 ran to completion untouched
	if sn, _ := s.Tenant("t"); sn.Completed != 4 {
		t.Fatalf("completed = %d, want 4", sn.Completed)
	}
}

// TestDeadlineShed: admission sheds up front when the estimated wait
// exceeds the client deadline, and admits when the deadline is loose.
func TestDeadlineShed(t *testing.T) {
	s := New(Config{Slots: 1})
	for i := 0; i < 5; i++ {
		if err := s.Enqueue("t", ClassBatch, 0, i); err != nil {
			t.Fatal(err)
		}
	}
	// Backlog 5 at the 1s/job prior = ~5s estimated wait.
	err := s.Enqueue("t", ClassBatch, 2*time.Second, "tight")
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("tight deadline admitted, want shed (err=%v)", err)
	}
	if !shed.Deadline || shed.Reason != "deadline unmeetable" {
		t.Fatalf("shed = %+v, want deadline unmeetable", shed)
	}
	if shed.RetryAfter < 1 || shed.RetryAfter > 60 {
		t.Fatalf("RetryAfter %d outside [1,60]", shed.RetryAfter)
	}
	if err := s.Enqueue("t", ClassBatch, time.Minute, "loose"); err != nil {
		t.Fatalf("loose deadline shed: %v", err)
	}
	if sn, _ := s.Tenant("t"); sn.Shed != 1 || sn.Admitted != 6 {
		t.Fatalf("shed=%d admitted=%d, want 1/6", sn.Shed, sn.Admitted)
	}
}

// TestTenantCap: one tenant filling its own cap does not consume
// another tenant's admission headroom.
func TestTenantCap(t *testing.T) {
	s := New(Config{GlobalCap: 10, TenantCap: 2})
	s.Enqueue("a", ClassBatch, 0, 1)
	s.Enqueue("a", ClassBatch, 0, 2)
	err := s.Enqueue("a", ClassBatch, 0, 3)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != "tenant queue full" {
		t.Fatalf("over-cap enqueue: %v, want tenant queue full", err)
	}
	if shed.RetryAfter < 1 {
		t.Fatalf("RetryAfter %d < 1", shed.RetryAfter)
	}
	if err := s.Enqueue("b", ClassBatch, 0, 4); err != nil {
		t.Fatalf("victim shed behind aggressor cap: %v", err)
	}
}

// TestGlobalCap: the global bound still backstops total memory.
func TestGlobalCap(t *testing.T) {
	s := New(Config{GlobalCap: 2, TenantCap: 2})
	s.Enqueue("a", ClassBatch, 0, 1)
	s.Enqueue("b", ClassBatch, 0, 2)
	var shed *ShedError
	if err := s.Enqueue("c", ClassBatch, 0, 3); !errors.As(err, &shed) || shed.Reason != "queue full" {
		t.Fatalf("over global cap: %v, want queue full", err)
	}
}

// TestMaxInflight: a tenant at its in-flight limit is skipped until a
// release, and Next blocks rather than over-dispatching.
func TestMaxInflight(t *testing.T) {
	s := New(Config{MaxInflight: 1})
	s.Enqueue("a", ClassBatch, 0, "a1")
	s.Enqueue("a", ClassBatch, 0, "a2")
	s.Enqueue("b", ClassBatch, 0, "b1")

	p1, rel1, _ := s.Next()
	if p1 != "a1" {
		t.Fatalf("first = %v, want a1", p1)
	}
	p2, rel2, _ := s.Next()
	if p2 != "b1" {
		t.Fatalf("second = %v, want b1 (a is at its in-flight limit)", p2)
	}

	got := make(chan any, 1)
	go func() {
		p, rel, ok := s.Next()
		if ok {
			rel()
		}
		got <- p
	}()
	select {
	case p := <-got:
		t.Fatalf("Next dispatched %v past the in-flight limit", p)
	case <-time.After(50 * time.Millisecond):
	}
	rel1()
	select {
	case p := <-got:
		if p != "a2" {
			t.Fatalf("after release got %v, want a2", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Next still blocked after release")
	}
	rel2()
}

// TestDisableFIFO: fairness off is the legacy single FIFO — strict
// arrival order across tenants, per-tenant caps and classes ignored,
// only the global cap enforced.
func TestDisableFIFO(t *testing.T) {
	s := New(Config{Disable: true, GlobalCap: 6, TenantCap: 1, MaxInflight: 1,
		Weights: map[string]int{"v": 100}})
	s.Enqueue("g", ClassBatch, 0, "g1")
	s.Enqueue("g", ClassBatch, 0, "g2") // past TenantCap: ignored when disabled
	s.Enqueue("g", ClassBatch, 0, "g3")
	s.Enqueue("v", ClassInteractive, 0, "v1")
	order := drain(t, s, 4)
	want := []any{"g1", "g2", "g3", "v1"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FIFO order %v, want %v", order, want)
		}
	}
}

// TestCloseWakesAndReturnsQueued: Close unblocks Next with ok=false,
// rejects later Enqueues, and hands back undelivered payloads.
func TestCloseWakesAndReturnsQueued(t *testing.T) {
	s := New(Config{})
	done := make(chan bool, 1)
	go func() {
		_, _, ok := s.Next()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	s.Enqueue("a", ClassBatch, 0, "served")
	// The waiter takes "served"; these two stay queued.
	time.Sleep(10 * time.Millisecond)
	s.Enqueue("a", ClassBatch, 0, "q1")
	s.Enqueue("b", ClassInteractive, 0, "q2")

	left := s.Close()
	if len(left) != 2 {
		t.Fatalf("Close returned %v, want the 2 undelivered payloads", left)
	}
	if err := s.Enqueue("a", ClassBatch, 0, "late"); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close Enqueue: %v, want ErrClosed", err)
	}
	if _, _, ok := s.Next(); ok {
		t.Fatal("post-close Next returned ok")
	}
	if s.Queued() != 0 {
		t.Fatalf("queued = %d after Close", s.Queued())
	}
	<-done
}

// TestRetryAfterHonest: the hint scales with the tenant's backlog and
// observed job duration, clamped to [1, 60].
func TestRetryAfterHonest(t *testing.T) {
	mean := 2.0
	s := New(Config{Slots: 1, JobSeconds: func() float64 { return mean }})
	if got := s.RetryAfter("t"); got != 1 {
		t.Fatalf("empty-queue RetryAfter = %d, want the 1s floor", got)
	}
	for i := 0; i < 5; i++ {
		s.Enqueue("t", ClassBatch, 0, i)
	}
	if got := s.RetryAfter("t"); got != 10 {
		t.Fatalf("RetryAfter = %d, want 10 (5 jobs x 2s)", got)
	}
	mean = 1000
	if got := s.RetryAfter("t"); got != 60 {
		t.Fatalf("RetryAfter = %d, want the 60s ceiling", got)
	}
}

// TestEstimateUsesFairShare: with weights 3:1 and both tenants
// backlogged, the same backlog depth costs the light tenant ~3x the
// wait of the heavy one.
func TestEstimateUsesFairShare(t *testing.T) {
	s := New(Config{Slots: 1, Weights: map[string]int{"heavy": 3, "light": 1}})
	for i := 0; i < 4; i++ {
		s.Enqueue("heavy", ClassBatch, 0, i)
		s.Enqueue("light", ClassBatch, 0, i)
	}
	h, l := s.EstimateWait("heavy"), s.EstimateWait("light")
	if h <= 0 || l <= 0 {
		t.Fatalf("estimates not positive: heavy=%v light=%v", h, l)
	}
	ratio := float64(l) / float64(h)
	if ratio < 2.9 || ratio > 3.1 {
		t.Fatalf("wait ratio light/heavy = %.2f, want ~3 (heavy=%v light=%v)", ratio, h, l)
	}
}

// TestSnapshotCounters: the per-tenant counters tell a consistent
// story: admitted = dispatched + queued, completed tracks releases.
func TestSnapshotCounters(t *testing.T) {
	s := New(Config{})
	for i := 0; i < 3; i++ {
		s.Enqueue("t", ClassBatch, 0, i)
	}
	_, rel, _ := s.Next()
	rel()
	_, rel2, _ := s.Next()

	sn, ok := s.Tenant("t")
	if !ok {
		t.Fatal("tenant missing from snapshot")
	}
	if sn.Admitted != 3 || sn.Dispatched != 2 || sn.Completed != 1 ||
		sn.Queued != 1 || sn.Inflight != 1 {
		t.Fatalf("snapshot %+v inconsistent", sn)
	}
	rel2()
	all := s.Tenants()
	if len(all) != 1 || all[0].Name != "t" || all[0].Completed != 2 {
		t.Fatalf("Tenants() = %+v", all)
	}
}

// TestParseClass pins the wire names.
func TestParseClass(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Class
		err  bool
	}{
		{"", ClassBatch, false},
		{"batch", ClassBatch, false},
		{"interactive", ClassInteractive, false},
		{"urgent", ClassBatch, true},
	} {
		got, err := ParseClass(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Fatalf("ParseClass(%q) = %v, %v", tc.in, got, err)
		}
	}
	if ClassBatch.String() != "batch" || ClassInteractive.String() != "interactive" {
		t.Fatal("Class.String mismatch")
	}
}
