package rtl

import (
	"fmt"

	"rescue/internal/ici"
	"rescue/internal/netlist"
)

// Variant selects which design Build generates.
type Variant int

// Build variants: Baseline is the conventional superscalar (single map
// table, monolithic compacting issue queue with a combining select root,
// same-cycle rename); Rescue is the ICI-transformed design of Section 4.
const (
	Baseline Variant = iota
	RescueDesign
)

func (v Variant) String() string {
	if v == Baseline {
		return "baseline"
	}
	return "rescue"
}

// Design bundles a generated netlist with its ICI metadata.
type Design struct {
	N        *netlist.Netlist
	Cfg      Config
	Variant  Variant
	Grouping ici.Grouping
	// StageOfComp maps component name -> pipeline stage name (fetch,
	// decode, rename, issue, execute, memory, regread, writeback, commit),
	// used by the Section 6.1 per-stage fault-injection campaign.
	StageOfComp map[string]string
}

// instr is an un-renamed instruction bundle flowing through the frontend.
type instr struct {
	valid            netlist.NetID
	op               Bus
	dest, src1, src2 Bus // architectural specifiers
	imm              Bus
}

// renamed is a post-rename instruction bundle.
type renamed struct {
	valid                     netlist.NetID
	op                        Bus
	destTag, src1Tag, src2Tag Bus
	imm                       Bus
}

// pipe carries build state across stage constructors.
type pipe struct {
	b
	cfg    Config
	rescue bool
	d      *Design
	zero   netlist.NetID                    // shared tie-0, ONLY for FF placeholders (always rewired)
	ties   map[netlist.CompID]netlist.NetID // per-component tie-0 cells

	// fault-map register (Section 4: 2*n+4 bits; modeled as one disable
	// bit per frontend way, one per backend way, one per queue half).
	fmapFE, fmapBE Bus
	fmapIQ         Bus // 2 bits
	fmapLSQ        Bus // 2 bits

	fetched []instr   // fetch-latch outputs
	routed  []instr   // route-stage latch outputs (rescue) or fetched
	decoded []instr   // decode latch outputs (op replaced by control bits)
	renamed []renamed // rename output latch

	selLatch [][]renamed // [half][slot] selected-instruction latches
	selValid [][]netlist.NetID
	issued   []renamed // post-routing backend input latches

	rrOut  []Bus // regread output latches per backend way (src1 value)
	rrOut2 []Bus // src2 value
	exOut  []Bus // execute output latches per backend way
	wbOut  []Bus // writeback latches per backend way
	wbTag  []Bus // writeback dest tags
	wbVal  []netlist.NetID
}

// comp switches the current component and records its pipeline stage.
func (p *pipe) comp(name, stage string) {
	p.n.Component(name)
	p.d.StageOfComp[name] = stage
}

// tie0 returns a tie-0 cell owned by the CURRENT component, creating one on
// first use. Tie cells must not be shared across components: a shared tie
// would appear in every consumer's fan-in cone and wreck isolation.
func (p *pipe) tie0() netlist.NetID {
	c := p.n.CurrentComp()
	if id, ok := p.ties[c]; ok {
		return id
	}
	id := p.n.Const(false)
	p.ties[c] = id
	return id
}

// ffHole creates a flip-flop whose D will be rewired later (placeholder
// tie-0). Used when next-state logic needs the Q values of the registers
// it drives (queues, counters).
func (p *pipe) ffHole(name string) netlist.NetID {
	return p.n.AddFF(p.zero, name)
}

// ffHoleBus creates a bus of placeholder FFs.
func (p *pipe) ffHoleBus(name string, w int) Bus {
	out := make(Bus, w)
	for i := range out {
		out[i] = p.ffHole(fmt.Sprintf("%s[%d]", name, i))
	}
	return out
}

// drive rewires a placeholder FF's D input.
func (p *pipe) drive(q netlist.NetID, d netlist.NetID) {
	ff := p.n.DriverFF(q)
	p.n.FFs[ff].D = d
}

// driveBus rewires a bus of placeholder FFs.
func (p *pipe) driveBus(q Bus, d Bus) {
	for i := range q {
		p.drive(q[i], d[i])
	}
}

// Build generates the gate-level pipeline netlist for the given variant.
func Build(cfg Config, v Variant) (*Design, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := netlist.New(fmt.Sprintf("pipeline-%s", v))
	d := &Design{N: n, Cfg: cfg, Variant: v, StageOfComp: map[string]string{}}
	p := &pipe{b: b{n: n}, cfg: cfg, rescue: v == RescueDesign, d: d,
		ties: map[netlist.CompID]netlist.NetID{}}
	n.Component("chipkill.ties")
	d.StageOfComp["chipkill.ties"] = "fetch"
	p.zero = n.Const(false)

	p.buildFaultMap()
	p.buildFetch()
	p.buildRoute()
	p.buildDecode()
	p.buildRename()
	p.buildIssue()
	p.buildRegRead()
	p.buildExecute()
	p.buildLSQ()
	p.buildWriteback()

	d.Grouping = p.grouping()
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("rtl: generated %s netlist invalid: %w", v, err)
	}
	return d, nil
}

// buildFaultMap creates the fault-map register: scan-loaded FFs whose D
// inputs hold their value (after test the register is frozen by fuses; in
// the netlist it is a plain scannable register). It is chipkill area.
func (p *pipe) buildFaultMap() {
	p.comp("chipkill.fmap", "fetch")
	mk := func(name string, nbits int) Bus {
		out := make(Bus, nbits)
		for i := range out {
			// self-holding FF: D is a buffered copy of Q
			d := p.n.Input(fmt.Sprintf("fmap.%s[%d]", name, i))
			out[i] = p.n.AddFF(d, fmt.Sprintf("fmap.%s.q[%d]", name, i))
		}
		return out
	}
	p.fmapFE = mk("fe", p.cfg.Ways)
	p.fmapBE = mk("be", p.cfg.Ways)
	p.fmapIQ = mk("iq", 2)
	p.fmapLSQ = mk("lsq", 2)
}

// grouping returns the super-component assignment used for isolation and
// map-out (Section 4's half-pipeline granularity).
func (p *pipe) grouping() ici.Grouping {
	g := ici.Grouping{}
	for comp := range p.d.StageOfComp {
		g[comp] = superOf(comp)
	}
	return g
}

// superOf maps a component name to its super-component by prefix
// convention: "fe0.xxx" -> "FE0", "iq.q1"/"iq.sel1"/"iq.bc1" -> "IQ1",
// "lsq.*0" -> "LSQ0", roots -> their backend group, "be1.xxx" -> "BE1",
// "chipkill.*" -> "CHIPKILL". Baseline shared components keep their own
// names, which is precisely why the baseline audit reports violations.
func superOf(comp string) string {
	switch {
	case len(comp) >= 3 && comp[:3] == "fe0":
		return "FE0"
	case len(comp) >= 3 && comp[:3] == "fe1":
		return "FE1"
	case len(comp) >= 3 && comp[:3] == "be0":
		return "BE0"
	case len(comp) >= 3 && comp[:3] == "be1":
		return "BE1"
	case comp == "iq.q0" || comp == "iq.sel0" || comp == "iq.bc0":
		return "IQ0"
	case comp == "iq.q1" || comp == "iq.sel1" || comp == "iq.bc1":
		return "IQ1"
	case comp == "lsq.q0" || comp == "lsq.ins0" || comp == "lsq.subA0" || comp == "lsq.subB0":
		return "LSQ0"
	case comp == "lsq.q1" || comp == "lsq.ins1" || comp == "lsq.subA1" || comp == "lsq.subB1":
		return "LSQ1"
	case comp == "lsq.rootA":
		return "BE0" // a faulty tree disables the backend way using it
	case comp == "lsq.rootB":
		return "BE1"
	case len(comp) >= 8 && comp[:8] == "chipkill":
		return "CHIPKILL"
	}
	return comp
}

// SuperComponents lists the distinct super-component names of a design.
func (d *Design) SuperComponents() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range d.Grouping {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
