package trace

import (
	"bytes"
	"testing"

	"rescue/internal/isa"
	"rescue/internal/uarch"
	"rescue/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	prof, err := workload.ByName("gzip")
	if err != nil {
		t.Fatal(err)
	}
	gen := workload.New(prof)
	var ref []isa.Inst
	for i := 0; i < 20000; i++ {
		ref = append(ref, gen.Next())
	}

	var buf bytes.Buffer
	tw, err := NewWriter(&buf, ref[0].PC)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range ref {
		if err := tw.Write(in); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if tw.Count() != int64(len(ref)) {
		t.Fatalf("count = %d", tw.Count())
	}

	tr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range ref {
		got := tr.Next()
		if got != want {
			t.Fatalf("instruction %d: %+v != %+v", i, got, want)
		}
	}
	if tr.Done() {
		t.Fatal("reader done before reading past the end")
	}
	// past the end: NOPs, Done set, no error
	post := tr.Next()
	if post.Class != isa.NOP || !tr.Done() || tr.Err() != nil {
		t.Fatalf("tail: %+v done=%v err=%v", post, tr.Done(), tr.Err())
	}
}

func TestWriterRejectsBrokenChain(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Write(isa.Inst{PC: 0x1000, Class: isa.IntALU, Dest: 1, Src1: 2, Src2: 3}); err != nil {
		t.Fatal(err)
	}
	err = tw.Write(isa.Inst{PC: 0x9999, Class: isa.IntALU, Dest: 1, Src1: 2, Src2: 3})
	if err == nil {
		t.Fatal("broken PC chain accepted")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("notatrace....."))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("RS"))); err == nil {
		t.Fatal("short header accepted")
	}
}

// TestSimulatorOnTrace runs the performance simulator over a recorded
// trace and checks it commits the same way the generator run does.
func TestSimulatorOnTrace(t *testing.T) {
	prof, err := workload.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := Record(&buf, workload.New(prof), 120000); err != nil {
		t.Fatal(err)
	}
	tr, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	simT, err := uarch.NewFromSource(uarch.RescueParams(), tr)
	if err != nil {
		t.Fatal(err)
	}
	stT := simT.Run(5_000, 50_000)

	simG, err := uarch.New(uarch.RescueParams(), prof)
	if err != nil {
		t.Fatal(err)
	}
	stG := simG.Run(5_000, 50_000)
	if stT != stG {
		t.Fatalf("trace-driven run diverged from generator run:\n%+v\n%+v", stT, stG)
	}
	if tr.Err() != nil {
		t.Fatal(tr.Err())
	}
}

func TestCompactness(t *testing.T) {
	prof, _ := workload.ByName("mcf")
	var buf bytes.Buffer
	const n = 50000
	if _, err := Record(&buf, workload.New(prof), n); err != nil {
		t.Fatal(err)
	}
	perInst := float64(buf.Len()) / n
	if perInst > 10 {
		t.Fatalf("%.1f bytes/instruction — format regressed", perInst)
	}
}
