package workload

import (
	"testing"

	"rescue/internal/isa"
)

func TestBenchmarksList(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 23 {
		t.Fatalf("benchmarks = %d, want 23 (paper: SPEC2000 minus ammp, galgel, gap)", len(bs))
	}
	seen := map[string]bool{}
	for _, p := range bs {
		if seen[p.Name] {
			t.Fatalf("duplicate benchmark %s", p.Name)
		}
		seen[p.Name] = true
	}
	for _, name := range []string{"gzip", "bzip2", "swim", "mcf", "sixtrack"} {
		if !seen[name] {
			t.Fatalf("missing %s", name)
		}
	}
	if seen["ammp"] || seen["galgel"] || seen["gap"] {
		t.Fatal("paper excludes ammp, galgel, gap")
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("swim")
	if err != nil || p.Name != "swim" {
		t.Fatalf("ByName(swim) = %+v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestDeterministicStream(t *testing.T) {
	p, _ := ByName("gzip")
	a, b := New(p), New(p)
	for i := 0; i < 10000; i++ {
		ia, ib := a.Next(), b.Next()
		if ia != ib {
			t.Fatalf("divergence at %d: %+v vs %+v", i, ia, ib)
		}
	}
}

func TestPCChainConsistency(t *testing.T) {
	// the PC walk must be self-consistent: each instruction's PC equals
	// the previous instruction's NextPC
	p, _ := ByName("vpr")
	g := New(p)
	prev := g.Next()
	for i := 0; i < 50000; i++ {
		cur := g.Next()
		if cur.PC != prev.NextPC() {
			t.Fatalf("at %d: PC %x but previous NextPC %x (prev %+v)", i, cur.PC, prev.NextPC(), prev)
		}
		prev = cur
	}
}

func TestCodeFootprintBound(t *testing.T) {
	p, _ := ByName("swim") // 24KB code
	g := New(p)
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.PC < 0x1000 || in.PC > 0x1000+p.CodeFootprint+8*64 {
			t.Fatalf("PC %x outside code footprint", in.PC)
		}
	}
}

func TestMixRoughlyMatchesProfile(t *testing.T) {
	p, _ := ByName("gzip")
	g := New(p)
	counts := map[isa.Class]int{}
	n := 200000
	for i := 0; i < n; i++ {
		counts[g.Next().Class]++
	}
	loadFrac := float64(counts[isa.Load]) / float64(n)
	if loadFrac < p.LoadFrac*0.35 || loadFrac > p.LoadFrac*1.8 {
		t.Fatalf("load fraction %.3f vs profile %.3f", loadFrac, p.LoadFrac)
	}
	brFrac := float64(counts[isa.Branch]) / float64(n)
	if brFrac < 0.05 || brFrac > 0.35 {
		t.Fatalf("branch fraction %.3f out of band", brFrac)
	}
}

func TestMemAddressesWithinFootprint(t *testing.T) {
	p, _ := ByName("mcf")
	g := New(p)
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if !in.Class.IsMem() {
			continue
		}
		if in.Addr < 0x10000000 || in.Addr >= 0x10000000+p.Footprint {
			t.Fatalf("addr %x outside footprint", in.Addr)
		}
	}
}

func TestFPBenchmarkHasFPOps(t *testing.T) {
	p, _ := ByName("swim")
	g := New(p)
	fp := 0
	for i := 0; i < 50000; i++ {
		if g.Next().Class.IsFP() {
			fp++
		}
	}
	if fp < 5000 {
		t.Fatalf("swim produced only %d fp ops in 50k", fp)
	}
	// and an int benchmark has none by default
	pi, _ := ByName("gzip")
	gi := New(pi)
	fp = 0
	for i := 0; i < 50000; i++ {
		if gi.Next().Class.IsFP() {
			fp++
		}
	}
	if fp != 0 {
		t.Fatalf("gzip produced %d fp ops", fp)
	}
}

func TestLoopBranchesMostlyTaken(t *testing.T) {
	p, _ := ByName("swim") // LoopWeight 0.9, long trips
	g := New(p)
	taken, total := 0, 0
	for i := 0; i < 100000; i++ {
		in := g.Next()
		if in.Class == isa.Branch {
			total++
			if in.Taken {
				taken++
			}
		}
	}
	if total == 0 || float64(taken)/float64(total) < 0.6 {
		t.Fatalf("swim taken rate %d/%d too low for a loopy code", taken, total)
	}
}
