// Package cache implements the memory hierarchy substrate of Table 1:
// set-associative LRU caches composed into an L1I/L1D/L2/memory hierarchy
// with fixed access latencies. Caches are BIST-with-repair territory in the
// paper, so they carry no degraded modes; they exist to give loads and
// stores realistic latency distributions.
package cache

// Config describes one cache level.
type Config struct {
	SizeBytes int
	Assoc     int
	BlockSize int
	Latency   int // access latency in cycles (hit)
}

// Cache is a single set-associative, write-allocate, LRU cache.
type Cache struct {
	cfg  Config
	sets int
	tag  [][]uint64
	val  [][]bool
	lru  [][]uint32
	tick uint32

	Accesses, Misses int64
}

// New builds a cache from a configuration.
func New(cfg Config) *Cache {
	sets := cfg.SizeBytes / (cfg.Assoc * cfg.BlockSize)
	if sets < 1 {
		sets = 1
	}
	c := &Cache{cfg: cfg, sets: sets}
	c.tag = make([][]uint64, sets)
	c.val = make([][]bool, sets)
	c.lru = make([][]uint32, sets)
	for s := 0; s < sets; s++ {
		c.tag[s] = make([]uint64, cfg.Assoc)
		c.val[s] = make([]bool, cfg.Assoc)
		c.lru[s] = make([]uint32, cfg.Assoc)
	}
	return c
}

// Latency returns the hit latency.
func (c *Cache) Latency() int { return c.cfg.Latency }

// Access looks up addr, allocating on miss. Returns true on hit.
func (c *Cache) Access(addr uint64) bool {
	c.Accesses++
	c.tick++
	block := addr / uint64(c.cfg.BlockSize)
	set := int(block % uint64(c.sets))
	tag := block / uint64(c.sets)
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.val[set][w] && c.tag[set][w] == tag {
			c.lru[set][w] = c.tick
			return true
		}
	}
	c.Misses++
	// LRU replace
	victim := 0
	oldest := c.lru[set][0]
	for w := 1; w < c.cfg.Assoc; w++ {
		if !c.val[set][w] {
			victim = w
			break
		}
		if c.lru[set][w] < oldest {
			oldest = c.lru[set][w]
			victim = w
		}
	}
	c.val[set][victim] = true
	c.tag[set][victim] = tag
	c.lru[set][victim] = c.tick
	return false
}

// MissRate reports the observed miss rate.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Hierarchy is the two-level hierarchy + memory of Table 1.
type Hierarchy struct {
	L1I, L1D, L2 *Cache
	MemLatency   int
}

// HierarchyConfig parameterizes NewHierarchy.
type HierarchyConfig struct {
	L1I, L1D, L2 Config
	MemLatency   int
}

// DefaultHierarchy returns Table 1's memory system: 64KB 2-way 32B-block
// 2-cycle L1s, 2MB 8-way 64B-block 15-cycle L2, 250-cycle memory.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{
		L1I:        Config{SizeBytes: 64 << 10, Assoc: 2, BlockSize: 32, Latency: 2},
		L1D:        Config{SizeBytes: 64 << 10, Assoc: 2, BlockSize: 32, Latency: 2},
		L2:         Config{SizeBytes: 2 << 20, Assoc: 8, BlockSize: 64, Latency: 15},
		MemLatency: 250,
	}
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	return &Hierarchy{
		L1I:        New(cfg.L1I),
		L1D:        New(cfg.L1D),
		L2:         New(cfg.L2),
		MemLatency: cfg.MemLatency,
	}
}

// LoadLatency returns the latency of a data access at addr and whether it
// hit in the L1 (the signal the issue logic speculates on).
func (h *Hierarchy) LoadLatency(addr uint64) (lat int, l1hit bool) {
	if h.L1D.Access(addr) {
		return h.L1D.Latency(), true
	}
	if h.L2.Access(addr) {
		return h.L1D.Latency() + h.L2.Latency(), false
	}
	return h.L1D.Latency() + h.L2.Latency() + h.MemLatency, false
}

// FetchLatency returns the latency of an instruction fetch at addr.
func (h *Hierarchy) FetchLatency(addr uint64) int {
	if h.L1I.Access(addr) {
		return h.L1I.Latency()
	}
	if h.L2.Access(addr) {
		return h.L1I.Latency() + h.L2.Latency()
	}
	return h.L1I.Latency() + h.L2.Latency() + h.MemLatency
}
