// Package ici implements intra-cycle logic independence — the central
// formalism of the Rescue paper (Section 3). It provides:
//
//   - component-level dataflow graphs (the paper's LC diagrams of
//     Figures 2–4), with latches marking cycle boundaries;
//   - the ICI rule checker: a scan-detectable fault can be blamed on one
//     and only one element of a component set iff there is no intra-cycle
//     communication among the set's members;
//   - super-component computation (components transitively connected by
//     intra-cycle edges must be lumped for isolation);
//   - the three ICI transformations: cycle splitting, logic privatization
//     (full and partial), and dependence rotation;
//   - a netlist-level audit that checks a gate-level design against a
//     super-component grouping and builds the scan-bit isolation table.
package ici

import (
	"fmt"
	"sort"
)

// NodeKind classifies graph nodes.
type NodeKind uint8

// Node kinds: Logic is a combinational logic component (an "LC"), Latch is
// a pipeline register (cycle boundary), Source/Sink are primary inputs and
// outputs (tester-controlled and tester-observed).
const (
	Logic NodeKind = iota
	Latch
	Source
	Sink
)

func (k NodeKind) String() string {
	switch k {
	case Logic:
		return "logic"
	case Latch:
		return "latch"
	case Source:
		return "source"
	default:
		return "sink"
	}
}

// NodeID identifies a node in a Graph.
type NodeID int

// Node is one vertex of a component dataflow graph.
type Node struct {
	Name string
	Kind NodeKind
}

// Graph is a component-level dataflow graph. Edges are directed signal
// flows; an edge between two Logic nodes is intra-cycle communication.
type Graph struct {
	Nodes []Node
	// adjacency: out[from] lists successors, in[to] lists predecessors
	out [][]NodeID
	in  [][]NodeID
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{} }

// Add inserts a node and returns its ID.
func (g *Graph) Add(name string, kind NodeKind) NodeID {
	g.Nodes = append(g.Nodes, Node{Name: name, Kind: kind})
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return NodeID(len(g.Nodes) - 1)
}

// Connect adds the directed edge from -> to (idempotent).
func (g *Graph) Connect(from, to NodeID) {
	for _, s := range g.out[from] {
		if s == to {
			return
		}
	}
	g.out[from] = append(g.out[from], to)
	g.in[to] = append(g.in[to], from)
}

// Disconnect removes the edge from -> to if present.
func (g *Graph) Disconnect(from, to NodeID) {
	g.out[from] = remove(g.out[from], to)
	g.in[to] = remove(g.in[to], from)
}

func remove(s []NodeID, x NodeID) []NodeID {
	for i, v := range s {
		if v == x {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Succs returns the successors of n.
func (g *Graph) Succs(n NodeID) []NodeID { return g.out[n] }

// Preds returns the predecessors of n.
func (g *Graph) Preds(n NodeID) []NodeID { return g.in[n] }

// Name returns a node's name.
func (g *Graph) Name(n NodeID) string { return g.Nodes[n].Name }

// Violation is one intra-cycle communication edge between two distinct
// logic components — the thing the ICI rule forbids within an isolation
// set.
type Violation struct {
	From, To NodeID
}

func (v Violation) String() string { return fmt.Sprintf("%d->%d", v.From, v.To) }

// Violations lists every logic->logic edge. A graph with no violations has
// perfect per-component isolation; otherwise components joined by
// violations must be lumped into super-components.
func (g *Graph) Violations() []Violation {
	var out []Violation
	for from := range g.Nodes {
		if g.Nodes[from].Kind != Logic {
			continue
		}
		for _, to := range g.out[from] {
			if g.Nodes[to].Kind == Logic {
				out = append(out, Violation{From: NodeID(from), To: to})
			}
		}
	}
	return out
}

// SuperComponents partitions the Logic nodes into super-components: the
// weakly-connected components of the subgraph induced by logic->logic
// edges. Faults isolate to super-component granularity (Section 3.2.2's
// shaded ovals); a fully ICI design has singleton super-components.
func (g *Graph) SuperComponents() [][]NodeID {
	parent := make([]int, len(g.Nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, v := range g.Violations() {
		union(int(v.From), int(v.To))
	}
	groups := map[int][]NodeID{}
	for i, n := range g.Nodes {
		if n.Kind != Logic {
			continue
		}
		r := find(i)
		groups[r] = append(groups[r], NodeID(i))
	}
	keys := make([]int, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([][]NodeID, 0, len(groups))
	for _, k := range keys {
		grp := groups[k]
		sort.Slice(grp, func(i, j int) bool { return grp[i] < grp[j] })
		out = append(out, grp)
	}
	return out
}

// IsolationTable maps each Latch and Sink node to the set of
// super-components whose logic feeds it within one cycle (traversal stops
// at Latch and Source nodes). Under ICI every entry has exactly one
// super-component — the paper's "single lookup" from failing scan bit to
// faulty component.
func (g *Graph) IsolationTable() map[NodeID][][]NodeID {
	super := g.SuperComponents()
	superOf := make(map[NodeID]int)
	for si, grp := range super {
		for _, n := range grp {
			superOf[n] = si
		}
	}
	table := map[NodeID][][]NodeID{}
	for ni := range g.Nodes {
		kind := g.Nodes[ni].Kind
		if kind != Latch && kind != Sink {
			continue
		}
		seen := map[NodeID]bool{}
		superSeen := map[int]bool{}
		var stack []NodeID
		stack = append(stack, g.in[ni]...)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[n] {
				continue
			}
			seen[n] = true
			switch g.Nodes[n].Kind {
			case Logic:
				superSeen[superOf[n]] = true
				stack = append(stack, g.in[n]...)
			case Latch, Source:
				// cycle boundary: stop
			}
		}
		var supers [][]NodeID
		idxs := make([]int, 0, len(superSeen))
		for si := range superSeen {
			idxs = append(idxs, si)
		}
		sort.Ints(idxs)
		for _, si := range idxs {
			supers = append(supers, super[si])
		}
		table[NodeID(ni)] = supers
	}
	return table
}

// CheckICI reports whether every latch/sink is fed by at most one
// super-component AND every super-component is a singleton — i.e. faults
// isolate to individual components.
func (g *Graph) CheckICI() bool {
	for _, grp := range g.SuperComponents() {
		if len(grp) > 1 {
			return false
		}
	}
	return true
}
