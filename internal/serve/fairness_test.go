package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"rescue/internal/fault"
	"rescue/internal/serve"
)

// submitAs posts a job body with an X-Rescue-Client header, the way
// proxies and the dispatch coordinator tag traffic.
func (s *testServer) submitAs(t *testing.T, tenant, body string) (serve.Snapshot, *http.Response) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, s.ts.URL+"/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set("X-Rescue-Client", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sn serve.Snapshot
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
			t.Fatal(err)
		}
	}
	return sn, resp
}

// TestServeStarvationRegression is the serve-level fairness pin: an
// aggressor flooding its per-tenant queue cap on a one-slot server gets
// per-tenant 429s with an honest Retry-After, while a victim submitted
// afterwards is still admitted and — thanks to DRR — completes ahead of
// most of the backlog the aggressor built first.
func TestServeStarvationRegression(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, serve.Config{
		Slots:          1,
		QueueCap:       64,
		TenantQueueCap: 8,
		Kinds:          testKinds(release),
	})

	// One aggressor job occupies the slot...
	run, resp := s.submitAs(t, "aggressor", `{"kind":"block"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("blocker submit: %d", resp.StatusCode)
	}
	s.waitState(t, run.ID, serve.StateRunning, 5*time.Second)

	// ...then the aggressor floods its queue cap.
	var agg []string
	for i := 0; i < 8; i++ {
		sn, resp := s.submitAs(t, "aggressor", `{"kind":"block"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("aggressor submit %d: %d", i, resp.StatusCode)
		}
		agg = append(agg, sn.ID)
	}
	_, over := s.submitAs(t, "aggressor", `{"kind":"block"}`)
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap aggressor submit: %d, want 429", over.StatusCode)
	}
	if ra := over.Header.Get("Retry-After"); ra == "" {
		t.Fatal("aggressor 429 carries no Retry-After")
	}

	// The victim is still admitted: the aggressor consumed its own cap,
	// not the victim's.
	victim, vresp := s.submitAs(t, "victim", `{"kind":"block"}`)
	if vresp.StatusCode != http.StatusAccepted {
		t.Fatalf("victim starved at admission: %d", vresp.StatusCode)
	}

	close(release)
	v := s.waitState(t, victim.ID, serve.StateSucceeded, 10*time.Second)
	later := 0
	for _, id := range agg {
		a := s.waitState(t, id, serve.StateSucceeded, 10*time.Second)
		if a.FinishedAt != nil && v.FinishedAt != nil && a.FinishedAt.After(*v.FinishedAt) {
			later++
		}
	}
	// DRR 1:1 dispatches the victim within one round of its arrival, so
	// at least half the aggressor's earlier backlog finishes after it.
	// FIFO would have run the victim dead last (later == 0).
	if later < 4 {
		t.Fatalf("victim finished after most of the aggressor backlog (%d/8 aggressor jobs finished later); starvation regression", later)
	}

	// Per-tenant metrics surfaced in /metrics.
	_, metrics := s.get(t, "/metrics")
	for _, want := range []string{
		"tenant_aggressor_shed_total 1",
		"tenant_aggressor_admitted_total 9",
		"tenant_victim_admitted_total 1",
		"tenant_victim_wait_seconds_p99",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestServeDeadlineShed: a submission whose estimated queue wait
// exceeds its deadline is shed at admission with 429, before consuming
// queue memory; a loose deadline is admitted.
func TestServeDeadlineShed(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := newTestServer(t, serve.Config{Slots: 1, Kinds: testKinds(release)})

	run, _ := s.submit(t, `{"kind":"block"}`)
	s.waitState(t, run.ID, serve.StateRunning, 5*time.Second)
	for i := 0; i < 5; i++ {
		if _, resp := s.submit(t, `{"kind":"block"}`); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("backlog submit %d: %d", i, resp.StatusCode)
		}
	}

	// Backlog 6 at the 1s/job prior: a 1s deadline is unmeetable.
	_, resp := s.submit(t, `{"kind":"block","deadlineMS":1000}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("doomed-deadline submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("deadline shed carries no Retry-After")
	}
	if _, resp := s.submit(t, `{"kind":"block","deadlineMS":600000}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("loose-deadline submit: %d, want 202", resp.StatusCode)
	}
}

// TestServeClassPriority: an interactive job jumps queued batch work of
// its tenant but never preempts the running job.
func TestServeClassPriority(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, serve.Config{Slots: 1, Kinds: testKinds(release)})

	run, _ := s.submit(t, `{"kind":"block"}`)
	s.waitState(t, run.ID, serve.StateRunning, 5*time.Second)
	b1, _ := s.submit(t, `{"kind":"block"}`)
	i1, resp := s.submit(t, `{"kind":"block","class":"interactive"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("interactive submit: %d", resp.StatusCode)
	}
	if i1.Class != "interactive" {
		t.Fatalf("snapshot class %q, want interactive", i1.Class)
	}
	// The running batch job is untouched by the interactive arrival.
	if sn := s.waitState(t, run.ID, serve.StateRunning, time.Second); sn.State != serve.StateRunning {
		t.Fatal("running job preempted")
	}

	close(release)
	isn := s.waitState(t, i1.ID, serve.StateSucceeded, 10*time.Second)
	bsn := s.waitState(t, b1.ID, serve.StateSucceeded, 10*time.Second)
	if isn.StartedAt.After(*bsn.StartedAt) {
		t.Fatalf("interactive started %v, after batch %v", isn.StartedAt, bsn.StartedAt)
	}
}

// TestServeBadTenantSpecs: malformed tenant names, classes, and
// deadlines are 400s, not scheduling surprises.
func TestServeBadTenantSpecs(t *testing.T) {
	s := newTestServer(t, serve.Config{})
	for _, body := range []string{
		`{"kind":"table3","tenant":"no spaces"}`,
		`{"kind":"table3","tenant":"` + strings.Repeat("x", 65) + `"}`,
		`{"kind":"table3","class":"urgent"}`,
		`{"kind":"table3","deadlineMS":-5}`,
	} {
		if _, resp := s.submit(t, body); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("submit %s: %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestServeTenantHeaderOverride: the X-Rescue-Client header wins over
// the spec field, and the normalized tenant lands in the snapshot.
func TestServeTenantHeaderOverride(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := newTestServer(t, serve.Config{Kinds: testKinds(release)})
	sn, _ := s.submitAs(t, "proxy-id", `{"kind":"block","tenant":"body-id"}`)
	if sn.Tenant != "proxy-id" {
		t.Fatalf("tenant %q, want the header override proxy-id", sn.Tenant)
	}
	sn2, _ := s.submit(t, `{"kind":"block"}`)
	if sn2.Tenant != "default" {
		t.Fatalf("untagged tenant %q, want default", sn2.Tenant)
	}
}

// TestServeEventDropMarkers: a job whose event volume exceeds the
// bounded log sheds its oldest events; a consumer replaying after the
// fact gets an explicit {"type":"dropped","count":N} marker followed by
// a dense tail ending in done — and the snapshot still reports the full
// historical event count.
func TestServeEventDropMarkers(t *testing.T) {
	kinds := serve.Kinds()
	// chatty reports 100 distinct progress percentages, overwhelming the
	// tiny log cap below.
	kinds["chatty"] = func(ctx context.Context, rc serve.RunContext, _ json.RawMessage) ([]byte, error) {
		progress := fault.ProgressFromContext(ctx)
		for i := int64(1); i <= 100; i++ {
			progress(i, 100)
		}
		return []byte("chatty done\n"), nil
	}
	s := newTestServer(t, serve.Config{EventLogCap: 16, Kinds: kinds})

	sn, resp := s.submit(t, `{"kind":"chatty"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	fin := s.waitState(t, sn.ID, serve.StateSucceeded, 10*time.Second)
	// queued + started + 100 progress + done = 103 events of history.
	if fin.Events != 103 {
		t.Fatalf("snapshot events = %d, want the full 103-event history", fin.Events)
	}

	code, evb := s.get(t, "/jobs/"+sn.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("events: %d", code)
	}
	var evs []serve.Event
	sc := bufio.NewScanner(bytes.NewReader(evb))
	for sc.Scan() {
		var ev serve.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	if evs[0].Type != "dropped" || evs[0].Count != 103-16 {
		t.Fatalf("first line = %+v, want dropped count=%d", evs[0], 103-16)
	}
	if evs[0].Seq != 0 {
		t.Fatalf("dropped marker seq = %d, want 0 (synthetic)", evs[0].Seq)
	}
	for i := 1; i < len(evs); i++ {
		if want := 103 - 16 + i; evs[i].Seq != want {
			t.Fatalf("event %d seq = %d, want dense %d", i, evs[i].Seq, want)
		}
	}
	if last := evs[len(evs)-1]; last.Type != "done" || last.State != serve.StateSucceeded {
		t.Fatalf("last event %+v, want done/succeeded", last)
	}
}

// TestServeUnfairModeFIFO: -fair=false reverts to the legacy single
// FIFO — the victim waits behind the aggressor's entire backlog (the
// behavior the fairness work exists to fix, kept measurable for A/B).
func TestServeUnfairModeFIFO(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, serve.Config{
		Slots:           1,
		DisableFairness: true,
		TenantQueueCap:  2, // ignored when fairness is off
		Kinds:           testKinds(release),
	})
	run, _ := s.submitAs(t, "aggressor", `{"kind":"block"}`)
	s.waitState(t, run.ID, serve.StateRunning, 5*time.Second)
	var agg []string
	for i := 0; i < 6; i++ {
		sn, resp := s.submitAs(t, "aggressor", `{"kind":"block"}`)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("aggressor %d rejected in unfair mode: %d", i, resp.StatusCode)
		}
		agg = append(agg, sn.ID)
	}
	victim, _ := s.submitAs(t, "victim", `{"kind":"block"}`)

	close(release)
	v := s.waitState(t, victim.ID, serve.StateSucceeded, 10*time.Second)
	for _, id := range agg {
		a := s.waitState(t, id, serve.StateSucceeded, 10*time.Second)
		if a.FinishedAt.After(*v.FinishedAt) {
			t.Fatalf("unfair mode reordered FIFO: aggressor %s finished after the victim", id)
		}
	}
}
