package scan

import (
	"testing"
	"testing/quick"

	"rescue/internal/netlist"
)

func buildNFFs(n int) *netlist.Netlist {
	nl := netlist.New("ffs")
	in := nl.Input("in")
	cur := in
	for i := 0; i < n; i++ {
		cur = nl.AddFF(cur, "q")
	}
	nl.Output(cur, "o")
	return nl
}

func TestChainBalancing(t *testing.T) {
	cases := []struct {
		ffs, chains, wantLen int
	}{
		{10, 1, 10},
		{10, 2, 5},
		{10, 3, 4},
		{10, 4, 3},
		{1, 4, 1},
	}
	for _, c := range cases {
		ch, err := Insert(buildNFFs(c.ffs), c.chains)
		if err != nil {
			t.Fatal(err)
		}
		if got := ch.ChainLength(); got != c.wantLen {
			t.Errorf("%d FFs / %d chains: length %d, want %d", c.ffs, c.chains, got, c.wantLen)
		}
	}
}

// Property: chain cells across all physical chains cover every FF once.
func TestChainCoverageProperty(t *testing.T) {
	f := func(ffs8, chains4 uint8) bool {
		ffs := 1 + int(ffs8%40)
		chains := 1 + int(chains4%6)
		ch, err := Insert(buildNFFs(ffs), chains)
		if err != nil {
			return false
		}
		seen := map[netlist.FFID]int{}
		for k := 0; k < chains; k++ {
			for _, ff := range ch.chainCells(k) {
				seen[ff]++
			}
		}
		if len(seen) != ffs {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: more chains never increase test cycles for the same vectors.
func TestMoreChainsFasterProperty(t *testing.T) {
	f := func(ffs8 uint8) bool {
		ffs := 2 + int(ffs8%60)
		n := buildNFFs(ffs)
		c1, _ := Insert(n, 1)
		c4, _ := Insert(n, 4)
		return c4.TestCycles(100) <= c1.TestCycles(100)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPatternLaneMask(t *testing.T) {
	n := buildNFFs(3)
	c, _ := Insert(n, 1)
	p := c.NewPattern(5)
	if p.LaneMask() != 0b11111 {
		t.Fatalf("mask = %b", p.LaneMask())
	}
	p64 := c.NewPattern(64)
	if p64.LaneMask() != ^uint64(0) {
		t.Fatal("full mask")
	}
}
