// Sharded campaign execution.
//
// A campaign's results depend only on (fault list, pattern words, config) —
// the CampaignKey — never on worker count or scheduling. That makes a
// campaign distributable by fault-index range: a coordinator splits the
// pending indices of an eligible campaign into contiguous shards and hands
// each to a ShardFunc (typically an HTTP dispatch to a rescued worker),
// while a worker re-executes the same deterministic flow until it reaches
// the campaign whose key matches its assignment, simulates only that
// window, and returns the results.
//
// Both halves attach to a context so the machinery threads through the
// existing flow entry points untouched:
//
//   - WithShardTarget (worker side) plants the assignment; the matching
//     campaign fills the collector and aborts its flow with ErrShardDone.
//   - WithShardPlan (coordinator side) plants the dispatcher; eligible
//     campaigns fan their ranges out before the local workers start, and
//     any shard whose dispatch fails is simply left pending — the local
//     worker pool picks it up, so degradation to in-process execution is
//     the no-op fallback, not a special mode.
//
// Shard results are content-addressed twice over: the worker derives the
// CampaignKey independently (a mismatched flow never claims the target) and
// seals the result bytes with the journal's results digest, which the
// coordinator verifies before merging. A retried shard therefore merges
// byte-identically no matter which worker computed it, and a late result
// from an abandoned worker is safely discarded unread.
package fault

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// ErrShardDone is the sentinel a shard worker's campaign returns once its
// assigned window is computed: not a failure, but a signal that the rest of
// the flow is intentionally not run. Callers executing a flow under
// WithShardTarget must treat it as success and read the collector.
var ErrShardDone = errors.New("fault: shard window computed; remainder of the flow skipped by design")

// ShardResult is one computed window of a campaign: the results for fault
// indices [Lo, Hi) of the campaign identified by Key, sealed with the same
// digest the checkpoint journal uses.
type ShardResult struct {
	Key     CampaignKey `json:"key"`
	Lo      int         `json:"lo"`
	Hi      int         `json:"hi"`
	Results []Result    `json:"results"`
	Stats   Stats       `json:"stats"`
	Digest  string      `json:"digest"`
}

// seal stamps the result's content digest over its serialized results.
func (r *ShardResult) seal() {
	raw, err := json.Marshal(r.Results)
	if err != nil {
		// Results marshal in the journal on every flush; failure here is a
		// programming error, not an input condition.
		panic(fmt.Sprintf("fault: marshal shard results: %v", err))
	}
	r.Digest = resultsDigest(raw)
}

// Verify checks the result's internal consistency: window shape and the
// content digest over the serialized results. The coordinator additionally
// checks Key equality against its own derivation before merging.
func (r *ShardResult) Verify() error {
	if r.Lo < 0 || r.Hi <= r.Lo || r.Hi > r.Key.NFaults {
		return fmt.Errorf("fault: shard window [%d,%d) invalid for %d faults", r.Lo, r.Hi, r.Key.NFaults)
	}
	if len(r.Results) != r.Hi-r.Lo {
		return fmt.Errorf("fault: shard [%d,%d) carries %d results, want %d", r.Lo, r.Hi, len(r.Results), r.Hi-r.Lo)
	}
	raw, err := json.Marshal(r.Results)
	if err != nil {
		return fmt.Errorf("fault: marshal shard results: %v", err)
	}
	if got := resultsDigest(raw); got != r.Digest {
		return fmt.Errorf("fault: shard [%d,%d) digest mismatch: computed %s, sealed %s", r.Lo, r.Hi, got, r.Digest)
	}
	return nil
}

// shardTarget is the worker-side assignment: the campaign to intercept and
// the collector to fill. claimed flips exactly once, on the first campaign
// whose derived key equals the assignment's.
type shardTarget struct {
	mu      sync.Mutex
	claimed bool
	res     *ShardResult
}

// claim atomically takes the target for the campaign with key id.
func (t *shardTarget) claim(id CampaignKey) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.claimed || t.res.Key != id {
		return false
	}
	t.claimed = true
	return true
}

type shardTargetCtxKey struct{}

// WithShardTarget arms a context for shard-worker execution: the first
// campaign run under the returned context whose CampaignKey equals key
// simulates only fault indices [lo, hi), fills the returned collector, and
// returns ErrShardDone. Campaigns with other keys run normally (they may be
// prerequisites of the target — e.g. ATPG generation ahead of a fleet
// campaign).
func WithShardTarget(ctx context.Context, key CampaignKey, lo, hi int) (context.Context, *ShardResult) {
	res := &ShardResult{Key: key, Lo: lo, Hi: hi}
	return context.WithValue(ctx, shardTargetCtxKey{}, &shardTarget{res: res}), res
}

func shardTargetFrom(ctx context.Context) *shardTarget {
	t, _ := ctx.Value(shardTargetCtxKey{}).(*shardTarget)
	return t
}

// ShardFunc computes one shard remotely: the results for fault indices
// [lo, hi) of the campaign identified by key. An error means the shard
// could not be computed remotely (pool exhausted, retry budget spent); the
// campaign then runs that range locally.
type ShardFunc func(ctx context.Context, key CampaignKey, lo, hi int) (*ShardResult, error)

// ShardPlan is the coordinator-side dispatch policy attached to a context
// via WithShardPlan.
type ShardPlan struct {
	// Exec computes one shard remotely. Required.
	Exec ShardFunc
	// Shards is the number of pieces an eligible campaign's pending work is
	// split into. <= 0 means 1.
	Shards int
	// MinFaults gates dispatch: campaigns smaller than this run locally —
	// the fan-out overhead would dwarf the simulation. <= 0 means 1.
	MinFaults int
	// OnFallback, when set, is told about every shard whose remote dispatch
	// failed and was left for local execution.
	OnFallback func(key CampaignKey, lo, hi int, err error)
}

// eligible reports whether a campaign run is worth dispatching: only
// full-pattern-span campaigns qualify. Windowed runs (the ATPG per-word
// inner loop past word zero) are sequentially dependent on pattern state a
// remote flow re-derives from scratch, so dispatching them would cost
// O(n²); they always run locally.
func (p *ShardPlan) eligible(nFaults, wLo, wHi, nPatterns int) bool {
	if p == nil || p.Exec == nil || nFaults == 0 || nPatterns == 0 {
		return false
	}
	if wLo != 0 || wHi != nPatterns {
		return false
	}
	min := p.MinFaults
	if min <= 0 {
		min = 1
	}
	return nFaults >= min
}

type shardPlanCtxKey struct{}

// WithShardPlan arms a context for coordinator execution: every eligible
// campaign run under it dispatches its pending fault ranges through the
// plan before falling back to the local worker pool for whatever remains.
func WithShardPlan(ctx context.Context, p *ShardPlan) context.Context {
	return context.WithValue(ctx, shardPlanCtxKey{}, p)
}

func shardPlanFrom(ctx context.Context) *ShardPlan {
	p, _ := ctx.Value(shardPlanCtxKey{}).(*ShardPlan)
	return p
}

// dispatchShards fans the campaign's pending contiguous ranges out through
// the plan. Completed shards are copied into out, journaled, and marked in
// done; failed shards stay pending for the local workers. It returns the
// (possibly freshly allocated) done bitmap. All dispatch completes before
// the local worker pool starts, so the returned bitmap is read-only
// thereafter.
func (c *Campaign) dispatchShards(ctx context.Context, plan *ShardPlan, id CampaignKey,
	out []Result, sec *ckSection, done []bool,
	progress ProgressFunc, progressDone *atomic.Int64, total int64, st *Stats) []bool {

	// Pending contiguous spans, split into ~Shards equal pieces.
	n := len(out)
	var spans [][2]int
	pending := 0
	for i := 0; i < n; {
		for i < n && done != nil && done[i] {
			i++
		}
		j := i
		for j < n && (done == nil || !done[j]) {
			j++
		}
		if j > i {
			spans = append(spans, [2]int{i, j})
			pending += j - i
		}
		i = j
	}
	if pending == 0 {
		return done
	}
	shards := plan.Shards
	if shards < 1 {
		shards = 1
	}
	per := (pending + shards - 1) / shards
	var pieces [][2]int
	for _, s := range spans {
		for lo := s[0]; lo < s[1]; lo += per {
			hi := lo + per
			if hi > s[1] {
				hi = s[1]
			}
			pieces = append(pieces, [2]int{lo, hi})
		}
	}

	if done == nil {
		done = make([]bool, n)
	}
	var mu sync.Mutex // guards st accumulation; piece index ranges are disjoint
	var wg sync.WaitGroup
	for _, pc := range pieces {
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			res, err := plan.Exec(ctx, id, lo, hi)
			if err == nil {
				err = c.checkShard(res, id, lo, hi)
			}
			if err != nil {
				// Left pending: the local worker pool simulates this range
				// after dispatch completes — graceful degradation.
				if plan.OnFallback != nil && ctx.Err() == nil {
					plan.OnFallback(id, lo, hi, err)
				}
				return
			}
			copy(out[lo:hi], res.Results)
			if sec != nil {
				// Nothing in [lo, hi) was rehydrated (it was pending), so the
				// whole window is fresh work to journal.
				sec.record(lo, hi, out, nil)
			}
			for i := lo; i < hi; i++ {
				done[i] = true
			}
			mu.Lock()
			st.Faults += res.Stats.Faults
			st.Detected += res.Stats.Detected
			st.Dropped += res.Stats.Dropped
			st.Words += res.Stats.Words
			st.Events += res.Stats.Events
			mu.Unlock()
			if progress != nil {
				progress(progressDone.Add(int64(hi-lo)), total)
			}
		}(pc[0], pc[1])
	}
	wg.Wait()
	return done
}

// checkShard validates a remote result before it is merged: the worker must
// have derived the identical CampaignKey, covered exactly the requested
// window, and sealed results whose digest still matches.
func (c *Campaign) checkShard(res *ShardResult, id CampaignKey, lo, hi int) error {
	if res == nil {
		return errors.New("fault: nil shard result")
	}
	if res.Key != id {
		return fmt.Errorf("fault: shard key mismatch: worker computed %+v, coordinator expects %+v", res.Key, id)
	}
	if res.Lo != lo || res.Hi != hi {
		return fmt.Errorf("fault: shard window mismatch: got [%d,%d), want [%d,%d)", res.Lo, res.Hi, lo, hi)
	}
	return res.Verify()
}
