package fault

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCampaignProgressHook pins the ProgressFunc contract: monotone
// cumulative counts, a fixed total, a final call with done == total, and
// identical results with the hook installed either on the config or on the
// context.
func TestCampaignProgressHook(t *testing.T) {
	sim, u := rescueSim(t, 2, 7)
	faults := u.Collapsed[:200]

	for _, via := range []string{"config", "context", "both"} {
		t.Run(via, func(t *testing.T) {
			var mu sync.Mutex
			var calls int
			var last, lastTotal int64
			hook := func(done, total int64) {
				mu.Lock()
				defer mu.Unlock()
				calls++
				if done < last {
					t.Errorf("progress went backwards: %d after %d", done, last)
				}
				last, lastTotal = done, total
			}

			cfg := CampaignConfig{Workers: 2}
			ctx := context.Background()
			switch via {
			case "config":
				cfg.Progress = hook
			case "context":
				ctx = WithProgress(ctx, hook)
			case "both":
				cfg.Progress = hook
				ctx = WithProgress(ctx, hook)
			}
			camp := NewCampaign(sim, cfg)
			if _, _, err := camp.Run(ctx, faults); err != nil {
				t.Fatal(err)
			}
			if calls == 0 {
				t.Fatal("progress hook never called")
			}
			want := int64(len(faults))
			if last != want || lastTotal != want {
				t.Fatalf("final progress = (%d, %d), want (%d, %d)", last, lastTotal, want, want)
			}
		})
	}
}

// TestCampaignProgressRehydrated asserts that a resumed run reports its
// journaled work up front: the first hook call already includes the
// rehydrated fault count.
func TestCampaignProgressRehydrated(t *testing.T) {
	sim, u := rescueSim(t, 2, 9)
	faults := u.Collapsed[:120]
	dir := t.TempDir()

	// First run: complete, journaled.
	ck, err := OpenCheckpoint(dir+"/p.ck", false)
	if err != nil {
		t.Fatal(err)
	}
	camp := NewCampaign(sim, CampaignConfig{Workers: 1})
	if _, _, err := camp.RunCheckpoint(context.Background(), ck, faults); err != nil {
		t.Fatal(err)
	}
	if err := ck.Flush(); err != nil {
		t.Fatal(err)
	}

	// Resume: everything rehydrates; the hook must still see done == total.
	ck2, err := OpenCheckpoint(dir+"/p.ck", true)
	if err != nil {
		t.Fatal(err)
	}
	var first, calls int64
	ctx := WithProgress(context.Background(), func(done, total int64) {
		if atomic.AddInt64(&calls, 1) == 1 {
			atomic.StoreInt64(&first, done)
		}
	})
	camp2 := NewCampaign(sim, CampaignConfig{Workers: 1})
	_, st, err := camp2.RunCheckpoint(ctx, ck2, faults)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rehydrated != int64(len(faults)) {
		t.Fatalf("rehydrated %d, want %d", st.Rehydrated, len(faults))
	}
	if atomic.LoadInt64(&first) != int64(len(faults)) {
		t.Fatalf("first progress call reported %d, want the full rehydrated %d",
			atomic.LoadInt64(&first), len(faults))
	}
}

// TestCampaignProgressUnsetIdentical asserts the nil-hook path changes
// nothing: results with and without a hook are identical (the performance
// side of the no-overhead guarantee is pinned by BenchmarkFaultCampaign's
// progress sub-benchmarks at the module root).
func TestCampaignProgressUnsetIdentical(t *testing.T) {
	sim, u := rescueSim(t, 2, 11)
	faults := u.Collapsed[:150]

	plain := NewCampaign(sim, CampaignConfig{Workers: 2})
	ref, _ := mustRun(t, plain, faults)

	hooked := NewCampaign(sim, CampaignConfig{Workers: 2, Progress: func(done, total int64) {}})
	got, _ := mustRun(t, hooked, faults)
	for i := range ref {
		if len(got[i].FailObs) != len(ref[i].FailObs) || got[i].Detected != ref[i].Detected {
			t.Fatalf("fault %d: hooked result differs from plain", i)
		}
	}
}
