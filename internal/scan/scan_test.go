package scan

import (
	"testing"

	"rescue/internal/netlist"
)

// buildPipe makes the paper's Figure 2b pipeline: LCM -> SRS -> {LCX,LCY} ->
// SRT -> LCN, returning the netlist.
func buildPipe() *netlist.Netlist {
	n := netlist.New("fig2b")
	a := n.Input("a")
	b := n.Input("b")
	n.Component("LCM")
	m := n.Nand(a, b)
	srs := n.AddFF(m, "SRS")
	n.Component("LCX")
	x := n.Xor(srs, a)
	n.Component("LCY")
	y := n.Or(srs, b)
	n.Component("SRT")
	sx := n.AddFF(x, "SRT.x")
	sy := n.AddFF(y, "SRT.y")
	n.Component("LCN")
	o := n.And(sx, sy)
	n.Output(o, "out")
	return n
}

func TestInsertBasics(t *testing.T) {
	n := buildPipe()
	c, err := Insert(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Cells() != 3 {
		t.Fatalf("cells = %d, want 3", c.Cells())
	}
	if c.ChainLength() != 3 {
		t.Fatalf("chain length = %d, want 3", c.ChainLength())
	}
	c2, err := Insert(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.ChainLength() != 2 {
		t.Fatalf("2-chain length = %d, want 2", c2.ChainLength())
	}
}

func TestInsertErrors(t *testing.T) {
	n := netlist.New("comb")
	a := n.Input("a")
	n.Output(n.Not(a), "o")
	if _, err := Insert(n, 1); err == nil {
		t.Fatal("expected error for FF-less netlist")
	}
	n2 := buildPipe()
	if _, err := Insert(n2, 0); err == nil {
		t.Fatal("expected error for zero chains")
	}
}

func TestApplyTestGoodMachine(t *testing.T) {
	n := buildPipe()
	c, err := Insert(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := c.NewPattern(1)
	// scan in SRS=1; drive a=1 b=0
	p.FFVals[0] = 1
	p.PIVals[0] = 1
	p.PIVals[1] = 0
	resp := c.ApplyTest(p, netlist.NoFault)
	// LCX = XOR(SRS=1, a=1) = 0 -> SRT.x ; LCY = OR(SRS=1, b=0) = 1 -> SRT.y
	// SRS captures NAND(1,0)=1 ; out = AND(old SRT.x=0, old SRT.y=0) = 0
	if resp[0]&1 != 1 { // SRS
		t.Errorf("SRS captured %d, want 1", resp[0]&1)
	}
	if resp[1]&1 != 0 { // SRT.x
		t.Errorf("SRT.x captured %d, want 0", resp[1]&1)
	}
	if resp[2]&1 != 1 { // SRT.y
		t.Errorf("SRT.y captured %d, want 1", resp[2]&1)
	}
	if resp[3]&1 != 0 { // primary out
		t.Errorf("out = %d, want 0", resp[3]&1)
	}
}

func TestFaultChangesResponse(t *testing.T) {
	n := buildPipe()
	c, _ := Insert(n, 1)
	p := c.NewPattern(1)
	p.FFVals[0] = 1 // SRS = 1
	p.PIVals[0] = 1 // a = 1
	good := c.ApplyTest(p, netlist.NoFault)
	// fault: LCX XOR gate output stuck-at-1 (gate index 1: NAND=0, XOR=1)
	f := netlist.Fault{Gate: 1, FF: -1, Pin: -1, StuckAt1: true}
	bad := c.ApplyTest(p, f)
	if good[1] == bad[1] {
		t.Fatal("XOR sa1 should flip SRT.x capture")
	}
	// only SRT.x may differ — fault is inside LCX, ICI holds
	for i := range good {
		if i != 1 && good[i] != bad[i] {
			t.Errorf("obs point %d differs but is outside LCX cone", i)
		}
	}
}

func TestShiftRegisterModelMatchesLoad(t *testing.T) {
	n := buildPipe()
	c, _ := Insert(n, 1)
	bits := []bool{true, false, true}
	out := c.ShiftRegisterModel(bits)
	// scan-out emits last stitched cell first: SRT.y, SRT.x, SRS
	want := []bool{bits[2], bits[1], bits[0]}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("shift out = %v, want %v", out, want)
		}
	}
}

func TestTestCycles(t *testing.T) {
	n := buildPipe()
	c, _ := Insert(n, 1)
	// 3-cell chain, 10 vectors: 11 shifts of 3 + 10 captures
	if got := c.TestCycles(10); got != 11*3+10 {
		t.Fatalf("TestCycles(10) = %d", got)
	}
}

func TestBitCompIsolationTable(t *testing.T) {
	n := buildPipe()
	c, _ := Insert(n, 1)
	bc := c.BitComp()
	// every observation point fed by exactly one component: ICI holds
	for i, comps := range bc {
		if len(comps) != 1 {
			t.Errorf("obs %d fed by %d components, want 1", i, len(comps))
		}
	}
	if n.CompName(bc[0][0]) != "LCM" {
		t.Errorf("SRS bit maps to %s, want LCM", n.CompName(bc[0][0]))
	}
	if n.CompName(bc[1][0]) != "LCX" {
		t.Errorf("SRT.x bit maps to %s, want LCX", n.CompName(bc[1][0]))
	}
}

// ICI violation demo from Section 3.1: if LCY also reads LCX's output, the
// SRT.y bit's fan-in contains both LCX and LCY and isolation is lost.
func TestBitCompViolation(t *testing.T) {
	n := netlist.New("violation")
	a := n.Input("a")
	b := n.Input("b")
	n.Component("LCX")
	x := n.Xor(a, b)
	n.Component("LCY")
	y := n.Or(x, b) // reads LCX output inside the cycle: ICI violation
	n.Component("SRT")
	n.AddFF(x, "SRT.x")
	n.AddFF(y, "SRT.y")
	n.Output(y, "o")
	c, _ := Insert(n, 1)
	bc := c.BitComp()
	if len(bc[1]) < 2 {
		t.Fatalf("SRT.y fan-in = %d comps, want >=2 (violation)", len(bc[1]))
	}
}
