package flows

import (
	"context"

	"rescue/internal/area"
	"rescue/internal/atpg"
	"rescue/internal/core"
	"rescue/internal/fault"
	"rescue/internal/rtl"
)

// Env carries a flow invocation's environment: the artifact store (nil =
// build everything fresh, the CLI default) and an optional campaign
// checkpoint journal. Cached artifacts make the journal moot for the
// cached sections — journal sections are bound by content identity, so a
// flow that skips a campaign entirely on a warm hit still resumes its
// remaining campaigns correctly.
type Env struct {
	Store *Store
	Ck    *fault.Checkpoint
}

// cfgFor maps the -small flag onto the RTL configuration.
func cfgFor(small bool) rtl.Config {
	if small {
		return rtl.Small()
	}
	return rtl.Default()
}

type sysKey struct {
	Small   bool   `json:"small"`
	Variant string `json:"variant"`
}

// System returns the built, scan-inserted, ICI-audited system for a
// configuration, from the store when possible. Systems are read-only
// after construction, so one instance serves concurrent jobs.
func (e Env) System(small bool, v rtl.Variant) (*core.System, error) {
	build := func() (any, error) { return core.Build(cfgFor(small), v) }
	if e.Store == nil {
		s, err := build()
		if err != nil {
			return nil, err
		}
		return s.(*core.System), nil
	}
	val, _, err := e.Store.do(digest("system", sysKey{small, v.String()}), build)
	if err != nil {
		return nil, err
	}
	return val.(*core.System), nil
}

type tpKey struct {
	Small          bool   `json:"small"`
	Variant        string `json:"variant"`
	Seed           int64  `json:"seed"`
	MaxRandomWords int    `json:"maxRandomWords"`
	UselessLimit   int    `json:"uselessLimit"`
	MaxBacktracks  int    `json:"maxBacktracks"`
	// Workers is deliberately not part of the key: the generated test set
	// is bit-identical at any campaign concurrency.
}

func testProgramKey(small bool, v rtl.Variant, gen atpg.GenConfig) tpKey {
	return tpKey{
		Small:          small,
		Variant:        v.String(),
		Seed:           gen.Seed,
		MaxRandomWords: gen.MaxRandomWords,
		UselessLimit:   gen.UselessLimit,
		MaxBacktracks:  gen.MaxBacktracks,
	}
}

// TestProgram returns the generated ATPG test set for (system, config),
// from the store when possible. On a cold build the returned TestProgram
// carries the generation campaign's Stats; on an interrupt the partial
// program (with its stats so far) is returned alongside the error and
// nothing is cached.
func (e Env) TestProgram(ctx context.Context, sys *core.System, small bool, v rtl.Variant, gen atpg.GenConfig) (*core.TestProgram, error) {
	build := func() (any, error) { return sys.GenerateTestsFlow(ctx, gen, e.Ck) }
	if e.Store == nil {
		tp, err := build()
		return tp.(*core.TestProgram), err
	}
	val, _, err := e.Store.do(digest("testprogram", testProgramKey(small, v, gen)), build)
	if val == nil {
		// A waiter joined a build whose value was dropped on error.
		return &core.TestProgram{Gen: &atpg.GenResult{}}, err
	}
	return val.(*core.TestProgram), err
}

type dictKey struct {
	TP tpKey `json:"tp"`
}

// dictArtifact pairs a dictionary with the campaign stats of its cold
// build, so warm hits can still report what the build cost.
type dictArtifact struct {
	d  *fault.Dictionary
	st fault.Stats
}

// Dictionary returns the full fault dictionary over tp's pattern set, from
// the store when possible. The returned stats are those of the build that
// actually ran (zero-valued Faults on a warm hit means no simulation
// happened in this call).
func (e Env) Dictionary(ctx context.Context, tp *core.TestProgram, key tpKey, workers int) (*fault.Dictionary, fault.Stats, error) {
	build := func() (any, error) {
		d, st, err := fault.BuildDictionaryFlow(ctx, tp.Gen.Sim, tp.Universe, workers, e.Ck)
		return dictArtifact{d, st}, err
	}
	if e.Store == nil {
		val, err := build()
		a := val.(dictArtifact)
		return a.d, a.st, err
	}
	val, hit, err := e.Store.do(digest("dictionary", dictKey{key}), build)
	if val == nil {
		return nil, fault.Stats{}, err
	}
	a := val.(dictArtifact)
	if hit {
		// The work happened in some earlier job; this call simulated nothing.
		return a.d, fault.Stats{}, err
	}
	return a.d, a.st, err
}

type pmKey struct {
	NodeNM  int      `json:"nodeNM"`
	Benches []string `json:"benches"`
	Warmup  int64    `json:"warmup"`
	Commit  int64    `json:"commit"`
}

// PerfModel returns the per-(benchmark, degraded-configuration) IPC table
// for a node, from the store when possible.
func (e Env) PerfModel(ctx context.Context, node int, benches []string, warmup, commit int64, workers int) (*core.PerfModel, error) {
	build := func() (any, error) {
		return core.BuildPerfModelFlow(ctx, area.Node(node), benches, warmup, commit, workers)
	}
	if e.Store == nil {
		pm, err := build()
		if err != nil {
			return nil, err
		}
		return pm.(*core.PerfModel), nil
	}
	val, _, err := e.Store.do(digest("perfmodel", pmKey{node, benches, warmup, commit}), build)
	if err != nil {
		return nil, err
	}
	return val.(*core.PerfModel), nil
}
