// Package cli holds plumbing shared by the rescue commands: flag
// validation with usage-style exits, signal-driven contexts, checkpoint
// opening, and the exit-code convention —
//
//	0    success
//	1    runtime failure (build error, I/O, worker panic)
//	2    usage error (bad flags or arguments)
//	3    degraded (the work completed and the output is valid, but part of
//	     it ran in a fallback mode — e.g. shards recomputed locally after
//	     the worker pool was exhausted)
//	124  deadline exceeded (-timeout); in-flight work finished and any
//	     checkpoint journal flushed, like an interrupt
//	130  interrupted (SIGINT/SIGTERM or chaos budget); in-flight work was
//	     finished and any checkpoint journal flushed before exiting
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rescue/internal/fault"
)

// Exit codes.
const (
	ExitRuntime     = 1
	ExitUsage       = 2
	ExitDegraded    = 3
	ExitDeadline    = 124
	ExitInterrupted = 130
)

// Usagef reports a usage error on stderr and exits with code 2.
func Usagef(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "usage error: "+format+"\n", args...)
	os.Exit(ExitUsage)
}

// Fatalf reports a runtime error on stderr and exits with code 1.
func Fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(ExitRuntime)
}

// CheckWorkers validates a -workers flag: negative counts are a usage
// error (0 means all cores).
func CheckWorkers(workers int) {
	if workers < 0 {
		Usagef("-workers must be >= 0 (0 = all cores), got %d", workers)
	}
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM. Flows
// observe the cancellation at chunk boundaries: in-flight chunks finish,
// the checkpoint journal (if any) is flushed, and the command exits 130.
// A second signal kills the process the hard way (Go default behavior is
// restored once the context fires).
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// CheckTimeout validates a -timeout flag: negative durations are a usage
// error (0 means no deadline).
func CheckTimeout(d time.Duration) {
	if d < 0 {
		Usagef("-timeout must be >= 0 (0 = no deadline), got %v", d)
	}
}

// FlowContext is the standard command context: cancelled by SIGINT or
// SIGTERM (exit 130 by convention) and, when timeout > 0, bounded by a
// deadline (exit 124).
func FlowContext(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := SignalContext()
	if timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	return tctx, func() { cancel(); stop() }
}

// OpenCheckpoint validates and opens the -checkpoint/-resume flag pair.
// An empty path (checkpointing off) returns nil; -resume without
// -checkpoint is a usage error; refusing to clobber an existing journal
// without -resume is a runtime error with guidance.
func OpenCheckpoint(path string, resume bool) *fault.Checkpoint {
	if resume && path == "" {
		Usagef("-resume requires -checkpoint <path>")
	}
	if path == "" {
		return nil
	}
	ck, err := fault.OpenCheckpoint(path, resume)
	if err != nil {
		Fatalf("checkpoint: %v", err)
	}
	return ck
}

// ArmChaos arms the process-wide chaos budget from a -chaos-cancel-after
// flag: after n campaign fault simulations every campaign cancels as if
// interrupted. 0 leaves chaos off; negative budgets are a usage error.
func ArmChaos(n int64) {
	if n < 0 {
		Usagef("-chaos-cancel-after must be >= 0, got %d", n)
	}
	if n > 0 {
		fault.ChaosCancelAfterSims(n)
	}
}

// ExitFlow reports a flow error and exits with the conventional code:
// cooperative interruptions print the partial campaign stats and the
// journal path, then exit 124 (deadline) or 130 (signal, chaos budget);
// anything else — a worker panic included — exits 1.
func ExitFlow(err error, st fault.Stats, ck *fault.Checkpoint) {
	if fault.Interrupted(err) {
		code, what := ExitInterrupted, "interrupted"
		if errors.Is(err, context.DeadlineExceeded) {
			code, what = ExitDeadline, "deadline exceeded"
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", what, err)
		fmt.Fprintf(os.Stderr,
			"partial campaign: %d fault-sims (%d rehydrated), %d word-sims, %d dropped, %d gate events, %s\n",
			st.Faults, st.Rehydrated, st.Words, st.Dropped, st.Events,
			st.Wall.Round(time.Millisecond))
		if ck != nil {
			fmt.Fprintf(os.Stderr, "checkpoint journal: %s — rerun with -resume to continue\n", ck.Path())
		}
		os.Exit(code)
	}
	Fatalf("%v", err)
}

// ExitErr reports a plain (non-campaign) error and exits by the code
// convention: deadline 124, interrupt 130, anything else 1. A nil error
// returns without exiting.
func ExitErr(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintf(os.Stderr, "deadline exceeded: %v\n", err)
		os.Exit(ExitDeadline)
	}
	if errors.Is(err, context.Canceled) || fault.Interrupted(err) {
		fmt.Fprintf(os.Stderr, "interrupted: %v\n", err)
		os.Exit(ExitInterrupted)
	}
	Fatalf("%v", err)
}

// CtxWriter wraps a writer so writes fail once ctx is done — it makes
// long emitters (Verilog dumps, trace recording) interruptible without
// threading a context through their inner loops. The context's cause is
// returned as the write error, so errors.Is sees Canceled or
// DeadlineExceeded even through bufio's sticky-error plumbing.
type CtxWriter struct {
	Ctx context.Context
	W   io.Writer
}

// Write forwards to the wrapped writer unless the context is done.
func (cw CtxWriter) Write(p []byte) (int, error) {
	if cw.Ctx.Err() != nil {
		return 0, context.Cause(cw.Ctx)
	}
	return cw.W.Write(p)
}

// CtxReader is CtxWriter's read-side twin: reads fail with the context's
// cause once ctx is done.
type CtxReader struct {
	Ctx context.Context
	R   io.Reader
}

// Read forwards to the wrapped reader unless the context is done.
func (cr CtxReader) Read(p []byte) (int, error) {
	if cr.Ctx.Err() != nil {
		return 0, context.Cause(cr.Ctx)
	}
	return cr.R.Read(p)
}
