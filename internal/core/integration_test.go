package core

import (
	"testing"

	"rescue/internal/rtl"
	"rescue/internal/uarch"
	"rescue/internal/workload"
)

// TestBaselineCannotIsolate is the paper's negative control: running the
// same isolation procedure on the un-transformed baseline design produces
// ambiguous results (failing bits implicate multiple blocks), because the
// compacting issue queue, shared rename tables and shared select root
// violate ICI.
func TestBaselineCannotIsolate(t *testing.T) {
	s := buildSmall(t, rtl.Baseline)
	tp := s.GenerateTests(testCfg())
	rep := s.IsolateCampaign(tp, 40, []string{"rename", "issue"}, 11, 2)
	total := rep.Isolated + rep.Wrong + rep.Ambiguous
	if total == 0 {
		t.Fatal("no faults sampled")
	}
	if rep.Ambiguous+rep.Wrong == 0 {
		t.Fatalf("baseline unexpectedly isolated all %d faults (%+v)", total, rep.PerStage)
	}
	t.Logf("baseline: %d/%d ambiguous or wrong — cannot map out at block granularity",
		rep.Ambiguous+rep.Wrong, total)
}

// TestEndToEndSalvage walks the complete flow: build, test, inject, detect,
// isolate, map out, and run the degraded configuration in the performance
// simulator — the quickstart example as a regression test.
func TestEndToEndSalvage(t *testing.T) {
	s := buildSmall(t, rtl.RescueDesign)
	tp := s.GenerateTests(testCfg())

	// inject one detectable fault per distinct redundant super-component
	salvaged := 0
	for _, f := range tp.Universe.Collapsed {
		if salvaged >= 4 {
			break
		}
		if f.Gate < 0 {
			continue
		}
		comp := s.Design.N.CompName(s.Design.N.FaultSiteComp(f))
		truth := s.Design.Grouping[comp]
		if truth == "CHIPKILL" {
			continue
		}
		res := tp.Gen.Sim.Run(f, 0)
		if !res.Detected {
			continue
		}
		super, err := s.Audit.Isolate(res.FailObs)
		if err != nil {
			t.Fatalf("fault %v: %v", f, err)
		}
		if super != truth {
			t.Fatalf("fault %v isolated to %s, want %s", f, super, truth)
		}
		degr, err := MapOut([]string{super})
		if err != nil {
			t.Fatalf("map out %s: %v", super, err)
		}
		prof, err := workload.ByName("gzip")
		if err != nil {
			t.Fatal(err)
		}
		p := uarch.RescueParams()
		p.Degr = degr
		sim, err := uarch.New(p, prof)
		if err != nil {
			t.Fatalf("degraded sim for %s: %v", super, err)
		}
		ipc := sim.Run(1_000, 5_000).IPC()
		if ipc <= 0 {
			t.Fatalf("salvaged core for %s produced zero IPC", super)
		}
		salvaged++
	}
	if salvaged < 3 {
		t.Fatalf("only %d salvage flows exercised", salvaged)
	}
}
