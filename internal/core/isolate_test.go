package core

import (
	"reflect"
	"testing"

	"rescue/internal/fault"
	"rescue/internal/rtl"
)

var faultStatsZero fault.Stats

// TestIsolateCampaignWorkerDeterminism asserts the batch-parallel
// isolation campaign reproduces the serial sampling semantics exactly:
// identical reports (counts, per-stage breakdown, resample count) at any
// worker count.
func TestIsolateCampaignWorkerDeterminism(t *testing.T) {
	s := buildSmall(t, rtl.RescueDesign)
	tp := s.GenerateTests(testCfg())

	ref := s.IsolateCampaign(tp, 25, Stages(), 99, 1)
	for _, workers := range []int{2, 8} {
		rep := s.IsolateCampaign(tp, 25, Stages(), 99, workers)
		// Stats carries wall time and worker counts; everything else must
		// match bit-for-bit.
		rep.Stats, ref.Stats = faultStatsZero, faultStatsZero
		if !reflect.DeepEqual(rep, ref) {
			t.Fatalf("workers=%d: report %+v != serial %+v", workers, rep, ref)
		}
	}

	okRef, totalRef := s.MultiFaultIsolation(tp, 15, 3, 5, 1)
	for _, workers := range []int{2, 8} {
		ok, total := s.MultiFaultIsolation(tp, 15, 3, 5, workers)
		if ok != okRef || total != totalRef {
			t.Fatalf("multi-fault workers=%d: %d/%d != serial %d/%d", workers, ok, total, okRef, totalRef)
		}
	}
}
