package ici

import "fmt"

// This file automates Section 3.2: given a component graph that violates
// ICI, plan a sequence of transformations that repairs it. The planner
// follows the paper's own decision rules:
//
//   - a latch-closed single-stage loop whose combining node reads several
//     producers is handled by dependence rotation followed by privatizing
//     the rotated node (the issue-select pattern of Figure 4);
//   - a producer fanning out to several consumers is privatized when the
//     duplicated logic is small (area threshold), one copy per consumer;
//   - everything else is cycle split, at one latch of added latency per
//     split edge.
//
// Costs are abstract: the caller supplies per-node area weights and marks
// latency-critical edges that cycle splitting must avoid (e.g. the
// issue-wakeup loop, where a split would break back-to-back issue).

// TransformKind labels a planned step.
type TransformKind int

// Planned transformation kinds.
const (
	SplitEdge TransformKind = iota
	PrivatizeNode
	RotateLatch
)

func (k TransformKind) String() string {
	switch k {
	case SplitEdge:
		return "cycle-split"
	case PrivatizeNode:
		return "privatize"
	default:
		return "rotate"
	}
}

// Step is one planned transformation.
type Step struct {
	Kind TransformKind
	// SplitEdge: From->To. PrivatizeNode: From = node. RotateLatch:
	// From = latch.
	From, To NodeID
}

func (s Step) String() string {
	switch s.Kind {
	case SplitEdge:
		return fmt.Sprintf("cycle-split %d->%d", s.From, s.To)
	case PrivatizeNode:
		return fmt.Sprintf("privatize %d", s.From)
	default:
		return fmt.Sprintf("rotate latch %d", s.From)
	}
}

// PlanConfig tunes the planner.
type PlanConfig struct {
	// Area of each logic node (nil = unit areas). Privatization of node n
	// costs Area[n] × (consumers−1).
	Area map[NodeID]float64
	// MaxPrivatizeArea is the largest duplication cost the planner accepts
	// before falling back to cycle splitting.
	MaxPrivatizeArea float64
	// MaxSuperSize is the isolation granularity target: the planner stops
	// once every super-component has at most this many components. The
	// paper's end states are size-2 supers (Figures 3c, 4c); 1 forces
	// complete independence.
	MaxSuperSize int
	// NoSplit marks latency-critical edges that must not be cycle split
	// (the planner uses rotation/privatization there; if neither applies
	// the plan fails).
	NoSplit map[[2]NodeID]bool
}

// DefaultPlanConfig allows privatizing up to 2 units of area and targets
// the paper's size-2 super-components.
func DefaultPlanConfig() PlanConfig {
	return PlanConfig{MaxPrivatizeArea: 2, MaxSuperSize: 2}
}

// Plan computes and APPLIES a transformation sequence that makes g satisfy
// ICI, returning the steps taken. The graph is mutated; callers wanting a
// dry run should plan on a copy. An error is returned when a
// latency-critical edge cannot be repaired without splitting.
func (g *Graph) Plan(cfg PlanConfig) ([]Step, error) {
	areaOf := func(n NodeID) float64 {
		if cfg.Area == nil {
			return 1
		}
		if a, ok := cfg.Area[n]; ok {
			return a
		}
		return 1
	}
	maxSuper := cfg.MaxSuperSize
	if maxSuper < 1 {
		maxSuper = 1
	}
	var steps []Step
	for iter := 0; iter < 10*len(g.Nodes)+100; iter++ {
		// only edges inside oversized super-components need repair: a
		// super at or under the granularity target is the accepted end
		// state (the paper's shaded ovals)
		superOf := map[NodeID]int{}
		oversized := map[int]bool{}
		for si, grp := range g.SuperComponents() {
			for _, n := range grp {
				superOf[n] = si
			}
			if len(grp) > maxSuper {
				oversized[si] = true
			}
		}
		var vs []Violation
		for _, v := range g.Violations() {
			if oversized[superOf[v.From]] {
				vs = append(vs, v)
			}
		}
		if len(vs) == 0 {
			return steps, nil
		}

		// 1. Rotation opportunity: a latch whose single driver is a logic
		// node with >1 logic producers, where the driver's output edges are
		// latency-critical (the Figure 4 issue-select shape).
		if step, ok := g.findRotation(cfg); ok {
			if _, err := g.RotateDependence(step.From); err == nil {
				steps = append(steps, step)
				continue
			}
		}

		// 2. Pick the violation edge to repair: prefer producers with the
		// most consumers (privatization fixes all their edges at once).
		v := vs[0]
		best := -1
		for _, cand := range vs {
			fanout := 0
			for _, s := range g.Succs(cand.From) {
				if g.Nodes[s].Kind == Logic {
					fanout++
				}
			}
			if fanout > best {
				best = fanout
				v = cand
			}
		}

		logicConsumers := 0
		for _, s := range g.Succs(v.From) {
			if g.Nodes[s].Kind == Logic {
				logicConsumers++
			}
		}
		privCost := areaOf(v.From) * float64(logicConsumers-1)
		critical := cfg.NoSplit[[2]NodeID{v.From, v.To}]

		switch {
		case logicConsumers > 1 && (privCost <= cfg.MaxPrivatizeArea || critical):
			// one copy per consumer (latch/sink consumers keep the original)
			var groups [][]NodeID
			for _, s := range g.Succs(v.From) {
				groups = append(groups, []NodeID{s})
			}
			if _, err := g.Privatize(v.From, groups); err != nil {
				return steps, fmt.Errorf("ici: plan privatize %s: %w", g.Name(v.From), err)
			}
			steps = append(steps, Step{Kind: PrivatizeNode, From: v.From})
		case critical:
			return steps, fmt.Errorf("ici: edge %s->%s is latency-critical and has a single consumer; no legal transformation",
				g.Name(v.From), g.Name(v.To))
		default:
			if _, err := g.CycleSplit(v.From, v.To); err != nil {
				return steps, fmt.Errorf("ici: plan split: %w", err)
			}
			steps = append(steps, Step{Kind: SplitEdge, From: v.From, To: v.To})
		}
	}
	return steps, fmt.Errorf("ici: plan did not converge")
}

// findRotation detects the Figure 4 pattern: latch L with a single logic
// driver C; C has >=2 logic producers; and at least one of C's input edges
// is latency-critical (so splitting is off the table). Rotation moves the
// latch behind C, converting the many-producers-into-C violation into
// C-fans-out, which privatization then fixes cheaply.
func (g *Graph) findRotation(cfg PlanConfig) (Step, bool) {
	for li := range g.Nodes {
		if g.Nodes[li].Kind != Latch {
			continue
		}
		l := NodeID(li)
		if len(g.Preds(l)) != 1 {
			continue
		}
		c := g.Preds(l)[0]
		if g.Nodes[c].Kind != Logic {
			continue
		}
		producers := 0
		anyCritical := false
		for _, p := range g.Preds(c) {
			if g.Nodes[p].Kind == Logic {
				producers++
				if cfg.NoSplit[[2]NodeID{p, c}] {
					anyCritical = true
				}
			}
		}
		if producers >= 2 && anyCritical {
			return Step{Kind: RotateLatch, From: l}, true
		}
	}
	return Step{}, false
}

// LatencyCost returns how many cycle-split latches a plan inserted — the
// pipeline-depth cost of the repair.
func LatencyCost(steps []Step) int {
	n := 0
	for _, s := range steps {
		if s.Kind == SplitEdge {
			n++
		}
	}
	return n
}

// AreaCost returns the total duplicated area of a plan under the given
// weights (unit weights when nil), counting each privatization as
// (consumers-1) copies at plan time. The caller must pass the same Area
// map given to Plan; rotation is free by construction.
func AreaCost(steps []Step, g *Graph, area map[NodeID]float64) float64 {
	total := 0.0
	for _, s := range steps {
		if s.Kind != PrivatizeNode {
			continue
		}
		a := 1.0
		if area != nil {
			if v, ok := area[s.From]; ok {
				a = v
			}
		}
		// after Plan ran, the node has exactly one consumer; its copies
		// are named "<name>'k" — count them
		copies := 0
		prefix := g.Name(s.From) + "'"
		for i := range g.Nodes {
			if g.Nodes[i].Kind == Logic && len(g.Name(NodeID(i))) > len(prefix) &&
				g.Name(NodeID(i))[:len(prefix)] == prefix {
				copies++
			}
		}
		total += a * float64(copies)
	}
	return total
}
