package rtl

import (
	"fmt"

	"rescue/internal/netlist"
)

// buildFetch models the fetch-PC logic (chipkill: no redundancy, Section
// 4.2) and the fetch latch. The i-cache itself is BIST-covered and outside
// the scan domain, so fetched instructions enter as primary inputs.
func (p *pipe) buildFetch() {
	cfg := p.cfg

	// Fetch PC: PC register, +Ways increment, redirect mux from branch
	// target input, BTB-hit select. All chipkill.
	p.comp("chipkill.fetchpc", "fetch")
	brTarget := p.inputBus("fetch.brtarget", cfg.AddrW)
	brTaken := p.n.Input("fetch.brtaken")
	pcHold := make(Bus, cfg.AddrW)
	for i := range pcHold {
		pcHold[i] = p.n.Input(fmt.Sprintf("fetch.pcinit[%d]", i)) // placeholder D source, replaced below
	}
	// Build PC register with a feedback increment: PC' = brTaken ? target : PC+Ways
	pcQ := make(Bus, cfg.AddrW)
	for i := range pcQ {
		pcQ[i] = p.n.AddFF(pcHold[i], fmt.Sprintf("fetch.pc[%d]", i))
	}
	// PC + Ways (constant add)
	inc, _ := p.adder(pcQ, p.constBus(cfg.Ways, cfg.AddrW), p.n.Const(false))
	next := p.muxBus(brTaken, inc, brTarget)
	// rewire the PC FF D inputs to the computed next-PC
	for i := range pcQ {
		ff := p.n.DriverFF(pcQ[i])
		p.n.FFs[ff].D = next[i]
	}
	p.outputBus(pcQ, "icache.addr")

	// Fetch latch: instruction bundle from the i-cache (primary inputs).
	p.comp("chipkill.fetchlatch", "fetch")
	for w := 0; w < cfg.Ways; w++ {
		pre := fmt.Sprintf("fetch.i%d", w)
		var in instr
		in.valid = p.n.AddFF(p.n.Input(pre+".valid"), pre+".valid.q")
		in.op = p.regBus(p.inputBus(pre+".op", cfg.OpW), pre+".op.q")
		in.dest = p.regBus(p.inputBus(pre+".dest", cfg.ArchW), pre+".dest.q")
		in.src1 = p.regBus(p.inputBus(pre+".src1", cfg.ArchW), pre+".src1.q")
		in.src2 = p.regBus(p.inputBus(pre+".src2", cfg.ArchW), pre+".src2.q")
		in.imm = p.regBus(p.inputBus(pre+".imm", cfg.DataW), pre+".imm.q")
		p.fetched = append(p.fetched, in)
	}
}

// buildRoute inserts the Rescue routing stage after fetch (Section 4.2):
// per frontend way, a mux tree selects which fetched instruction this way
// decodes, with a privatized controller that skips fault-mapped ways so
// instructions reach fault-free ways in program order. The baseline has no
// routing stage: fetched instructions map one-to-one onto ways.
func (p *pipe) buildRoute() {
	cfg := p.cfg
	if !p.rescue {
		p.routed = p.fetched
		return
	}
	selW := 1
	for 1<<uint(selW) < cfg.Ways {
		selW++
	}
	for w := 0; w < cfg.Ways; w++ {
		grp := cfg.feGroup(w)
		p.comp(fmt.Sprintf("fe%d.route%d", grp, w), "fetch")
		// Controller (privatized per way): this way receives fetched
		// instruction number r where r = number of fault-free ways before
		// this one. Sum NOT(fmapFE) over ways < w with a tiny adder chain.
		idx := p.constBus(0, selW)
		for k := 0; k < w; k++ {
			ok := p.n.Not(p.fmapFE[k])
			idx = p.inc(idx, ok)
		}
		// route each field through its own mux tree
		srcs := make([]Bus, cfg.Ways)
		pick := func(get func(instr) Bus) Bus {
			for i, f := range p.fetched {
				srcs[i] = get(f)
			}
			return p.muxTree(idx, srcs)
		}
		var out instr
		validSrcs := make([]Bus, cfg.Ways)
		for i, f := range p.fetched {
			validSrcs[i] = Bus{f.valid}
		}
		// a fault-mapped way never asserts valid downstream
		rawValid := p.muxTree(idx, validSrcs)[0]
		out.valid = p.n.And(rawValid, p.n.Not(p.fmapFE[w]))
		out.op = pick(func(i instr) Bus { return i.op })
		out.dest = pick(func(i instr) Bus { return i.dest })
		out.src1 = pick(func(i instr) Bus { return i.src1 })
		out.src2 = pick(func(i instr) Bus { return i.src2 })
		out.imm = pick(func(i instr) Bus { return i.imm })

		// route-stage latch
		lat := fmt.Sprintf("route.i%d", w)
		var q instr
		q.valid = p.n.AddFF(out.valid, lat+".valid.q")
		q.op = p.regBus(out.op, lat+".op.q")
		q.dest = p.regBus(out.dest, lat+".dest.q")
		q.src1 = p.regBus(out.src1, lat+".src1.q")
		q.src2 = p.regBus(out.src2, lat+".src2.q")
		q.imm = p.regBus(out.imm, lat+".imm.q")
		p.routed = append(p.routed, q)
	}
}

// buildDecode models per-way decode (Section 4.3: already ICI-compliant —
// each way decodes in parallel with no intra-cycle communication). The
// opcode is expanded through a full decoder and recompressed into control
// bits; the exercise is structural but gives ATPG real logic.
func (p *pipe) buildDecode() {
	cfg := p.cfg
	for w := 0; w < cfg.Ways; w++ {
		grp := cfg.feGroup(w)
		p.comp(fmt.Sprintf("fe%d.dec%d", grp, w), "decode")
		in := p.routed[w]
		onehot := p.decode(in.op)
		// control bits: class = OR of opcode groups (ALU, load, store,
		// branch); recompressed opcode = original op XOR a derived parity
		// so decode faults corrupt downstream state observably.
		quarter := len(onehot) / 4
		class := make(Bus, 4)
		for c := 0; c < 4; c++ {
			lo, hi := c*quarter, (c+1)*quarter
			if c == 3 {
				hi = len(onehot)
			}
			class[c] = p.reduceOr(onehot[lo:hi])
		}
		parity := p.reduce(class, netlist.Xor)
		// recompressed opcode: classes fold back in so decoder faults
		// corrupt the opcode observably downstream
		op2 := make(Bus, cfg.OpW)
		for i := range op2 {
			op2[i] = p.n.Xor(in.op[i], p.n.And(parity, p.n.Xnor(class[i%4], parity)))
		}
		// decode latch
		lat := fmt.Sprintf("dec.i%d", w)
		var q instr
		q.valid = p.n.AddFF(p.n.And(in.valid, p.n.Not(class[3])), lat+".valid.q")
		q.op = p.regBus(op2, lat+".op.q")
		q.dest = p.regBus(in.dest, lat+".dest.q")
		q.src1 = p.regBus(in.src1, lat+".src1.q")
		q.src2 = p.regBus(in.src2, lat+".src2.q")
		q.imm = p.regBus(in.imm, lat+".imm.q")
		p.decoded = append(p.decoded, q)
	}
}

// mapTable builds one rename map-table copy: ArchRegs x TagW flip-flops
// with read-port mux trees for the given ways and write ports driven by
// wrEn/wrAddr/wrData. Returns per-way (src1, src2) tag reads.
func (p *pipe) mapTable(name string, ways []int, wrEn []netlist.NetID, wrAddr []Bus, wrData []Bus, readAddr func(way int) (Bus, Bus)) map[int][2]Bus {
	cfg := p.cfg
	rows := 1 << uint(cfg.ArchW)
	// storage
	rowQ := make([]Bus, rows)
	rowD := make([]Bus, rows)
	for r := 0; r < rows; r++ {
		rowQ[r] = make(Bus, cfg.TagW)
		rowD[r] = make(Bus, cfg.TagW)
	}
	// write logic: priority mux of write ports per row
	var wrDec [][]netlist.NetID
	for pt := range wrEn {
		dec := p.decode(wrAddr[pt])
		for r := range dec {
			dec[r] = p.n.And(dec[r], wrEn[pt])
		}
		wrDec = append(wrDec, dec)
	}
	for r := 0; r < rows; r++ {
		// later ports win (program order: higher way renames later)
		cur := make(Bus, cfg.TagW) // filled after FFs exist; placeholder
		_ = cur
		for bit := 0; bit < cfg.TagW; bit++ {
			// create FF with a temporary D; rewired below
			tmp := p.n.Const(false)
			rowQ[r][bit] = p.n.AddFF(tmp, fmt.Sprintf("%s.row%d[%d]", name, r, bit))
		}
	}
	for r := 0; r < rows; r++ {
		next := rowQ[r]
		for pt := range wrEn {
			next = p.muxBus(wrDec[pt][r], next, wrData[pt])
		}
		for bit := 0; bit < cfg.TagW; bit++ {
			ff := p.n.DriverFF(rowQ[r][bit])
			p.n.FFs[ff].D = next[bit]
		}
		rowD[r] = next
	}
	// read ports
	out := map[int][2]Bus{}
	rowsBus := make([]Bus, rows)
	for r := range rowQ {
		rowsBus[r] = rowQ[r]
	}
	for _, w := range ways {
		a1, a2 := readAddr(w)
		out[w] = [2]Bus{p.muxTree(a1, rowsBus), p.muxTree(a2, rowsBus)}
	}
	return out
}

// buildRename models the rename stage (Section 4.4). Rescue: two
// reduced-port map-table copies (one per frontend group), table reads
// cycle-split from map fixing, RAW/WAW hazard fixing computed redundantly
// per way from the cycle-splitting latch, faulty-way match masking, and
// write-port disables. Baseline: one full-ported table read and fixed in
// the same cycle — the ICI violation of Figure 3a.
func (p *pipe) buildRename() {
	cfg := p.cfg
	ways := make([]int, cfg.Ways)
	for i := range ways {
		ways[i] = i
	}

	// Free-tag allocation: per group (rescue) or shared (baseline), a
	// counter register; way k in the group gets counter+k.
	allocTag := make([]Bus, cfg.Ways)
	buildFree := func(comp string, ws []int) {
		p.comp(comp, "rename")
		ctr := make(Bus, cfg.TagW)
		for i := range ctr {
			ctr[i] = p.n.AddFF(p.n.Const(false), fmt.Sprintf("%s.ctr[%d]", comp, i))
		}
		// advance by number of valid instructions in the group
		adv := ctr
		for _, w := range ws {
			allocTag[w] = adv
			adv = p.inc(adv, p.decoded[w].valid)
		}
		for i := range ctr {
			ff := p.n.DriverFF(ctr[i])
			p.n.FFs[ff].D = adv[i]
		}
	}

	readAddr := func(w int) (Bus, Bus) { return p.decoded[w].src1, p.decoded[w].src2 }

	if p.rescue {
		// Cycle 1: per-group table copies + free lists; everything latched.
		type latched struct {
			valid            netlist.NetID
			dest, src1, src2 Bus // arch specifiers
			t1, t2           Bus // table reads
			alloc            Bus // allocated tag
			op, imm          Bus
		}
		lat := make([]latched, cfg.Ways)

		// write-buffer latches (one per way) carrying last cycle's new
		// mappings into the tables — the extra cycle-split that keeps the
		// table write path ICI-clean (see DESIGN.md).
		wbEn := make([]netlist.NetID, cfg.Ways)
		wbAddr := make([]Bus, cfg.Ways)
		wbData := make([]Bus, cfg.Ways)

		for g := 0; g < cfg.NumFEGroups(); g++ {
			buildFree(fmt.Sprintf("fe%d.free", g), []int{2 * g, 2*g + 1})
		}
		// declare every way's write-buffer latch up front: each table copy
		// takes write ports from ALL ways (any way may define any arch reg)
		for w := 0; w < cfg.Ways; w++ {
			comp := fmt.Sprintf("fe%d.rt", cfg.feGroup(w))
			p.comp(comp, "rename")
			wbEn[w] = p.ffHole(fmt.Sprintf("%s.wb%d.en", comp, w))
			wbAddr[w] = p.ffHoleBus(fmt.Sprintf("%s.wb%d.a", comp, w), cfg.ArchW)
			wbData[w] = p.ffHoleBus(fmt.Sprintf("%s.wb%d.d", comp, w), cfg.TagW)
		}
		for g := 0; g < cfg.NumFEGroups(); g++ {
			comp := fmt.Sprintf("fe%d.rt", g)
			p.comp(comp, "rename")
			gw := []int{2 * g, 2*g + 1}
			en := make([]netlist.NetID, cfg.Ways)
			ad := make([]Bus, cfg.Ways)
			da := make([]Bus, cfg.Ways)
			for w := 0; w < cfg.Ways; w++ {
				// write-port disable by fault map (Section 4.4)
				en[w] = p.n.And(wbEn[w], p.n.Not(p.fmapFE[w]))
				ad[w] = wbAddr[w]
				da[w] = wbData[w]
			}
			reads := p.mapTable(comp, gw, en, ad, da, readAddr)
			for _, w := range gw {
				pre := fmt.Sprintf("ren1.i%d", w)
				lat[w] = latched{
					valid: p.n.AddFF(p.decoded[w].valid, pre+".valid.q"),
					dest:  p.regBus(p.decoded[w].dest, pre+".dest.q"),
					src1:  p.regBus(p.decoded[w].src1, pre+".src1.q"),
					src2:  p.regBus(p.decoded[w].src2, pre+".src2.q"),
					t1:    p.regBus(reads[w][0], pre+".t1.q"),
					t2:    p.regBus(reads[w][1], pre+".t2.q"),
					alloc: p.regBus(allocTag[w], pre+".alloc.q"),
					op:    p.regBus(p.decoded[w].op, pre+".op.q"),
					imm:   p.regBus(p.decoded[w].imm, pre+".imm.q"),
				}
			}
		}

		// Cycle 2: per-way map fixing, reading only the cycle-split latch.
		for w := 0; w < cfg.Ways; w++ {
			grp := cfg.feGroup(w)
			p.comp(fmt.Sprintf("fe%d.fix%d", grp, w), "rename")
			fix := func(srcArch Bus, tableTag Bus) Bus {
				tag := tableTag
				// forward from the NEWEST earlier way whose dest matches;
				// iterate oldest->newest so later matches override.
				for e := 0; e < w; e++ {
					m := p.eq(srcArch, lat[e].dest)
					// mask matches from faulty or invalid ways
					m = p.n.And(m, lat[e].valid)
					m = p.n.And(m, p.n.Not(p.fmapFE[e]))
					tag = p.muxBus(m, tag, lat[e].alloc)
				}
				return tag
			}
			var r renamed
			r.valid = p.n.Buf(lat[w].valid)
			r.op = lat[w].op
			r.imm = lat[w].imm
			r.src1Tag = fix(lat[w].src1, lat[w].t1)
			r.src2Tag = fix(lat[w].src2, lat[w].t2)
			r.destTag = lat[w].alloc
			// drive this way's write-buffer latch (tagged fe*.fix so the
			// cone of the write-buffer FFs stays inside the group super)
			pre := fmt.Sprintf("ren2.i%d", w)
			// rewire write-buffer FFs
			enFF := p.n.DriverFF(wbEn[w])
			p.n.FFs[enFF].D = r.valid
			for i := range wbAddr[w] {
				ff := p.n.DriverFF(wbAddr[w][i])
				p.n.FFs[ff].D = lat[w].dest[i]
			}
			for i := range wbData[w] {
				ff := p.n.DriverFF(wbData[w][i])
				p.n.FFs[ff].D = r.destTag[i]
			}
			// rename output latch
			var q renamed
			q.valid = p.n.AddFF(r.valid, pre+".valid.q")
			q.op = p.regBus(r.op, pre+".op.q")
			q.destTag = p.regBus(r.destTag, pre+".dest.q")
			q.src1Tag = p.regBus(r.src1Tag, pre+".s1.q")
			q.src2Tag = p.regBus(r.src2Tag, pre+".s2.q")
			q.imm = p.regBus(r.imm, pre+".imm.q")
			p.renamed = append(p.renamed, q)
		}
		return
	}

	// Baseline: one shared full-ported table + shared free list; reads and
	// map fixing in the same cycle (Figure 3a's violation: every fix block
	// reads the shared table and free-list logic combinationally).
	buildFree("fe.free", ways)
	p.comp("fe.rt", "rename")
	en := make([]netlist.NetID, cfg.Ways)
	ad := make([]Bus, cfg.Ways)
	da := make([]Bus, cfg.Ways)
	// declare write signal holders; driven by fix logic this same cycle
	type wrHole struct {
		en   netlist.NetID
		addr Bus
		data Bus
	}
	reads := map[int][2]Bus{}
	// build table with placeholder writes first (constants), then rewire
	// by rebuilding: simpler — writes come from fix outputs computed below,
	// so build fix first requires reads... resolve with write-through FFs:
	// baseline writes the table from the fix outputs during the same cycle,
	// which we model by driving the row muxes from the fix nets created
	// after the table reads. To keep construction single-pass, the table
	// rows capture from write nets we patch afterwards via placeholder
	// buffers.
	placeholders := make([]wrHole, cfg.Ways)
	for w := 0; w < cfg.Ways; w++ {
		placeholders[w].en = p.n.Buf(p.n.Const(false))
		placeholders[w].addr = make(Bus, cfg.ArchW)
		placeholders[w].data = make(Bus, cfg.TagW)
		for i := range placeholders[w].addr {
			placeholders[w].addr[i] = p.n.Buf(p.n.Const(false))
		}
		for i := range placeholders[w].data {
			placeholders[w].data[i] = p.n.Buf(p.n.Const(false))
		}
		en[w] = placeholders[w].en
		ad[w] = placeholders[w].addr
		da[w] = placeholders[w].data
	}
	reads = p.mapTable("fe.rt", ways, en, ad, da, readAddr)

	for w := 0; w < cfg.Ways; w++ {
		p.comp(fmt.Sprintf("fe.fix%d", w), "rename")
		fix := func(srcArch Bus, tableTag Bus) Bus {
			tag := tableTag
			for e := 0; e < w; e++ {
				m := p.n.And(p.eq(srcArch, p.decoded[e].dest), p.decoded[e].valid)
				tag = p.muxBus(m, tag, allocTag[e])
			}
			return tag
		}
		var r renamed
		r.valid = p.n.Buf(p.decoded[w].valid)
		r.op = p.decoded[w].op
		r.imm = p.decoded[w].imm
		r.src1Tag = fix(p.decoded[w].src1, reads[w][0])
		r.src2Tag = fix(p.decoded[w].src2, reads[w][1])
		r.destTag = allocTag[w]
		// patch this way's table write port to the same-cycle rename result
		patch := func(ph netlist.NetID, src netlist.NetID) {
			g := p.n.DriverGate(ph)
			p.n.Gates[g].In[0] = src
		}
		patch(placeholders[w].en, r.valid)
		for i := range placeholders[w].addr {
			patch(placeholders[w].addr[i], p.decoded[w].dest[i])
		}
		for i := range placeholders[w].data {
			patch(placeholders[w].data[i], r.destTag[i])
		}
		pre := fmt.Sprintf("ren.i%d", w)
		var q renamed
		q.valid = p.n.AddFF(r.valid, pre+".valid.q")
		q.op = p.regBus(r.op, pre+".op.q")
		q.destTag = p.regBus(r.destTag, pre+".dest.q")
		q.src1Tag = p.regBus(r.src1Tag, pre+".s1.q")
		q.src2Tag = p.regBus(r.src2Tag, pre+".s2.q")
		q.imm = p.regBus(r.imm, pre+".imm.q")
		p.renamed = append(p.renamed, q)
	}
}
