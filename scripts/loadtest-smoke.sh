#!/usr/bin/env bash
# Seeded load-test smoke for the rescued daemon, and the CI SLO gate:
#
#   1. build rescued and rescue-loadgen
#   2. pin workload determinism: two -dry-run compilations of the same
#      seed must produce the identical schedule digest
#   3. boot rescued, then fire the seeded smoke population (warm-dominant
#      mix over all five job kinds, Zipf-skewed bursty clients) open-loop
#      over real HTTP with the warm-path p99 SLO and zero-error floor
#      enforced — a violation fails the build
#   4. assert BENCH_loadtest.json carries the per-kind percentiles,
#      throughput, cache economics, and SLO verdict CI archives
#   5. prove the gate can fail: rerun under an absurd 1ms SLO and require
#      a nonzero exit
#   6. SIGTERM the daemon; it must drain and exit 0
#
# The SLO floor is deliberately generous (default 5s warm p99 vs ~1s
# measured locally): it is a regression tripwire for "the artifact cache
# or scheduler broke", not a performance contest with CI hardware.
#
# Usage: scripts/loadtest-smoke.sh
#   env: SLO_P99_WARM (default 5s), LOAD_SEED (default 2026)
set -euo pipefail
cd "$(dirname "$0")/.."

slo=${SLO_P99_WARM:-5s}
seed=${LOAD_SEED:-2026}
tmp=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build"
go build -o "$tmp/rescued" ./cmd/rescued
go build -o "$tmp/rescue-loadgen" ./cmd/rescue-loadgen

gen() {
    "$tmp/rescue-loadgen" -seed "$seed" -clients 6 -duration 8s -rps 12 \
        -hit-ratio 0.95 "$@"
}

echo "== schedule determinism: same seed, same digest"
d1=$(gen -dry-run 2>&1 >/dev/null | sed -n 's/.*digest //p')
d2=$(gen -dry-run 2>&1 >/dev/null | sed -n 's/.*digest //p')
[ -n "$d1" ] || { echo "FAIL: no schedule digest from -dry-run" >&2; exit 1; }
if [ "$d1" != "$d2" ]; then
    echo "FAIL: same seed produced different schedules: $d1 vs $d2" >&2
    exit 1
fi
echo "   digest $d1"

echo "== start rescued"
"$tmp/rescued" -addr 127.0.0.1:0 -slots 4 -quiet >"$tmp/rescued.out" 2>&1 &
daemon_pid=$!
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^listening on //p' "$tmp/rescued.out")
    [ -n "$addr" ] && break
    sleep 0.1
done
[ -n "$addr" ] || { echo "FAIL: rescued never came up" >&2; cat "$tmp/rescued.out" >&2; exit 1; }
base="http://$addr"

echo "== fire the smoke population (p99 warm SLO $slo, zero-error floor)"
gen -base "$base" -slo-p99-warm "$slo" -slo-error-rate 0 -out BENCH_loadtest.json

echo "== BENCH_loadtest.json must carry the full report"
for field in '"p50_ms"' '"p90_ms"' '"p99_ms"' '"throughput_rps"' '"hit_ratio"' \
    '"errors"' '"queue_depth_max"' '"schedule_digest"' '"slo"' '"per_kind"'; do
    grep -q "$field" BENCH_loadtest.json || {
        echo "FAIL: BENCH_loadtest.json missing $field" >&2
        cat BENCH_loadtest.json >&2
        exit 1
    }
done
if ! grep -q "\"schedule_digest\": \"$d1\"" BENCH_loadtest.json; then
    echo "FAIL: report digest differs from the dry-run schedule digest" >&2
    exit 1
fi

echo "== the gate must FAIL under an absurd 1ms SLO"
if gen -base "$base" -duration 2s -slo-p99-warm 1ms -out "$tmp/tight.json" \
    -quiet >/dev/null 2>"$tmp/tight.err"; then
    echo "FAIL: 1ms warm-p99 SLO did not fail the run" >&2
    exit 1
fi
grep -q 'SLO VIOLATION' "$tmp/tight.err" || {
    echo "FAIL: no SLO VIOLATION message on stderr" >&2
    cat "$tmp/tight.err" >&2
    exit 1
}

echo "== SIGTERM: daemon must drain and exit 0"
kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=""
if [ "$rc" -ne 0 ]; then
    echo "FAIL: rescued exited $rc on SIGTERM, want 0" >&2
    cat "$tmp/rescued.out" >&2
    exit 1
fi

echo "PASS: loadtest smoke (deterministic schedule, SLOs enforced both ways, clean drain)"
