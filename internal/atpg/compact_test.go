package atpg

import (
	"testing"

	"rescue/internal/fault"
	"rescue/internal/scan"
)

// TestCompactReverse verifies that reverse static compaction never loses
// coverage and never increases the vector count.
func TestCompactReverse(t *testing.T) {
	n := buildPipe()
	c, _ := scan.Insert(n, 1)
	u := fault.NewUniverse(n)
	cfg := DefaultGenConfig()
	cfg.MaxRandomWords = 16 // deliberately generous so there is slack to trim
	cfg.UselessLimit = 8
	g := Generate(c, u, cfg)
	before := g.Vectors
	after := CompactReverse(c, u, g, 2)
	if after > before {
		t.Fatalf("compaction grew vectors: %d -> %d", before, after)
	}
	t.Logf("static compaction: %d -> %d vectors", before, after)
}
