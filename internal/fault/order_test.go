package fault

import (
	"reflect"
	"sort"
	"testing"

	"rescue/internal/netlist"
	"rescue/internal/scan"
)

// TestResultOrdering pins the documented Result ordering contract: Fails
// is word-major, then (obs, lane) ascending within each word; FailObs is
// ordered by word of first failure, then obs index. The circuit is built
// so that event discovery order (level order) disagrees with obs order —
// the low-numbered observation point sits behind the DEEP path — so an
// implementation that skipped normalization would fail this test.
func TestResultOrdering(t *testing.T) {
	n := netlist.New("ordering")
	a := n.Input("a")
	src := n.Buf(a)
	// deep path: four inverter pairs, captured by FF0 (obs 0)
	deep := src
	for i := 0; i < 4; i++ {
		deep = n.Not(n.Not(deep))
	}
	n.AddFF(deep, "ff_deep")
	// shallow path: one buffer, captured by FF1 (obs 1)
	n.AddFF(n.Buf(src), "ff_shallow")
	n.Output(src, "po") // obs 2, failing at level 0
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	c, _ := scan.Insert(n, 1)
	pats := []*scan.Pattern{c.NewPattern(64), c.NewPattern(64)}
	pats[1].PIVals[0] = ^uint64(0)
	sim := NewSim(c, pats)

	// stuck-at-1 on the source buffer propagates everywhere in word 0
	// (input all-zero) and nowhere in word 1 (input all-one).
	res := sim.Run(netlist.Fault{Gate: 0, FF: -1, Pin: -1, StuckAt1: true}, 0)
	if !res.Detected {
		t.Fatal("fault undetected")
	}
	if want := []int{0, 1, 2}; !reflect.DeepEqual(res.FailObs, want) {
		t.Fatalf("FailObs = %v, want %v (obs-index order, not discovery order)", res.FailObs, want)
	}
	if len(res.Fails) != 3*64 {
		t.Fatalf("len(Fails) = %d, want %d", len(res.Fails), 3*64)
	}
	if !sort.SliceIsSorted(res.Fails, func(i, j int) bool {
		fi, fj := res.Fails[i], res.Fails[j]
		if fi.Word != fj.Word {
			return fi.Word < fj.Word
		}
		if fi.Obs != fj.Obs {
			return fi.Obs < fj.Obs
		}
		return fi.Lane < fj.Lane
	}) {
		t.Fatalf("Fails not in canonical (word, obs, lane) order: %v", res.Fails[:8])
	}
	for i := 1; i < len(res.Fails); i++ {
		if res.Fails[i] == res.Fails[i-1] {
			t.Fatalf("duplicate FailBit %+v", res.Fails[i])
		}
	}
}

// TestResultOrderingMultiWord checks the FailObs "word of first failure"
// rule: an obs point failing first in word 1 lists after the obs points
// that already failed in word 0, regardless of index.
func TestResultOrderingMultiWord(t *testing.T) {
	n := netlist.New("multiword")
	a := n.Input("a")
	b := n.Input("b")
	n.AddFF(n.Buf(a), "fa") // obs 0, fails when a-path differs
	n.AddFF(n.Buf(b), "fb") // obs 1
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	c, _ := scan.Insert(n, 1)
	// word 0 excites only the b path; word 1 excites only the a path
	w0 := c.NewPattern(64)
	w0.PIVals[1] = ^uint64(0)
	w1 := c.NewPattern(64)
	w1.PIVals[0] = ^uint64(0)
	sim := NewSim(c, []*scan.Pattern{w0, w1})

	// stuck-at-0 on gate 1 (buf of b) fails obs 1 in word 0 only;
	// stuck-at-0 on gate 0 (buf of a) fails obs 0 in word 1 only.
	// A fault affecting both: use input-pin faults on each buf.
	resB := sim.Run(netlist.Fault{Gate: 1, FF: -1, Pin: -1, StuckAt1: false}, 0)
	if want := []int{1}; !reflect.DeepEqual(resB.FailObs, want) {
		t.Fatalf("b-path FailObs = %v, want %v", resB.FailObs, want)
	}
	if len(resB.Fails) == 0 || resB.Fails[0].Word != 0 {
		t.Fatalf("b-path first fail %+v, want word 0", resB.Fails)
	}
	resA := sim.Run(netlist.Fault{Gate: 0, FF: -1, Pin: -1, StuckAt1: false}, 0)
	if want := []int{0}; !reflect.DeepEqual(resA.FailObs, want) {
		t.Fatalf("a-path FailObs = %v, want %v", resA.FailObs, want)
	}
	if len(resA.Fails) == 0 || resA.Fails[0].Word != 1 {
		t.Fatalf("a-path first fail %+v, want word 1", resA.Fails)
	}
}
