// Degraded-operation survey: what does each map-out mode cost?
//
// A binning house receives Rescue chips with various isolated defects and
// wants a performance bin for every salvageable configuration. This example
// sweeps the single-component map-out modes of Section 4 over three
// representative workloads and prints the IPC loss of each.
//
//	go run ./examples/degraded
package main

import (
	"fmt"
	"log"

	"rescue/internal/core"
	"rescue/internal/uarch"
	"rescue/internal/workload"
)

func main() {
	modes := []struct {
		name   string
		supers []string
	}{
		{"frontend group down (2-wide fetch/rename)", []string{"FE0"}},
		{"int backend group down (2 ALUs, 1 mem port)", []string{"BE0"}},
		{"int issue-queue half down (18 entries)", []string{"IQ0"}},
		{"LSQ half down (16 entries)", []string{"LSQ0"}},
		{"worst salvageable (one of everything)", []string{"FE0", "BE0", "IQ0", "LSQ0"}},
	}
	benches := []string{"gzip", "swim", "mcf"}
	const warmup, commit = 20_000, 300_000

	full := map[string]float64{}
	for _, b := range benches {
		prof, err := workload.ByName(b)
		if err != nil {
			log.Fatal(err)
		}
		s, err := uarch.New(uarch.RescueParams(), prof)
		if err != nil {
			log.Fatal(err)
		}
		full[b] = s.Run(warmup, commit).IPC()
	}
	fmt.Printf("%-45s", "mode \\ benchmark")
	for _, b := range benches {
		fmt.Printf(" %10s", b)
	}
	fmt.Println()
	fmt.Printf("%-45s", "fault-free IPC")
	for _, b := range benches {
		fmt.Printf(" %10.3f", full[b])
	}
	fmt.Println()
	fmt.Println()

	for _, m := range modes {
		degr, err := core.MapOut(m.supers)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-45s", m.name)
		for _, b := range benches {
			prof, err := workload.ByName(b)
			if err != nil {
				log.Fatal(err)
			}
			p := uarch.RescueParams()
			p.Degr = degr
			s, err := uarch.New(p, prof)
			if err != nil {
				log.Fatal(err)
			}
			ipc := s.Run(warmup, commit).IPC()
			fmt.Printf("   %+6.1f%%", -(1-ipc/full[b])*100)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("every row is a chip core sparing would have discarded entirely")
}
