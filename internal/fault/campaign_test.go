package fault

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"rescue/internal/netlist"
	"rescue/internal/rtl"
	"rescue/internal/scan"
)

// mustRun is the test shorthand for an uninterrupted campaign run.
func mustRun(t *testing.T, c *Campaign, faults []netlist.Fault) ([]Result, Stats) {
	t.Helper()
	res, st, err := c.Run(context.Background(), faults)
	if err != nil {
		t.Fatalf("campaign run failed: %v", err)
	}
	return res, st
}

// rescueSim builds the RescueDesign small config with a seeded random
// pattern set — a real netlist with skewed propagation regions.
func rescueSim(t testing.TB, words int, seed int64) (*Sim, *Universe) {
	t.Helper()
	d, err := rtl.Build(rtl.Small(), rtl.RescueDesign)
	if err != nil {
		t.Fatal(err)
	}
	c, err := scan.Insert(d.N, 1)
	if err != nil {
		t.Fatal(err)
	}
	return NewSim(c, randomPatterns(c, words, seed)), NewUniverse(d.N)
}

// TestCampaignDeterminism asserts that the campaign engine produces
// bit-identical Result slices (Fails ordering included) at any worker
// count, and that they match the serial Sim path exactly — for both
// isolation mode (full FailObs) and coverage mode (fault dropping).
func TestCampaignDeterminism(t *testing.T) {
	sim, u := rescueSim(t, 4, 2026)
	faults := u.Collapsed
	if testing.Short() {
		faults = faults[:len(faults)/8]
	}

	for _, mode := range []struct {
		name string
		cfg  CampaignConfig
		// serial maxFail equivalent of the campaign mode
		maxFail int
	}{
		{"isolation", CampaignConfig{MaxFail: 0}, 0},
		{"coverage-drop", CampaignConfig{Drop: true}, 1},
	} {
		t.Run(mode.name, func(t *testing.T) {
			ref := make([]Result, len(faults))
			for i, f := range faults {
				ref[i] = sim.Run(f, mode.maxFail)
			}
			for _, workers := range []int{1, 2, 8} {
				cfg := mode.cfg
				cfg.Workers = workers
				camp := NewCampaign(sim, cfg)
				got, st := mustRun(t, camp, faults)
				if len(got) != len(ref) {
					t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(ref))
				}
				for i := range got {
					if !reflect.DeepEqual(got[i], ref[i]) {
						t.Fatalf("workers=%d fault %d (%v): campaign %+v != serial %+v",
							workers, i, faults[i], got[i], ref[i])
					}
				}
				if st.Faults != int64(len(faults)) {
					t.Fatalf("workers=%d: stats.Faults=%d, want %d", workers, st.Faults, len(faults))
				}
			}

			// Resume equivalence: a run interrupted mid-flight and resumed
			// from its checkpoint journal must be bit-identical to the
			// uninterrupted reference at any worker count, including across
			// a worker-count change at the kill point.
			for _, workers := range []int{1, 4} {
				path := filepath.Join(t.TempDir(), "resume.ckpt")
				cancelAt := int64(len(faults) / 2)
				var seen atomic.Int64
				ctx, cancel := context.WithCancel(context.Background())
				campaignSimHook = func(int) {
					if seen.Add(1) == cancelAt {
						cancel()
					}
				}
				cfg := mode.cfg
				cfg.Workers = workers
				camp := NewCampaign(sim, cfg)
				_, _, err := camp.RunCheckpoint(ctx, NewCheckpoint(path), faults)
				campaignSimHook = nil
				cancel()
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("workers=%d: interrupted run returned %v, want context.Canceled", workers, err)
				}
				ck, lerr := LoadCheckpoint(path)
				if lerr != nil {
					t.Fatalf("workers=%d: reload checkpoint: %v", workers, lerr)
				}
				resumeWorkers := 5 - workers // resume at a different count
				cfg.Workers = resumeWorkers
				camp2 := NewCampaign(sim, cfg)
				got, st, err := camp2.RunCheckpoint(context.Background(), ck, faults)
				if err != nil {
					t.Fatalf("workers=%d: resume failed: %v", workers, err)
				}
				if st.Rehydrated == 0 {
					t.Fatalf("workers=%d: resume rehydrated nothing", workers)
				}
				if st.Rehydrated+st.Faults != int64(len(faults)) {
					t.Fatalf("workers=%d: rehydrated %d + simulated %d != %d faults",
						workers, st.Rehydrated, st.Faults, len(faults))
				}
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("workers=%d: resumed results differ from uninterrupted reference", workers)
				}
			}
		})
	}
}

// TestCampaignDropSkipsWords checks the ERASER-style redundancy trim: in
// drop mode a detected fault must not be simulated against later words,
// and the skipped work must be visible in Stats.Dropped.
func TestCampaignDropSkipsWords(t *testing.T) {
	sim, u := rescueSim(t, 6, 7)
	camp := NewCampaign(sim, CampaignConfig{Workers: 2, Drop: true})
	results, st := mustRun(t, camp, u.Collapsed)
	nWords := int64(len(sim.Patterns))
	if st.Words+st.Dropped != int64(len(u.Collapsed))*nWords {
		t.Fatalf("words(%d) + dropped(%d) != faults(%d) × words(%d)",
			st.Words, st.Dropped, len(u.Collapsed), nWords)
	}
	if st.Dropped == 0 {
		t.Fatal("no words dropped despite detected faults and Drop mode")
	}
	detected := int64(0)
	for _, r := range results {
		if r.Detected {
			detected++
		}
	}
	if st.Detected != detected {
		t.Fatalf("stats.Detected=%d, results say %d", st.Detected, detected)
	}
	if st.Events == 0 {
		t.Fatal("stats.Events not counted")
	}
}

// TestCampaignTilingManyWords drives the word-tiled drop-mode path across
// several 64-word windows (70 patterns → two windows per in-flight fault)
// and demands exact agreement with the serial path: detection, full
// Results in isolation mode, and the Words/Dropped accounting identity.
func TestCampaignTilingManyWords(t *testing.T) {
	sim, u := rescueSim(t, 70, 99)
	faults := u.Collapsed
	if testing.Short() {
		faults = faults[:len(faults)/8]
	}
	serialDet := make([]bool, len(faults))
	for i, f := range faults {
		serialDet[i] = sim.Run(f, 1).Detected
	}

	for _, workers := range []int{1, 3} {
		camp := NewCampaign(sim, CampaignConfig{Workers: workers, Drop: true})
		res, st := mustRun(t, camp, faults)
		for i := range res {
			if res[i].Detected != serialDet[i] {
				t.Fatalf("workers=%d fault %d (%v): tiled detected=%v, serial %v",
					workers, i, faults[i], res[i].Detected, serialDet[i])
			}
		}
		nWords := int64(len(sim.Patterns))
		if st.Words+st.Dropped != int64(len(faults))*nWords {
			t.Fatalf("workers=%d: words(%d) + dropped(%d) != faults(%d) × words(%d)",
				workers, st.Words, st.Dropped, len(faults), nWords)
		}
	}

	// Isolation mode (untiled reference inside the same campaign engine)
	// must agree byte-for-byte too; a slice of the universe keeps the
	// uncapped 70-word sweeps affordable.
	isoFaults := faults
	if len(isoFaults) > 2000 {
		isoFaults = isoFaults[:2000]
	}
	ref := make([]Result, len(isoFaults))
	for i, f := range isoFaults {
		ref[i] = sim.Run(f, 0)
	}
	camp := NewCampaign(sim, CampaignConfig{Workers: 2})
	res, _ := mustRun(t, camp, isoFaults)
	for i := range res {
		if !reflect.DeepEqual(res[i], ref[i]) {
			t.Fatalf("fault %d (%v): campaign %+v != serial %+v", i, isoFaults[i], res[i], ref[i])
		}
	}
}

// TestCampaignRunWords pins the word-restricted campaign (the ATPG
// dropWord path) against serial RunWord.
func TestCampaignRunWords(t *testing.T) {
	sim, u := rescueSim(t, 5, 99)
	camp := NewCampaign(sim, CampaignConfig{Workers: 4, MaxFail: 1})
	for w := 0; w < len(sim.Patterns); w++ {
		got, _, err := camp.RunWords(context.Background(), u.Collapsed, w, w+1)
		if err != nil {
			t.Fatal(err)
		}
		for i, f := range u.Collapsed {
			want := sim.RunWord(f, w, 1)
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("word %d fault %d: campaign %+v != serial %+v", w, i, got[i], want)
			}
		}
	}
}

// TestCampaignReuse verifies per-worker scratch reuse across runs: a
// second Run over the same campaign must match a fresh serial pass.
func TestCampaignReuse(t *testing.T) {
	sim, u := rescueSim(t, 3, 5)
	camp := NewCampaign(sim, CampaignConfig{Workers: 3})
	first, _ := mustRun(t, camp, u.Collapsed)
	second, _ := mustRun(t, camp, u.Collapsed)
	if !reflect.DeepEqual(first, second) {
		t.Fatal("campaign results changed across reuse of the same campaign")
	}
}

// TestCampaignEmptyAndTiny covers degenerate shards: no faults, and fewer
// faults than workers.
func TestCampaignEmptyAndTiny(t *testing.T) {
	sim, u := rescueSim(t, 2, 3)
	camp := NewCampaign(sim, CampaignConfig{Workers: 8})
	res, st := mustRun(t, camp, nil)
	if len(res) != 0 || st.Faults != 0 {
		t.Fatalf("empty run: %d results, %d faults", len(res), st.Faults)
	}
	res, _ = mustRun(t, camp, u.Collapsed[:3])
	for i, f := range u.Collapsed[:3] {
		want := sim.Run(f, 0)
		if !reflect.DeepEqual(res[i], want) {
			t.Fatalf("tiny run fault %d: %+v != %+v", i, res[i], want)
		}
	}
}

// TestCampaignOverlapGuard provokes the overlap hazard the in-use guard
// exists for: a second Run while the first is mid-flight must be rejected
// with ErrCampaignBusy (overlapping runs would share per-worker scratch
// state and corrupt both silently), and the guard must release once the
// first run drains.
func TestCampaignOverlapGuard(t *testing.T) {
	sim, u := rescueSim(t, 2, 17)
	faults := u.Collapsed[:64]
	camp := NewCampaign(sim, CampaignConfig{Workers: 2})
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	campaignSimHook = func(int) {
		once.Do(func() { close(entered) })
		<-release
	}
	defer func() { campaignSimHook = nil }()

	done := make(chan error, 1)
	go func() {
		_, _, err := camp.Run(context.Background(), faults)
		done <- err
	}()
	<-entered // first run is simulating
	if _, _, err := camp.Run(context.Background(), faults); !errors.Is(err, ErrCampaignBusy) {
		t.Fatalf("overlapping Run returned %v, want ErrCampaignBusy", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("first run failed: %v", err)
	}
	res, _, err := camp.Run(context.Background(), faults)
	if err != nil {
		t.Fatalf("run after guard release failed: %v", err)
	}
	for i, f := range faults {
		if want := sim.Run(f, 0); !reflect.DeepEqual(res[i], want) {
			t.Fatalf("post-overlap run fault %d differs from serial", i)
		}
	}
}

// TestChunkQueueCoversAll checks that the work-stealing queue hands out
// every index exactly once, own-segment-first, steals included.
func TestChunkQueueCoversAll(t *testing.T) {
	for _, tc := range []struct{ n, workers, chunk int }{
		{100, 4, 7}, {5, 8, 1}, {1, 1, 0}, {1000, 3, 0}, {64, 2, 64},
	} {
		q := newChunkQueue(tc.n, tc.workers, tc.chunk)
		seen := make([]int, tc.n)
		for w := 0; w < tc.workers; w++ {
			for {
				lo, hi, ok := q.next(w)
				if !ok {
					break
				}
				for i := lo; i < hi; i++ {
					seen[i]++
				}
			}
		}
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d workers=%d chunk=%d: index %d handed out %d times",
					tc.n, tc.workers, tc.chunk, i, c)
			}
		}
	}
}

// TestDictionaryWorkersDeterminism: the parallel dictionary must be
// identical at every worker count.
func TestDictionaryWorkersDeterminism(t *testing.T) {
	sim, u := rescueSim(t, 4, 11)
	ref := BuildDictionary(sim, u)
	for _, w := range []int{1, 2, 8} {
		d, st := BuildDictionaryWorkers(sim, u, w)
		if !reflect.DeepEqual(d.Syndromes, ref.Syndromes) {
			t.Fatalf("workers=%d: dictionary differs from reference", w)
		}
		if st.Dropped != 0 {
			t.Fatalf("workers=%d: dictionary build dropped %d word-sims (needs full syndromes)", w, st.Dropped)
		}
	}
}
