#!/usr/bin/env bash
# Mutation check for the fault-simulation verification net: inject
# hand-picked single-line mutants into the simulator hot path — the cone
# builder, the clipped and full event walks, the excitation-skip index,
# the epoch arena, and the campaign word tiler — and require that the
# differential harness or the targeted unit tests catch every one. A
# surviving mutant means the net has a blind spot — the build fails.
#
# Each mutant is a sed substitution against one internal/fault source
# file, chosen to break a distinct mechanism:
#    1 sim.go      off-by-one: drop the last level bucket from the full walk
#    2 sim.go      inverted obs-epoch guard: FailObs dedup records nothing
#    3 sim.go      inverted lane mask: clipped path observes only padding lanes
#    4 sim.go      inverted event filter: full walk propagates only unchanged outputs
#    5 sim.go      wrong stuck polarity: stuck-at-1 injects a single-lane constant
#    6 cone.go     threshold comparison flip: exactly-threshold cones overflow
#    7 cone.go     level-sort comparator flip: cone schedule evaluates gates
#                  before their feeders
#    8 cone.go     downstream-obs flag forced false: clipped propagation never
#                  leaves the seed net
#    9 sim.go      reader CSR off-by-one: clipped walk skips the seed net's
#                  first reading gate
#   10 sim.go      SoA index transposition: good-image read flips net-major
#                  to word-major
#   11 sim.go      excitation polarity swap on the per-net rows
#   12 sim.go      excitation row swap on the exact per-pin flip rows
#   13 sim.go      epoch-overflow reset guard disabled
#   14 sim.go      arena epoch-clear skip: reset rewinds counters but leaves
#                  stale marks
#   15 campaign.go tiled path skips beginFault: obs dedup bleeds across faults
#   16 campaign.go tiled keep-list dropped: faults undetected in the first
#                  word tile are never finished
#
# Catchers, in order: the sim-vs-oracle differential harness (fast, runs
# first), then the unit tests targeting the cone/epoch/tiling/excitation
# machinery for mutants whose Results stay byte-identical (6, 13, 14) or
# that need low-lane patterns to discriminate (11, 12).
#
# Usage: scripts/check-mutants.sh [seed range, default 0:40]
set -euo pipefail
cd "$(dirname "$0")/.."

range="${1:-0:40}"
dir=internal/fault
files=(sim.go cone.go campaign.go)
unit_run='Cone|Epoch|Tiling|Excitation|Drop|Overflow|Determinism'

# target file|sed substitution
mutants=(
  'sim.go|s/for lv := int32(0); lv <= c.maxLevel \&\& !capped; lv++/for lv := int32(0); lv < c.maxLevel \&\& !capped; lv++/'
  'sim.go|s/if scr.obsEp\[oi\] != scr.runEp {/if scr.obsEp[oi] == scr.runEp {/'
  'sim.go|s/(faulty ^ c.goodRespT\[int(oi)\*st+w\]) \& mask/(faulty ^ c.goodRespT[int(oi)*st+w]) \&^ mask/'
  'sim.go|s/if (v^good\[out\])\&mask == 0 {/if (v^good[out])\&mask != 0 {/'
  'sim.go|s/stuckWord = \^uint64(0)/stuckWord = 1/'
  'cone.go|s/if len(gbuf) > threshold {/if len(gbuf) >= threshold {/'
  'cone.go|s/return c.level\[gbuf\[i\]\] < c.level\[gbuf\[j\]\]/return c.level[gbuf[i]] > c.level[gbuf[j]]/'
  'cone.go|s/c.coneDownObs\[net\] = down/c.coneDownObs[net] = down \&\& false/'
  'sim.go|s/for j := c.rdrOff\[seedNet\]; j < c.rdrOff\[seedNet+1\]; j++ {/for j := c.rdrOff[seedNet] + 1; j < c.rdrOff[seedNet+1]; j++ {/'
  'sim.go|s/return c.goodT\[int(in)\*st+w\]/return c.goodT[int(in)+st*w]/'
  'sim.go|s/exRow = c.exNetHas0\[/exRow = c.exNetHas1[/'
  'sim.go|s/exRow = c.exPinFlip1\[/exRow = c.exPinFlip0[/'
  'sim.go|s/if scr.curEp >= epochResetLimit || scr.runEp >= epochResetLimit {/if false {/'
  'sim.go|s/for i := range scr.slab {/for i := range scr.slab[:0] {/'
  'campaign.go|s/c.core.beginFault(scr)/scr.runEp += 0/'
  'campaign.go|s/keep = append(keep, \*t)/_ = t/'
)

tmp=$(mktemp -d)
for f in "${files[@]}"; do
    cp "$dir/$f" "$tmp/$f.orig"
done
restore() {
    for f in "${files[@]}"; do
        cp "$tmp/$f.orig" "$dir/$f"
    done
}
trap 'restore; rm -rf "$tmp"' EXIT

echo "== baseline: both catchers must pass on unmutated code"
go build -o "$tmp/rescue-diffcheck" ./cmd/rescue-diffcheck
"$tmp/rescue-diffcheck" -seeds "$range" -workers 1,2 > /dev/null
go test -count=1 -run "$unit_run" ./internal/fault > /dev/null

fail=0
for i in "${!mutants[@]}"; do
    target=${mutants[$i]%%|*}
    m=${mutants[$i]#*|}
    restore
    sed -i "$m" "$dir/$target"
    if cmp -s "$tmp/$target.orig" "$dir/$target"; then
        echo "FAIL: mutant $((i + 1)) did not apply — $target drifted from the sed anchor" >&2
        fail=1
        continue
    fi
    if ! go build -o "$tmp/rescue-diffcheck" ./cmd/rescue-diffcheck 2> "$tmp/build.err"; then
        echo "FAIL: mutant $((i + 1)) does not compile:" >&2
        cat "$tmp/build.err" >&2
        fail=1
        continue
    fi
    if ! "$tmp/rescue-diffcheck" -seeds "$range" -workers 1,2 > "$tmp/out.txt" 2>&1; then
        echo "ok: mutant $((i + 1)) caught by the differential harness"
        continue
    fi
    if ! go test -count=1 -run "$unit_run" ./internal/fault > "$tmp/out.txt" 2>&1; then
        echo "ok: mutant $((i + 1)) caught by the unit tests"
        continue
    fi
    echo "FAIL: mutant $((i + 1)) SURVIVED both catchers:" >&2
    echo "  $target: $m" >&2
    fail=1
done

restore
if [ "$fail" -ne 0 ]; then
    echo "mutation check FAILED" >&2
    exit 1
fi
echo "all ${#mutants[@]} mutants caught"
