package fault

import (
	"context"
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"
)

// serialReference simulates every fault on the plain serial path.
func serialReference(sim *Sim, u *Universe, maxFail int) []Result {
	ref := make([]Result, len(u.Collapsed))
	for i, f := range u.Collapsed {
		ref[i] = sim.Run(f, maxFail)
	}
	return ref
}

// TestChaosWorkerPanicIsolated injects a panic into one worker mid-chunk
// and checks the containment contract: the panic is recovered, converted
// into a *PanicError carrying the offending fault index, sibling workers
// are cancelled, and the campaign stays usable afterwards.
func TestChaosWorkerPanicIsolated(t *testing.T) {
	sim, u := rescueSim(t, 3, 41)
	faults := u.Collapsed
	for _, target := range []int{0, len(faults) / 2, len(faults) - 1} {
		camp := NewCampaign(sim, CampaignConfig{Workers: 4})
		campaignSimHook = func(i int) {
			if i == target {
				panic("injected defect")
			}
		}
		_, _, err := camp.Run(context.Background(), faults)
		campaignSimHook = nil
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("target=%d: got %v, want *PanicError", target, err)
		}
		if pe.FaultIndex != target {
			t.Fatalf("target=%d: PanicError.FaultIndex=%d", target, pe.FaultIndex)
		}
		if pe.Value != "injected defect" {
			t.Fatalf("target=%d: PanicError.Value=%v", target, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("target=%d: PanicError carries no stack", target)
		}
		if Interrupted(err) {
			t.Fatalf("target=%d: a worker panic must not count as a resumable interrupt", target)
		}
		// The guard must have been released and the campaign must still work.
		res, _, err := camp.Run(context.Background(), faults[:32])
		if err != nil {
			t.Fatalf("target=%d: campaign unusable after panic: %v", target, err)
		}
		for i, f := range faults[:32] {
			if want := sim.Run(f, 0); !reflect.DeepEqual(res[i], want) {
				t.Fatalf("target=%d: post-panic result %d differs from serial", target, i)
			}
		}
	}
}

// TestChaosRandomCancellation cancels runs at seeded random points in the
// simulation stream and checks each interruption is clean: the error is
// the cancellation cause, and a following uninterrupted run is still
// bit-identical to the serial path (no scratch-state corruption).
func TestChaosRandomCancellation(t *testing.T) {
	sim, u := rescueSim(t, 3, 43)
	faults := u.Collapsed
	ref := serialReference(sim, u, 0)
	rng := rand.New(rand.NewSource(2026))
	camp := NewCampaign(sim, CampaignConfig{Workers: 4})
	for trial := 0; trial < 8; trial++ {
		cancelAt := int64(1 + rng.Intn(len(faults)))
		var seen atomic.Int64
		ctx, cancel := context.WithCancel(context.Background())
		campaignSimHook = func(int) {
			if seen.Add(1) == cancelAt {
				cancel()
			}
		}
		_, _, err := camp.Run(ctx, faults)
		campaignSimHook = nil
		cancel()
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("trial %d (cancel at %d): got %v, want nil or context.Canceled", trial, cancelAt, err)
		}
		if err == nil && cancelAt < int64(len(faults))/2 {
			t.Fatalf("trial %d: early cancellation at %d/%d did not interrupt the run", trial, cancelAt, len(faults))
		}
		got, _, err := camp.Run(context.Background(), faults)
		if err != nil {
			t.Fatalf("trial %d: clean run after cancellation failed: %v", trial, err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("trial %d: results after cancellation differ from serial reference", trial)
		}
	}
}

// TestChaosCancelAfterSims exercises the armed chaos budget end to end:
// the campaign must cancel itself with ErrChaosCancel once the budget is
// spent, the outcome must count as Interrupted (resumable), and disarming
// must restore normal operation.
func TestChaosCancelAfterSims(t *testing.T) {
	defer ChaosCancelAfterSims(0)
	sim, u := rescueSim(t, 3, 47)
	faults := u.Collapsed
	camp := NewCampaign(sim, CampaignConfig{Workers: 4})

	ChaosCancelAfterSims(int64(len(faults) / 4))
	_, st, err := camp.Run(context.Background(), faults)
	if !errors.Is(err, ErrChaosCancel) {
		t.Fatalf("armed chaos budget: got %v, want ErrChaosCancel", err)
	}
	if !Interrupted(err) {
		t.Fatal("a chaos cancel must count as a resumable interrupt")
	}
	if st.Faults == 0 || st.Faults >= int64(len(faults)) {
		t.Fatalf("chaos-cancelled run simulated %d of %d faults, want a strict partial", st.Faults, len(faults))
	}

	ChaosCancelAfterSims(0)
	if _, _, err := camp.Run(context.Background(), faults); err != nil {
		t.Fatalf("disarmed run failed: %v", err)
	}
}

// TestChaosKillThenResumeConverges is the headline chaos scenario: a
// campaign is repeatedly "killed" by the chaos budget, its journal
// reloaded from disk each cycle (exactly what a new process does), and
// resumed at varying worker counts — and the converged result must be
// bit-identical to the serial path.
func TestChaosKillThenResumeConverges(t *testing.T) {
	defer ChaosCancelAfterSims(0)
	sim, u := rescueSim(t, 3, 53)
	faults := u.Collapsed
	ref := serialReference(sim, u, 0)
	path := filepath.Join(t.TempDir(), "chaos.ckpt")

	budget := int64(len(faults)/6 + 1)
	workerCycle := []int{4, 1, 2, 8}
	var got []Result
	var cycles int
	for {
		cycles++
		if cycles > 50 {
			t.Fatal("kill-and-resume made no progress after 50 cycles")
		}
		ck, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatalf("cycle %d: reload journal: %v", cycles, err)
		}
		ChaosCancelAfterSims(budget)
		camp := NewCampaign(sim, CampaignConfig{Workers: workerCycle[cycles%len(workerCycle)]})
		res, st, err := camp.RunCheckpoint(context.Background(), ck, faults)
		if err == nil {
			got = res
			if st.Rehydrated == 0 {
				t.Fatalf("cycle %d: converged without rehydrating any journaled work", cycles)
			}
			break
		}
		if !errors.Is(err, ErrChaosCancel) {
			t.Fatalf("cycle %d: got %v, want ErrChaosCancel", cycles, err)
		}
	}
	if cycles < 3 {
		t.Fatalf("converged in %d cycles — budget too generous to exercise resume", cycles)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("kill-and-resume result differs from the serial reference")
	}

	// A fully journaled campaign rehydrates everything without simulating.
	ChaosCancelAfterSims(0)
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	camp := NewCampaign(sim, CampaignConfig{Workers: 3})
	res, st, err := camp.RunCheckpoint(context.Background(), ck, faults)
	if err != nil {
		t.Fatalf("fully-journaled rerun failed: %v", err)
	}
	if st.Faults != 0 || st.Rehydrated != int64(len(faults)) {
		t.Fatalf("fully-journaled rerun simulated %d, rehydrated %d (want 0, %d)",
			st.Faults, st.Rehydrated, len(faults))
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatal("fully-rehydrated result differs from the serial reference")
	}
}
