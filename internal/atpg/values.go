// Package atpg implements automatic test pattern generation for full-scan
// netlists: a PODEM path-oriented decision engine over 5-valued logic
// (0, 1, X, D, D'), preceded by a random-pattern phase with fault dropping.
// This is the role Synopsys TetraMax plays in the paper's methodology
// (Sections 2 and 6.1, Table 3).
//
// Full scan reduces sequential ATPG to combinational ATPG: flip-flop Q
// outputs are controllable (pseudo primary inputs, loaded by scan-in) and
// flip-flop D inputs are observable (pseudo primary outputs, sampled by the
// capture clock and shifted out).
package atpg

// V3 is a three-valued logic value for one plane (good or faulty machine).
type V3 uint8

// Three-valued constants. X is "unassigned / unknown".
const (
	X V3 = iota
	Zero
	One
)

func (v V3) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	default:
		return "X"
	}
}

func not3(a V3) V3 {
	switch a {
	case Zero:
		return One
	case One:
		return Zero
	}
	return X
}

func and3(acc, b V3) V3 {
	if acc == Zero || b == Zero {
		return Zero
	}
	if acc == One && b == One {
		return One
	}
	return X
}

func or3(acc, b V3) V3 {
	if acc == One || b == One {
		return One
	}
	if acc == Zero && b == Zero {
		return Zero
	}
	return X
}

func xor3(a, b V3) V3 {
	if a == X || b == X {
		return X
	}
	if a == b {
		return Zero
	}
	return One
}

func mux3(sel, a, b V3) V3 {
	switch sel {
	case Zero:
		return a
	case One:
		return b
	}
	// sel unknown: output known only if both data inputs agree
	if a != X && a == b {
		return a
	}
	return X
}
