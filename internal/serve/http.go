package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"rescue/internal/obs"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs              submit {kind, params}; 202 + job snapshot
//	GET    /jobs              list all jobs
//	GET    /jobs/{id}         one job's snapshot
//	GET    /jobs/{id}/result  the finished report (text/plain)
//	GET    /jobs/{id}/events  NDJSON event stream: replay, then live until done
//	DELETE /jobs/{id}         cancel a queued or running job
//	GET    /metrics           obs text format
//	GET    /healthz           200 ok / 503 draining
//	/debug/pprof/...          net/http/pprof
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", s.handleJobs)
	mux.HandleFunc("/jobs/", s.handleJob)
	mux.Handle("/metrics", obs.Handler(s.reg))
	mux.HandleFunc("/healthz", s.handleHealth)
	obs.AttachPprof(mux)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		writeErr(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.List())
	case http.MethodPost:
		var spec Spec
		dec := json.NewDecoder(r.Body)
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, "bad job spec: %v", err)
			return
		}
		j, err := s.Submit(spec)
		switch {
		case errors.Is(err, ErrQueueFull):
			// Retry-After makes client backoff principled: the estimated
			// queue-drain time, not a guess.
			w.Header().Set("Retry-After", strconv.Itoa(s.RetryAfter()))
			writeErr(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrDraining):
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, ErrUnknownKind):
			writeErr(w, http.StatusBadRequest, "%v", err)
		case err != nil:
			writeErr(w, http.StatusInternalServerError, "%v", err)
		default:
			writeJSON(w, http.StatusAccepted, j.snapshot())
		}
	default:
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	j, ok := s.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "no job %q", id)
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, j.snapshot())
	case sub == "" && r.Method == http.MethodDelete:
		s.Cancel(id)
		writeJSON(w, http.StatusOK, j.snapshot())
	case sub == "result" && r.Method == http.MethodGet:
		s.handleResult(w, j)
	case sub == "events" && r.Method == http.MethodGet:
		s.handleEvents(w, r, j)
	default:
		writeErr(w, http.StatusNotFound, "no route /jobs/%s/%s", id, sub)
	}
}

func (s *Server) handleResult(w http.ResponseWriter, j *Job) {
	out, state, errMsg := j.result()
	if !state.Done() {
		writeErr(w, http.StatusConflict, "job %s is %s; result not ready", j.ID, state)
		return
	}
	if state != StateSucceeded {
		writeErr(w, http.StatusConflict, "job %s %s: %s", j.ID, state, errMsg)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write(out)
}

// handleEvents streams the job's event log as NDJSON: everything so far,
// then live appends until the job reaches a terminal state or the client
// goes away. Each line is one Event.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	after := 0
	for {
		evs, state, changed := j.eventsSince(after)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		after += len(evs)
		if len(evs) > 0 && fl != nil {
			fl.Flush()
		}
		if state.Done() {
			// Drain any events appended between the snapshot and now.
			if evs, _, _ := j.eventsSince(after); len(evs) == 0 {
				return
			}
			continue
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}
