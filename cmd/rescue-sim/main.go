// Command rescue-sim reproduces the paper's Figure 8 (per-benchmark IPC of
// the baseline superscalar vs. the ICI-transformed Rescue pipeline) and
// prints the Table 1 machine parameters.
//
// Usage:
//
//	rescue-sim [-params] [-bench name,name,...] [-warmup N] [-commit N]
//	           [-workers N] [-timeout D] [-progress]
//	           [-degraded fe,ib,fb,iqi,iqf,lsq]
//
// SIGINT/SIGTERM stop the study between simulations and exit 130; a
// -timeout deadline exits 124.
package main

import (
	"context"
	"flag"
	"fmt"
	"strconv"
	"strings"

	"rescue/internal/cli"
	"rescue/internal/core"
	"rescue/internal/uarch"
	"rescue/internal/workload"
)

func main() {
	params := flag.Bool("params", false, "print Table 1 parameters and exit")
	report := flag.Bool("report", false, "print the full per-benchmark statistics report")
	benches := flag.String("bench", "", "comma-separated benchmark subset (default: all 23)")
	warmup := flag.Int64("warmup", 100_000, "warmup instructions")
	commit := flag.Int64("commit", 1_000_000, "measured instructions")
	degraded := flag.String("degraded", "", "degraded config counts: fe,ib,fb,iqi,iqf,lsq")
	ff := cli.AddStudyFlags(flag.CommandLine)
	flag.Parse()
	ff.Validate()

	if *params {
		printParams()
		return
	}

	ctx, stop := ff.Context()
	defer stop()

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}

	if *degraded != "" {
		runDegraded(ctx, names, *degraded, *warmup, *commit)
		return
	}

	if *report {
		runReport(ctx, names, *warmup, *commit)
		return
	}

	rows, err := core.IPCStudyFlow(ctx, names, *warmup, *commit, ff.Workers)
	if err != nil {
		cli.ExitErr(err)
	}
	fmt.Println("Figure 8: IPC degradation (paper: 0% (swim) to 10% (bzip), mean 4%)")
	fmt.Println()
	fmt.Printf("%-10s %9s %9s %7s\n", "benchmark", "baseline", "rescue", "deg%")
	var sum float64
	for _, r := range rows {
		fmt.Printf("%-10s %9.3f %9.3f %6.1f%%\n", r.Benchmark, r.Baseline, r.Rescue, r.DegradationPct)
		sum += r.DegradationPct
	}
	fmt.Println()
	fmt.Printf("MEAN degradation: %.2f%%\n", sum/float64(len(rows)))
}

// runReport prints each benchmark's detailed statistics (occupancy,
// replay/squash counters) for both machines.
func runReport(ctx context.Context, names []string, warmup, commit int64) {
	if names == nil {
		names = []string{"gzip", "swim", "mcf"}
	}
	for _, name := range names {
		if ctx.Err() != nil {
			cli.ExitErr(context.Cause(ctx))
		}
		prof, err := workload.ByName(name)
		if err != nil {
			cli.Usagef("%v", err)
		}
		for _, rescueMachine := range []bool{false, true} {
			p := uarch.DefaultParams()
			label := "baseline"
			if rescueMachine {
				p = uarch.RescueParams()
				label = "rescue"
			}
			s, err := uarch.New(p, prof)
			if err != nil {
				cli.Fatalf("%v", err)
			}
			s.Run(warmup, commit)
			fmt.Printf("=== %s / %s ===\n%s\n", name, label, s.Report())
		}
	}
}

func runDegraded(ctx context.Context, names []string, spec string, warmup, commit int64) {
	parts := strings.Split(spec, ",")
	if len(parts) != 6 {
		cli.Usagef("-degraded needs 6 comma-separated counts: fe,ib,fb,iqi,iqf,lsq")
	}
	var v [6]int
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			cli.Usagef("-degraded: bad count %q: %v", p, err)
		}
		v[i] = n
	}
	d := uarch.Degraded{
		FEGroupsDisabled: v[0], IntGroupsDisabled: v[1], FPGroupsDisabled: v[2],
		IntIQHalvesDown: v[3], FPIQHalvesDown: v[4], LSQHalvesDown: v[5],
	}
	if names == nil {
		for _, p := range workload.Benchmarks() {
			names = append(names, p.Name)
		}
	}
	fmt.Printf("degraded configuration: %v\n\n", d)
	fmt.Printf("%-10s %9s %10s %7s\n", "benchmark", "full", "degraded", "loss%")
	for _, name := range names {
		if ctx.Err() != nil {
			cli.ExitErr(context.Cause(ctx))
		}
		prof, err := workload.ByName(name)
		if err != nil {
			cli.Usagef("%v", err)
		}
		pf := uarch.RescueParams()
		sf, err := uarch.New(pf, prof)
		if err != nil {
			cli.Fatalf("%v", err)
		}
		full := sf.Run(warmup, commit).IPC()
		pd := uarch.RescueParams()
		pd.Degr = d
		sd, err := uarch.New(pd, prof)
		if err != nil {
			cli.Fatalf("%v", err)
		}
		deg := sd.Run(warmup, commit).IPC()
		fmt.Printf("%-10s %9.3f %10.3f %6.1f%%\n", name, full, deg, (1-deg/full)*100)
	}
}

func printParams() {
	p := uarch.DefaultParams()
	r := uarch.RescueParams()
	fmt.Println("Table 1: System Parameters")
	fmt.Printf("  issue width            %d (per queue)\n", p.IssueWidth)
	fmt.Printf("  frontend/backend ways  %d\n", p.Ways)
	fmt.Printf("  int / fp issue queue   %d / %d entries (two halves)\n", p.IntIQSize, p.FPIQSize)
	fmt.Printf("  load/store queue       %d entries (two halves)\n", p.LSQSize)
	fmt.Printf("  active list (ROB)      %d entries\n", p.ROBSize)
	fmt.Printf("  branch predictor       8KB hybrid (bimodal+gshare), 1KB 4-way BTB, RAS\n")
	fmt.Printf("  mispredict penalty     %d cycles baseline, %d Rescue (+2 shift stages)\n",
		p.FrontendDepth, r.FrontendDepth)
	fmt.Printf("  L1 I/D                 64KB 2-way 32B 2-cycle; D 2-port\n")
	fmt.Printf("  L2                     2MB 8-way 64B 15-cycle\n")
	fmt.Printf("  memory                 250 cycles (x1.5 per technology halving)\n")
	fmt.Printf("  Rescue compaction buf  %d entries per queue; L1-miss squash window %d (vs %d)\n",
		r.CompBufSlots, r.SquashWindow, p.SquashWindow)
}
