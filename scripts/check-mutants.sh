#!/usr/bin/env bash
# Mutation check for the differential verification harness: inject a
# handful of hand-picked single-line mutants into the event-driven fault
# simulator and require that the sim-vs-oracle harness catches every one.
# A surviving mutant means the harness has a blind spot — the build fails.
#
# Each mutant is a sed substitution against internal/fault/sim.go, chosen
# to break a distinct mechanism:
#   1 off-by-one: drop the last level bucket from propagation
#   2 inverted epoch guard: re-seed already-seeded observation points
#   3 inverted lane mask: observe only the padding lanes of short words
#   4 inverted event filter: propagate only *unchanged* gate outputs
#   5 wrong stuck polarity: stuck-at-1 injects a single-lane constant
#
# Usage: scripts/check-mutants.sh [seed range, default 0:40]
set -euo pipefail
cd "$(dirname "$0")/.."

range="${1:-0:40}"
target=internal/fault/sim.go

mutants=(
  's/for lv := int32(0); lv <= c.maxLevel \&\& !capped; lv++/for lv := int32(0); lv < c.maxLevel \&\& !capped; lv++/'
  's/if scr.obsEp\[oi\] != scr.runEp {/if scr.obsEp[oi] == scr.runEp {/'
  's/if diff := (faulty ^ c.goodResp\[w\]\[oi\]) \& mask; diff != 0 {/if diff := (faulty ^ c.goodResp[w][oi]) \&^ mask; diff != 0 {/'
  's/if (v^good\[g.Out\])\&mask == 0 {/if (v^good[g.Out])\&mask != 0 {/'
  's/stuckWord = \^uint64(0)/stuckWord = 1/'
)

tmp=$(mktemp -d)
cp "$target" "$tmp/sim.go.orig"
trap 'cp "$tmp/sim.go.orig" "$target"; rm -rf "$tmp"' EXIT

echo "== baseline: harness must pass on unmutated code"
go build -o "$tmp/rescue-diffcheck" ./cmd/rescue-diffcheck
"$tmp/rescue-diffcheck" -seeds "$range" -workers 1,2 > /dev/null

fail=0
for i in "${!mutants[@]}"; do
    m=${mutants[$i]}
    cp "$tmp/sim.go.orig" "$target"
    sed -i "$m" "$target"
    if cmp -s "$tmp/sim.go.orig" "$target"; then
        echo "FAIL: mutant $((i + 1)) did not apply — sim.go drifted from the sed anchors" >&2
        fail=1
        continue
    fi
    if ! go build -o "$tmp/rescue-diffcheck" ./cmd/rescue-diffcheck 2> "$tmp/build.err"; then
        echo "FAIL: mutant $((i + 1)) does not compile:" >&2
        cat "$tmp/build.err" >&2
        fail=1
        continue
    fi
    if "$tmp/rescue-diffcheck" -seeds "$range" -workers 1,2 > "$tmp/out.txt" 2>&1; then
        echo "FAIL: mutant $((i + 1)) SURVIVED the differential harness:" >&2
        echo "  $m" >&2
        fail=1
    else
        echo "ok: mutant $((i + 1)) caught"
    fi
done

cp "$tmp/sim.go.orig" "$target"
if [ "$fail" -ne 0 ]; then
    echo "mutation check FAILED" >&2
    exit 1
fi
echo "all ${#mutants[@]} mutants caught"
