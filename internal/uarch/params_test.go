package uarch

import (
	"errors"
	"testing"
)

// TestDegradedValidate pins the boundary behavior of the degraded-shape
// validation: every field accepts exactly [0,2] (a two-member redundant
// pair can lose zero, one, or both members), and anything outside that
// range is a typed DegradedError naming the offending field.
func TestDegradedValidate(t *testing.T) {
	set := func(field string, v int) Degraded {
		var d Degraded
		switch field {
		case "FEGroupsDisabled":
			d.FEGroupsDisabled = v
		case "IntGroupsDisabled":
			d.IntGroupsDisabled = v
		case "FPGroupsDisabled":
			d.FPGroupsDisabled = v
		case "IntIQHalvesDown":
			d.IntIQHalvesDown = v
		case "FPIQHalvesDown":
			d.FPIQHalvesDown = v
		case "LSQHalvesDown":
			d.LSQHalvesDown = v
		default:
			t.Fatalf("unknown field %q", field)
		}
		return d
	}
	fields := []string{
		"FEGroupsDisabled", "IntGroupsDisabled", "FPGroupsDisabled",
		"IntIQHalvesDown", "FPIQHalvesDown", "LSQHalvesDown",
	}
	for _, f := range fields {
		for _, tc := range []struct {
			v  int
			ok bool
		}{
			{-1, false}, // negative counts describe nothing
			{0, true},   // pristine
			{1, true},   // half lost — the paper's degraded modes
			{2, true},   // both lost: dead but representable (Dead() == true)
			{3, false},  // more halves down than exist
			{100, false},
		} {
			err := set(f, tc.v).Validate()
			if tc.ok && err != nil {
				t.Errorf("%s=%d: unexpected error %v", f, tc.v, err)
			}
			if !tc.ok {
				var de *DegradedError
				if !errors.As(err, &de) {
					t.Errorf("%s=%d: want *DegradedError, got %v", f, tc.v, err)
					continue
				}
				if de.Field != f || de.Value != tc.v {
					t.Errorf("%s=%d: error names %s=%d", f, tc.v, de.Field, de.Value)
				}
			}
		}
	}
}

// TestParamsValidateDegraded pins that Params.Validate surfaces the typed
// degraded error (Rescue machines) and still rejects degraded operation
// on the baseline design.
func TestParamsValidateDegraded(t *testing.T) {
	p := RescueParams()
	p.Degr.LSQHalvesDown = 3
	var de *DegradedError
	if err := p.Validate(); !errors.As(err, &de) {
		t.Fatalf("rescue with LSQHalvesDown=3: want *DegradedError, got %v", err)
	}

	p = RescueParams()
	p.Degr.IntIQHalvesDown = 2 // dead but valid
	if err := p.Validate(); err != nil {
		t.Fatalf("rescue with a dead-but-representable shape: %v", err)
	}
	if !p.Degr.Dead() {
		t.Fatal("IntIQHalvesDown=2 should report Dead")
	}

	p = DefaultParams()
	p.Degr.FEGroupsDisabled = 1
	if err := p.Validate(); err == nil {
		t.Fatal("baseline with degraded fields must not validate")
	}
}
