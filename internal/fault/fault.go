// Package fault implements the single-stuck-at fault model used throughout
// the Rescue paper: fault universe enumeration, structural equivalence
// collapsing, and a cone-restricted, pattern-parallel fault simulator that
// reports exactly which scan-chain bits fail for a given fault — the raw
// material of the paper's fault-isolation procedure (Section 6.1).
package fault

import (
	"rescue/internal/netlist"
)

// Universe is the collapsed single-stuck-at fault list of a netlist.
type Universe struct {
	N *netlist.Netlist
	// All is the uncollapsed list (the count Table 3 reports as "faults").
	All []netlist.Fault
	// Collapsed holds one representative per structural equivalence class.
	Collapsed []netlist.Fault
	// classOf maps an index into All to its representative index in
	// Collapsed.
	classOf []int
}

// NewUniverse enumerates and collapses the fault universe of n.
//
// Collapsing uses the classic local gate-level equivalences:
//
//	AND:  input sa0 == output sa0      NAND: input sa0 == output sa1
//	OR:   input sa1 == output sa1      NOR:  input sa1 == output sa0
//	NOT:  input sa0 == output sa1, input sa1 == output sa0
//	BUF:  input saX == output saX
//
// Gate-output representatives are kept. MUX2 and XOR/XNOR inputs collapse to
// nothing (all their faults are distinct), matching standard ATPG practice.
func NewUniverse(n *netlist.Netlist) *Universe {
	u := &Universe{N: n, All: n.AllFaultSites()}
	u.classOf = make([]int, len(u.All))

	// index of each gate-output fault within Collapsed, filled as we go
	type outKey struct {
		gate netlist.GateID
		sa1  bool
	}
	outRep := map[outKey]int{}
	addRep := func(f netlist.Fault) int {
		u.Collapsed = append(u.Collapsed, f)
		return len(u.Collapsed) - 1
	}
	// First pass: register all gate-output and FF faults as representatives.
	for i, f := range u.All {
		if f.Gate >= 0 && f.Pin < 0 {
			idx := addRep(f)
			outRep[outKey{f.Gate, f.StuckAt1}] = idx
			u.classOf[i] = idx
		} else if f.Gate < 0 {
			u.classOf[i] = addRep(f)
		}
	}
	// Second pass: map input-pin faults to an output representative when a
	// local equivalence applies; otherwise they are their own class.
	for i, f := range u.All {
		if f.Gate < 0 || f.Pin < 0 {
			continue
		}
		kind := u.N.Gates[f.Gate].Kind
		var eq bool
		var outSA1 bool
		switch kind {
		case netlist.And:
			eq, outSA1 = !f.StuckAt1, false
		case netlist.Or:
			eq, outSA1 = f.StuckAt1, true
		case netlist.Nand:
			eq, outSA1 = !f.StuckAt1, true
		case netlist.Nor:
			eq, outSA1 = f.StuckAt1, false
		case netlist.Not:
			eq, outSA1 = true, !f.StuckAt1
		case netlist.Buf:
			eq, outSA1 = true, f.StuckAt1
		}
		if eq {
			u.classOf[i] = outRep[outKey{f.Gate, outSA1}]
		} else {
			u.classOf[i] = addRep(f)
		}
	}
	return u
}

// ClassOf returns the representative (index into Collapsed) of All[i].
func (u *Universe) ClassOf(i int) int { return u.classOf[i] }

// CountAll reports the uncollapsed fault count.
func (u *Universe) CountAll() int { return len(u.All) }

// CountCollapsed reports the collapsed fault count.
func (u *Universe) CountCollapsed() int { return len(u.Collapsed) }
