package loadgen_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"rescue/internal/loadgen"
	"rescue/internal/serve"
)

// echoKinds returns a serve kind set with one fast test kind: "echo"
// sleeps params.ms milliseconds and succeeds. It gives the firing engine
// a real daemon — bounded queue, 429 + Retry-After, event streams — at
// millisecond job cost.
func echoKinds() map[string]serve.Runner {
	return map[string]serve.Runner{
		"echo": func(ctx context.Context, rc serve.RunContext, params json.RawMessage) ([]byte, error) {
			var p struct {
				MS   int   `json:"ms"`
				Seed int64 `json:"seed"`
			}
			json.Unmarshal(params, &p)
			select {
			case <-time.After(time.Duration(p.MS) * time.Millisecond):
			case <-ctx.Done():
				return nil, context.Cause(ctx)
			}
			return []byte("ok\n"), nil
		},
	}
}

func echoProfiles(ms int) []loadgen.Profile {
	return []loadgen.Profile{
		{Kind: "echo", Weight: 1, SeedKey: "seed",
			Params: map[string]any{"ms": ms}},
	}
}

// TestRunEndToEnd drives a compiled schedule through a live serve.Server
// over HTTP: every request must complete, the report must account for all
// of them, and the SLO gate must pass on a generous floor and trip on an
// absurd one.
func TestRunEndToEnd(t *testing.T) {
	srv := serve.New(serve.Config{Slots: 4, QueueCap: 64, Kinds: echoKinds()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg := loadgen.Config{
		Seed:      3,
		Clients:   5,
		Duration:  600 * time.Millisecond,
		RPS:       50,
		Skew:      1,
		HitRatio:  0.7,
		BurstFrac: 0.4,
		Profiles:  echoProfiles(2),
	}
	sch, err := loadgen.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := loadgen.Run(context.Background(), sch, loadgen.Options{
		BaseURL:     ts.URL,
		Prewarm:     true,
		SampleEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Results) != len(sch.Requests) {
		t.Fatalf("recorded %d results for %d requests", len(stats.Results), len(sch.Requests))
	}
	for _, rr := range stats.Results {
		if !rr.OK() {
			t.Fatalf("request %d (%s) ended %s: %s", rr.Seq, rr.Kind, rr.State, rr.Err)
		}
		if rr.TotalMS <= 0 || rr.TotalMS < rr.SubmitMS {
			t.Fatalf("request %d has nonsense latency: submit %.2fms total %.2fms",
				rr.Seq, rr.SubmitMS, rr.TotalMS)
		}
	}
	if stats.Slots != 4 {
		t.Fatalf("sampled scheduler_slots = %d, want 4", stats.Slots)
	}

	r := loadgen.BuildReport(cfg, sch, stats)
	if r.Requests != len(sch.Requests) || r.Errors != 0 {
		t.Fatalf("report accounting: %d requests, %d errors", r.Requests, r.Errors)
	}
	if r.Warm.Count+r.Cold.Count != r.Requests {
		t.Fatalf("warm %d + cold %d != %d", r.Warm.Count, r.Cold.Count, r.Requests)
	}
	if r.Warm.P99MS < r.Warm.P50MS || r.Warm.MaxMS < r.Warm.P99MS {
		t.Fatalf("warm percentiles not monotone: %+v", r.Warm)
	}
	if r.ThroughputRPS <= 0 {
		t.Fatalf("throughput %.2f, want > 0", r.ThroughputRPS)
	}
	if r.Digest != sch.Digest() {
		t.Fatal("report digest != schedule digest")
	}

	if v := r.CheckSLOs(time.Minute, 0); len(v) != 0 {
		t.Fatalf("generous SLO violated: %v", v)
	}
	if v := r.CheckSLOs(time.Microsecond, 0); len(v) == 0 {
		t.Fatal("absurd 1µs warm-p99 SLO not violated")
	}
	if !r.SLO.Checked || len(r.SLO.Violations) == 0 {
		t.Fatalf("SLO verdict not recorded in report: %+v", r.SLO)
	}
}

// TestRunBackoff: a tiny queue under a burst forces 429s; the generator
// must honor Retry-After, retry, and land every request without loss.
func TestRunBackoff(t *testing.T) {
	srv := serve.New(serve.Config{Slots: 1, QueueCap: 1, Kinds: echoKinds()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg := loadgen.Config{
		Seed:     9,
		Clients:  2,
		Duration: 300 * time.Millisecond,
		RPS:      40,
		HitRatio: 1,
		Profiles: echoProfiles(50),
	}
	sch, err := loadgen.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sch.Requests) < 6 {
		t.Fatalf("schedule too small to overflow the queue: %d requests", len(sch.Requests))
	}
	stats, err := loadgen.Run(context.Background(), sch, loadgen.Options{
		BaseURL:    ts.URL,
		MaxRetries: 200,
		RetryCap:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := loadgen.BuildReport(cfg, sch, stats)
	if r.Errors != 0 || r.Rejected != 0 {
		t.Fatalf("lost requests: %d errors (%d rejected) of %d", r.Errors, r.Rejected, r.Requests)
	}
	if r.Retries == 0 {
		t.Fatal("queue never overflowed: expected 429-backoff retries")
	}
	if r.QueueDepthMax < 1 {
		t.Fatalf("queue depth never observed above 0 (max %d)", r.QueueDepthMax)
	}
}

// TestRunRejected: with retries exhausted, over-capacity requests are
// recorded as rejected and the error-rate floor trips.
func TestRunRejected(t *testing.T) {
	srv := serve.New(serve.Config{Slots: 1, QueueCap: 1, Kinds: echoKinds()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cfg := loadgen.Config{
		Seed:     5,
		Clients:  2,
		Duration: 200 * time.Millisecond,
		RPS:      60,
		HitRatio: 1,
		Profiles: echoProfiles(400),
	}
	sch, err := loadgen.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := loadgen.Run(context.Background(), sch, loadgen.Options{
		BaseURL:    ts.URL,
		MaxRetries: 1,
		RetryCap:   100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := loadgen.BuildReport(cfg, sch, stats)
	if r.Rejected == 0 {
		t.Fatalf("expected rejected requests under a saturated 1-slot queue: %+v", r)
	}
	if v := r.CheckSLOs(0, 0); len(v) == 0 {
		t.Fatal("zero-error-rate floor not violated despite rejections")
	}
}
