package dispatch_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rescue/internal/dispatch"
	"rescue/internal/fault"
	"rescue/internal/flows"
	"rescue/internal/rtl"
	"rescue/internal/scan"
	"rescue/internal/serve"
	"rescue/internal/sweep"
)

// miniFlow is the test job kind: one small deterministic campaign rendered
// as a text report. Every execution — coordinator or worker — rebuilds the
// identical sim and pattern set, so the content-addressed shard keys line
// up exactly as they would for two rescued processes loading the same
// design. Registered on the workers (so shard jobs can resolve it) and
// executed directly by the coordinator under a shard plan.
func miniFlow(ctx context.Context, rc serve.RunContext, _ json.RawMessage) ([]byte, error) {
	d, err := rtl.Build(rtl.Small(), rtl.RescueDesign)
	if err != nil {
		return nil, err
	}
	c, err := scan.Insert(d.N, 1)
	if err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(61))
	var pats []*scan.Pattern
	for w := 0; w < 2; w++ {
		p := c.NewPattern(64)
		for i := range p.FFVals {
			p.FFVals[i] = r.Uint64()
		}
		for i := range p.PIVals {
			p.PIVals[i] = r.Uint64()
		}
		pats = append(pats, p)
	}
	sim := fault.NewSim(c, pats)
	faults := fault.NewUniverse(d.N).Collapsed[:200]
	camp := fault.NewCampaign(sim, fault.CampaignConfig{Workers: 2})
	res, st, err := camp.Run(ctx, faults)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	for i, r := range res {
		fmt.Fprintf(&buf, "%4d %v %d %v\n", i, r.Detected, len(r.Fails), r.FailObs)
	}
	fmt.Fprintf(&buf, "faults=%d detected=%d\n", st.Faults, st.Detected)
	return buf.Bytes(), nil
}

// newWorker starts one in-process rescued worker that knows the mini kind.
func newWorker(t *testing.T) *httptest.Server {
	t.Helper()
	kinds := serve.Kinds()
	kinds["mini"] = miniFlow
	srv := serve.New(serve.Config{Kinds: kinds, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func workerURLs(servers ...*httptest.Server) []string {
	urls := make([]string, len(servers))
	for i, s := range servers {
		urls[i] = s.URL
	}
	return urls
}

// runCoordinator executes the mini flow locally under the pool's shard
// plan — the same wiring rescue-shard uses.
func runCoordinator(t *testing.T, p *dispatch.Pool) []byte {
	t.Helper()
	ctx := fault.WithShardPlan(context.Background(), p.Plan())
	out, err := miniFlow(ctx, serve.RunContext{Workers: 2}, nil)
	if err != nil {
		t.Fatalf("coordinator flow: %v", err)
	}
	return out
}

func serialGolden(t *testing.T) []byte {
	t.Helper()
	out, err := miniFlow(context.Background(), serve.RunContext{Workers: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDispatchDeterminism: the merged distributed result is byte-identical
// to the serial run at any shard count, with every shard computed remotely.
func TestDispatchDeterminism(t *testing.T) {
	want := serialGolden(t)
	w1, w2, w3 := newWorker(t), newWorker(t), newWorker(t)

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			p, err := dispatch.NewPool(dispatch.Config{
				Workers:   workerURLs(w1, w2, w3),
				Flow:      serve.Spec{Kind: "mini"},
				Shards:    shards,
				MinFaults: 1,
				Seed:      42,
				Logf:      t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			got := runCoordinator(t, p)
			if !bytes.Equal(got, want) {
				t.Fatalf("distributed output differs from serial golden at %d shards", shards)
			}
			st := p.Stats()
			if st.Completed != int64(shards) {
				t.Fatalf("completed %d shards remotely, want %d", st.Completed, shards)
			}
			if st.Fallbacks != 0 {
				t.Fatalf("%d shards fell back locally, want 0", st.Fallbacks)
			}
		})
	}
}

// TestDispatchChaosKill: a worker killed mid-campaign loses its in-flight
// shards; the pool reassigns them to survivors and the merged output stays
// byte-identical to the serial golden.
func TestDispatchChaosKill(t *testing.T) {
	want := serialGolden(t)
	servers := []*httptest.Server{newWorker(t), newWorker(t), newWorker(t)}

	var killMu sync.Mutex
	killed := map[int]bool{}
	p, err := dispatch.NewPool(dispatch.Config{
		Workers:     workerURLs(servers...),
		Flow:        serve.Spec{Kind: "mini"},
		Shards:      6,
		MinFaults:   1,
		Seed:        7,
		BackoffBase: 5 * time.Millisecond,
		BackoffCap:  50 * time.Millisecond,
		HealthEvery: 50 * time.Millisecond,
		Logf:        t.Logf,
		Chaos: dispatch.ChaosConfig{
			KillWorkers: 1,
			AfterShards: 1,
			Kill: func(i int) error {
				killMu.Lock()
				defer killMu.Unlock()
				if !killed[i] {
					killed[i] = true
					servers[i].CloseClientConnections()
					servers[i].Close()
				}
				return nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	got := runCoordinator(t, p)
	if !bytes.Equal(got, want) {
		t.Fatal("chaos run output differs from serial golden")
	}
	st := p.Stats()
	if st.Killed != 1 {
		t.Fatalf("chaos killed %d workers, want 1", st.Killed)
	}
	if st.Completed == 0 {
		t.Fatal("no shards completed remotely")
	}
}

// TestDispatchAllWorkersDead: with every worker unreachable the campaign
// still completes — every shard falls back to local execution and the
// output matches the serial golden.
func TestDispatchAllWorkersDead(t *testing.T) {
	want := serialGolden(t)

	// A freshly released port: connections are refused, not hung.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := "http://" + l.Addr().String()
	l.Close()

	p, err := dispatch.NewPool(dispatch.Config{
		Workers:     []string{dead, dead},
		Flow:        serve.Spec{Kind: "mini"},
		Shards:      3,
		MinFaults:   1,
		RetryBudget: 1,
		BackoffBase: time.Millisecond,
		BackoffCap:  5 * time.Millisecond,
		HealthEvery: time.Hour, // never revive mid-test
		Seed:        1,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	got := runCoordinator(t, p)
	if !bytes.Equal(got, want) {
		t.Fatal("all-dead fallback output differs from serial golden")
	}
	st := p.Stats()
	if st.Completed != 0 {
		t.Fatalf("completed %d shards on dead workers", st.Completed)
	}
	if st.Fallbacks != 3 {
		t.Fatalf("%d local fallbacks, want 3", st.Fallbacks)
	}
}

// hungWorker fakes a rescued that accepts jobs and then goes silent: the
// event stream sends headers and nothing else. It reports healthy the
// whole time — only the heartbeat watchdog can catch it. Records whether
// the coordinator cancelled the abandoned job.
type hungWorker struct {
	ts       *httptest.Server
	mu       sync.Mutex
	deleted  []string
	accepted int
}

func newHungWorker(t *testing.T) *hungWorker {
	h := &hungWorker{}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		h.mu.Lock()
		h.accepted++
		id := fmt.Sprintf("hung-%d", h.accepted)
		h.mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(map[string]string{"id": id})
	})
	mux.HandleFunc("/jobs/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodDelete {
			h.mu.Lock()
			h.deleted = append(h.deleted, strings.TrimPrefix(r.URL.Path, "/jobs/"))
			h.mu.Unlock()
			w.WriteHeader(http.StatusOK)
			return
		}
		// The event stream: headers, then silence until the client leaves.
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
		<-r.Context().Done()
	})
	h.ts = httptest.NewServer(mux)
	t.Cleanup(h.ts.Close)
	return h
}

func (h *hungWorker) cancels() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.deleted...)
}

// TestDispatchHungWorker: a worker that accepts a shard and never emits an
// event trips the heartbeat watchdog; the coordinator cancels the
// abandoned job (so its late result is never read), reassigns the shard to
// a live worker, and the merged output is still byte-identical.
func TestDispatchHungWorker(t *testing.T) {
	want := serialGolden(t)
	hung := newHungWorker(t)
	live := newWorker(t)

	p, err := dispatch.NewPool(dispatch.Config{
		Workers:     []string{hung.ts.URL, live.URL},
		Flow:        serve.Spec{Kind: "mini"},
		Shards:      2,
		MinFaults:   1,
		Heartbeat:   150 * time.Millisecond,
		BackoffBase: time.Millisecond,
		BackoffCap:  10 * time.Millisecond,
		HealthEvery: time.Hour, // the hung worker reports healthy; don't revive it after the watchdog fires
		Seed:        3,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	got := runCoordinator(t, p)
	if !bytes.Equal(got, want) {
		t.Fatal("hung-worker run output differs from serial golden")
	}
	st := p.Stats()
	if st.Completed != 2 {
		t.Fatalf("completed %d shards remotely, want 2", st.Completed)
	}
	if st.Retries == 0 {
		t.Fatal("expected at least one retry after the heartbeat timeout")
	}
	if len(hung.cancels()) == 0 {
		t.Fatal("coordinator never cancelled the abandoned job on the hung worker")
	}
}

// TestDispatchBusyWorker: a 429 from a saturated worker is not a failure —
// the pool honors Retry-After (with jitter), keeps the worker in rotation,
// and completes once the queue drains.
func TestDispatchBusyWorker(t *testing.T) {
	want := serialGolden(t)

	release := make(chan struct{})
	kinds := serve.Kinds()
	kinds["mini"] = miniFlow
	kinds["block"] = func(ctx context.Context, rc serve.RunContext, _ json.RawMessage) ([]byte, error) {
		select {
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		case <-release:
			return []byte("released\n"), nil
		}
	}
	srv := serve.New(serve.Config{Kinds: kinds, Workers: 2, QueueCap: 1, Slots: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	// Saturate: one blocker holds the slot, a second fills the queue.
	for i := 0; i < 2; i++ {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"kind":"block"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("blocker %d: HTTP %d", i, resp.StatusCode)
		}
	}

	p, err := dispatch.NewPool(dispatch.Config{
		Workers:     []string{ts.URL},
		Flow:        serve.Spec{Kind: "mini"},
		Shards:      1,
		MinFaults:   1,
		BackoffBase: 10 * time.Millisecond,
		BackoffCap:  100 * time.Millisecond,
		RetryBudget: 100,
		Seed:        9,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Unblock the queue shortly after dispatch starts hitting 429s.
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(release)
	}()

	got := runCoordinator(t, p)
	if !bytes.Equal(got, want) {
		t.Fatal("busy-worker run output differs from serial golden")
	}
	st := p.Stats()
	if st.Completed != 1 {
		t.Fatalf("completed %d shards remotely, want 1", st.Completed)
	}
	if st.Retries == 0 {
		t.Fatal("expected retries while the worker queue was full")
	}
	if st.Fallbacks != 0 {
		t.Fatalf("%d fallbacks, want 0: 429 must not exhaust the pool", st.Fallbacks)
	}
}

// TestDispatchConfigValidation pins the constructor's error cases.
func TestDispatchConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  dispatch.Config
	}{
		{"no workers", dispatch.Config{Flow: serve.Spec{Kind: "mini"}}},
		{"nested shard", dispatch.Config{Workers: []string{"http://x"}, Flow: serve.Spec{Kind: "shard"}}},
		{"chaos without kill", dispatch.Config{
			Workers: []string{"http://x"},
			Flow:    serve.Spec{Kind: "mini"},
			Chaos:   dispatch.ChaosConfig{KillWorkers: 1},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := dispatch.NewPool(tc.cfg); err == nil {
				t.Fatal("NewPool accepted a bad config")
			}
		})
	}

	// A Flow-less pool is legal (ExecJob-only use), but shard dispatch
	// through it must refuse rather than submit an empty kind.
	t.Run("flowless pool refuses Exec", func(t *testing.T) {
		p, err := dispatch.NewPool(dispatch.Config{Workers: []string{"http://x"}, HealthEvery: time.Hour})
		if err != nil {
			t.Fatalf("flow-less pool: %v", err)
		}
		defer p.Close()
		if _, err := p.Exec(context.Background(), fault.CampaignKey{}, 0, 1); err == nil {
			t.Fatal("Exec on a flow-less pool did not error")
		}
	})
}

// TestDispatchExecJobSweep: grid points fanned out to worker daemons as
// single-point sweep jobs (ExecJob on a Flow-less pool) merge into a
// frontier byte-identical to the all-local run, with no local fallbacks.
func TestDispatchExecJobSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real small sweep flow locally and on workers")
	}
	spec := sweep.Spec{
		Presets: []string{"paper"},
		Axes:    map[string][]string{"chipkill-scale": {"1", "0.8"}},
		Nodes:   []int{18},
		Small:   true,
		Dies:    40,
		Warmup:  100,
		Commit:  500,
		Workers: 2,
	}
	toNDJSON := func(fr *sweep.Frontier) []byte {
		var buf bytes.Buffer
		if err := fr.WriteNDJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	local, err := sweep.Run(context.Background(), spec, sweep.Options{
		Env: flows.Env{Store: flows.NewStore()}, Concurrency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := toNDJSON(local)

	w1, w2 := newWorker(t), newWorker(t)
	p, err := dispatch.NewPool(dispatch.Config{
		Workers: workerURLs(w1, w2),
		Seed:    11,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	var fallbacks int
	var mu sync.Mutex
	remote, err := sweep.Run(context.Background(), spec, sweep.Options{
		Env:         flows.Env{Store: flows.NewStore()},
		Concurrency: 2,
		Remote: func(ctx context.Context, one sweep.Spec, _ sweep.Point) ([]byte, error) {
			body, err := json.Marshal(one)
			if err != nil {
				return nil, err
			}
			return p.ExecJob(ctx, serve.Spec{Kind: "sweep", Params: body})
		},
		OnPoint: func(ev sweep.PointEvent) {
			if ev.Phase == "fallback" {
				mu.Lock()
				fallbacks++
				mu.Unlock()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := toNDJSON(remote); !bytes.Equal(got, want) {
		t.Fatalf("remote frontier differs from local:\n-- local --\n%s\n-- remote --\n%s", want, got)
	}
	if fallbacks != 0 {
		t.Fatalf("%d points fell back locally, want 0", fallbacks)
	}
	if st := p.Stats(); st.Completed != 2 {
		t.Fatalf("completed %d jobs remotely, want 2", st.Completed)
	}
}

// TestDispatchTenantTag: the coordinator's tenant tag rides every shard
// submission as X-Rescue-Client, so worker-side per-tenant metrics
// attribute the shard load to the originating campaign — and the merged
// output is still byte-identical to the untagged serial run.
func TestDispatchTenantTag(t *testing.T) {
	want := serialGolden(t)
	w := newWorker(t)
	p, err := dispatch.NewPool(dispatch.Config{
		Workers:   workerURLs(w),
		Flow:      serve.Spec{Kind: "mini"},
		Shards:    2,
		MinFaults: 1,
		Seed:      7,
		Tenant:    "campaign-a",
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := runCoordinator(t, p); !bytes.Equal(got, want) {
		t.Fatal("tenant-tagged dispatch changed the merged output")
	}
	resp, err := http.Get(w.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(b), "tenant_campaign_a_admitted_total 2") {
		t.Fatalf("worker metrics do not attribute shard jobs to the tenant:\n%s", b)
	}
}
