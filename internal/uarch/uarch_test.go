package uarch

import (
	"testing"

	"rescue/internal/workload"
)

func bench(t *testing.T, name string) workload.Profile {
	t.Helper()
	p, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := RescueParams().Validate(); err != nil {
		t.Fatal(err)
	}
	p := DefaultParams()
	p.Ways = 3
	if err := p.Validate(); err == nil {
		t.Fatal("odd ways must fail")
	}
	p = DefaultParams()
	p.Degr.FEGroupsDisabled = 1
	if err := p.Validate(); err == nil {
		t.Fatal("degradation without Rescue must fail")
	}
}

func TestDeadConfigs(t *testing.T) {
	cases := []Degraded{
		{FEGroupsDisabled: 2},
		{IntGroupsDisabled: 2},
		{FPGroupsDisabled: 2},
		{IntIQHalvesDown: 2},
		{LSQHalvesDown: 2},
	}
	for _, d := range cases {
		if !d.Dead() {
			t.Errorf("%v should be dead", d)
		}
	}
	if (Degraded{FEGroupsDisabled: 1, IntGroupsDisabled: 1}).Dead() {
		t.Error("partial degradation should be alive")
	}
}

func TestBaselineRunsAndCommits(t *testing.T) {
	s, err := New(DefaultParams(), bench(t, "gzip"))
	if err != nil {
		t.Fatal(err)
	}
	st := s.Run(5000, 20000)
	if st.Committed < 20000 {
		t.Fatalf("committed %d", st.Committed)
	}
	ipc := st.IPC()
	if ipc <= 0.1 || ipc > 4.0 {
		t.Fatalf("gzip baseline IPC = %.3f, outside sane range", ipc)
	}
}

func TestRescueCloseToBaseline(t *testing.T) {
	for _, name := range []string{"gzip", "swim", "mcf"} {
		base, err := New(DefaultParams(), bench(t, name))
		if err != nil {
			t.Fatal(err)
		}
		resc, err := New(RescueParams(), bench(t, name))
		if err != nil {
			t.Fatal(err)
		}
		bi := base.Run(5000, 30000).IPC()
		ri := resc.Run(5000, 30000).IPC()
		if ri > bi*1.02 {
			t.Errorf("%s: rescue IPC %.3f exceeds baseline %.3f", name, ri, bi)
		}
		if ri < bi*0.75 {
			t.Errorf("%s: rescue IPC %.3f degrades baseline %.3f by >25%%", name, ri, bi)
		}
	}
}

func TestDegradedMonotonic(t *testing.T) {
	p := RescueParams()
	full, err := New(p, bench(t, "gzip"))
	if err != nil {
		t.Fatal(err)
	}
	fi := full.Run(5000, 30000).IPC()
	for _, d := range []Degraded{
		{FEGroupsDisabled: 1},
		{IntGroupsDisabled: 1},
		{IntIQHalvesDown: 1},
		{LSQHalvesDown: 1},
		{FEGroupsDisabled: 1, IntGroupsDisabled: 1, IntIQHalvesDown: 1},
	} {
		pd := RescueParams()
		pd.Degr = d
		s, err := New(pd, bench(t, "gzip"))
		if err != nil {
			t.Fatal(err)
		}
		di := s.Run(5000, 30000).IPC()
		if di > fi*1.03 {
			t.Errorf("degraded %v IPC %.3f above full %.3f", d, di, fi)
		}
		if di <= 0 {
			t.Errorf("degraded %v IPC = 0", d)
		}
	}
}

func TestDeadConfigRejected(t *testing.T) {
	p := RescueParams()
	p.Degr.FEGroupsDisabled = 2
	if _, err := New(p, bench(t, "gzip")); err == nil {
		t.Fatal("dead config must be rejected")
	}
}

func TestFPWorkloadUsesFPQueue(t *testing.T) {
	s, err := New(DefaultParams(), bench(t, "swim"))
	if err != nil {
		t.Fatal(err)
	}
	st := s.Run(2000, 20000)
	if st.Committed < 20000 {
		t.Fatalf("committed %d", st.Committed)
	}
}

func TestReplayPoliciesOrdering(t *testing.T) {
	// oracle >= smaller-half >= replay-all (roughly; allow small noise)
	ipcs := map[ReplayPolicy]float64{}
	for _, pol := range []ReplayPolicy{ReplaySmallerHalf, ReplayAll, OracleCombine} {
		p := RescueParams()
		p.ReplayPolicy = pol
		s, err := New(p, bench(t, "crafty"))
		if err != nil {
			t.Fatal(err)
		}
		ipcs[pol] = s.Run(5000, 30000).IPC()
	}
	if ipcs[OracleCombine] < ipcs[ReplaySmallerHalf]*0.98 {
		t.Errorf("oracle %.3f < smaller-half %.3f", ipcs[OracleCombine], ipcs[ReplaySmallerHalf])
	}
	if ipcs[ReplayAll] > ipcs[OracleCombine]*1.02 {
		t.Errorf("replay-all %.3f > oracle %.3f", ipcs[ReplayAll], ipcs[OracleCombine])
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Stats {
		s, err := New(RescueParams(), bench(t, "vpr"))
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(2000, 10000)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}
