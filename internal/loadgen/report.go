package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"rescue/internal/obs"
)

// LatencyStats summarizes one latency population in milliseconds,
// percentiles by obs.Histogram's nearest-rank extraction.
type LatencyStats struct {
	Count int     `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// KindStats is one job kind's slice of the run.
type KindStats struct {
	LatencyStats
	Warm    int `json:"warm"`
	Cold    int `json:"cold"`
	Errors  int `json:"errors"`
	Retries int `json:"retries"`
}

// TenantStats is one tenant's slice of the run.
type TenantStats struct {
	LatencyStats
	// Warm is the tenant's warm-request latency population — the fairness
	// gate's subject, since warm serving is what a victim tenant loses
	// first under a noisy neighbor.
	Warm     LatencyStats `json:"warm"`
	Errors   int          `json:"errors"`
	Rejected int          `json:"rejected"`
	Retries  int          `json:"retries"`
}

// FairnessResult records the noisy-neighbor verdict: the victim tenant's
// warm p99 under contention versus its solo baseline, in fair and
// (optionally) unfair scheduling modes.
type FairnessResult struct {
	Checked   bool   `json:"checked"`
	Victim    string `json:"victim"`
	Aggressor string `json:"aggressor"`
	// Bound is the allowed fair-mode degradation multiple over solo.
	Bound float64 `json:"bound"`
	// FloorMS guards against sub-noise solo baselines: the fair-mode
	// budget is max(Bound*solo, FloorMS).
	FloorMS     float64 `json:"floor_ms"`
	SoloP99MS   float64 `json:"solo_p99_ms"`
	FairP99MS   float64 `json:"fair_p99_ms"`
	UnfairP99MS float64 `json:"unfair_p99_ms,omitempty"`
	// UnfairStarved marks an unfair leg where no victim warm request
	// succeeded at all — the strongest possible violation.
	UnfairStarved bool     `json:"unfair_starved,omitempty"`
	Violations    []string `json:"violations,omitempty"`
}

// SLOResult records the declared floors and the verdict.
type SLOResult struct {
	P99WarmMS    float64  `json:"p99_warm_ms,omitempty"`
	MaxErrorRate float64  `json:"max_error_rate"`
	Checked      bool     `json:"checked"`
	Violations   []string `json:"violations,omitempty"`
}

// Report is the machine-readable outcome of a load test — what
// BENCH_loadtest.json holds and what the CI gate reads.
type Report struct {
	Bench    string `json:"bench"`
	Seed     int64  `json:"seed"`
	Digest   string `json:"schedule_digest"`
	Clients  int    `json:"clients"`
	Requests int    `json:"requests"`

	DurationS float64 `json:"duration_s"`
	WallS     float64 `json:"wall_s"`
	// ThroughputRPS is completed-successfully requests per wall second.
	ThroughputRPS float64 `json:"throughput_rps"`

	PerKind map[string]KindStats `json:"per_kind"`
	// PerTenant splits the run by tenant identity; empty for untagged
	// (single-tenant) workloads, whose report shape is unchanged.
	PerTenant map[string]TenantStats `json:"per_tenant,omitempty"`
	// Warm/Cold aggregate latency across kinds; Warm is the SLO subject.
	Warm LatencyStats `json:"warm"`
	Cold LatencyStats `json:"cold"`

	Errors   int `json:"errors"`
	Rejected int `json:"rejected"`
	Retries  int `json:"retries"`
	// ErrorRate is errors (rejected included) over all requests.
	ErrorRate float64 `json:"error_rate"`

	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
	HitRatio    float64 `json:"hit_ratio"`

	QueueDepthMax  int64   `json:"queue_depth_max"`
	QueueDepthMean float64 `json:"queue_depth_mean"`
	SlotsBusyMean  float64 `json:"slots_busy_mean"`
	Slots          int64   `json:"slots"`
	PrewarmMS      float64 `json:"prewarm_ms"`

	// DropMarkers counts streams that saw a dropped marker from the
	// server's bounded event buffers; DroppedEvents sums the evictions.
	DropMarkers   int `json:"drop_markers,omitempty"`
	DroppedEvents int `json:"dropped_events,omitempty"`

	SLO SLOResult `json:"slo"`
	// Fairness is the noisy-neighbor verdict; only scenario runs set it.
	Fairness *FairnessResult `json:"fairness,omitempty"`
}

// BuildReport reduces a run's raw results to the benchmark report.
func BuildReport(cfg Config, sch *Schedule, st *RunStats) *Report {
	r := &Report{
		Bench:     "loadtest",
		Seed:      cfg.Seed,
		Digest:    sch.Digest(),
		Clients:   len(sch.Clients),
		Requests:  len(st.Results),
		DurationS: cfg.Duration.Seconds(),
		WallS:     st.Wall.Seconds(),
		PerKind:   map[string]KindStats{},

		CacheHits:      st.CacheHits,
		CacheMisses:    st.CacheMisses,
		QueueDepthMax:  st.QueueDepthMax,
		QueueDepthMean: round2(st.QueueDepthMean),
		SlotsBusyMean:  round2(st.SlotsBusyMean),
		Slots:          st.Slots,
		PrewarmMS:      round2(st.PrewarmMS),
		DropMarkers:    st.DropMarkers,
		DroppedEvents:  st.DroppedEvents,
	}

	kindHist := map[string]*obs.Histogram{}
	type tenantHists struct{ all, warm *obs.Histogram }
	tenantHist := map[string]*tenantHists{}
	tenantStats := map[string]TenantStats{}
	warmHist, coldHist := &obs.Histogram{}, &obs.Histogram{}
	succeeded := 0
	for _, rr := range st.Results {
		ks := r.PerKind[rr.Kind]
		ks.Count++
		ks.Retries += rr.Retries
		r.Retries += rr.Retries
		ts := tenantStats[rr.Tenant]
		ts.Retries += rr.Retries
		if rr.Warm {
			ks.Warm++
		} else {
			ks.Cold++
		}
		switch {
		case rr.OK():
			succeeded++
			h := kindHist[rr.Kind]
			if h == nil {
				h = &obs.Histogram{}
				kindHist[rr.Kind] = h
			}
			h.Observe(rr.TotalMS)
			if rr.Warm {
				warmHist.Observe(rr.TotalMS)
			} else {
				coldHist.Observe(rr.TotalMS)
			}
			th := tenantHist[rr.Tenant]
			if th == nil {
				th = &tenantHists{all: &obs.Histogram{}, warm: &obs.Histogram{}}
				tenantHist[rr.Tenant] = th
			}
			th.all.Observe(rr.TotalMS)
			if rr.Warm {
				th.warm.Observe(rr.TotalMS)
			}
		case rr.State == "rejected":
			r.Rejected++
			ks.Errors++
			r.Errors++
			ts.Rejected++
			ts.Errors++
		default:
			ks.Errors++
			r.Errors++
			ts.Errors++
		}
		r.PerKind[rr.Kind] = ks
		tenantStats[rr.Tenant] = ts
	}
	for kind, h := range kindHist {
		ks := r.PerKind[kind]
		ks.LatencyStats = latencyOf(h)
		r.PerKind[kind] = ks
	}
	r.Warm = latencyOf(warmHist)
	r.Cold = latencyOf(coldHist)

	// Per-tenant stats only exist for tagged workloads: an untagged run
	// has the single "" tenant, and its report keeps the legacy shape.
	_, untagged := tenantStats[""]
	if len(tenantStats) > 0 && !(len(tenantStats) == 1 && untagged) {
		r.PerTenant = map[string]TenantStats{}
		for name, ts := range tenantStats {
			if th := tenantHist[name]; th != nil {
				ts.LatencyStats = latencyOf(th.all)
				ts.Warm = latencyOf(th.warm)
			}
			if name == "" {
				name = "default"
			}
			r.PerTenant[name] = ts
		}
	}

	if r.Requests > 0 {
		r.ErrorRate = float64(r.Errors) / float64(r.Requests)
	}
	if r.WallS > 0 {
		r.ThroughputRPS = round2(float64(succeeded) / r.WallS)
	}
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		r.HitRatio = round2(float64(st.CacheHits) / float64(total))
	}
	return r
}

func latencyOf(h *obs.Histogram) LatencyStats {
	count, _, _, max := h.Snapshot()
	qs := h.Quantiles(0.5, 0.9, 0.99)
	return LatencyStats{
		Count: int(count),
		P50MS: round2(qs[0]),
		P90MS: round2(qs[1]),
		P99MS: round2(qs[2]),
		MaxMS: round2(max),
	}
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// CheckSLOs evaluates the declared floors against the report and records
// the verdict in r.SLO. p99Warm 0 disables the latency check; maxErrRate
// < 0 disables the error check. It returns the violations.
func (r *Report) CheckSLOs(p99Warm time.Duration, maxErrRate float64) []string {
	r.SLO = SLOResult{Checked: true, MaxErrorRate: maxErrRate}
	var v []string
	if p99Warm > 0 {
		r.SLO.P99WarmMS = float64(p99Warm) / float64(time.Millisecond)
		if r.Warm.Count == 0 {
			v = append(v, "warm p99 SLO declared but no warm request succeeded")
		} else if r.Warm.P99MS > r.SLO.P99WarmMS {
			v = append(v, fmt.Sprintf("warm p99 %.2fms exceeds SLO %.2fms",
				r.Warm.P99MS, r.SLO.P99WarmMS))
		}
	}
	if maxErrRate >= 0 && r.ErrorRate > maxErrRate {
		v = append(v, fmt.Sprintf("error rate %.4f exceeds floor %.4f (%d errors / %d requests)",
			r.ErrorRate, maxErrRate, r.Errors, r.Requests))
	}
	r.SLO.Violations = v
	return v
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteSummary renders the human-readable digest of a run.
func (r *Report) WriteSummary(w io.Writer) {
	fmt.Fprintf(w, "loadtest: seed %d, %d clients, %d requests over %.1fs (wall %.1fs)\n",
		r.Seed, r.Clients, r.Requests, r.DurationS, r.WallS)
	fmt.Fprintf(w, "throughput %.2f done/s; cache %d hits / %d misses (ratio %.2f); %d retries, %d errors (%d rejected)\n",
		r.ThroughputRPS, r.CacheHits, r.CacheMisses, r.HitRatio, r.Retries, r.Errors, r.Rejected)
	fmt.Fprintf(w, "queue depth max %d mean %.2f; busy slots mean %.2f of %d\n",
		r.QueueDepthMax, r.QueueDepthMean, r.SlotsBusyMean, r.Slots)
	fmt.Fprintf(w, "%-10s %6s %5s %5s %10s %10s %10s %10s %7s\n",
		"kind", "count", "warm", "cold", "p50", "p90", "p99", "max", "errors")
	kinds := make([]string, 0, len(r.PerKind))
	for k := range r.PerKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		ks := r.PerKind[k]
		fmt.Fprintf(w, "%-10s %6d %5d %5d %9.1fms %9.1fms %9.1fms %9.1fms %7d\n",
			k, ks.Count, ks.Warm, ks.Cold, ks.P50MS, ks.P90MS, ks.P99MS, ks.MaxMS, ks.Errors)
	}
	fmt.Fprintf(w, "%-10s %6d %5s %5s %9.1fms %9.1fms %9.1fms %9.1fms\n",
		"warm(all)", r.Warm.Count, "-", "-", r.Warm.P50MS, r.Warm.P90MS, r.Warm.P99MS, r.Warm.MaxMS)
	if r.Cold.Count > 0 {
		fmt.Fprintf(w, "%-10s %6d %5s %5s %9.1fms %9.1fms %9.1fms %9.1fms\n",
			"cold(all)", r.Cold.Count, "-", "-", r.Cold.P50MS, r.Cold.P90MS, r.Cold.P99MS, r.Cold.MaxMS)
	}
	if len(r.PerTenant) > 0 {
		tenants := make([]string, 0, len(r.PerTenant))
		for t := range r.PerTenant {
			tenants = append(tenants, t)
		}
		sort.Strings(tenants)
		fmt.Fprintf(w, "%-14s %6s %10s %10s %10s %8s %7s\n",
			"tenant", "ok", "p50", "p99", "warm p99", "rejected", "errors")
		for _, t := range tenants {
			ts := r.PerTenant[t]
			fmt.Fprintf(w, "%-14s %6d %9.1fms %9.1fms %9.1fms %8d %7d\n",
				t, ts.Count, ts.P50MS, ts.P99MS, ts.Warm.P99MS, ts.Rejected, ts.Errors)
		}
	}
	if r.DropMarkers > 0 {
		fmt.Fprintf(w, "event drops: %d streams saw dropped markers (%d events evicted by bounded buffers)\n",
			r.DropMarkers, r.DroppedEvents)
	}
	if r.Fairness != nil && r.Fairness.Checked {
		f := r.Fairness
		fmt.Fprintf(w, "fairness: victim %s warm p99 solo %.1fms, fair %.1fms (bound %.1fx, floor %.1fms)",
			f.Victim, f.SoloP99MS, f.FairP99MS, f.Bound, f.FloorMS)
		if f.UnfairStarved {
			fmt.Fprintf(w, "; unfair starved victim entirely")
		} else if f.UnfairP99MS > 0 {
			fmt.Fprintf(w, "; unfair %.1fms", f.UnfairP99MS)
		}
		fmt.Fprintln(w)
		if len(f.Violations) == 0 {
			fmt.Fprintln(w, "fairness: ok")
		} else {
			for _, v := range f.Violations {
				fmt.Fprintf(w, "FAIRNESS VIOLATION: %s\n", v)
			}
		}
	}
	if r.SLO.Checked {
		if len(r.SLO.Violations) == 0 {
			fmt.Fprintf(w, "SLO: ok")
			if r.SLO.P99WarmMS > 0 {
				fmt.Fprintf(w, " (warm p99 %.2fms <= %.2fms", r.Warm.P99MS, r.SLO.P99WarmMS)
				if r.SLO.MaxErrorRate >= 0 {
					fmt.Fprintf(w, ", error rate %.4f <= %.4f", r.ErrorRate, r.SLO.MaxErrorRate)
				}
				fmt.Fprintf(w, ")")
			}
			fmt.Fprintln(w)
		} else {
			for _, v := range r.SLO.Violations {
				fmt.Fprintf(w, "SLO VIOLATION: %s\n", v)
			}
		}
	}
}
