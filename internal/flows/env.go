package flows

import (
	"context"

	"rescue/internal/area"
	"rescue/internal/atpg"
	"rescue/internal/core"
	"rescue/internal/fault"
	"rescue/internal/rtl"
	"rescue/internal/uarch"
)

// Env carries a flow invocation's environment: the artifact store (nil =
// build everything fresh, the CLI default) and an optional campaign
// checkpoint journal. Cached artifacts make the journal moot for the
// cached sections — journal sections are bound by content identity, so a
// flow that skips a campaign entirely on a warm hit still resumes its
// remaining campaigns correctly.
type Env struct {
	Store *Store
	Ck    *fault.Checkpoint
}

// cfgFor maps the -small flag onto the RTL configuration.
func cfgFor(small bool) rtl.Config {
	if small {
		return rtl.Small()
	}
	return rtl.Default()
}

type sysKey struct {
	Small   bool   `json:"small"`
	Variant string `json:"variant"`
}

// System returns the built, scan-inserted, ICI-audited system for a
// configuration, from the store when possible. Systems are read-only
// after construction, so one instance serves concurrent jobs.
func (e Env) System(small bool, v rtl.Variant) (*core.System, error) {
	build := func() (any, error) { return core.Build(cfgFor(small), v) }
	if e.Store == nil {
		s, err := build()
		if err != nil {
			return nil, err
		}
		return s.(*core.System), nil
	}
	val, _, err := e.Store.do(digest("system", sysKey{small, v.String()}), build)
	if err != nil {
		return nil, err
	}
	return val.(*core.System), nil
}

type tpKey struct {
	Small          bool   `json:"small"`
	Variant        string `json:"variant"`
	Seed           int64  `json:"seed"`
	MaxRandomWords int    `json:"maxRandomWords"`
	UselessLimit   int    `json:"uselessLimit"`
	MaxBacktracks  int    `json:"maxBacktracks"`
	// Workers is deliberately not part of the key: the generated test set
	// is bit-identical at any campaign concurrency.
}

func testProgramKey(small bool, v rtl.Variant, gen atpg.GenConfig) tpKey {
	return tpKey{
		Small:          small,
		Variant:        v.String(),
		Seed:           gen.Seed,
		MaxRandomWords: gen.MaxRandomWords,
		UselessLimit:   gen.UselessLimit,
		MaxBacktracks:  gen.MaxBacktracks,
	}
}

// TestProgram returns the generated ATPG test set for (system, config),
// from the store when possible. On a cold build the returned TestProgram
// carries the generation campaign's Stats; on an interrupt the partial
// program (with its stats so far) is returned alongside the error and
// nothing is cached.
func (e Env) TestProgram(ctx context.Context, sys *core.System, small bool, v rtl.Variant, gen atpg.GenConfig) (*core.TestProgram, error) {
	build := func() (any, error) { return sys.GenerateTestsFlow(ctx, gen, e.Ck) }
	if e.Store == nil {
		tp, err := build()
		return tp.(*core.TestProgram), err
	}
	val, _, err := e.Store.do(digest("testprogram", testProgramKey(small, v, gen)), build)
	if val == nil {
		// A waiter joined a build whose value was dropped on error.
		return &core.TestProgram{Gen: &atpg.GenResult{}}, err
	}
	return val.(*core.TestProgram), err
}

type dictKey struct {
	TP tpKey `json:"tp"`
}

// dictArtifact pairs a dictionary with the campaign stats of its cold
// build, so warm hits can still report what the build cost.
type dictArtifact struct {
	d  *fault.Dictionary
	st fault.Stats
}

// Dictionary returns the full fault dictionary over tp's pattern set, from
// the store when possible. The returned stats are those of the build that
// actually ran (zero-valued Faults on a warm hit means no simulation
// happened in this call).
func (e Env) Dictionary(ctx context.Context, tp *core.TestProgram, key tpKey, workers int) (*fault.Dictionary, fault.Stats, error) {
	build := func() (any, error) {
		d, st, err := fault.BuildDictionaryFlow(ctx, tp.Gen.Sim, tp.Universe, workers, e.Ck)
		return dictArtifact{d, st}, err
	}
	if e.Store == nil {
		val, err := build()
		a := val.(dictArtifact)
		return a.d, a.st, err
	}
	val, hit, err := e.Store.do(digest("dictionary", dictKey{key}), build)
	if val == nil {
		return nil, fault.Stats{}, err
	}
	a := val.(dictArtifact)
	if hit {
		// The work happened in some earlier job; this call simulated nothing.
		return a.d, fault.Stats{}, err
	}
	return a.d, a.st, err
}

// Variant-keyed accessors: the design-space sweep builds systems, test
// programs, dictionaries, and perf models for arbitrary parameterized
// variants. The caller (internal/sweep) computes canonical content
// digests over the knobs that determine each artifact — the netlist
// digest covers the RTL configuration and scan-chain split, the perf
// digest covers the simulator parameters — and two sweep points whose
// digests match share the artifact. Worker count stays out of every key,
// as for the fixed-configuration accessors above.

type sysAtKey struct {
	Net string `json:"net"`
}

// SystemAt returns the built, scan-inserted, ICI-audited system for an
// explicit netlist configuration and scan-chain split, cached under the
// caller's netlist digest.
func (e Env) SystemAt(netKey string, cfg rtl.Config, chains int, v rtl.Variant) (*core.System, error) {
	build := func() (any, error) { return core.BuildChains(cfg, v, chains) }
	if e.Store == nil {
		s, err := build()
		if err != nil {
			return nil, err
		}
		return s.(*core.System), nil
	}
	val, _, err := e.Store.do(digest("system", sysAtKey{netKey}), build)
	if err != nil {
		return nil, err
	}
	return val.(*core.System), nil
}

type tpAtKey struct {
	Net            string `json:"net"`
	Seed           int64  `json:"seed"`
	MaxRandomWords int    `json:"maxRandomWords"`
	UselessLimit   int    `json:"uselessLimit"`
	MaxBacktracks  int    `json:"maxBacktracks"`
}

// testProgramAtKey is exported logic kept in one place: the cache key for
// a variant test program is the netlist digest plus the generation knobs.
func testProgramAtKey(netKey string, gen atpg.GenConfig) tpAtKey {
	return tpAtKey{
		Net:            netKey,
		Seed:           gen.Seed,
		MaxRandomWords: gen.MaxRandomWords,
		UselessLimit:   gen.UselessLimit,
		MaxBacktracks:  gen.MaxBacktracks,
	}
}

// TestProgramAt returns the generated ATPG test set for a variant system,
// cached under (netlist digest, generation config). Two sweep points that
// share a netlist — same variant at different nodes — build it once.
func (e Env) TestProgramAt(ctx context.Context, netKey string, sys *core.System, gen atpg.GenConfig) (*core.TestProgram, error) {
	build := func() (any, error) { return sys.GenerateTestsFlow(ctx, gen, e.Ck) }
	if e.Store == nil {
		tp, err := build()
		return tp.(*core.TestProgram), err
	}
	val, _, err := e.Store.do(digest("testprogram", testProgramAtKey(netKey, gen)), build)
	if val == nil {
		return &core.TestProgram{Gen: &atpg.GenResult{}}, err
	}
	return val.(*core.TestProgram), err
}

type dictAtKey struct {
	TP tpAtKey `json:"tp"`
}

// DictionaryAt returns the full fault dictionary over a variant test
// program, cached under the test program's key. Stats follow the same
// warm-hit convention as Dictionary.
func (e Env) DictionaryAt(ctx context.Context, netKey string, tp *core.TestProgram, gen atpg.GenConfig, workers int) (*fault.Dictionary, fault.Stats, error) {
	build := func() (any, error) {
		d, st, err := fault.BuildDictionaryFlow(ctx, tp.Gen.Sim, tp.Universe, workers, e.Ck)
		return dictArtifact{d, st}, err
	}
	if e.Store == nil {
		val, err := build()
		a := val.(dictArtifact)
		return a.d, a.st, err
	}
	val, hit, err := e.Store.do(digest("dictionary", dictAtKey{testProgramAtKey(netKey, gen)}), build)
	if val == nil {
		return nil, fault.Stats{}, err
	}
	a := val.(dictArtifact)
	if hit {
		return a.d, fault.Stats{}, err
	}
	return a.d, a.st, err
}

type pmAtKey struct {
	Perf    string   `json:"perf"`
	NodeNM  int      `json:"nodeNM"`
	Benches []string `json:"benches"`
	Warmup  int64    `json:"warmup"`
	Commit  int64    `json:"commit"`
}

// PerfModelAt returns the per-(benchmark, degraded-configuration) IPC
// table for an explicit (baseline, Rescue) parameter pair at a node,
// cached under the caller's perf digest plus the node and measurement
// knobs. The netlist digest is deliberately absent: perf simulation never
// reads the netlist, so variants differing only in RTL knobs share it.
func (e Env) PerfModelAt(ctx context.Context, perfKey string, node int, benches []string, warmup, commit int64, workers int, base, resc uarch.Params) (*core.PerfModel, error) {
	build := func() (any, error) {
		return core.BuildPerfModelFlowParams(ctx, area.Node(node), base, resc, benches, warmup, commit, workers)
	}
	if e.Store == nil {
		pm, err := build()
		if err != nil {
			return nil, err
		}
		return pm.(*core.PerfModel), nil
	}
	val, _, err := e.Store.do(digest("perfmodel", pmAtKey{perfKey, node, benches, warmup, commit}), build)
	if err != nil {
		return nil, err
	}
	return val.(*core.PerfModel), nil
}

type pmKey struct {
	NodeNM  int      `json:"nodeNM"`
	Benches []string `json:"benches"`
	Warmup  int64    `json:"warmup"`
	Commit  int64    `json:"commit"`
}

// PerfModel returns the per-(benchmark, degraded-configuration) IPC table
// for a node, from the store when possible.
func (e Env) PerfModel(ctx context.Context, node int, benches []string, warmup, commit int64, workers int) (*core.PerfModel, error) {
	build := func() (any, error) {
		return core.BuildPerfModelFlow(ctx, area.Node(node), benches, warmup, commit, workers)
	}
	if e.Store == nil {
		pm, err := build()
		if err != nil {
			return nil, err
		}
		return pm.(*core.PerfModel), nil
	}
	val, _, err := e.Store.do(digest("perfmodel", pmKey{node, benches, warmup, commit}), build)
	if err != nil {
		return nil, err
	}
	return val.(*core.PerfModel), nil
}
