package ici

import (
	"testing"

	"rescue/internal/netlist"
)

// buildTwoHalf builds a miniature two-half issue-queue-like netlist:
// compliant variant keeps the halves independent; violating variant lets
// half B's logic read half A's output within the cycle.
func buildTwoHalf(violate bool) *netlist.Netlist {
	n := netlist.New("twohalf")
	a0 := n.Input("a0")
	a1 := n.Input("a1")
	n.Component("selA")
	selA := n.And(a0, a1)
	n.Component("selB")
	var selB netlist.NetID
	if violate {
		selB = n.Or(selA, a1) // intra-cycle read of selA
	} else {
		selB = n.Or(a0, a1)
	}
	n.Component("latchA")
	n.AddFF(selA, "qa")
	n.Component("latchB")
	n.AddFF(selB, "qb")
	n.Output(selB, "o")
	return n
}

func TestAuditCompliant(t *testing.T) {
	n := buildTwoHalf(false)
	g := Grouping{"selA": "halfA", "selB": "halfB"}
	res := Audit(n, g)
	if !res.OK() {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.BitSuper[0] != "halfA" || res.BitSuper[1] != "halfB" {
		t.Fatalf("bit supers = %v", res.BitSuper)
	}
}

func TestAuditViolation(t *testing.T) {
	n := buildTwoHalf(true)
	g := Grouping{"selA": "halfA", "selB": "halfB"}
	res := Audit(n, g)
	if res.OK() {
		t.Fatal("expected a violation when halfB reads halfA intra-cycle")
	}
	v := res.Violations[0]
	if len(v.Supers) != 2 {
		t.Fatalf("violation supers = %v", v.Supers)
	}
}

func TestAuditGroupingLumps(t *testing.T) {
	// lumping both halves into one super makes the violating design pass —
	// isolation is only claimed at the coarser granularity
	n := buildTwoHalf(true)
	g := Grouping{"selA": "issue", "selB": "issue"}
	res := Audit(n, g)
	if !res.OK() {
		t.Fatalf("lumped grouping should pass, got %v", res.Violations)
	}
}

func TestIsolate(t *testing.T) {
	n := buildTwoHalf(false)
	g := Grouping{"selA": "halfA", "selB": "halfB"}
	res := Audit(n, g)
	s, err := res.Isolate([]int{0})
	if err != nil || s != "halfA" {
		t.Fatalf("Isolate([qa]) = %q, %v", s, err)
	}
	s, err = res.Isolate([]int{1, 2})
	if err != nil || s != "halfB" {
		t.Fatalf("Isolate([qb,o]) = %q, %v", s, err)
	}
	if _, err := res.Isolate([]int{0, 1}); err == nil {
		t.Fatal("two supers implicated must error")
	}
	if _, err := res.Isolate(nil); err == nil {
		t.Fatal("no bits must error")
	}
	if _, err := res.Isolate([]int{99}); err == nil {
		t.Fatal("out of range must error")
	}
}

func TestIsolateEachMultiFault(t *testing.T) {
	n := buildTwoHalf(false)
	g := Grouping{"selA": "halfA", "selB": "halfB"}
	res := Audit(n, g)
	got := res.IsolateEach([]int{0, 1})
	if len(got) != 2 || got[0] != "halfA" || got[1] != "halfB" {
		t.Fatalf("IsolateEach = %v", got)
	}
}
