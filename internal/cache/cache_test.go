package cache

import (
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{SizeBytes: 1024, Assoc: 2, BlockSize: 32, Latency: 2}
}

func TestColdMissThenHit(t *testing.T) {
	c := New(small())
	if c.Access(0x100) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0x100) {
		t.Fatal("second access must hit")
	}
	if !c.Access(0x11f) {
		t.Fatal("same block must hit")
	}
	if c.Access(0x120) {
		t.Fatal("next block must miss")
	}
}

func TestLRUReplacement(t *testing.T) {
	c := New(small()) // 16 sets, 2 ways
	setStride := uint64(16 * 32)
	a, b, d := uint64(0), setStride*1, setStride*2 // all map to set 0... no:
	// addresses in the same set: differ by sets*blocksize
	a, b, d = 0, 16*32, 2*16*32
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is MRU
	c.Access(d) // evicts b (LRU)
	if !c.Access(a) {
		t.Fatal("a should survive")
	}
	if c.Access(b) {
		t.Fatal("b should have been evicted")
	}
}

func TestMissRateAccounting(t *testing.T) {
	c := New(small())
	for i := 0; i < 8; i++ {
		c.Access(uint64(i) * 32 * 16 * 4) // all misses (distinct far blocks)
	}
	if c.MissRate() != 1 {
		t.Fatalf("miss rate = %v", c.MissRate())
	}
}

func TestWorkingSetFitsHasNoSteadyMisses(t *testing.T) {
	c := New(Config{SizeBytes: 64 << 10, Assoc: 2, BlockSize: 32, Latency: 2})
	// 8KB working set walked many times: after warmup, zero misses
	warm := func() int64 {
		before := c.Misses
		for a := uint64(0); a < 8<<10; a += 8 {
			c.Access(a)
		}
		return c.Misses - before
	}
	warm()
	if m := warm(); m != 0 {
		t.Fatalf("steady-state misses = %d", m)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	lat, l1 := h.LoadLatency(0x1000)
	if l1 || lat != 2+15+250 {
		t.Fatalf("cold load: lat=%d l1=%v", lat, l1)
	}
	lat, l1 = h.LoadLatency(0x1000)
	if !l1 || lat != 2 {
		t.Fatalf("warm load: lat=%d l1=%v", lat, l1)
	}
	if got := h.FetchLatency(0x1000); got != 2+15 {
		// the L2 line was allocated by the load; I-fetch misses L1I only
		t.Fatalf("fetch after load warmed L2: %d", got)
	}
}

func TestAccessAlwaysAllocates(t *testing.T) {
	f := func(addrs []uint64) bool {
		c := New(small())
		for _, a := range addrs {
			c.Access(a)
			if !c.Access(a) {
				return false // immediately re-accessing must hit
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
