package bpred

import "testing"

func TestBimodalLearnsBias(t *testing.T) {
	p := New(Default())
	pc := uint64(0x4000)
	for i := 0; i < 50; i++ {
		p.Update(pc, true, pc+64)
	}
	if !p.PredictDirection(pc) {
		t.Fatal("always-taken branch predicted not-taken after training")
	}
	for i := 0; i < 50; i++ {
		p.Update(pc, false, 0)
	}
	if p.PredictDirection(pc) {
		t.Fatal("always-not-taken branch predicted taken after retraining")
	}
}

func TestGshareLearnsAlternating(t *testing.T) {
	p := New(Default())
	pc := uint64(0x8000)
	// alternating pattern is history-predictable; train then measure
	taken := false
	for i := 0; i < 500; i++ {
		p.Update(pc, taken, pc+64)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 100; i++ {
		if p.PredictDirection(pc) == taken {
			correct++
		}
		p.Update(pc, taken, pc+64)
		taken = !taken
	}
	if correct < 90 {
		t.Fatalf("alternating pattern: %d/100 correct, want >=90", correct)
	}
}

func TestBTBHitAfterTraining(t *testing.T) {
	p := New(Default())
	pc := uint64(0x1000)
	target := uint64(0x2000)
	if _, ok := p.PredictTarget(pc); ok {
		t.Fatal("cold BTB should miss")
	}
	p.Update(pc, true, target)
	got, ok := p.PredictTarget(pc)
	if !ok || got != target {
		t.Fatalf("BTB = %x, %v; want %x hit", got, ok, target)
	}
}

func TestBTBReplacement(t *testing.T) {
	cfg := Default()
	p := New(cfg)
	// fill one set beyond associativity: addresses mapping to set 0
	stride := uint64(cfg.BTBSets * 8)
	for i := 0; i < cfg.BTBWays+2; i++ {
		pc := uint64(i) * stride
		p.Update(pc, true, pc+8)
	}
	// most recent insertions must still hit
	for i := 2; i < cfg.BTBWays+2; i++ {
		pc := uint64(i) * stride
		if _, ok := p.PredictTarget(pc); !ok {
			t.Fatalf("recently inserted pc %x evicted", pc)
		}
	}
}

func TestRAS(t *testing.T) {
	p := New(Default())
	if _, ok := p.Pop(); ok {
		t.Fatal("empty RAS must miss")
	}
	p.Push(0x100)
	p.Push(0x200)
	if v, ok := p.Pop(); !ok || v != 0x200 {
		t.Fatalf("pop = %x, %v", v, ok)
	}
	if v, ok := p.Pop(); !ok || v != 0x100 {
		t.Fatalf("pop = %x, %v", v, ok)
	}
}

func TestChooserPrefersBetterComponent(t *testing.T) {
	p := New(Default())
	pc := uint64(0xc0)
	// alternating: gshare can track it, bimodal cannot; chooser should
	// migrate to gshare and overall accuracy should be high
	taken := false
	for i := 0; i < 2000; i++ {
		p.Update(pc, taken, pc+64)
		taken = !taken
	}
	correct := 0
	for i := 0; i < 200; i++ {
		if p.PredictDirection(pc) == taken {
			correct++
		}
		p.Update(pc, taken, pc+64)
		taken = !taken
	}
	if correct < 180 {
		t.Fatalf("hybrid accuracy %d/200 on alternating pattern", correct)
	}
}
