package bpred

import "testing"

func TestSelfHealBTBDegradesGracefully(t *testing.T) {
	// pristine, lightly damaged, heavily damaged: hit rate must degrade
	// monotonically-ish but never crash or corrupt
	hitRate := func(frac float64) float64 {
		p := New(Default())
		if frac > 0 {
			if err := p.EnableSelfHeal(frac, 0, 42); err != nil {
				t.Fatal(err)
			}
		}
		// train 180 branches (fits the 256-entry BTB) then measure
		hits := 0
		for round := 0; round < 4; round++ {
			for i := 0; i < 180; i++ {
				pc := uint64(0x1000 + i*8)
				if round == 3 {
					if _, ok := p.PredictTarget(pc); ok {
						hits++
					}
				}
				p.Update(pc, true, pc+128)
			}
		}
		return float64(hits) / 180
	}
	clean := hitRate(0)
	light := hitRate(0.1)
	heavy := hitRate(0.8)
	if clean < 0.9 {
		t.Fatalf("clean hit rate %.2f too low", clean)
	}
	if light > clean+0.01 {
		t.Fatalf("damaged BTB outperforms clean: %.2f vs %.2f", light, clean)
	}
	if heavy > light+0.01 {
		t.Fatalf("heavier damage should not help: %.2f vs %.2f", heavy, light)
	}
	if heavy > 0.6 {
		t.Fatalf("80%% damaged BTB hit rate %.2f implausibly high", heavy)
	}
}

func TestSelfHealSparesRecoverHitRate(t *testing.T) {
	cfg := Default()
	run := func(spares int) float64 {
		p := New(cfg)
		if err := p.EnableSelfHeal(0.3, spares, 5); err != nil {
			t.Fatal(err)
		}
		hits := 0
		for round := 0; round < 4; round++ {
			for i := 0; i < 200; i++ {
				pc := uint64(0x4000 + i*8)
				if round == 3 {
					if _, ok := p.PredictTarget(pc); ok {
						hits++
					}
				}
				p.Update(pc, true, pc+64)
			}
		}
		return float64(hits) / 200
	}
	none := run(0)
	full := run(cfg.BTBSets * cfg.BTBWays) // enough spares for everything
	if full < none {
		t.Fatalf("spares should not hurt: %.2f vs %.2f", full, none)
	}
}

func TestSelfHealNeverPredictsFromDefectiveEntry(t *testing.T) {
	p := New(Default())
	// everything defective, no spares: BTB must never hit
	if err := p.EnableSelfHeal(1.0, 0, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		pc := uint64(0x100 + i*8)
		p.Update(pc, true, pc+64)
		if _, ok := p.PredictTarget(pc); ok {
			t.Fatal("hit from a fully defective BTB")
		}
	}
}
