package area

import (
	"math"
	"testing"
)

func TestBaselineModel(t *testing.T) {
	m := BaselineWithScan()
	if m.Total <= 0 {
		t.Fatal("zero baseline area")
	}
	sum := 0.0
	for g := Group(0); g < NumGroups; g++ {
		sum += m.Frac(g)
	}
	// fractions are of the pre-scan total; scan overhead makes them sum
	// slightly under 1
	if sum > 1.0 || sum < 0.9 {
		t.Fatalf("fraction sum = %v", sum)
	}
}

func TestRescueModelShape(t *testing.T) {
	m := Rescue()
	b := BaselineWithScan()
	if m.Total <= b.Total {
		t.Fatalf("Rescue total %v must exceed baseline %v", m.Total, b.Total)
	}
	if m.Total > b.Total*1.25 {
		t.Fatalf("Rescue overhead too large: %v vs %v", m.Total, b.Total)
	}
	sum := 0.0
	for g := Group(0); g < NumGroups; g++ {
		sum += m.Frac(g)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("Rescue fractions sum to %v", sum)
	}
	// Table 2's legible entries: int backend ~15%, fp backend ~21%,
	// chipkill ~40% — require the model to land near them
	checks := []struct {
		g    Group
		want float64
		tol  float64
	}{
		{IntBE, 0.15, 0.04},
		{FPBE, 0.21, 0.05},
		{Chipkill, 0.40, 0.05},
		{Frontend, 0.12, 0.04},
	}
	for _, c := range checks {
		if got := m.Frac(c.g); math.Abs(got-c.want) > c.tol {
			t.Errorf("%v fraction = %.3f, want %.2f±%.2f", c.g, got, c.want, c.tol)
		}
	}
}

func TestSingleArea(t *testing.T) {
	m := Rescue()
	for g := Group(0); g < Chipkill; g++ {
		if got := m.SingleArea(g); math.Abs(got-m.PairArea[g]/2) > 1e-12 {
			t.Errorf("%v single area = %v", g, got)
		}
	}
	if m.SingleArea(Chipkill) != m.PairArea[Chipkill] {
		t.Error("chipkill is not paired")
	}
}

func TestNodeScaling(t *testing.T) {
	n90 := Node(90)
	if math.Abs(n90.Halvings) > 1e-12 {
		t.Fatalf("90nm halvings = %v", n90.Halvings)
	}
	n45 := Node(45)
	if math.Abs(n45.Halvings-2) > 1e-12 {
		t.Fatalf("45nm halvings = %v, want 2", n45.Halvings)
	}
	// area at 45nm with zero growth = quarter
	if a := n45.CoreArea(100, 0); math.Abs(a-25) > 1e-9 {
		t.Fatalf("45nm core area = %v, want 25", a)
	}
}

// TestCoresMatchesPaper pins the core-count table under Figure 9: 11/7/5/4
// cores at 18nm for 20/30/40/50% growth, 2 cores at 65nm, 1 core at 90nm.
func TestCoresMatchesPaper(t *testing.T) {
	n18 := Node(18)
	want := map[float64]int{0.20: 11, 0.30: 7, 0.40: 5, 0.50: 4}
	for g, w := range want {
		if got := n18.Cores(g); got != w {
			t.Errorf("18nm growth %.0f%%: cores = %d, want %d", g*100, got, w)
		}
	}
	if got := Node(65).Cores(0.20); got != 2 {
		t.Errorf("65nm cores = %d, want 2", got)
	}
	if got := Node(90).Cores(0.50); got != 1 {
		t.Errorf("90nm cores = %d, want 1", got)
	}
}

func TestNodesAndGrowthRates(t *testing.T) {
	ns := Nodes()
	if len(ns) != 4 || ns[0].NodeNM != 90 || ns[3].NodeNM != 18 {
		t.Fatalf("nodes = %v", ns)
	}
	if len(GrowthRates()) != 4 {
		t.Fatal("growth rates")
	}
}

func TestRescueSelfHeal(t *testing.T) {
	plain := Rescue()
	healed := RescueSelfHeal(0.35)
	if healed.PairArea[Chipkill] >= plain.PairArea[Chipkill] {
		t.Fatal("self-healing must shrink chipkill")
	}
	if healed.Total >= plain.Total {
		t.Fatal("fault-sensitive total must shrink")
	}
	if healed.PairArea[Chipkill] < plain.PairArea[Chipkill]*0.5 {
		t.Fatal("only the btbShare fraction should move")
	}
	// other groups untouched
	for g := Group(0); g < Chipkill; g++ {
		if healed.PairArea[g] != plain.PairArea[g] {
			t.Fatalf("%v changed", g)
		}
	}
}
