package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"rescue/internal/flows"
	"rescue/internal/rtl"
	"rescue/internal/serve"
)

// testKinds returns the built-in kinds plus test-only ones:
//
//	block — holds its slot until release is closed (or its ctx cancels)
//	system — builds the small Rescue system through the artifact store
func testKinds(release chan struct{}) map[string]serve.Runner {
	kinds := serve.Kinds()
	kinds["block"] = func(ctx context.Context, rc serve.RunContext, _ json.RawMessage) ([]byte, error) {
		select {
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		case <-release:
			return []byte("released\n"), nil
		}
	}
	kinds["system"] = func(ctx context.Context, rc serve.RunContext, _ json.RawMessage) ([]byte, error) {
		s, err := rc.Env.System(true, rtl.RescueDesign)
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf("%d gates\n", len(s.Design.N.Gates))), nil
	}
	return kinds
}

type testServer struct {
	srv *serve.Server
	ts  *httptest.Server
}

func newTestServer(t *testing.T, cfg serve.Config) *testServer {
	t.Helper()
	srv := serve.New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testServer{srv: srv, ts: ts}
}

func (s *testServer) submit(t *testing.T, body string) (serve.Snapshot, *http.Response) {
	t.Helper()
	resp, err := http.Post(s.ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sn serve.Snapshot
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&sn); err != nil {
			t.Fatal(err)
		}
	}
	return sn, resp
}

func (s *testServer) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(s.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, b
}

// waitState polls a job until it reaches a terminal state.
func (s *testServer) waitState(t *testing.T, id string, want serve.State, timeout time.Duration) serve.Snapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		code, b := s.get(t, "/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /jobs/%s: %d %s", id, code, b)
		}
		var sn serve.Snapshot
		if err := json.Unmarshal(b, &sn); err != nil {
			t.Fatal(err)
		}
		if sn.State == want {
			return sn
		}
		if sn.State.Done() || time.Now().After(deadline) {
			t.Fatalf("job %s state %s (err=%q), want %s", id, sn.State, sn.Error, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "results", name))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestServeLifecycleGolden is the end-to-end contract: a table3 job
// submitted over HTTP produces byte-for-byte the committed golden (== the
// rescue-atpg CLI's output), cold at workers 1 and then warm at workers 4
// from the artifact cache, with the warm run hitting the cache and
// /metrics showing it.
func TestServeLifecycleGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real small ATPG flow")
	}
	s := newTestServer(t, serve.Config{})
	golden := readGolden(t, "table3_small.txt")

	sn, resp := s.submit(t, `{"kind":"table3","params":{"small":true,"workers":1}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	// The result is not ready while the job runs.
	if code, _ := s.get(t, "/jobs/"+sn.ID+"/result"); code != http.StatusConflict {
		t.Fatalf("early result fetch: %d, want 409", code)
	}
	cold := s.waitState(t, sn.ID, serve.StateSucceeded, 5*time.Minute)
	_, out := s.get(t, "/jobs/"+cold.ID+"/result")
	if !bytes.Equal(out, golden) {
		t.Fatalf("cold result differs from golden:\n%s", out)
	}

	// Warm run at a different worker count: served from the cache (worker
	// count is not part of artifact identity) and still byte-identical.
	hitsBefore := s.srv.Store().Hits()
	coldStart := time.Now()
	sn2, _ := s.submit(t, `{"kind":"table3","params":{"small":true,"workers":4}}`)
	s.waitState(t, sn2.ID, serve.StateSucceeded, time.Minute)
	warmWall := time.Since(coldStart)
	_, out2 := s.get(t, "/jobs/"+sn2.ID+"/result")
	if !bytes.Equal(out2, golden) {
		t.Fatalf("warm result differs from golden:\n%s", out2)
	}
	if s.srv.Store().Hits() <= hitsBefore {
		t.Fatal("warm run did not hit the artifact cache")
	}
	if warmWall > 30*time.Second {
		t.Fatalf("warm run took %s; cache apparently not used", warmWall)
	}

	// The event stream replays queued→started→progress→done.
	code, evb := s.get(t, "/jobs/"+sn.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("events: %d", code)
	}
	var types []string
	sc := bufio.NewScanner(bytes.NewReader(evb))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	sawProgress := false
	for sc.Scan() {
		var ev struct {
			Seq  int    `json:"seq"`
			Type string `json:"type"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		types = append(types, ev.Type)
		if ev.Type == "progress" {
			sawProgress = true
		}
	}
	if len(types) < 3 || types[0] != "queued" || types[1] != "started" || types[len(types)-1] != "done" {
		t.Fatalf("event shape %v", types)
	}
	if !sawProgress {
		t.Fatal("no progress events in stream")
	}

	// Metrics reflect the two successes and the cache traffic.
	code, mb := s.get(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{"jobs_succeeded_total 2", "artifact_cache_hits_total"} {
		if !strings.Contains(string(mb), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, mb)
		}
	}
}

// TestServeQueueFull: with one slot occupied and the queue at capacity, the
// next submission is rejected with 429 and the rejection is counted.
func TestServeQueueFull(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := newTestServer(t, serve.Config{Slots: 1, QueueCap: 1, Kinds: testKinds(release)})

	running, _ := s.submit(t, `{"kind":"block"}`)
	s.waitState(t, running.ID, serve.StateRunning, 10*time.Second)
	if _, resp := s.submit(t, `{"kind":"block"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: %d", resp.StatusCode)
	}
	_, resp := s.submit(t, `{"kind":"block"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %d, want 429", resp.StatusCode)
	}
	if code, b := s.get(t, "/metrics"); code != http.StatusOK || !strings.Contains(string(b), "jobs_rejected_total 1") {
		t.Fatalf("rejection not counted:\n%s", b)
	}
}

// TestServeRetryAfter: a 429 from a full queue carries a Retry-After
// header — a positive integer number of seconds — and /metrics exposes the
// queue_cap and scheduler_slots capacity gauges clients size backoff with.
func TestServeRetryAfter(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := newTestServer(t, serve.Config{Slots: 1, QueueCap: 1, Kinds: testKinds(release)})

	running, _ := s.submit(t, `{"kind":"block"}`)
	s.waitState(t, running.ID, serve.StateRunning, 10*time.Second)
	if _, resp := s.submit(t, `{"kind":"block"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: %d", resp.StatusCode)
	}
	_, resp := s.submit(t, `{"kind":"block"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 60 {
		t.Fatalf("Retry-After = %q, want integer seconds in [1,60]", ra)
	}

	code, b := s.get(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{"queue_cap 1", "scheduler_slots 1", "queue_depth 1"} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, b)
		}
	}
}

// TestServeCancel: DELETE cancels a running job (state canceled, cause
// recorded) and frees its slot for the next job; canceling a queued job
// never runs it.
func TestServeCancel(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := newTestServer(t, serve.Config{Slots: 1, QueueCap: 4, Kinds: testKinds(release)})

	running, _ := s.submit(t, `{"kind":"block"}`)
	s.waitState(t, running.ID, serve.StateRunning, 10*time.Second)
	queued, _ := s.submit(t, `{"kind":"block"}`)

	// Cancel the queued one first: it must go terminal without running.
	req, _ := http.NewRequest(http.MethodDelete, s.ts.URL+"/jobs/"+queued.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: %v %v", resp.StatusCode, err)
	}
	s.waitState(t, queued.ID, serve.StateCanceled, 10*time.Second)

	// Cancel the running one: slot frees and a fresh job completes.
	req, _ = http.NewRequest(http.MethodDelete, s.ts.URL+"/jobs/"+running.ID, nil)
	if _, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	canceled := s.waitState(t, running.ID, serve.StateCanceled, 10*time.Second)
	if !strings.Contains(canceled.Error, "canceled by client") {
		t.Fatalf("cancel cause %q", canceled.Error)
	}
	next, _ := s.submit(t, `{"kind":"system"}`)
	s.waitState(t, next.ID, serve.StateSucceeded, time.Minute)
}

// TestServeSingleflight: two jobs with the same artifact needs share one
// build — the second is a cache hit, visible in the store counters.
func TestServeSingleflight(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := newTestServer(t, serve.Config{Slots: 2, QueueCap: 4, Kinds: testKinds(release)})

	a, _ := s.submit(t, `{"kind":"system"}`)
	b, _ := s.submit(t, `{"kind":"system"}`)
	_, outA := s.get(t, "/jobs/"+s.waitState(t, a.ID, serve.StateSucceeded, time.Minute).ID+"/result")
	_, outB := s.get(t, "/jobs/"+s.waitState(t, b.ID, serve.StateSucceeded, time.Minute).ID+"/result")
	if !bytes.Equal(outA, outB) {
		t.Fatalf("shared-artifact jobs disagree: %q vs %q", outA, outB)
	}
	if builds := s.srv.Store().Builds(); builds != 1 {
		t.Fatalf("system artifact built %d times across two jobs, want 1", builds)
	}
	if hits := s.srv.Store().Hits(); hits != 1 {
		t.Fatalf("cache hits = %d, want 1", hits)
	}
}

// TestServeBadRequests: unknown kinds are 400 at submission; unknown
// params fail the job rather than being silently ignored.
func TestServeBadRequests(t *testing.T) {
	s := newTestServer(t, serve.Config{})
	if _, resp := s.submit(t, `{"kind":"nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown kind: %d, want 400", resp.StatusCode)
	}
	sn, resp := s.submit(t, `{"kind":"table3","params":{"smal":true}}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("typo submit: %d", resp.StatusCode)
	}
	failed := s.waitState(t, sn.ID, serve.StateFailed, 30*time.Second)
	if !strings.Contains(failed.Error, "bad params") {
		t.Fatalf("typo error %q", failed.Error)
	}
	if code, _ := s.get(t, "/jobs/zzz"); code != http.StatusNotFound {
		t.Fatalf("missing job: %d, want 404", code)
	}
}

// streamEvents opens the NDJSON stream and sends event types on a channel
// until the stream closes.
func streamEvents(t *testing.T, url string) (<-chan string, func()) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan string, 256)
	go func() {
		defer close(ch)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			var ev struct {
				Type string `json:"type"`
			}
			if json.Unmarshal(sc.Bytes(), &ev) == nil {
				ch <- ev.Type
			}
		}
	}()
	return ch, func() { resp.Body.Close() }
}

// TestServeDrainResume is the graceful-shutdown contract: SIGTERM-style
// Drain interrupts a running fab job mid-campaign, flushes its checkpoint
// journal, and a fresh server (cold cache, same checkpoint dir) resumes an
// identical resubmission to a report byte-identical to an uninterrupted
// direct run.
func TestServeDrainResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real small fab flow twice")
	}
	ckDir := t.TempDir()
	spec := `{"kind":"fab","params":{"small":true,"dies":150,"workers":1,"warmup":500,"commit":2000}}`

	s1 := newTestServer(t, serve.Config{CheckpointDir: ckDir})
	sn, _ := s1.submit(t, spec)
	// Wait until the job is provably mid-campaign, then drain.
	events, stop := streamEvents(t, s1.ts.URL+"/jobs/"+sn.ID+"/events")
	sawProgress := false
	for typ := range events {
		if typ == "progress" {
			sawProgress = true
			break
		}
	}
	stop()
	if !sawProgress {
		t.Fatal("job finished before any progress event; cannot drain mid-campaign")
	}
	dctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s1.srv.Drain(dctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	interrupted := s1.waitState(t, sn.ID, serve.StateInterrupted, 10*time.Second)
	if !strings.Contains(interrupted.Error, "draining") {
		t.Fatalf("interrupt cause %q", interrupted.Error)
	}
	// Draining servers refuse new work.
	if _, resp := s1.submit(t, spec); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
	journals, err := filepath.Glob(filepath.Join(ckDir, "*.ck"))
	if err != nil || len(journals) != 1 {
		t.Fatalf("checkpoint journals after drain: %v (%v)", journals, err)
	}

	// A new server (fresh process stand-in: cold artifact cache, same
	// checkpoint dir) resumes the identical spec.
	s2 := newTestServer(t, serve.Config{CheckpointDir: ckDir})
	sn2, _ := s2.submit(t, spec)
	done := s2.waitState(t, sn2.ID, serve.StateSucceeded, 5*time.Minute)
	_, got := s2.get(t, "/jobs/"+done.ID+"/result")

	// The resumed report must equal a direct, uninterrupted run's.
	var want bytes.Buffer
	if _, err := flows.Fab(context.Background(), &want, flows.FabOpts{
		Small: true, Dies: 150, Workers: 1, Warmup: 500, Commit: 2000,
	}, flows.Env{}); err != nil {
		t.Fatalf("direct run: %v", err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("resumed report differs from direct run:\n--- resumed\n%s\n--- direct\n%s", got, want.Bytes())
	}
	// The journal is consumed by the successful resume.
	if journals, _ := filepath.Glob(filepath.Join(ckDir, "*.ck")); len(journals) != 0 {
		t.Fatalf("journals left after successful resume: %v", journals)
	}
}
