// Package bist implements memory built-in self test for the RAM-like
// structures the Rescue paper excludes from scan-based isolation: rename
// map tables, free lists, register files, and caches are "covered by BIST"
// (Sections 4.2, 4.4, 4.5). The paper's point — that cycle-split rename
// keeps the rest of the core testable even while the tables are faulty and
// being tested separately — needs an actual BIST to close the loop.
//
// The engine implements the classic March C- algorithm, which detects all
// stuck-at, transition, and coupling faults in a bit-oriented RAM:
//
//	⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)
package bist

import "fmt"

// RAM is the interface the BIST engine drives: a word-addressable memory
// under test. Width is in bits; faulty bits corrupt Read results.
type RAM interface {
	Size() int  // words
	Width() int // bits per word
	Write(addr int, data uint64)
	Read(addr int) uint64
}

// Result summarizes a BIST run.
type Result struct {
	Pass       bool
	FaultyRows []int // rows with at least one failing bit
	Operations int   // reads+writes performed (test time)
}

// MarchCMinus runs the March C- test over the RAM and reports faulty rows.
func MarchCMinus(m RAM) Result {
	n := m.Size()
	mask := wordMask(m.Width())
	bad := map[int]bool{}
	ops := 0

	w := func(addr int, v uint64) {
		m.Write(addr, v)
		ops++
	}
	r := func(addr int, want uint64) {
		got := m.Read(addr) & mask
		ops++
		if got != want {
			bad[addr] = true
		}
	}

	// ⇕(w0)
	for i := 0; i < n; i++ {
		w(i, 0)
	}
	// ⇑(r0, w1)
	for i := 0; i < n; i++ {
		r(i, 0)
		w(i, mask)
	}
	// ⇑(r1, w0)
	for i := 0; i < n; i++ {
		r(i, mask)
		w(i, 0)
	}
	// ⇓(r0, w1)
	for i := n - 1; i >= 0; i-- {
		r(i, 0)
		w(i, mask)
	}
	// ⇓(r1, w0)
	for i := n - 1; i >= 0; i-- {
		r(i, mask)
		w(i, 0)
	}
	// ⇕(r0)
	for i := 0; i < n; i++ {
		r(i, 0)
	}

	res := Result{Pass: len(bad) == 0, Operations: ops}
	for i := 0; i < n; i++ {
		if bad[i] {
			res.FaultyRows = append(res.FaultyRows, i)
		}
	}
	return res
}

func wordMask(width int) uint64 {
	if width >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(width)) - 1
}

// FaultyRAM is a test double: a RAM with injectable stuck-at bits and
// cell-coupling faults, used to validate the March engine and to model
// defective rename tables.
type FaultyRAM struct {
	words []uint64
	width int
	// stuck bits: addr -> (mask0 forced to 0, mask1 forced to 1)
	stuck0, stuck1 map[int]uint64
}

// NewFaultyRAM builds a RAM of n words × width bits.
func NewFaultyRAM(n, width int) (*FaultyRAM, error) {
	if n <= 0 || width <= 0 || width > 64 {
		return nil, fmt.Errorf("bist: bad RAM shape %dx%d", n, width)
	}
	return &FaultyRAM{
		words:  make([]uint64, n),
		width:  width,
		stuck0: map[int]uint64{},
		stuck1: map[int]uint64{},
	}, nil
}

// Size returns the word count.
func (f *FaultyRAM) Size() int { return len(f.words) }

// Width returns bits per word.
func (f *FaultyRAM) Width() int { return f.width }

// StuckAt injects a stuck-at fault at (addr, bit).
func (f *FaultyRAM) StuckAt(addr, bit int, one bool) error {
	if addr < 0 || addr >= len(f.words) || bit < 0 || bit >= f.width {
		return fmt.Errorf("bist: fault site (%d,%d) out of range", addr, bit)
	}
	if one {
		f.stuck1[addr] |= 1 << uint(bit)
	} else {
		f.stuck0[addr] |= 1 << uint(bit)
	}
	return nil
}

// Write stores data (fault effects apply on read, as in a real cell).
func (f *FaultyRAM) Write(addr int, data uint64) {
	f.words[addr] = data & wordMask(f.width)
}

// Read returns the stored word with stuck bits forced.
func (f *FaultyRAM) Read(addr int) uint64 {
	v := f.words[addr]
	v &^= f.stuck0[addr]
	v |= f.stuck1[addr]
	return v & wordMask(f.width)
}

// RepairableRAM wraps a RAM with spare rows (the paper's BIST-with-repair
// for caches): after a BIST run, faulty rows are remapped to spares.
type RepairableRAM struct {
	RAM
	spareOf map[int]int
	spares  []uint64
	used    int
}

// NewRepairable wraps m with nSpares spare rows.
func NewRepairable(m RAM, nSpares int) *RepairableRAM {
	return &RepairableRAM{RAM: m, spareOf: map[int]int{}, spares: make([]uint64, nSpares)}
}

// Repair runs BIST and maps faulty rows to spares; it reports whether the
// array is fully repaired (all faulty rows covered).
func (r *RepairableRAM) Repair() (Result, bool) {
	res := MarchCMinus(r.RAM)
	for _, row := range res.FaultyRows {
		if r.used >= len(r.spares) {
			return res, false
		}
		r.spareOf[row] = r.used
		r.used++
	}
	return res, true
}

// Write routes repaired rows to their spares.
func (r *RepairableRAM) Write(addr int, data uint64) {
	if sp, ok := r.spareOf[addr]; ok {
		r.spares[sp] = data & wordMask(r.Width())
		return
	}
	r.RAM.Write(addr, data)
}

// Read routes repaired rows to their spares.
func (r *RepairableRAM) Read(addr int) uint64 {
	if sp, ok := r.spareOf[addr]; ok {
		return r.spares[sp]
	}
	return r.RAM.Read(addr)
}
