// Package rescue is a full reimplementation of the system described in
// Schuchman & Vijaykumar, "Rescue: A Microarchitecture for Testability and
// Defect Tolerance" (ISCA 2005): an out-of-order superscalar pipeline
// redesigned for intra-cycle logic independence (ICI) so that conventional
// scan test isolates hard faults to microarchitectural blocks, which are
// then mapped out for degraded — rather than discarded — operation.
//
// The package is a facade over the implementation packages:
//
//	netlist   gate-level IR with ICI component tags
//	scan      scan-chain DFT (mux-FF cells, shift/capture)
//	fault     stuck-at fault model + event-driven fault simulation
//	atpg      PODEM test generation with random-pattern bootstrap
//	ici       ICI graphs, audits, and the three transformations
//	rtl       structural generators: baseline & Rescue pipelines
//	uarch     cycle-level performance simulator with degraded modes
//	workload  synthetic SPEC2000-like benchmark generators
//	area      Table 2 area model and technology scaling
//	yield     negative-binomial yield and YAT (EQ 1-3)
//	core      the end-to-end flow (build, test, isolate, map out, YAT)
//
// The typical flow:
//
//	sys, _ := rescue.Build(rescue.DefaultConfig(), rescue.RescueDesign)
//	tp := sys.GenerateTests(rescue.DefaultGenConfig())
//	rep := sys.IsolateCampaign(tp, 1000, rescue.Stages(), 1, 0)
//	degr, _ := rescue.MapOut([]string{"IQ0"})
//	rows, _ := rescue.IPCStudy(nil, 100_000, 1_000_000)
//
// Campaign-shaped workloads (ATPG, isolation, dictionaries) additionally
// offer *Flow variants threading a context.Context and an optional
// crash-safe checkpoint journal: a killed run resumes at chunk granularity
// and converges bit-identically to an uninterrupted one.
package rescue

import (
	"rescue/internal/area"
	"rescue/internal/atpg"
	"rescue/internal/core"
	"rescue/internal/fault"
	"rescue/internal/ici"
	"rescue/internal/rtl"
	"rescue/internal/uarch"
	"rescue/internal/workload"
	"rescue/internal/yield"
)

// Design construction.
type (
	// Config parameterizes the generated gate-level pipelines.
	Config = rtl.Config
	// Variant selects the baseline or the ICI-transformed design.
	Variant = rtl.Variant
	// System is a built design with scan chain and ICI audit.
	System = core.System
	// TestProgram is a generated scan-test set.
	TestProgram = core.TestProgram
	// ScanSummary is a Table 3 row.
	ScanSummary = core.ScanSummary
	// IsolationReport is a Section 6.1 campaign outcome.
	IsolationReport = core.IsolationReport
	// GenConfig tunes ATPG.
	GenConfig = atpg.GenConfig
	// Grouping assigns components to super-components.
	Grouping = ici.Grouping
	// FaultCampaign shards fault simulation across workers with results
	// bit-identical to the serial path at any worker count. Runs take a
	// context for cooperative cancellation (chunk granularity), isolate
	// worker panics into a fault.PanicError, and reject overlapping calls
	// with fault.ErrCampaignBusy.
	FaultCampaign = fault.Campaign
	// FaultCampaignConfig tunes workers, failing-bit caps, and dropping.
	FaultCampaignConfig = fault.CampaignConfig
	// FaultStats records campaign work (faults simulated, words dropped,
	// gate events, checkpoint rehydrations, wall time).
	FaultStats = fault.Stats
	// FaultCheckpoint is a crash-safe journal of completed campaign work:
	// an interrupted flow resumed against the same journal rehydrates the
	// journaled chunks and converges bit-identically to an uninterrupted
	// run. The *Flow methods (GenerateTestsFlow, IsolateCampaignFlow,
	// MultiFaultIsolationFlow, fault.BuildDictionaryFlow) accept one.
	FaultCheckpoint = fault.Checkpoint
)

// OpenFaultCheckpoint opens a campaign checkpoint journal for a run: with
// resume an existing journal is loaded, otherwise a fresh one is started
// (refusing to clobber an existing file).
func OpenFaultCheckpoint(path string, resume bool) (*FaultCheckpoint, error) {
	return fault.OpenCheckpoint(path, resume)
}

// Interrupted reports whether a flow error is a cooperative cancellation
// (Ctrl-C, deadline, chaos harness) rather than a hard failure — the
// outcomes worth resuming from a checkpoint.
func Interrupted(err error) bool { return fault.Interrupted(err) }

// NewFaultCampaign prepares a parallel fault-simulation campaign over a
// generated test program's simulator.
func NewFaultCampaign(tp *TestProgram, cfg FaultCampaignConfig) *FaultCampaign {
	return fault.NewCampaign(tp.Gen.Sim, cfg)
}

// Build variants.
const (
	Baseline     = rtl.Baseline
	RescueDesign = rtl.RescueDesign
)

// DefaultConfig returns the full-size (4-way) netlist configuration;
// SmallConfig the reduced one used by tests and quick demos.
func DefaultConfig() Config { return rtl.Default() }

// SmallConfig returns the reduced 2-way netlist configuration.
func SmallConfig() Config { return rtl.Small() }

// DefaultGenConfig returns production-like ATPG settings.
func DefaultGenConfig() GenConfig { return atpg.DefaultGenConfig() }

// Build constructs a system (netlist + scan + ICI audit).
func Build(cfg Config, v Variant) (*System, error) { return core.Build(cfg, v) }

// Stages lists the six pipeline stages of the isolation campaign.
func Stages() []string { return core.Stages() }

// MapOut converts isolated faulty super-components into a degraded
// configuration (the fault-map register contents).
func MapOut(supers []string) (Degraded, error) { return core.MapOut(supers) }

// Performance simulation.
type (
	// Params configures the cycle-level simulator.
	Params = uarch.Params
	// Degraded selects mapped-out components.
	Degraded = uarch.Degraded
	// Stats is a simulation result.
	Stats = uarch.Stats
	// Sim is one simulator instance.
	Sim = uarch.Sim
	// Profile describes a synthetic benchmark.
	Profile = workload.Profile
	// IPCRow is one Figure 8 bar pair.
	IPCRow = core.IPCRow
	// PerfModel holds per-node degraded IPCs for the YAT study.
	PerfModel = core.PerfModel
	// YATRow is one Figure 9 bar group.
	YATRow = core.YATRow
)

// DefaultParams returns the Table 1 baseline machine; RescueParams the
// Rescue machine with the Section 5 modifications.
func DefaultParams() Params { return uarch.DefaultParams() }

// RescueParams returns the Rescue machine parameters.
func RescueParams() Params { return uarch.RescueParams() }

// NewSim builds a simulator for a benchmark profile.
func NewSim(p Params, prof Profile) (*Sim, error) { return uarch.New(p, prof) }

// Benchmarks returns the 23 SPEC2000 stand-in profiles.
func Benchmarks() []Profile { return workload.Benchmarks() }

// BenchmarkByName finds a profile.
func BenchmarkByName(name string) (Profile, error) { return workload.ByName(name) }

// IPCStudy reproduces Figure 8.
func IPCStudy(benchNames []string, warmup, commit int64) ([]IPCRow, error) {
	return core.IPCStudy(benchNames, warmup, commit)
}

// Yield analysis.
type (
	// Scaling is a technology node descriptor.
	Scaling = area.Scaling
	// AreaModel is a per-core area breakdown.
	AreaModel = area.Model
	// CoreConfig identifies a degraded configuration.
	CoreConfig = yield.CoreConfig
	// ChipResult is one Figure 9 scenario.
	ChipResult = yield.ChipResult
)

// Node builds a technology-node descriptor for a feature size in nm.
func Node(nm int) Scaling { return area.Node(nm) }

// Nodes returns the four plotted Figure 9 nodes.
func Nodes() []Scaling { return area.Nodes() }

// BaselineArea and RescueArea return the Table 2 core models.
func BaselineArea() AreaModel { return area.BaselineWithScan() }

// RescueArea returns the Rescue core area model.
func RescueArea() AreaModel { return area.Rescue() }

// BuildPerfModel simulates every (benchmark, degraded config) pair at a
// node — the expensive input of the YAT study.
func BuildPerfModel(node Scaling, benchNames []string, warmup, commit int64) (*PerfModel, error) {
	return core.BuildPerfModel(node, benchNames, warmup, commit)
}

// YATStudy reproduces one Figure 9 panel.
func YATStudy(stagnate Scaling, models map[int]*PerfModel) ([]YATRow, error) {
	return core.YATStudy(stagnate, models)
}
