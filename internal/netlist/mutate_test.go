package netlist_test

import (
	"strings"
	"testing"

	"rescue/internal/netlist"
)

// TestEquivTransform checks the function-preserving rewrites really
// preserve function across many generated circuits, and that they do
// change the structure (otherwise the property would be vacuous).
func TestEquivTransform(t *testing.T) {
	grew := 0
	for seed := uint64(0); seed < 80; seed++ {
		n := netlist.Random(netlist.RandomConfig{
			Seed:  seed,
			Gates: 5 + int(seed%40),
			FFs:   1 + int(seed%6),
		})
		tr := netlist.EquivTransform(n, seed, 6)
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: transformed netlist invalid: %v", seed, err)
		}
		if tr.NumFFs() != n.NumFFs() || len(tr.Inputs) != len(n.Inputs) || len(tr.Outputs) != len(n.Outputs) {
			t.Fatalf("seed %d: transform changed the interface", seed)
		}
		if tr.NumGates() > n.NumGates() {
			grew++
		}
		if err := netlist.FunctionallyEquivalent(n, tr, 8, seed); err != nil {
			t.Fatalf("seed %d: transform broke equivalence: %v", seed, err)
		}
	}
	if grew == 0 {
		t.Fatal("no transform added any gate in 80 seeds — the property is vacuous")
	}
}

// TestEquivalenceCheckerCatchesBreakage is the negative control: a rewrite
// that is NOT function-preserving must be flagged, otherwise P4 proves
// nothing.
func TestEquivalenceCheckerCatchesBreakage(t *testing.T) {
	n := netlist.Random(netlist.RandomConfig{Seed: 5})
	broken := n.Clone()
	for gi := range broken.Gates {
		switch broken.Gates[gi].Kind {
		case netlist.And:
			broken.Gates[gi].Kind = netlist.Or
		case netlist.Or:
			broken.Gates[gi].Kind = netlist.And
		case netlist.Xor:
			broken.Gates[gi].Kind = netlist.Xnor
		}
	}
	err := netlist.FunctionallyEquivalent(n, broken, 8, 5)
	if err == nil {
		t.Fatal("equivalence checker accepted a gate-kind swap")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("unexpected error shape: %v", err)
	}
}

// TestCloneIsDeep: mutating a clone must not leak into the original.
func TestCloneIsDeep(t *testing.T) {
	n := netlist.Random(netlist.RandomConfig{Seed: 3})
	c := n.Clone()
	origIn := n.Gates[0].In[0]
	c.Gates[0].In[0] = n.Gates[0].Out // would be a cycle in the original
	if n.Gates[0].In[0] != origIn {
		t.Fatal("clone shares gate input slices with the original")
	}
	if err := n.Validate(); err != nil {
		t.Fatalf("original damaged by clone mutation: %v", err)
	}
}
