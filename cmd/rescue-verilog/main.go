// Command rescue-verilog dumps the generated gate-level designs as
// structural Verilog (and optionally the component-level connectivity as
// Graphviz), so the models this repository generates can be fed to
// external simulation, synthesis, or commercial ATPG tools — the flow the
// paper ran through Synopsys Design Compiler and TetraMax.
//
// Usage:
//
//	rescue-verilog [-variant baseline|rescue] [-small] [-o file.v]
//	               [-dot file.dot] [-timeout D]
//
// SIGINT/SIGTERM abort the dump mid-stream and exit 130; a -timeout
// deadline exits 124. An interrupted dump leaves a truncated file.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"rescue/internal/cli"
	"rescue/internal/rtl"
)

func main() {
	variant := flag.String("variant", "rescue", "baseline or rescue")
	small := flag.Bool("small", false, "use the reduced (2-way) configuration")
	out := flag.String("o", "", "Verilog output file (default stdout)")
	dot := flag.String("dot", "", "also write component connectivity as Graphviz")
	timeout := flag.Duration("timeout", 0, "overall deadline (0 = none); exceeded = exit 124")
	flag.Parse()
	cli.CheckTimeout(*timeout)

	v := rtl.RescueDesign
	switch *variant {
	case "rescue":
	case "baseline":
		v = rtl.Baseline
	default:
		cli.Usagef("variant must be baseline or rescue")
	}
	cfg := rtl.Default()
	if *small {
		cfg = rtl.Small()
	}

	ctx, stop := cli.FlowContext(*timeout)
	defer stop()

	d, err := rtl.Build(cfg, v)
	if err != nil {
		cli.ExitErr(err)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			cli.ExitErr(err)
		}
		defer f.Close()
		w = f
	}
	if err := d.N.WriteVerilog(&cli.CtxWriter{Ctx: ctx, W: w}); err != nil {
		cli.ExitErr(err)
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			cli.ExitErr(err)
		}
		defer f.Close()
		if err := d.N.WriteDot(&cli.CtxWriter{Ctx: ctx, W: f}); err != nil {
			cli.ExitErr(err)
		}
	}
	fmt.Fprintf(os.Stderr, "%s: %d gates, %d FFs, %d components\n",
		d.N.Name, d.N.NumGates(), d.N.NumFFs(), d.N.NumComps())
}
