package flows

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"rescue/internal/area"
	"rescue/internal/core"
)

// YATOpts parameterizes the Figure 9 yield-adjusted-throughput study — the
// rescue-yat command surface.
type YATOpts struct {
	StagnateNM int    // 0 = 90
	Bench      string // comma-separated; "" = all 23
	Warmup     int64  // 0 = 20000
	Commit     int64  // 0 = 150000
	Workers    int
	Timing     bool // print per-node model build durations
}

func (o *YATOpts) setDefaults() {
	if o.StagnateNM == 0 {
		o.StagnateNM = 90
	}
	if o.Warmup == 0 {
		o.Warmup = 20_000
	}
	if o.Commit == 0 {
		o.Commit = 150_000
	}
}

// YATResult carries the study rows.
type YATResult struct {
	Rows []core.YATRow
}

// YAT runs the Figure 9 study and writes the report to w — the exact text
// rescue-yat prints (model-build durations appear only with Timing).
func YAT(ctx context.Context, w io.Writer, o YATOpts, env Env) (YATResult, error) {
	o.setDefaults()
	var res YATResult

	var names []string
	if o.Bench != "" {
		names = strings.Split(o.Bench, ",")
	}

	fmt.Fprintf(w, "Figure 9%s: YAT with PWP stagnating at %dnm\n", yatPanel(o.StagnateNM), o.StagnateNM)
	fmt.Fprintln(w, "(building per-node degraded-IPC models: 65 simulations per benchmark per node)")
	models := map[int]*core.PerfModel{}
	for _, node := range area.Nodes() {
		start := time.Now()
		pm, err := env.PerfModel(ctx, node.NodeNM, names, o.Warmup, o.Commit, o.Workers)
		if err != nil {
			return res, err
		}
		models[node.NodeNM] = pm
		if o.Timing {
			fmt.Fprintf(w, "  %dnm model built (%s)\n", node.NodeNM, time.Since(start).Round(time.Second))
		} else {
			fmt.Fprintf(w, "  %dnm model built\n", node.NodeNM)
		}
	}

	rows, err := core.YATStudy(area.Node(o.StagnateNM), models)
	if err != nil {
		return res, err
	}
	res.Rows = rows
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%5s %7s %6s %8s %8s %8s %12s\n",
		"node", "growth", "cores", "none", "+CS", "+Rescue", "Rescue/CS")
	for _, r := range rows {
		fmt.Fprintf(w, "%4dnm %6.0f%% %6d %8.3f %8.3f %8.3f %+11.1f%%\n",
			r.NodeNM, r.Growth*100, r.Cores, r.RelNone, r.RelCS, r.RelRescue, r.RescueOverCSPct)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "relative YAT = chip YAT / (cores x fault-free IPC), averaged over benchmarks")
	fmt.Fprintln(w, "paper headline (stagnate 90nm, 30% growth): +12% at 32nm, +22% at 18nm")
	return res, nil
}

func yatPanel(stagnate int) string {
	if stagnate == 90 {
		return "a"
	}
	return "b"
}
