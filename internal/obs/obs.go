// Package obs is the observability substrate the serving daemon and the
// flow CLIs report into: a small metrics registry (counters, gauges,
// histograms, and pull-style functions), a text /metrics endpoint,
// net/http/pprof wiring, and span-style timing around campaign sections
// carried through a context.
//
// The package is dependency-free by design — internal/atpg, internal/core,
// and internal/fab instrument their flows with Span without knowing whether
// anyone is listening; a nil tracer makes every call a no-op, so the CLIs
// pay nothing unless a registry is attached to the context.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 metric (queue depth, running jobs).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// maxHistogramSamples bounds the per-histogram sample buffer backing
// quantile extraction. Below the cap quantiles are exact; past it the
// buffer degrades to a uniform reservoir, so long-running daemons keep a
// fixed memory footprint and still report representative percentiles.
const maxHistogramSamples = 1 << 14

// Histogram accumulates float64 observations as count/sum/min/max plus a
// bounded sample buffer for quantile extraction — enough to read latency
// percentiles off /metrics without external bucket configuration.
type Histogram struct {
	mu       sync.Mutex
	count    int64
	sum      float64
	min, max float64
	samples  []float64
	rng      uint64 // xorshift state for reservoir replacement
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	if len(h.samples) < maxHistogramSamples {
		h.samples = append(h.samples, v)
		return
	}
	// Reservoir sampling keeps each past observation in the buffer with
	// equal probability. The xorshift stream is seeded deterministically,
	// so a given observation sequence always yields the same reservoir.
	if h.rng == 0 {
		h.rng = 0x9e3779b97f4a7c15
	}
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if j := h.rng % uint64(h.count); j < uint64(len(h.samples)) {
		h.samples[j] = v
	}
}

// Snapshot returns the accumulated count, sum, min, and max.
func (h *Histogram) Snapshot() (count int64, sum, min, max float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count, h.sum, h.min, h.max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the observed samples by
// the nearest-rank method: the smallest sample v such that at least q·N
// samples are ≤ v. q outside [0,1] is clamped. An empty histogram returns
// 0 — callers gate on Snapshot's count when "no data" must differ from
// "zero latency". Exact while fewer than 2^14 samples have been observed;
// reservoir-approximate beyond that.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Quantiles(q)[0]
}

// Quantiles returns the nearest-rank quantiles for each q in qs, sorting
// the sample buffer once. Monotone in q: qs[i] ≤ qs[j] implies the i-th
// result ≤ the j-th.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	h.mu.Lock()
	sorted := make([]float64, len(h.samples))
	copy(sorted, h.samples)
	h.mu.Unlock()
	sort.Float64s(sorted)

	out := make([]float64, len(qs))
	if len(sorted) == 0 {
		return out
	}
	for i, q := range qs {
		if math.IsNaN(q) || q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		// Nearest rank: ceil(q*N), 1-based; q=0 maps to the minimum.
		rank := int(math.Ceil(q * float64(len(sorted))))
		if rank < 1 {
			rank = 1
		}
		out[i] = sorted[rank-1]
	}
	return out
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; metrics are created on first reference, so reporting
// code never has to pre-declare what it emits.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() float64{},
	}
}

// SanitizeName maps an arbitrary metric name onto the conventional
// [a-zA-Z0-9_] charset (dots, dashes, and spaces become underscores).
func SanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			return r
		default:
			return '_'
		}
	}, name)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	name = SanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	name = SanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	name = SanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegisterFunc exposes a pull-style gauge: f is called at scrape time.
// Registering the same name again replaces the function.
func (r *Registry) RegisterFunc(name string, f func() float64) {
	name = SanitizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = f
}

// WriteText renders every metric in the text exposition format, sorted by
// name so scrapes are diffable.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	type row struct {
		typ  string
		name string
		emit func(io.Writer) error
	}
	var rows []row
	for name, c := range r.counters {
		c := c
		rows = append(rows, row{"counter", name, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", name, c.Value())
			return err
		}})
	}
	for name, g := range r.gauges {
		g := g
		rows = append(rows, row{"gauge", name, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %d\n", name, g.Value())
			return err
		}})
	}
	for name, f := range r.funcs {
		f := f
		rows = append(rows, row{"gauge", name, func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(f()))
			return err
		}})
	}
	for name, h := range r.hists {
		h := h
		rows = append(rows, row{"summary", name, func(w io.Writer) error {
			count, sum, min, max := h.Snapshot()
			qs := h.Quantiles(0.5, 0.9, 0.99)
			if _, err := fmt.Fprintf(w, "%s_count %d\n", name, count); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_min %s\n", name, formatFloat(min)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_max %s\n", name, formatFloat(max)); err != nil {
				return err
			}
			for i, p := range []string{"p50", "p90", "p99"} {
				if _, err := fmt.Fprintf(w, "%s_%s %s\n", name, p, formatFloat(qs[i])); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	r.mu.Unlock()

	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	for _, rw := range rows {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", rw.name, rw.typ); err != nil {
			return err
		}
		if err := rw.emit(w); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders metric values without scientific notation surprises.
func formatFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	return fmt.Sprintf("%g", v)
}
