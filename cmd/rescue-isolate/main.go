// Command rescue-isolate reproduces the paper's Section 6.1 fault-
// isolation campaign: N random detectable faults per pipeline stage
// (fetch, decode, rename, issue, execute, memory) are injected into the
// Rescue netlist one at a time; each fault's failing scan bits are mapped
// through the single-lookup isolation table; the implicated super-component
// is checked against the ground-truth fault site. The paper's result: all
// 6000 faults isolate correctly.
//
// The run is resilient: SIGINT/SIGTERM finish in-flight chunks, flush the
// -checkpoint journal (if one was given), print the partial campaign
// stats, and exit 130; rerunning with -resume rehydrates the journaled
// work and converges bit-identically to an uninterrupted run.
//
// Usage:
//
//	rescue-isolate [-small] [-per-stage N] [-seed N] [-multi] [-workers N]
//	               [-timing=false] [-checkpoint path [-resume]]
//	               [-chaos-cancel-after N]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rescue/internal/atpg"
	"rescue/internal/cli"
	"rescue/internal/core"
	"rescue/internal/rtl"
)

func main() {
	small := flag.Bool("small", false, "use the reduced configuration (2-way)")
	perStage := flag.Int("per-stage", 1000, "faults to sample per stage (paper: 1000)")
	seed := flag.Int64("seed", 2005, "sampling seed")
	multi := flag.Bool("multi", false, "also run the multi-fault isolation corollary")
	workers := flag.Int("workers", 0, "fault-simulation workers (0 = all cores)")
	timing := flag.Bool("timing", true, "print wall-clock timings (disable for golden diffs)")
	checkpoint := flag.String("checkpoint", "", "campaign checkpoint journal path (enables kill-and-resume)")
	resume := flag.Bool("resume", false, "resume a previous run from the -checkpoint journal")
	chaosAfter := flag.Int64("chaos-cancel-after", 0, "cancel after N campaign fault-sims (chaos testing; 0 = off)")
	flag.Parse()
	cli.CheckWorkers(*workers)
	cli.ArmChaos(*chaosAfter)
	ck := cli.OpenCheckpoint(*checkpoint, *resume)

	ctx, stop := cli.SignalContext()
	defer stop()

	cfg := rtl.Default()
	if *small {
		cfg = rtl.Small()
	}
	start := time.Now()
	s, err := core.Build(cfg, rtl.RescueDesign)
	if err != nil {
		cli.Fatalf("build: %v", err)
	}
	if !s.Audit.OK() {
		cli.Fatalf("ICI audit failed: %d violations", len(s.Audit.Violations))
	}
	fmt.Printf("built %s: %d gates, %d scan cells; ICI audit clean\n",
		s.Design.N.Name, s.Design.N.NumGates(), s.Design.N.NumFFs())

	gen := atpg.DefaultGenConfig()
	gen.Workers = *workers
	tp, err := s.GenerateTestsFlow(ctx, gen, ck)
	if err != nil {
		cli.ExitFlow(err, tp.Gen.Stats, ck)
	}
	if *timing {
		fmt.Printf("ATPG: %d vectors, %.2f%% coverage (%s)\n",
			tp.Gen.Vectors, tp.Gen.Coverage*100, time.Since(start).Round(time.Millisecond))
	} else {
		fmt.Printf("ATPG: %d vectors, %.2f%% coverage\n", tp.Gen.Vectors, tp.Gen.Coverage*100)
	}

	rep, err := s.IsolateCampaignFlow(ctx, tp, *perStage, core.Stages(), *seed, *workers, ck)
	if err != nil {
		cli.ExitFlow(err, rep.Stats, ck)
	}
	fmt.Println()
	fmt.Printf("%-10s %9s %9s %7s %10s\n", "stage", "sampled", "isolated", "wrong", "ambiguous")
	for _, st := range core.Stages() {
		r := rep.PerStage[st]
		fmt.Printf("%-10s %9d %9d %7d %10d\n", st, r.Sampled, r.Isolated, r.Wrong, r.Ambiguous)
	}
	total := rep.Isolated + rep.Wrong + rep.Ambiguous
	fmt.Println()
	fmt.Printf("TOTAL: %d faults simulated, %d isolated correctly, %d wrong, %d ambiguous\n",
		total, rep.Isolated, rep.Wrong, rep.Ambiguous)
	fmt.Printf("(paper: 6000/6000 isolated; %d undetectable faults were resampled)\n", rep.Undetected)
	if *timing {
		fmt.Printf("campaign: %d faults, %d word-sims, %d gate events, %d workers, %s\n",
			rep.Stats.Faults, rep.Stats.Words, rep.Stats.Events, rep.Stats.Workers,
			rep.Stats.Wall.Round(time.Millisecond))
	}

	if *multi {
		ok, trials, err := s.MultiFaultIsolationFlow(ctx, tp, 200, 3, *seed, *workers, ck)
		if err != nil {
			cli.ExitFlow(err, rep.Stats, ck)
		}
		fmt.Printf("multi-fault corollary: %d/%d trials — all simultaneous faults in\n", ok, trials)
		fmt.Println("distinct super-components isolated by one pattern set")
	}
	if rep.Wrong+rep.Ambiguous > 0 {
		os.Exit(cli.ExitRuntime)
	}
}
