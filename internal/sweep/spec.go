package sweep

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"rescue/internal/flows"
	"rescue/internal/rtl"
)

// Spec describes a sweep grid: which presets to start from, which
// parameter overrides to cross against them, and which fab-level axes
// (node, defect-density stagnation node, self-heal spare share) to
// evaluate each variant at. A Spec expands deterministically — same spec,
// same point order, same digests — which is what makes the frontier
// byte-identical across concurrency levels, resumes, and shard workers.
type Spec struct {
	Presets []string `json:"presets"`
	// Axes maps an override key (see axisKeys) to the values to cross.
	// Every combination of one value per key is applied to every preset.
	Axes map[string][]string `json:"axes,omitempty"`
	// Fab-level axes. Defaults: [18], [90], [0].
	Nodes     []int     `json:"nodes,omitempty"`
	Stagnates []int     `json:"stagnates,omitempty"`
	SelfHeal  []float64 `json:"selfheal,omitempty"`
	// Small switches every preset's netlist to the small RTL config —
	// the CI/test grid.
	Small bool `json:"small,omitempty"`
	// Fleet knobs, shared by every point. Zero values take the defaults
	// in withDefaults.
	Dies   int     `json:"dies,omitempty"`
	Seed   int64   `json:"seed,omitempty"`
	Growth float64 `json:"growth,omitempty"`
	Bench  string  `json:"bench,omitempty"`
	Warmup int64   `json:"warmup,omitempty"`
	Commit int64   `json:"commit,omitempty"`
	// Concurrency is how many points run at once (0 = 1). Workers is the
	// per-point campaign concurrency (0 = all cores). Neither affects
	// results or digests.
	Concurrency int `json:"concurrency,omitempty"`
	Workers     int `json:"workers,omitempty"`
}

// withDefaults returns a copy with every zero-valued knob resolved, so
// expansion and digests are computed over the effective spec.
func (s Spec) withDefaults() Spec {
	if len(s.Nodes) == 0 {
		s.Nodes = []int{18}
	}
	if len(s.Stagnates) == 0 {
		s.Stagnates = []int{90}
	}
	if len(s.SelfHeal) == 0 {
		s.SelfHeal = []float64{0}
	}
	if s.Dies == 0 {
		s.Dies = 2000
	}
	if s.Seed == 0 {
		s.Seed = 2026
	}
	if s.Growth == 0 {
		s.Growth = 0.30
	}
	if s.Bench == "" {
		s.Bench = "gzip"
	}
	if s.Warmup == 0 {
		s.Warmup = 2000
	}
	if s.Commit == 0 {
		s.Commit = 10000
	}
	return s
}

// axisKeys maps override names to appliers. Each value string is parsed
// and applied to a copy of the preset variant.
var axisKeys = map[string]func(*Variant, string) error{
	"scan-chains":    func(v *Variant, s string) error { return setInt(&v.ScanChains, s) },
	"comp-buf":       func(v *Variant, s string) error { return setInt(&v.Perf.CompBufSlots, s) },
	"frontend-depth": func(v *Variant, s string) error { return setInt(&v.Perf.FrontendDepth, s) },
	"rob-size":       func(v *Variant, s string) error { return setInt(&v.Perf.ROBSize, s) },
	"lsq-size":       func(v *Variant, s string) error { return setInt(&v.Perf.LSQSize, s) },
	"squash-window":  func(v *Variant, s string) error { return setInt(&v.Perf.SquashWindow, s) },
	"net-iq":         func(v *Variant, s string) error { return setInt(&v.Netlist.IQEntries, s) },
	"net-lsq":        func(v *Variant, s string) error { return setInt(&v.Netlist.LSQEntries, s) },
	"iq-size": func(v *Variant, s string) error {
		if err := setInt(&v.Perf.IntIQSize, s); err != nil {
			return err
		}
		return setInt(&v.Perf.FPIQSize, s)
	},
	"replay": func(v *Variant, s string) error {
		if _, err := replayPolicy(s); err != nil {
			return err
		}
		v.Perf.ReplayPolicy = s
		return nil
	},
	"chipkill-scale": func(v *Variant, s string) error {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("sweep: chipkill-scale %q: %v", s, err)
		}
		v.ChipkillScale = f
		return nil
	},
}

func setInt(dst *int, s string) error {
	n, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("sweep: axis value %q: %v", s, err)
	}
	*dst = n
	return nil
}

// AxisKeys returns the valid override-axis names, sorted — for usage
// messages.
func AxisKeys() []string {
	keys := make([]string, 0, len(axisKeys))
	for k := range axisKeys {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Point is one grid cell: a fully resolved variant plus the fab-level
// coordinates, tagged with how it was reached (preset + overrides) for
// reporting.
type Point struct {
	Index         int               `json:"index"`
	Preset        string            `json:"preset"`
	Overrides     map[string]string `json:"overrides,omitempty"`
	NodeNM        int               `json:"node"`
	StagnateNM    int               `json:"stagnate"`
	SelfHealShare float64           `json:"selfheal"`
	Variant       Variant           `json:"variant"`
	// Digest identifies the point's full content — variant, coordinates,
	// and the spec's fleet knobs — independent of Index. It names the
	// point's journal entries and checkpoint sections.
	Digest string `json:"digest"`
}

type pointIdentity struct {
	Variant       Variant `json:"variant"`
	NodeNM        int     `json:"node"`
	StagnateNM    int     `json:"stagnate"`
	SelfHealShare float64 `json:"selfheal"`
	Dies          int     `json:"dies"`
	Seed          int64   `json:"seed"`
	Growth        float64 `json:"growth"`
	Bench         string  `json:"bench"`
	Warmup        int64   `json:"warmup"`
	Commit        int64   `json:"commit"`
}

// Expand resolves the grid into its points, in deterministic order:
// preset (as listed) × override combinations (axis keys sorted, values as
// listed) × node × stagnation node × self-heal share. Every variant is
// validated; the first invalid cell fails the whole expansion, so a bad
// spec is rejected before any work starts.
func (s Spec) Expand() ([]Point, error) {
	s = s.withDefaults()
	if len(s.Presets) == 0 {
		return nil, fmt.Errorf("sweep: spec has no presets (available: %s)", strings.Join(Presets(), ", "))
	}
	if s.Dies < 0 {
		return nil, fmt.Errorf("sweep: dies = %d must be positive", s.Dies)
	}
	for _, nm := range s.Nodes {
		if _, ok := flows.ValidNode(nm); !ok {
			return nil, fmt.Errorf("sweep: unknown node %dnm (want one of 90, 65, 32, 18)", nm)
		}
	}
	for _, nm := range s.Stagnates {
		if _, ok := flows.ValidNode(nm); !ok {
			return nil, fmt.Errorf("sweep: unknown stagnation node %dnm (want one of 90, 65, 32, 18)", nm)
		}
	}
	for _, sh := range s.SelfHeal {
		if sh < 0 || sh > 0.9 {
			return nil, fmt.Errorf("sweep: selfheal share %g out of range [0,0.9]", sh)
		}
	}

	// Override combinations: cartesian product over sorted axis keys.
	keys := make([]string, 0, len(s.Axes))
	for k := range s.Axes {
		if _, ok := axisKeys[k]; !ok {
			return nil, fmt.Errorf("sweep: unknown axis %q (want one of %s)", k, strings.Join(AxisKeys(), ", "))
		}
		if len(s.Axes[k]) == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values", k)
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	combos := []map[string]string{{}}
	for _, k := range keys {
		var next []map[string]string
		for _, c := range combos {
			for _, val := range s.Axes[k] {
				m := make(map[string]string, len(c)+1)
				for kk, vv := range c {
					m[kk] = vv
				}
				m[k] = val
				next = append(next, m)
			}
		}
		combos = next
	}

	var pts []Point
	for _, name := range s.Presets {
		base, ok := Preset(name)
		if !ok {
			return nil, fmt.Errorf("sweep: unknown preset %q (available: %s)", name, strings.Join(Presets(), ", "))
		}
		if s.Small {
			base.Netlist = rtl.Small()
		}
		for _, c := range combos {
			v := base
			for _, k := range keys {
				if val, ok := c[k]; ok {
					if err := axisKeys[k](&v, val); err != nil {
						return nil, err
					}
				}
			}
			if err := v.Validate(); err != nil {
				return nil, fmt.Errorf("sweep: preset %q with overrides %v: %w", name, c, err)
			}
			for _, node := range s.Nodes {
				for _, stag := range s.Stagnates {
					for _, share := range s.SelfHeal {
						var ov map[string]string
						if len(c) > 0 {
							ov = c
						}
						pt := Point{
							Index:         len(pts),
							Preset:        name,
							Overrides:     ov,
							NodeNM:        node,
							StagnateNM:    stag,
							SelfHealShare: share,
							Variant:       v,
						}
						pt.Digest = canonDigest("point", pointIdentity{
							Variant:       v,
							NodeNM:        node,
							StagnateNM:    stag,
							SelfHealShare: share,
							Dies:          s.Dies,
							Seed:          s.Seed,
							Growth:        s.Growth,
							Bench:         s.Bench,
							Warmup:        s.Warmup,
							Commit:        s.Commit,
						})
						pts = append(pts, pt)
					}
				}
			}
		}
	}
	return pts, nil
}

// SinglePointSpec builds the one-cell spec that expands to exactly pt
// (with Index 0 and an identical Digest) — the unit a shard worker
// executes when points are dispatched remotely.
func SinglePointSpec(s Spec, pt Point) Spec {
	s = s.withDefaults()
	one := s
	one.Presets = []string{pt.Preset}
	one.Axes = nil
	if len(pt.Overrides) > 0 {
		one.Axes = map[string][]string{}
		for k, v := range pt.Overrides {
			one.Axes[k] = []string{v}
		}
	}
	one.Nodes = []int{pt.NodeNM}
	one.Stagnates = []int{pt.StagnateNM}
	one.SelfHeal = []float64{pt.SelfHealShare}
	one.Concurrency = 1
	return one
}
