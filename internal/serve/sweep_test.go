package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"rescue/internal/serve"
	"rescue/internal/sweep"
)

// sweepSpec is the serve-side test grid: two points that differ only in
// an area-model knob, so they share every netlist/ATPG/perf artifact and
// the job costs one small ATPG campaign.
func sweepSpec() sweep.Spec {
	return sweep.Spec{
		Presets: []string{"paper"},
		Axes:    map[string][]string{"chipkill-scale": {"1", "0.8"}},
		Nodes:   []int{18},
		Small:   true,
		Dies:    40,
		Warmup:  100,
		Commit:  500,
		Workers: 2,
	}
}

func sweepBody(t *testing.T, spec sweep.Spec) string {
	t.Helper()
	params, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return `{"kind":"sweep","params":` + string(params) + `}`
}

func (s *testServer) delete(t *testing.T, path string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, s.ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.Bytes()
}

// TestServeSweepJob is the sweep job kind's end-to-end contract on one
// warm server: a submitted grid runs to a frontier NDJSON result with
// per-point output events; canceling one point by digest (DELETE
// /jobs/{id}/points/{digest}) leaves the rest of the grid intact; and two
// identical submissions return byte-identical frontiers.
func TestServeSweepJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the real small sweep flow")
	}
	s := newTestServer(t, serve.Config{Slots: 2, QueueCap: 8})
	spec := sweepSpec()
	pts, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("test grid has %d points, want 2", len(pts))
	}
	body := sweepBody(t, spec)

	// First job: cancel the second point while the first is still building
	// its artifacts. The control registers when the run starts, so poll
	// until the cancel lands.
	sn, resp := s.submit(t, body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	deadline := time.Now().Add(time.Minute)
	for {
		code, b := s.delete(t, "/jobs/"+sn.ID+"/points/"+pts[1].Digest)
		if code == http.StatusOK {
			break
		}
		if code != http.StatusConflict || time.Now().After(deadline) {
			t.Fatalf("point cancel: %d %s", code, b)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Unknown digests are lookup misses, not conflicts.
	if code, _ := s.delete(t, "/jobs/"+sn.ID+"/points/ffffffffffff"); code != http.StatusNotFound {
		t.Fatalf("unknown point cancel: %d, want 404", code)
	}
	done := s.waitState(t, sn.ID, serve.StateSucceeded, 5*time.Minute)
	_, out := s.get(t, "/jobs/"+done.ID+"/result")
	fr, err := sweep.ParseNDJSON(bytes.NewReader(out))
	if err != nil {
		t.Fatalf("result is not frontier NDJSON: %v\n%s", err, out)
	}
	if len(fr.Points) != 2 {
		t.Fatalf("frontier has %d points, want 2:\n%s", len(fr.Points), out)
	}
	if fr.Points[0].Canceled || fr.Points[0].Error != "" {
		t.Fatalf("surviving point damaged: %+v", fr.Points[0])
	}
	if !fr.Points[1].Canceled {
		t.Fatalf("canceled point not marked canceled: %+v", fr.Points[1])
	}
	// Point cancels on a terminal job are conflicts.
	if code, _ := s.delete(t, "/jobs/"+sn.ID+"/points/"+pts[0].Digest); code != http.StatusConflict {
		t.Fatalf("point cancel after done: %d, want 409", code)
	}

	// Full runs: per-point output events on the stream, and two identical
	// submissions produce byte-identical NDJSON.
	run := func() (string, []byte) {
		sn, _ := s.submit(t, body)
		done := s.waitState(t, sn.ID, serve.StateSucceeded, 5*time.Minute)
		_, out := s.get(t, "/jobs/"+done.ID+"/result")
		return sn.ID, out
	}
	id1, out1 := run()
	_, out2 := run()
	if !bytes.Equal(out1, out2) {
		t.Fatalf("identical sweep submissions differ:\n-- 1 --\n%s\n-- 2 --\n%s", out1, out2)
	}

	code, evb := s.get(t, "/jobs/"+id1+"/events")
	if code != http.StatusOK {
		t.Fatalf("events: %d", code)
	}
	var pointLines int
	sc := bufio.NewScanner(bytes.NewReader(evb))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev serve.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Type == "output" && strings.Contains(ev.Msg, "point ") {
			pointLines++
		}
	}
	if pointLines < 4 { // start + done for each of 2 points
		t.Fatalf("event stream carries %d per-point lines, want >= 4:\n%s", pointLines, evb)
	}
}

// TestServeSweepPointCancelNonSweep: the per-point cancel route is
// specific to running sweeps — other kinds have no point control.
func TestServeSweepPointCancelNonSweep(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := newTestServer(t, serve.Config{Slots: 1, QueueCap: 2, Kinds: testKinds(release)})
	sn, _ := s.submit(t, `{"kind":"block"}`)
	s.waitState(t, sn.ID, serve.StateRunning, 10*time.Second)
	code, b := s.delete(t, "/jobs/"+sn.ID+"/points/abc")
	if code != http.StatusConflict {
		t.Fatalf("point cancel on non-sweep: %d %s, want 409", code, b)
	}
}
